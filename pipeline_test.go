package specslice_test

// End-to-end pipeline stress tests: for a corpus of adversarial programs
// and for generated suites, check that
//
//   - the specialization slice emits, re-parses, re-analyzes, and is free
//     of parameter mismatches (Cor. 3.19);
//   - running the emitted slice reproduces the original program's values
//     at the slicing criterion (Weiser's correctness condition), observed
//     statement-by-statement through origin IDs;
//   - the slice never does more work than the original;
//   - the monovariant baseline passes the same behavioral check;
//   - the reslicing self-check (§8.3) passes;
//   - projecting the stack-configuration slice equals the HRB closure
//     slice (two independent implementations).

import (
	"reflect"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/mono"
	"specslice/internal/sdg"
	"specslice/internal/slice"
	"specslice/internal/workload"
)

// corpus exercises the slicer's hard cases. Programs must terminate; scanf
// statements read keyed input so slices see the same values.
var corpus = map[string]string{
	"fig1": workload.Fig1Source,
	"fig2": workload.Fig2Source,

	"mutual-recursion": `
int g;
int even(int n) {
  if (n == 0) { return 1; }
  return odd(n - 1);
}
int odd(int n) {
  if (n == 0) { return 0; }
  return even(n - 1);
}
int main() {
  g = even(7);
  printf("%d", g);
  return 0;
}`,

	"loops-with-jumps": `
int total; int hits;
int main() {
  int i = 0;
  while (i < 20) {
    i = i + 1;
    if (i % 3 == 0) { continue; }
    if (i > 15) { break; }
    total = total + i;
    hits = hits + 1;
  }
  printf("%d", total);
  printf("%d", hits);
  return 0;
}`,

	"early-returns": `
int g;
int clamp(int x) {
  if (x < 0) { return 0; }
  if (x > 10) { return 10; }
  return x;
}
int main() {
  g = clamp(-5) + clamp(7) * 100 + clamp(99) * 10000;
  printf("%d", g);
  return 0;
}`,

	"kill-chains": `
int a; int b; int c;
void setAll(int x) { a = x; b = x + 1; c = x + 2; }
void setB(int x) { b = x; }
int main() {
  setAll(1);
  setB(50);
  setAll(2);
  printf("%d", b);
  printf("%d", a + c);
  return 0;
}`,

	"scanf-driven": `
int g;
int main() {
  int n;
  int acc = 0;
  scanf("%d", &n);
  while (n > 0) {
    acc = acc + n;
    n = n - 1;
  }
  g = acc;
  printf("%d", g);
  return 0;
}`,

	"nested-calls": `
int g;
int inc(int x) { return x + 1; }
int twice(int x) { return inc(inc(x)); }
int main() {
  g = twice(twice(inc(1)));
  printf("%d", g);
  return 0;
}`,

	"dead-branches": `
int g; int h;
void p(int a, int b) {
  if (a > 0) { g = a; }
  if (b > 0) { h = b; }
}
int main() {
  p(1, 2);
  p(3, 4);
  printf("%d", g);
  return 0;
}`,

	"deep-chain": `
int g;
int l4(int x) { return x * 2; }
int l3(int x) { return l4(x) + 1; }
int l2(int x) { return l3(x) + 1; }
int l1(int x) { return l2(x) + 1; }
int main() {
  g = l1(5);
  printf("%d", g);
  return 0;
}`,

	"recursion-depth": `
int g1; int g2;
void swapper(int k) {
  int t;
  if (k > 0) {
    t = g1;
    g1 = g2;
    g2 = t;
    swapper(k - 1);
  }
}
int main() {
  g1 = 10;
  g2 = 20;
  swapper(5);
  printf("%d %d", g1, g2);
  return 0;
}`,
}

// keyedInput builds per-scanf input streams so slices read position-stable
// values.
func keyedInput(prog *lang.Program) map[lang.NodeID][]int64 {
	keyed := map[lang.NodeID][]int64{}
	n := int64(3)
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if _, ok := s.(*lang.ScanfStmt); ok {
				keyed[s.Base().OriginID()] = []int64{n, n + 1, n + 2, n + 3, n + 4, n + 5, n + 6, n + 7}
				n += 3
			}
		}
	}
	return keyed
}

// criterionValues runs prog recording the values printed by the printf with
// the given origin ID.
func criterionValues(t *testing.T, prog *lang.Program, origin lang.NodeID, keyed map[lang.NodeID][]int64) [][]int64 {
	t.Helper()
	res, err := interp.Run(prog, interp.Options{
		KeyedInput:          keyed,
		AllowInputExhausted: true,
		Record:              map[lang.NodeID]bool{origin: true},
	})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, lang.Print(prog))
	}
	return res.Values[origin]
}

func TestPipelineCorpus(t *testing.T) {
	for name, src := range corpus {
		name, src := name, src
		t.Run(name, func(t *testing.T) {
			prog := lang.MustParse(src)
			keyed := keyedInput(prog)
			g := sdg.MustBuild(prog)

			for siteIdx, site := range g.Sites {
				if !site.Lib || site.Callee != "printf" {
					continue
				}
				origin := site.Stmt.Base().OriginID()
				want := criterionValues(t, prog, origin, keyed)
				crit := append([]sdg.VertexID(nil), site.ActualIns...)

				// Polyvariant.
				var cfgs core.Configs
				for _, v := range crit {
					cfgs = append(cfgs, core.Config{Vertex: v})
				}
				res, err := core.Specialize(g, cfgs)
				if err != nil {
					t.Fatalf("site %d: Specialize: %v", siteIdx, err)
				}
				if err := core.CheckNoMismatches(res.R); err != nil {
					t.Errorf("site %d: mismatch: %v", siteIdx, err)
				}
				if err := res.ReslicingCheck(cfgs); err != nil {
					t.Errorf("site %d: reslicing: %v", siteIdx, err)
				}
				out, err := emit.Program(g, res.Variants())
				if err != nil {
					t.Fatalf("site %d: emit: %v", siteIdx, err)
				}
				if _, err := lang.Parse(lang.Print(out)); err != nil {
					t.Fatalf("site %d: slice does not reparse: %v\n%s", siteIdx, err, lang.Print(out))
				}
				got := criterionValues(t, out, origin, keyed)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("site %d: poly slice values %v, want %v\n%s", siteIdx, got, want, lang.Print(out))
				}

				// Slice does no more work than the original.
				origRun, _ := interp.Run(prog, interp.Options{KeyedInput: keyed, AllowInputExhausted: true})
				sliceRun, err := interp.Run(out, interp.Options{KeyedInput: keyed, AllowInputExhausted: true})
				if err != nil {
					t.Fatalf("site %d: slice run: %v", siteIdx, err)
				}
				if sliceRun.Steps > origRun.Steps {
					t.Errorf("site %d: slice executes %d steps, original %d", siteIdx, sliceRun.Steps, origRun.Steps)
				}

				// Monovariant baseline: fresh graph (summary edges mutate).
				gm := sdg.MustBuild(prog)
				mcrit := make([]sdg.VertexID, len(crit))
				copy(mcrit, crit)
				mres := mono.Binkley(gm, mcrit)
				mout, err := emit.Program(gm, mres.Variants())
				if err != nil {
					t.Fatalf("site %d: mono emit: %v", siteIdx, err)
				}
				mgot := criterionValues(t, mout, origin, keyed)
				if !reflect.DeepEqual(want, mgot) {
					t.Errorf("site %d: mono slice values %v, want %v", siteIdx, mgot, want)
				}
			}
		})
	}
}

// TestPipelineElemsEqualsHRB cross-validates the two slicer families on the
// whole corpus: Elems(pre*) == HRB closure slice.
func TestPipelineElemsEqualsHRB(t *testing.T) {
	for name, src := range corpus {
		prog := lang.MustParse(src)
		g := sdg.MustBuild(prog)
		crit := core.PrintfCriterion(g, "main")
		if len(crit) == 0 {
			continue
		}
		_, elems, err := core.ClosureSlice(g, core.SDGVertices(crit))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g2 := sdg.MustBuild(prog)
		slice.ComputeSummaryEdges(g2)
		hrb := slice.Backward(g2, crit)
		if len(elems) != len(hrb) {
			t.Errorf("%s: PDS slice %d elements, HRB %d", name, len(elems), len(hrb))
		}
		for v := range hrb {
			if !elems[v] {
				t.Errorf("%s: HRB element %s missing from PDS slice", name, g2.VertexString(v))
			}
		}
	}
}

// TestPipelineGeneratedSuites runs the analysis-only checks on every small
// generated suite (the suites are not interpretable — their recursion is
// unguarded — so behavior is not compared).
func TestPipelineGeneratedSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, cfg := range workload.SmallBenchmarks() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			prog := workload.Generate(cfg)
			g := sdg.MustBuild(prog)
			for i, site := range g.Sites {
				if !site.Lib || site.Callee != "printf" || i%2 == 1 {
					continue
				}
				var cfgs core.Configs
				for _, v := range site.ActualIns {
					cfgs = append(cfgs, core.Config{Vertex: v})
				}
				res, err := core.Specialize(g, cfgs)
				if err != nil {
					t.Fatalf("site %d: %v", i, err)
				}
				if err := core.CheckNoMismatches(res.R); err != nil {
					t.Errorf("site %d: %v", i, err)
				}
				if !res.A6.IsReverseDeterministic() {
					t.Errorf("site %d: A6 not MRD", i)
				}
				if _, err := emit.Program(g, res.Variants()); err != nil {
					t.Errorf("site %d: emit: %v", i, err)
				}
			}
		})
	}
}
