package specslice_test

// The per-phase timing breakdown has two JSON representations: the
// canonical internal one (core.Timings, tagged with the wire names) and
// the public serving mirror (specslice.Timings, returned by the batch API
// and reported by internal/server). They must marshal to the same field
// set, and the facade's conversion must carry every phase across —
// otherwise the serving contract silently drifts from the internal one.

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"specslice"
	"specslice/internal/core"
)

func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	m := map[string]any{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func TestTimingsWireNamesInSync(t *testing.T) {
	got := jsonKeys(t, core.Timings{})
	want := jsonKeys(t, specslice.Timings{})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("core.Timings marshals %v,\nspecslice.Timings marshals %v — keep the wire names in sync", got, want)
	}
}

// TestTimingsConversionLossless drives the facade's core→public conversion
// through SliceAll and checks no phase is dropped: serialized as JSON, the
// public phases must equal the internal aggregate field-for-field.
func TestTimingsConversionLossless(t *testing.T) {
	in := core.Timings{
		Encode:               1 * time.Nanosecond,
		Prestar:              2,
		AutomatonOps:         3,
		Readout:              4,
		Total:                5,
		AutomatonDeterminize: 6,
		AutomatonMinimize:    7,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out specslice.Timings
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out == (specslice.Timings{}) {
		t.Fatal("round trip lost everything")
	}
	back, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	var a, b map[string]int64
	if err := json.Unmarshal(data, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(back, &b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("conversion is lossy:\ncore:   %s\npublic: %s", data, back)
	}
}
