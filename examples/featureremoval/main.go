// Feature removal (paper §7, Fig. 16): delete the product computation from
// a program that computes both the sum and the product of 1..10, while
// keeping procedure add — which both features use — alive for the sum.
//
// Single-procedure feature removal was known; the paper's contribution is
// making it work across procedure boundaries, by subtracting the forward
// stack-configuration slice and re-specializing what remains.
package main

import (
	"fmt"
	"log"

	"specslice"
)

const src = `
int sum; int prod;

int add(int a, int b) {
  return a + b;
}

int mult(int a, int b) {
  int i = 0;
  int ans = 0;
  while (i < a) {
    ans = add(ans, b);
    i = add(i, 1);
  }
  return ans;
}

void tally(int n) {
  int i = 1;
  while (i <= n) {
    sum = add(sum, i);
    prod = mult(prod, i);
    i = add(i, 1);
  }
}

int main() {
  sum = 0;
  prod = 1;
  tally(10);
  printf("%d ", sum);
  printf("%d ", prod);
  return 0;
}
`

func main() {
	prog := specslice.MustParse(src)
	g, err := prog.SDG()
	if err != nil {
		log.Fatal(err)
	}

	before, _ := prog.Run(specslice.RunOptions{})
	fmt.Printf("original output: %v (sum 55, product 3628800)\n\n", before.Output)

	sl, err := g.RemoveFeature(g.StmtCriterion("main", "prod = 1"))
	if err != nil {
		log.Fatal(err)
	}
	out, err := sl.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- program with the product feature removed ---")
	fmt.Println(out.Source())

	after, err := out.Run(specslice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output after feature removal: %v (the sum survives; add was kept)\n", after.Output)
}
