// Function pointers and indirect calls (paper §6.2, Fig. 15).
//
// The indirect call x = p(1, 2) is first routed through a synthesized
// dispatch procedure (if (p == f) ... else g(...)), after which the
// specialization slicer runs unmodified: it specializes the dispatch
// procedure and the pointed-to functions — g loses its unused second
// parameter in its called variant, while the original f and g survive as
// address-space anchors.
package main

import (
	"fmt"
	"log"

	"specslice"
)

const src = `
int f(int a, int b) {
  return a + b;
}

int g(int a, int b) {
  return a;
}

int main() {
  fnptr p;
  int x;
  int c;
  scanf("%d", &c);
  if (c > 0) { p = f; } else { p = &g; }
  x = p(1, 2);
  printf("%d", x);
  return 0;
}
`

func main() {
	prog := specslice.MustParse(src)

	direct, err := prog.EliminateIndirectCalls()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- after the §6.2 indirect-call transformation ---")
	fmt.Println(direct.Source())

	g, err := direct.SDG()
	if err != nil {
		log.Fatal(err)
	}
	sl, err := g.SpecializationSlice(g.PrintfCriterion("main"))
	if err != nil {
		log.Fatal(err)
	}
	out, err := sl.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- specialization slice ---")
	fmt.Println(out.Source())

	for _, input := range []int64{1, -1} {
		r1, _ := prog.Run(specslice.RunOptions{Input: []int64{input}})
		r2, err := out.Run(specslice.RunOptions{Input: []int64{input}})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("input %2d: original %v, slice %v\n", input, r1.Output, r2.Output)
	}
}
