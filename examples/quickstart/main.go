// Quickstart: specialization-slice the paper's Fig. 1 program.
//
// The program calls p three times with different relevant arguments;
// slicing on the printf specializes p into a one-parameter and a
// two-parameter version (paper Fig. 1(b)), and the result runs and prints
// the same value as the original.
package main

import (
	"fmt"
	"log"

	"specslice"
)

const src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

func main() {
	prog := specslice.MustParse(src)
	g, err := prog.SDG()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SDG: %+v\n\n", g.Stats())

	sl, err := g.SpecializationSlice(g.PrintfCriterion("main"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specialized versions per procedure: %v\n\n", sl.VariantCounts())

	out, err := sl.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- specialization slice ---")
	fmt.Println(out.Source())

	r1, err := prog.Run(specslice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := out.Run(specslice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original prints %v in %d steps; slice prints %v in %d steps\n",
		r1.Output, r1.Steps, r2.Output, r2.Steps)

	if err := sl.SelfCheck(); err != nil {
		log.Fatalf("reslicing self-check failed: %v", err)
	}
	fmt.Println("reslicing self-check passed")
}
