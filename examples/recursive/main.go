// Recursive slicing: the paper's Fig. 2.
//
// Procedure r calls itself directly; in the slice, the odd and even
// recursion levels need different work, so the algorithm splits r into two
// *mutually recursive* variants r_1 and r_2, and s into two one-parameter
// variants — exactly the paper's Fig. 2(b). The slice is compared against
// the original behaviorally, and against Binkley's monovariant slice for
// contrast.
package main

import (
	"fmt"
	"log"

	"specslice"
)

const src = `
int g1; int g2;

void s(int a, int b) {
  g1 = b;
  g2 = a;
}

void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}

int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  printf("%d\n", g1);
  return 0;
}
`

func main() {
	prog := specslice.MustParse(src)
	g, err := prog.SDG()
	if err != nil {
		log.Fatal(err)
	}
	crit := g.PrintfCriterion("main")

	poly, err := g.SpecializationSlice(crit)
	if err != nil {
		log.Fatal(err)
	}
	polyProg, err := poly.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- polyvariant slice (note the mutual recursion of r_1/r_2) ---")
	fmt.Println(polyProg.Source())
	fmt.Printf("versions: %v\n\n", poly.VariantCounts())

	monoSl, err := g.MonovariantSlice(crit)
	if err != nil {
		log.Fatal(err)
	}
	monoProg, err := monoSl.Program()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("--- monovariant (Binkley) slice, for contrast ---")
	fmt.Println(monoProg.Source())

	r0, _ := prog.Run(specslice.RunOptions{})
	r1, err := polyProg.Run(specslice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	r2, err := monoProg.Run(specslice.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original: %v | polyvariant: %v | monovariant: %v\n", r0.Output, r1.Output, r2.Output)
}
