package specslice_test

// Interpreter-backed differential oracle: the paper's executable-slice
// guarantee, checked by execution rather than by structure. For randomly
// generated workload programs and randomly drawn criteria, the original
// program and the emitted specialized program are both run through
// internal/interp, and the projected observable behavior at the criterion —
// the sequence of values observed at each criterion statement, keyed by
// origin ID — must agree exactly. This is the safety net that lets the
// automaton and engine hot paths keep being rewritten aggressively: a slice
// that is structurally plausible but behaviorally wrong fails here.
//
// The generator seed and the criterion draws are deterministic, so a
// failure reproduces by name. In -short mode a reduced budget runs; the
// full run checks at least 200 program/criterion pairs (the PR's
// acceptance bar).

import (
	"math/rand"
	"reflect"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/engine"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// oracleStepBudget bounds one interpreter run. Generated programs whose
// loops blow past it are skipped (deterministically), not failed: the
// oracle compares behavior, and programs without observable termination in
// budget have none to compare.
const oracleStepBudget = 2_000_000

// oracleConfigs returns the generated-program corpus: non-recursive (the
// generator's self-recursion is unguarded and never terminates), sized so
// SDG construction and interpretation stay test-suite cheap.
func oracleConfigs(n int) []workload.BenchConfig {
	rng := rand.New(rand.NewSource(0x5EED))
	out := make([]workload.BenchConfig, n)
	for i := range out {
		out[i] = workload.BenchConfig{
			Name:           "oracle",
			Procs:          5 + rng.Intn(8),
			TargetVertices: 150 + rng.Intn(300),
			CallSites:      12 + rng.Intn(24),
			Slices:         6,
			Seed:           int64(1000 + i),
		}
	}
	return out
}

// oracleCriterion is one drawn criterion: a spec for the slicer plus the
// origin IDs whose observations the two runs must agree on.
type oracleCriterion struct {
	name    string
	spec    core.CriterionSpec
	mono    []sdg.VertexID // the same criterion for the monovariant slicer
	origins []lang.NodeID
}

// drawCriteria samples criteria from g: printf sites (the paper's usual
// shape, explicit main configurations) and random statement/predicate
// vertices in every reachable calling context. Call and return statements
// are excluded — emit legitimately rewrites their argument/value lists, so
// the used-variable observation would differ structurally even when the
// slice is correct.
func drawCriteria(g *sdg.Graph, rng *rand.Rand, n int) []oracleCriterion {
	var printfs []*sdg.Site
	for _, s := range g.Sites {
		if s.Lib && s.Callee == "printf" {
			printfs = append(printfs, s)
		}
	}
	var stmtVerts []sdg.VertexID
	for _, v := range g.Vertices {
		if v.Stmt == nil {
			continue
		}
		if v.Kind != sdg.KindStmt && v.Kind != sdg.KindPredicate {
			continue
		}
		switch v.Stmt.(type) {
		case *lang.AssignStmt, *lang.IfStmt, *lang.WhileStmt:
			stmtVerts = append(stmtVerts, v.ID)
		case *lang.DeclStmt:
			if v.Stmt.(*lang.DeclStmt).Init != nil {
				stmtVerts = append(stmtVerts, v.ID)
			}
		}
	}

	var out []oracleCriterion
	for i := 0; i < n; i++ {
		if len(printfs) > 0 && (i%2 == 0 || len(stmtVerts) == 0) {
			site := printfs[rng.Intn(len(printfs))]
			crit := append([]sdg.VertexID(nil), site.ActualIns...)
			var cfgs core.Configs
			for _, v := range crit {
				cfgs = append(cfgs, core.Config{Vertex: v})
			}
			out = append(out, oracleCriterion{
				name:    "printf",
				spec:    cfgs,
				mono:    crit,
				origins: []lang.NodeID{site.Stmt.Base().OriginID()},
			})
			continue
		}
		if len(stmtVerts) == 0 {
			break
		}
		k := 1 + rng.Intn(3)
		seen := map[sdg.VertexID]bool{}
		var crit []sdg.VertexID
		var origins []lang.NodeID
		for j := 0; j < k; j++ {
			v := stmtVerts[rng.Intn(len(stmtVerts))]
			if seen[v] {
				continue
			}
			seen[v] = true
			crit = append(crit, v)
			origins = append(origins, g.Vertices[v].Stmt.Base().OriginID())
		}
		out = append(out, oracleCriterion{
			name:    "vertices",
			spec:    core.Vertices(crit),
			mono:    crit,
			origins: origins,
		})
	}
	return out
}

func recordAll(origins []lang.NodeID) map[lang.NodeID]bool {
	m := map[lang.NodeID]bool{}
	for _, o := range origins {
		m[o] = true
	}
	return m
}

func TestDifferentialOracle(t *testing.T) {
	nPrograms, perProgram, minPairs := 24, 20, 200
	if testing.Short() {
		nPrograms, perProgram, minPairs = 7, 10, 25
	}
	rng := rand.New(rand.NewSource(0xD1FF))

	checked, skippedPrograms, skippedPairs, monoChecked := 0, 0, 0, 0
	for _, cfg := range oracleConfigs(nPrograms) {
		prog := workload.Generate(cfg)
		g := sdg.MustBuild(prog)
		eng := engine.New(g)
		crits := drawCriteria(g, rng, perProgram)

		// One original run records every origin any drawn criterion
		// observes; per-criterion comparisons read subsets of it.
		var all []lang.NodeID
		for _, c := range crits {
			all = append(all, c.origins...)
		}
		orig, err := interp.Run(prog, interp.Options{
			MaxSteps: oracleStepBudget,
			Record:   recordAll(all),
		})
		if err != nil {
			// Deterministically non-terminating (or otherwise unrunnable)
			// generated program: nothing to compare.
			skippedPrograms++
			continue
		}

		for _, c := range crits {
			res, err := eng.Specialize(c.spec)
			if err != nil {
				// Legitimate refusals — e.g. criterion vertices in a
				// procedure the generator never ended up calling.
				skippedPairs++
				continue
			}
			// The emitted AST is interpreted directly (its statements
			// carry the Origin links the recorder keys on); the printed
			// text must still reparse, like any served slice.
			out, err := emit.Program(g, res.Variants())
			if err != nil {
				t.Fatalf("%s seed %d %s: emit: %v", cfg.Name, cfg.Seed, c.name, err)
			}
			if _, err := lang.Parse(lang.Print(out)); err != nil {
				t.Fatalf("%s seed %d %s: slice does not reparse: %v", cfg.Name, cfg.Seed, c.name, err)
			}
			sliced, err := interp.Run(out, interp.Options{
				MaxSteps: orig.Steps + 1000,
				Record:   recordAll(c.origins),
			})
			if err != nil {
				t.Fatalf("%s seed %d %s: slice run: %v\n%s", cfg.Name, cfg.Seed, c.name, err, lang.Print(out))
			}
			if sliced.Steps > orig.Steps {
				t.Errorf("%s seed %d %s: slice executes %d steps, original %d",
					cfg.Name, cfg.Seed, c.name, sliced.Steps, orig.Steps)
			}
			for _, o := range c.origins {
				if !reflect.DeepEqual(orig.Values[o], sliced.Values[o]) {
					t.Fatalf("%s seed %d %s: behavior diverges at origin %d:\noriginal: %v\nslice:    %v\n%s",
						cfg.Name, cfg.Seed, c.name, o, orig.Values[o], sliced.Values[o], lang.Print(out))
				}
			}
			checked++

			// Every fourth pair, the monovariant baseline gets the same
			// behavioral check (it claims executability too).
			if checked%4 == 0 {
				mres := eng.Binkley(c.mono)
				mout, err := emit.Program(g, mres.Variants())
				if err != nil {
					t.Fatalf("%s seed %d %s: mono emit: %v", cfg.Name, cfg.Seed, c.name, err)
				}
				msliced, err := interp.Run(mout, interp.Options{
					MaxSteps: orig.Steps + 1000,
					Record:   recordAll(c.origins),
				})
				if err != nil {
					t.Fatalf("%s seed %d %s: mono run: %v", cfg.Name, cfg.Seed, c.name, err)
				}
				for _, o := range c.origins {
					if !reflect.DeepEqual(orig.Values[o], msliced.Values[o]) {
						t.Fatalf("%s seed %d %s: mono behavior diverges at origin %d:\noriginal: %v\nslice:    %v",
							cfg.Name, cfg.Seed, c.name, o, orig.Values[o], msliced.Values[o])
					}
				}
				monoChecked++
			}
		}
	}
	t.Logf("oracle: %d pairs checked (%d mono), %d pairs skipped, %d programs skipped",
		checked, monoChecked, skippedPairs, skippedPrograms)
	if checked < minPairs {
		t.Errorf("only %d pairs checked, want >= %d (skipped %d programs, %d pairs)",
			checked, minPairs, skippedPrograms, skippedPairs)
	}
}
