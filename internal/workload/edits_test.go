package workload

import (
	"strings"
	"testing"

	"specslice/internal/lang"
)

func editorBase(t *testing.T) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(Fig16Source)
	if err != nil {
		t.Fatalf("parse Fig16: %v", err)
	}
	return prog
}

func TestEditorProducesValidVersions(t *testing.T) {
	// Every version an editor emits must parse, and every step must be a
	// real edit or an explicit noop.
	for seed := int64(1); seed <= 8; seed++ {
		ed := NewEditor(editorBase(t), seed)
		prev := ed.Source()
		for step := 0; step < 12; step++ {
			desc := ed.Step()
			src := ed.Source()
			if _, err := lang.Parse(src); err != nil {
				t.Fatalf("seed %d step %d (%s): invalid program: %v\n%s", seed, step, desc, err, src)
			}
			if desc != "noop" && src == prev {
				t.Fatalf("seed %d step %d (%s): claimed an edit but source is unchanged", seed, step, desc)
			}
			prev = src
		}
	}
}

func TestEditorReproducibleBySeed(t *testing.T) {
	a := NewEditor(editorBase(t), 42)
	b := NewEditor(editorBase(t), 42)
	for i := 0; i < 10; i++ {
		da, db := a.Step(), b.Step()
		if da != db {
			t.Fatalf("step %d: ops diverge: %q vs %q", i, da, db)
		}
	}
	if a.Source() != b.Source() {
		t.Fatal("same seed produced different programs")
	}
	c := NewEditor(editorBase(t), 43)
	c.Apply(10)
	if c.Source() == a.Source() {
		t.Fatal("different seeds produced identical edit streams (suspicious)")
	}
}

func TestEditorCoversAllKinds(t *testing.T) {
	// Across a modest seed range, every edit kind must occur: the oracle's
	// coverage claims depend on the mix actually exercising procedure
	// add/remove and call edits, not just statement tweaks.
	got := map[string]bool{}
	for seed := int64(1); seed <= 30; seed++ {
		ed := NewEditor(editorBase(t), seed)
		for step := 0; step < 10; step++ {
			desc := ed.Step()
			got[strings.SplitN(desc, " ", 2)[0]] = true
		}
	}
	for _, kind := range []string{"rename", "insert", "delete", "add-call", "remove-call", "add-proc", "remove-proc"} {
		if !got[kind] {
			t.Errorf("edit kind %q never applied in 30 seeds x 10 steps", kind)
		}
	}
}

func TestEditorKeepsMainPrintf(t *testing.T) {
	// The criteria anchor: main must always keep at least one printf.
	for seed := int64(1); seed <= 12; seed++ {
		ed := NewEditor(editorBase(t), seed)
		for step := 0; step < 15; step++ {
			ed.Step()
			printfs := 0
			for _, s := range ed.Program().Func("main").Stmts() {
				if _, ok := s.(*lang.PrintfStmt); ok {
					printfs++
				}
			}
			if printfs == 0 {
				t.Fatalf("seed %d step %d: main lost its last printf\nops: %v", seed, step, ed.Ops)
			}
		}
	}
}

func TestEditorOnGeneratedWorkload(t *testing.T) {
	// The editor must handle generator output (the corpus the equivalence
	// oracle edits), including separable procedures and while loops.
	cfg := BenchConfig{Name: "edit", Procs: 8, TargetVertices: 300, CallSites: 20, Slices: 5, Seed: 77}
	ed := NewEditor(Generate(cfg), 5)
	for step := 0; step < 20; step++ {
		ed.Step()
	}
	if _, err := lang.Parse(ed.Source()); err != nil {
		t.Fatalf("final program invalid: %v\nops: %v", err, ed.Ops)
	}
	real := 0
	for _, op := range ed.Ops {
		if op != "noop" {
			real++
		}
	}
	if real < 15 {
		t.Errorf("only %d/20 steps applied real edits on generated workload", real)
	}
}
