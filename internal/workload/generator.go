package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"specslice/internal/lang"
)

// BenchConfig describes one synthetic benchmark program, shaped after a row
// of the paper's Fig. 17.
type BenchConfig struct {
	Name string
	// Versions is the paper's column 2 (how many versions of the real
	// program the original study used); informational only.
	Versions int
	// Procs is the number of procedures to generate (Fig. 17 column 4).
	Procs int
	// TargetVertices steers the generated body sizes toward the paper's
	// average PDG vertex count (Fig. 17 column 5).
	TargetVertices int
	// CallSites steers the number of call sites (Fig. 17 column 6).
	CallSites int
	// Slices is how many slicing criteria the experiments take (Fig. 17
	// column 7).
	Slices int
	// Recursive adds self-recursive calls.
	Recursive bool
	Seed      int64
}

// Benchmarks returns the twelve suites of the paper's Fig. 17. The four
// large programs (gzip, space, flex, go) are scaled to a quarter of their
// PDG-vertex counts so the full experiment suite runs in CI-scale time; the
// shape metrics the experiments report (ratios, distributions, crossovers)
// are size-independent. See EXPERIMENTS.md.
func Benchmarks() []BenchConfig {
	return []BenchConfig{
		{Name: "tcas", Versions: 37, Procs: 9, TargetVertices: 466, CallSites: 38, Slices: 10, Seed: 101},
		{Name: "schedule2", Versions: 2, Procs: 16, TargetVertices: 980, CallSites: 47, Slices: 6, Seed: 102},
		{Name: "schedule", Versions: 6, Procs: 18, TargetVertices: 873, CallSites: 44, Slices: 10, Seed: 103},
		{Name: "print_tokens", Versions: 4, Procs: 18, TargetVertices: 1298, CallSites: 89, Slices: 4, Seed: 104},
		{Name: "replace", Versions: 26, Procs: 21, TargetVertices: 1330, CallSites: 65, Slices: 12, Seed: 105},
		{Name: "print_tokens2", Versions: 8, Procs: 19, TargetVertices: 1128, CallSites: 84, Slices: 10, Seed: 106},
		{Name: "tot_info", Versions: 19, Procs: 7, TargetVertices: 675, CallSites: 37, Slices: 10, Seed: 107},
		{Name: "wc", Versions: 1, Procs: 11, TargetVertices: 1899, CallSites: 170, Slices: 10, Seed: 108, Recursive: true},
		{Name: "gzip", Versions: 4, Procs: 97, TargetVertices: 6605, CallSites: 556, Slices: 8, Seed: 109, Recursive: true},
		{Name: "space", Versions: 20, Procs: 136, TargetVertices: 4706, CallSites: 1016, Slices: 8, Seed: 110},
		{Name: "flex", Versions: 5, Procs: 147, TargetVertices: 9609, CallSites: 1308, Slices: 8, Seed: 111, Recursive: true},
		{Name: "go", Versions: 1, Procs: 372, TargetVertices: 25614, CallSites: 2084, Slices: 4, Seed: 112, Recursive: true},
	}
}

// SmallBenchmarks returns only the Siemens-suite-sized configurations plus
// wc, for quick test runs.
func SmallBenchmarks() []BenchConfig {
	all := Benchmarks()
	return all[:8]
}

// Generate produces a deterministic synthetic MicroC program for cfg.
//
// The generator mimics two properties of the paper's C programs that the
// experiments depend on:
//
//   - Most procedures are *cohesive*: their outputs depend on all their
//     inputs, so every slice takes them whole and they get a single
//     specialized version (paper Fig. 18: 90.6% of procedures).
//   - A minority are *separable*, in the style of the paper's Fig. 1
//     procedure p: parameter i feeds global i, so call-sites with different
//     relevant arguments induce parameter mismatches and hence multiple
//     specializations.
//
// Globals have locality (each procedure touches a small window), keeping
// call-site interfaces — and hence PDG vertex counts — proportional to the
// real programs'.
func Generate(cfg BenchConfig) *lang.Program {
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	src := g.source()
	prog, err := lang.Parse(src)
	if err != nil {
		panic(fmt.Sprintf("workload.Generate(%s): generated invalid program: %v\n%s", cfg.Name, err, src))
	}
	return prog
}

// GenerateSource returns the program text (useful for golden files and
// debugging).
func GenerateSource(cfg BenchConfig) string {
	g := &generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	return g.source()
}

type generator struct {
	cfg BenchConfig
	rng *rand.Rand

	globals []string
	procs   []genProc

	callBudget int
}

type genProc struct {
	name      string
	params    []string
	returns   bool
	separable bool
	pure      bool
	driver    bool     // may call side-effecting procs, propagating mismatches
	window    []string // the globals this proc touches directly
}

func (g *generator) source() string {
	nGlobals := max(4, min(12, g.cfg.Procs/4+4))
	for i := 0; i < nGlobals; i++ {
		g.globals = append(g.globals, fmt.Sprintf("gv%d", i))
	}
	n := g.cfg.Procs - 1 // main is separate
	for i := 0; i < n; i++ {
		np := 2 + g.rng.Intn(2)
		// Three styles, echoing real C code: pure functions (inputs →
		// return value; always a single specialized version), cohesive
		// procedures with one global side effect, and the Fig.-1-style
		// separable minority that drives specialization.
		// Style by call-graph position: leaves (high index) receive the
		// most fan-in under the leafward call bias, so they are mostly
		// pure — otherwise every caller-context liveness pattern would
		// split them, which real programs don't exhibit (paper Fig. 18).
		separable := g.rng.Intn(100) < 12
		pure := !separable && (i >= 2*n/3 || g.rng.Intn(100) < 40)
		if separable {
			np = 2 // two independent param→global chains, as in Fig. 1's p
		}
		var params []string
		for j := 0; j < np; j++ {
			params = append(params, fmt.Sprintf("a%d", j))
		}
		w := g.rng.Intn(nGlobals)
		wsize := 1
		if separable {
			wsize = np
		}
		if pure {
			wsize = 0
		}
		var window []string
		for j := 0; j < wsize; j++ {
			window = append(window, g.globals[(w+j)%nGlobals])
		}
		g.procs = append(g.procs, genProc{
			name:      fmt.Sprintf("p%d", i),
			params:    params,
			returns:   pure || g.rng.Intn(2) == 0,
			separable: separable,
			pure:      pure,
			driver:    !pure && !separable && g.rng.Intn(100) < 35,
			window:    window,
		})
	}

	// Reserve call budget for main so large suites still call out of main.
	mainCalls := max(3, min(g.cfg.Procs/2, g.cfg.CallSites/4))
	g.callBudget = g.cfg.CallSites - mainCalls

	// Per-procedure statement budget: aim TargetVertices across procs,
	// discounting the per-call interface cost (~10 vertices).
	callsPerProc := 0
	if n > 0 {
		callsPerProc = g.callBudget / max(1, n)
	}
	perProc := g.cfg.TargetVertices / max(1, g.cfg.Procs)
	stmtBudget := max(4, perProc-8-11*callsPerProc)

	var sb strings.Builder
	for _, gl := range g.globals {
		fmt.Fprintf(&sb, "int %s;\n", gl)
	}
	sb.WriteByte('\n')

	for i, p := range g.procs {
		ret := "void"
		if p.returns {
			ret = "int"
		}
		var params []string
		for _, pn := range p.params {
			params = append(params, "int "+pn)
		}
		fmt.Fprintf(&sb, "%s %s(%s) {\n", ret, p.name, strings.Join(params, ", "))
		g.emitBody(&sb, i, p, stmtBudget, callsPerProc)
		sb.WriteString("}\n\n")
	}

	// main: initialize globals, call around, print slice points.
	sb.WriteString("int main() {\n")
	sb.WriteString("  int x0;\n  int x1;\n  int x2;\n")
	sb.WriteString("  x0 = 1;\n  x1 = 2;\n  x2 = 3;\n")
	for i, gl := range g.globals {
		fmt.Fprintf(&sb, "  %s = %d;\n", gl, i+1)
	}
	// main folds each call's result into a global (round-robin), so every
	// called procedure can influence some slice criterion.
	g.callBudget += mainCalls
	mainProc := genProc{name: "main", params: []string{"x0", "x1", "x2"}}
	for i := 0; i < mainCalls && len(g.procs) > 0; i++ {
		callee, args, ok := g.pickCall(-1, mainProc)
		if !ok {
			break
		}
		call := fmt.Sprintf("%s(%s)", callee.name, strings.Join(args, ", "))
		gl := g.globals[i%len(g.globals)]
		if callee.returns {
			fmt.Fprintf(&sb, "  %s = %s + %s;\n", gl, gl, call)
		} else {
			fmt.Fprintf(&sb, "  %s;\n", call)
		}
	}
	// Fig.-1-style clusters: each separable procedure is driven through
	// the paper's three-call pattern, whose sites need different parameter
	// subsets once a slice makes only part of its window live.
	var separableWindows []string
	for _, p := range g.procs {
		if !p.separable || len(p.window) < 2 || g.callBudget < 3 {
			continue
		}
		g.callBudget -= 3
		fmt.Fprintf(&sb, "  %s(%s, 2);\n", p.name, p.window[0])
		fmt.Fprintf(&sb, "  %s(%s, 3);\n", p.name, p.window[0])
		fmt.Fprintf(&sb, "  %s(4, %s + %s);\n", p.name, p.window[0], p.window[1])
		separableWindows = append(separableWindows, p.window...)
	}

	// Slice points: one aggregate print (most computation live — the
	// common case) plus narrow single-global prints (partial liveness —
	// the mismatch-inducing case), preferring separable windows.
	var agg []string
	for i := 0; i < (len(g.globals)+1)/2; i++ {
		agg = append(agg, g.globals[i])
	}
	fmt.Fprintf(&sb, "  printf(\"%%d\\n\", %s);\n", strings.Join(agg, " + "))
	nPrints := max(1, min(5, g.cfg.Slices-1))
	for i := 0; i < nPrints; i++ {
		gl := g.globals[g.rng.Intn(len(g.globals))]
		if len(separableWindows) > 0 && i%2 == 0 {
			gl = separableWindows[g.rng.Intn(len(separableWindows))]
		}
		fmt.Fprintf(&sb, "  printf(\"%%d\\n\", %s);\n", gl)
	}
	sb.WriteString("  return 0;\n}\n")
	return sb.String()
}

// emitBody writes one procedure body in its style.
func (g *generator) emitBody(sb *strings.Builder, i int, p genProc, stmtBudget, calls int) {
	if p.separable {
		// Fig.-1 style: parameter j feeds window global j; independent
		// chains, so different callers need different parameter subsets.
		// Separable procedures are leaves (no calls), keeping the cascade
		// effect (paper §4.3) bounded as in real programs.
		for j, pn := range p.params {
			fmt.Fprintf(sb, "  %s = %s + %d;\n", p.window[j], pn, j+1)
		}
		if p.returns {
			fmt.Fprintf(sb, "  return %s;\n", p.params[0])
		}
		return
	}

	// Cohesive style: fold all parameters into an accumulator local; every
	// output (globals in the window, return value) depends on it, so slices
	// take the whole procedure. Call results also feed the accumulator, so
	// a callee's liveness follows its caller's — the usage uniformity that
	// makes 90% of real procedures need only one specialized version
	// (paper Fig. 18).
	fmt.Fprintf(sb, "  int acc = %s;\n", strings.Join(p.params, " + "))
	pp := p
	pp.params = append(append([]string(nil), p.params...), "acc")
	emitted := 0
	for emitted < stmtBudget {
		emitted += g.emitStmt(sb, i, pp, 1, &emitted)
	}
	for c := 0; c < calls; c++ {
		g.emitCallInto(sb, i, pp, 1, "acc")
	}
	// Window writes form a dependence chain, so the live-output patterns a
	// slice can induce are prefixes — cohesive procedures rarely split.
	for j, w := range p.window {
		if j == 0 {
			fmt.Fprintf(sb, "  %s = %s + acc;\n", w, w)
		} else {
			fmt.Fprintf(sb, "  %s = %s + %s + acc;\n", w, w, p.window[j-1])
		}
	}
	if p.returns {
		sb.WriteString("  return acc;\n")
	}
}

// emitStmt writes one statement (possibly compound), returning the rough
// statement count it produced.
func (g *generator) emitStmt(sb *strings.Builder, i int, p genProc, depth int, emitted *int) int {
	ind := indent(depth)
	switch k := g.rng.Intn(10); {
	case k < 4:
		fmt.Fprintf(sb, "%sacc = acc + %s;\n", ind, g.operand(p))
		return 1
	case k < 6:
		if len(p.window) == 0 {
			fmt.Fprintf(sb, "%sacc = acc %s %s;\n", ind,
				[]string{"+", "*", "-"}[g.rng.Intn(3)], g.operand(p))
			return 1
		}
		fmt.Fprintf(sb, "%s%s = acc %s %s;\n", ind, p.window[g.rng.Intn(len(p.window))],
			[]string{"+", "*", "-"}[g.rng.Intn(3)], g.operand(p))
		return 1
	case k < 8 && depth < 3: // if
		fmt.Fprintf(sb, "%sif (%s > %d) {\n", ind, g.operand(p), g.rng.Intn(10))
		n := 1 + g.emitStmt(sb, i, p, depth+1, emitted)
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(sb, "%s} else {\n", ind)
			n += g.emitStmt(sb, i, p, depth+1, emitted)
		}
		fmt.Fprintf(sb, "%s}\n", ind)
		return n
	case k < 9 && depth < 3: // bounded while over a parameter copy
		lv := p.params[g.rng.Intn(len(p.params))]
		fmt.Fprintf(sb, "%swhile (%s > 0) {\n", ind, lv)
		n := 2 + g.emitStmt(sb, i, p, depth+1, emitted)
		fmt.Fprintf(sb, "%s%s = %s - 1;\n", indent(depth+1), lv, lv)
		fmt.Fprintf(sb, "%s}\n", ind)
		return n
	default:
		fmt.Fprintf(sb, "%sacc = acc * 2 + %d;\n", ind, g.rng.Intn(7))
		return 1
	}
}

// emitCallInto emits a call whose result (when any) is folded into the
// accumulator variable, tying the callee's liveness to the caller's.
func (g *generator) emitCallInto(sb *strings.Builder, from int, p genProc, depth int, acc string) {
	callee, args, ok := g.pickCall(from, p)
	if !ok {
		fmt.Fprintf(sb, "%s%s = %s + 1;\n", indent(depth), acc, acc)
		return
	}
	call := fmt.Sprintf("%s(%s)", callee.name, strings.Join(args, ", "))
	if callee.returns {
		fmt.Fprintf(sb, "%s%s = %s + %s;\n", indent(depth), acc, acc, call)
	} else {
		fmt.Fprintf(sb, "%s%s;\n", indent(depth), call)
	}
}

// emitCall emits a call from proc index from (callees have a higher index,
// keeping the call graph a DAG, except optional self-recursion; main passes
// from = -1 and may call anything). Callee choice is biased toward
// higher-index (leafward) procedures, which keeps transitive GMOD sets —
// and hence call-site interfaces — small, like real programs. When the
// budget is exhausted it degrades to an assignment.
func (g *generator) emitCall(sb *strings.Builder, from int, p genProc, depth int) {
	callee, args, ok := g.pickCall(from, p)
	if !ok {
		fmt.Fprintf(sb, "%s%s = %s;\n", indent(depth), g.globals[g.rng.Intn(len(g.globals))], g.operand(p))
		return
	}
	call := fmt.Sprintf("%s(%s)", callee.name, strings.Join(args, ", "))
	if callee.returns && g.rng.Intn(2) == 0 {
		fmt.Fprintf(sb, "%s%s = %s;\n", indent(depth), p.params[g.rng.Intn(len(p.params))], call)
	} else {
		fmt.Fprintf(sb, "%s%s;\n", indent(depth), call)
	}
}

// pickCall chooses a callee and argument expressions, honoring the budget.
// Non-main callers call only pure procedures: global side effects are
// orchestrated from main, so a procedure's call-sites carry no
// context-varying actual-out patterns — the usage uniformity behind the
// paper's 90.6%-single-version distribution.
func (g *generator) pickCall(from int, p genProc) (genProc, []string, bool) {
	lo := from + 1
	if g.callBudget <= 0 || lo >= len(g.procs) {
		return genProc{}, nil, false
	}
	var callee genProc
	if from < 0 {
		// main calls anything, spreading slice coverage.
		callee = g.procs[g.rng.Intn(len(g.procs))]
	} else if g.cfg.Recursive && g.rng.Intn(12) == 0 {
		callee = g.procs[from] // self-recursion
	} else {
		found := false
		for try := 0; try < 8; try++ {
			var cand genProc
			if g.rng.Intn(2) == 0 { // anywhere below (depth)
				cand = g.procs[lo+g.rng.Intn(len(g.procs)-lo)]
			} else { // leafward bias keeps transitive interfaces small
				span := min(6, len(g.procs)-lo)
				cand = g.procs[len(g.procs)-1-g.rng.Intn(span)]
			}
			if cand.pure || p.driver {
				callee = cand
				found = true
				break
			}
		}
		if !found {
			return genProc{}, nil, false
		}
	}
	g.callBudget--
	var args []string
	for range callee.params {
		// Mix of relevant values and constants: constants at separable
		// callees are what create different relevance patterns per site.
		if g.rng.Intn(3) == 0 {
			args = append(args, fmt.Sprintf("%d", 1+g.rng.Intn(9)))
		} else {
			args = append(args, g.operand(p))
		}
	}
	return callee, args, true
}

func (g *generator) operand(p genProc) string {
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%d", 1+g.rng.Intn(9))
	case 1:
		return g.globals[g.rng.Intn(len(g.globals))]
	default:
		return p.params[g.rng.Intn(len(p.params))]
	}
}

func indent(n int) string { return strings.Repeat("  ", n) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
