// Package workload provides the programs the experiments run on: the
// paper's figure examples (Figs. 1, 2, 13, 14, 15, 16), a wc-like utility
// for the §5 speed-up measurement, the exponential family Pk of §4.3, and a
// seeded synthetic generator that produces benchmark suites shaped like the
// paper's Fig. 17 test programs (the Siemens suite, wc, gzip, space, flex,
// go — whose C sources are not available offline; see DESIGN.md's
// substitution table).
package workload

import (
	"fmt"
	"strings"

	"specslice/internal/lang"
)

// Fig1Source is the paper's Fig. 1(a): three calls to p with different
// relevant-parameter patterns.
const Fig1Source = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

// Fig2Source is the paper's Fig. 2(a): direct recursion that specializes
// into mutual recursion.
const Fig2Source = `
int g1; int g2;

void s(int a, int b) {
  g1 = b;
  g2 = a;
}

void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}

int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  printf("%d\n", g1);
  return 0;
}
`

// Fig15Source is the paper's Fig. 15 function-pointer example (the
// unpredictable branch reads from input instead of the paper's "...").
const Fig15Source = `
int f(int a, int b) {
  return a + b;
}

int g(int a, int b) {
  return a;
}

int main() {
  fnptr p;
  int x;
  int c;
  scanf("%d", &c);
  if (c > 0) { p = f; } else { p = &g; }
  x = p(1, 2);
  printf("%d", x);
  return 0;
}
`

// Fig16Source is the paper's Fig. 16 sum/product tally program, with the
// reference parameters expressed as globals.
const Fig16Source = `
int sum; int prod;

int add(int a, int b) {
  return a + b;
}

int mult(int a, int b) {
  int i = 0;
  int ans = 0;
  while (i < a) {
    ans = add(ans, b);
    i = add(i, 1);
  }
  return ans;
}

void tally(int n) {
  int i = 1;
  while (i <= n) {
    sum = add(sum, i);
    prod = mult(prod, i);
    i = add(i, 1);
  }
}

int main() {
  sum = 0;
  prod = 1;
  tally(10);
  printf("%d ", sum);
  printf("%d ", prod);
  return 0;
}
`

// Fig1Program parses Fig1Source.
func Fig1Program() *lang.Program { return lang.MustParse(Fig1Source) }

// Fig2Program parses Fig2Source.
func Fig2Program() *lang.Program { return lang.MustParse(Fig2Source) }

// Fig15Program parses Fig15Source.
func Fig15Program() *lang.Program { return lang.MustParse(Fig15Source) }

// Fig16Program parses Fig16Source.
func Fig16Program() *lang.Program { return lang.MustParse(Fig16Source) }

// PkSource generates the kth member of the paper's §4.3 / Fig. 13 family,
// whose specialization slice has 2^k specialized versions of Pk: the i-th
// recursive call-site is followed by assignments that zero out temporary
// t_i, breaking the dependence between that call-site and the formal-out
// for global g_i.
func PkSource(k int) string {
	var sb strings.Builder
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, "int g%d;\n", i)
	}
	sb.WriteString("\nvoid Pk(int m) {\n  int v;\n")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, "  int t%d;\n", i)
	}
	sb.WriteString("  if (m == 0) { return; }\n")
	sb.WriteString("  scanf(\"%d\", &v);\n")
	for i := 1; i <= k; i++ {
		if i == 1 {
			fmt.Fprintf(&sb, "  if (v == %d) {\n", i)
		} else {
			fmt.Fprintf(&sb, "  } else if (v == %d) {\n", i)
		}
		sb.WriteString("    Pk(m - 1);\n")
		for j := 1; j <= k; j++ {
			if j == i {
				fmt.Fprintf(&sb, "    t%d = 0;\n", j)
			} else {
				fmt.Fprintf(&sb, "    t%d = g%d;\n", j, j)
			}
		}
	}
	sb.WriteString("  } else {\n")
	sb.WriteString("    Pk(m - 1);\n")
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&sb, "    t%d = g%d;\n", j, j)
	}
	sb.WriteString("  }\n")
	for j := 1; j <= k; j++ {
		fmt.Fprintf(&sb, "  g%d = t%d;\n", j, j)
	}
	sb.WriteString("}\n\nint main() {\n")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&sb, "  g%d = %d;\n", i, i)
	}
	fmt.Fprintf(&sb, "  Pk(%d);\n", k)
	sb.WriteString("  printf(\"%d\\n\", ")
	var terms []string
	for i := 1; i <= k; i++ {
		terms = append(terms, fmt.Sprintf("g%d", i))
	}
	sb.WriteString(strings.Join(terms, " + "))
	sb.WriteString(");\n  return 0;\n}\n")
	return sb.String()
}

// PkProgram parses PkSource(k).
func PkProgram(k int) *lang.Program { return lang.MustParse(PkSource(k)) }

// WcSource is a word-count-like utility for the paper's §5 speed-up
// experiment: it reads characters (as integers; 0 terminates, 10 is
// newline, 32 is space) and counts lines, words, and characters, printing
// each with its own printf. Slicing on one printf removes the other
// counters' work.
const WcSource = `
int lines; int words; int chars;

int isspacey(int c) {
  if (c == 32) { return 1; }
  if (c == 10) { return 1; }
  return 0;
}

void count() {
  int c;
  int inword = 0;
  int sp;
  scanf("%d", &c);
  while (c != 0) {
    chars = chars + 1;
    if (c == 10) {
      lines = lines + 1;
    }
    sp = isspacey(c);
    if (sp == 1) {
      inword = 0;
    } else {
      if (inword == 0) {
        words = words + 1;
      }
      inword = 1;
    }
    scanf("%d", &c);
  }
}

int main() {
  count();
  printf("%d\n", lines);
  printf("%d\n", words);
  printf("%d\n", chars);
  return 0;
}
`

// WcProgram parses WcSource.
func WcProgram() *lang.Program { return lang.MustParse(WcSource) }

// WcInput renders text as the integer stream WcProgram reads.
func WcInput(text string) []int64 {
	var out []int64
	for i := 0; i < len(text); i++ {
		out = append(out, int64(text[i]))
	}
	return append(out, 0)
}
