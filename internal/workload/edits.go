package workload

import (
	"fmt"
	"math/rand"

	"specslice/internal/lang"
)

// Editor applies a reproducible stream of random, validity-preserving edits
// to a MicroC program — the workload of clients that re-slice the same
// program after each change (IDE sessions, automated-repair loops). Every
// edit keeps the program parseable and resolvable; after each step the
// program is re-canonicalized through print+parse, so the sequence of
// versions an Editor produces is exactly the sequence of normalized
// programs a slicing service would observe.
//
// Edit kinds: local/parameter rename, statement insert and delete (which
// also realize criterion-line drift — statements above a criterion shift
// its line), call-site add and remove, and procedure add and remove. The
// mix is seeded, so a failing (program, edit-script) pair reproduces by
// seed alone; Ops records each applied edit for failure messages.
type Editor struct {
	rng *rand.Rand
	cur *lang.Program
	seq int
	// Ops describes every applied edit, in order.
	Ops []string
}

// NewEditor returns an editor over prog (which is not mutated) seeded with
// seed.
func NewEditor(prog *lang.Program, seed int64) *Editor {
	// Canonicalize through print+parse so the base version owns its AST.
	base, err := lang.Parse(lang.Print(prog))
	if err != nil {
		panic(fmt.Sprintf("workload.NewEditor: base program does not reparse: %v", err))
	}
	return &Editor{rng: rand.New(rand.NewSource(seed)), cur: base}
}

// Program returns the current program version (normalized, freshly parsed).
func (ed *Editor) Program() *lang.Program { return ed.cur }

// Source returns the current version's normalized source text.
func (ed *Editor) Source() string { return lang.Print(ed.cur) }

// editKind identifies one mutation strategy.
type editKind int

const (
	editRename editKind = iota
	editInsertStmt
	editDeleteStmt
	editAddCall
	editRemoveCall
	editAddProc
	editRemoveProc
)

// kindMix weights the draw toward the common statement-level edits.
var kindMix = []editKind{
	editInsertStmt, editInsertStmt, editInsertStmt,
	editDeleteStmt, editDeleteStmt,
	editRename, editRename,
	editAddCall, editAddCall,
	editRemoveCall,
	editAddProc,
	editRemoveProc,
}

// Step applies one random edit and returns its description. If no edit
// kind is applicable to the current program (degenerate inputs), the step
// records and returns "noop".
func (ed *Editor) Step() string {
	for attempt := 0; attempt < 16; attempt++ {
		kind := kindMix[ed.rng.Intn(len(kindMix))]
		clone := lang.CloneProgram(ed.cur)
		desc, ok := ed.apply(kind, clone)
		if !ok {
			continue
		}
		next, err := lang.Parse(lang.Print(clone))
		if err != nil {
			// The mutation broke an invariant the applier missed; skip it
			// rather than fail the stream — reproducibility only needs
			// the accepted edits to be deterministic, and they are.
			continue
		}
		ed.cur = next
		ed.Ops = append(ed.Ops, desc)
		return desc
	}
	ed.Ops = append(ed.Ops, "noop")
	return "noop"
}

// Apply runs n steps and returns the resulting source.
func (ed *Editor) Apply(n int) string {
	for i := 0; i < n; i++ {
		ed.Step()
	}
	return ed.Source()
}

func (ed *Editor) apply(kind editKind, p *lang.Program) (string, bool) {
	switch kind {
	case editRename:
		return ed.renameLocal(p)
	case editInsertStmt:
		return ed.insertStmt(p)
	case editDeleteStmt:
		return ed.deleteStmt(p)
	case editAddCall:
		return ed.addCall(p)
	case editRemoveCall:
		return ed.removeCall(p)
	case editAddProc:
		return ed.addProc(p)
	default:
		return ed.removeProc(p)
	}
}

// pickFunc returns a random function of p.
func (ed *Editor) pickFunc(p *lang.Program) *lang.FuncDecl {
	return p.Funcs[ed.rng.Intn(len(p.Funcs))]
}

// assignTargets returns the non-fnptr variables assignable inside fn:
// parameters, locals, and globals.
func assignTargets(p *lang.Program, fn *lang.FuncDecl) []string {
	var out []string
	for _, prm := range fn.Params {
		if !prm.IsFnPtr {
			out = append(out, prm.Name)
		}
	}
	for _, s := range fn.Stmts() {
		if d, ok := s.(*lang.DeclStmt); ok && !d.IsFnPtr {
			out = append(out, d.Name)
		}
	}
	for _, g := range p.Globals {
		if !g.IsFnPtr {
			out = append(out, g.Name)
		}
	}
	return out
}

// blocksOf returns every statement block of fn (body and nested).
func blocksOf(fn *lang.FuncDecl) []*lang.Block {
	out := []*lang.Block{fn.Body}
	lang.WalkStmts(fn.Body, func(s lang.Stmt) {
		switch x := s.(type) {
		case *lang.IfStmt:
			out = append(out, x.Then)
			if x.Else != nil {
				out = append(out, x.Else)
			}
		case *lang.WhileStmt:
			out = append(out, x.Body)
		}
	})
	return out
}

// usedNames collects every identifier the program binds anywhere; fresh
// names must avoid all of them (a new function may not collide with any
// local, since locals cannot shadow functions).
func usedNames(p *lang.Program) map[string]bool {
	names := map[string]bool{}
	for _, g := range p.Globals {
		names[g.Name] = true
	}
	for _, f := range p.Funcs {
		names[f.Name] = true
		for _, prm := range f.Params {
			names[prm.Name] = true
		}
		for _, s := range f.Stmts() {
			if d, ok := s.(*lang.DeclStmt); ok {
				names[d.Name] = true
			}
		}
	}
	return names
}

func (ed *Editor) freshName(p *lang.Program, prefix string) string {
	used := usedNames(p)
	for {
		ed.seq++
		name := fmt.Sprintf("%s%d", prefix, ed.seq)
		if !used[name] {
			return name
		}
	}
}

func (ed *Editor) renameLocal(p *lang.Program) (string, bool) {
	fn := ed.pickFunc(p)
	var cands []string
	for _, prm := range fn.Params {
		cands = append(cands, prm.Name)
	}
	for _, s := range fn.Stmts() {
		if d, ok := s.(*lang.DeclStmt); ok {
			cands = append(cands, d.Name)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	old := cands[ed.rng.Intn(len(cands))]
	fresh := ed.freshName(p, "rv")
	for i := range fn.Params {
		if fn.Params[i].Name == old {
			fn.Params[i].Name = fresh
		}
	}
	lang.WalkStmts(fn.Body, func(s lang.Stmt) {
		switch x := s.(type) {
		case *lang.DeclStmt:
			if x.Name == old {
				x.Name = fresh
			}
		case *lang.AssignStmt:
			if x.LHS == old {
				x.LHS = fresh
			}
		case *lang.CallStmt:
			if x.Target == old {
				x.Target = fresh
			}
			if x.Indirect && x.Callee == old {
				x.Callee = fresh
			}
		case *lang.ScanfStmt:
			if x.Var == old {
				x.Var = fresh
			}
		}
		for _, e := range lang.StmtExprs(s) {
			lang.WalkExprs(e, func(x lang.Expr) {
				if v, ok := x.(*lang.VarRef); ok && v.Name == old {
					v.Name = fresh
				}
			})
		}
	})
	return fmt.Sprintf("rename %s: %s -> %s", fn.Name, old, fresh), true
}

func (ed *Editor) insertStmt(p *lang.Program) (string, bool) {
	fn := ed.pickFunc(p)
	targets := assignTargets(p, fn)
	if len(targets) == 0 {
		return "", false
	}
	v := targets[ed.rng.Intn(len(targets))]
	k := int64(1 + ed.rng.Intn(9))
	stmt := &lang.AssignStmt{
		LHS: v,
		RHS: &lang.Binary{Op: "+", X: &lang.VarRef{Name: v}, Y: &lang.IntLit{Value: k}},
	}
	blocks := blocksOf(fn)
	b := blocks[ed.rng.Intn(len(blocks))]
	at := ed.rng.Intn(len(b.Stmts) + 1)
	b.Stmts = append(b.Stmts[:at], append([]lang.Stmt{stmt}, b.Stmts[at:]...)...)
	return fmt.Sprintf("insert %s[%d]: %s = %s + %d", fn.Name, at, v, v, k), true
}

func (ed *Editor) deleteStmt(p *lang.Program) (string, bool) {
	type spot struct {
		fn *lang.FuncDecl
		b  *lang.Block
		i  int
	}
	printfs := 0
	for _, s := range p.Func("main").Stmts() {
		if _, ok := s.(*lang.PrintfStmt); ok {
			printfs++
		}
	}
	var cands []spot
	for _, fn := range p.Funcs {
		for _, b := range blocksOf(fn) {
			for i, s := range b.Stmts {
				switch s.(type) {
				case *lang.AssignStmt:
					cands = append(cands, spot{fn, b, i})
				case *lang.PrintfStmt:
					// Keep at least one printf in main: it anchors the
					// slicing criteria the oracle re-derives per version.
					if fn.Name != "main" || printfs > 1 {
						cands = append(cands, spot{fn, b, i})
					}
				}
			}
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	c := cands[ed.rng.Intn(len(cands))]
	desc := fmt.Sprintf("delete %s: %T at %d", c.fn.Name, c.b.Stmts[c.i], c.i)
	c.b.Stmts = append(c.b.Stmts[:c.i], c.b.Stmts[c.i+1:]...)
	return desc, true
}

func (ed *Editor) addCall(p *lang.Program) (string, bool) {
	var callees []*lang.FuncDecl
	for _, f := range p.Funcs {
		if f.Name != "main" {
			callees = append(callees, f)
		}
	}
	if len(callees) == 0 {
		return "", false
	}
	callee := callees[ed.rng.Intn(len(callees))]
	caller := ed.pickFunc(p)
	call := &lang.CallStmt{Callee: callee.Name}
	for range callee.Params {
		call.Args = append(call.Args, &lang.IntLit{Value: int64(1 + ed.rng.Intn(9))})
	}
	if callee.ReturnsValue && ed.rng.Intn(2) == 0 {
		if targets := assignTargets(p, caller); len(targets) > 0 {
			call.Target = targets[ed.rng.Intn(len(targets))]
		}
	}
	blocks := blocksOf(caller)
	b := blocks[ed.rng.Intn(len(blocks))]
	at := ed.rng.Intn(len(b.Stmts) + 1)
	b.Stmts = append(b.Stmts[:at], append([]lang.Stmt{call}, b.Stmts[at:]...)...)
	return fmt.Sprintf("add-call %s[%d]: %s(%d args) -> %q", caller.Name, at, callee.Name, len(call.Args), call.Target), true
}

func (ed *Editor) removeCall(p *lang.Program) (string, bool) {
	type spot struct {
		fn *lang.FuncDecl
		b  *lang.Block
		i  int
	}
	var cands []spot
	for _, fn := range p.Funcs {
		for _, b := range blocksOf(fn) {
			for i, s := range b.Stmts {
				if _, ok := s.(*lang.CallStmt); ok {
					cands = append(cands, spot{fn, b, i})
				}
			}
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	c := cands[ed.rng.Intn(len(cands))]
	call := c.b.Stmts[c.i].(*lang.CallStmt)
	c.b.Stmts = append(c.b.Stmts[:c.i], c.b.Stmts[c.i+1:]...)
	return fmt.Sprintf("remove-call %s: %s at %d", c.fn.Name, call.Callee, c.i), true
}

func (ed *Editor) addProc(p *lang.Program) (string, bool) {
	name := ed.freshName(p, "q")
	k := int64(1 + ed.rng.Intn(9))
	fn := &lang.FuncDecl{
		Name:         name,
		Params:       []lang.Param{{Name: "a0"}},
		ReturnsValue: true,
		Body: &lang.Block{Stmts: []lang.Stmt{
			&lang.ReturnStmt{Value: &lang.Binary{
				Op: "+",
				X:  &lang.Binary{Op: "*", X: &lang.VarRef{Name: "a0"}, Y: &lang.IntLit{Value: 2}},
				Y:  &lang.IntLit{Value: k},
			}},
		}},
	}
	// Insert before main so main stays last, matching the generator's shape.
	mainIdx := len(p.Funcs) - 1
	for i, f := range p.Funcs {
		if f.Name == "main" {
			mainIdx = i
		}
	}
	p.Funcs = append(p.Funcs[:mainIdx], append([]*lang.FuncDecl{fn}, p.Funcs[mainIdx:]...)...)
	desc := fmt.Sprintf("add-proc %s", name)
	// Usually also call it from main, so the new procedure can join slices.
	if main := p.Func("main"); main != nil && ed.rng.Intn(4) > 0 {
		if targets := assignTargets(p, main); len(targets) > 0 {
			call := &lang.CallStmt{
				Target: targets[ed.rng.Intn(len(targets))],
				Callee: name,
				Args:   []lang.Expr{&lang.IntLit{Value: int64(1 + ed.rng.Intn(9))}},
			}
			at := ed.rng.Intn(len(main.Body.Stmts) + 1)
			main.Body.Stmts = append(main.Body.Stmts[:at], append([]lang.Stmt{call}, main.Body.Stmts[at:]...)...)
			desc += " + call from main"
		}
	}
	return desc, true
}

func (ed *Editor) removeProc(p *lang.Program) (string, bool) {
	called := map[string]bool{}
	for _, fn := range p.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok {
				called[c.Callee] = true
			}
			for _, e := range lang.StmtExprs(s) {
				lang.WalkExprs(e, func(x lang.Expr) {
					if fr, ok := x.(*lang.FuncRef); ok {
						called[fr.Name] = true
					}
				})
			}
		}
	}
	var cands []int
	for i, fn := range p.Funcs {
		if fn.Name != "main" && !called[fn.Name] {
			cands = append(cands, i)
		}
	}
	if len(cands) == 0 {
		return "", false
	}
	i := cands[ed.rng.Intn(len(cands))]
	name := p.Funcs[i].Name
	p.Funcs = append(p.Funcs[:i], p.Funcs[i+1:]...)
	return fmt.Sprintf("remove-proc %s", name), true
}
