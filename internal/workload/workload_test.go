package workload

import (
	"strings"
	"testing"

	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

func TestFigurePrograms(t *testing.T) {
	for name, prog := range map[string]*lang.Program{
		"fig1": Fig1Program(), "fig2": Fig2Program(), "fig16": Fig16Program(),
	} {
		if _, err := sdg.Build(prog); err != nil {
			t.Errorf("%s: SDG build failed: %v", name, err)
		}
	}
	// fig15 has indirect calls; it must parse but not build directly.
	if _, err := sdg.Build(Fig15Program()); err == nil {
		t.Error("fig15 should require the funcptr transformation")
	}
}

func TestPkSourceShape(t *testing.T) {
	for k := 1; k <= 5; k++ {
		prog := PkProgram(k)
		g, err := sdg.Build(prog)
		if err != nil {
			t.Fatalf("Pk(%d): %v", k, err)
		}
		// Pk has k+1 recursive call-sites on itself (k branches + else).
		if got := len(g.SiteCalls("Pk")); got != k+2 { // +1 for main's call
			t.Errorf("Pk(%d): %d call sites on Pk, want %d", k, got, k+2)
		}
	}
}

func TestPkRuns(t *testing.T) {
	prog := PkProgram(3)
	res, err := interp.Run(prog, interp.Options{Input: []int64{1, 2, 3}})
	if err != nil {
		t.Fatalf("Pk(3) run: %v", err)
	}
	if len(res.Output) != 1 {
		t.Fatalf("output = %v", res.Output)
	}
}

func TestWcProgram(t *testing.T) {
	prog := WcProgram()
	res, err := interp.Run(prog, interp.Options{Input: WcInput("hello world\nfoo bar baz\n")})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"2\n", "5\n", "24\n"}
	for i, w := range want {
		if res.Output[i] != w {
			t.Errorf("wc output[%d] = %q, want %q", i, res.Output[i], w)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	cfg := Benchmarks()[0]
	if GenerateSource(cfg) != GenerateSource(cfg) {
		t.Error("generator is not deterministic")
	}
}

func TestGeneratedProgramsBuild(t *testing.T) {
	for _, cfg := range SmallBenchmarks() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			prog := Generate(cfg)
			g, err := sdg.Build(prog)
			if err != nil {
				t.Fatalf("SDG: %v", err)
			}
			st := g.Statistics()
			if st.Procs != cfg.Procs {
				t.Errorf("procs = %d, want %d", st.Procs, cfg.Procs)
			}
			// Vertex count within a factor of ~3 of the target.
			if st.Vertices < cfg.TargetVertices/3 || st.Vertices > cfg.TargetVertices*3 {
				t.Errorf("vertices = %d, target %d (out of tolerance)", st.Vertices, cfg.TargetVertices)
			}
			if st.CallSites == 0 {
				t.Error("no call sites generated")
			}
		})
	}
}

func TestGeneratedSourceReparses(t *testing.T) {
	cfg := Benchmarks()[2]
	src := GenerateSource(cfg)
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, src[:min(len(src), 2000)])
	}
	if !strings.Contains(lang.Print(prog), "int main()") {
		t.Error("no main in generated source")
	}
}
