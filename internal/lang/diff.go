package lang

import (
	"hash/fnv"
	"sort"
	"strings"
)

// ProcHash returns a normalization-stable content hash of one function: the
// FNV-64a of its pretty-printed source. Because Print renders the normalized
// AST, two versions of a procedure that differ only in whitespace, comments,
// or pre-normalization call nesting hash identically, while any change to
// its signature, statements, or referenced names changes the hash. Source
// positions are not part of the printed form, so edits elsewhere in the file
// that merely shift a procedure's lines leave its hash untouched.
func ProcHash(f *FuncDecl) uint64 {
	h := fnv.New64a()
	var sb strings.Builder
	printFunc(&sb, f)
	h.Write([]byte(sb.String()))
	return h.Sum64()
}

// GlobalsHash returns a content hash of the program's global declarations
// (names, order, and fnptr-ness), in the same normalization-stable sense as
// ProcHash.
func GlobalsHash(p *Program) uint64 {
	h := fnv.New64a()
	for _, g := range p.Globals {
		ty := "int"
		if g.IsFnPtr {
			ty = "fnptr"
		}
		h.Write([]byte(ty))
		h.Write([]byte{' '})
		h.Write([]byte(g.Name))
		h.Write([]byte{';'})
	}
	return h.Sum64()
}

// ProgramDiff classifies an edit between two program versions at procedure
// granularity. Procedures are matched by name: a rename therefore shows up
// as one removal plus one addition, which is exactly how a
// dependence-graph-level consumer must treat it (call sites referring to
// the old name are gone, sites referring to the new name are new).
type ProgramDiff struct {
	// Unchanged lists procedures present in both versions with identical
	// normalized source (ProcHash), sorted by name.
	Unchanged []string
	// Changed lists procedures present in both versions whose normalized
	// source differs, sorted by name.
	Changed []string
	// Added / Removed list procedures present only in the new / old
	// version, sorted by name.
	Added   []string
	Removed []string
	// GlobalsChanged reports whether the global declarations differ.
	GlobalsChanged bool
}

// HasChanges reports whether the diff is non-empty.
func (d ProgramDiff) HasChanges() bool {
	return len(d.Changed)+len(d.Added)+len(d.Removed) > 0 || d.GlobalsChanged
}

// ProgramHashes returns the ProcHash of every function, keyed by name —
// one full print pass. Incremental consumers compute it once per version
// and reuse it for both the diff and downstream build signatures instead
// of re-hashing the same ASTs.
func ProgramHashes(p *Program) map[string]uint64 {
	out := make(map[string]uint64, len(p.Funcs))
	for _, f := range p.Funcs {
		out[f.Name] = ProcHash(f)
	}
	return out
}

// DiffPrograms compares two parsed (normalized) programs procedure by
// procedure. It is the front half of incremental SDG construction: the
// caller combines the textual classification with interprocedural side
// effects (mod/ref interfaces) to decide which procedure dependence graphs
// can be reused.
func DiffPrograms(old, new *Program) ProgramDiff {
	return DiffProgramsHashed(old, new, ProgramHashes(old), ProgramHashes(new))
}

// DiffProgramsHashed is DiffPrograms against precomputed per-procedure
// hashes (ProgramHashes of each version), so callers that already hold
// them — e.g. an engine advancing a version chain, whose previous graph
// retains its hashes — diff without printing either program again.
func DiffProgramsHashed(old, new *Program, oldHashes, newHashes map[string]uint64) ProgramDiff {
	var d ProgramDiff
	seen := map[string]bool{}
	for _, f := range new.Funcs {
		seen[f.Name] = true
		h, ok := oldHashes[f.Name]
		switch {
		case !ok:
			d.Added = append(d.Added, f.Name)
		case h == newHashes[f.Name]:
			d.Unchanged = append(d.Unchanged, f.Name)
		default:
			d.Changed = append(d.Changed, f.Name)
		}
	}
	for _, f := range old.Funcs {
		if !seen[f.Name] {
			d.Removed = append(d.Removed, f.Name)
		}
	}
	sort.Strings(d.Unchanged)
	sort.Strings(d.Changed)
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	d.GlobalsChanged = GlobalsHash(old) != GlobalsHash(new)
	return d
}
