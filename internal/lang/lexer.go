package lang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokPunct   // one of the operator/punctuation strings
	tokKeyword // int, void, fnptr, if, else, while, return, break, continue, printf, scanf
)

type token struct {
	kind tokenKind
	text string
	pos  Pos
}

var keywords = map[string]bool{
	"int": true, "void": true, "fnptr": true, "if": true, "else": true,
	"while": true, "return": true, "break": true, "continue": true,
	"printf": true, "scanf": true,
}

// multi-char punctuation, longest first.
var punct2 = []string{"==", "!=", "<=", ">=", "&&", "||"}

// lexer turns MicroC source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (lx *lexer) errorf(pos Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '*':
			pos := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			for {
				if lx.off+1 >= len(lx.src) {
					return lx.errorf(pos, "unterminated block comment")
				}
				if lx.peekByte() == '*' && lx.src[lx.off+1] == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

// next scans and returns the next token.
func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := Pos{lx.line, lx.col}
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case c == '_' || unicode.IsLetter(rune(c)):
		start := lx.off
		for lx.off < len(lx.src) {
			b := lx.peekByte()
			if b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b)) {
				lx.advance()
			} else {
				break
			}
		}
		text := lx.src[start:lx.off]
		if keywords[text] {
			return token{kind: tokKeyword, text: text, pos: pos}, nil
		}
		return token{kind: tokIdent, text: text, pos: pos}, nil

	case unicode.IsDigit(rune(c)):
		start := lx.off
		for lx.off < len(lx.src) && unicode.IsDigit(rune(lx.peekByte())) {
			lx.advance()
		}
		return token{kind: tokInt, text: lx.src[start:lx.off], pos: pos}, nil

	case c == '"':
		lx.advance()
		var sb strings.Builder
		for {
			if lx.off >= len(lx.src) {
				return token{}, lx.errorf(pos, "unterminated string literal")
			}
			b := lx.advance()
			if b == '"' {
				break
			}
			if b == '\\' {
				if lx.off >= len(lx.src) {
					return token{}, lx.errorf(pos, "unterminated escape")
				}
				e := lx.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '\\', '"':
					sb.WriteByte(e)
				case '%':
					sb.WriteString("%%")
				default:
					return token{}, lx.errorf(pos, "unknown escape \\%c", e)
				}
				continue
			}
			sb.WriteByte(b)
		}
		return token{kind: tokString, text: sb.String(), pos: pos}, nil
	}

	for _, p := range punct2 {
		if strings.HasPrefix(lx.src[lx.off:], p) {
			lx.advance()
			lx.advance()
			return token{kind: tokPunct, text: p, pos: pos}, nil
		}
	}
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '(', ')', '{', '}', ',', ';', '&':
		lx.advance()
		return token{kind: tokPunct, text: string(c), pos: pos}, nil
	}
	return token{}, lx.errorf(pos, "unexpected character %q", c)
}

// lexAll scans the entire source.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
