// Package lang implements MicroC, the small C-like language analyzed by this
// repository's slicers: lexer, parser, name resolution, call normalization,
// and a pretty-printer.
//
// MicroC has a single scalar type (int), function pointers (fnptr), global
// variables, value parameters, if/while/break/continue/return control flow,
// and the library procedures printf and scanf. It is rich enough to exercise
// every system-dependence-graph feature used by the specialization-slicing
// paper (globals as hidden parameters, recursion, library calls, indirect
// calls) while keeping the front end small.
package lang

import "fmt"

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// NodeID uniquely identifies a statement node within a Program. Emitted
// (sliced) programs carry the originating node in StmtBase.Origin so that
// dynamic behavior can be compared statement-by-statement across slices.
type NodeID int

// NoNode is the zero NodeID, meaning "no statement".
const NoNode NodeID = 0

// Program is a parsed MicroC translation unit.
type Program struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl

	nextID NodeID
}

// NewProgram returns an empty program ready for programmatic construction.
func NewProgram() *Program { return &Program{} }

// NewID allocates a fresh statement ID.
func (p *Program) NewID() NodeID {
	p.nextID++
	return p.nextID
}

// MaxID returns the largest NodeID allocated so far.
func (p *Program) MaxID() NodeID { return p.nextID }

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Global reports whether name is a global variable of the program.
func (p *Program) Global(name string) bool {
	for _, g := range p.Globals {
		if g.Name == name {
			return true
		}
	}
	return false
}

// GlobalDecl declares a global variable. Globals are initialized to zero.
type GlobalDecl struct {
	Pos     Pos
	Name    string
	IsFnPtr bool
}

// Param is a formal parameter of a function.
type Param struct {
	Name    string
	IsFnPtr bool
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos          Pos
	Name         string
	Params       []Param
	ReturnsValue bool // declared int (true) or void (false)
	Body         *Block
}

// Block is a brace-delimited statement sequence.
type Block struct {
	Stmts []Stmt
}

// Stmt is implemented by all MicroC statement nodes.
type Stmt interface {
	Base() *StmtBase
	stmtNode()
}

// StmtBase carries the identity and position shared by all statements.
type StmtBase struct {
	ID     NodeID
	Pos    Pos
	Origin NodeID // original statement for nodes created by slicing; NoNode if primary
}

// OriginID returns the identity of the original statement this node was
// derived from: Origin when set, otherwise the node's own ID.
func (b *StmtBase) OriginID() NodeID {
	if b.Origin != NoNode {
		return b.Origin
	}
	return b.ID
}

func (b *StmtBase) Base() *StmtBase { return b }

// DeclStmt declares a function-scoped local variable with an optional
// initializer. MicroC locals have flat function scope, as if hoisted.
type DeclStmt struct {
	StmtBase
	Name    string
	IsFnPtr bool
	Init    Expr // may be nil
}

// AssignStmt assigns RHS to the variable LHS.
type AssignStmt struct {
	StmtBase
	LHS string
	RHS Expr
}

// CallStmt invokes a user-defined procedure, optionally assigning the return
// value: `x = f(a, b);` or `f(a, b);`. After normalization, calls appear only
// as CallStmts. Indirect marks a call through a function-pointer variable.
type CallStmt struct {
	StmtBase
	Target   string // "" when the return value is discarded
	Callee   string // function name, or fnptr variable name when Indirect
	Args     []Expr
	Indirect bool
}

// IfStmt is a two-armed conditional; Else may be nil.
type IfStmt struct {
	StmtBase
	Cond Expr
	Then *Block
	Else *Block
}

// WhileStmt is a pre-tested loop.
type WhileStmt struct {
	StmtBase
	Cond Expr
	Body *Block
}

// ReturnStmt returns from the enclosing function; Value may be nil.
type ReturnStmt struct {
	StmtBase
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ StmtBase }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ StmtBase }

// PrintfStmt calls the printf library procedure. Only %d directives are
// interpreted; one per argument.
type PrintfStmt struct {
	StmtBase
	Format string
	Args   []Expr
}

// ScanfStmt calls the scanf library procedure, reading one int into Var.
type ScanfStmt struct {
	StmtBase
	Format string
	Var    string
}

func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*CallStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*PrintfStmt) stmtNode()   {}
func (*ScanfStmt) stmtNode()    {}

// Expr is implemented by all MicroC expression nodes. Expressions carry no
// identity: dependence-graph vertices exist at statement granularity.
type Expr interface{ exprNode() }

// IntLit is an integer literal.
type IntLit struct{ Value int64 }

// VarRef references a variable (local, parameter, or global).
type VarRef struct{ Name string }

// FuncRef references a function by name as a value (`p = f;` or `p = &f;`).
type FuncRef struct{ Name string }

// Unary applies "-" or "!".
type Unary struct {
	Op string
	X  Expr
}

// Binary applies an arithmetic, comparison, or logical operator.
// "&&" and "||" are evaluated strictly (no short-circuit); after
// normalization expressions are call-free, so this is semantics-preserving.
type Binary struct {
	Op   string
	X, Y Expr
}

// CallExpr is a call in expression position. It exists only between parsing
// and normalization; Normalize hoists every CallExpr into a CallStmt.
type CallExpr struct {
	Callee   string
	Args     []Expr
	Indirect bool
}

func (*IntLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*FuncRef) exprNode()  {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*CallExpr) exprNode() {}

// WalkExprs calls fn on e and every sub-expression, pre-order.
func WalkExprs(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Unary:
		WalkExprs(x.X, fn)
	case *Binary:
		WalkExprs(x.X, fn)
		WalkExprs(x.Y, fn)
	case *CallExpr:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	}
}

// ExprVars returns the variable names referenced by e (not function refs),
// in first-occurrence order.
func ExprVars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	WalkExprs(e, func(x Expr) {
		if v, ok := x.(*VarRef); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	})
	return out
}

// HasCall reports whether e contains a CallExpr.
func HasCall(e Expr) bool {
	found := false
	WalkExprs(e, func(x Expr) {
		if _, ok := x.(*CallExpr); ok {
			found = true
		}
	})
	return found
}

// StmtExprs returns the expressions directly used by s (not recursing into
// nested blocks).
func StmtExprs(s Stmt) []Expr {
	switch x := s.(type) {
	case *DeclStmt:
		if x.Init != nil {
			return []Expr{x.Init}
		}
	case *AssignStmt:
		return []Expr{x.RHS}
	case *CallStmt:
		return x.Args
	case *IfStmt:
		return []Expr{x.Cond}
	case *WhileStmt:
		return []Expr{x.Cond}
	case *ReturnStmt:
		if x.Value != nil {
			return []Expr{x.Value}
		}
	case *PrintfStmt:
		return x.Args
	}
	return nil
}

// WalkStmts calls fn on every statement in the block, pre-order, recursing
// into nested blocks.
func WalkStmts(b *Block, fn func(Stmt)) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		fn(s)
		switch x := s.(type) {
		case *IfStmt:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		case *WhileStmt:
			WalkStmts(x.Body, fn)
		}
	}
}

// Stmts returns every statement of f in pre-order.
func (f *FuncDecl) Stmts() []Stmt {
	var out []Stmt
	WalkStmts(f.Body, func(s Stmt) { out = append(out, s) })
	return out
}
