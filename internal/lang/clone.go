package lang

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *x
		return &c
	case *VarRef:
		c := *x
		return &c
	case *FuncRef:
		c := *x
		return &c
	case *Unary:
		return &Unary{Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{Op: x.Op, X: CloneExpr(x.X), Y: CloneExpr(x.Y)}
	case *CallExpr:
		c := &CallExpr{Callee: x.Callee, Indirect: x.Indirect}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	}
	panic("lang.CloneExpr: unknown expression node")
}

// CloneStmtInto deep-copies s, allocating fresh IDs from dst and recording
// the original statement identity in Origin (propagating an existing Origin
// so chains of slicing preserve the primary source statement).
func CloneStmtInto(dst *Program, s Stmt) Stmt {
	base := StmtBase{ID: dst.NewID(), Pos: s.Base().Pos, Origin: s.Base().OriginID()}
	switch x := s.(type) {
	case *DeclStmt:
		return &DeclStmt{StmtBase: base, Name: x.Name, IsFnPtr: x.IsFnPtr, Init: CloneExpr(x.Init)}
	case *AssignStmt:
		return &AssignStmt{StmtBase: base, LHS: x.LHS, RHS: CloneExpr(x.RHS)}
	case *CallStmt:
		c := &CallStmt{StmtBase: base, Target: x.Target, Callee: x.Callee, Indirect: x.Indirect}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *IfStmt:
		return &IfStmt{StmtBase: base, Cond: CloneExpr(x.Cond), Then: CloneBlockInto(dst, x.Then), Else: CloneBlockInto(dst, x.Else)}
	case *WhileStmt:
		return &WhileStmt{StmtBase: base, Cond: CloneExpr(x.Cond), Body: CloneBlockInto(dst, x.Body)}
	case *ReturnStmt:
		return &ReturnStmt{StmtBase: base, Value: CloneExpr(x.Value)}
	case *BreakStmt:
		return &BreakStmt{StmtBase: base}
	case *ContinueStmt:
		return &ContinueStmt{StmtBase: base}
	case *PrintfStmt:
		c := &PrintfStmt{StmtBase: base, Format: x.Format}
		for _, a := range x.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *ScanfStmt:
		return &ScanfStmt{StmtBase: base, Format: x.Format, Var: x.Var}
	}
	panic("lang.CloneStmtInto: unknown statement node")
}

// CloneBlockInto deep-copies a block into dst; nil stays nil.
func CloneBlockInto(dst *Program, b *Block) *Block {
	if b == nil {
		return nil
	}
	out := &Block{}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, CloneStmtInto(dst, s))
	}
	return out
}

// CloneProgram returns a deep copy of prog with fresh IDs and Origin links
// back to prog's statements.
func CloneProgram(prog *Program) *Program {
	dst := NewProgram()
	for _, g := range prog.Globals {
		cg := *g
		dst.Globals = append(dst.Globals, &cg)
	}
	for _, f := range prog.Funcs {
		dst.Funcs = append(dst.Funcs, &FuncDecl{
			Pos: f.Pos, Name: f.Name, Params: append([]Param(nil), f.Params...),
			ReturnsValue: f.ReturnsValue, Body: CloneBlockInto(dst, f.Body),
		})
	}
	return dst
}
