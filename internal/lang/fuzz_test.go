package lang

import (
	"strings"
	"testing"
)

// fuzzSeeds is the corpus the fuzzers start from: the examples' embedded
// programs (examples/quickstart, examples/recursive, examples/funcptr,
// examples/featureremoval all embed one of the first three), plus small
// programs that concentrate tricky syntax — escapes, unary chains, operator
// precedence, fnptr declarations, call normalization.
var fuzzSeeds = []string{
	// examples/quickstart + examples/featureremoval (paper Fig. 1).
	`
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`,
	// examples/recursive (paper Fig. 2).
	`
int g1; int g2;

void s(int a, int b) {
  g1 = b;
  g2 = a;
}

void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}

int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  printf("%d\n", g1);
  return 0;
}
`,
	// examples/funcptr: indirect calls through fnptr locals.
	`
int f(int a, int b) { return a + b; }
int g(int a, int b) { return a; }
int main() {
  fnptr p;
  int x;
  scanf("%d", &x);
  if (x == 1) { p = f; } else { p = g; }
  x = p(10, 3);
  printf("%d", x);
  return 0;
}
`,
	// Escapes and format strings.
	`int main() { printf("a\tb\n\"q\"\\ 100%d\n", 42); return 0; }`,
	`int main() { printf("\%"); return 0; }`,
	// Operator precedence, unary chains, parenthesization.
	`int main() { int x = -1 * (2 + 3) % 4 - -5; x = !!x || x && x != 0; printf("%d", x); return 0; }`,
	// Calls in expression position (normalization hoists them).
	`int h(int a) { return a; }
int main() { int x = h(h(1) + h(2)) * h(3); printf("%d", x); return 0; }`,
	// Control flow with else-if chains, break/continue.
	`int main() {
  int i = 0;
  while (i < 9) {
    i = i + 1;
    if (i == 2) { continue; } else if (i == 7) { break; } else { i = i + 0; }
  }
  printf("%d", i);
  return 0;
}`,
	// fnptr globals and function references.
	`fnptr gp;
int id(int x) { return x; }
int main() { gp = &id; printf("%d", gp(5)); return 0; }`,
	// Comments and odd whitespace.
	"int main() { /* block */ // line\n\treturn 0; }",
	// Degenerate and invalid-ish inputs (fine as seeds; errors expected).
	``,
	`int`,
	`int main() {`,
	`void main() { return 1; }`,
	`int x; int x; int main() { return 0; }`,
}

// FuzzParse asserts the front end never panics: any byte string either
// parses or returns an error, and a parsed program prints.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		if out := Print(prog); out == "" && len(prog.Funcs) > 0 {
			t.Errorf("non-empty program printed empty")
		}
	})
}

// FuzzRoundTrip asserts print/parse is a fixed point: whatever Parse
// accepts, Print must render to source that reparses to a program printing
// identically. (Parse normalizes, so the first print may differ from the
// input — but it must be stable from then on.)
func FuzzRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		out := Print(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Fatalf("printed program does not reparse: %v\ninput:\n%s\nprinted:\n%s", err, src, out)
		}
		out2 := Print(prog2)
		if out2 != out {
			t.Fatalf("print/parse round trip diverges:\nfirst:\n%s\nsecond:\n%s", out, out2)
		}
	})
}

// TestFuzzSeedsRoundTrip runs the round-trip property over the seed corpus
// in a plain test, so the property is exercised on every `go test` run even
// without -fuzz.
func TestFuzzSeedsRoundTrip(t *testing.T) {
	parsed := 0
	for i, src := range fuzzSeeds {
		prog, err := Parse(src)
		if err != nil {
			continue
		}
		parsed++
		out := Print(prog)
		prog2, err := Parse(out)
		if err != nil {
			t.Errorf("seed %d: printed program does not reparse: %v\n%s", i, err, out)
			continue
		}
		if out2 := Print(prog2); out2 != out {
			t.Errorf("seed %d: round trip diverges:\n%s\nvs:\n%s", i, out, out2)
		}
	}
	if parsed < 10 {
		t.Errorf("only %d seeds parse; corpus has rotted", parsed)
	}
	// The \% escape is the one non-obvious lexer rule: it expands to a
	// literal doubled percent so renderPrintf does not treat it as %d.
	prog := MustParse(`int main() { printf("\%"); return 0; }`)
	if !strings.Contains(Print(prog), `%%`) {
		t.Errorf("\\%% escape lost: %s", Print(prog))
	}
}
