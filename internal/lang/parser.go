package lang

import (
	"fmt"
	"strconv"
)

// Parse parses MicroC source text, resolves names, and normalizes calls so
// that every call appears as a top-level CallStmt. The returned program is
// ready for SDG construction and interpretation.
func Parse(src string) (*Program, error) {
	prog, err := ParseRaw(src)
	if err != nil {
		return nil, err
	}
	if err := Normalize(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseRaw parses without normalization; calls may appear in expression
// position. Most callers want Parse.
func ParseRaw(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prog: NewProgram()}
	if err := p.parseProgram(); err != nil {
		return nil, err
	}
	if err := resolve(p.prog); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse parses src and panics on error. Intended for tests, examples,
// and generated workloads whose sources are known to be valid.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("lang.MustParse: %v", err))
	}
	return prog
}

type parser struct {
	toks []token
	i    int
	prog *Program
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	t := p.cur()
	if t.kind != tokPunct || t.text != s {
		return p.errorf("expected %q, found %q", s, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) atPunct(s string) bool {
	return p.cur().kind == tokPunct && p.cur().text == s
}

func (p *parser) atKeyword(s string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == s
}

func (p *parser) expectIdent() (string, Pos, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", t.pos, p.errorf("expected identifier, found %q", t.text)
	}
	p.advance()
	return t.text, t.pos, nil
}

func (p *parser) parseProgram() error {
	for p.cur().kind != tokEOF {
		if !p.atKeyword("int") && !p.atKeyword("void") && !p.atKeyword("fnptr") {
			return p.errorf("expected declaration, found %q", p.cur().text)
		}
		kw := p.advance()
		name, pos, err := p.expectIdent()
		if err != nil {
			return err
		}
		if p.atPunct("(") {
			if kw.text == "fnptr" {
				return p.errorf("functions cannot return fnptr")
			}
			fn, err := p.parseFunc(name, pos, kw.text == "int")
			if err != nil {
				return err
			}
			p.prog.Funcs = append(p.prog.Funcs, fn)
			continue
		}
		if kw.text == "void" {
			return p.errorf("void is not a variable type")
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		p.prog.Globals = append(p.prog.Globals, &GlobalDecl{
			Pos: pos, Name: name, IsFnPtr: kw.text == "fnptr",
		})
	}
	return nil
}

func (p *parser) parseFunc(name string, pos Pos, returnsValue bool) (*FuncDecl, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var params []Param
	if !p.atPunct(")") {
		for {
			isFnPtr := false
			switch {
			case p.atKeyword("int"):
				p.advance()
			case p.atKeyword("fnptr"):
				isFnPtr = true
				p.advance()
			default:
				return nil, p.errorf("expected parameter type")
			}
			pn, _, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			params = append(params, Param{Name: pn, IsFnPtr: isFnPtr})
			if !p.atPunct(",") {
				break
			}
			p.advance()
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Pos: pos, Name: name, Params: params, ReturnsValue: returnsValue, Body: body}, nil
}

func (p *parser) parseBlock() (*Block, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	b := &Block{}
	for !p.atPunct("}") {
		if p.cur().kind == tokEOF {
			return nil, p.errorf("unexpected end of file in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.advance() // consume }
	return b, nil
}

func (p *parser) base(pos Pos) StmtBase {
	return StmtBase{ID: p.prog.NewID(), Pos: pos}
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case p.atKeyword("int") || p.atKeyword("fnptr"):
		isFnPtr := t.text == "fnptr"
		p.advance()
		name, pos, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s := &DeclStmt{StmtBase: p.base(pos), Name: name, IsFnPtr: isFnPtr}
		if p.atPunct("=") {
			p.advance()
			s.Init, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		return s, p.expectPunct(";")

	case p.atKeyword("if"):
		p.advance()
		s := &IfStmt{StmtBase: p.base(t.pos)}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var err error
		s.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		s.Then, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
		if p.atKeyword("else") {
			p.advance()
			if p.atKeyword("if") {
				inner, err := p.parseStmt()
				if err != nil {
					return nil, err
				}
				s.Else = &Block{Stmts: []Stmt{inner}}
			} else {
				s.Else, err = p.parseBlock()
				if err != nil {
					return nil, err
				}
			}
		}
		return s, nil

	case p.atKeyword("while"):
		p.advance()
		s := &WhileStmt{StmtBase: p.base(t.pos)}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var err error
		s.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		s.Body, err = p.parseBlock()
		if err != nil {
			return nil, err
		}
		return s, nil

	case p.atKeyword("return"):
		p.advance()
		s := &ReturnStmt{StmtBase: p.base(t.pos)}
		if !p.atPunct(";") {
			var err error
			s.Value, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		return s, p.expectPunct(";")

	case p.atKeyword("break"):
		p.advance()
		return &BreakStmt{StmtBase: p.base(t.pos)}, p.expectPunct(";")

	case p.atKeyword("continue"):
		p.advance()
		return &ContinueStmt{StmtBase: p.base(t.pos)}, p.expectPunct(";")

	case p.atKeyword("printf"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.cur().kind != tokString {
			return nil, p.errorf("printf requires a string literal format")
		}
		s := &PrintfStmt{StmtBase: p.base(t.pos), Format: p.advance().text}
		for p.atPunct(",") {
			p.advance()
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Args = append(s.Args, a)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return s, p.expectPunct(";")

	case p.atKeyword("scanf"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if p.cur().kind != tokString {
			return nil, p.errorf("scanf requires a string literal format")
		}
		s := &ScanfStmt{StmtBase: p.base(t.pos), Format: p.advance().text}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if err := p.expectPunct("&"); err != nil {
			return nil, err
		}
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		s.Var = name
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return s, p.expectPunct(";")

	case t.kind == tokIdent:
		name, pos, _ := p.expectIdent()
		if p.atPunct("=") {
			p.advance()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{StmtBase: p.base(pos), LHS: name, RHS: rhs}, p.expectPunct(";")
		}
		if p.atPunct("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallStmt{StmtBase: p.base(pos), Callee: name, Args: args}, p.expectPunct(";")
		}
		return nil, p.errorf("expected '=' or '(' after identifier %q", name)
	}
	return nil, p.errorf("unexpected token %q", t.text)
}

func (p *parser) parseArgs() ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expr
	if !p.atPunct(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if !p.atPunct(",") {
				break
			}
			p.advance()
		}
	}
	return args, p.expectPunct(")")
}

// Operator precedence, low to high.
var binaryPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBinary(1) }

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binaryPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		op := p.advance().text
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x}, nil
	}
	if t.kind == tokPunct && t.text == "&" {
		p.advance()
		name, _, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &FuncRef{Name: name}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokInt:
		p.advance()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.text)
		}
		return &IntLit{Value: v}, nil
	case t.kind == tokIdent:
		name := p.advance().text
		if p.atPunct("(") {
			args, err := p.parseArgs()
			if err != nil {
				return nil, err
			}
			return &CallExpr{Callee: name, Args: args}, nil
		}
		return &VarRef{Name: name}, nil
	case p.atPunct("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	return nil, p.errorf("expected expression, found %q", t.text)
}
