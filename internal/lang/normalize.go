package lang

import "fmt"

// scope holds per-function symbol information used by resolution and
// normalization.
type scope struct {
	prog   *Program
	fn     *FuncDecl
	vars   map[string]bool // params + locals
	fnptrs map[string]bool // subset of vars (plus fnptr globals) holding function values
}

func newScope(prog *Program, fn *FuncDecl) (*scope, error) {
	sc := &scope{prog: prog, fn: fn, vars: map[string]bool{}, fnptrs: map[string]bool{}}
	for _, g := range prog.Globals {
		if g.IsFnPtr {
			sc.fnptrs[g.Name] = true
		}
	}
	for _, pm := range fn.Params {
		if sc.vars[pm.Name] {
			return nil, fmt.Errorf("%s: duplicate parameter %q in %s", fn.Pos, pm.Name, fn.Name)
		}
		if prog.Func(pm.Name) != nil {
			return nil, fmt.Errorf("%s: parameter %q shadows a function", fn.Pos, pm.Name)
		}
		sc.vars[pm.Name] = true
		if pm.IsFnPtr {
			sc.fnptrs[pm.Name] = true
		}
	}
	var err error
	WalkStmts(fn.Body, func(s Stmt) {
		d, ok := s.(*DeclStmt)
		if !ok || err != nil {
			return
		}
		if sc.vars[d.Name] {
			err = fmt.Errorf("%s: duplicate local %q in %s (MicroC locals have flat function scope)", d.Pos, d.Name, fn.Name)
			return
		}
		if prog.Func(d.Name) != nil {
			err = fmt.Errorf("%s: local %q shadows a function", d.Pos, d.Name)
			return
		}
		sc.vars[d.Name] = true
		if d.IsFnPtr {
			sc.fnptrs[d.Name] = true
		}
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// known reports whether name is visible in the scope (local, param, or global).
func (sc *scope) known(name string) bool {
	return sc.vars[name] || sc.prog.Global(name)
}

// resolve performs name resolution on a freshly parsed program: it converts
// variable references that name functions into FuncRefs, classifies calls as
// direct or indirect, and checks declarations, arities, and main's shape.
func resolve(prog *Program) error {
	seenGlobal := map[string]bool{}
	for _, g := range prog.Globals {
		if seenGlobal[g.Name] {
			return fmt.Errorf("%s: duplicate global %q", g.Pos, g.Name)
		}
		seenGlobal[g.Name] = true
	}
	seenFunc := map[string]bool{}
	for _, f := range prog.Funcs {
		if seenFunc[f.Name] {
			return fmt.Errorf("%s: duplicate function %q", f.Pos, f.Name)
		}
		if seenGlobal[f.Name] {
			return fmt.Errorf("%s: function %q collides with a global", f.Pos, f.Name)
		}
		seenFunc[f.Name] = true
	}
	if m := prog.Func("main"); m == nil {
		return fmt.Errorf("program has no main function")
	} else if len(m.Params) != 0 {
		return fmt.Errorf("%s: main must take no parameters", m.Pos)
	}

	for _, fn := range prog.Funcs {
		sc, err := newScope(prog, fn)
		if err != nil {
			return err
		}
		if err := sc.resolveFunc(); err != nil {
			return err
		}
	}
	return nil
}

func (sc *scope) resolveFunc() error {
	var err error
	WalkStmts(sc.fn.Body, func(s Stmt) {
		if err != nil {
			return
		}
		err = sc.resolveStmt(s)
	})
	return err
}

func (sc *scope) resolveStmt(s Stmt) error {
	pos := s.Base().Pos
	switch x := s.(type) {
	case *DeclStmt:
		if x.Init != nil {
			if e, err := sc.resolveExpr(x.Init, pos); err != nil {
				return err
			} else {
				x.Init = e
			}
		}
	case *AssignStmt:
		if !sc.known(x.LHS) {
			return fmt.Errorf("%s: assignment to undeclared variable %q", pos, x.LHS)
		}
		e, err := sc.resolveExpr(x.RHS, pos)
		if err != nil {
			return err
		}
		x.RHS = e
	case *CallStmt:
		if err := sc.resolveCallTarget(&x.Callee, &x.Indirect, pos); err != nil {
			return err
		}
		if !x.Indirect {
			callee := sc.prog.Func(x.Callee)
			if len(x.Args) != len(callee.Params) {
				return fmt.Errorf("%s: call to %s with %d args, want %d", pos, x.Callee, len(x.Args), len(callee.Params))
			}
			if x.Target != "" && !callee.ReturnsValue {
				return fmt.Errorf("%s: void function %s used in assignment", pos, x.Callee)
			}
		}
		if x.Target != "" && !sc.known(x.Target) {
			return fmt.Errorf("%s: assignment to undeclared variable %q", pos, x.Target)
		}
		for i, a := range x.Args {
			e, err := sc.resolveExpr(a, pos)
			if err != nil {
				return err
			}
			x.Args[i] = e
		}
	case *IfStmt:
		e, err := sc.resolveExpr(x.Cond, pos)
		if err != nil {
			return err
		}
		x.Cond = e
	case *WhileStmt:
		e, err := sc.resolveExpr(x.Cond, pos)
		if err != nil {
			return err
		}
		x.Cond = e
	case *ReturnStmt:
		if x.Value != nil && !sc.fn.ReturnsValue {
			return fmt.Errorf("%s: void function %s returns a value", pos, sc.fn.Name)
		}
		if x.Value != nil {
			e, err := sc.resolveExpr(x.Value, pos)
			if err != nil {
				return err
			}
			x.Value = e
		}
	case *PrintfStmt:
		for i, a := range x.Args {
			e, err := sc.resolveExpr(a, pos)
			if err != nil {
				return err
			}
			x.Args[i] = e
		}
	case *ScanfStmt:
		if !sc.known(x.Var) {
			return fmt.Errorf("%s: scanf into undeclared variable %q", pos, x.Var)
		}
	}
	return nil
}

func (sc *scope) resolveCallTarget(callee *string, indirect *bool, pos Pos) error {
	name := *callee
	switch {
	case sc.prog.Func(name) != nil:
		*indirect = false
	case sc.fnptrs[name]:
		*indirect = true
	case sc.known(name):
		return fmt.Errorf("%s: %q is not a function or fnptr", pos, name)
	default:
		return fmt.Errorf("%s: call to undefined function %q", pos, name)
	}
	return nil
}

func (sc *scope) resolveExpr(e Expr, pos Pos) (Expr, error) {
	switch x := e.(type) {
	case *IntLit:
		return x, nil
	case *VarRef:
		if sc.prog.Func(x.Name) != nil {
			return &FuncRef{Name: x.Name}, nil
		}
		if !sc.known(x.Name) {
			return nil, fmt.Errorf("%s: undeclared variable %q", pos, x.Name)
		}
		return x, nil
	case *FuncRef:
		if sc.prog.Func(x.Name) == nil {
			return nil, fmt.Errorf("%s: &%s does not name a function", pos, x.Name)
		}
		return x, nil
	case *Unary:
		sub, err := sc.resolveExpr(x.X, pos)
		if err != nil {
			return nil, err
		}
		x.X = sub
		return x, nil
	case *Binary:
		l, err := sc.resolveExpr(x.X, pos)
		if err != nil {
			return nil, err
		}
		r, err := sc.resolveExpr(x.Y, pos)
		if err != nil {
			return nil, err
		}
		x.X, x.Y = l, r
		return x, nil
	case *CallExpr:
		if err := sc.resolveCallTarget(&x.Callee, &x.Indirect, pos); err != nil {
			return nil, err
		}
		if !x.Indirect {
			callee := sc.prog.Func(x.Callee)
			if !callee.ReturnsValue {
				return nil, fmt.Errorf("%s: void function %s used as a value", pos, x.Callee)
			}
			if len(x.Args) != len(callee.Params) {
				return nil, fmt.Errorf("%s: call to %s with %d args, want %d", pos, x.Callee, len(x.Args), len(callee.Params))
			}
		}
		for i, a := range x.Args {
			sub, err := sc.resolveExpr(a, pos)
			if err != nil {
				return nil, err
			}
			x.Args[i] = sub
		}
		return x, nil
	}
	return nil, fmt.Errorf("%s: unknown expression node %T", pos, e)
}

// Normalize hoists every call out of expression position so that calls occur
// only as top-level CallStmts (`x = f(a);` or `f(a);`). Nested calls become
// assignments to fresh temporaries. Loop conditions may not contain calls
// (hoisting one would change evaluation timing); Normalize reports an error
// for those.
func Normalize(prog *Program) error {
	n := &normalizer{prog: prog}
	for _, fn := range prog.Funcs {
		n.fn = fn
		n.newDecls = nil
		if err := n.block(fn.Body); err != nil {
			return err
		}
		if len(n.newDecls) > 0 {
			fn.Body.Stmts = append(n.newDecls, fn.Body.Stmts...)
		}
	}
	return Validate(prog)
}

type normalizer struct {
	prog     *Program
	fn       *FuncDecl
	tempSeq  int
	newDecls []Stmt
}

func (n *normalizer) newTemp(pos Pos) string {
	n.tempSeq++
	name := fmt.Sprintf("_t%d", n.tempSeq)
	n.newDecls = append(n.newDecls, &DeclStmt{
		StmtBase: StmtBase{ID: n.prog.NewID(), Pos: pos},
		Name:     name,
	})
	return name
}

func (n *normalizer) block(b *Block) error {
	var out []Stmt
	for _, s := range b.Stmts {
		pre, repl, err := n.stmt(s)
		if err != nil {
			return err
		}
		out = append(out, pre...)
		out = append(out, repl)
	}
	b.Stmts = out
	return nil
}

// stmt returns hoisted call statements to insert before s, and s itself
// (possibly rewritten).
func (n *normalizer) stmt(s Stmt) (pre []Stmt, repl Stmt, err error) {
	pos := s.Base().Pos
	switch x := s.(type) {
	case *AssignStmt:
		// `x = f(...);` becomes a CallStmt directly.
		if c, ok := x.RHS.(*CallExpr); ok {
			args, p, err := n.hoistAll(c.Args, pos)
			if err != nil {
				return nil, nil, err
			}
			return p, &CallStmt{StmtBase: x.StmtBase, Target: x.LHS, Callee: c.Callee, Args: args, Indirect: c.Indirect}, nil
		}
		e, p, err := n.hoist(x.RHS, pos)
		if err != nil {
			return nil, nil, err
		}
		x.RHS = e
		return p, x, nil

	case *DeclStmt:
		if c, ok := x.Init.(*CallExpr); ok {
			args, p, err := n.hoistAll(c.Args, pos)
			if err != nil {
				return nil, nil, err
			}
			x.Init = nil
			call := &CallStmt{
				StmtBase: StmtBase{ID: n.prog.NewID(), Pos: pos},
				Target:   x.Name, Callee: c.Callee, Args: args, Indirect: c.Indirect,
			}
			return append(p, x), call, nil
		}
		if x.Init != nil {
			e, p, err := n.hoist(x.Init, pos)
			if err != nil {
				return nil, nil, err
			}
			x.Init = e
			return p, x, nil
		}
		return nil, x, nil

	case *CallStmt:
		args, p, err := n.hoistAll(x.Args, pos)
		if err != nil {
			return nil, nil, err
		}
		x.Args = args
		return p, x, nil

	case *IfStmt:
		e, p, err := n.hoist(x.Cond, pos)
		if err != nil {
			return nil, nil, err
		}
		x.Cond = e
		if err := n.block(x.Then); err != nil {
			return nil, nil, err
		}
		if x.Else != nil {
			if err := n.block(x.Else); err != nil {
				return nil, nil, err
			}
		}
		return p, x, nil

	case *WhileStmt:
		if HasCall(x.Cond) {
			return nil, nil, fmt.Errorf("%s: calls in while conditions are not supported by MicroC; assign to a variable inside the loop", pos)
		}
		if err := n.block(x.Body); err != nil {
			return nil, nil, err
		}
		return nil, x, nil

	case *ReturnStmt:
		if x.Value != nil {
			e, p, err := n.hoist(x.Value, pos)
			if err != nil {
				return nil, nil, err
			}
			x.Value = e
			return p, x, nil
		}
		return nil, x, nil

	case *PrintfStmt:
		args, p, err := n.hoistAll(x.Args, pos)
		if err != nil {
			return nil, nil, err
		}
		x.Args = args
		return p, x, nil
	}
	return nil, s, nil
}

func (n *normalizer) hoistAll(es []Expr, pos Pos) ([]Expr, []Stmt, error) {
	var pre []Stmt
	out := make([]Expr, len(es))
	for i, e := range es {
		r, p, err := n.hoist(e, pos)
		if err != nil {
			return nil, nil, err
		}
		pre = append(pre, p...)
		out[i] = r
	}
	return out, pre, nil
}

// hoist rewrites e so it contains no CallExpr, emitting temp-assigning
// CallStmts in evaluation order.
func (n *normalizer) hoist(e Expr, pos Pos) (Expr, []Stmt, error) {
	switch x := e.(type) {
	case nil, *IntLit, *VarRef, *FuncRef:
		return e, nil, nil
	case *Unary:
		sub, p, err := n.hoist(x.X, pos)
		if err != nil {
			return nil, nil, err
		}
		x.X = sub
		return x, p, nil
	case *Binary:
		l, p1, err := n.hoist(x.X, pos)
		if err != nil {
			return nil, nil, err
		}
		r, p2, err := n.hoist(x.Y, pos)
		if err != nil {
			return nil, nil, err
		}
		x.X, x.Y = l, r
		return x, append(p1, p2...), nil
	case *CallExpr:
		args, pre, err := n.hoistAll(x.Args, pos)
		if err != nil {
			return nil, nil, err
		}
		tmp := n.newTemp(pos)
		call := &CallStmt{
			StmtBase: StmtBase{ID: n.prog.NewID(), Pos: pos},
			Target:   tmp, Callee: x.Callee, Args: args, Indirect: x.Indirect,
		}
		return &VarRef{Name: tmp}, append(pre, call), nil
	}
	return nil, nil, fmt.Errorf("%s: unknown expression node %T", pos, e)
}

// Validate checks the invariants relied upon by the analysis pipeline:
// calls appear only as CallStmts, and all names resolve.
func Validate(prog *Program) error {
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			for _, e := range StmtExprs(s) {
				if HasCall(e) {
					return fmt.Errorf("%s: internal error: call remains in expression position after normalization", s.Base().Pos)
				}
			}
		}
	}
	return resolve(prog)
}
