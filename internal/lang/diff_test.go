package lang

import (
	"strings"
	"testing"
)

const diffBase = `
int g;
int h;

int helper(int a) {
  return a + 1;
}

void sink(int v) {
  g = v;
}

int main() {
  int x = 3;
  x = helper(x);
  sink(x);
  printf("%d\n", g);
  return 0;
}
`

func parseT(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestProcHashStableUnderReformat(t *testing.T) {
	a := parseT(t, diffBase)
	// Same program, scrambled whitespace and redundant formatting.
	b := parseT(t, strings.ReplaceAll(diffBase, "\n  ", "\n      "))
	for _, f := range a.Funcs {
		g := b.Func(f.Name)
		if g == nil {
			t.Fatalf("missing %s in reformatted program", f.Name)
		}
		if ProcHash(f) != ProcHash(g) {
			t.Errorf("%s: hash changed under reformatting", f.Name)
		}
	}
	d := DiffPrograms(a, b)
	if d.HasChanges() {
		t.Errorf("reformat diff not empty: %+v", d)
	}
}

func TestProcHashStableUnderCallNesting(t *testing.T) {
	// `x = helper(x); sink(x);` vs the pre-normalization nested form
	// `sink(helper(x));` normalize to call statements either way; the
	// procedures that did not change must hash identically.
	a := parseT(t, diffBase)
	b := parseT(t, strings.Replace(diffBase,
		"x = helper(x);\n  sink(x);", "sink(helper(x));", 1))
	for _, name := range []string{"helper", "sink"} {
		if ProcHash(a.Func(name)) != ProcHash(b.Func(name)) {
			t.Errorf("%s: hash changed though procedure untouched", name)
		}
	}
	d := DiffPrograms(a, b)
	if got, want := strings.Join(d.Changed, ","), "main"; got != want {
		t.Errorf("Changed = %q, want %q", got, want)
	}
	if len(d.Added)+len(d.Removed) != 0 || d.GlobalsChanged {
		t.Errorf("unexpected add/remove/global changes: %+v", d)
	}
}

func TestDiffClassification(t *testing.T) {
	old := parseT(t, diffBase)
	tests := []struct {
		name           string
		src            string
		unchanged      string
		changed        string
		added          string
		removed        string
		globalsChanged bool
	}{
		{
			name:      "identical",
			src:       diffBase,
			unchanged: "helper,main,sink",
		},
		{
			name:      "statement edit",
			src:       strings.Replace(diffBase, "return a + 1;", "return a + 2;", 1),
			unchanged: "main,sink",
			changed:   "helper",
		},
		{
			name: "procedure added",
			src: strings.Replace(diffBase, "int main", `int extra(int z) {
  return z * 2;
}

int main`, 1),
			unchanged: "helper,main,sink",
			added:     "extra",
		},
		{
			name: "procedure renamed = removed + added",
			src: strings.NewReplacer("helper(", "assist(", "int helper", "int assist").
				Replace(diffBase),
			unchanged: "sink",
			changed:   "main", // its call site now names assist
			added:     "assist",
			removed:   "helper",
		},
		{
			name:           "global added",
			src:            strings.Replace(diffBase, "int g;", "int g;\nint extra_g;", 1),
			unchanged:      "helper,main,sink",
			globalsChanged: true,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			d := DiffPrograms(old, parseT(t, tc.src))
			check := func(what string, got []string, want string) {
				if s := strings.Join(got, ","); s != want {
					t.Errorf("%s = %q, want %q", what, s, want)
				}
			}
			check("Unchanged", d.Unchanged, tc.unchanged)
			check("Changed", d.Changed, tc.changed)
			check("Added", d.Added, tc.added)
			check("Removed", d.Removed, tc.removed)
			if d.GlobalsChanged != tc.globalsChanged {
				t.Errorf("GlobalsChanged = %v, want %v", d.GlobalsChanged, tc.globalsChanged)
			}
		})
	}
}
