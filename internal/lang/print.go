package lang

import (
	"fmt"
	"strings"
)

// Print renders the program as MicroC source text. The output reparses to an
// equivalent program (modulo normalization temporaries already present).
func Print(prog *Program) string {
	var sb strings.Builder
	for _, g := range prog.Globals {
		ty := "int"
		if g.IsFnPtr {
			ty = "fnptr"
		}
		fmt.Fprintf(&sb, "%s %s;\n", ty, g.Name)
	}
	if len(prog.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range prog.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		printFunc(&sb, f)
	}
	return sb.String()
}

func printFunc(sb *strings.Builder, f *FuncDecl) {
	ret := "void"
	if f.ReturnsValue {
		ret = "int"
	}
	var params []string
	for _, p := range f.Params {
		ty := "int"
		if p.IsFnPtr {
			ty = "fnptr"
		}
		params = append(params, ty+" "+p.Name)
	}
	fmt.Fprintf(sb, "%s %s(%s) {\n", ret, f.Name, strings.Join(params, ", "))
	printBlockBody(sb, f.Body, 1)
	sb.WriteString("}\n")
}

func indentOf(n int) string { return strings.Repeat("  ", n) }

func printBlockBody(sb *strings.Builder, b *Block, depth int) {
	if b == nil {
		return
	}
	for _, s := range b.Stmts {
		printStmt(sb, s, depth)
	}
}

func printStmt(sb *strings.Builder, s Stmt, depth int) {
	ind := indentOf(depth)
	switch x := s.(type) {
	case *DeclStmt:
		ty := "int"
		if x.IsFnPtr {
			ty = "fnptr"
		}
		if x.Init != nil {
			fmt.Fprintf(sb, "%s%s %s = %s;\n", ind, ty, x.Name, ExprString(x.Init))
		} else {
			fmt.Fprintf(sb, "%s%s %s;\n", ind, ty, x.Name)
		}
	case *AssignStmt:
		fmt.Fprintf(sb, "%s%s = %s;\n", ind, x.LHS, ExprString(x.RHS))
	case *CallStmt:
		var args []string
		for _, a := range x.Args {
			args = append(args, ExprString(a))
		}
		call := fmt.Sprintf("%s(%s)", x.Callee, strings.Join(args, ", "))
		if x.Target != "" {
			fmt.Fprintf(sb, "%s%s = %s;\n", ind, x.Target, call)
		} else {
			fmt.Fprintf(sb, "%s%s;\n", ind, call)
		}
	case *IfStmt:
		fmt.Fprintf(sb, "%sif (%s) {\n", ind, ExprString(x.Cond))
		printBlockBody(sb, x.Then, depth+1)
		if x.Else != nil {
			fmt.Fprintf(sb, "%s} else {\n", ind)
			printBlockBody(sb, x.Else, depth+1)
		}
		fmt.Fprintf(sb, "%s}\n", ind)
	case *WhileStmt:
		fmt.Fprintf(sb, "%swhile (%s) {\n", ind, ExprString(x.Cond))
		printBlockBody(sb, x.Body, depth+1)
		fmt.Fprintf(sb, "%s}\n", ind)
	case *ReturnStmt:
		if x.Value != nil {
			fmt.Fprintf(sb, "%sreturn %s;\n", ind, ExprString(x.Value))
		} else {
			fmt.Fprintf(sb, "%sreturn;\n", ind)
		}
	case *BreakStmt:
		fmt.Fprintf(sb, "%sbreak;\n", ind)
	case *ContinueStmt:
		fmt.Fprintf(sb, "%scontinue;\n", ind)
	case *PrintfStmt:
		parts := []string{quoteString(x.Format)}
		for _, a := range x.Args {
			parts = append(parts, ExprString(a))
		}
		fmt.Fprintf(sb, "%sprintf(%s);\n", ind, strings.Join(parts, ", "))
	case *ScanfStmt:
		fmt.Fprintf(sb, "%sscanf(%s, &%s);\n", ind, quoteString(x.Format), x.Var)
	default:
		fmt.Fprintf(sb, "%s/* unknown statement %T */\n", ind, s)
	}
}

func quoteString(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	return exprString(e, 0)
}

func exprString(e Expr, parentPrec int) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *VarRef:
		return x.Name
	case *FuncRef:
		return "&" + x.Name
	case *Unary:
		return x.Op + exprString(x.X, 7)
	case *Binary:
		prec := binaryPrec[x.Op]
		s := exprString(x.X, prec) + " " + x.Op + " " + exprString(x.Y, prec+1)
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, exprString(a, 0))
		}
		return fmt.Sprintf("%s(%s)", x.Callee, strings.Join(args, ", "))
	}
	return fmt.Sprintf("<%T>", e)
}
