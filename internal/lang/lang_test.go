package lang

import (
	"strings"
	"testing"
)

const fig1Src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

func TestParseFig1(t *testing.T) {
	prog, err := Parse(fig1Src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Globals) != 3 {
		t.Errorf("globals = %d, want 3", len(prog.Globals))
	}
	if len(prog.Funcs) != 2 {
		t.Fatalf("funcs = %d, want 2", len(prog.Funcs))
	}
	p := prog.Func("p")
	if p == nil || len(p.Params) != 2 || p.ReturnsValue {
		t.Errorf("p misparsed: %+v", p)
	}
	m := prog.Func("main")
	if m == nil || !m.ReturnsValue {
		t.Errorf("main misparsed")
	}
	// 3 direct calls + 1 printf in main.
	calls, printfs := 0, 0
	for _, s := range m.Stmts() {
		switch s.(type) {
		case *CallStmt:
			calls++
		case *PrintfStmt:
			printfs++
		}
	}
	if calls != 3 || printfs != 1 {
		t.Errorf("calls=%d printfs=%d, want 3 and 1", calls, printfs)
	}
}

func TestPrintRoundTrip(t *testing.T) {
	prog := MustParse(fig1Src)
	text := Print(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if got := Print(prog2); got != text {
		t.Errorf("print not a fixed point:\n--- first\n%s\n--- second\n%s", text, got)
	}
}

func TestNormalizeHoistsNestedCalls(t *testing.T) {
	src := `
int g;
int f(int a) { return a + 1; }
int main() {
  g = f(f(2)) + f(3);
  printf("%d", g);
  return 0;
}
`
	prog := MustParse(src)
	m := prog.Func("main")
	for _, s := range m.Stmts() {
		for _, e := range StmtExprs(s) {
			if HasCall(e) {
				t.Fatalf("call left in expression position: %s", ExprString(e))
			}
		}
	}
	// Three temp calls must have been introduced.
	n := 0
	for _, s := range m.Stmts() {
		if c, ok := s.(*CallStmt); ok && c.Callee == "f" {
			n++
		}
	}
	if n != 3 {
		t.Errorf("hoisted calls = %d, want 3", n)
	}
}

func TestNormalizeRejectsCallInWhileCond(t *testing.T) {
	src := `
int f() { return 1; }
int main() {
  while (f() > 0) { }
  return 0;
}
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "while conditions") {
		t.Errorf("want while-condition error, got %v", err)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no-main", `int f() { return 1; }`, "no main"},
		{"undeclared", `int main() { x = 1; return 0; }`, "undeclared"},
		{"arity", `void f(int a) {} int main() { f(1, 2); return 0; }`, "args"},
		{"void-value", `void f() {} int main() { int x = f(); return 0; }`, "void"},
		{"dup-local", `int main() { int x; int x; return 0; }`, "duplicate local"},
		{"dup-global", `int g; int g; int main() { return 0; }`, "duplicate global"},
		{"unknown-callee", `int main() { q(1); return 0; }`, "undefined function"},
		{"main-params", `int main(int a) { return 0; }`, "no parameters"},
		{"void-return-value", `void f() { return 3; } int main() { f(); return 0; }`, "returns a value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestFnptrParsing(t *testing.T) {
	src := `
int f(int a, int b) { return a + b; }
int g(int a, int b) { return a; }
int main() {
  fnptr p;
  int x;
  if (1) { p = f; } else { p = &g; }
  x = p(1, 2);
  printf("%d", x);
  return 0;
}
`
	prog := MustParse(src)
	var indirect *CallStmt
	for _, s := range prog.Func("main").Stmts() {
		if c, ok := s.(*CallStmt); ok && c.Indirect {
			indirect = c
		}
	}
	if indirect == nil || indirect.Callee != "p" || indirect.Target != "x" {
		t.Fatalf("indirect call misparsed: %+v", indirect)
	}
	// p = f must resolve the RHS to a FuncRef.
	funcRefs := 0
	for _, s := range prog.Func("main").Stmts() {
		if a, ok := s.(*AssignStmt); ok {
			if _, isFR := a.RHS.(*FuncRef); isFR {
				funcRefs++
			}
		}
	}
	if funcRefs != 2 {
		t.Errorf("FuncRef assignments = %d, want 2", funcRefs)
	}
}

func TestCloneProgramPreservesOrigin(t *testing.T) {
	prog := MustParse(fig1Src)
	clone := CloneProgram(prog)
	if Print(clone) != Print(prog) {
		t.Fatalf("clone prints differently")
	}
	orig := prog.Func("main").Stmts()
	cl := clone.Func("main").Stmts()
	if len(orig) != len(cl) {
		t.Fatalf("stmt count differs: %d vs %d", len(orig), len(cl))
	}
	for i := range orig {
		if cl[i].Base().OriginID() != orig[i].Base().OriginID() {
			t.Errorf("stmt %d: origin %d, want %d", i, cl[i].Base().OriginID(), orig[i].Base().OriginID())
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{`int main() { printf("unterminated); }`, "int main() { @ }", "/* unterminated"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("want lex error for %q", src)
		}
	}
}

func TestCommentsAndPrecedence(t *testing.T) {
	src := `
// line comment
int g; /* block
comment */
int main() {
  g = 1 + 2 * 3 - -4;       // 1+6+4 = 11
  g = (1 + 2) * 3 % 5;      // 9%5 = 4
  g = 1 < 2 && 3 >= 3 || 0; // 1
  printf("%d", g);
  return 0;
}
`
	prog := MustParse(src)
	text := Print(prog)
	if _, err := Parse(text); err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
}
