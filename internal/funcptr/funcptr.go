// Package funcptr implements the paper's §6.2 treatment of pointers to
// procedures and indirect calls: a flow-insensitive Andersen-style
// points-to analysis over fnptr variables, followed by a transformation
// that replaces each indirect call with a call to a synthesized dispatch
// procedure ("indirect" in the paper) whose body tests the pointer against
// each procedure in its points-to set. After the transformation the program
// contains only direct calls, so the SDG builder and the
// specialization-slicing algorithm apply unchanged — and the slicer
// automatically specializes the dispatch procedures along with everything
// else.
package funcptr

import (
	"fmt"
	"sort"

	"specslice/internal/lang"
)

// PointsTo is the result of the points-to analysis: for each fnptr variable
// (globals by name, locals and params as "func/var"), the set of functions
// it may hold.
type PointsTo map[string]map[string]bool

// key returns the points-to key for variable name v in function fn (fnptr
// globals use their bare name).
func key(prog *lang.Program, fn *lang.FuncDecl, v string) string {
	for _, g := range prog.Globals {
		if g.Name == v && g.IsFnPtr {
			return v
		}
	}
	return fn.Name + "/" + v
}

// Analyze computes flow-insensitive points-to sets for fnptr variables.
// Like the paper's CodeSurfer setup (Andersen's analysis), it does not
// model uninitialized pointers: a dispatch procedure tests only the
// functions that may be assigned.
func Analyze(prog *lang.Program) PointsTo {
	pts := PointsTo{}
	get := func(k string) map[string]bool {
		if pts[k] == nil {
			pts[k] = map[string]bool{}
		}
		return pts[k]
	}
	type copyEdge struct{ from, to string }
	var copies []copyEdge

	addExpr := func(fn *lang.FuncDecl, dst string, e lang.Expr) {
		switch x := e.(type) {
		case *lang.FuncRef:
			get(dst)[x.Name] = true
		case *lang.VarRef:
			copies = append(copies, copyEdge{key(prog, fn, x.Name), dst})
		}
	}

	// Indirect-call argument binding depends on the callee set, which grows
	// during the fixed point; rebuild constraints until stable.
	for {
		before := fmt.Sprint(pts)
		copies = copies[:0]
		for _, fn := range prog.Funcs {
			for _, s := range fn.Stmts() {
				switch x := s.(type) {
				case *lang.DeclStmt:
					if x.Init != nil {
						addExpr(fn, key(prog, fn, x.Name), x.Init)
					}
				case *lang.AssignStmt:
					addExpr(fn, key(prog, fn, x.LHS), x.RHS)
				case *lang.CallStmt:
					var callees []string
					if x.Indirect {
						for f := range pts[key(prog, fn, x.Callee)] {
							callees = append(callees, f)
						}
					} else {
						callees = []string{x.Callee}
					}
					for _, cn := range callees {
						callee := prog.Func(cn)
						if callee == nil {
							continue
						}
						for i, a := range x.Args {
							if i < len(callee.Params) {
								// The argument expression is evaluated in
								// the *caller*'s scope; the destination is
								// the callee's parameter.
								addExpr(fn, key(prog, callee, callee.Params[i].Name), a)
							}
						}
					}
				}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, c := range copies {
				for f := range pts[c.from] {
					if !get(c.to)[f] {
						get(c.to)[f] = true
						changed = true
					}
				}
			}
		}
		if fmt.Sprint(pts) == before {
			break
		}
	}
	return pts
}

// Transform rewrites prog (a deep copy is returned; the input is not
// modified) so that every indirect call goes through a synthesized dispatch
// procedure. It returns the transformed program and the number of dispatch
// procedures created.
func Transform(prog *lang.Program) (*lang.Program, int, error) {
	out := lang.CloneProgram(prog)
	pts := Analyze(out)

	dispatchFor := map[string]string{} // signature key -> dispatch proc name
	created := 0

	for _, fn := range out.Funcs {
		var err error
		rewriteBlock(out, fn, pts, dispatchFor, &created, fn.Body, &err)
		if err != nil {
			return nil, 0, err
		}
	}
	if err := lang.Validate(out); err != nil {
		return nil, 0, fmt.Errorf("funcptr: transformed program invalid: %w", err)
	}
	return out, created, nil
}

func rewriteBlock(prog *lang.Program, fn *lang.FuncDecl, pts PointsTo, dispatchFor map[string]string, created *int, b *lang.Block, err *error) {
	if b == nil || *err != nil {
		return
	}
	for i, s := range b.Stmts {
		switch x := s.(type) {
		case *lang.IfStmt:
			rewriteBlock(prog, fn, pts, dispatchFor, created, x.Then, err)
			rewriteBlock(prog, fn, pts, dispatchFor, created, x.Else, err)
		case *lang.WhileStmt:
			rewriteBlock(prog, fn, pts, dispatchFor, created, x.Body, err)
		case *lang.CallStmt:
			if !x.Indirect {
				continue
			}
			var cands []string
			for f := range pts[key(prog, fn, x.Callee)] {
				cands = append(cands, f)
			}
			sort.Strings(cands)
			if len(cands) == 0 {
				*err = fmt.Errorf("funcptr: %s: indirect call through %q with empty points-to set", x.Pos, x.Callee)
				return
			}
			name, e := dispatchProc(prog, dispatchFor, created, cands, len(x.Args), x.Target != "")
			if e != nil {
				*err = fmt.Errorf("funcptr: %s: %v", x.Pos, e)
				return
			}
			// x = p(a, b)  becomes  x = __dispatch_N(p, a, b).
			nc := &lang.CallStmt{
				StmtBase: lang.StmtBase{ID: prog.NewID(), Pos: x.Pos, Origin: x.OriginID()},
				Target:   x.Target,
				Callee:   name,
				Args:     append([]lang.Expr{&lang.VarRef{Name: x.Callee}}, x.Args...),
			}
			b.Stmts[i] = nc
		}
	}
}

// dispatchProc returns (creating on demand) the dispatch procedure for the
// given candidate set / arity / value-use signature.
func dispatchProc(prog *lang.Program, dispatchFor map[string]string, created *int, cands []string, arity int, needsValue bool) (string, error) {
	for _, c := range cands {
		callee := prog.Func(c)
		if callee == nil {
			return "", fmt.Errorf("candidate %q is not a function", c)
		}
		if len(callee.Params) != arity {
			return "", fmt.Errorf("candidate %q takes %d args, call passes %d", c, len(callee.Params), arity)
		}
		if needsValue && !callee.ReturnsValue {
			return "", fmt.Errorf("candidate %q returns no value but the call result is used", c)
		}
	}
	sig := fmt.Sprintf("%v/%d/%v", cands, arity, needsValue)
	if name, ok := dispatchFor[sig]; ok {
		return name, nil
	}
	*created++
	name := fmt.Sprintf("__dispatch_%d", *created)
	dispatchFor[sig] = name

	fd := &lang.FuncDecl{Name: name, ReturnsValue: needsValue}
	fd.Params = append(fd.Params, lang.Param{Name: "__p", IsFnPtr: true})
	var argNames []string
	for i := 0; i < arity; i++ {
		an := fmt.Sprintf("__a%d", i)
		fd.Params = append(fd.Params, lang.Param{Name: an})
		argNames = append(argNames, an)
	}
	fd.Body = &lang.Block{}
	if needsValue {
		fd.Body.Stmts = append(fd.Body.Stmts, &lang.DeclStmt{
			StmtBase: lang.StmtBase{ID: prog.NewID()}, Name: "__r",
		})
	}

	callTo := func(f string) lang.Stmt {
		c := &lang.CallStmt{StmtBase: lang.StmtBase{ID: prog.NewID()}, Callee: f}
		for _, an := range argNames {
			c.Args = append(c.Args, &lang.VarRef{Name: an})
		}
		if needsValue {
			c.Target = "__r"
		}
		return c
	}

	// Nested if (__p == f1) ... else if ... else { last }. The final
	// candidate sits in the bare else, mirroring the paper's example (and
	// its caveat about uninitialized pointers).
	var build func(rest []string) *lang.Block
	build = func(rest []string) *lang.Block {
		if len(rest) == 1 {
			return &lang.Block{Stmts: []lang.Stmt{callTo(rest[0])}}
		}
		ifs := &lang.IfStmt{
			StmtBase: lang.StmtBase{ID: prog.NewID()},
			Cond:     &lang.Binary{Op: "==", X: &lang.VarRef{Name: "__p"}, Y: &lang.FuncRef{Name: rest[0]}},
			Then:     &lang.Block{Stmts: []lang.Stmt{callTo(rest[0])}},
			Else:     build(rest[1:]),
		}
		return &lang.Block{Stmts: []lang.Stmt{ifs}}
	}
	dispatch := build(cands)
	fd.Body.Stmts = append(fd.Body.Stmts, dispatch.Stmts...)
	if needsValue {
		fd.Body.Stmts = append(fd.Body.Stmts, &lang.ReturnStmt{
			StmtBase: lang.StmtBase{ID: prog.NewID()},
			Value:    &lang.VarRef{Name: "__r"},
		})
	}
	prog.Funcs = append(prog.Funcs, fd)
	return name, nil
}
