package funcptr

import (
	"reflect"
	"strings"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

// fig15Src is the paper's Fig. 15 example.
const fig15Src = `
int f(int a, int b) {
  return a + b;
}

int g(int a, int b) {
  return a;
}

int main() {
  fnptr p;
  int x;
  int c;
  scanf("%d", &c);
  if (c > 0) { p = f; } else { p = &g; }
  x = p(1, 2);
  printf("%d", x);
  return 0;
}
`

func TestAnalyzeFig15(t *testing.T) {
	prog := lang.MustParse(fig15Src)
	pts := Analyze(prog)
	set := pts["main/p"]
	if !set["f"] || !set["g"] || len(set) != 2 {
		t.Errorf("pts(main/p) = %v, want {f, g}", set)
	}
}

func TestTransformFig15(t *testing.T) {
	prog := lang.MustParse(fig15Src)
	out, created, err := Transform(prog)
	if err != nil {
		t.Fatalf("Transform: %v", err)
	}
	if created != 1 {
		t.Errorf("dispatch procs = %d, want 1", created)
	}
	text := lang.Print(out)
	if !strings.Contains(text, "__dispatch_1(fnptr __p, int __a0, int __a1)") {
		t.Errorf("dispatch proc missing:\n%s", text)
	}
	// No indirect calls remain.
	for _, fn := range out.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				t.Errorf("indirect call survives at %s", c.Pos)
			}
		}
	}
	// Behavior preserved on both paths.
	for _, in := range []int64{1, -1} {
		r1, err := interp.Run(prog, interp.Options{Input: []int64{in}})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := interp.Run(out, interp.Options{Input: []int64{in}})
		if err != nil {
			t.Fatalf("transformed program fails: %v", err)
		}
		if !reflect.DeepEqual(r1.Output, r2.Output) {
			t.Errorf("input %d: outputs differ: %v vs %v", in, r1.Output, r2.Output)
		}
	}
	// The transformed program builds an SDG (no indirect calls).
	if _, err := sdg.Build(out); err != nil {
		t.Fatalf("SDG build: %v", err)
	}
}

// TestFig15EndToEndSpecialization reproduces §6.2: slicing the transformed
// program specializes the dispatch procedure; g's second parameter
// disappears in g's used variant.
func TestFig15EndToEndSpecialization(t *testing.T) {
	prog := lang.MustParse(fig15Src)
	tr, _, err := Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := sdg.MustBuild(tr)
	crit := core.PrintfCriterion(g, "main")
	var cfgs []core.Config
	for _, v := range crit {
		cfgs = append(cfgs, core.Config{Vertex: v})
	}
	res, err := core.Specialize(g, core.Configs(cfgs))
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	if err := core.CheckNoMismatches(res.R); err != nil {
		t.Errorf("mismatch: %v", err)
	}
	out, err := emit.Program(g, res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	text := lang.Print(out)
	// The dispatch procedure must be in the slice (the call is indirect).
	if !strings.Contains(text, "__dispatch_1") {
		t.Errorf("dispatch proc sliced away:\n%s", text)
	}
	// Behavior preserved.
	for _, in := range []int64{1, -1} {
		r1, _ := interp.Run(prog, interp.Options{Input: []int64{in}})
		r2, err := interp.Run(out, interp.Options{Input: []int64{in}})
		if err != nil {
			t.Fatalf("sliced program fails: %v\n%s", err, text)
		}
		if !reflect.DeepEqual(r1.Output, r2.Output) {
			t.Errorf("input %d: outputs differ: %v vs %v\n%s", in, r1.Output, r2.Output, text)
		}
	}
}

func TestTransformCopyPropagation(t *testing.T) {
	src := `
int f(int a) { return a * 2; }
int h(int a) { return a + 1; }
fnptr gp;
void set(fnptr q) { gp = q; }
int main() {
  fnptr lp;
  int x;
  lp = f;
  set(lp);
  set(h);
  x = gp(5);
  printf("%d", x);
  return 0;
}
`
	prog := lang.MustParse(src)
	pts := Analyze(prog)
	if !pts["gp"]["f"] || !pts["gp"]["h"] {
		t.Errorf("pts(gp) = %v, want {f, h} (through the set() copy chain)", pts["gp"])
	}
	out, created, err := Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	if created != 1 {
		t.Errorf("created = %d, want 1", created)
	}
	r1, _ := interp.Run(prog, interp.Options{})
	r2, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: %v vs %v", r1.Output, r2.Output)
	}
}

func TestTransformErrors(t *testing.T) {
	// Empty points-to set.
	src := `
int main() {
  fnptr p;
  p(1);
  return 0;
}
`
	if _, _, err := Transform(lang.MustParse(src)); err == nil || !strings.Contains(err.Error(), "points-to") {
		t.Errorf("want empty-points-to error, got %v", err)
	}
	// Arity mismatch between candidates and call.
	src2 := `
int f(int a, int b) { return a; }
int main() {
  fnptr p;
  int x;
  p = f;
  x = p(1);
  printf("%d", x);
  return 0;
}
`
	if _, _, err := Transform(lang.MustParse(src2)); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("want arity error, got %v", err)
	}
}

func TestTransformIdempotentOnDirectPrograms(t *testing.T) {
	src := `
int f(int a) { return a; }
int main() {
  int x;
  x = f(1);
  printf("%d", x);
  return 0;
}
`
	prog := lang.MustParse(src)
	out, created, err := Transform(prog)
	if err != nil {
		t.Fatal(err)
	}
	if created != 0 {
		t.Errorf("created = %d dispatch procs on a direct-call program", created)
	}
	if lang.Print(out) != lang.Print(prog) {
		t.Error("transform changed a program without indirect calls")
	}
}
