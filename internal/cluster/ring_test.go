package cluster

import (
	"fmt"
	"testing"
)

func syntheticFamilies(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Realistic family keys are hex SHA-256 strings; the exact shape
		// does not matter because Lookup hashes its input, but keep them
		// key-like and distinct.
		out[i] = fmt.Sprintf("family-%04d-abcdef", i)
	}
	return out
}

// TestRingDeterministicAndBalanced: family → shard assignment must be a
// pure function of the member set (two independently built rings agree on
// every family, regardless of registration order), and 1k synthetic
// families over 4 shards must spread within tolerance — no shard may hold
// under half or over double its fair share.
func TestRingDeterministicAndBalanced(t *testing.T) {
	members := []string{"w0", "w1", "w2", "w3"}
	a := NewRing(members)
	b := NewRing([]string{"w3", "w1", "w0", "w2", "w1"}) // shuffled + dup

	fams := syntheticFamilies(1000)
	counts := map[string]int{}
	for _, f := range fams {
		ga, oka := a.Lookup(f)
		gb, okb := b.Lookup(f)
		if !oka || !okb {
			t.Fatalf("lookup %q failed (ok %v/%v)", f, oka, okb)
		}
		if ga != gb {
			t.Fatalf("placement of %q differs across identical member sets: %q vs %q", f, ga, gb)
		}
		counts[ga]++
	}
	if len(counts) != len(members) {
		t.Fatalf("only %d of %d shards own families: %v", len(counts), len(members), counts)
	}
	mean := float64(len(fams)) / float64(len(members))
	for id, n := range counts {
		if float64(n) < 0.5*mean || float64(n) > 2.0*mean {
			t.Errorf("shard %s holds %d of %d families (mean %.0f) — outside [0.5, 2.0]x tolerance: %v",
				id, n, len(fams), mean, counts)
		}
	}
	t.Logf("distribution over %d families: %v", len(fams), counts)
}

// TestRingRebalanceStability is the consistent-hashing contract: removing
// one shard remaps exactly the families that lived on it — every other
// family keeps its assignment, and the orphans spread over the survivors.
func TestRingRebalanceStability(t *testing.T) {
	before := NewRing([]string{"w0", "w1", "w2", "w3"})
	after := NewRing([]string{"w0", "w1", "w3"}) // w2 left

	fams := syntheticFamilies(1000)
	remapped, orphanDest := 0, map[string]int{}
	for _, f := range fams {
		was, _ := before.Lookup(f)
		now, _ := after.Lookup(f)
		if was != "w2" {
			if now != was {
				t.Fatalf("family %q moved %q → %q although its shard did not leave", f, was, now)
			}
			continue
		}
		remapped++
		if now == "w2" {
			t.Fatalf("family %q still maps to the removed shard", f)
		}
		orphanDest[now]++
	}
	if remapped == 0 {
		t.Fatal("no family lived on the removed shard — the test proves nothing")
	}
	if len(orphanDest) < 2 {
		t.Errorf("all %d orphaned families landed on one survivor: %v", remapped, orphanDest)
	}
	t.Logf("%d orphans redistributed: %v", remapped, orphanDest)
}

// TestRingAdditionStability: the mirror property — adding a shard steals
// families only for the newcomer; nothing moves between old members.
func TestRingAdditionStability(t *testing.T) {
	before := NewRing([]string{"w0", "w1", "w2"})
	after := NewRing([]string{"w0", "w1", "w2", "w3"})
	stolen := 0
	for _, f := range syntheticFamilies(1000) {
		was, _ := before.Lookup(f)
		now, _ := after.Lookup(f)
		if now == "w3" {
			stolen++
			continue
		}
		if now != was {
			t.Fatalf("family %q moved %q → %q on an unrelated join", f, was, now)
		}
	}
	if stolen == 0 {
		t.Fatal("new shard stole nothing")
	}
	t.Logf("new shard took %d of 1000 families", stolen)
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if _, ok := r.Lookup("anything"); ok {
		t.Error("empty ring claimed an owner")
	}
	if got := len(r.Members()); got != 0 {
		t.Errorf("empty ring has %d members", got)
	}
}
