package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"specslice"
	"specslice/internal/server"
)

// Config tunes the router. Zero values take the documented defaults.
type Config struct {
	// MaxProgramBytes and MaxCriteria size the request envelope exactly
	// like server.Config (defaults 1 MiB / 256) — the router rejects what
	// a worker would reject, without spending a forward on it.
	MaxProgramBytes int64
	MaxCriteria     int
	// TenantRatePerSec and TenantBurst configure per-tenant token-bucket
	// admission (tenant = X-Tenant header, "default" when absent). A zero
	// or negative rate disables tenant limiting. Burst defaults to
	// max(1, ceil(rate)).
	TenantRatePerSec float64
	TenantBurst      int
	// ShardMaxInFlight sheds requests routed to a shard already carrying
	// this many in-flight forwards (default 128; negative disables).
	ShardMaxInFlight int64
	// ShardHotBytes sheds requests routed to a shard whose engine-cache
	// byte size (as of its last probe) is at or past this budget
	// (0 disables). Shedding at the router keeps a hot shard's eviction
	// storm from stalling every family it owns.
	ShardHotBytes int64
	// ProbeInterval is the health-check period (default 500ms);
	// ProbeTimeout bounds one probe (default 2s). FailThreshold
	// consecutive probe failures mark a worker down (default 2); one
	// success marks it back up. Both transitions rebalance the ring.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailThreshold int
	// Client overrides the forwarding HTTP client (tests); nil builds one.
	Client *http.Client
	// Now overrides the admission clock (tests).
	Now func() time.Time
	// Logf receives membership and drain events; nil means log.Printf.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.MaxProgramBytes == 0 {
		c.MaxProgramBytes = 1 << 20
	}
	if c.MaxCriteria == 0 {
		c.MaxCriteria = 256
	}
	if c.ShardMaxInFlight == 0 {
		c.ShardMaxInFlight = 128
	}
	if c.TenantBurst == 0 {
		c.TenantBurst = int(math.Max(1, math.Ceil(c.TenantRatePerSec)))
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.FailThreshold == 0 {
		c.FailThreshold = 2
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	return c
}

// workerState is the router's view of one worker.
type workerState struct {
	id       string
	url      string
	healthy  bool
	draining bool
	fails    int

	inFlight atomic.Int64 // forwards currently executing against this worker
	routed   atomic.Int64 // forwards ever sent to this worker
	shed     atomic.Int64 // requests shed because this shard ran hot

	// hotBytes is the worker's engine-cache byte size as of its last
	// probe, read by the hot-shard shed check.
	hotBytes atomic.Int64
}

// flight is the router-level singleflight cell for one ContentKey whose
// first build is believed to be in flight somewhere in the cluster.
type flight struct {
	done chan struct{}
}

// Router consistent-hashes slice requests across slicing workers by
// program family and fronts them with admission control. It serves the
// same HTTP surface as one worker (POST /v1/slice, GET /v1/stats,
// GET /healthz), so clients — including internal/loadgen — cannot tell a
// router from a single process except by the extra stats blocks.
type Router struct {
	cfg    Config
	client *http.Client
	mux    *http.ServeMux
	admit  *admitter
	start  time.Time

	mu      sync.Mutex
	workers map[string]*workerState
	order   []string // registration order, for stable stats listing
	ring    *Ring
	epoch   int64
	// building/warm implement cross-node singleflight: the first request
	// for a ContentKey the router has not yet seen complete becomes the
	// flight leader; concurrent requests for the same key wait for the
	// leader instead of racing duplicate builds onto the shard. Keys the
	// router has seen complete (warm, per epoch) skip the gate entirely,
	// so hot-path reads are never serialized.
	building map[string]*flight
	warm     map[string]int64 // ContentKey -> epoch it completed under

	rebalances int64
	tenantShed int64
	dedupWaits int64
	retries    int64
}

// NewRouter returns a router with no workers; AddWorker registers them.
func NewRouter(cfg Config) *Router {
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:      cfg,
		client:   cfg.Client,
		mux:      http.NewServeMux(),
		admit:    newAdmitter(cfg.TenantRatePerSec, cfg.TenantBurst, cfg.Now),
		start:    time.Now(),
		workers:  map[string]*workerState{},
		ring:     NewRing(nil),
		building: map[string]*flight{},
		warm:     map[string]int64{},
	}
	if rt.client == nil {
		// ResponseHeaderTimeout bounds how long a wedged worker — one that
		// accepted the forward but never answers — can hold the leader and
		// its singleflight waiters. It must comfortably exceed the slowest
		// legitimate build; the generous bound exists to fail the forward
		// eventually, not to police latency (shedding does that).
		rt.client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost:   256,
			ResponseHeaderTimeout: 2 * time.Minute,
		}}
	}
	rt.mux.HandleFunc("POST /v1/slice", rt.handleSlice)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return rt
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// AddWorker registers a worker and rebalances the ring to include it. The
// worker is assumed healthy until a probe or forward says otherwise.
func (rt *Router) AddWorker(id, url string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.workers[id]; ok {
		return
	}
	rt.workers[id] = &workerState{id: id, url: url, healthy: true}
	rt.order = append(rt.order, id)
	rt.rebuildRingLocked()
	rt.cfg.Logf("cluster: worker %s joined at %s (%d members)", id, url, len(rt.ring.ids))
}

// DrainWorker removes a worker from the ring (no new requests route to
// it; its families deterministically remap to the remaining members) and
// waits up to timeout for the forwards already in flight on it to finish.
// The worker process itself is still running when DrainWorker returns —
// the caller owns stopping it, knowing its in-flight work was forwarded
// to completion first.
func (rt *Router) DrainWorker(id string, timeout time.Duration) error {
	rt.mu.Lock()
	ws, ok := rt.workers[id]
	if !ok {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: no worker %q", id)
	}
	if !ws.draining {
		ws.draining = true
		rt.rebuildRingLocked()
		rt.cfg.Logf("cluster: worker %s draining (%d members left)", id, len(rt.ring.ids))
	}
	rt.mu.Unlock()

	deadline := time.Now().Add(timeout)
	for ws.inFlight.Load() > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: worker %q still has %d in-flight after %v", id, ws.inFlight.Load(), timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// RemoveWorker forgets a worker entirely. Callers wanting a graceful exit
// call DrainWorker first.
func (rt *Router) RemoveWorker(id string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.workers[id]; !ok {
		return
	}
	delete(rt.workers, id)
	for i, o := range rt.order {
		if o == id {
			rt.order = append(rt.order[:i], rt.order[i+1:]...)
			break
		}
	}
	rt.rebuildRingLocked()
}

// rebuildRingLocked recomputes the ring over healthy, non-draining
// members and advances the epoch. Epoch changes invalidate the warm-key
// set: a remapped family's keys are cold on their new shard, and
// re-entering the singleflight gate once per key is the cheap, correct
// way to rediscover that.
func (rt *Router) rebuildRingLocked() {
	var ids []string
	for id, ws := range rt.workers {
		if ws.healthy && !ws.draining {
			ids = append(ids, id)
		}
	}
	rt.ring = NewRing(ids)
	rt.epoch++
	rt.rebalances++
	rt.warm = map[string]int64{}
}

// Ring returns the current ring (tests assert placement directly).
func (rt *Router) Ring() *Ring {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.ring
}

// markWorkerDown records a hard forward failure: the worker is marked
// unhealthy immediately (no probe round-trips while requests are failing)
// and the ring rebalances its families away.
func (rt *Router) markWorkerDown(id string, err error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ws, ok := rt.workers[id]
	if !ok || !ws.healthy {
		return
	}
	ws.healthy = false
	ws.fails = rt.cfg.FailThreshold
	rt.rebuildRingLocked()
	rt.cfg.Logf("cluster: worker %s down (%v), rebalanced to %d members", id, err, len(rt.ring.ids))
}

// Start runs the health-probe loop until ctx is cancelled.
func (rt *Router) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.ProbeOnce(ctx)
			}
		}
	}()
}

// ProbeOnce health-checks every worker once: a GET /v1/stats inside
// ProbeTimeout must return 200. Success resets the failure count, marks a
// down worker back up (rebalancing), and refreshes the worker's cache
// byte size for the hot-shard shed check; FailThreshold consecutive
// failures mark it down (rebalancing).
func (rt *Router) ProbeOnce(ctx context.Context) {
	rt.mu.Lock()
	snapshot := make([]*workerState, 0, len(rt.workers))
	for _, id := range rt.order {
		snapshot = append(snapshot, rt.workers[id])
	}
	rt.mu.Unlock()

	for _, ws := range snapshot {
		st, err := rt.fetchWorkerStats(ctx, ws)
		rt.mu.Lock()
		if _, still := rt.workers[ws.id]; !still {
			rt.mu.Unlock()
			continue
		}
		if err != nil {
			ws.fails++
			if ws.healthy && ws.fails >= rt.cfg.FailThreshold {
				ws.healthy = false
				rt.rebuildRingLocked()
				rt.cfg.Logf("cluster: worker %s failed %d probes (%v), rebalanced to %d members",
					ws.id, ws.fails, err, len(rt.ring.ids))
			}
		} else {
			ws.fails = 0
			ws.hotBytes.Store(st.Cache.Bytes)
			if !ws.healthy {
				ws.healthy = true
				rt.rebuildRingLocked()
				rt.cfg.Logf("cluster: worker %s recovered, rebalanced to %d members", ws.id, len(rt.ring.ids))
			}
		}
		rt.mu.Unlock()
	}
}

func (rt *Router) fetchWorkerStats(ctx context.Context, ws *workerState) (*server.StatsResponse, error) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ws.url+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

type errorResponse struct {
	Error string `json:"error"`
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeShed answers a load-shed decision: 429 with a Retry-After hint in
// whole seconds (minimum 1 — sub-second hints round up rather than
// inviting an immediate retry storm).
func (rt *Router) writeShed(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	secs := int64(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	rt.writeError(w, http.StatusTooManyRequests, format, args...)
}

// maxCriterionWireBytes mirrors the worker's per-criterion envelope
// allowance (see internal/server).
const maxCriterionWireBytes = 4096

func (rt *Router) handleSlice(w http.ResponseWriter, r *http.Request) {
	// Per-tenant admission runs before any parsing: a tenant past its
	// rate gets a cheap 429, not a free parse of a 1 MiB program.
	if ok, retry := rt.admit.admit(r.Header.Get("X-Tenant")); !ok {
		rt.mu.Lock()
		rt.tenantShed++
		rt.mu.Unlock()
		rt.writeShed(w, retry, "tenant over rate limit")
		return
	}

	r.Body = http.MaxBytesReader(w, r.Body, 2*rt.cfg.MaxProgramBytes+int64(rt.cfg.MaxCriteria)*maxCriterionWireBytes+1<<16)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			rt.writeError(w, http.StatusRequestEntityTooLarge, "request exceeds %d bytes", tooLarge.Limit)
			return
		}
		rt.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req server.SliceRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Program == "" {
		rt.writeError(w, http.StatusBadRequest, "program is required")
		return
	}
	if int64(len(req.Program)) > rt.cfg.MaxProgramBytes {
		rt.writeError(w, http.StatusBadRequest, "program is %d bytes, limit %d", len(req.Program), rt.cfg.MaxProgramBytes)
		return
	}
	if len(req.Criteria) > rt.cfg.MaxCriteria {
		rt.writeError(w, http.StatusBadRequest, "%d criteria, limit %d", len(req.Criteria), rt.cfg.MaxCriteria)
		return
	}

	// The router parses only to compute the routing keys; the worker
	// re-validates and analyzes. Routing by FamilyKey — not ContentKey —
	// is what keeps version chains shard-local: every version of an
	// evolving program hashes to the same shard, so Advance always finds
	// its cached ancestor there.
	prog, err := specslice.Parse(req.Program)
	if err != nil {
		rt.writeError(w, http.StatusUnprocessableEntity, "program does not parse: %v", err)
		return
	}
	key := server.ContentKey(prog.Source())
	family := server.FamilyKey(prog.ProcNames())

	// Forward, retrying across membership changes: a dead worker is
	// marked down on its first hard failure and the family re-routes to
	// the rebalanced ring — a kill mid-run costs the client latency, not
	// an error.
	waited := false
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		rt.mu.Lock()
		id, ok := rt.ring.Lookup(family)
		if !ok {
			rt.mu.Unlock()
			rt.writeError(w, http.StatusServiceUnavailable, "no healthy workers")
			return
		}
		ws := rt.workers[id]
		epoch := rt.epoch
		rt.mu.Unlock()

		// Shard-level shedding: depth and byte-budget pressure answer
		// 429 before the forward adds to the pile.
		if rt.cfg.ShardMaxInFlight > 0 && ws.inFlight.Load() >= rt.cfg.ShardMaxInFlight {
			ws.shed.Add(1)
			rt.writeShed(w, time.Second, "shard %s over in-flight depth %d", id, rt.cfg.ShardMaxInFlight)
			return
		}
		if rt.cfg.ShardHotBytes > 0 && ws.hotBytes.Load() >= rt.cfg.ShardHotBytes {
			ws.shed.Add(1)
			rt.writeShed(w, time.Second, "shard %s cache over byte budget", id)
			return
		}

		// Cross-node singleflight: the first request for a key not yet
		// seen warm leads; concurrent requests for the same key wait for
		// the leader and then forward to a now-warm shard.
		var leading *flight
		if !waited {
			rt.mu.Lock()
			if rt.warm[key] != rt.epoch {
				if fl, inFlight := rt.building[key]; inFlight {
					rt.dedupWaits++
					rt.mu.Unlock()
					select {
					case <-fl.done:
					case <-r.Context().Done():
						// The client gave up while queued behind the
						// leader; nothing to answer and nothing to charge
						// against the worker.
						return
					}
					waited = true
					continue // re-pick: membership may have changed while waiting
				}
				leading = &flight{done: make(chan struct{})}
				rt.building[key] = leading
			}
			rt.mu.Unlock()
		}

		status, hdr, respBody, err := rt.forward(r.Context(), ws, body)
		if leading != nil {
			rt.mu.Lock()
			delete(rt.building, key)
			if err == nil && status == http.StatusOK {
				rt.warm[key] = epoch
				// The warm set is an optimization with bounded value and
				// must have bounded size; past 64k keys, forget and let
				// keys re-prove themselves through the gate.
				if len(rt.warm) > 64<<10 {
					rt.warm = map[string]int64{}
				}
			}
			rt.mu.Unlock()
			close(leading.done)
		}
		if err != nil {
			// A forward that failed because the *client* went away — its
			// context cancelled on disconnect or expired on deadline — says
			// nothing about the worker's health. Demoting here would let one
			// aborted request (retried against a context that fails
			// instantly) mark healthy workers down and empty the ring.
			if r.Context().Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return
			}
			lastErr = err
			rt.markWorkerDown(id, err)
			rt.mu.Lock()
			rt.retries++
			rt.mu.Unlock()
			continue
		}
		for _, k := range []string{"Content-Type", "Retry-After"} {
			if v := hdr.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.WriteHeader(status)
		w.Write(respBody)
		return
	}
	rt.writeError(w, http.StatusBadGateway, "no shard reachable for family: %v", lastErr)
}

// forward posts the request body to the worker's slice endpoint and
// returns the full response. The body is buffered so the router can
// account in-flight depth over the worker's whole service time and retry
// a failed forward on another shard.
func (rt *Router) forward(ctx context.Context, ws *workerState, body []byte) (int, http.Header, []byte, error) {
	ws.inFlight.Add(1)
	defer ws.inFlight.Add(-1)
	ws.routed.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ws.url+"/v1/slice", bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	healthy := len(rt.ring.ids)
	rt.mu.Unlock()
	if healthy == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// ShardStats is one worker's row in the router's shards stats block.
type ShardStats struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining"`
	// Routed counts forwards ever sent to this shard; InFlight is the
	// current depth; Shed counts requests 429'd because this shard ran
	// hot (depth or byte budget).
	Routed   int64 `json:"routed"`
	InFlight int64 `json:"in_flight"`
	Shed     int64 `json:"shed"`
	// Hits, Builds, Bytes, and Entries are the worker's own engine-cache
	// counters, fetched live; zero for an unreachable worker.
	Hits    int64 `json:"hits"`
	Builds  int64 `json:"builds"`
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
}

// RouterStats is the router's own counters block.
type RouterStats struct {
	Epoch          int64 `json:"epoch"`
	Rebalances     int64 `json:"rebalances"`
	Workers        int   `json:"workers"`
	HealthyWorkers int   `json:"healthy_workers"`
	// TenantShed counts 429s from per-tenant token buckets; ShardShed
	// sums the per-shard hot-shed counters; DedupWaits counts requests
	// that waited on the cross-node singleflight gate; Retries counts
	// forwards re-routed after a worker failure.
	TenantShed int64 `json:"tenant_shed"`
	ShardShed  int64 `json:"shard_shed"`
	DedupWaits int64 `json:"dedup_waits"`
	Retries    int64 `json:"retries"`
}

// StatsResponse is the router's GET /v1/stats body: a cluster-wide
// aggregate shaped exactly like one worker's stats (so clients like
// internal/loadgen can read either), plus router and per-shard blocks.
type StatsResponse struct {
	server.StatsResponse
	Router RouterStats  `json:"router"`
	Shards []ShardStats `json:"shards"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	// healthy and draining are plain fields written under rt.mu by probes,
	// forward failures, and drains — copy them into the snapshot while
	// still holding the lock. The atomics on workerState and the immutable
	// id/url are safe to read after release.
	type shardSnap struct {
		ws       *workerState
		healthy  bool
		draining bool
	}
	rt.mu.Lock()
	snapshot := make([]shardSnap, 0, len(rt.order))
	for _, id := range rt.order {
		ws := rt.workers[id]
		snapshot = append(snapshot, shardSnap{ws: ws, healthy: ws.healthy, draining: ws.draining})
	}
	resp := StatsResponse{
		Router: RouterStats{
			Epoch:      rt.epoch,
			Rebalances: rt.rebalances,
			Workers:    len(rt.workers),
			TenantShed: rt.tenantShed,
			DedupWaits: rt.dedupWaits,
			Retries:    rt.retries,
		},
	}
	rt.mu.Unlock()

	resp.UptimeNS = int64(time.Since(rt.start))
	for _, sn := range snapshot {
		ws := sn.ws
		row := ShardStats{
			ID:       ws.id,
			URL:      ws.url,
			Healthy:  sn.healthy,
			Draining: sn.draining,
			Routed:   ws.routed.Load(),
			InFlight: ws.inFlight.Load(),
			Shed:     ws.shed.Load(),
		}
		resp.Router.ShardShed += row.Shed
		if sn.healthy {
			resp.Router.HealthyWorkers++
			if st, err := rt.fetchWorkerStats(r.Context(), ws); err == nil {
				row.Hits = st.Cache.Hits
				row.Builds = st.Cache.Builds
				row.Bytes = st.Cache.Bytes
				row.Entries = st.Cache.Entries
				ws.hotBytes.Store(st.Cache.Bytes)
				// Aggregate the worker into the cluster-wide view.
				resp.Batches += st.Batches
				resp.Requests += st.Requests
				resp.Failed += st.Failed
				resp.BuildsTimed += st.BuildsTimed
				resp.ResponseEncodeErrors += st.ResponseEncodeErrors
				resp.Phases.Add(st.Phases)
				resp.Build.Add(st.Build)
				c := &resp.Cache
				c.Hits += st.Cache.Hits
				c.Misses += st.Cache.Misses
				c.Deduped += st.Cache.Deduped
				c.Builds += st.Cache.Builds
				c.Advances += st.Cache.Advances
				c.ColdBuilds += st.Cache.ColdBuilds
				c.DiskHits += st.Cache.DiskHits
				c.BuildErrors += st.Cache.BuildErrors
				c.Evictions += st.Cache.Evictions
				c.InFlight += st.Cache.InFlight
				c.Entries += st.Cache.Entries
				c.Bytes += st.Cache.Bytes
			}
		}
		resp.Shards = append(resp.Shards, row)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}
