package cluster

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// Proc is one spawned `specslice serve` worker subprocess.
type Proc struct {
	ID   string
	Addr string // bound host:port, discovered from the worker's log line
	Cmd  *exec.Cmd
}

// URL returns the worker's base URL.
func (p *Proc) URL() string { return "http://" + p.Addr }

// Stop sends SIGTERM (the worker drains in-flight requests and closes
// its store cleanly) and waits up to timeout before escalating to
// SIGKILL.
func (p *Proc) Stop(timeout time.Duration) error {
	if p.Cmd.Process == nil {
		return nil
	}
	p.Cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- p.Cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		p.Cmd.Process.Kill()
		return fmt.Errorf("cluster: worker %s did not drain in %v, killed", p.ID, timeout)
	}
}

// SpawnWorkers starts n `specslice serve` subprocesses of the given
// binary on ephemeral loopback ports; argsFor(i) supplies worker i's
// extra flags (cache budgets, a per-worker store directory). Each
// worker's bound port is discovered from its "listening on" log line;
// the rest of its stderr is relayed to ours with an id prefix. On any
// failure the already-started workers are stopped.
func SpawnWorkers(bin string, n int, argsFor func(i int) []string) ([]*Proc, error) {
	var procs []*Proc
	fail := func(err error) ([]*Proc, error) {
		for _, p := range procs {
			p.Stop(5 * time.Second)
		}
		return nil, err
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("w%d", i)
		args := []string{"serve", "-addr", "127.0.0.1:0"}
		if argsFor != nil {
			args = append(args, argsFor(i)...)
		}
		cmd := exec.Command(bin, args...)
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return fail(err)
		}
		cmd.Stdout = os.Stdout
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("cluster: start worker %s: %w", id, err))
		}
		p := &Proc{ID: id, Cmd: cmd}
		procs = append(procs, p)

		// The serve command logs the resolved address ("listening on
		// 127.0.0.1:PORT") exactly so supervisors like this one can bind
		// :0 and still find the port.
		sc := bufio.NewScanner(stderr)
		addrCh := make(chan string, 1)
		go func() {
			for sc.Scan() {
				line := sc.Text()
				if idx := strings.Index(line, "listening on "); idx >= 0 {
					rest := line[idx+len("listening on "):]
					if sp := strings.IndexByte(rest, ' '); sp >= 0 {
						rest = rest[:sp]
					}
					select {
					case addrCh <- rest:
					default:
					}
				}
				fmt.Fprintf(os.Stderr, "[%s] %s\n", id, line)
			}
		}()
		select {
		case addr := <-addrCh:
			p.Addr = addr
		case <-time.After(15 * time.Second):
			return fail(fmt.Errorf("cluster: worker %s never reported its address", id))
		}
	}
	return procs, nil
}
