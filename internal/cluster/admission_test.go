package cluster

import (
	"fmt"
	"testing"
	"time"
)

// TestAdmitterBoundedBuckets: the tenant name is client-controlled, so a
// flood of distinct names must not grow the bucket map without bound —
// past the cap, active buckets stay, new tenants charge the shared
// default bucket, and idle buckets are evicted once they have fully
// refilled (at which point they are indistinguishable from fresh ones).
func TestAdmitterBoundedBuckets(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	// burst/rate = 100ms: a bucket idle that long has fully refilled.
	a := newAdmitter(100, 10, clock)

	if ok, _ := a.admit(""); !ok {
		t.Fatal("default tenant rejected on first request")
	}
	for i := 0; i < maxTenantBuckets+64; i++ {
		a.admit(fmt.Sprintf("tenant-%d", i))
	}
	if n := len(a.buckets); n != maxTenantBuckets {
		t.Fatalf("bucket map holds %d entries after a random-tenant flood, want cap %d", n, maxTenantBuckets)
	}

	// Every bucket is active (the clock is frozen), so overflow tenants
	// must be charging the shared default bucket: drain it and a
	// never-seen tenant gets rejected without allocating.
	for i := 0; i < 20; i++ {
		a.admit("")
	}
	before := len(a.buckets)
	if ok, retry := a.admit("never-seen"); ok || retry <= 0 {
		t.Errorf("overflow tenant admitted (ok=%v retry=%v) despite drained default bucket", ok, retry)
	}
	if len(a.buckets) != before {
		t.Errorf("overflow tenant allocated a bucket: %d -> %d entries", before, len(a.buckets))
	}

	// After the refill window passes, the idle buckets are evictable and a
	// new tenant gets its own bucket again.
	now = now.Add(200 * time.Millisecond)
	if ok, _ := a.admit("fresh-after-idle"); !ok {
		t.Error("new tenant rejected after idle buckets became evictable")
	}
	if n := len(a.buckets); n >= maxTenantBuckets {
		t.Errorf("idle buckets not pruned: %d entries remain", n)
	}
}
