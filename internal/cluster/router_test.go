package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"specslice/internal/server"
)

// testProgram returns a small MicroC program whose procedure set (and
// thus FamilyKey) is determined by proc and whose content varies with
// version — two versions of one proc name are an edit within a family.
func testProgram(proc string, version int) string {
	return fmt.Sprintf(`
int g;

void %s(int a, int b) {
  g = a + b + %d;
}

int main() {
  %s(1, 2);
  %s(g, 3);
  printf("%%d", g);
  return 0;
}
`, proc, version, proc, proc)
}

func startLocal(t *testing.T, n int, scfg server.Config, rcfg Config) *Local {
	t.Helper()
	lc, err := StartLocal(n, scfg, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	return lc
}

func postSlice(t *testing.T, baseURL, program string, criteria []server.CriterionRequest, tenant string) (int, []byte) {
	t.Helper()
	if criteria == nil {
		criteria = []server.CriterionRequest{{Kind: "printf"}}
	}
	body, err := json.Marshal(server.SliceRequest{Program: program, Criteria: criteria})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/slice", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func routerStats(t *testing.T, baseURL string) StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRouterFamilyAffinityAdvances: routing by FamilyKey keeps version
// chains shard-local — an edited version of a cached program must land on
// the shard holding its ancestor and be served by Engine.Advance, not a
// cold build.
func TestRouterFamilyAffinityAdvances(t *testing.T) {
	lc := startLocal(t, 3, server.Config{}, Config{})

	status, body := postSlice(t, lc.URL(), testProgram("affine", 1), nil, "")
	if status != http.StatusOK {
		t.Fatalf("v1 status %d: %s", status, body)
	}
	var v1 server.SliceResponse
	json.Unmarshal(body, &v1)
	if v1.Advanced || v1.CacheHit {
		t.Fatalf("first version should cold-build: %+v", v1)
	}

	status, body = postSlice(t, lc.URL(), testProgram("affine", 2), nil, "")
	if status != http.StatusOK {
		t.Fatalf("v2 status %d: %s", status, body)
	}
	var v2 server.SliceResponse
	json.Unmarshal(body, &v2)
	if !v2.Advanced {
		t.Errorf("edited version was not served by a version-chain advance: %s", body)
	}
	if v2.ProgramKey == v1.ProgramKey {
		t.Error("edit did not change the program key")
	}

	st := routerStats(t, lc.URL())
	if st.Cache.Advances != 1 || st.Cache.ColdBuilds != 1 {
		t.Errorf("cluster cache: advances=%d cold=%d, want 1/1", st.Cache.Advances, st.Cache.ColdBuilds)
	}
}

// TestRoutedResponsesByteIdentical: for the same (program, criteria)
// pairs, the routed path must produce exactly the results the
// single-process path produces — sharding may move work, never change it.
func TestRoutedResponsesByteIdentical(t *testing.T) {
	direct, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(direct.Handler())
	defer func() { ts.Close(); direct.Close() }()
	lc := startLocal(t, 3, server.Config{}, Config{})

	criteria := []server.CriterionRequest{
		{Kind: "printf"},
		{Kind: "printf", Proc: "main"},
		{Kind: "printf", Mode: "mono"},
	}
	for i := 0; i < 5; i++ {
		prog := testProgram(fmt.Sprintf("ident%d", i), i)
		ds, dbody := postSlice(t, ts.URL, prog, criteria, "")
		rs, rbody := postSlice(t, lc.URL(), prog, criteria, "")
		if ds != http.StatusOK || rs != http.StatusOK {
			t.Fatalf("program %d: direct %d routed %d", i, ds, rs)
		}
		var dresp, rresp server.SliceResponse
		if err := json.Unmarshal(dbody, &dresp); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rbody, &rresp); err != nil {
			t.Fatal(err)
		}
		if dresp.ProgramKey != rresp.ProgramKey {
			t.Errorf("program %d: key %s direct vs %s routed", i, dresp.ProgramKey, rresp.ProgramKey)
		}
		// DurationNS is wall-clock measurement, not slice content; the
		// identity contract covers everything else.
		for j := range dresp.Results {
			dresp.Results[j].DurationNS = 0
		}
		for j := range rresp.Results {
			rresp.Results[j].DurationNS = 0
		}
		if !reflect.DeepEqual(dresp.Results, rresp.Results) {
			t.Errorf("program %d: routed results differ from direct:\n direct: %+v\n routed: %+v",
				i, dresp.Results, rresp.Results)
		}
		// Byte-level check on the results array, not just structural.
		db, _ := json.Marshal(dresp.Results)
		rb, _ := json.Marshal(rresp.Results)
		if !bytes.Equal(db, rb) {
			t.Errorf("program %d: results not byte-identical", i)
		}
	}
}

// TestRouterSingleflight: concurrent cold requests for one ContentKey
// must cost the cluster exactly one cold build — followers wait at the
// router's flight gate and then hit the now-warm shard.
func TestRouterSingleflight(t *testing.T) {
	lc := startLocal(t, 2, server.Config{}, Config{})
	prog := testProgram("flight", 7)

	const n = 8
	var wg sync.WaitGroup
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], _ = postSlice(t, lc.URL(), prog, nil, "")
		}(i)
	}
	wg.Wait()
	for i, s := range statuses {
		if s != http.StatusOK {
			t.Fatalf("request %d: status %d", i, s)
		}
	}
	st := routerStats(t, lc.URL())
	if st.Cache.ColdBuilds != 1 {
		t.Errorf("%d cold builds across the cluster for one key, want 1", st.Cache.ColdBuilds)
	}
	if st.Router.DedupWaits == 0 {
		t.Error("no requests waited at the router singleflight gate")
	}
}

// TestRouterTenantAdmission: the per-tenant token bucket sheds the
// over-rate tenant with 429 + Retry-After while other tenants sail
// through.
func TestRouterTenantAdmission(t *testing.T) {
	now := time.Now()
	lc := startLocal(t, 1, server.Config{}, Config{
		TenantRatePerSec: 1,
		TenantBurst:      1,
		Now:              func() time.Time { return now }, // frozen: no refill
	})
	prog := testProgram("tenant", 1)

	if status, body := postSlice(t, lc.URL(), prog, nil, "alice"); status != http.StatusOK {
		t.Fatalf("alice #1: status %d: %s", status, body)
	}
	req, _ := http.NewRequest(http.MethodPost, lc.URL()+"/v1/slice", bytes.NewReader(mustSliceBody(t, prog)))
	req.Header.Set("X-Tenant", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice #2: status %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if status, _ := postSlice(t, lc.URL(), prog, nil, "bob"); status != http.StatusOK {
		t.Errorf("bob blocked by alice's bucket: status %d", status)
	}
	if st := routerStats(t, lc.URL()); st.Router.TenantShed != 1 {
		t.Errorf("tenant_shed = %d, want 1", st.Router.TenantShed)
	}
}

func mustSliceBody(t *testing.T, program string) []byte {
	t.Helper()
	body, err := json.Marshal(server.SliceRequest{
		Program:  program,
		Criteria: []server.CriterionRequest{{Kind: "printf"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// blockingWorker is a fake worker whose slice endpoint parks until
// released — the deterministic way to hold a shard's in-flight depth up.
type blockingWorker struct {
	ts      *httptest.Server
	arrived chan struct{}
	release chan struct{}
}

func newBlockingWorker() *blockingWorker {
	bw := &blockingWorker{
		arrived: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/slice", func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		bw.arrived <- struct{}{}
		<-bw.release
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"program_key":"fake","results":[],"stats":{}}`)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"uptime_ns":1,"cache":{},"batches":0,"requests":0,"failed":0,"phases":{},"build":{},"builds_timed":0,"response_encode_errors":0}`)
	})
	bw.ts = httptest.NewServer(mux)
	return bw
}

// TestRouterShardDepthShed: a shard at its in-flight depth limit sheds
// further arrivals with 429 instead of queueing behind the stall.
func TestRouterShardDepthShed(t *testing.T) {
	bw := newBlockingWorker()
	defer bw.ts.Close()
	defer close(bw.release)

	rt := NewRouter(Config{ShardMaxInFlight: 1})
	rt.AddWorker("w0", bw.ts.URL)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/slice", "application/json",
			bytes.NewReader(mustSliceBody(t, testProgram("deep", 1))))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-bw.arrived // the worker is now holding the only in-flight slot

	// A different program (different key, same single shard): must shed.
	resp, err := http.Post(ts.URL+"/v1/slice", "application/json",
		bytes.NewReader(mustSliceBody(t, testProgram("deep2", 1))))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	bw.release <- struct{}{}
	if s := <-firstDone; s != http.StatusOK {
		t.Fatalf("first request status %d", s)
	}
	st := routerStats(t, ts.URL)
	if st.Router.ShardShed != 1 || st.Shards[0].Shed != 1 {
		t.Errorf("shard shed counters = %d/%d, want 1/1", st.Router.ShardShed, st.Shards[0].Shed)
	}
}

// TestRouterDrainForwardsInFlight: draining a worker stops routing new
// requests to it but waits for its in-flight forwards to complete before
// returning — the graceful-exit contract.
func TestRouterDrainForwardsInFlight(t *testing.T) {
	bw := newBlockingWorker()
	defer bw.ts.Close()
	healthy := newBlockingWorker()
	defer healthy.ts.Close()
	close(healthy.release) // never blocks

	rt := NewRouter(Config{})
	rt.AddWorker("w0", bw.ts.URL)
	rt.AddWorker("w1", healthy.ts.URL)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	// Find a program that routes to w0 so the drain has work to wait on.
	var w0prog string
	for i := 0; ; i++ {
		prog := testProgram(fmt.Sprintf("drain%d", i), 1)
		go http.Post(ts.URL+"/v1/slice", "application/json", bytes.NewReader(mustSliceBody(t, prog)))
		select {
		case <-bw.arrived:
			w0prog = prog
		case <-healthy.arrived:
			continue
		case <-time.After(5 * time.Second):
			t.Fatal("no worker received the probe request")
		}
		break
	}
	_ = w0prog

	drained := make(chan error, 1)
	go func() { drained <- rt.DrainWorker("w0", 10*time.Second) }()
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) while a forward was still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// While draining, new requests — any family — must avoid w0.
	for i := 0; i < 5; i++ {
		status, body := postSliceFake(t, ts.URL, testProgram(fmt.Sprintf("newfam%d", i), 1))
		if status != http.StatusOK {
			t.Fatalf("request during drain: status %d: %s", status, body)
		}
		select {
		case <-healthy.arrived:
		case <-time.After(5 * time.Second):
			t.Fatal("request during drain did not reach the healthy worker")
		}
	}

	bw.release <- struct{}{}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := routerStats(t, ts.URL)
	for _, sh := range st.Shards {
		if sh.ID == "w0" && (!sh.Draining || sh.InFlight != 0) {
			t.Errorf("w0 after drain: draining=%v in_flight=%d", sh.Draining, sh.InFlight)
		}
	}
}

// postSliceFake posts to a router backed by fake workers (whose bodies
// are canned, not real slice responses).
func postSliceFake(t *testing.T, baseURL, program string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/slice", "application/json", bytes.NewReader(mustSliceBody(t, program)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestRouterKillWorkerRebalance: killing a worker mid-run must not fail
// requests — the first hard forward failure marks it down, rebalances its
// families to the survivors, and retries.
func TestRouterKillWorkerRebalance(t *testing.T) {
	lc := startLocal(t, 3, server.Config{}, Config{})

	const families = 6
	progs := make([]string, families)
	for i := range progs {
		progs[i] = testProgram(fmt.Sprintf("kill%d", i), 1)
		if status, body := postSlice(t, lc.URL(), progs[i], nil, ""); status != http.StatusOK {
			t.Fatalf("warmup %d: status %d: %s", i, status, body)
		}
	}
	st := routerStats(t, lc.URL())
	victim := -1
	for i, sh := range st.Shards {
		if sh.Routed > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard routed anything")
	}
	lc.KillWorker(victim)

	for i, prog := range progs {
		if status, body := postSlice(t, lc.URL(), prog, nil, ""); status != http.StatusOK {
			t.Fatalf("after kill, program %d: status %d: %s", i, status, body)
		}
	}
	st = routerStats(t, lc.URL())
	if st.Router.HealthyWorkers != 2 {
		t.Errorf("healthy workers = %d, want 2", st.Router.HealthyWorkers)
	}
	if st.Router.Retries == 0 {
		t.Error("no retries recorded — the kill was never observed on the forward path")
	}
	for _, sh := range st.Shards {
		if sh.ID == fmt.Sprintf("w%d", victim) && sh.Healthy {
			t.Errorf("killed worker %s still marked healthy", sh.ID)
		}
	}
}

// TestRouterHotShardShed: a shard whose cache bytes (as of its last
// probe) exceed the budget sheds instead of accepting more work.
func TestRouterHotShardShed(t *testing.T) {
	lc := startLocal(t, 1, server.Config{}, Config{ShardHotBytes: 1})

	// First request: hotBytes is still 0 (never probed), so it passes and
	// warms the worker's cache past the 1-byte budget.
	if status, body := postSlice(t, lc.URL(), testProgram("hot", 1), nil, ""); status != http.StatusOK {
		t.Fatalf("first: status %d: %s", status, body)
	}
	lc.Router.ProbeOnce(t.Context())

	status, _ := postSlice(t, lc.URL(), testProgram("hot2", 1), nil, "")
	if status != http.StatusTooManyRequests {
		t.Fatalf("post-probe status %d, want 429", status)
	}
	if st := routerStats(t, lc.URL()); st.Router.ShardShed != 1 {
		t.Errorf("shard_shed = %d, want 1", st.Router.ShardShed)
	}
}

// TestRouterProbeRecovery: a worker that stops answering probes is marked
// down after FailThreshold failures and rebalanced back in after it
// recovers.
func TestRouterProbeRecovery(t *testing.T) {
	bw := newBlockingWorker()
	defer bw.ts.Close()
	close(bw.release)

	rt := NewRouter(Config{FailThreshold: 2, ProbeTimeout: 200 * time.Millisecond})
	rt.AddWorker("w0", bw.ts.URL)
	if got := len(rt.Ring().Members()); got != 1 {
		t.Fatalf("ring members = %d, want 1", got)
	}

	bw.ts.Close() // worker dies
	rt.ProbeOnce(t.Context())
	if got := len(rt.Ring().Members()); got != 1 {
		t.Fatalf("one failed probe already evicted the worker (threshold 2)")
	}
	rt.ProbeOnce(t.Context())
	if got := len(rt.Ring().Members()); got != 0 {
		t.Fatalf("ring members = %d after %d failed probes, want 0", got, 2)
	}

	// Recovery: a fresh worker on a fresh port under the same ID is how a
	// supervisor would restart it; here we re-point the state's URL by
	// re-adding after removal.
	rt.RemoveWorker("w0")
	bw2 := newBlockingWorker()
	defer bw2.ts.Close()
	close(bw2.release)
	rt.AddWorker("w0", bw2.ts.URL)
	rt.ProbeOnce(t.Context())
	if got := len(rt.Ring().Members()); got != 1 {
		t.Fatalf("ring members = %d after recovery, want 1", got)
	}
}

// TestRouterClientCancelKeepsWorkerHealthy: a forward that fails because
// the *client* disconnected must not demote the worker — one aborted
// request must never rebalance the ring or empty it. A waiter queued at
// the singleflight gate behind the cancelled leader must also unblock
// when its own client gives up.
func TestRouterClientCancelKeepsWorkerHealthy(t *testing.T) {
	bw := newBlockingWorker()
	defer bw.ts.Close()
	defer close(bw.release)

	rt := NewRouter(Config{})
	rt.AddWorker("w0", bw.ts.URL)
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	prog := testProgram("cancel", 1)
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(leaderCtx, http.MethodPost,
			ts.URL+"/v1/slice", bytes.NewReader(mustSliceBody(t, prog)))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		leaderErr <- err
	}()
	<-bw.arrived // the leader's forward is parked on the worker

	// Same key: this request queues at the singleflight gate.
	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(waiterCtx, http.MethodPost,
			ts.URL+"/v1/slice", bytes.NewReader(mustSliceBody(t, prog)))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		waiterErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for routerStats(t, ts.URL).Router.DedupWaits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the singleflight gate")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The waiter's client gives up: its handler must return even though
	// the leader (and the worker) are still parked.
	cancelWaiter()
	select {
	case err := <-waiterErr:
		if err == nil {
			t.Error("waiter completed despite cancelled context")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter still blocked at the singleflight gate")
	}

	// The leader's client gives up: the forward fails with the client's
	// cancellation, which says nothing about worker health.
	cancelLeader()
	if err := <-leaderErr; err == nil {
		t.Error("leader completed despite cancelled context")
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := routerStats(t, ts.URL)
		if st.Shards[0].InFlight == 0 {
			if !st.Shards[0].Healthy {
				t.Error("client cancellation marked the worker down")
			}
			if st.Router.Retries != 0 {
				t.Errorf("client cancellation burned %d retries", st.Router.Retries)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader forward never unwound after cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := len(rt.Ring().Members()); got != 1 {
		t.Fatalf("ring members = %d after client cancellations, want 1", got)
	}
}

// TestRouterStatsAggregation: the router's top-level stats must be the
// sum of its workers' — the loadgen client reads a router exactly like a
// single server.
func TestRouterStatsAggregation(t *testing.T) {
	lc := startLocal(t, 2, server.Config{}, Config{})
	for i := 0; i < 4; i++ {
		prog := testProgram(fmt.Sprintf("agg%d", i), 1)
		for j := 0; j < 2; j++ { // second round: warm hits
			if status, body := postSlice(t, lc.URL(), prog, nil, ""); status != http.StatusOK {
				t.Fatalf("status %d: %s", status, body)
			}
		}
	}
	st := routerStats(t, lc.URL())
	if len(st.Shards) != 2 {
		t.Fatalf("%d shard rows, want 2", len(st.Shards))
	}
	var hits, builds, bytes int64
	for _, sh := range st.Shards {
		hits += sh.Hits
		builds += sh.Builds
		bytes += sh.Bytes
	}
	if hits != st.Cache.Hits || builds != st.Cache.Builds || bytes != st.Cache.Bytes {
		t.Errorf("shard sums (hits %d builds %d bytes %d) != aggregate (%d %d %d)",
			hits, builds, bytes, st.Cache.Hits, st.Cache.Builds, st.Cache.Bytes)
	}
	if st.Cache.Hits != 4 || st.Cache.ColdBuilds != 4 {
		t.Errorf("cluster cache hits=%d cold=%d, want 4/4", st.Cache.Hits, st.Cache.ColdBuilds)
	}
	if st.Batches != 8 {
		t.Errorf("aggregate batches = %d, want 8", st.Batches)
	}
}
