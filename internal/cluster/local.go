package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"specslice/internal/server"
)

// Local is a whole cluster inside one process: N slicing servers, each on
// its own loopback listener, fronted by a router on a listener of its
// own. Requests still cross real HTTP between router and workers, so the
// routing, shedding, and drain paths are the ones a multi-process
// deployment exercises — only the process boundary is folded away. Used
// by the routed loadgen scenarios and the cluster tests; `specslice
// route` runs the real subprocess topology (see Spawn).
type Local struct {
	Router *Router

	routerLn net.Listener
	routerHS *http.Server
	cancel   context.CancelFunc

	workers []*localWorker
}

type localWorker struct {
	id  string
	srv *server.Server
	ln  net.Listener
	hs  *http.Server
}

// StartLocal boots n workers with the given server config plus a router
// with the given router config, and returns once everything is serving.
func StartLocal(n int, scfg server.Config, rcfg Config) (*Local, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 worker, got %d", n)
	}
	lc := &Local{Router: NewRouter(rcfg)}
	for i := 0; i < n; i++ {
		srv, err := server.New(scfg)
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("cluster: worker %d: %w", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			lc.Close()
			return nil, err
		}
		lw := &localWorker{
			id:  fmt.Sprintf("w%d", i),
			srv: srv,
			ln:  ln,
			hs:  &http.Server{Handler: srv.Handler()},
		}
		go lw.hs.Serve(ln)
		lc.workers = append(lc.workers, lw)
		lc.Router.AddWorker(lw.id, "http://"+ln.Addr().String())
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.routerLn = rln
	lc.routerHS = &http.Server{Handler: lc.Router.Handler()}
	go lc.routerHS.Serve(rln)
	ctx, cancel := context.WithCancel(context.Background())
	lc.cancel = cancel
	lc.Router.Start(ctx)
	return lc, nil
}

// URL returns the router's base URL.
func (lc *Local) URL() string { return "http://" + lc.routerLn.Addr().String() }

// WorkerURL returns worker i's base URL (tests hit workers directly).
func (lc *Local) WorkerURL(i int) string { return "http://" + lc.workers[i].ln.Addr().String() }

// KillWorker abruptly stops worker i's HTTP server — no drain, as if the
// process died. The router discovers it via a failed forward or probe.
func (lc *Local) KillWorker(i int) {
	lw := lc.workers[i]
	lw.hs.Close()
	lw.ln.Close()
}

// DrainAndStopWorker gracefully removes worker i: the router stops
// routing to it and waits for its in-flight forwards, then the worker's
// HTTP server shuts down (draining anything the router no longer sees)
// and the worker closes its engine store cleanly.
func (lc *Local) DrainAndStopWorker(i int, timeout time.Duration) error {
	lw := lc.workers[i]
	if err := lc.Router.DrainWorker(lw.id, timeout); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := lw.hs.Shutdown(ctx); err != nil {
		return err
	}
	return lw.srv.Close()
}

// Close shuts the cluster down: router first (so nothing routes into a
// closing worker), then every worker, draining each.
func (lc *Local) Close() error {
	if lc.cancel != nil {
		lc.cancel()
	}
	var first error
	if lc.routerHS != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := lc.routerHS.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		cancel()
	}
	for _, lw := range lc.workers {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := lw.hs.Shutdown(ctx); err != nil && first == nil {
			first = err
		}
		cancel()
		if err := lw.srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
