package cluster

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is a classic refill-on-read rate limiter: capacity `burst`
// tokens, refilled at `rate` tokens/sec, one token per admitted request.
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take admits one request if a token is available, else reports how long
// until the next token accrues (the Retry-After hint).
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(b.burst, b.tokens+dt*b.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.rate
	return false, time.Duration(need * float64(time.Second))
}

// admitter holds one token bucket per tenant. Tenants are identified by
// the X-Tenant request header; requests without one share the "default"
// bucket, so an anonymous flood cannot starve named tenants.
//
// The tenant name is client-controlled, so the bucket map is bounded:
// past maxTenantBuckets distinct tenants, buckets idle long enough to be
// indistinguishable from fresh ones are evicted, and if the map is still
// full, new tenants charge the shared "default" bucket instead of
// allocating — a random-tenant flood costs memory once, not per request.
type admitter struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

// maxTenantBuckets caps distinct per-tenant buckets held at once.
const maxTenantBuckets = 4096

func newAdmitter(rate float64, burst int, now func() time.Time) *admitter {
	if now == nil {
		now = time.Now
	}
	if burst < 1 {
		burst = 1
	}
	return &admitter{rate: rate, burst: float64(burst), now: now, buckets: map[string]*tokenBucket{}}
}

// admit charges one request to the tenant's bucket. A zero or negative
// rate disables tenant limiting entirely.
func (a *admitter) admit(tenant string) (ok bool, retryAfter time.Duration) {
	if a == nil || a.rate <= 0 {
		return true, 0
	}
	if tenant == "" {
		tenant = "default"
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b := a.buckets[tenant]
	if b == nil {
		if len(a.buckets) >= maxTenantBuckets {
			a.pruneLocked(now)
		}
		if len(a.buckets) >= maxTenantBuckets && tenant != "default" {
			// Still full after pruning: every held bucket is active. Charge
			// the shared default bucket rather than growing without bound.
			tenant = "default"
			b = a.buckets[tenant]
		}
		if b == nil {
			b = &tokenBucket{rate: a.rate, burst: a.burst, tokens: a.burst, last: now}
			a.buckets[tenant] = b
		}
	}
	return b.take(now)
}

// pruneLocked evicts buckets idle long enough to have fully refilled —
// such a bucket behaves identically to a freshly allocated one, so
// dropping it changes no admission decision.
func (a *admitter) pruneLocked(now time.Time) {
	idle := time.Duration(a.burst / a.rate * float64(time.Second))
	for tenant, b := range a.buckets {
		if now.Sub(b.last) >= idle {
			delete(a.buckets, tenant)
		}
	}
}
