// Package cluster shards the slicing service across worker processes: a
// coordinator/router consistent-hashes ContentKey *families* (FamilyKey, so
// version chains stay shard-local and Engine.Advance always finds its
// ancestor on the same worker) across N `specslice serve` workers, with
// router-level singleflight on in-flight builds, health-checked membership
// with deterministic rebalancing, graceful drain, and per-tenant admission
// control (token-bucket rate limiting plus load-shedding when a shard's
// in-flight depth or byte budget runs hot).
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ringVnodes is the number of virtual nodes per shard. 160 points per
// shard keeps the family distribution within ~±25% of the mean for small
// clusters while leaving ring rebuilds trivially cheap (a rebuild sorts
// shards·160 points, and membership changes are rare).
const ringVnodes = 160

// Ring is an immutable consistent-hash ring mapping family keys to shard
// IDs. Immutability is the concurrency story: the router swaps a freshly
// built ring on every membership change (an "epoch") instead of locking
// lookups against mutation.
//
// The placement is deterministic in the member set alone — point hashes
// mix only the shard ID and vnode index — so every router instance, and
// every epoch with the same members, routes a family identically, and
// removing one shard remaps only the families that lived on it (its
// points vanish; every other family still meets the same first point).
type Ring struct {
	hashes []uint64 // sorted vnode hashes
	owner  []string // owner[i] is the shard owning hashes[i]
	ids    []string // distinct member IDs, sorted
}

// NewRing builds a ring over the given shard IDs. Duplicate IDs collapse;
// an empty member set yields a ring whose Lookup reports no owner.
func NewRing(ids []string) *Ring {
	seen := map[string]bool{}
	var members []string
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			members = append(members, id)
		}
	}
	sort.Strings(members)
	r := &Ring{ids: members}
	type point struct {
		h  uint64
		id string
	}
	points := make([]point, 0, len(members)*ringVnodes)
	var buf [8]byte
	for _, id := range members {
		h := sha256.New()
		for v := 0; v < ringVnodes; v++ {
			h.Reset()
			h.Write([]byte(id))
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			sum := h.Sum(nil)
			points = append(points, point{h: binary.BigEndian.Uint64(sum[:8]), id: id})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].h != points[j].h {
			return points[i].h < points[j].h
		}
		// Tie-break on ID so equal hashes (astronomically unlikely with
		// 64-bit SHA prefixes, but determinism must not depend on luck)
		// still order identically everywhere.
		return points[i].id < points[j].id
	})
	r.hashes = make([]uint64, len(points))
	r.owner = make([]string, len(points))
	for i, p := range points {
		r.hashes[i] = p.h
		r.owner[i] = p.id
	}
	return r
}

// Lookup returns the shard owning the family key, or ("", false) on an
// empty ring. The owner is the first vnode at or after the key's hash,
// wrapping at the top of the ring.
func (r *Ring) Lookup(family string) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	sum := sha256.Sum256([]byte(family))
	h := binary.BigEndian.Uint64(sum[:8])
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owner[i], true
}

// Members returns the ring's distinct shard IDs in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, len(r.ids))
	copy(out, r.ids)
	return out
}
