// Package mono implements the two monovariant executable-slicing baselines
// the paper compares against (§5): Binkley's algorithm (closure slice plus
// iteratively added-back missing actual parameters and their backward
// slices) and a Weiser-style context-insensitive slice with atomic
// call-sites. Both produce at most one copy of each procedure, and both are
// complete but not sound in the paper's terminology — they can include
// elements outside the closure slice.
package mono

import (
	"specslice/internal/core"
	"specslice/internal/sdg"
	"specslice/internal/slice"
)

// Result is a monovariant executable slice.
type Result struct {
	Source *sdg.Graph
	// Slice is the final executable vertex set.
	Slice slice.VSet
	// Closure is the HRB closure slice the algorithm started from.
	Closure slice.VSet
	// Extras is Slice − Closure: elements added back to repair parameter
	// mismatches (the paper's "7.1% worth of extraneous elements").
	Extras slice.VSet
	// Rounds is the number of mismatch-repair iterations Binkley's
	// algorithm performed (1 means no mismatches existed).
	Rounds int
}

// Binkley computes a monovariant executable slice per Binkley (1993):
// compute the closure slice; while some call-site in the slice calls a
// procedure whose in-slice formal has no in-slice actual at that site, add
// the missing actual and everything in its backward slice; repeat.
// Summary edges are computed on g as a side effect.
func Binkley(g *sdg.Graph, criterion []sdg.VertexID) *Result {
	slice.ComputeSummaryEdges(g)
	w := slice.Backward(g, criterion)
	res := &Result{Source: g, Closure: w.Clone()}

	for {
		res.Rounds++
		var missing []sdg.VertexID
		for _, site := range g.Sites {
			if site.Lib || !w[site.CallVertex] {
				continue
			}
			callee := g.Procs[g.ProcByName[site.Callee]]
			for _, fi := range callee.FormalIns {
				if !w[fi] {
					continue
				}
				ai, ok := actualFor(g, site, fi)
				if ok && !w[ai] {
					missing = append(missing, ai)
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		add := slice.Backward(g, missing)
		for v := range add {
			w[v] = true
		}
	}
	res.Slice = w
	res.Extras = slice.VSet{}
	for v := range w {
		if !res.Closure[v] {
			res.Extras[v] = true
		}
	}
	return res
}

// Weiser computes the Weiser-style executable slice baseline.
func Weiser(g *sdg.Graph, criterion []sdg.VertexID) *Result {
	slice.ComputeSummaryEdges(g)
	w := slice.Weiser(g, criterion)
	closure := slice.Backward(g, criterion)
	extras := slice.VSet{}
	for v := range w {
		if !closure[v] {
			extras[v] = true
		}
	}
	return &Result{Source: g, Slice: w, Closure: closure, Extras: extras, Rounds: 1}
}

func actualFor(g *sdg.Graph, site *sdg.Site, fiID sdg.VertexID) (sdg.VertexID, bool) {
	fi := g.Vertices[fiID]
	for _, aiID := range site.ActualIns {
		ai := g.Vertices[aiID]
		if fi.Param != sdg.NoParam {
			if ai.Param == fi.Param {
				return aiID, true
			}
		} else if ai.Param == sdg.NoParam && ai.Var == fi.Var {
			return aiID, true
		}
	}
	return 0, false
}

// Variants packages the monovariant slice for program emission: one variant
// per procedure intersecting the slice, keeping original names.
func (r *Result) Variants() []core.ProcVariant {
	var out []core.ProcVariant
	for _, p := range r.Source.Procs {
		vs := map[sdg.VertexID]bool{}
		for _, v := range p.Vertices {
			if r.Slice[v] {
				vs[v] = true
			}
		}
		if len(vs) == 0 {
			continue
		}
		ct := map[sdg.SiteID]string{}
		for _, sid := range p.Sites {
			site := r.Source.Sites[sid]
			if !site.Lib && r.Slice[site.CallVertex] {
				ct[sid] = site.Callee
			}
		}
		out = append(out, core.ProcVariant{Orig: p, Name: p.Name, Vertices: vs, CallTarget: ct})
	}
	return out
}

// PerProcSizes returns, for each procedure with vertices in the slice, the
// number of sliced vertices (paper Fig. 20's y-axis data).
func (r *Result) PerProcSizes() map[string]int {
	out := map[string]int{}
	for v := range r.Slice {
		out[r.Source.Procs[r.Source.Vertices[v].Proc].Name]++
	}
	return out
}
