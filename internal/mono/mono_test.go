package mono

import (
	"reflect"
	"strings"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

const fig14Src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

func build(t *testing.T) (*lang.Program, *sdg.Graph, []sdg.VertexID) {
	t.Helper()
	prog := lang.MustParse(fig14Src)
	g := sdg.MustBuild(prog)
	return prog, g, core.PrintfCriterion(g, "main")
}

// TestBinkleyFig14 reproduces the paper's Fig. 14(c): the monovariant slice
// keeps p's two-parameter signature, adds back the missing first actuals,
// and re-includes g2 = 100 (needed to initialize the added-back actual).
func TestBinkleyFig14(t *testing.T) {
	_, g, crit := build(t)
	res := Binkley(g, crit)

	if res.Rounds < 2 {
		t.Errorf("rounds = %d; fig14 has mismatches, so at least one repair round is expected", res.Rounds)
	}
	if len(res.Extras) == 0 {
		t.Fatal("no extras; Binkley's algorithm must add elements outside the closure slice")
	}
	// g2 = 100 is an extra: not in the closure slice, added back.
	foundInit := false
	for v := range res.Extras {
		if g.Vertices[v].Label == "g2 = 100" {
			foundInit = true
		}
	}
	if !foundInit {
		t.Error("g2 = 100 must be added back by mismatch repair (paper Fig. 14(c) line 13)")
	}
	// Closure ⊆ Slice.
	for v := range res.Closure {
		if !res.Slice[v] {
			t.Errorf("closure element %s missing from executable slice (completeness)", g.VertexString(v))
		}
	}
	// No remaining mismatches.
	for _, site := range g.Sites {
		if site.Lib || !res.Slice[site.CallVertex] {
			continue
		}
		callee := g.Procs[g.ProcByName[site.Callee]]
		for _, fi := range callee.FormalIns {
			if !res.Slice[fi] {
				continue
			}
			ai, ok := actualFor(g, site, fi)
			if ok && !res.Slice[ai] {
				t.Errorf("unrepaired mismatch at site %d for %s", site.ID, g.VertexString(fi))
			}
		}
	}
}

func TestBinkleyEmitAndRun(t *testing.T) {
	prog, g, crit := build(t)
	res := Binkley(g, crit)
	out, err := emit.Program(g, res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	text := lang.Print(out)
	// Monovariant: exactly one p, with both parameters.
	if !strings.Contains(text, "void p(int a, int b)") {
		t.Errorf("p must keep its full signature:\n%s", text)
	}
	if strings.Contains(text, "p_1") || strings.Contains(text, "p_2") {
		t.Errorf("monovariant slice must not create variants:\n%s", text)
	}
	if !strings.Contains(text, "g2 = 100") {
		t.Errorf("g2 = 100 must be present:\n%s", text)
	}
	if strings.Contains(text, "g3") {
		t.Errorf("g3 stays sliced away:\n%s", text)
	}
	r1, err := interp.Run(prog, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatalf("mono slice fails to run: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: %v vs %v", r1.Output, r2.Output)
	}
}

func TestWeiserCoarserThanBinkley(t *testing.T) {
	_, g, crit := build(t)
	b := Binkley(g, crit)
	_, g2, crit2 := build(t)
	w := Weiser(g2, crit2)
	// Weiser is never smaller than Binkley (paper §5) — compare sizes since
	// the two graphs are built identically.
	if len(w.Slice) < len(b.Slice) {
		t.Errorf("Weiser slice (%d) smaller than Binkley (%d)", len(w.Slice), len(b.Slice))
	}
}

func TestWeiserEmitAndRun(t *testing.T) {
	prog, g, crit := build(t)
	res := Weiser(g, crit)
	out, err := emit.Program(g, res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	r1, _ := interp.Run(prog, interp.Options{})
	r2, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatalf("weiser slice fails: %v\n%s", err, lang.Print(out))
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: %v vs %v", r1.Output, r2.Output)
	}
}

// TestBinkleyRecursive checks mismatch repair across recursion.
func TestBinkleyRecursive(t *testing.T) {
	src := `
int g1; int g2;
void s(int a, int b) { g1 = b; g2 = a; }
void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}
int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  printf("%d\n", g1);
  return 0;
}
`
	prog := lang.MustParse(src)
	g := sdg.MustBuild(prog)
	res := Binkley(g, core.PrintfCriterion(g, "main"))
	out, err := emit.Program(g, res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	r1, _ := interp.Run(prog, interp.Options{})
	r2, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v\n%s", err, lang.Print(out))
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: %v vs %v", r1.Output, r2.Output)
	}
}
