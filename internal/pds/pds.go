// Package pds implements pushdown systems and the Prestar/Poststar
// saturation procedures of Bouajjani et al. (1997) and Esparza et al.
// (2000), in the efficient worklist formulation of Schwoon's thesis. It
// plays the role WALi plays in the paper's implementation.
//
// A P-automaton is represented as an *fsa.FSA whose states 0..NumLocs-1 are
// the PDS control locations; a configuration (p, w) is accepted when the
// automaton accepts w starting from state p. Query automata must have no
// transitions into control-location states and no epsilon transitions.
package pds

import (
	"fmt"
	"sync"

	"specslice/internal/fsa"
)

// Rule is a pushdown rule <P, G> ↪ <P2, W> with |W| ≤ 2:
// |W| = 0 is a pop rule, 1 an internal rule, 2 a push rule.
type Rule struct {
	P  int
	G  fsa.Symbol
	P2 int
	W  []fsa.Symbol
}

func (r Rule) String() string {
	return fmt.Sprintf("<%d,%d> -> <%d,%v>", r.P, r.G, r.P2, r.W)
}

// PDS is a pushdown system with NumLocs control locations (0..NumLocs-1).
type PDS struct {
	NumLocs int
	Rules   []Rule
}

// AddRule appends a rule, validating its shape.
func (p *PDS) AddRule(r Rule) {
	if len(r.W) > 2 {
		panic("pds: rule with more than two right-hand stack symbols")
	}
	p.Rules = append(p.Rules, r)
}

// locSym is an index key (control location or state, stack symbol).
type locSym struct {
	q int
	g fsa.Symbol
}

// Prestar saturates a copy of the query automaton a so that it accepts
// pre*(L(a)): every configuration from which some configuration in L(a) is
// reachable. a's states 0..NumLocs-1 must be the control locations.
//
// One-shot convenience; repeated queries over the same PDS should build a
// PrestarEngine once and reuse it.
func (p *PDS) Prestar(a *fsa.FSA) *fsa.FSA {
	return NewPrestarEngine(p).Prestar(a)
}

// dyn is a dynamic pseudo-internal rule Δ′: <p₁,γ₁> → <q′,γ₂>.
type dyn struct {
	p1 int
	g1 fsa.Symbol
}

// PrestarEngine answers repeated Prestar queries over one fixed PDS: the
// static rule indexes are built once at construction, and each run draws
// its worklist state (worklist, rel index, Δ′ rules) from a reusable arena
// free list. A single engine is safe for concurrent use.
//
// The free list is explicit (not a sync.Pool) so the engine can account
// the scratch it retains between batches: cleared maps keep their buckets
// and the worklist keeps its capacity, which for a long-lived engine is
// real heap pinned by the interned saturation state of past queries.
// ScratchBytes reports it, and engine.Footprint charges it to the
// content-addressed cache's byte budget.
type PrestarEngine struct {
	p        *PDS
	internal map[locSym][]Rule // internal rules indexed by RHS <q, γ>
	push     map[locSym][]Rule // push rules indexed by RHS head <q, γ>
	pops     []Rule

	mu   sync.Mutex
	free []*prestarArena
}

// prestarArena holds the per-run mutable state, reused across runs to keep
// map buckets and worklist capacity warm.
type prestarArena struct {
	work     []fsa.Transition
	relSeen  map[fsa.Transition]bool
	relBySrc map[locSym][]int
	dynRules map[locSym][]dyn
	dynSeen  map[[4]int]bool
	// High-water populations. reset clears the maps but their buckets (and
	// the worklist backing array) stay allocated, so retained bytes follow
	// the largest run, not the current one.
	hwWork, hwRel, hwDyn int
}

func (a *prestarArena) reset() {
	a.hwWork = max(a.hwWork, cap(a.work))
	a.hwRel = max(a.hwRel, len(a.relSeen))
	a.hwDyn = max(a.hwDyn, len(a.dynSeen))
	a.work = a.work[:0]
	clear(a.relSeen)
	clear(a.relBySrc)
	clear(a.dynRules)
	clear(a.dynSeen)
}

func (e *PrestarEngine) getArena() *prestarArena {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n := len(e.free); n > 0 {
		ar := e.free[n-1]
		e.free = e.free[:n-1]
		return ar
	}
	return &prestarArena{
		relSeen:  map[fsa.Transition]bool{},
		relBySrc: map[locSym][]int{},
		dynRules: map[locSym][]dyn{},
		dynSeen:  map[[4]int]bool{},
	}
}

func (e *PrestarEngine) putArena(ar *prestarArena) {
	ar.reset()
	e.mu.Lock()
	e.free = append(e.free, ar)
	e.mu.Unlock()
}

// Per-entry scratch estimates, deliberately coarse like engine.Footprint's
// graph constants: a worklist slot is one Transition; a rel transition
// costs a relSeen map entry plus a relBySrc index slot; a Δ′ rule costs a
// dynSeen entry plus a dynRules slot.
const (
	scratchWorkBytes = 24  // fsa.Transition
	scratchRelBytes  = 104 // relSeen entry + relBySrc slot
	scratchDynBytes  = 112 // dynSeen entry + dynRules slot
)

// ScratchBytes estimates the heap retained by the engine's pooled arenas
// between queries. Arenas checked out by in-flight queries are not
// counted; between batches every arena is on the free list, which is when
// cache byte budgets are enforced.
func (e *PrestarEngine) ScratchBytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var n int64
	for _, ar := range e.free {
		n += int64(ar.hwWork)*scratchWorkBytes +
			int64(ar.hwRel)*scratchRelBytes +
			int64(ar.hwDyn)*scratchDynBytes
	}
	return n
}

// ScratchProvision estimates the steady-state scratch of a single arena
// before any query has run: saturation materializes at least the rel
// transitions its rules can derive, so a freshly built engine charged into
// a byte-budgeted cache reserves this much for the scratch its first
// queries will pin. Without it, a cache would charge engines at insert
// time (when ScratchBytes is still zero) and then silently exceed its
// budget once traffic warms the arenas.
func (e *PrestarEngine) ScratchProvision() int64 {
	return int64(len(e.p.Rules)) * scratchRelBytes
}

// NewPrestarEngine indexes the rules of p for repeated Prestar queries.
func NewPrestarEngine(p *PDS) *PrestarEngine {
	e := &PrestarEngine{
		p:        p,
		internal: map[locSym][]Rule{},
		push:     map[locSym][]Rule{},
	}
	for _, r := range p.Rules {
		switch len(r.W) {
		case 0:
			e.pops = append(e.pops, r)
		case 1:
			k := locSym{r.P2, r.W[0]}
			e.internal[k] = append(e.internal[k], r)
		case 2:
			k := locSym{r.P2, r.W[0]}
			e.push[k] = append(e.push[k], r)
		}
	}
	return e
}

// Prestar runs the saturation against query automaton a, returning a fresh
// result automaton.
func (e *PrestarEngine) Prestar(a *fsa.FSA) *fsa.FSA {
	res := a.Clone()
	for res.NumStates() < e.p.NumLocs {
		res.AddState()
	}

	ar := e.getArena()
	defer e.putArena(ar)
	relSeen, relBySrc := ar.relSeen, ar.relBySrc
	dynRules, dynSeen := ar.dynRules, ar.dynSeen
	work := ar.work

	pushT := func(t fsa.Transition) {
		if !relSeen[t] {
			work = append(work, t)
		}
	}
	for _, t := range a.Transitions() {
		pushT(t)
	}
	for _, r := range e.pops {
		pushT(fsa.Transition{From: r.P, Sym: r.G, To: r.P2})
	}

	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]
		if relSeen[t] {
			continue
		}
		relSeen[t] = true
		res.Add(t.From, t.Sym, t.To)
		k := locSym{t.From, t.Sym}
		relBySrc[k] = append(relBySrc[k], t.To)

		for _, r := range e.internal[k] {
			pushT(fsa.Transition{From: r.P, Sym: r.G, To: t.To})
		}
		for _, d := range dynRules[k] {
			pushT(fsa.Transition{From: d.p1, Sym: d.g1, To: t.To})
		}
		for _, r := range e.push[k] {
			// Register Δ′ rule <r.P, r.G> → <t.To, r.W[1]>.
			key := [4]int{r.P, int(r.G), t.To, int(r.W[1])}
			if !dynSeen[key] {
				dynSeen[key] = true
				dk := locSym{t.To, r.W[1]}
				dynRules[dk] = append(dynRules[dk], dyn{r.P, r.G})
				for _, q2 := range relBySrc[dk] {
					pushT(fsa.Transition{From: r.P, Sym: r.G, To: q2})
				}
			}
		}
	}
	ar.work = work
	return res
}

// Poststar saturates a copy of the query automaton a so that it accepts
// post*(L(a)): every configuration reachable from some configuration in
// L(a). New intermediate states are created for push rules; epsilon
// transitions appear in the result (callers may RemoveEpsilon).
//
// The saturation runs dense: the result automaton's packed transition
// index doubles as the rel-membership set (Add reports newness, so no
// separate seen-map is kept), and the epsilon/composition indexes are
// state-indexed slices — every state is known up front, the query's plus
// one intermediate state per push-rule (p′, γ′).
func (p *PDS) Poststar(a *fsa.FSA) *fsa.FSA {
	res := a.Clone()
	for res.NumStates() < p.NumLocs {
		res.AddState()
	}

	// Phase I: one new state per (p′, γ′) of a push rule.
	mid := map[locSym]int{}
	for _, r := range p.Rules {
		if len(r.W) == 2 {
			k := locSym{r.P2, r.W[0]}
			if _, ok := mid[k]; !ok {
				mid[k] = res.AddState()
			}
		}
	}

	// Index rules by LHS (p, γ).
	byLHS := map[locSym][]Rule{}
	for _, r := range p.Rules {
		k := locSym{r.P, r.G}
		byLHS[k] = append(byLHS[k], r)
	}

	n := res.NumStates()
	// epsInto[q] = control locations p with (p, ε, q) in rel.
	epsInto := make([][]int32, n)
	// relFrom[q] = non-eps transitions (sym, to) leaving q.
	type symTo struct {
		sym fsa.Symbol
		to  int
	}
	relFrom := make([][]symTo, n)

	// Every transition enters rel (= res) exactly once, when Add first
	// admits it; the worklist holds each admitted transition until its
	// consequences are drawn.
	var work []fsa.Transition
	pushT := func(t fsa.Transition) {
		if res.Add(t.From, t.Sym, t.To) {
			work = append(work, t)
		}
	}
	a.Each(func(t fsa.Transition) {
		if t.Sym == fsa.Epsilon {
			panic("pds: query automaton must not contain epsilon transitions")
		}
		// Already present in the clone; seed the worklist directly.
		work = append(work, t)
	})

	for len(work) > 0 {
		t := work[len(work)-1]
		work = work[:len(work)-1]

		if t.Sym != fsa.Epsilon {
			relFrom[t.From] = append(relFrom[t.From], symTo{t.Sym, t.To})
			for _, r := range byLHS[locSym{t.From, t.Sym}] {
				switch len(r.W) {
				case 0:
					pushT(fsa.Transition{From: r.P2, Sym: fsa.Epsilon, To: t.To})
				case 1:
					pushT(fsa.Transition{From: r.P2, Sym: r.W[0], To: t.To})
				case 2:
					m := mid[locSym{r.P2, r.W[0]}]
					pushT(fsa.Transition{From: r.P2, Sym: r.W[0], To: m})
					pushT(fsa.Transition{From: m, Sym: r.W[1], To: t.To})
				}
			}
			// Compose with earlier epsilon transitions ending at t.From.
			for _, q := range epsInto[t.From] {
				pushT(fsa.Transition{From: int(q), Sym: t.Sym, To: t.To})
			}
		} else {
			epsInto[t.To] = append(epsInto[t.To], int32(t.From))
			for _, st := range relFrom[t.To] {
				pushT(fsa.Transition{From: t.From, Sym: st.sym, To: st.to})
			}
		}
	}
	return res
}
