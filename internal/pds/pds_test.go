package pds

import (
	"fmt"
	"math/rand"
	"testing"

	"specslice/internal/fsa"
)

// config is an explicit PDS configuration for the reference implementation.
type config struct {
	loc   int
	stack string // one byte per symbol, top first
}

// step returns the successors of c under the rules.
func step(p *PDS, c config) []config {
	if len(c.stack) == 0 {
		return nil
	}
	top := fsa.Symbol(c.stack[0])
	rest := c.stack[1:]
	var out []config
	for _, r := range p.Rules {
		if r.P != c.loc || r.G != top {
			continue
		}
		ns := ""
		for _, s := range r.W {
			ns += string(byte(s))
		}
		out = append(out, config{r.P2, ns + rest})
	}
	return out
}

// reachable computes the forward-reachable set from seeds, breadth-first,
// with stack length bounded by maxStack and a config cap. The second result
// is false when the cap was hit, meaning the set is incomplete and the
// caller must skip comparisons that depend on completeness.
func reachable(p *PDS, seeds []config, maxStack, cap int) (map[config]bool, bool) {
	seen := map[config]bool{}
	work := append([]config(nil), seeds...)
	for _, s := range seeds {
		seen[s] = true
	}
	for len(work) > 0 {
		c := work[0]
		work = work[1:]
		for _, n := range step(p, c) {
			if len(n.stack) > maxStack || seen[n] {
				continue
			}
			if len(seen) >= cap {
				return seen, false
			}
			seen[n] = true
			work = append(work, n)
		}
	}
	return seen, true
}

// canReach reports whether target is reachable from seed (bounded), with ok
// false when the search was truncated without finding the target.
func canReach(p *PDS, seed, target config, maxStack, cap int) (found, ok bool) {
	if seed == target {
		return true, true
	}
	seen := map[config]bool{seed: true}
	work := []config{seed}
	for len(work) > 0 {
		c := work[0]
		work = work[1:]
		for _, n := range step(p, c) {
			if n == target {
				return true, true
			}
			if len(n.stack) > maxStack || seen[n] {
				continue
			}
			if len(seen) >= cap {
				return false, false
			}
			seen[n] = true
			work = append(work, n)
		}
	}
	return false, true
}

// wordOf converts a stack string to symbols.
func wordOf(stack string) []fsa.Symbol {
	w := make([]fsa.Symbol, len(stack))
	for i := 0; i < len(stack); i++ {
		w[i] = fsa.Symbol(stack[i])
	}
	return w
}

// queryFor builds a P-automaton accepting exactly the given configurations.
func queryFor(p *PDS, configs []config) *fsa.FSA {
	a := fsa.New(p.NumLocs)
	final := a.AddState()
	a.SetFinal(final)
	for _, c := range configs {
		cur := c.loc
		for i := 0; i < len(c.stack); i++ {
			var to int
			if i == len(c.stack)-1 {
				to = final
			} else {
				to = a.AddState()
			}
			a.Add(cur, fsa.Symbol(c.stack[i]), to)
			cur = to
		}
		if len(c.stack) == 0 {
			// Accept (loc, ε): loc itself must accept.
			a.SetFinal(c.loc)
		}
	}
	return a
}

// enumerate lists all configurations with stack length ≤ maxLen over nsym
// symbols starting at 1.
func enumerate(numLocs, nsym, maxLen int) []config {
	var out []config
	var stacks []string
	stacks = append(stacks, "")
	for l := 0; l < maxLen; l++ {
		var next []string
		for _, s := range stacks {
			if len(s) == l {
				for d := 1; d <= nsym; d++ {
					next = append(next, string(byte(d))+s)
				}
			}
		}
		stacks = append(stacks, next...)
	}
	for loc := 0; loc < numLocs; loc++ {
		for _, s := range stacks {
			out = append(out, config{loc, s})
		}
	}
	return out
}

func randomPDS(rng *rand.Rand) *PDS {
	p := &PDS{NumLocs: 1 + rng.Intn(3)}
	nsym := 2 + rng.Intn(3)
	nrules := 3 + rng.Intn(8)
	for i := 0; i < nrules; i++ {
		r := Rule{
			P:  rng.Intn(p.NumLocs),
			G:  fsa.Symbol(1 + rng.Intn(nsym)),
			P2: rng.Intn(p.NumLocs),
		}
		switch rng.Intn(3) {
		case 0: // pop
		case 1:
			r.W = []fsa.Symbol{fsa.Symbol(1 + rng.Intn(nsym))}
		case 2:
			r.W = []fsa.Symbol{fsa.Symbol(1 + rng.Intn(nsym)), fsa.Symbol(1 + rng.Intn(nsym))}
		}
		p.AddRule(r)
	}
	return p
}

// TestPoststarMatchesExplicitReachability: every configuration found by the
// bounded explicit search must be accepted by Poststar, and every accepted
// small configuration must be reachable.
func TestPoststarMatchesExplicitReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 120; iter++ {
		p := randomPDS(rng)
		seed := config{rng.Intn(p.NumLocs), string(byte(1 + rng.Intn(2)))}
		post := p.Poststar(queryFor(p, []config{seed}))
		// High bound so deep excursions that return shallow are found.
		reach, complete := reachable(p, []config{seed}, 12, 60000)
		for _, c := range enumerate(p.NumLocs, 3, 3) {
			got := post.AcceptsFrom(c.loc, wordOf(c.stack))
			want := reach[c]
			if got && !want && !complete {
				continue // truncated search may simply have missed it
			}
			if got != want {
				t.Fatalf("iter %d: post* disagrees on (%d,%q): got %v want %v\nseed=(%d,%q)\nrules=%v",
					iter, c.loc, c.stack, got, want, seed.loc, seed.stack, p.Rules)
			}
		}
	}
}

// TestPrestarMatchesExplicitReachability: c' ∈ pre*(C) iff C is reachable
// from c'.
func TestPrestarMatchesExplicitReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 120; iter++ {
		p := randomPDS(rng)
		target := config{rng.Intn(p.NumLocs), string(byte(1 + rng.Intn(2)))}
		pre := p.Prestar(queryFor(p, []config{target}))
		for _, c := range enumerate(p.NumLocs, 2, 2) {
			got := pre.AcceptsFrom(c.loc, wordOf(c.stack))
			want, ok := canReach(p, c, target, 10, 20000)
			if !ok && got != want {
				continue // truncated search: only a found target is conclusive
			}
			if got != want {
				t.Fatalf("iter %d: pre* disagrees on (%d,%q): got %v want %v\ntarget=(%d,%q)\nrules=%v",
					iter, c.loc, c.stack, got, want, target.loc, target.stack, p.Rules)
			}
		}
	}
}

// TestPrePostDuality: c' ∈ pre*({c}) iff c ∈ post*({c'}), sampled.
func TestPrePostDuality(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for iter := 0; iter < 60; iter++ {
		p := randomPDS(rng)
		c1 := config{rng.Intn(p.NumLocs), string(byte(1+rng.Intn(2))) + string(byte(1+rng.Intn(2)))}
		c2 := config{rng.Intn(p.NumLocs), string(byte(1 + rng.Intn(2)))}
		pre := p.Prestar(queryFor(p, []config{c2}))
		post := p.Poststar(queryFor(p, []config{c1}))
		if pre.AcceptsFrom(c1.loc, wordOf(c1.stack)) != post.AcceptsFrom(c2.loc, wordOf(c2.stack)) {
			t.Fatalf("iter %d: duality violated for %v -> %v\nrules=%v", iter, c1, c2, p.Rules)
		}
	}
}

// TestPrestarRecursiveLanguage reproduces the paper's (C3 C3)* C1 example
// shape: a PDS with a recursive push rule yields an infinite regular pre*
// language.
func TestPrestarRecursiveLanguage(t *testing.T) {
	// Symbols: e=1 (entry), C=2 (call-site), t=3 (target).
	// Rules: <0,e> -> <0, e C>   (recursive call)
	//        <0,e> -> <0, t>     (reach target)
	p := &PDS{NumLocs: 1}
	p.AddRule(Rule{P: 0, G: 1, P2: 0, W: []fsa.Symbol{1, 2}})
	p.AddRule(Rule{P: 0, G: 1, P2: 0, W: []fsa.Symbol{3}})
	// Criterion: (0, t) — target with empty remaining stack.
	q := fsa.New(1)
	f := q.AddState()
	q.Add(0, 3, f)
	q.SetFinal(f)
	pre := p.Prestar(q)
	// (e, C^k) ∈ pre* for every k ≥ 0: e unwinds to t only after... e pushes
	// C each recursion; (e, C^k) reaches (t, C^k); t with non-empty stack is
	// not the criterion. But (e, ε) -> (t, ε) is. And (e,C^k) -> (e C^{k+1})…
	// Only (e, ε) should be accepted among (e, C^k) since C never pops.
	if !pre.AcceptsFrom(0, []fsa.Symbol{1}) {
		t.Error("(e, ε) must be in pre*")
	}
	if pre.AcceptsFrom(0, []fsa.Symbol{1, 2}) {
		t.Error("(e, C) must not be in pre* (no pop rule for C)")
	}
	// Now add a pop rule <0,t> -> <0,ε> and <0,C> -> <0,t>: then t pops and
	// C converts to t, so (e, C^k) reaches (t, ε).
	p.AddRule(Rule{P: 0, G: 3, P2: 0, W: nil})
	p.AddRule(Rule{P: 0, G: 2, P2: 0, W: []fsa.Symbol{3}})
	pre = p.Prestar(q)
	for k := 0; k <= 6; k++ {
		w := []fsa.Symbol{1}
		for i := 0; i < k; i++ {
			w = append(w, 2)
		}
		if !pre.AcceptsFrom(0, w) {
			t.Errorf("(e, C^%d) must be in pre*", k)
		}
	}
}

func ExamplePDS_Prestar() {
	// One control location, symbols a=1, b=2; rule <0,a> -> <0,ε> pops a.
	p := &PDS{NumLocs: 1}
	p.AddRule(Rule{P: 0, G: 1, P2: 0, W: nil})
	// Criterion: (0, b).
	q := fsa.New(1)
	f := q.AddState()
	q.Add(0, 2, f)
	q.SetFinal(f)
	pre := p.Prestar(q)
	fmt.Println(pre.AcceptsFrom(0, []fsa.Symbol{1, 2})) // (0, ab) pops to (0, b)
	fmt.Println(pre.AcceptsFrom(0, []fsa.Symbol{1, 1, 2}))
	fmt.Println(pre.AcceptsFrom(0, []fsa.Symbol{2, 1}))
	// Output:
	// true
	// true
	// false
}
