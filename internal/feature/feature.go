// Package feature implements the paper's §7 feature-removal algorithm
// (Alg. 2): the configurations of the forward stack-configuration slice of
// a criterion are subtracted from the configurations reachable from main's
// entry, and the specialization-slicing pipeline (Alg. 1 from line 4) turns
// the remaining — backwards-closed — configuration language into an
// executable program without the feature.
//
// This solves the multi-procedure feature-removal problem: a procedure used
// both by the feature and by remaining code (like the paper's add, used by
// both sum and product) is kept, specialized to its remaining uses.
package feature

import (
	"errors"

	"specslice/internal/core"
	"specslice/internal/fsa"
	"specslice/internal/sdg"
)

// Remove computes the feature-removal slice of g: the program minus the
// forward stack-configuration slice from the criterion vertices.
func Remove(g *sdg.Graph, criterion []sdg.VertexID) (*core.Result, error) {
	return RemoveWithEncoding(g, core.Encode(g), criterion)
}

// RemoveWithEncoding is Remove against a prebuilt (typically cached)
// encoding of g.
func RemoveWithEncoding(g *sdg.Graph, enc *core.Encoding, criterion []sdg.VertexID) (*core.Result, error) {
	if len(criterion) == 0 {
		return nil, errors.New("feature: empty criterion")
	}

	// A0 = Poststar(criterion configurations, in every calling context).
	q := fsa.New(enc.PDS.NumLocs)
	final := q.AddState()
	q.SetFinal(final)
	for _, v := range criterion {
		q.Add(0, enc.VertexSym(v), final)
	}
	for _, s := range g.Sites {
		q.Add(final, enc.SiteSym(s.ID), final)
	}
	a0 := core.PAutomatonToFSA(enc.PDS.Poststar(q))

	// A1 = Poststar(entry_main) ∩ complement(determinize(A0)).
	reach, err := core.ReachableConfigs(enc)
	if err != nil {
		return nil, err
	}
	keep := fsa.Intersect(reach, a0.Complement(enc.Alphabet()))
	if keep.IsEmpty() {
		return nil, errors.New("feature: removing the feature removes the entire program")
	}

	// Continue at line 4 of Alg. 1.
	return core.SpecializeFromSliceAutomaton(g, enc, keep)
}

// ForwardCriterion finds the statement vertices whose label matches, a
// convenience for selecting feature seeds like `prod = 1`.
func ForwardCriterion(g *sdg.Graph, proc, label string) []sdg.VertexID {
	var out []sdg.VertexID
	for _, v := range g.Vertices {
		if g.Procs[v.Proc].Name == proc && v.Label == label {
			out = append(out, v.ID)
		}
	}
	return out
}
