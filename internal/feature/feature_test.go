package feature

import (
	"strings"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

// fig16Src is the paper's Fig. 16 tally program, with the reference
// parameters expressed as globals (MicroC has no reference parameters; the
// dependences flow through the same actual/formal machinery).
const fig16Src = `
int sum; int prod;

int add(int a, int b) {
  return a + b;
}

int mult(int a, int b) {
  int i = 0;
  int ans = 0;
  while (i < a) {
    ans = add(ans, b);
    i = add(i, 1);
  }
  return ans;
}

void tally(int n) {
  int i = 1;
  while (i <= n) {
    sum = add(sum, i);
    prod = mult(prod, i);
    i = add(i, 1);
  }
}

int main() {
  sum = 0;
  prod = 1;
  tally(10);
  printf("%d ", sum);
  printf("%d ", prod);
  return 0;
}
`

// TestFig16FeatureRemoval removes the product computation: the forward
// slice from `prod = 1`. The summation — including procedure add, which the
// product feature also used — must survive and still compute 55.
func TestFig16FeatureRemoval(t *testing.T) {
	prog := lang.MustParse(fig16Src)
	g := sdg.MustBuild(prog)
	crit := ForwardCriterion(g, "main", "prod = 1")
	if len(crit) != 1 {
		t.Fatalf("criterion vertices = %d, want 1", len(crit))
	}
	res, err := Remove(g, crit)
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	out, err := emit.Program(g, res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	text := lang.Print(out)

	if strings.Contains(text, "prod = 1") {
		t.Errorf("feature seed survived:\n%s", text)
	}
	// add must survive (needed by sum) — the key multi-procedure property.
	hasAdd := false
	for _, fn := range out.Funcs {
		if strings.HasPrefix(fn.Name, "add") {
			hasAdd = true
		}
	}
	if !hasAdd {
		t.Fatalf("add was removed although the sum needs it:\n%s", text)
	}

	r, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatalf("feature-removed program fails: %v\n%s", err, text)
	}
	// The sum printf must still print 55; the prod printf (not in the
	// forward slice of prod=1? it is — it uses prod) is removed.
	found := false
	for _, o := range r.Output {
		if strings.TrimSpace(o) == "55" {
			found = true
		}
		if strings.TrimSpace(o) == "3628800" {
			t.Errorf("product output survived feature removal: %v", r.Output)
		}
	}
	if !found {
		t.Errorf("sum output missing: %v", r.Output)
	}
}

// TestFeatureRemovalKeepsUnrelatedCode removes a feature that shares no
// code with the rest: equivalent to deleting it.
func TestFeatureRemovalKeepsUnrelatedCode(t *testing.T) {
	src := `
int a; int b;
int main() {
  a = 1;
  b = 2;
  a = a + 1;
  printf("%d", a);
  printf("%d", b);
  return 0;
}
`
	prog := lang.MustParse(src)
	g := sdg.MustBuild(prog)
	res, err := Remove(g, ForwardCriterion(g, "main", "b = 2"))
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	out, err := emit.Program(g, res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	r, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Output) != 1 || r.Output[0] != "2" {
		t.Errorf("output = %v, want [2] (the a-printf only)", r.Output)
	}
}

func TestRemoveEverythingFails(t *testing.T) {
	src := `
int main() {
  printf("%d", 1);
  return 0;
}
`
	g := sdg.MustBuild(lang.MustParse(src))
	// Forward slice from main's entry covers the whole program.
	entry := g.Procs[g.ProcByName["main"]].Entry
	if _, err := Remove(g, []sdg.VertexID{entry}); err == nil {
		t.Error("want error when the feature is the whole program")
	}
}

func TestEmptyCriterion(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig16Src))
	if _, err := Remove(g, nil); err == nil {
		t.Error("want error for empty criterion")
	}
}

// TestFeatureRemovalSpecializesInterfaces: tally loses the product-related
// dependences; the result must still satisfy Cor. 3.19.
func TestFeatureRemovalSpecializesInterfaces(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig16Src))
	res, err := Remove(g, ForwardCriterion(g, "main", "prod = 1"))
	if err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := core.CheckNoMismatches(res.R); err != nil {
		t.Errorf("mismatch in feature-removal result: %v", err)
	}
}
