package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"

	"specslice/internal/cluster"
	"specslice/internal/server"
)

// RunRouted is RunInProcess through the sharded topology: it boots an
// in-process cluster (a router fronting `shards` slicing servers, real
// HTTP between them), runs the schedule against the router, and augments
// the report with the routed-mode fields — the shard count, the per-shard
// forward distribution, and a name suffix so direct and routed rows of
// the same scenario coexist in BENCH_engine.json.
func RunRouted(sched *Schedule, shards int, opts Options) (*Report, error) {
	scfg := server.Config{}
	if sched.Scenario.CacheEntries > 0 {
		scfg.CacheMaxEntries = sched.Scenario.CacheEntries
	}
	lc, err := cluster.StartLocal(shards, scfg, cluster.Config{})
	if err != nil {
		return nil, err
	}
	defer lc.Close()

	rep, err := Run(lc.URL(), sched, opts)
	if err != nil {
		return nil, err
	}
	rep.Name = fmt.Sprintf("%s_routed_%d", sched.Scenario.Name, shards)
	rep.Shards = shards
	routed, err := fetchShardRouted(lc.URL())
	if err != nil {
		return nil, err
	}
	rep.ShardRouted = routed
	return rep, nil
}

// fetchShardRouted reads the per-shard forward counts from the router's
// shards stats block.
func fetchShardRouted(baseURL string) ([]int64, error) {
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: router stats status %d", resp.StatusCode)
	}
	var st cluster.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	out := make([]int64, 0, len(st.Shards))
	for _, sh := range st.Shards {
		out = append(out, sh.Routed)
	}
	return out, nil
}
