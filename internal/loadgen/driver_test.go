package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"specslice/internal/server"
)

// TestMixedLoadCacheInvariants is the harness acceptance test (run under
// -race): a balanced schedule against a real server over HTTP, asserting
// the cache-stats identities balance under concurrent reads, edits, and
// dedup — exactly the accounting this PR's bugfixes repaired.
func TestMixedLoadCacheInvariants(t *testing.T) {
	sc, err := ScenarioByName("balanced")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(sc, 150, 2*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}

	s, err := server.New(server.Config{CacheMaxEntries: sc.CacheEntries})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()

	rep, err := Run(ts.URL, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors — every scheduled criterion must resolve", rep.Errors)
	}
	if rep.Ops+rep.Shed != int64(len(sched.Ops)) {
		t.Errorf("ops %d + shed %d != scheduled %d", rep.Ops, rep.Shed, len(sched.Ops))
	}
	if rep.Ops == 0 || rep.AchievedOpsPerSec <= 0 {
		t.Fatalf("no completed ops: %+v", rep)
	}
	if rep.P50NS <= 0 || rep.P50NS > rep.P95NS || rep.P95NS > rep.P99NS || rep.P99NS > rep.P999NS {
		t.Errorf("quantiles not positive and monotone: p50=%d p95=%d p99=%d p999=%d",
			rep.P50NS, rep.P95NS, rep.P99NS, rep.P999NS)
	}

	// The fresh server saw only this run, so absolute counters are the
	// run's deltas and the cache identities must balance exactly.
	client := ts.Client()
	st, err := fetchStats(client, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	c := st.Cache
	if c.Hits+c.Misses != rep.Ops {
		t.Errorf("hits %d + misses %d != %d completed ops", c.Hits, c.Misses, rep.Ops)
	}
	if c.Builds+c.BuildErrors+c.Deduped != c.Misses {
		t.Errorf("builds %d + errors %d + deduped %d != misses %d",
			c.Builds, c.BuildErrors, c.Deduped, c.Misses)
	}
	if c.Advances+c.ColdBuilds+c.DiskHits != c.Builds {
		t.Errorf("advances %d + cold %d + disk %d != builds %d",
			c.Advances, c.ColdBuilds, c.DiskHits, c.Builds)
	}
	if c.BuildErrors != 0 {
		t.Errorf("%d build errors", c.BuildErrors)
	}
	if c.InFlight != 0 {
		t.Errorf("in-flight builds = %d after drain", c.InFlight)
	}
	// A balanced mix must exercise every interesting path: warm hits from
	// re-reads and version-chain advances from the edit stream.
	if c.Hits == 0 {
		t.Error("no cache hits in a 50% read mix")
	}
	if c.Advances == 0 {
		t.Error("no version-chain advances from the edit stream")
	}
	// The report's cache delta is those same counters (fresh server).
	if rep.Cache.Hits != c.Hits || rep.Cache.Misses != c.Misses ||
		rep.Cache.Advances != c.Advances || rep.Cache.DiskHits != c.DiskHits {
		t.Errorf("report delta %+v does not match server counters %+v", rep.Cache, c)
	}
}

// TestRunExcludesShedFromQuantiles: a server-shed 429 is a near-instant
// refusal, not service — recording it would deflate the reported tail and
// break comparability between routed (shedding) and direct rows. Against
// a server that sheds everything, the quantiles must stay empty while
// every op is counted as server_shed, none as an error.
func TestRunExcludesShedFromQuantiles(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/slice", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"shedding"}`)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"uptime_ns":1,"cache":{},"batches":0,"requests":0,"failed":0,"phases":{},"build":{},"builds_timed":0,"response_encode_errors":0}`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	sc, err := ScenarioByName("read_heavy")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(sc, 100, 500*time.Millisecond, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ts.URL, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if rep.Errors != 0 {
		t.Errorf("%d errors — shedding is availability, not breakage", rep.Errors)
	}
	if rep.ServerShed != rep.Ops {
		t.Errorf("server_shed = %d, want every one of %d ops", rep.ServerShed, rep.Ops)
	}
	if rep.P50NS != 0 || rep.P999NS != 0 {
		t.Errorf("shed responses leaked into the latency quantiles: p50=%d p999=%d", rep.P50NS, rep.P999NS)
	}
}

// TestRunInProcessSmoke: the standalone path used by `specslice bench` and
// the BENCH workloads block — boots its own server, runs, and shuts down.
func TestRunInProcessSmoke(t *testing.T) {
	sc, err := ScenarioByName("read_heavy")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(sc, 100, time.Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunInProcess(sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "read_heavy" || rep.Seed != 11 {
		t.Errorf("report identity = %q seed %d", rep.Name, rep.Seed)
	}
	if rep.Errors != 0 || rep.Ops == 0 {
		t.Errorf("errors=%d ops=%d", rep.Errors, rep.Ops)
	}
	if rep.Cache.Hits == 0 {
		t.Error("read-heavy run produced no cache hits")
	}
}
