package loadgen

import (
	"reflect"
	"testing"
	"time"
)

func TestScenarioRegistry(t *testing.T) {
	for _, name := range []string{"read_heavy", "write_heavy", "balanced"} {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Name != name || sc.Programs < 1 || sc.DefaultRate <= 0 {
			t.Errorf("%s: malformed registry entry %+v", name, sc)
		}
	}
	if _, err := ScenarioByName("chaos_monkey"); err == nil {
		t.Error("unknown scenario did not error")
	}
}

// TestBuildScheduleDeterminism: a schedule is a pure function of
// (scenario, rate, duration, seed) — CI compares runs across commits, so
// the same arguments must replay the identical op sequence, sources and
// all.
func TestBuildScheduleDeterminism(t *testing.T) {
	sc, err := ScenarioByName("balanced")
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildSchedule(sc, 80, 2*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchedule(sc, 80, 2*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Sources, b.Sources) {
		t.Error("equal seeds generated different sources")
	}
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Error("equal seeds generated different op sequences")
	}
	c, err := BuildSchedule(sc, 80, 2*time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Error("different seeds replayed the same schedule")
	}
}

func TestBuildScheduleShape(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			const rate, dur = 60, 2 * time.Second
			s, err := BuildSchedule(sc, rate, dur, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(s.Sources) < sc.Programs {
				t.Fatalf("%d sources for a %d-program corpus", len(s.Sources), sc.Programs)
			}
			var writes int
			var prev time.Duration
			for i, op := range s.Ops {
				if op.At < prev || op.At >= dur {
					t.Fatalf("op %d at %v out of order or past duration %v", i, op.At, dur)
				}
				prev = op.At
				if op.Program < 0 || op.Program >= len(s.Sources) {
					t.Fatalf("op %d references source %d of %d", i, op.Program, len(s.Sources))
				}
				if len(op.Criteria) < 1 || len(op.Criteria) > 2 {
					t.Fatalf("op %d has %d criteria", i, len(op.Criteria))
				}
				if op.Write {
					writes++
				}
			}
			// Poisson arrivals at the target rate: the op count concentrates
			// around rate·duration; 3x slack keeps the check un-flaky while
			// still catching a broken arrival process.
			mean := rate * dur.Seconds()
			if n := float64(len(s.Ops)); n < mean/3 || n > mean*3 {
				t.Errorf("%d ops for a mean of %.0f", len(s.Ops), mean)
			}
			// The write mix tracks 1-ReadFraction (writes can come in a
			// little under it: a no-op editor step degrades to a read).
			wantWrites := (1 - sc.ReadFraction) * float64(len(s.Ops))
			if float64(writes) > wantWrites*1.5+10 {
				t.Errorf("%d writes, want about %.0f", writes, wantWrites)
			}
			if sc.ReadFraction < 0.9 && writes == 0 {
				t.Errorf("no writes in a %s schedule", sc.Name)
			}
		})
	}
}
