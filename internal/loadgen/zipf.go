// Package loadgen is the tail-latency workload harness: named scenarios
// (read_heavy, write_heavy, balanced) drive the real POST /v1/slice HTTP
// path with an open-loop, target-throughput schedule and record per-request
// service time in a fixed-bucket log-spaced histogram (p50/p95/p99/p999).
//
// Everything the harness decides — which program a request targets, which
// criteria it slices, when each edit lands — is derived from one seed, so a
// run's schedule replays identically and CI numbers stay comparable across
// machines. Program and criterion popularity are Zipfian: a hot head keeps
// the server's LRU warm while the long tail forces misses and evictions,
// which is exactly where the latency tail the mean ns/op numbers in
// BENCH_engine.json cannot see lives (summary-edge fixpoint joins, eviction
// storms, write-behind backpressure).
package loadgen

import (
	"math"
	"math/rand"
)

// Zipf draws ranks in [0, n) with P(rank) proportional to 1/(rank+1)^theta,
// rank 0 most popular — the YCSB ZipfianGenerator construction after Gray
// et al., "Quickly Generating Billion-Record Synthetic Databases". Unlike
// math/rand's Zipf it accepts the conventional skew range theta in (0, 1)
// (YCSB's default is 0.99). Deterministic given its seed; not safe for
// concurrent use (the harness draws schedules single-threaded).
type Zipf struct {
	n     int
	theta float64
	// alpha, zetan, and eta are the precomputed constants of the rejection-
	// free inverse-CDF approximation; half is zeta(2)'s second term.
	alpha, zetan, eta, half float64
	rng                     *rand.Rand
}

// NewZipf returns a Zipfian generator over n ranks with skew theta,
// seeded with seed. It panics on n < 1 or theta outside (0, 1).
func NewZipf(n int, theta float64, seed int64) *Zipf {
	if n < 1 {
		panic("loadgen: NewZipf needs n >= 1")
	}
	if theta <= 0 || theta >= 1 {
		panic("loadgen: NewZipf needs theta in (0, 1)")
	}
	z := &Zipf{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.half = math.Pow(0.5, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - (1+z.half)/z.zetan)
	return z
}

// zeta returns the generalized harmonic number H_{n,theta}.
func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next rank.
func (z *Zipf) Next() int {
	if z.n == 1 {
		return 0
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}

// TopShare returns the probability mass of rank 0 — 1/zeta(n, theta) — for
// tests and for sizing cache budgets against a scenario's hot head.
func (z *Zipf) TopShare() float64 { return 1 / z.zetan }
