package loadgen

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram with log-spaced bucket
// boundaries, safe for concurrent Record. Memory is constant (one counter
// per bucket, no per-sample storage), so an open-loop driver can record
// millions of requests without the measurement perturbing the workload.
//
// Bucket i covers (bound[i-1], bound[i]] with bound[i] = min·growth^i;
// values at or below min land in bucket 0 and values above max in a
// dedicated overflow bucket. Quantile returns the upper bound of the bucket
// containing the requested rank, so reported quantiles are conservative
// (never under the true value) with relative error bounded by the growth
// factor — ~12% at the default 20 buckets per decade.
type Histogram struct {
	bounds []time.Duration // ascending upper bounds; len = buckets
	counts []atomic.Int64  // len(bounds)+1; last is overflow
	total  atomic.Int64
}

// NewHistogram returns a histogram covering [min, max] with perDecade
// log-spaced buckets per factor of 10. It panics on a non-positive range
// or ordering.
func NewHistogram(min, max time.Duration, perDecade int) *Histogram {
	if min <= 0 || max <= min || perDecade < 1 {
		panic(fmt.Sprintf("loadgen: bad histogram shape [%v, %v] x%d", min, max, perDecade))
	}
	growth := math.Pow(10, 1/float64(perDecade))
	var bounds []time.Duration
	b := float64(min)
	for time.Duration(b) < max {
		bounds = append(bounds, time.Duration(b))
		b *= growth
	}
	bounds = append(bounds, max)
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// NewLatencyHistogram returns the harness's standard shape: 1µs to 60s at
// 20 buckets per decade (~135 buckets, ~12% worst-case quantile error) —
// wide enough that a stalled disk-tier fallback still lands in a bucket
// instead of the overflow bin.
func NewLatencyHistogram() *Histogram {
	return NewHistogram(time.Microsecond, 60*time.Second, 20)
}

// Record adds one observation. Concurrency-safe.
func (h *Histogram) Record(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
	h.counts[i].Add(1) // i == len(bounds) is the overflow bucket
	h.total.Add(1)
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile returns the upper bound of the bucket holding the q-quantile
// (0 < q <= 1) of the recorded observations, or 0 when empty. Overflowed
// observations report the histogram's max bound — by then the number is
// "off the scale", which for a latency SLO reads the right way. A q
// outside (0, 1] panics, like a bad histogram shape: there is no
// conservative answer to return for it.
func (h *Histogram) Quantile(q float64) time.Duration {
	if !(q > 0 && q <= 1) { // the negation also rejects NaN
		panic(fmt.Sprintf("loadgen: quantile %v outside (0, 1]", q))
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	// The q-quantile's rank is the smallest integer covering a q fraction
	// of the samples: ceil(q·total). Truncating instead would floor the
	// rank — p99 of 10 samples would read the 9th-ranked bucket and
	// under-report the tail, breaking the "never under the true value"
	// guarantee above.
	rank := int64(math.Ceil(q * float64(total)))
	if rank > total { // float round-up past the top at q == 1
		rank = total
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			return h.bounds[i]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// Overflow returns how many observations exceeded the histogram's range.
func (h *Histogram) Overflow() int64 {
	return h.counts[len(h.counts)-1].Load()
}

// Bounds returns the bucket upper bounds (tests assert the log spacing).
func (h *Histogram) Bounds() []time.Duration {
	out := make([]time.Duration, len(h.bounds))
	copy(out, h.bounds)
	return out
}
