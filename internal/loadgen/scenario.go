package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"specslice/internal/lang"
	"specslice/internal/server"
	"specslice/internal/workload"
)

// Scenario is one named workload mix. The fields are data, so tests can
// construct custom mixes; the shipped registry (Scenarios) covers the
// YCSB-style read_heavy / write_heavy / balanced trio.
type Scenario struct {
	Name string
	// ReadFraction is the probability an op re-slices a family's current
	// version (warm path); the remainder are edits — workload.NewEditor
	// steps producing a new version whose request drives the server's
	// version-chain Advance (or a cold build when the edit changed the
	// procedure set and thus the family).
	ReadFraction float64
	// Programs is the corpus size: independently generated program
	// families whose popularity is Zipfian with ProgramTheta. A corpus
	// larger than CacheEntries makes the tail force LRU misses and
	// evictions while the hot head stays warm.
	Programs int
	// CacheEntries is the engine-cache entry budget in-process runs give
	// the server (0 = the server default); read_heavy sets it below
	// Programs deliberately.
	CacheEntries int
	// ProgramTheta and CriterionTheta are the Zipfian skews for program
	// and per-version criterion choice (YCSB's default skew is 0.99).
	ProgramTheta, CriterionTheta float64
	// MonoFraction of criteria ask for monovariant slices; the rest are
	// polyvariant.
	MonoFraction float64
	// DefaultRate is the target throughput (ops/sec) used when the caller
	// does not override it.
	DefaultRate float64
}

// Scenarios is the registry of named workload mixes.
func Scenarios() []Scenario {
	return []Scenario{
		{
			// Warm slices on popular programs: the hot head lives in the
			// LRU, the long tail (24 families vs. 8 cache entries) forces
			// misses and evictions on every excursion down the popularity
			// curve.
			Name:         "read_heavy",
			ReadFraction: 0.95,
			Programs:     24,
			CacheEntries: 8,
			ProgramTheta: 0.99, CriterionTheta: 0.8,
			MonoFraction: 0.15,
			DefaultRate:  400,
		},
		{
			// Edit streams: most ops advance a version chain, piling new
			// cache entries until the LRU churns.
			Name:         "write_heavy",
			ReadFraction: 0.10,
			Programs:     6,
			CacheEntries: 64,
			ProgramTheta: 0.99, CriterionTheta: 0.8,
			MonoFraction: 0.15,
			DefaultRate:  120,
		},
		{
			Name:         "balanced",
			ReadFraction: 0.50,
			Programs:     12,
			CacheEntries: 32,
			ProgramTheta: 0.99, CriterionTheta: 0.8,
			MonoFraction: 0.15,
			DefaultRate:  250,
		},
	}
}

// ScenarioByName returns the named registry entry.
func ScenarioByName(name string) (Scenario, error) {
	var names []string
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("loadgen: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
}

// Op is one scheduled request. At is the op's offset from the run start:
// open-loop, the schedule fixes arrival times up front and the driver holds
// to them regardless of response times, so a slow server accumulates
// backlog (visible as shed ops and tail latency) instead of silently
// slowing the arrival process the way a closed loop would.
type Op struct {
	At time.Duration
	// Program indexes Schedule.Sources.
	Program int
	// Write marks ops that send a version the server has not seen — the
	// edit stream driving Advance.
	Write    bool
	Criteria []server.CriterionRequest
}

// Schedule is a fully precomputed run: program version sources plus the
// timed op sequence. Building one is deterministic in (scenario, rate,
// duration, seed) — the determinism test replays a build and requires
// identical output.
type Schedule struct {
	Scenario Scenario
	Seed     int64
	// Rate is the target throughput in ops/sec; Duration the scheduled
	// length of the run (Ops arrivals all land inside it).
	Rate     float64
	Duration time.Duration
	// Sources holds every distinct program version the run can send;
	// ops reference them by index so a version edited ten times is stored
	// once.
	Sources []string
	Ops     []Op
}

// BuildSchedule precomputes a run: generates the corpus, walks the seeded
// edit streams, and lays out Poisson arrivals at the target rate. All
// randomness comes from seed, so equal arguments build equal schedules.
func BuildSchedule(sc Scenario, rate float64, duration time.Duration, seed int64) (*Schedule, error) {
	if rate <= 0 {
		rate = sc.DefaultRate
	}
	if rate <= 0 || duration <= 0 {
		return nil, fmt.Errorf("loadgen: need a positive rate and duration (rate %v, duration %v)", rate, duration)
	}
	if sc.Programs < 1 {
		return nil, fmt.Errorf("loadgen: scenario %q has no programs", sc.Name)
	}
	s := &Schedule{Scenario: sc, Seed: seed, Rate: rate, Duration: duration}
	rng := rand.New(rand.NewSource(seed))
	progZipf := NewZipf(sc.Programs, sc.ProgramTheta, rng.Int63())
	critSeed := rng.Int63()

	// The corpus: one generated family per popularity rank, sized in the
	// Siemens-suite range so cold builds cost single-digit milliseconds —
	// enough to matter at p99, not enough to starve the run.
	type family struct {
		editor  *workload.Editor
		version int // index into s.Sources of the current version
		pool    []server.CriterionRequest
		zipf    *Zipf
	}
	fams := make([]*family, sc.Programs)
	for i := range fams {
		cfg := workload.BenchConfig{
			Name:           fmt.Sprintf("%s-f%02d", sc.Name, i),
			Procs:          5 + i%6,
			TargetVertices: 140 + 25*(i%8),
			CallSites:      10 + 3*(i%5),
			Slices:         4,
			Recursive:      i%4 == 0,
			Seed:           seed + int64(1000*i) + 7,
		}
		prog, err := lang.Parse(workload.GenerateSource(cfg))
		if err != nil {
			return nil, fmt.Errorf("loadgen: corpus family %d does not parse: %v", i, err)
		}
		ed := workload.NewEditor(prog, seed+int64(i)*31+11)
		src := ed.Source()
		pool, err := criterionPool(src)
		if err != nil {
			return nil, fmt.Errorf("loadgen: corpus family %d: %v", i, err)
		}
		s.Sources = append(s.Sources, src)
		fams[i] = &family{
			editor:  ed,
			version: len(s.Sources) - 1,
			pool:    pool,
			zipf:    NewZipf(len(pool), sc.CriterionTheta, critSeed+int64(i)),
		}
	}

	// Poisson arrivals: exponential inter-arrival gaps with mean 1/rate,
	// truncated at duration. The op count is therefore itself seeded —
	// ~rate·duration on average.
	var at time.Duration
	for {
		at += time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if at >= duration {
			break
		}
		f := progZipf.Next()
		fam := fams[f]
		op := Op{At: at, Program: fam.version}
		if rng.Float64() >= sc.ReadFraction {
			// Edit: step the family's editor to a new version. A "noop"
			// step (degenerate program) re-sends the current version —
			// harmless, it just becomes a warm read.
			fam.editor.Step()
			src := fam.editor.Source()
			if src != s.Sources[fam.version] {
				s.Sources = append(s.Sources, src)
				fam.version = len(s.Sources) - 1
				pool, err := criterionPool(src)
				if err != nil {
					return nil, fmt.Errorf("loadgen: family %d after %q: %v", f, fam.editor.Ops[len(fam.editor.Ops)-1], err)
				}
				fam.pool = pool
				if len(pool) != fam.zipf.n {
					fam.zipf = NewZipf(len(pool), sc.CriterionTheta, critSeed+int64(f)^int64(fam.version)<<20)
				}
				op.Program = fam.version
				op.Write = true
			}
		}
		// 1–2 criteria per request, Zipf-chosen from the version's pool;
		// mode mixed by MonoFraction.
		nCrit := 1
		if rng.Float64() < 0.3 {
			nCrit = 2
		}
		for c := 0; c < nCrit; c++ {
			crit := fam.pool[fam.zipf.Next()]
			if rng.Float64() < sc.MonoFraction {
				crit.Mode = "mono"
			}
			op.Criteria = append(op.Criteria, crit)
		}
		s.Ops = append(s.Ops, op)
	}
	if len(s.Ops) == 0 {
		return nil, fmt.Errorf("loadgen: schedule is empty (rate %v over %v)", rate, duration)
	}
	return s, nil
}

// criterionPool derives the version's criterion choices from its normalized
// source: the always-resolvable printf criteria first (the Zipfian hot
// head), then up to 16 line criteria on assignment statements (the long
// tail). Only procedures reachable from main through direct calls
// contribute lines — the generator and editor both produce procedures main
// never calls, and a criterion there is an "unreachable from main" error,
// which would hollow out the CI gate on errors==0. Every entry resolves on
// this exact version.
func criterionPool(normalizedSource string) ([]server.CriterionRequest, error) {
	prog, err := lang.Parse(normalizedSource)
	if err != nil {
		return nil, fmt.Errorf("version does not parse: %v", err)
	}
	reach := reachableProcs(prog)
	var lines []int
	for _, f := range prog.Funcs {
		if !reach[f.Name] {
			continue
		}
		lang.WalkStmts(f.Body, func(s lang.Stmt) {
			if _, ok := s.(*lang.AssignStmt); ok {
				lines = append(lines, s.Base().Pos.Line)
			}
		})
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("no assignment lines reachable from main")
	}
	sort.Ints(lines)
	lines = dedupInts(lines)
	pool := []server.CriterionRequest{
		{Kind: "printf", Proc: "main"},
		{Kind: "printf"},
	}
	// Sample at most 16 lines, evenly spaced so the pool spans every
	// reachable procedure instead of clustering at the top of the file.
	const maxLines = 16
	step := 1
	if len(lines) > maxLines {
		step = len(lines) / maxLines
	}
	for i := 0; i < len(lines) && len(pool) < 2+maxLines; i += step {
		pool = append(pool, server.CriterionRequest{Kind: "line", Line: lines[i]})
	}
	return pool, nil
}

// reachableProcs returns the procedures reachable from main through direct
// call statements — a safe subset of the engine's interprocedural
// reachability (indirect fnptr calls only ever add procedures).
func reachableProcs(prog *lang.Program) map[string]bool {
	callees := map[string][]string{}
	for _, f := range prog.Funcs {
		lang.WalkStmts(f.Body, func(s lang.Stmt) {
			if cs, ok := s.(*lang.CallStmt); ok && !cs.Indirect {
				callees[f.Name] = append(callees[f.Name], cs.Callee)
			}
		})
	}
	reach := map[string]bool{"main": true}
	work := []string{"main"}
	for len(work) > 0 {
		p := work[0]
		work = work[1:]
		for _, c := range callees[p] {
			if !reach[c] {
				reach[c] = true
				work = append(work, c)
			}
		}
	}
	return reach
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// sortedScenarioNames returns the registry names, for usage messages.
func sortedScenarioNames() []string {
	var names []string
	for _, sc := range Scenarios() {
		names = append(names, sc.Name)
	}
	sort.Strings(names)
	return names
}
