package loadgen

import (
	"math"
	"testing"
	"time"
)

func TestHistogramBounds(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Millisecond, 10)
	bounds := h.Bounds()
	if bounds[0] != time.Microsecond {
		t.Errorf("first bound = %v, want 1µs", bounds[0])
	}
	if last := bounds[len(bounds)-1]; last != time.Millisecond {
		t.Errorf("last bound = %v, want 1ms", last)
	}
	// Log spacing: successive bounds grow by 10^(1/perDecade), so three
	// decades at 10/decade is ~31 buckets and each ratio is ~1.259.
	want := math.Pow(10, 0.1)
	for i := 1; i < len(bounds)-1; i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, bounds[i], bounds[i-1])
		}
		ratio := float64(bounds[i]) / float64(bounds[i-1])
		if math.Abs(ratio-want) > 0.01 {
			t.Errorf("bucket %d growth = %.4f, want %.4f", i, ratio, want)
		}
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(time.Microsecond, time.Second, 20)
	// A value exactly on a bound lands in that bound's bucket (bounds are
	// inclusive upper ends), so recording a bound reports it exactly.
	h.Record(time.Microsecond)
	if q := h.Quantile(1); q != time.Microsecond {
		t.Errorf("value on the min bound reports %v, want 1µs", q)
	}
	// Below-range values are clamped into bucket 0, not lost.
	h.Record(0)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	// Above-range values land in the overflow bucket and quantiles report
	// the max bound — "off the scale", never a made-up number.
	h.Record(2 * time.Second)
	if h.Overflow() != 1 {
		t.Errorf("overflow = %d, want 1", h.Overflow())
	}
	if q := h.Quantile(1); q != time.Second {
		t.Errorf("overflowed max quantile = %v, want the 1s max bound", q)
	}
}

func TestHistogramQuantilesKnownDistribution(t *testing.T) {
	h := NewLatencyHistogram()
	// 1000 observations at 1µs, 2µs, ..., 1000µs: the true q-quantile is
	// q·1000 µs. The histogram must never under-report and may over-report
	// by at most one bucket (growth 10^(1/20) ≈ 12.2%).
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	growth := math.Pow(10, 1.0/20)
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want {
			t.Errorf("q%.3f = %v under-reports the true %v", tc.q, got, tc.want)
		}
		if lim := time.Duration(float64(tc.want) * growth * growth); got > lim {
			t.Errorf("q%.3f = %v over-reports the true %v by more than a bucket (limit %v)", tc.q, got, tc.want, lim)
		}
	}
	// Quantiles are monotone in q.
	prev := time.Duration(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		if v := h.Quantile(q); v < prev {
			t.Errorf("quantiles not monotone: q%.3f = %v < %v", q, v, prev)
		} else {
			prev = v
		}
	}
}

// TestHistogramQuantileCeilRank is the regression test for the rank
// truncation bug: int64(q*total) floors the rank, so p99 of 10 samples
// read the 9th-ranked bucket — under the true tail, violating the "never
// under the true value" contract. The rank must be ceil(q·total).
func TestHistogramQuantileCeilRank(t *testing.T) {
	h := NewLatencyHistogram()
	// 10 samples spread over distinct buckets: 1ms, 2ms, ..., 10ms.
	for i := 1; i <= 10; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	// p99 of 10 samples is the 10th-ranked sample (ceil(9.9) = 10): the
	// report must cover the 10ms maximum, not the floored 9th rank.
	if got := h.Quantile(0.99); got < 10*time.Millisecond {
		t.Errorf("p99 of 10 samples = %v, under-reports the 10ms max (rank floored)", got)
	}
	// p95 → rank ceil(9.5) = 10 as well.
	if got := h.Quantile(0.95); got < 10*time.Millisecond {
		t.Errorf("p95 of 10 samples = %v, under-reports the 10ms max", got)
	}
	// p50 of 10 → rank ceil(5) = 5: exactly the 5th sample's bucket, and
	// never the 6th — ceil must not overshoot exact ranks.
	if got := h.Quantile(0.50); got < 5*time.Millisecond || got >= 6*time.Millisecond {
		t.Errorf("p50 of 10 samples = %v, want the 5ms sample's bucket", got)
	}
	// Two samples: the q just above 1/2 must report the larger one.
	h2 := NewLatencyHistogram()
	h2.Record(time.Millisecond)
	h2.Record(10 * time.Millisecond)
	if got := h2.Quantile(0.51); got < 10*time.Millisecond {
		t.Errorf("q0.51 of {1ms, 10ms} = %v, want the 10ms bucket", got)
	}
	// One sample: every quantile is that sample.
	h3 := NewLatencyHistogram()
	h3.Record(3 * time.Millisecond)
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := h3.Quantile(q); got < 3*time.Millisecond {
			t.Errorf("q%v of a single 3ms sample = %v", q, got)
		}
	}
}

// TestHistogramQuantileRejectsBadQ: q outside (0, 1] has no conservative
// answer and must panic like a malformed histogram shape.
func TestHistogramQuantileRejectsBadQ(t *testing.T) {
	h := NewLatencyHistogram()
	h.Record(time.Millisecond)
	for _, q := range []float64{0, -0.5, 1.0001, 2, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			h.Quantile(q)
		}()
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewLatencyHistogram()
	if q := h.Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}
