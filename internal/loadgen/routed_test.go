package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRunRoutedReadHeavy is the routed-mode acceptance test: a read_heavy
// schedule through an in-process cluster must complete with zero errors,
// spread forwards over every shard, and keep the report's accounting
// identities intact.
func TestRunRoutedReadHeavy(t *testing.T) {
	sc, err := ScenarioByName("read_heavy")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := BuildSchedule(sc, 120, 2*time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	const shards = 3
	rep, err := RunRouted(sched, shards, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Name != "read_heavy_routed_3" || rep.Shards != shards {
		t.Errorf("report identity = %q shards %d", rep.Name, rep.Shards)
	}
	if rep.Errors != 0 {
		t.Errorf("%d request errors through the router — every scheduled criterion must resolve", rep.Errors)
	}
	if rep.Ops == 0 {
		t.Fatal("no completed ops")
	}
	if rep.Ops+rep.Shed != int64(len(sched.Ops)) {
		t.Errorf("ops %d + shed %d != scheduled %d", rep.Ops, rep.Shed, len(sched.Ops))
	}
	if len(rep.ShardRouted) != shards {
		t.Fatalf("shard_routed has %d entries, want %d", len(rep.ShardRouted), shards)
	}
	var routed int64
	for i, n := range rep.ShardRouted {
		if n == 0 {
			t.Errorf("shard %d received no forwards — the family distribution collapsed", i)
		}
		routed += n
	}
	// Every completed non-shed op was forwarded at least once (a 429
	// never reaches a shard; singleflight waits and kill-retries can add
	// forwards, never remove them).
	if routed < rep.Ops-rep.ServerShed {
		t.Errorf("forwards %d < completed ops %d - sheds %d", routed, rep.Ops, rep.ServerShed)
	}
	// Aggregated cluster cache movement flows through the same stats path
	// a single server serves, so the delta must balance over the requests
	// that reached a shard.
	if rep.Cache.Hits+rep.Cache.Misses != rep.Ops-rep.ServerShed {
		t.Errorf("cache delta hits %d + misses %d != ops %d - sheds %d",
			rep.Cache.Hits, rep.Cache.Misses, rep.Ops, rep.ServerShed)
	}
	if rep.Cache.Hits == 0 {
		t.Error("read-heavy routed run produced no cache hits")
	}
	if rep.P50NS <= 0 || rep.P50NS > rep.P99NS || rep.P99NS > rep.P999NS {
		t.Errorf("quantiles not positive and monotone: p50=%d p99=%d p999=%d", rep.P50NS, rep.P99NS, rep.P999NS)
	}
}

// TestDoSliceCountsServerShed: 429 from the admission layer is a
// server_shed, never an error — the CI errors == 0 gate must not conflate
// intentional load-shedding with breakage.
func TestDoSliceCountsServerShed(t *testing.T) {
	var n int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/stats" {
			fmt.Fprint(w, `{"cache":{}}`)
			return
		}
		n++
		switch {
		case n%3 == 0: // shed
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"shard over in-flight depth"}`)
		case n%5 == 0: // hard failure
			w.WriteHeader(http.StatusInternalServerError)
		default:
			fmt.Fprint(w, `{"program_key":"k","results":[],"stats":{}}`)
		}
	}))
	defer ts.Close()

	sched := &Schedule{
		Scenario: Scenario{Name: "shed_test"},
		Rate:     1000,
		Duration: time.Second,
		Sources:  []string{"int main() { return 0; }"},
	}
	const ops = 30
	for i := 0; i < ops; i++ {
		sched.Ops = append(sched.Ops, Op{At: time.Duration(i) * time.Millisecond, Program: 0})
	}
	rep, err := Run(ts.URL, sched, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ops != ops {
		t.Fatalf("ops = %d, want %d", rep.Ops, ops)
	}
	// Of 30 requests: every 3rd is shed (10), every remaining 5th is a
	// 500 (n in {5, 10, 20, 25} — 15 and 30 are already shed), the rest
	// succeed.
	if rep.ServerShed != 10 {
		t.Errorf("server_shed = %d, want 10", rep.ServerShed)
	}
	if rep.Errors != 4 {
		t.Errorf("errors = %d, want 4 (the 500s, not the 429s)", rep.Errors)
	}
}
