package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"specslice/internal/server"
)

// Options tunes a run; the zero value takes the documented defaults.
type Options struct {
	// MaxInFlight bounds concurrent requests (default 256). An arrival
	// that finds every slot busy is shed and counted, never sent — the
	// open-loop schedule does not stretch to accommodate a slow server.
	MaxInFlight int
	// RequestTimeout bounds one HTTP request (default 30s); a timeout
	// counts as an error with its elapsed time still recorded, so stalls
	// surface in the tail instead of vanishing.
	RequestTimeout time.Duration
	// Client overrides the HTTP client (tests); nil builds one sized to
	// MaxInFlight.
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight == 0 {
		o.MaxInFlight = 256
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	return o
}

// CacheDelta is the server engine-cache movement over one run, from
// GET /v1/stats before and after.
type CacheDelta struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Advances int64 `json:"advances"`
	DiskHits int64 `json:"disk_hits"`
}

// Report is one scenario run's result — the workloads entry written to
// BENCH_engine.json and printed by `specslice bench`.
type Report struct {
	Name string `json:"name"`
	Seed int64  `json:"seed"`
	// TargetOpsPerSec is the open-loop schedule's rate; AchievedOpsPerSec
	// is completed requests over the measured wall time. A large gap (or
	// a non-zero Shed) means the server could not keep up.
	TargetOpsPerSec   float64 `json:"target_ops_per_sec"`
	AchievedOpsPerSec float64 `json:"achieved_ops_per_sec"`
	// Ops counts completed requests; Writes the subset that sent a new
	// program version (edit stream).
	Ops    int64 `json:"ops"`
	Writes int64 `json:"writes"`
	// Service-time quantiles from the log-bucket histogram, conservative
	// to one bucket (~12%). Served requests only: server-shed 429s are
	// excluded so routed rows stay comparable with direct ones.
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	// Errors counts failed responses (non-2xx other than 429, transport
	// failures) and per-criterion resolution errors; Shed counts arrivals
	// dropped client-side at the in-flight cap. ServerShed counts 429s —
	// the server's admission layer intentionally refusing load — which
	// are deliberately not Errors: the CI errors == 0 gate must catch
	// breakage, not load-shedding doing its job.
	Errors     int64      `json:"errors"`
	Shed       int64      `json:"shed"`
	ServerShed int64      `json:"server_shed"`
	DurationNS int64      `json:"duration_ns"`
	Cache      CacheDelta `json:"cache"`
	// Shards is the routed-mode shard count (0 = direct single-process
	// run); ShardRouted is the per-shard count of forwards the router
	// sent over this run, in worker order — the balance evidence.
	Shards      int     `json:"shards"`
	ShardRouted []int64 `json:"shard_routed,omitempty"`
}

// Run executes a schedule against the slicing service at baseURL
// (e.g. "http://127.0.0.1:8080"). The arrival process is the schedule's:
// each op fires at its precomputed offset, runs on its own goroutine inside
// the in-flight cap, and records service time (send to fully-read
// response) in the histogram.
func Run(baseURL string, sched *Schedule, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Timeout: opts.RequestTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        opts.MaxInFlight,
				MaxIdleConnsPerHost: opts.MaxInFlight,
			},
		}
	}

	before, err := fetchStats(client, baseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats before run: %w", err)
	}

	hist := NewLatencyHistogram()
	rep := &Report{
		Name:            sched.Scenario.Name,
		Seed:            sched.Seed,
		TargetOpsPerSec: sched.Rate,
	}
	type counters struct {
		ops, writes, errors, serverShed int64
	}
	done := make(chan counters, len(sched.Ops))
	sem := make(chan struct{}, opts.MaxInFlight)
	inFlight := 0

	start := time.Now()
	for _, op := range sched.Ops {
		if d := time.Until(start.Add(op.At)); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			rep.Shed++
			continue
		}
		inFlight++
		go func(op Op) {
			defer func() { <-sem }()
			var c counters
			c.ops = 1
			if op.Write {
				c.writes = 1
			}
			t0 := time.Now()
			errs, shed := doSlice(client, baseURL, sched.Sources[op.Program], op.Criteria)
			// Shed responses are near-instant 429s, not service: recording
			// them would deflate the tail and break comparability between
			// routed and direct rows. Quantiles cover served requests only
			// (errors and timeouts included — stalls must surface).
			if shed == 0 {
				hist.Record(time.Since(t0))
			}
			c.errors = errs
			c.serverShed = shed
			done <- c
		}(op)
	}
	for i := 0; i < inFlight; i++ {
		c := <-done
		rep.Ops += c.ops
		rep.Writes += c.writes
		rep.Errors += c.errors
		rep.ServerShed += c.serverShed
	}
	elapsed := time.Since(start)

	rep.DurationNS = elapsed.Nanoseconds()
	if sec := elapsed.Seconds(); sec > 0 {
		rep.AchievedOpsPerSec = float64(rep.Ops) / sec
	}
	rep.P50NS = hist.Quantile(0.50).Nanoseconds()
	rep.P95NS = hist.Quantile(0.95).Nanoseconds()
	rep.P99NS = hist.Quantile(0.99).Nanoseconds()
	rep.P999NS = hist.Quantile(0.999).Nanoseconds()

	after, err := fetchStats(client, baseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: stats after run: %w", err)
	}
	rep.Cache = CacheDelta{
		Hits:     after.Cache.Hits - before.Cache.Hits,
		Misses:   after.Cache.Misses - before.Cache.Misses,
		Advances: after.Cache.Advances - before.Cache.Advances,
		DiskHits: after.Cache.DiskHits - before.Cache.DiskHits,
	}
	return rep, nil
}

// doSlice posts one batch and returns the number of failures it observed
// (0 on a fully clean response; transport and status failures count 1)
// plus whether the server shed the request. A 429 is the admission layer
// refusing load on purpose — an availability event, not a failure — so it
// counts as serverShed, never as an error.
func doSlice(client *http.Client, baseURL, program string, criteria []server.CriterionRequest) (errs, serverShed int64) {
	body, err := json.Marshal(server.SliceRequest{
		Program:  program,
		Criteria: criteria,
		NoSource: true, // tail measurement, not output consumption
	})
	if err != nil {
		return 1, 0
	}
	resp, err := client.Post(baseURL+"/v1/slice", "application/json", bytes.NewReader(body))
	if err != nil {
		return 1, 0
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return 0, 1
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 1, 0
	}
	var out server.SliceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 1, 0
	}
	for _, r := range out.Results {
		if r.Error != "" {
			errs++
		}
	}
	return errs, 0
}

func fetchStats(client *http.Client, baseURL string) (*server.StatsResponse, error) {
	resp, err := client.Get(baseURL + "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats status %d", resp.StatusCode)
	}
	var st server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RunScenario builds the named scenario's schedule and runs it against
// baseURL. rate <= 0 takes the scenario default.
func RunScenario(name, baseURL string, rate float64, duration time.Duration, seed int64, opts Options) (*Report, error) {
	sc, err := ScenarioByName(name)
	if err != nil {
		return nil, err
	}
	sched, err := BuildSchedule(sc, rate, duration, seed)
	if err != nil {
		return nil, err
	}
	return Run(baseURL, sched, opts)
}

// RunInProcess starts a fresh slicing server on a loopback listener (cache
// sized by the scenario), runs the schedule against it over real HTTP, and
// drains the server before returning — the standalone configuration
// `specslice bench` and the BENCH_engine.json workloads block use.
func RunInProcess(sched *Schedule, opts Options) (*Report, error) {
	cfg := server.Config{}
	if sched.Scenario.CacheEntries > 0 {
		cfg.CacheMaxEntries = sched.Scenario.CacheEntries
	}
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ctx, ln) }()
	rep, runErr := Run("http://"+ln.Addr().String(), sched, opts)
	cancel()
	if err := <-serveErr; runErr == nil && err != nil {
		runErr = err
	}
	if runErr != nil {
		return nil, runErr
	}
	return rep, nil
}
