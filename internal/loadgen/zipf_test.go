package loadgen

import "testing"

func TestZipfDeterminism(t *testing.T) {
	a := NewZipf(100, 0.99, 42)
	b := NewZipf(100, 0.99, 42)
	for i := 0; i < 1000; i++ {
		av, bv := a.Next(), b.Next()
		if av != bv {
			t.Fatalf("draw %d: %d vs %d — equal seeds must replay identically", i, av, bv)
		}
	}
	c := NewZipf(100, 0.99, 43)
	same := true
	d := NewZipf(100, 0.99, 42)
	for i := 0; i < 100; i++ {
		if c.Next() != d.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced the same first 100 draws")
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	const n, draws = 100, 200000
	z := NewZipf(n, 0.99, 7)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= n {
			t.Fatalf("draw out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 is the most popular item and its empirical share tracks the
	// analytic 1/zeta(n, theta).
	for r := 1; r < n; r++ {
		if counts[r] > counts[0] {
			t.Fatalf("rank %d (%d draws) beat rank 0 (%d draws)", r, counts[r], counts[0])
		}
	}
	share := float64(counts[0]) / draws
	want := z.TopShare()
	if share < want*0.8 || share > want*1.2 {
		t.Errorf("rank-0 share = %.4f, want %.4f ±20%%", share, want)
	}
	// The tail is long, not empty: a Zipfian at theta 0.99 still visits
	// most of 100 items in 200k draws.
	visited := 0
	for _, c := range counts {
		if c > 0 {
			visited++
		}
	}
	if visited < n*9/10 {
		t.Errorf("only %d/%d items drawn — tail too thin for a Zipfian", visited, n)
	}
}
