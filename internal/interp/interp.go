// Package interp executes MicroC programs. It is used to validate that
// executable slices preserve the behavior of the original program at the
// slicing criterion (Weiser's correctness condition), and to measure
// executed-statement counts for the paper's wc speed-up experiment (§5).
package interp

import (
	"errors"
	"fmt"
	"strings"

	"specslice/internal/lang"
)

// Options configures a run.
type Options struct {
	// Input is the sequential scanf stream. Exhausting it is an error
	// unless AllowInputExhausted is set (then scanf reads zero).
	Input []int64

	// KeyedInput, when non-nil, overrides Input: each scanf statement reads
	// from its own stream, keyed by the statement's origin ID. This makes
	// input values a function of the source location rather than of read
	// order, so removing one scanf from a slice does not shift the values
	// read by the scanfs that remain — the property needed to compare a
	// slice's behavior against the original program's.
	KeyedInput map[lang.NodeID][]int64

	AllowInputExhausted bool

	// MaxSteps bounds the number of executed statements (default 1e7).
	MaxSteps int64
	// MaxDepth bounds call-stack depth (default 10000).
	MaxDepth int

	// Record selects statements (by origin ID) whose observable values are
	// appended to Result.Values on each execution: printf argument values,
	// the value read by scanf, or the values of the variables used by the
	// statement, in source order.
	Record map[lang.NodeID]bool
}

// Result reports a completed (or failed) run.
type Result struct {
	// Output holds one rendered string per executed printf.
	Output []string
	// Values holds recorded observations per origin statement.
	Values map[lang.NodeID][][]int64
	// Steps is the number of statements executed.
	Steps int64
	// ExecCounts counts executions per origin statement.
	ExecCounts map[lang.NodeID]int64
}

// ErrOutOfFuel is returned when MaxSteps is exceeded.
var ErrOutOfFuel = errors.New("interp: step limit exceeded")

// Run executes prog.main and returns its observable results.
func Run(prog *lang.Program, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 10_000
	}
	in := &interpreter{
		prog: prog,
		opts: opts,
		res: &Result{
			Values:     map[lang.NodeID][][]int64{},
			ExecCounts: map[lang.NodeID]int64{},
		},
		globals: map[string]value{},
		keyed:   map[lang.NodeID]int{},
	}
	for _, g := range prog.Globals {
		in.globals[g.Name] = value{}
	}
	main := prog.Func("main")
	if main == nil {
		return nil, errors.New("interp: program has no main")
	}
	_, err := in.call(main, nil, 0)
	if err != nil {
		return in.res, err
	}
	return in.res, nil
}

// value is an int or a function reference. The zero value is int 0.
type value struct {
	n    int64
	fn   string
	isFn bool
}

type ctrl int

const (
	ctrlNormal ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type interpreter struct {
	prog    *lang.Program
	opts    Options
	res     *Result
	globals map[string]value
	inputAt int
	keyed   map[lang.NodeID]int
}

type frame struct {
	fn     *lang.FuncDecl
	locals map[string]value
	ret    value
}

func (in *interpreter) call(fn *lang.FuncDecl, args []value, depth int) (value, error) {
	if depth > in.opts.MaxDepth {
		return value{}, fmt.Errorf("interp: call depth exceeds %d in %s", in.opts.MaxDepth, fn.Name)
	}
	if len(args) != len(fn.Params) {
		return value{}, fmt.Errorf("interp: %s called with %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	fr := &frame{fn: fn, locals: map[string]value{}}
	for i, p := range fn.Params {
		fr.locals[p.Name] = args[i]
	}
	lang.WalkStmts(fn.Body, func(s lang.Stmt) {
		if d, ok := s.(*lang.DeclStmt); ok {
			if _, exists := fr.locals[d.Name]; !exists {
				fr.locals[d.Name] = value{}
			}
		}
	})
	_, err := in.block(fr, fn.Body, depth)
	if err != nil {
		return value{}, err
	}
	return fr.ret, nil
}

func (in *interpreter) block(fr *frame, b *lang.Block, depth int) (ctrl, error) {
	if b == nil {
		return ctrlNormal, nil
	}
	for _, s := range b.Stmts {
		c, err := in.stmt(fr, s, depth)
		if err != nil {
			return ctrlNormal, err
		}
		if c != ctrlNormal {
			return c, nil
		}
	}
	return ctrlNormal, nil
}

func (in *interpreter) charge(s lang.Stmt) error {
	in.res.Steps++
	in.res.ExecCounts[s.Base().OriginID()]++
	if in.res.Steps > in.opts.MaxSteps {
		return ErrOutOfFuel
	}
	return nil
}

// record captures the statement's observable values if selected.
func (in *interpreter) record(fr *frame, s lang.Stmt, direct []int64) error {
	id := s.Base().OriginID()
	if in.opts.Record == nil || !in.opts.Record[id] {
		return nil
	}
	if direct != nil {
		in.res.Values[id] = append(in.res.Values[id], direct)
		return nil
	}
	var vals []int64
	for _, e := range lang.StmtExprs(s) {
		for _, v := range lang.ExprVars(e) {
			x, err := in.load(fr, v)
			if err != nil {
				return err
			}
			vals = append(vals, x.n)
		}
	}
	in.res.Values[id] = append(in.res.Values[id], vals)
	return nil
}

func (in *interpreter) stmt(fr *frame, s lang.Stmt, depth int) (ctrl, error) {
	if err := in.charge(s); err != nil {
		return ctrlNormal, err
	}
	switch x := s.(type) {
	case *lang.DeclStmt:
		if x.Init == nil {
			return ctrlNormal, nil
		}
		if err := in.record(fr, s, nil); err != nil {
			return ctrlNormal, err
		}
		v, err := in.eval(fr, x.Init)
		if err != nil {
			return ctrlNormal, err
		}
		return ctrlNormal, in.store(fr, x.Name, v)

	case *lang.AssignStmt:
		if err := in.record(fr, s, nil); err != nil {
			return ctrlNormal, err
		}
		v, err := in.eval(fr, x.RHS)
		if err != nil {
			return ctrlNormal, err
		}
		return ctrlNormal, in.store(fr, x.LHS, v)

	case *lang.CallStmt:
		if err := in.record(fr, s, nil); err != nil {
			return ctrlNormal, err
		}
		var args []value
		for _, a := range x.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return ctrlNormal, err
			}
			args = append(args, v)
		}
		callee := x.Callee
		if x.Indirect {
			pv, err := in.load(fr, x.Callee)
			if err != nil {
				return ctrlNormal, err
			}
			if !pv.isFn || pv.fn == "" {
				return ctrlNormal, fmt.Errorf("%s: indirect call through non-function value in %q", x.Pos, x.Callee)
			}
			callee = pv.fn
		}
		fn := in.prog.Func(callee)
		if fn == nil {
			return ctrlNormal, fmt.Errorf("%s: call to undefined function %q", x.Pos, callee)
		}
		ret, err := in.call(fn, args, depth+1)
		if err != nil {
			return ctrlNormal, err
		}
		if x.Target != "" {
			return ctrlNormal, in.store(fr, x.Target, ret)
		}
		return ctrlNormal, nil

	case *lang.IfStmt:
		if err := in.record(fr, s, nil); err != nil {
			return ctrlNormal, err
		}
		v, err := in.eval(fr, x.Cond)
		if err != nil {
			return ctrlNormal, err
		}
		if v.n != 0 {
			return in.block(fr, x.Then, depth)
		}
		return in.block(fr, x.Else, depth)

	case *lang.WhileStmt:
		for {
			if err := in.record(fr, s, nil); err != nil {
				return ctrlNormal, err
			}
			v, err := in.eval(fr, x.Cond)
			if err != nil {
				return ctrlNormal, err
			}
			if v.n == 0 {
				return ctrlNormal, nil
			}
			c, err := in.block(fr, x.Body, depth)
			if err != nil {
				return ctrlNormal, err
			}
			switch c {
			case ctrlBreak:
				return ctrlNormal, nil
			case ctrlReturn:
				return ctrlReturn, nil
			}
			// Re-charge for the repeated condition evaluation.
			if err := in.charge(s); err != nil {
				return ctrlNormal, err
			}
		}

	case *lang.ReturnStmt:
		if err := in.record(fr, s, nil); err != nil {
			return ctrlNormal, err
		}
		if x.Value != nil {
			v, err := in.eval(fr, x.Value)
			if err != nil {
				return ctrlNormal, err
			}
			fr.ret = v
		}
		return ctrlReturn, nil

	case *lang.BreakStmt:
		return ctrlBreak, nil
	case *lang.ContinueStmt:
		return ctrlContinue, nil

	case *lang.PrintfStmt:
		var vals []int64
		for _, a := range x.Args {
			v, err := in.eval(fr, a)
			if err != nil {
				return ctrlNormal, err
			}
			vals = append(vals, v.n)
		}
		if err := in.record(fr, s, vals); err != nil {
			return ctrlNormal, err
		}
		in.res.Output = append(in.res.Output, renderPrintf(x.Format, vals))
		return ctrlNormal, nil

	case *lang.ScanfStmt:
		v, err := in.readInput(s.Base().OriginID())
		if err != nil {
			return ctrlNormal, fmt.Errorf("%s: %w", x.Pos, err)
		}
		if err := in.record(fr, s, []int64{v}); err != nil {
			return ctrlNormal, err
		}
		return ctrlNormal, in.store(fr, x.Var, value{n: v})
	}
	return ctrlNormal, fmt.Errorf("interp: unknown statement %T", s)
}

func (in *interpreter) readInput(id lang.NodeID) (int64, error) {
	if in.opts.KeyedInput != nil {
		stream := in.opts.KeyedInput[id]
		i := in.keyed[id]
		if i >= len(stream) {
			if in.opts.AllowInputExhausted {
				return 0, nil
			}
			return 0, fmt.Errorf("keyed input exhausted for statement %d", id)
		}
		in.keyed[id] = i + 1
		return stream[i], nil
	}
	if in.inputAt >= len(in.opts.Input) {
		if in.opts.AllowInputExhausted {
			return 0, nil
		}
		return 0, errors.New("input exhausted")
	}
	v := in.opts.Input[in.inputAt]
	in.inputAt++
	return v, nil
}

func (in *interpreter) load(fr *frame, name string) (value, error) {
	if v, ok := fr.locals[name]; ok {
		return v, nil
	}
	if v, ok := in.globals[name]; ok {
		return v, nil
	}
	return value{}, fmt.Errorf("interp: unknown variable %q in %s", name, fr.fn.Name)
}

func (in *interpreter) store(fr *frame, name string, v value) error {
	if _, ok := fr.locals[name]; ok {
		fr.locals[name] = v
		return nil
	}
	if _, ok := in.globals[name]; ok {
		in.globals[name] = v
		return nil
	}
	return fmt.Errorf("interp: store to unknown variable %q in %s", name, fr.fn.Name)
}

func (in *interpreter) eval(fr *frame, e lang.Expr) (value, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return value{n: x.Value}, nil
	case *lang.VarRef:
		return in.load(fr, x.Name)
	case *lang.FuncRef:
		return value{fn: x.Name, isFn: true}, nil
	case *lang.Unary:
		v, err := in.eval(fr, x.X)
		if err != nil {
			return value{}, err
		}
		switch x.Op {
		case "-":
			return value{n: -v.n}, nil
		case "!":
			return value{n: b2i(v.n == 0)}, nil
		}
		return value{}, fmt.Errorf("interp: unknown unary %q", x.Op)
	case *lang.Binary:
		l, err := in.eval(fr, x.X)
		if err != nil {
			return value{}, err
		}
		r, err := in.eval(fr, x.Y)
		if err != nil {
			return value{}, err
		}
		if l.isFn || r.isFn {
			// Function values support only equality comparison.
			switch x.Op {
			case "==":
				return value{n: b2i(l.isFn == r.isFn && l.fn == r.fn)}, nil
			case "!=":
				return value{n: b2i(!(l.isFn == r.isFn && l.fn == r.fn))}, nil
			}
			return value{}, fmt.Errorf("interp: operator %q applied to function value", x.Op)
		}
		switch x.Op {
		case "+":
			return value{n: l.n + r.n}, nil
		case "-":
			return value{n: l.n - r.n}, nil
		case "*":
			return value{n: l.n * r.n}, nil
		case "/":
			if r.n == 0 {
				return value{}, errors.New("interp: division by zero")
			}
			return value{n: l.n / r.n}, nil
		case "%":
			if r.n == 0 {
				return value{}, errors.New("interp: modulo by zero")
			}
			return value{n: l.n % r.n}, nil
		case "<":
			return value{n: b2i(l.n < r.n)}, nil
		case ">":
			return value{n: b2i(l.n > r.n)}, nil
		case "<=":
			return value{n: b2i(l.n <= r.n)}, nil
		case ">=":
			return value{n: b2i(l.n >= r.n)}, nil
		case "==":
			return value{n: b2i(l.n == r.n)}, nil
		case "!=":
			return value{n: b2i(l.n != r.n)}, nil
		case "&&":
			return value{n: b2i(l.n != 0 && r.n != 0)}, nil
		case "||":
			return value{n: b2i(l.n != 0 || r.n != 0)}, nil
		}
		return value{}, fmt.Errorf("interp: unknown binary %q", x.Op)
	case *lang.CallExpr:
		return value{}, errors.New("interp: call in expression position; program was not normalized")
	}
	return value{}, fmt.Errorf("interp: unknown expression %T", e)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// renderPrintf substitutes each %d in format with the next value.
func renderPrintf(format string, vals []int64) string {
	var sb strings.Builder
	i := 0
	for j := 0; j < len(format); j++ {
		if format[j] == '%' && j+1 < len(format) && format[j+1] == 'd' {
			if i < len(vals) {
				fmt.Fprintf(&sb, "%d", vals[i])
				i++
			}
			j++
			continue
		}
		sb.WriteByte(format[j])
	}
	return sb.String()
}
