package interp

import (
	"errors"
	"strings"
	"testing"

	"specslice/internal/lang"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	prog := lang.MustParse(src)
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestArithmeticAndControlFlow(t *testing.T) {
	src := `
int main() {
  int i = 0;
  int sum = 0;
  while (i < 10) {
    i = i + 1;
    if (i % 2 == 0) { continue; }
    if (i > 7) { break; }
    sum = sum + i;
  }
  printf("%d %d", sum, i);
  return 0;
}
`
	res := run(t, src, Options{})
	if len(res.Output) != 1 || res.Output[0] != "16 9" { // 1+3+5+7=16, break at i=9
		t.Errorf("output = %v, want [16 9]", res.Output)
	}
}

func TestRecursionAndReturn(t *testing.T) {
	src := `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() {
  printf("%d", fib(12));
  return 0;
}
`
	res := run(t, src, Options{})
	if res.Output[0] != "144" {
		t.Errorf("fib(12) = %s, want 144", res.Output[0])
	}
}

func TestGlobalsSharedAcrossCalls(t *testing.T) {
	src := `
int g;
void bump() { g = g + 1; }
int main() {
  bump(); bump(); bump();
  printf("%d", g);
  return 0;
}
`
	if got := run(t, src, Options{}).Output[0]; got != "3" {
		t.Errorf("g = %s, want 3", got)
	}
}

func TestScanfSequential(t *testing.T) {
	src := `
int main() {
  int a; int b;
  scanf("%d", &a);
  scanf("%d", &b);
  printf("%d", a * 10 + b);
  return 0;
}
`
	res := run(t, src, Options{Input: []int64{4, 2}})
	if res.Output[0] != "42" {
		t.Errorf("got %s, want 42", res.Output[0])
	}
}

func TestScanfKeyedInput(t *testing.T) {
	src := `
int main() {
  int a; int b;
  scanf("%d", &a);
  scanf("%d", &b);
  printf("%d %d", a, b);
  return 0;
}
`
	prog := lang.MustParse(src)
	var ids []lang.NodeID
	for _, s := range prog.Func("main").Stmts() {
		if _, ok := s.(*lang.ScanfStmt); ok {
			ids = append(ids, s.Base().OriginID())
		}
	}
	keyed := map[lang.NodeID][]int64{ids[0]: {7}, ids[1]: {9}}
	res, err := Run(prog, Options{KeyedInput: keyed})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] != "7 9" {
		t.Errorf("got %s, want 7 9", res.Output[0])
	}
}

func TestDivisionByZero(t *testing.T) {
	src := `int main() { int x = 1 / 0; return 0; }`
	_, err := Run(lang.MustParse(src), Options{})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division-by-zero error, got %v", err)
	}
}

func TestOutOfFuel(t *testing.T) {
	src := `int main() { while (1) { } return 0; }`
	_, err := Run(lang.MustParse(src), Options{MaxSteps: 1000})
	if !errors.Is(err, ErrOutOfFuel) {
		t.Errorf("want ErrOutOfFuel, got %v", err)
	}
}

func TestDepthLimit(t *testing.T) {
	src := `
void f() { f(); }
int main() { f(); return 0; }
`
	_, err := Run(lang.MustParse(src), Options{MaxDepth: 50})
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("want depth error, got %v", err)
	}
}

func TestFunctionPointers(t *testing.T) {
	src := `
int f(int a, int b) { return a + b; }
int g(int a, int b) { return a; }
int main() {
  fnptr p;
  int x;
  scanf("%d", &x);
  if (x == 1) { p = f; } else { p = g; }
  x = p(10, 3);
  printf("%d", x);
  return 0;
}
`
	if got := run(t, src, Options{Input: []int64{1}}).Output[0]; got != "13" {
		t.Errorf("via f: got %s, want 13", got)
	}
	if got := run(t, src, Options{Input: []int64{0}}).Output[0]; got != "10" {
		t.Errorf("via g: got %s, want 10", got)
	}
}

func TestUninitializedFnptrCallFails(t *testing.T) {
	src := `
int main() {
  fnptr p;
  p(1);
  return 0;
}
`
	_, err := Run(lang.MustParse(src), Options{})
	if err == nil || !strings.Contains(err.Error(), "non-function") {
		t.Errorf("want indirect-call error, got %v", err)
	}
}

func TestRecorder(t *testing.T) {
	src := `
int g;
int main() {
  int i = 0;
  while (i < 3) {
    g = g + i;
    i = i + 1;
  }
  printf("%d", g);
  return 0;
}
`
	prog := lang.MustParse(src)
	var printfID lang.NodeID
	for _, s := range prog.Func("main").Stmts() {
		if _, ok := s.(*lang.PrintfStmt); ok {
			printfID = s.Base().OriginID()
		}
	}
	res, err := Run(prog, Options{Record: map[lang.NodeID]bool{printfID: true}})
	if err != nil {
		t.Fatal(err)
	}
	vals := res.Values[printfID]
	if len(vals) != 1 || len(vals[0]) != 1 || vals[0][0] != 3 {
		t.Errorf("recorded = %v, want [[3]]", vals)
	}
}

func TestExecCountsAndSteps(t *testing.T) {
	src := `
int main() {
  int i = 0;
  while (i < 5) { i = i + 1; }
  return 0;
}
`
	res := run(t, src, Options{})
	if res.Steps == 0 {
		t.Error("steps not counted")
	}
	prog := lang.MustParse(src)
	_ = prog
	var total int64
	for _, c := range res.ExecCounts {
		total += c
	}
	if total == 0 {
		t.Error("exec counts empty")
	}
}

func TestFig1Behavior(t *testing.T) {
	src := `
int g1; int g2; int g3;
void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}
int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`
	// p(g2,2): g1=100,g2=2,g3=2; p(g2,3): g1=2,g2=3,g3=3; p(4,g1+g2)=p(4,5): g1=4,g2=5.
	if got := run(t, src, Options{}).Output[0]; got != "5" {
		t.Errorf("fig1 prints %s, want 5", got)
	}
}
