package fsa

import "math/bits"

// bitset is a dense set of small non-negative ints (state indices).
type bitset []uint64

// bitsWords returns the word count of a fixed-width bitset over n elements.
func bitsWords(n int) int { return (n + 63) / 64 }

func (b bitset) get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b *bitset) set(i int) {
	w := i >> 6
	for w >= len(*b) {
		*b = append(*b, 0)
	}
	(*b)[w] |= 1 << (uint(i) & 63)
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// members returns the set bits in ascending order.
func (b bitset) members() []int {
	out := make([]int, 0, b.count())
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			out = append(out, wi<<6+i)
			w &^= 1 << uint(i)
		}
	}
	return out
}

func (b bitset) clone() bitset {
	if b == nil {
		return nil
	}
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// intersects reports whether the two sets share a member.
func (b bitset) intersects(o bitset) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// forEach visits the set bits in ascending order.
func (b bitset) forEach(f func(int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			w &^= 1 << uint(i)
			f(wi<<6 + i)
		}
	}
}

// Transition packing: 21 bits each for from, sym+1, and to (63 bits total),
// so every packed key fits a uint64 with room for the +1 empty-slot bias.
const packBits = 21
const packMax = 1 << packBits

func packTrans(t Transition) (uint64, bool) {
	s := int(t.Sym) + 1 // Epsilon (-1) becomes 0
	if t.From < 0 || t.From >= packMax || t.To < 0 || t.To >= packMax || s < 0 || s >= packMax {
		return 0, false
	}
	return uint64(t.From)<<(2*packBits) | uint64(s)<<packBits | uint64(t.To), true
}

// transSet is the transition-dedup index: an open-addressing hash set over
// packed (from, sym, to) keys, with a map fallback for automata too large to
// pack (>2M states or symbols).
type transSet struct {
	slots []uint64 // packed key + 1; 0 means empty
	n     int
	wide  map[Transition]bool // only allocated on pack overflow
}

func (s *transSet) probe(key uint64) int {
	mask := uint64(len(s.slots) - 1)
	i := (key * 0x9E3779B97F4A7C15) >> 32 & mask
	for s.slots[i] != 0 && s.slots[i] != key+1 {
		i = (i + 1) & mask
	}
	return int(i)
}

// rehash replaces the slot table with one of newLen slots (a power of two)
// and reinserts every key.
func (s *transSet) rehash(newLen int) {
	old := s.slots
	s.slots = make([]uint64, newLen)
	for _, v := range old {
		if v != 0 {
			s.slots[s.probe(v-1)] = v
		}
	}
}

// add inserts t, reporting whether it was new.
func (s *transSet) add(t Transition) bool {
	key, ok := packTrans(t)
	if !ok {
		if s.wide == nil {
			s.wide = map[Transition]bool{}
		}
		if s.wide[t] {
			return false
		}
		s.wide[t] = true
		s.n++
		return true
	}
	if s.slots == nil {
		s.slots = make([]uint64, 64)
	}
	i := s.probe(key)
	if s.slots[i] != 0 {
		return false
	}
	s.slots[i] = key + 1
	s.n++
	if 4*(s.n-len(s.wide)) >= 3*len(s.slots) {
		s.rehash(2 * len(s.slots))
	}
	return true
}

// reserve sizes the slot table for about m packed transitions, avoiding
// rehash churn during bulk construction (Reverse, Trim, quotient emission).
func (s *transSet) reserve(m int) {
	if m <= 0 {
		return
	}
	need := 64
	for 4*m >= 3*need {
		need *= 2
	}
	if need > len(s.slots) {
		s.rehash(need)
	}
}

// clone deep-copies the index without re-hashing.
func (s *transSet) clone() transSet {
	c := transSet{n: s.n}
	if s.slots != nil {
		c.slots = append([]uint64(nil), s.slots...)
	}
	if s.wide != nil {
		c.wide = make(map[Transition]bool, len(s.wide))
		for t := range s.wide {
			c.wide[t] = true
		}
	}
	return c
}

func (s *transSet) has(t Transition) bool {
	key, ok := packTrans(t)
	if !ok {
		return s.wide[t]
	}
	if s.slots == nil {
		return false
	}
	return s.slots[s.probe(key)] != 0
}
