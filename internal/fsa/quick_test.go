package fsa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// nfaSpec is a generatable description of a small NFA plus probe words,
// used with testing/quick.
type nfaSpec struct {
	States byte
	Edges  []struct{ From, Sym, To byte }
	Start  byte
	Finals []byte
	Words  [][]byte
}

// Generate implements quick.Generator with well-formed values.
func (nfaSpec) Generate(r *rand.Rand, size int) reflect.Value {
	var s nfaSpec
	n := 2 + r.Intn(5)
	s.States = byte(n)
	ne := 1 + r.Intn(3*n)
	for i := 0; i < ne; i++ {
		s.Edges = append(s.Edges, struct{ From, Sym, To byte }{
			byte(r.Intn(n)), byte(r.Intn(3)), byte(r.Intn(n)),
		})
	}
	s.Start = byte(r.Intn(n))
	for i := 0; i < 1+r.Intn(2); i++ {
		s.Finals = append(s.Finals, byte(r.Intn(n)))
	}
	for i := 0; i < 12; i++ {
		w := make([]byte, r.Intn(5))
		for j := range w {
			w[j] = byte(r.Intn(3))
		}
		s.Words = append(s.Words, w)
	}
	return reflect.ValueOf(s)
}

func (s nfaSpec) build() *FSA {
	a := New(int(s.States))
	a.SetStart(int(s.Start))
	for _, e := range s.Edges {
		sym := Symbol(e.Sym)
		if e.Sym == 2 { // use symbol 2 as occasional epsilon
			sym = Epsilon
		}
		a.Add(int(e.From), sym, int(e.To))
	}
	for _, f := range s.Finals {
		a.SetFinal(int(f))
	}
	return a
}

func (s nfaSpec) words() [][]Symbol {
	var out [][]Symbol
	for _, w := range s.Words {
		var ws []Symbol
		for _, c := range w {
			ws = append(ws, Symbol(c%2)) // probe only real symbols 0,1
		}
		out = append(out, ws)
	}
	return out
}

// TestQuickDeterminizeEquivalent: determinize preserves membership.
func TestQuickDeterminizeEquivalent(t *testing.T) {
	f := func(s nfaSpec) bool {
		a := s.build()
		d := a.Determinize()
		if !d.IsDeterministic() {
			return false
		}
		for _, w := range s.words() {
			if a.Accepts(w) != d.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickMinimizeEquivalentAndIdempotent: minimize preserves the language
// and reaches a fixed point.
func TestQuickMinimizeEquivalentAndIdempotent(t *testing.T) {
	f := func(s nfaSpec) bool {
		a := s.build()
		m := a.Minimize()
		for _, w := range s.words() {
			if a.Accepts(w) != m.Accepts(w) {
				return false
			}
		}
		return m.Minimize().NumStates() == m.NumStates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickReverseInvolution: w ∈ L(A) iff reverse(w) ∈ L(reverse(A)).
func TestQuickReverseInvolution(t *testing.T) {
	f := func(s nfaSpec) bool {
		a := s.build()
		r := a.Reverse()
		for _, w := range s.words() {
			rw := make([]Symbol, len(w))
			for i, c := range w {
				rw[len(w)-1-i] = c
			}
			if a.Accepts(w) != r.Accepts(rw) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickComplementPartitions: exactly one of A, ¬A accepts any word.
func TestQuickComplementPartitions(t *testing.T) {
	alphabet := []Symbol{0, 1}
	f := func(s nfaSpec) bool {
		a := s.build()
		c := a.Complement(alphabet)
		for _, w := range s.words() {
			if a.Accepts(w) == c.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectSound: membership in the product equals conjunction.
func TestQuickIntersectSound(t *testing.T) {
	f := func(s1, s2 nfaSpec) bool {
		a, b := s1.build(), s2.build()
		in := Intersect(a, b)
		for _, w := range append(s1.words(), s2.words()...) {
			if in.Accepts(w) != (a.Accepts(w) && b.Accepts(w)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickEqualCoherent: Equal agrees with sampled membership; an
// automaton always equals itself after any language-preserving op.
func TestQuickEqualCoherent(t *testing.T) {
	f := func(s nfaSpec) bool {
		a := s.build()
		if !Equal(a, a.Determinize()) || !Equal(a, a.Minimize()) || !Equal(a, a.RemoveEpsilon()) {
			return false
		}
		// Equality with a different automaton must imply sampled agreement.
		b := a.Reverse().Reverse()
		if !Equal(a, b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickMRDPipeline: the Alg.-1 automaton pipeline
// (reverse→determinize→minimize→reverse→removeEps) preserves the language;
// and when the minimized reversed DFA has a single accepting state — the
// precondition Thm. 3.16 derives from configuration words ending in their
// unique vertex symbol — the result is reverse-deterministic.
func TestQuickMRDPipeline(t *testing.T) {
	f := func(s nfaSpec) bool {
		a := s.build()
		a4 := a.Reverse().Determinize().Minimize()
		m := a4.Reverse().RemoveEpsilon().Trim()
		if len(a4.Finals()) == 1 && !m.IsReverseDeterministic() {
			return false
		}
		for _, w := range s.words() {
			if a.Accepts(w) != m.Accepts(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
