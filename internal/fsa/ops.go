package fsa

import "sort"

// Minimize returns the minimal DFA for the automaton's language. The input
// may be any automaton; it is determinized and trimmed first. The result is
// deterministic, trim, and unique up to state renaming. Minimization runs
// Hopcroft's algorithm on dense structures (see pipeline.go).
func (a *FSA) Minimize() *FSA {
	d := a
	if !d.IsDeterministic() {
		d = d.RemoveEpsilon().Determinize()
	}
	d = d.Trim()
	if d.numStates == 0 {
		return d
	}
	return hopcroft(d)
}

// MinimizeMoore is a reference implementation of DFA minimization by
// straightforward partition refinement (Moore's algorithm). It is used as a
// test oracle for Hopcroft's algorithm.
func (a *FSA) MinimizeMoore() *FSA {
	d := a
	if !d.IsDeterministic() {
		d = d.RemoveEpsilon().Determinize()
	}
	d = d.Trim()
	n := d.numStates
	if n == 0 {
		return d
	}
	alphabet := d.Alphabet()
	dead := n
	total := n + 1
	succ := make([]map[Symbol]int, total)
	for s := 0; s < n; s++ {
		succ[s] = map[Symbol]int{}
		for _, t := range d.out[s] {
			succ[s][t.Sym] = t.To
		}
	}
	succ[dead] = map[Symbol]int{}
	cls := make([]int, total)
	for s := 0; s < n; s++ {
		if d.IsFinal(s) {
			cls[s] = 1
		}
	}
	for changed := true; changed; {
		changed = false
		type sig struct {
			own  int
			dest string
		}
		index := map[sig]int{}
		next := make([]int, total)
		for s := 0; s < total; s++ {
			dest := ""
			for _, sym := range alphabet {
				to, ok := succ[s][sym]
				if !ok {
					to = dead
				}
				dest += itoa(cls[to]) + ","
			}
			sg := sig{cls[s], dest}
			id, ok := index[sg]
			if !ok {
				id = len(index)
				index[sg] = id
			}
			next[s] = id
		}
		for s := 0; s < total; s++ {
			if next[s] != cls[s] {
				changed = true
			}
		}
		cls = next
	}
	deadCls := cls[dead]
	remap := map[int]int{}
	m := New(0)
	order := make([]int, 0, n)
	for s := 0; s < n; s++ {
		order = append(order, s)
	}
	sort.Ints(order)
	for _, s := range order {
		if cls[s] == deadCls {
			continue
		}
		if _, ok := remap[cls[s]]; !ok {
			remap[cls[s]] = m.AddState()
		}
	}
	for s := 0; s < n; s++ {
		from, ok := remap[cls[s]]
		if !ok {
			continue
		}
		for _, t := range d.out[s] {
			if to, ok := remap[cls[t.To]]; ok {
				m.Add(from, t.Sym, to)
			}
		}
	}
	if sb, ok := remap[cls[d.Starts()[0]]]; ok {
		m.SetStart(sb)
	}
	for _, f := range d.Finals() {
		if fb, ok := remap[cls[f]]; ok {
			m.SetFinal(fb)
		}
	}
	return m.Trim()
}

func itoa(x int) string {
	if x == 0 {
		return "0"
	}
	var b []byte
	for x > 0 {
		b = append([]byte{byte('0' + x%10)}, b...)
		x /= 10
	}
	return string(b)
}

// Intersect returns the product automaton accepting L(a) ∩ L(b). Epsilon
// transitions are removed first.
func Intersect(a, b *FSA) *FSA {
	a = a.RemoveEpsilon()
	b = b.RemoveEpsilon()
	type pair struct{ x, y int }
	index := map[pair]int{}
	r := New(0)
	var work []pair
	get := func(p pair) int {
		if i, ok := index[p]; ok {
			return i
		}
		i := r.AddState()
		index[p] = i
		if a.IsFinal(p.x) && b.IsFinal(p.y) {
			r.SetFinal(i)
		}
		work = append(work, p)
		return i
	}
	for _, sa := range a.Starts() {
		for _, sb := range b.Starts() {
			r.SetStart(get(pair{sa, sb}))
		}
	}
	for len(work) > 0 {
		p := work[len(work)-1]
		work = work[:len(work)-1]
		from := index[p]
		for _, ta := range a.out[p.x] {
			for _, tb := range b.out[p.y] {
				if ta.Sym == tb.Sym {
					r.Add(from, ta.Sym, get(pair{ta.To, tb.To}))
				}
			}
		}
	}
	return r.Trim()
}

// Union returns an automaton accepting L(a) ∪ L(b).
func Union(a, b *FSA) *FSA {
	r := New(a.numStates + b.numStates)
	off := a.numStates
	a.each(func(t Transition) { r.Add(t.From, t.Sym, t.To) })
	b.each(func(t Transition) { r.Add(t.From+off, t.Sym, t.To+off) })
	for _, s := range a.Starts() {
		r.SetStart(s)
	}
	for _, s := range b.Starts() {
		r.SetStart(s + off)
	}
	for _, s := range a.Finals() {
		r.SetFinal(s)
	}
	for _, s := range b.Finals() {
		r.SetFinal(s + off)
	}
	return r
}

// Complement returns a DFA accepting alphabet* − L(a), over the given
// alphabet (which must cover every symbol of interest).
func (a *FSA) Complement(alphabet []Symbol) *FSA {
	d := a.RemoveEpsilon().Determinize()
	// Complete the DFA with an explicit sink.
	c := d.Clone()
	sink := c.AddState()
	for _, sym := range alphabet {
		c.Add(sink, sym, sink)
	}
	for s := 0; s < c.numStates; s++ {
		seen := map[Symbol]bool{}
		for _, t := range c.out[s] {
			seen[t.Sym] = true
		}
		for _, sym := range alphabet {
			if !seen[sym] {
				c.Add(s, sym, sink)
			}
		}
	}
	// Flip accepting states.
	r := New(c.numStates)
	c.each(func(t Transition) { r.Add(t.From, t.Sym, t.To) })
	for _, s := range c.Starts() {
		r.SetStart(s)
	}
	for s := 0; s < c.numStates; s++ {
		if !c.IsFinal(s) {
			r.SetFinal(s)
		}
	}
	return r
}

// Equal reports language equality, via isomorphism of the minimal DFAs.
func Equal(a, b *FSA) bool {
	ma := a.Minimize()
	mb := b.Minimize()
	if ma.numStates != mb.numStates || ma.finals.count() != mb.finals.count() || ma.NumTransitions() != mb.NumTransitions() {
		return false
	}
	if ma.numStates == 0 {
		return true
	}
	// Both minimal DFAs are trim and deterministic: walk them in lockstep.
	mapping := map[int]int{ma.Starts()[0]: mb.Starts()[0]}
	work := []int{ma.Starts()[0]}
	for len(work) > 0 {
		x := work[len(work)-1]
		work = work[:len(work)-1]
		y := mapping[x]
		if ma.IsFinal(x) != mb.IsFinal(y) {
			return false
		}
		bt := map[Symbol]int{}
		for _, t := range mb.out[y] {
			bt[t.Sym] = t.To
		}
		if len(ma.out[x]) != len(mb.out[y]) {
			return false
		}
		for _, t := range ma.out[x] {
			to, ok := bt[t.Sym]
			if !ok {
				return false
			}
			if prev, seen := mapping[t.To]; seen {
				if prev != to {
					return false
				}
			} else {
				mapping[t.To] = to
				work = append(work, t.To)
			}
		}
	}
	return true
}

// EnumerateWords returns accepted words of length ≤ maxLen, up to maxCount,
// in shortlex order. Useful for finite languages and for sampling tests.
func (a *FSA) EnumerateWords(maxLen, maxCount int) [][]Symbol {
	e := a.RemoveEpsilon()
	var out [][]Symbol
	type item struct {
		states []int
		word   []Symbol
	}
	queue := []item{{states: e.Starts(), word: nil}}
	for len(queue) > 0 && len(out) < maxCount {
		it := queue[0]
		queue = queue[1:]
		final := false
		for _, s := range it.states {
			if e.IsFinal(s) {
				final = true
			}
		}
		if final {
			out = append(out, it.word)
			if len(out) >= maxCount {
				break
			}
		}
		if len(it.word) >= maxLen {
			continue
		}
		moves := map[Symbol]bitset{}
		for _, s := range it.states {
			for _, t := range e.out[s] {
				bs := moves[t.Sym]
				bs.set(t.To)
				moves[t.Sym] = bs
			}
		}
		syms := make([]Symbol, 0, len(moves))
		for s := range moves {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, sym := range syms {
			word := append(append([]Symbol(nil), it.word...), sym)
			queue = append(queue, item{states: moves[sym].members(), word: word})
		}
	}
	return out
}
