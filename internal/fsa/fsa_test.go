package fsa

import (
	"math/rand"
	"testing"
)

// buildWords builds an FSA accepting exactly the given words (a trie).
func buildWords(words [][]Symbol) *FSA {
	a := New(1)
	a.SetStart(0)
	type key struct {
		state int
		sym   Symbol
	}
	next := map[key]int{}
	for _, w := range words {
		cur := 0
		for _, sym := range w {
			if to, ok := next[key{cur, sym}]; ok {
				cur = to
				continue
			}
			to := a.AddState()
			a.Add(cur, sym, to)
			next[key{cur, sym}] = to
			cur = to
		}
		a.SetFinal(cur)
	}
	return a
}

func TestAcceptsBasic(t *testing.T) {
	a := buildWords([][]Symbol{{1, 2}, {1, 3}, {}})
	cases := []struct {
		w    []Symbol
		want bool
	}{
		{[]Symbol{1, 2}, true},
		{[]Symbol{1, 3}, true},
		{[]Symbol{}, true},
		{[]Symbol{1}, false},
		{[]Symbol{2}, false},
		{[]Symbol{1, 2, 3}, false},
	}
	for _, c := range cases {
		if got := a.Accepts(c.w); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func TestReverseTwiceSameLanguage(t *testing.T) {
	a := buildWords([][]Symbol{{1, 2, 3}, {1}, {2, 2}})
	if !Equal(a, a.Reverse().Reverse()) {
		t.Error("reverse twice changed the language")
	}
	r := a.Reverse()
	if !r.Accepts([]Symbol{3, 2, 1}) || !r.Accepts([]Symbol{1}) || r.Accepts([]Symbol{1, 2, 3}) {
		t.Error("reverse language wrong")
	}
}

func TestEpsilonRemoval(t *testing.T) {
	a := New(4)
	a.SetStart(0)
	a.Add(0, Epsilon, 1)
	a.Add(1, 5, 2)
	a.Add(2, Epsilon, 3)
	a.SetFinal(3)
	e := a.RemoveEpsilon()
	for _, tr := range e.Transitions() {
		if tr.Sym == Epsilon {
			t.Fatal("epsilon transition survives removal")
		}
	}
	if !e.Accepts([]Symbol{5}) || e.Accepts(nil) {
		t.Error("epsilon removal changed language")
	}
}

func TestDeterminizeAndMinimize(t *testing.T) {
	// Classic: (a|b)*abb needs a 4-state minimal DFA (a=1, b=2).
	a := New(4)
	a.SetStart(0)
	a.Add(0, 1, 0)
	a.Add(0, 2, 0)
	a.Add(0, 1, 1)
	a.Add(1, 2, 2)
	a.Add(2, 2, 3)
	a.SetFinal(3)
	d := a.Determinize()
	if !d.IsDeterministic() {
		t.Fatal("Determinize did not produce a DFA")
	}
	m := d.Minimize()
	if m.NumStates() != 4 {
		t.Errorf("minimal DFA has %d states, want 4", m.NumStates())
	}
	for _, c := range []struct {
		w    []Symbol
		want bool
	}{
		{[]Symbol{1, 2, 2}, true},
		{[]Symbol{1, 1, 2, 2}, true},
		{[]Symbol{2, 1, 2, 2}, true},
		{[]Symbol{1, 2}, false},
		{[]Symbol{2, 2}, false},
	} {
		if got := m.Accepts(c.w); got != c.want {
			t.Errorf("min.Accepts(%v) = %v, want %v", c.w, got, c.want)
		}
	}
}

func randomNFA(rng *rand.Rand) *FSA {
	n := 2 + rng.Intn(6)
	a := New(n)
	a.SetStart(rng.Intn(n))
	if rng.Intn(2) == 0 {
		a.SetStart(rng.Intn(n))
	}
	nsym := 1 + rng.Intn(3)
	for i := 0; i < 3*n; i++ {
		sym := Symbol(rng.Intn(nsym))
		if rng.Intn(8) == 0 {
			sym = Epsilon
		}
		a.Add(rng.Intn(n), sym, rng.Intn(n))
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		a.SetFinal(rng.Intn(n))
	}
	return a
}

func randomWords(rng *rand.Rand, nsym, count, maxLen int) [][]Symbol {
	var out [][]Symbol
	for i := 0; i < count; i++ {
		l := rng.Intn(maxLen + 1)
		w := make([]Symbol, l)
		for j := range w {
			w[j] = Symbol(rng.Intn(nsym))
		}
		out = append(out, w)
	}
	return out
}

// TestOperationsPreserveLanguage samples random NFAs and random words, and
// checks that determinize, minimize (both algorithms), epsilon removal, and
// trim preserve word membership.
func TestOperationsPreserveLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		a := randomNFA(rng)
		d := a.Determinize()
		m := a.Minimize()
		mm := a.MinimizeMoore()
		e := a.RemoveEpsilon()
		tr := a.Trim()
		for _, w := range randomWords(rng, 3, 25, 6) {
			want := a.Accepts(w)
			if d.Accepts(w) != want {
				t.Fatalf("iter %d: determinize differs on %v\n%s", iter, w, a)
			}
			if m.Accepts(w) != want {
				t.Fatalf("iter %d: minimize differs on %v\n%s", iter, w, a)
			}
			if mm.Accepts(w) != want {
				t.Fatalf("iter %d: MinimizeMoore differs on %v\n%s", iter, w, a)
			}
			if e.Accepts(w) != want {
				t.Fatalf("iter %d: RemoveEpsilon differs on %v\n%s", iter, w, a)
			}
			if tr.Accepts(w) != want {
				t.Fatalf("iter %d: Trim differs on %v\n%s", iter, w, a)
			}
		}
	}
}

// TestHopcroftMatchesMoore checks that Hopcroft's minimization produces the
// same number of states as the Moore reference on random NFAs, and that the
// two are language-equal.
func TestHopcroftMatchesMoore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		a := randomNFA(rng)
		h := a.Minimize()
		m := a.MinimizeMoore()
		if h.NumStates() != m.NumStates() {
			t.Fatalf("iter %d: hopcroft %d states, moore %d states\n%s", iter, h.NumStates(), m.NumStates(), a)
		}
		if !Equal(h, m) {
			t.Fatalf("iter %d: hopcroft and moore languages differ", iter)
		}
	}
}

// TestMinimizeIsMinimal: minimizing a minimal DFA must not shrink it, and
// no DFA for the same language found by determinizing can be smaller.
func TestMinimizeIsMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 100; iter++ {
		a := randomNFA(rng)
		m := a.Minimize()
		if m2 := m.Minimize(); m2.NumStates() != m.NumStates() {
			t.Fatalf("iter %d: minimize not idempotent: %d -> %d", iter, m.NumStates(), m2.NumStates())
		}
	}
}

func TestIntersectUnionComplement(t *testing.T) {
	a := buildWords([][]Symbol{{1}, {1, 2}, {2}})
	b := buildWords([][]Symbol{{1, 2}, {2}, {2, 2}})
	inter := Intersect(a, b)
	uni := Union(a, b)
	for _, c := range []struct {
		w        []Symbol
		inI, inU bool
	}{
		{[]Symbol{1}, false, true},
		{[]Symbol{1, 2}, true, true},
		{[]Symbol{2}, true, true},
		{[]Symbol{2, 2}, false, true},
		{[]Symbol{1, 1}, false, false},
	} {
		if got := inter.Accepts(c.w); got != c.inI {
			t.Errorf("intersect(%v) = %v, want %v", c.w, got, c.inI)
		}
		if got := uni.Accepts(c.w); got != c.inU {
			t.Errorf("union(%v) = %v, want %v", c.w, got, c.inU)
		}
	}
	comp := a.Complement([]Symbol{1, 2})
	rng := rand.New(rand.NewSource(3))
	for _, w := range randomWords(rng, 2, 50, 5) {
		// Symbols here are 0/1; shift to 1/2.
		for i := range w {
			w[i]++
		}
		if comp.Accepts(w) == a.Accepts(w) {
			t.Errorf("complement agrees with original on %v", w)
		}
	}
}

func TestComplementDeMorgan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	alphabet := []Symbol{0, 1, 2}
	for iter := 0; iter < 50; iter++ {
		a := randomNFA(rng)
		b := randomNFA(rng)
		// L(a) ∩ L(b) == ¬(¬L(a) ∪ ¬L(b)) over the alphabet.
		lhs := Intersect(a, b)
		rhs := Union(a.Complement(alphabet), b.Complement(alphabet)).Complement(alphabet)
		// Compare only over words in the alphabet.
		for _, w := range randomWords(rng, 3, 20, 5) {
			if lhs.Accepts(w) != rhs.Accepts(w) {
				t.Fatalf("iter %d: de morgan violated on %v", iter, w)
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a := buildWords([][]Symbol{{1, 2}, {1, 3}})
	b := New(4)
	b.SetStart(0)
	b.Add(0, 1, 1)
	b.Add(1, 2, 2)
	b.Add(1, 3, 3)
	b.SetFinal(2)
	b.SetFinal(3)
	if !Equal(a, b) {
		t.Error("equal languages reported different")
	}
	c := buildWords([][]Symbol{{1, 2}})
	if Equal(a, c) {
		t.Error("different languages reported equal")
	}
	empty1 := New(1)
	empty2 := New(3)
	if !Equal(empty1, empty2) {
		t.Error("two empty languages reported different")
	}
}

func TestRelabelAndInverse(t *testing.T) {
	a := buildWords([][]Symbol{{1, 2}, {3}})
	m := map[Symbol]Symbol{1: 10, 2: 20, 3: 10}
	r := a.Relabel(m)
	if !r.Accepts([]Symbol{10, 20}) || !r.Accepts([]Symbol{10}) {
		t.Error("relabel wrong")
	}
	inv := r.InverseRelabel(m)
	// Inverse of the image must contain the original words (1↦10 and 3↦10
	// merge, so {3,2} also appears).
	for _, w := range [][]Symbol{{1, 2}, {3}, {3, 2}, {1}} {
		if !inv.Accepts(w) {
			t.Errorf("inverse relabel missing %v", w)
		}
	}
}

func TestEnumerateWords(t *testing.T) {
	a := buildWords([][]Symbol{{1}, {1, 2}, {2, 2, 2}})
	words := a.EnumerateWords(5, 100)
	if len(words) != 3 {
		t.Fatalf("enumerated %d words, want 3: %v", len(words), words)
	}
	// Shortlex: {1} before {1,2} before {2,2,2}.
	if len(words[0]) != 1 || len(words[2]) != 3 {
		t.Errorf("enumeration order wrong: %v", words)
	}
}

func TestIsReverseDeterministic(t *testing.T) {
	// Two transitions with the same symbol into the same state break
	// reverse determinism.
	a := New(3)
	a.SetStart(0)
	a.SetStart(1)
	a.Add(0, 1, 2)
	a.Add(1, 1, 2)
	a.SetFinal(2)
	if a.IsReverseDeterministic() {
		t.Error("want not reverse-deterministic")
	}
	b := buildWords([][]Symbol{{1, 2}})
	if !b.IsReverseDeterministic() {
		t.Error("single-word trie must be reverse-deterministic")
	}
}
