// Package fsa implements the nondeterministic and deterministic finite
// automata, and the operations on them — reverse, epsilon removal,
// determinization (subset construction), minimization (Hopcroft),
// complement, intersection, language equality, and relabeling — that the
// specialization-slicing algorithm composes (paper Alg. 1, lines 4–8, and
// the §7/§8.3 extensions). It plays the role OpenFST plays in the paper's
// implementation.
//
// The hot-path representations are dense: start/final sets are bitsets and
// transition dedup goes through an open-addressing hash index keyed on
// packed (from, sym, to) ints rather than a Go map of structs.
package fsa

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is an input symbol. Symbols are small non-negative integers
// assigned by the caller; Epsilon marks spontaneous transitions.
type Symbol int

// Epsilon is the empty-word pseudo-symbol.
const Epsilon Symbol = -1

// Transition is one labeled edge.
type Transition struct {
	From int
	Sym  Symbol
	To   int
}

// FSA is a finite automaton with a set of start states, possibly
// nondeterministic, possibly with epsilon transitions.
type FSA struct {
	numStates int
	starts    bitset
	finals    bitset
	out       [][]Transition
	// index deduplicates (from, sym, to) triples.
	index transSet
}

// New returns an automaton with n states and no transitions.
func New(n int) *FSA {
	return &FSA{
		numStates: n,
		out:       make([][]Transition, n),
	}
}

// NumStates returns the state count.
func (a *FSA) NumStates() int { return a.numStates }

// AddState appends a state, returning its index.
func (a *FSA) AddState() int {
	a.numStates++
	a.out = append(a.out, nil)
	return a.numStates - 1
}

// SetStart marks s as a start state.
func (a *FSA) SetStart(s int) { a.starts.set(s) }

// SetFinal marks s as accepting.
func (a *FSA) SetFinal(s int) { a.finals.set(s) }

// IsStart reports whether s is a start state.
func (a *FSA) IsStart(s int) bool { return a.starts.get(s) }

// IsFinal reports whether s accepts.
func (a *FSA) IsFinal(s int) bool { return a.finals.get(s) }

// Starts returns the start states, sorted.
func (a *FSA) Starts() []int { return a.starts.members() }

// Finals returns the accepting states, sorted.
func (a *FSA) Finals() []int { return a.finals.members() }

// NumStarts returns the start-state count.
func (a *FSA) NumStarts() int { return a.starts.count() }

// NumFinals returns the accepting-state count.
func (a *FSA) NumFinals() int { return a.finals.count() }

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Add inserts a transition (deduplicated). It reports whether the
// transition was new.
func (a *FSA) Add(from int, sym Symbol, to int) bool {
	t := Transition{from, sym, to}
	if !a.index.add(t) {
		return false
	}
	a.out[from] = append(a.out[from], t)
	return true
}

// Has reports whether the transition exists.
func (a *FSA) Has(from int, sym Symbol, to int) bool {
	return a.index.has(Transition{from, sym, to})
}

// Out returns the transitions leaving s.
func (a *FSA) Out(s int) []Transition { return a.out[s] }

// each visits every transition in insertion order per state.
func (a *FSA) each(f func(Transition)) {
	for _, ts := range a.out {
		for _, t := range ts {
			f(t)
		}
	}
}

// Transitions returns every transition, ordered by (from, sym, to).
func (a *FSA) Transitions() []Transition {
	out := make([]Transition, 0, a.index.n)
	a.each(func(t Transition) { out = append(out, t) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].Sym != out[j].Sym {
			return out[i].Sym < out[j].Sym
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumTransitions returns the transition count.
func (a *FSA) NumTransitions() int { return a.index.n }

// Alphabet returns the non-epsilon symbols appearing on transitions, sorted.
func (a *FSA) Alphabet() []Symbol {
	set := map[Symbol]bool{}
	a.each(func(t Transition) {
		if t.Sym != Epsilon {
			set[t.Sym] = true
		}
	})
	out := make([]Symbol, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// epsClosure expands a state set across epsilon transitions.
func (a *FSA) epsClosure(set map[int]bool) map[int]bool {
	work := make([]int, 0, len(set))
	for s := range set {
		work = append(work, s)
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range a.out[s] {
			if t.Sym == Epsilon && !set[t.To] {
				set[t.To] = true
				work = append(work, t.To)
			}
		}
	}
	return set
}

// Accepts reports whether the automaton accepts the word.
func (a *FSA) Accepts(word []Symbol) bool {
	cur := boolSet(a.Starts())
	cur = a.epsClosure(cur)
	for _, sym := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range a.out[s] {
				if t.Sym == sym {
					next[t.To] = true
				}
			}
		}
		cur = a.epsClosure(next)
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if a.IsFinal(s) {
			return true
		}
	}
	return false
}

// AcceptsFrom reports whether the automaton accepts word when started in
// the given state (rather than the start set). P-automata use this to test
// configuration acceptance: state = control location, word = stack.
func (a *FSA) AcceptsFrom(state int, word []Symbol) bool {
	cur := a.epsClosure(map[int]bool{state: true})
	for _, sym := range word {
		next := map[int]bool{}
		for s := range cur {
			for _, t := range a.out[s] {
				if t.Sym == sym {
					next[t.To] = true
				}
			}
		}
		cur = a.epsClosure(next)
		if len(cur) == 0 {
			return false
		}
	}
	for s := range cur {
		if a.IsFinal(s) {
			return true
		}
	}
	return false
}

// Reverse returns an automaton for the reversed language: every transition
// is flipped and start/final sets swap.
func (a *FSA) Reverse() *FSA {
	r := New(a.numStates)
	a.each(func(t Transition) { r.Add(t.To, t.Sym, t.From) })
	r.starts = a.finals.clone()
	r.finals = a.starts.clone()
	return r
}

// RemoveEpsilon returns an equivalent automaton without epsilon transitions.
func (a *FSA) RemoveEpsilon() *FSA {
	r := New(a.numStates)
	for s := 0; s < a.numStates; s++ {
		cl := a.epsClosure(map[int]bool{s: true})
		for c := range cl {
			if a.IsFinal(c) {
				r.SetFinal(s)
			}
			for _, t := range a.out[c] {
				if t.Sym != Epsilon {
					r.Add(s, t.Sym, t.To)
				}
			}
		}
	}
	r.starts = a.starts.clone()
	return r.Trim()
}

// Determinize performs the subset construction, returning a deterministic
// automaton (single start state, no epsilon transitions, at most one
// transition per (state, symbol)). Missing transitions mean rejection.
func (a *FSA) Determinize() *FSA {
	start := a.epsClosure(boolSet(a.Starts()))
	key := setKey(start)
	index := map[string]int{key: 0}
	sets := []map[int]bool{start}
	d := New(1)
	if anyFinal(a, start) {
		d.SetFinal(0)
	}
	d.SetStart(0)
	work := []int{0}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		// Group moves by symbol.
		moves := map[Symbol]map[int]bool{}
		for s := range sets[cur] {
			for _, t := range a.out[s] {
				if t.Sym == Epsilon {
					continue
				}
				if moves[t.Sym] == nil {
					moves[t.Sym] = map[int]bool{}
				}
				moves[t.Sym][t.To] = true
			}
		}
		syms := make([]Symbol, 0, len(moves))
		for s := range moves {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, sym := range syms {
			next := a.epsClosure(moves[sym])
			k := setKey(next)
			idx, ok := index[k]
			if !ok {
				idx = d.AddState()
				index[k] = idx
				sets = append(sets, next)
				if anyFinal(a, next) {
					d.SetFinal(idx)
				}
				work = append(work, idx)
			}
			d.Add(cur, sym, idx)
		}
	}
	return d
}

func boolSet(xs []int) map[int]bool {
	m := map[int]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func anyFinal(a *FSA, set map[int]bool) bool {
	for s := range set {
		if a.IsFinal(s) {
			return true
		}
	}
	return false
}

func setKey(set map[int]bool) string {
	xs := sortedKeys(set)
	var sb strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&sb, "%d,", x)
	}
	return sb.String()
}

// IsDeterministic reports whether the automaton has a single start state,
// no epsilon transitions, and at most one transition per (state, symbol).
func (a *FSA) IsDeterministic() bool {
	if a.starts.count() != 1 {
		return false
	}
	for s := 0; s < a.numStates; s++ {
		seen := map[Symbol]bool{}
		for _, t := range a.out[s] {
			if t.Sym == Epsilon || seen[t.Sym] {
				return false
			}
			seen[t.Sym] = true
		}
	}
	return true
}

// IsReverseDeterministic reports whether the reversed automaton is
// deterministic — the defining property of the paper's A6 (Obs. 3.11).
func (a *FSA) IsReverseDeterministic() bool {
	return a.Reverse().IsDeterministic()
}

// Trim removes states that are not both reachable from a start state and
// able to reach a final state, remapping state indices.
func (a *FSA) Trim() *FSA {
	reach := make(bitset, (a.numStates+63)/64)
	work := a.Starts()
	for _, s := range work {
		reach.set(s)
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range a.out[s] {
			if !reach.get(t.To) {
				reach.set(t.To)
				work = append(work, t.To)
			}
		}
	}
	// Co-reachable: backward from finals.
	back := make([][]int, a.numStates)
	a.each(func(t Transition) { back[t.To] = append(back[t.To], t.From) })
	co := make(bitset, (a.numStates+63)/64)
	work = a.Finals()
	for _, s := range work {
		co.set(s)
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range back[s] {
			if !co.get(p) {
				co.set(p)
				work = append(work, p)
			}
		}
	}
	keep := make([]int, a.numStates)
	n := 0
	for s := 0; s < a.numStates; s++ {
		if reach.get(s) && co.get(s) {
			keep[s] = n
			n++
		} else {
			keep[s] = -1
		}
	}
	r := New(n)
	a.each(func(t Transition) {
		f, g := keep[t.From], keep[t.To]
		if f >= 0 && g >= 0 {
			r.Add(f, t.Sym, g)
		}
	})
	for _, s := range a.Starts() {
		if keep[s] >= 0 {
			r.SetStart(keep[s])
		}
	}
	for _, s := range a.Finals() {
		if keep[s] >= 0 {
			r.SetFinal(keep[s])
		}
	}
	return r
}

// IsEmpty reports whether the language is empty.
func (a *FSA) IsEmpty() bool {
	t := a.Trim()
	return t.finals.count() == 0 || t.starts.count() == 0
}

// Relabel applies a symbol mapping (a one-state transducer), merging any
// symbols that map to the same image. Symbols not in the map are kept.
func (a *FSA) Relabel(m map[Symbol]Symbol) *FSA {
	r := New(a.numStates)
	a.each(func(t Transition) {
		sym := t.Sym
		if sym != Epsilon {
			if to, ok := m[sym]; ok {
				sym = to
			}
		}
		r.Add(t.From, sym, t.To)
	})
	r.starts = a.starts.clone()
	r.finals = a.finals.clone()
	return r
}

// InverseRelabel applies the inverse of a symbol mapping: a transition on
// symbol s becomes one transition per preimage of s. Symbols with no
// preimage are dropped.
func (a *FSA) InverseRelabel(m map[Symbol]Symbol) *FSA {
	pre := map[Symbol][]Symbol{}
	for from, to := range m {
		pre[to] = append(pre[to], from)
	}
	r := New(a.numStates)
	a.each(func(t Transition) {
		if t.Sym == Epsilon {
			r.Add(t.From, Epsilon, t.To)
			return
		}
		for _, s := range pre[t.Sym] {
			r.Add(t.From, s, t.To)
		}
	})
	r.starts = a.starts.clone()
	r.finals = a.finals.clone()
	return r
}

// Clone deep-copies the automaton.
func (a *FSA) Clone() *FSA {
	r := New(a.numStates)
	a.each(func(t Transition) { r.Add(t.From, t.Sym, t.To) })
	r.starts = a.starts.clone()
	r.finals = a.finals.clone()
	return r
}

// String renders the automaton for debugging.
func (a *FSA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FSA{states=%d starts=%v finals=%v\n", a.numStates, a.Starts(), a.Finals())
	for _, t := range a.Transitions() {
		sym := fmt.Sprintf("%d", t.Sym)
		if t.Sym == Epsilon {
			sym = "ε"
		}
		fmt.Fprintf(&sb, "  %d -%s-> %d\n", t.From, sym, t.To)
	}
	sb.WriteString("}")
	return sb.String()
}
