// Package fsa implements the nondeterministic and deterministic finite
// automata, and the operations on them — reverse, epsilon removal,
// determinization (subset construction), minimization (Hopcroft),
// complement, intersection, language equality, and relabeling — that the
// specialization-slicing algorithm composes (paper Alg. 1, lines 4–8, and
// the §7/§8.3 extensions). It plays the role OpenFST plays in the paper's
// implementation.
//
// The hot-path representations are dense: state sets are bitsets,
// transition dedup goes through an open-addressing hash index keyed on
// packed (from, sym, to) ints, subset construction interns state-set
// bitsets through an FNV hash table, and the pipeline stages draw their
// scratch (symbol-indexed adjacency, worklists, move sets) from a pooled
// arena (see pipeline.go).
package fsa

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is an input symbol. Symbols are small non-negative integers
// assigned by the caller; Epsilon marks spontaneous transitions.
type Symbol int

// Epsilon is the empty-word pseudo-symbol.
const Epsilon Symbol = -1

// Transition is one labeled edge.
type Transition struct {
	From int
	Sym  Symbol
	To   int
}

// FSA is a finite automaton with a set of start states, possibly
// nondeterministic, possibly with epsilon transitions.
type FSA struct {
	numStates int
	starts    bitset
	finals    bitset
	out       [][]Transition
	// index deduplicates (from, sym, to) triples.
	index transSet
	// alpha caches the non-epsilon symbols on transitions, maintained
	// incrementally by Add. Transitions are never removed, so the set is
	// always exact; keeping it as an Add-time bitset (rather than a slice
	// cached lazily inside Alphabet) means concurrent readers of a shared
	// automaton never race on a cache fill.
	alpha bitset
}

// New returns an automaton with n states and no transitions.
func New(n int) *FSA {
	return &FSA{
		numStates: n,
		out:       make([][]Transition, n),
	}
}

// NumStates returns the state count.
func (a *FSA) NumStates() int { return a.numStates }

// AddState appends a state, returning its index.
func (a *FSA) AddState() int {
	a.numStates++
	a.out = append(a.out, nil)
	return a.numStates - 1
}

// SetStart marks s as a start state.
func (a *FSA) SetStart(s int) { a.starts.set(s) }

// SetFinal marks s as accepting.
func (a *FSA) SetFinal(s int) { a.finals.set(s) }

// IsStart reports whether s is a start state.
func (a *FSA) IsStart(s int) bool { return a.starts.get(s) }

// IsFinal reports whether s accepts.
func (a *FSA) IsFinal(s int) bool { return a.finals.get(s) }

// Starts returns the start states, sorted.
func (a *FSA) Starts() []int { return a.starts.members() }

// Finals returns the accepting states, sorted.
func (a *FSA) Finals() []int { return a.finals.members() }

// NumStarts returns the start-state count.
func (a *FSA) NumStarts() int { return a.starts.count() }

// NumFinals returns the accepting-state count.
func (a *FSA) NumFinals() int { return a.finals.count() }

// Add inserts a transition (deduplicated). It reports whether the
// transition was new.
func (a *FSA) Add(from int, sym Symbol, to int) bool {
	t := Transition{from, sym, to}
	if !a.index.add(t) {
		return false
	}
	a.out[from] = append(a.out[from], t)
	if sym != Epsilon {
		a.alpha.set(int(sym))
	}
	return true
}

// Reserve sizes the transition-dedup index for about m transitions,
// avoiding rehash churn when the caller knows the transition count up
// front (bulk construction of queries, reversals, quotients).
func (a *FSA) Reserve(m int) { a.index.reserve(m) }

// Has reports whether the transition exists.
func (a *FSA) Has(from int, sym Symbol, to int) bool {
	return a.index.has(Transition{from, sym, to})
}

// Out returns the transitions leaving s.
func (a *FSA) Out(s int) []Transition { return a.out[s] }

// each visits every transition in insertion order per state.
func (a *FSA) each(f func(Transition)) {
	for _, ts := range a.out {
		for _, t := range ts {
			f(t)
		}
	}
}

// Each visits every transition, grouped by source state in insertion
// order — the allocation-free alternative to Transitions() for callers
// that do not need the sorted copy (the core readout and the slice
// projections consume automata this way).
func (a *FSA) Each(f func(Transition)) { a.each(f) }

// Transitions returns every transition, ordered by (from, sym, to).
func (a *FSA) Transitions() []Transition {
	out := make([]Transition, 0, a.index.n)
	a.each(func(t Transition) { out = append(out, t) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		if out[i].Sym != out[j].Sym {
			return out[i].Sym < out[j].Sym
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumTransitions returns the transition count.
func (a *FSA) NumTransitions() int { return a.index.n }

// Alphabet returns the non-epsilon symbols appearing on transitions,
// sorted. The set is maintained incrementally by Add, so this is a single
// pass over a bitset — no map, no sort.
func (a *FSA) Alphabet() []Symbol {
	out := make([]Symbol, 0, a.alpha.count())
	a.alpha.forEach(func(s int) { out = append(out, Symbol(s)) })
	return out
}

// closureInto expands set (a fixed-width bitset over the automaton's
// states) across epsilon transitions in place, using work as the DFS stack;
// the (possibly grown) stack is returned for reuse.
func (a *FSA) closureInto(set bitset, work []int) []int {
	work = work[:0]
	set.forEach(func(s int) { work = append(work, s) })
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range a.out[s] {
			if t.Sym == Epsilon && !set.get(t.To) {
				set[t.To>>6] |= 1 << (uint(t.To) & 63)
				work = append(work, t.To)
			}
		}
	}
	return work
}

// Accepts reports whether the automaton accepts the word.
func (a *FSA) Accepts(word []Symbol) bool {
	w := bitsWords(a.numStates)
	cur := make(bitset, w)
	copy(cur, a.starts)
	return a.acceptsSet(cur, word)
}

// AcceptsFrom reports whether the automaton accepts word when started in
// the given state (rather than the start set). P-automata use this to test
// configuration acceptance: state = control location, word = stack.
func (a *FSA) AcceptsFrom(state int, word []Symbol) bool {
	cur := make(bitset, bitsWords(a.numStates))
	if state < a.numStates {
		cur[state>>6] |= 1 << (uint(state) & 63)
	}
	return a.acceptsSet(cur, word)
}

// acceptsSet runs the word from the given state set; cur must be a
// fixed-width bitset over the automaton's states (it is consumed).
func (a *FSA) acceptsSet(cur bitset, word []Symbol) bool {
	next := make(bitset, len(cur))
	work := a.closureInto(cur, nil)
	for _, sym := range word {
		clear(next)
		any := false
		cur.forEach(func(s int) {
			for _, t := range a.out[s] {
				if t.Sym == sym {
					next[t.To>>6] |= 1 << (uint(t.To) & 63)
					any = true
				}
			}
		})
		cur, next = next, cur
		if !any {
			return false
		}
		work = a.closureInto(cur, work)
	}
	return cur.intersects(a.finals)
}

// Reverse returns an automaton for the reversed language: every transition
// is flipped and start/final sets swap.
func (a *FSA) Reverse() *FSA {
	r := New(a.numStates)
	r.Reserve(a.index.n)
	a.each(func(t Transition) { r.Add(t.To, t.Sym, t.From) })
	r.starts = a.finals.clone()
	r.finals = a.starts.clone()
	return r
}

// RemoveEpsilon returns an equivalent automaton without epsilon
// transitions, trimmed. Already-epsilon-free automata take a copy-free
// fast path.
func (a *FSA) RemoveEpsilon() *FSA {
	ar := getArena()
	defer putArena(ar)
	adj := buildAdjacency(a, false, ar)
	if !adj.hasEps {
		return a.Trim()
	}
	r := New(a.numStates)
	r.Reserve(a.index.n)
	w := bitsWords(a.numStates)
	cl := bitset(ar.u64(w))
	for s := 0; s < a.numStates; s++ {
		clear(cl)
		cl[s>>6] |= 1 << (uint(s) & 63)
		adj.closure(cl, ar)
		cl.forEach(func(c int) {
			if a.finals.get(c) {
				r.SetFinal(s)
			}
			for j := adj.start[c]; j < adj.start[c+1]; j++ {
				r.Add(s, adj.syms[adj.tsym[j]], int(adj.tto[j]))
			}
		})
	}
	r.starts = a.starts.clone()
	return r.Trim()
}

// distinctNonEps reports whether the automaton has no epsilon transitions
// and no two transitions sharing a key under keyOf, probing an arena-backed
// open-addressing set (no per-call heap allocation, bounded by the
// transition count rather than the symbol range).
func (a *FSA) distinctNonEps(keyOf func(Transition) uint64) bool {
	ar := getArena()
	defer putArena(ar)
	need := 16
	for need < 2*a.index.n {
		need *= 2
	}
	slots := ar.u64(need)
	mask := uint64(need - 1)
	for _, ts := range a.out {
		for _, t := range ts {
			if t.Sym == Epsilon {
				return false
			}
			k := keyOf(t)
			i := (k * 0x9E3779B97F4A7C15) >> 32 & mask
			for slots[i] != 0 {
				if slots[i] == k+1 {
					return false
				}
				i = (i + 1) & mask
			}
			slots[i] = k + 1
		}
	}
	return true
}

// IsDeterministic reports whether the automaton has a single start state,
// no epsilon transitions, and at most one transition per (state, symbol).
func (a *FSA) IsDeterministic() bool {
	return a.starts.count() == 1 &&
		a.distinctNonEps(func(t Transition) uint64 {
			return uint64(t.From)<<32 | uint64(uint32(t.Sym))
		})
}

// IsReverseDeterministic reports whether the reversed automaton is
// deterministic — the defining property of the paper's A6 (Obs. 3.11).
// Checked directly on the transition structure, without materializing the
// reversal: exactly one final state (the reversal's single start), no
// epsilon transitions, and no two transitions on the same symbol entering
// the same state.
func (a *FSA) IsReverseDeterministic() bool {
	return a.finals.count() == 1 &&
		a.distinctNonEps(func(t Transition) uint64 {
			return uint64(t.To)<<32 | uint64(uint32(t.Sym))
		})
}

// Trim removes states that are not both reachable from a start state and
// able to reach a final state, remapping state indices.
func (a *FSA) Trim() *FSA {
	ar := getArena()
	defer putArena(ar)
	n := a.numStates
	w := bitsWords(n)
	reach := bitset(ar.u64(w))
	work := ar.cwork[:0]
	a.starts.forEach(func(s int) {
		reach[s>>6] |= 1 << (uint(s) & 63)
		work = append(work, int32(s))
	})
	for len(work) > 0 {
		s := int(work[len(work)-1])
		work = work[:len(work)-1]
		for _, t := range a.out[s] {
			if !reach.get(t.To) {
				reach[t.To>>6] |= 1 << (uint(t.To) & 63)
				work = append(work, int32(t.To))
			}
		}
	}
	// Co-reachable: backward from finals over an arena CSR of the reversed
	// edges (symbols are irrelevant here).
	bstart := ar.i32(n + 1)
	a.each(func(t Transition) { bstart[t.To+1]++ })
	for s := 0; s < n; s++ {
		bstart[s+1] += bstart[s]
	}
	bfrom := ar.i32(int(bstart[n]))
	bcur := ar.i32(n)
	copy(bcur, bstart[:n])
	for from, ts := range a.out {
		for _, t := range ts {
			bfrom[bcur[t.To]] = int32(from)
			bcur[t.To]++
		}
	}
	co := bitset(ar.u64(w))
	work = work[:0]
	a.finals.forEach(func(s int) {
		co[s>>6] |= 1 << (uint(s) & 63)
		work = append(work, int32(s))
	})
	for len(work) > 0 {
		s := int(work[len(work)-1])
		work = work[:len(work)-1]
		for j := bstart[s]; j < bstart[s+1]; j++ {
			p := bfrom[j]
			if !co.get(int(p)) {
				co[p>>6] |= 1 << (uint(p) & 63)
				work = append(work, p)
			}
		}
	}
	ar.cwork = work[:0]
	keep := ar.i32(n) // new state + 1
	n2 := 0
	for s := 0; s < n; s++ {
		if reach.get(s) && co.get(s) {
			keep[s] = int32(n2) + 1
			n2++
		}
	}
	r := New(n2)
	r.Reserve(a.index.n)
	a.each(func(t Transition) {
		f, g := keep[t.From], keep[t.To]
		if f > 0 && g > 0 {
			r.Add(int(f-1), t.Sym, int(g-1))
		}
	})
	a.starts.forEach(func(s int) {
		if keep[s] > 0 {
			r.SetStart(int(keep[s] - 1))
		}
	})
	a.finals.forEach(func(s int) {
		if keep[s] > 0 {
			r.SetFinal(int(keep[s] - 1))
		}
	})
	return r
}

// IsEmpty reports whether the language is empty.
func (a *FSA) IsEmpty() bool {
	t := a.Trim()
	return t.finals.count() == 0 || t.starts.count() == 0
}

// Relabel applies a symbol mapping (a one-state transducer), merging any
// symbols that map to the same image. Symbols not in the map are kept.
func (a *FSA) Relabel(m map[Symbol]Symbol) *FSA {
	r := New(a.numStates)
	a.each(func(t Transition) {
		sym := t.Sym
		if sym != Epsilon {
			if to, ok := m[sym]; ok {
				sym = to
			}
		}
		r.Add(t.From, sym, t.To)
	})
	r.starts = a.starts.clone()
	r.finals = a.finals.clone()
	return r
}

// InverseRelabel applies the inverse of a symbol mapping: a transition on
// symbol s becomes one transition per preimage of s. Symbols with no
// preimage are dropped.
func (a *FSA) InverseRelabel(m map[Symbol]Symbol) *FSA {
	pre := map[Symbol][]Symbol{}
	for from, to := range m {
		pre[to] = append(pre[to], from)
	}
	r := New(a.numStates)
	a.each(func(t Transition) {
		if t.Sym == Epsilon {
			r.Add(t.From, Epsilon, t.To)
			return
		}
		for _, s := range pre[t.Sym] {
			r.Add(t.From, s, t.To)
		}
	})
	r.starts = a.starts.clone()
	r.finals = a.finals.clone()
	return r
}

// Clone deep-copies the automaton by structural copy — the transition
// index is memcpy'd rather than re-hashed, so cloning is cheap on the warm
// path (P-automaton → FSA conversion clones per request).
func (a *FSA) Clone() *FSA {
	r := &FSA{
		numStates: a.numStates,
		starts:    a.starts.clone(),
		finals:    a.finals.clone(),
		alpha:     a.alpha.clone(),
		out:       make([][]Transition, len(a.out)),
		index:     a.index.clone(),
	}
	for i, ts := range a.out {
		if len(ts) > 0 {
			r.out[i] = append([]Transition(nil), ts...)
		}
	}
	return r
}

// String renders the automaton for debugging.
func (a *FSA) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FSA{states=%d starts=%v finals=%v\n", a.numStates, a.Starts(), a.Finals())
	for _, t := range a.Transitions() {
		sym := fmt.Sprintf("%d", t.Sym)
		if t.Sym == Epsilon {
			sym = "ε"
		}
		fmt.Fprintf(&sb, "  %d -%s-> %d\n", t.From, sym, t.To)
	}
	sb.WriteString("}")
	return sb.String()
}
