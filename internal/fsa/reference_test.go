package fsa

// Differential tests for the dense automaton pipeline: the former
// map[int]bool / sorted-string-key implementations of the subset
// construction live on here as reference oracles (together with
// MinimizeMoore in ops.go), and the dense bitset Determinize / Hopcroft
// Minimize / fused MRD chain are checked against them on random NFAs —
// including automata with epsilon transitions and ≥ 64 states, so subsets
// span more than one bitset word.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// boolSet, sortedKeys, setKey, anyFinal, and the epsilon closure over
// map-based state sets are the retired production helpers, verbatim.

func boolSet(xs []int) map[int]bool {
	m := map[int]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func setKey(set map[int]bool) string {
	xs := sortedKeys(set)
	var sb strings.Builder
	for _, x := range xs {
		fmt.Fprintf(&sb, "%d,", x)
	}
	return sb.String()
}

func anyFinal(a *FSA, set map[int]bool) bool {
	for s := range set {
		if a.IsFinal(s) {
			return true
		}
	}
	return false
}

func mapEpsClosure(a *FSA, set map[int]bool) map[int]bool {
	work := make([]int, 0, len(set))
	for s := range set {
		work = append(work, s)
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range a.out[s] {
			if t.Sym == Epsilon && !set[t.To] {
				set[t.To] = true
				work = append(work, t.To)
			}
		}
	}
	return set
}

// referenceDeterminize is the retired map-based subset construction. It
// explores subsets in the same order as the dense implementation (LIFO
// worklist, symbols in sorted order), so the two must produce structurally
// identical DFAs, not merely language-equal ones.
func referenceDeterminize(a *FSA) *FSA {
	start := mapEpsClosure(a, boolSet(a.Starts()))
	key := setKey(start)
	index := map[string]int{key: 0}
	sets := []map[int]bool{start}
	d := New(1)
	if anyFinal(a, start) {
		d.SetFinal(0)
	}
	d.SetStart(0)
	work := []int{0}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		moves := map[Symbol]map[int]bool{}
		for s := range sets[cur] {
			for _, t := range a.out[s] {
				if t.Sym == Epsilon {
					continue
				}
				if moves[t.Sym] == nil {
					moves[t.Sym] = map[int]bool{}
				}
				moves[t.Sym][t.To] = true
			}
		}
		syms := make([]Symbol, 0, len(moves))
		for s := range moves {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
		for _, sym := range syms {
			next := mapEpsClosure(a, moves[sym])
			k := setKey(next)
			idx, ok := index[k]
			if !ok {
				idx = d.AddState()
				index[k] = idx
				sets = append(sets, next)
				if anyFinal(a, next) {
					d.SetFinal(idx)
				}
				work = append(work, idx)
			}
			d.Add(cur, sym, idx)
		}
	}
	return d
}

// randomWideNFA builds an NFA with 64–96 states (subsets cross the one-word
// bitset boundary), a handful of symbols, and a healthy epsilon share. It is
// kept sparse (~2 transitions per state) so the reference subset
// construction stays tractable across hundreds of iterations.
func randomWideNFA(rng *rand.Rand) *FSA {
	n := 64 + rng.Intn(33)
	a := New(n)
	for i := 0; i < 1+rng.Intn(3); i++ {
		a.SetStart(rng.Intn(n))
	}
	nsym := 3 + rng.Intn(4)
	for i := 0; i < 2*n; i++ {
		sym := Symbol(rng.Intn(nsym))
		if rng.Intn(6) == 0 {
			sym = Epsilon
		}
		a.Add(rng.Intn(n), sym, rng.Intn(n))
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		a.SetFinal(rng.Intn(n))
	}
	return a
}

func sameFSA(a, b *FSA) error {
	if a.NumStates() != b.NumStates() {
		return fmt.Errorf("state counts differ: %d vs %d", a.NumStates(), b.NumStates())
	}
	as, bs := a.Starts(), b.Starts()
	if fmt.Sprint(as) != fmt.Sprint(bs) {
		return fmt.Errorf("start sets differ: %v vs %v", as, bs)
	}
	af, bf := a.Finals(), b.Finals()
	if fmt.Sprint(af) != fmt.Sprint(bf) {
		return fmt.Errorf("final sets differ: %v vs %v", af, bf)
	}
	at, bt := a.Transitions(), b.Transitions()
	if len(at) != len(bt) {
		return fmt.Errorf("transition counts differ: %d vs %d", len(at), len(bt))
	}
	for i := range at {
		if at[i] != bt[i] {
			return fmt.Errorf("transition %d differs: %v vs %v", i, at[i], bt[i])
		}
	}
	return nil
}

// TestDenseDeterminizeMatchesReference pits the bitset subset construction
// against the retired map-based one on ≥ 200 wide random NFAs, demanding
// structural identity.
func TestDenseDeterminizeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20140611))
	for iter := 0; iter < 220; iter++ {
		a := randomWideNFA(rng)
		dense := a.Determinize()
		ref := referenceDeterminize(a)
		if err := sameFSA(dense, ref); err != nil {
			t.Fatalf("iter %d: dense vs reference determinize: %v", iter, err)
		}
		if !dense.IsDeterministic() {
			t.Fatalf("iter %d: dense result is not deterministic", iter)
		}
	}
}

// TestDenseMinimizeMatchesMooreWide checks the dense Hopcroft against the
// map-based Moore oracle on wide automata: the minimal DFA is unique up to
// renaming, so state/transition counts must agree and the languages must be
// equal.
func TestDenseMinimizeMatchesMooreWide(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		a := randomWideNFA(rng)
		h := a.Minimize()
		m := a.MinimizeMoore()
		if h.NumStates() != m.NumStates() {
			t.Fatalf("iter %d: hopcroft %d states, moore %d", iter, h.NumStates(), m.NumStates())
		}
		if h.NumTransitions() != m.NumTransitions() {
			t.Fatalf("iter %d: hopcroft %d transitions, moore %d", iter, h.NumTransitions(), m.NumTransitions())
		}
		if !Equal(h, m) {
			t.Fatalf("iter %d: hopcroft and moore languages differ", iter)
		}
	}
}

// TestMRDMatchesComposedChain checks the fused MRD pipeline against the
// composed one it replaces, including the reported pre-trim DFA size.
func TestMRDMatchesComposedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		a := randomWideNFA(rng)
		fused, st := MRD(a)
		rev := a.Reverse()
		det := rev.Determinize()
		if st.DetStates != det.NumStates() {
			t.Fatalf("iter %d: MRD reports %d det states, composed %d", iter, st.DetStates, det.NumStates())
		}
		composed := det.Minimize().Reverse().RemoveEpsilon()
		if err := sameFSA(fused, composed); err != nil {
			t.Fatalf("iter %d: fused vs composed MRD: %v", iter, err)
		}
	}
}

// TestAlphabetTracksAdd verifies the incremental alphabet cache: Alphabet
// reflects every Add immediately, stays sorted, and ignores epsilon.
func TestAlphabetTracksAdd(t *testing.T) {
	a := New(3)
	if got := a.Alphabet(); len(got) != 0 {
		t.Fatalf("fresh automaton alphabet = %v, want empty", got)
	}
	a.Add(0, 7, 1)
	a.Add(1, Epsilon, 2)
	a.Add(1, 3, 2)
	if got := fmt.Sprint(a.Alphabet()); got != "[3 7]" {
		t.Fatalf("alphabet = %v, want [3 7]", got)
	}
	a.Add(2, 100, 0) // crosses into a later bitset word
	if got := fmt.Sprint(a.Alphabet()); got != "[3 7 100]" {
		t.Fatalf("alphabet after Add = %v, want [3 7 100]", got)
	}
	a.Add(2, 100, 0) // duplicate: no change
	if got := fmt.Sprint(a.Alphabet()); got != "[3 7 100]" {
		t.Fatalf("alphabet after duplicate Add = %v", got)
	}
}
