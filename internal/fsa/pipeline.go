package fsa

// Dense automaton pipeline: per-automaton symbol-indexed adjacency (CSR),
// bitset subset construction with an FNV interning table in place of sorted
// string keys, in-place Hopcroft partition refinement, and the fused
// reverse→determinize→minimize→reverse chain (MRD) that core.Specialize
// runs per slice request (Alg. 1 lines 4–8). All scratch is drawn from a
// pooled arena, so warm requests run the whole chain with near-zero
// per-request allocation — the same discipline pds.PrestarEngine applies to
// the Prestar half of the pipeline.

import (
	"math/bits"
	"sort"
	"sync"
	"time"
)

// pipeArena holds the reusable scratch of one pipeline run: bump-allocated
// int32/uint64 backing for CSR arrays and bitsets, the subset interner, and
// the growable worklists. Arenas are borrowed from pipePool per run; the
// bump offsets reset on borrow while capacities persist, so a warm pipeline
// re-uses the previous run's memory.
type pipeArena struct {
	i32buf []int32
	i32off int
	u64buf []uint64
	u64off int

	symbuf []Symbol // materialized sorted alphabet (valid until next buildAdjacency)
	work   []int32  // determinize worklist of subset ids / hopcroft splitters
	cwork  []int32  // closure / trim DFS stack
	bmem   []int32  // hopcroft: splitter-block member snapshot
	tbl    []int32  // hopcroft: blocks touched by the current splitter

	touched []int    // determinize: dense symbol indexes hit by a subset
	symSets []bitset // determinize: per-symbol move accumulation sets
	symMark []uint64 // determinize: round stamp per symbol
	round   uint64   // monotone per arena; never reused across runs
	in      interner
}

var pipePool = sync.Pool{New: func() any { return &pipeArena{} }}

func getArena() *pipeArena {
	ar := pipePool.Get().(*pipeArena)
	ar.i32off, ar.u64off = 0, 0
	return ar
}

func putArena(ar *pipeArena) { pipePool.Put(ar) }

// i32 bump-allocates a zeroed []int32. Slices handed out earlier in the same
// run stay valid (they pin the old backing if it is replaced by growth).
func (ar *pipeArena) i32(n int) []int32 {
	if ar.i32off+n > len(ar.i32buf) {
		c := 2 * len(ar.i32buf)
		if c < ar.i32off+n {
			c = ar.i32off + n
		}
		if c < 1024 {
			c = 1024
		}
		ar.i32buf = make([]int32, c)
		ar.i32off = 0
	}
	s := ar.i32buf[ar.i32off : ar.i32off+n : ar.i32off+n]
	ar.i32off += n
	clear(s)
	return s
}

// u64 bump-allocates a zeroed []uint64 (a fixed-width bitset).
func (ar *pipeArena) u64(n int) []uint64 {
	if ar.u64off+n > len(ar.u64buf) {
		c := 2 * len(ar.u64buf)
		if c < ar.u64off+n {
			c = ar.u64off + n
		}
		if c < 256 {
			c = 256
		}
		ar.u64buf = make([]uint64, c)
		ar.u64off = 0
	}
	s := ar.u64buf[ar.u64off : ar.u64off+n : ar.u64off+n]
	ar.u64off += n
	clear(s)
	return s
}

// symbols materializes the automaton's cached alphabet bitset, sorted. The
// buffer is shared per arena: the result is valid only until the next
// buildAdjacency on the same arena.
func (ar *pipeArena) symbols(a *FSA) []Symbol {
	out := ar.symbuf[:0]
	for wi, w := range a.alpha {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			w &^= 1 << uint(i)
			out = append(out, Symbol(wi<<6+i))
		}
	}
	ar.symbuf = out
	return out
}

// interner deduplicates state sets (fixed-width bitsets) during subset
// construction: an open-addressing table over FNV-hashed set words mapping
// each distinct set to a dense id — replacing the former sorted
// "%d,%d,…"-string keys. Set payloads live concatenated in data.
type interner struct {
	w     int // words per set
	n     int
	data  []uint64
	table []int32 // set id + 1; 0 means empty
}

func (in *interner) init(w int) {
	in.w, in.n = w, 0
	in.data = in.data[:0]
	if len(in.table) < 64 {
		in.table = make([]int32, 64)
	} else {
		clear(in.table)
	}
}

// fnvWords is FNV-1a folded over 64-bit words.
func fnvWords(ws []uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, w := range ws {
		h ^= w
		h *= 1099511628211
	}
	return h
}

func (in *interner) set(id int) bitset {
	return bitset(in.data[id*in.w : (id+1)*in.w])
}

// lookupOrAdd interns set, reporting its id and whether it was new. The set
// is copied, so the caller may keep mutating its scratch buffer.
func (in *interner) lookupOrAdd(set bitset) (int, bool) {
	mask := uint64(len(in.table) - 1)
	i := fnvWords(set) & mask
	for in.table[i] != 0 {
		id := int(in.table[i] - 1)
		if wordsEqual(in.data[id*in.w:(id+1)*in.w], set) {
			return id, false
		}
		i = (i + 1) & mask
	}
	id := in.n
	in.n++
	in.data = append(in.data, set...)
	in.table[i] = int32(id + 1)
	if 4*in.n >= 3*len(in.table) {
		in.grow()
	}
	return id, true
}

func (in *interner) grow() {
	old := in.table
	in.table = make([]int32, 2*len(old))
	mask := uint64(len(in.table) - 1)
	for _, v := range old {
		if v == 0 {
			continue
		}
		id := int(v - 1)
		i := fnvWords(in.data[id*in.w:(id+1)*in.w]) & mask
		for in.table[i] != 0 {
			i = (i + 1) & mask
		}
		in.table[i] = v
	}
}

func wordsEqual(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// adjacency is the symbol-indexed dense view of an automaton, built once
// per pipeline stage: per-state non-epsilon out-transitions in CSR form
// with symbols renumbered to dense indexes 0..k-1 (sorted symbol order),
// plus a separate epsilon CSR. With reversed=true it indexes the reversed
// automaton without materializing it.
type adjacency struct {
	n        int
	syms     []Symbol // sorted distinct non-epsilon symbols
	start    []int32  // len n+1: CSR offsets into tsym/tto
	tsym     []int32  // dense symbol index per transition
	tto      []int32
	epsStart []int32 // len n+1
	epsTo    []int32
	hasEps   bool
}

func buildAdjacency(a *FSA, reversed bool, ar *pipeArena) adjacency {
	n := a.numStates
	adj := adjacency{n: n, syms: ar.symbols(a)}
	symIdx := ar.i32(64 * len(a.alpha)) // symbol -> dense index + 1
	for i, s := range adj.syms {
		symIdx[s] = int32(i + 1)
	}
	adj.start = ar.i32(n + 1)
	adj.epsStart = ar.i32(n + 1)
	for from, ts := range a.out {
		for _, t := range ts {
			src := from
			if reversed {
				src = t.To
			}
			if t.Sym == Epsilon {
				adj.epsStart[src+1]++
			} else {
				adj.start[src+1]++
			}
		}
	}
	for s := 0; s < n; s++ {
		adj.start[s+1] += adj.start[s]
		adj.epsStart[s+1] += adj.epsStart[s]
	}
	m, me := int(adj.start[n]), int(adj.epsStart[n])
	adj.tsym = ar.i32(m)
	adj.tto = ar.i32(m)
	adj.epsTo = ar.i32(me)
	adj.hasEps = me > 0
	cur := ar.i32(n)
	cure := ar.i32(n)
	copy(cur, adj.start[:n])
	copy(cure, adj.epsStart[:n])
	for from, ts := range a.out {
		for _, t := range ts {
			src, dst := from, t.To
			if reversed {
				src, dst = t.To, from
			}
			if t.Sym == Epsilon {
				adj.epsTo[cure[src]] = int32(dst)
				cure[src]++
			} else {
				adj.tsym[cur[src]] = symIdx[t.Sym] - 1
				adj.tto[cur[src]] = int32(dst)
				cur[src]++
			}
		}
	}
	return adj
}

// closure expands set across epsilon transitions, in place.
func (adj *adjacency) closure(set bitset, ar *pipeArena) {
	if !adj.hasEps {
		return
	}
	work := ar.cwork[:0]
	for wi, w := range set {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			w &^= 1 << uint(i)
			work = append(work, int32(wi<<6+i))
		}
	}
	for len(work) > 0 {
		s := int(work[len(work)-1])
		work = work[:len(work)-1]
		for j := adj.epsStart[s]; j < adj.epsStart[s+1]; j++ {
			t := adj.epsTo[j]
			if set[t>>6]&(1<<(uint(t)&63)) == 0 {
				set[t>>6] |= 1 << (uint(t) & 63)
				work = append(work, t)
			}
		}
	}
	ar.cwork = work[:0]
}

// Determinize performs the subset construction, returning a deterministic
// automaton (single start state, no epsilon transitions, at most one
// transition per (state, symbol)). Missing transitions mean rejection.
func (a *FSA) Determinize() *FSA {
	ar := getArena()
	defer putArena(ar)
	adj := buildAdjacency(a, false, ar)
	return determinize(&adj, a.starts, a.finals, ar)
}

// determinize is the bitset subset construction over a prebuilt adjacency:
// subsets are fixed-width bitsets deduplicated through the FNV interner,
// and the per-symbol move sets are arena bitsets reused across subsets.
// starts/finals are read against adj (so a reversed adjacency passes the
// original finals as starts and vice versa).
func determinize(adj *adjacency, starts, finals bitset, ar *pipeArena) *FSA {
	w := bitsWords(adj.n)
	ar.in.init(w)
	k := len(adj.syms)
	for len(ar.symSets) < k {
		ar.symSets = append(ar.symSets, nil)
	}
	for len(ar.symMark) < k {
		ar.symMark = append(ar.symMark, 0)
	}

	cur := bitset(ar.u64(w))
	copy(cur, starts)
	adj.closure(cur, ar)
	ar.in.lookupOrAdd(cur) // id 0
	d := New(1)
	d.SetStart(0)
	if cur.intersects(finals) {
		d.SetFinal(0)
	}
	work := append(ar.work[:0], 0)
	touched := ar.touched[:0]

	for len(work) > 0 {
		curID := int(work[len(work)-1])
		work = work[:len(work)-1]
		ar.round++
		touched = touched[:0]
		// Bucket the subset's moves by dense symbol index. The interned
		// payload is only read here, before lookupOrAdd can grow data.
		set := ar.in.set(curID)
		for wi, wd := range set {
			for wd != 0 {
				i := bits.TrailingZeros64(wd)
				wd &^= 1 << uint(i)
				s := wi<<6 + i
				for j := adj.start[s]; j < adj.start[s+1]; j++ {
					si := adj.tsym[j]
					ss := ar.symSets[si]
					if ar.symMark[si] != ar.round {
						ar.symMark[si] = ar.round
						touched = append(touched, int(si))
						if len(ss) < w {
							ss = make(bitset, w)
							ar.symSets[si] = ss
						} else {
							clear(ss[:w])
						}
					}
					to := adj.tto[j]
					ss[to>>6] |= 1 << (uint(to) & 63)
				}
			}
		}
		sort.Ints(touched)
		for _, si := range touched {
			next := ar.symSets[si][:w]
			adj.closure(next, ar)
			id, isNew := ar.in.lookupOrAdd(next)
			if isNew {
				ns := d.AddState()
				if next.intersects(finals) {
					d.SetFinal(ns)
				}
				work = append(work, int32(id))
			}
			d.Add(curID, adj.syms[si], id)
		}
	}
	ar.work = work[:0]
	ar.touched = touched[:0]
	return d
}

// hopcroft runs Hopcroft's partition-refinement minimization on a trim DFA,
// on dense structures: a flat successor array, per-symbol inverse-CSR, and
// in-place partition refinement over a state permutation. Missing
// transitions are handled by an implicit dead state that is never emitted.
func hopcroft(d *FSA) *FSA {
	ar := getArena()
	defer putArena(ar)
	return hopcroftWith(d, ar)
}

func hopcroftWith(d *FSA, ar *pipeArena) *FSA {
	n := d.numStates
	adj := buildAdjacency(d, false, ar)
	k := len(adj.syms)
	dead := n
	total := n + 1

	// succ[s*k+si] = successor+1; 0 means the implicit dead state.
	succ := ar.i32(total * k)
	for s := 0; s < n; s++ {
		for j := adj.start[s]; j < adj.start[s+1]; j++ {
			succ[s*k+int(adj.tsym[j])] = adj.tto[j] + 1
		}
	}
	// Inverse CSR over (symbol, target): every (state, symbol) pair
	// contributes one predecessor entry (missing transitions target dead).
	invStart := ar.i32(k*total + 1)
	for s := 0; s < total; s++ {
		for si := 0; si < k; si++ {
			to := dead
			if s < n {
				if v := succ[s*k+si]; v != 0 {
					to = int(v - 1)
				}
			}
			invStart[si*total+to+1]++
		}
	}
	for i := 1; i <= k*total; i++ {
		invStart[i] += invStart[i-1]
	}
	invPred := ar.i32(total * k)
	invCur := ar.i32(k * total)
	copy(invCur, invStart[:k*total])
	for s := 0; s < total; s++ {
		for si := 0; si < k; si++ {
			to := dead
			if s < n {
				if v := succ[s*k+si]; v != 0 {
					to = int(v - 1)
				}
			}
			invPred[invCur[si*total+to]] = int32(s)
			invCur[si*total+to]++
		}
	}

	// Partition refinement state: elems is a permutation of the states,
	// grouped by block; each block is elems[first:end) with its marked
	// members in elems[first:mid).
	elems := ar.i32(total)
	pos := ar.i32(total)
	blk := ar.i32(total)
	first := ar.i32(total)
	mid := ar.i32(total)
	end := ar.i32(total)
	nf := d.finals.count()
	i, j := 0, nf
	for s := 0; s < n; s++ {
		if d.finals.get(s) {
			elems[i] = int32(s)
			i++
		} else {
			elems[j] = int32(s)
			j++
		}
	}
	elems[j] = int32(dead)
	for e := 0; e < total; e++ {
		pos[elems[e]] = int32(e)
	}
	nb := 0
	addInit := func(lo, hi int) {
		first[nb], mid[nb], end[nb] = int32(lo), int32(lo), int32(hi)
		for e := lo; e < hi; e++ {
			blk[elems[e]] = int32(nb)
		}
		nb++
	}
	if nf > 0 {
		addInit(0, nf)
	}
	addInit(nf, total)

	// Worklist of (block, symbol) splitters, encoded block*k+symbol.
	inWork := bitset(ar.u64(bitsWords(total * k)))
	work := ar.work[:0]
	push := func(b, si int) {
		sp := b*k + si
		if inWork[sp>>6]&(1<<(uint(sp)&63)) == 0 {
			inWork[sp>>6] |= 1 << (uint(sp) & 63)
			work = append(work, int32(sp))
		}
	}
	for b := 0; b < nb; b++ {
		for si := 0; si < k; si++ {
			push(b, si)
		}
	}

	for len(work) > 0 {
		sp := int(work[len(work)-1])
		work = work[:len(work)-1]
		inWork[sp>>6] &^= 1 << (uint(sp) & 63)
		bsp, si := sp/k, sp%k

		// Snapshot the splitter block: marking permutes elems, possibly
		// within this very block.
		bm := ar.bmem[:0]
		for e := first[bsp]; e < end[bsp]; e++ {
			bm = append(bm, elems[e])
		}
		// Mark every state with a si-transition into the splitter block.
		tb := ar.tbl[:0]
		for _, qe := range bm {
			row := si*total + int(qe)
			for x := invStart[row]; x < invStart[row+1]; x++ {
				p := invPred[x]
				pb := blk[p]
				if pos[p] < mid[pb] {
					continue // already marked
				}
				if mid[pb] == first[pb] {
					tb = append(tb, pb)
				}
				mp, pe := mid[pb], pos[p]
				o := elems[mp]
				elems[mp], elems[pe] = p, o
				pos[p], pos[o] = mp, pe
				mid[pb] = mp + 1
			}
		}
		ar.bmem = bm[:0]
		// Split every block the marks cut.
		for _, pbv := range tb {
			pb := int(pbv)
			szIn := int(mid[pb] - first[pb])
			szOut := int(end[pb] - mid[pb])
			if szOut == 0 {
				mid[pb] = first[pb]
				continue
			}
			// The marked part keeps block id pb; the unmarked tail becomes
			// a new block.
			newb := nb
			nb++
			first[newb], mid[newb], end[newb] = mid[pb], mid[pb], end[pb]
			end[pb], mid[pb] = first[newb], first[pb]
			for e := first[newb]; e < end[newb]; e++ {
				blk[elems[e]] = int32(newb)
			}
			for s2 := 0; s2 < k; s2++ {
				if spb := pb*k + s2; inWork[spb>>6]&(1<<(uint(spb)&63)) != 0 {
					push(newb, s2)
				} else if szIn <= szOut {
					push(pb, s2)
				} else {
					push(newb, s2)
				}
			}
		}
		ar.tbl = tb[:0]
	}
	ar.work = work[:0]

	// Emit the quotient automaton, skipping the dead block.
	deadBlock := blk[dead]
	remap := ar.i32(nb) // block -> state + 1
	m := New(0)
	for b := 0; b < nb; b++ {
		if int32(b) != deadBlock {
			remap[b] = int32(m.AddState()) + 1
		}
	}
	m.Reserve(d.index.n)
	for s := 0; s < n; s++ {
		fb := remap[blk[s]]
		if fb == 0 {
			continue
		}
		for j := adj.start[s]; j < adj.start[s+1]; j++ {
			if tbv := remap[blk[adj.tto[j]]]; tbv != 0 {
				m.Add(int(fb-1), adj.syms[adj.tsym[j]], int(tbv-1))
			}
		}
	}
	if sbv := remap[blk[d.Starts()[0]]]; sbv != 0 {
		m.SetStart(int(sbv - 1))
	}
	for _, f := range d.Finals() {
		if fbv := remap[blk[f]]; fbv != 0 {
			m.SetFinal(int(fbv - 1))
		}
	}
	return m.Trim()
}

// MRDStats reports the fused pipeline's sub-phase breakdown (the automaton
// share of the paper's Fig. 21 timings).
type MRDStats struct {
	// DetStates is the state count of the reversed automaton's DFA before
	// trimming — the §4.2 "determinize shrinks in practice" observable.
	DetStates   int
	Determinize time.Duration
	Minimize    time.Duration
}

// MRD computes the minimal reverse-deterministic automaton of a — the
// fused reverse → determinize → minimize → reverse chain of Alg. 1 lines
// 4–8. The reversal is folded into the subset construction's adjacency
// (the reversed automaton is never materialized), the minimal DFA is
// already epsilon-free so no epsilon-removal pass runs, and both stages
// share one scratch arena.
func MRD(a *FSA) (*FSA, MRDStats) {
	var st MRDStats
	ar := getArena()
	defer putArena(ar)
	t0 := time.Now()
	radj := buildAdjacency(a, true, ar)
	d := determinize(&radj, a.finals, a.starts, ar)
	st.DetStates = d.NumStates()
	st.Determinize = time.Since(t0)
	t1 := time.Now()
	d = d.Trim()
	m := d
	if d.NumStates() > 0 {
		m = hopcroftWith(d, ar)
	}
	st.Minimize = time.Since(t1)
	return m.Reverse(), st
}
