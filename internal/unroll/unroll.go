// Package unroll materializes the (truncated) unrolled SDG — the explicit
// configuration graph the paper formalizes specialization slicing on — and
// slices it by plain graph reachability. For non-recursive programs the
// unrolling is finite and exact, giving an independent ground truth for the
// soundness, completeness, and minimality (Defn. 2.10) of the
// automaton-based algorithm; for recursive programs a depth bound gives a
// one-sided check.
package unroll

import (
	"fmt"
	"sort"
	"strings"

	"specslice/internal/sdg"
)

// Key identifies a configuration (v, w): vertex plus call-stack, innermost
// site first, rendered as a string for map keys.
type Key string

// MakeKey builds a configuration key.
func MakeKey(v sdg.VertexID, stack []sdg.SiteID) Key {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d", v)
	for _, s := range stack {
		fmt.Fprintf(&sb, "|%d", s)
	}
	return Key(sb.String())
}

// Graph is an explicit unrolled SDG, truncated at MaxDepth pending calls.
type Graph struct {
	S        *sdg.Graph
	MaxDepth int
	// Truncated reports whether the depth bound was hit (the unrolling is
	// then a prefix of the true infinite unrolling).
	Truncated bool

	// Contexts lists, per procedure index, the call stacks (innermost
	// first) of its instances.
	Contexts map[int][][]sdg.SiteID

	// preds maps each configuration to its predecessors.
	preds map[Key][]Key
	nodes map[Key]bool
}

// Build explicitly unrolls g up to maxDepth pending calls.
func Build(g *sdg.Graph, maxDepth int) *Graph {
	u := &Graph{
		S: g, MaxDepth: maxDepth,
		Contexts: map[int][][]sdg.SiteID{},
		preds:    map[Key][]Key{},
		nodes:    map[Key]bool{},
	}

	// Enumerate contexts per procedure by walking the call multigraph from
	// main.
	mainIdx := g.ProcByName["main"]
	type item struct {
		proc  int
		stack []sdg.SiteID
	}
	seen := map[string]bool{}
	var queue []item
	push := func(it item) {
		k := fmt.Sprint(it.proc, it.stack)
		if seen[k] {
			return
		}
		seen[k] = true
		u.Contexts[it.proc] = append(u.Contexts[it.proc], it.stack)
		queue = append(queue, it)
	}
	push(item{mainIdx, nil})
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if len(it.stack) >= maxDepth {
			u.Truncated = true
			continue
		}
		for _, sid := range g.Procs[it.proc].Sites {
			site := g.Sites[sid]
			if site.Lib {
				continue
			}
			callee := g.ProcByName[site.Callee]
			stack := append([]sdg.SiteID{sid}, it.stack...)
			push(item{callee, stack})
		}
	}

	// Materialize nodes and edges.
	addEdge := func(from, to Key) {
		u.preds[to] = append(u.preds[to], from)
	}
	for procIdx, stacks := range u.Contexts {
		for _, w := range stacks {
			for _, v := range g.Procs[procIdx].Vertices {
				u.nodes[MakeKey(v, w)] = true
			}
		}
	}
	for procIdx, stacks := range u.Contexts {
		for _, w := range stacks {
			for _, v := range g.Procs[procIdx].Vertices {
				from := MakeKey(v, w)
				for _, e := range g.Out(v) {
					switch e.Kind {
					case sdg.EdgeControl, sdg.EdgeFlow:
						addEdge(from, MakeKey(e.To, w))
					case sdg.EdgeCall, sdg.EdgeParamIn:
						site := g.Vertices[e.From].Site
						wTo := append([]sdg.SiteID{site}, w...)
						to := MakeKey(e.To, wTo)
						if u.nodes[to] {
							addEdge(from, to)
						}
					case sdg.EdgeParamOut:
						// from = (fo, C·w'), to = (ao, w').
						if len(w) == 0 {
							continue
						}
						site := g.Vertices[e.To].Site
						if w[0] != site {
							continue
						}
						addEdge(from, MakeKey(e.To, w[1:]))
					}
				}
			}
		}
	}
	return u
}

// BackwardSlice computes the closure slice of the unrolled graph from the
// given configurations by plain reverse reachability.
func (u *Graph) BackwardSlice(criterion []Key) map[Key]bool {
	out := map[Key]bool{}
	var work []Key
	for _, k := range criterion {
		if u.nodes[k] {
			out[k] = true
			work = append(work, k)
		}
	}
	for len(work) > 0 {
		k := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range u.preds[k] {
			if !out[p] {
				out[p] = true
				work = append(work, p)
			}
		}
	}
	return out
}

// Variant is one procedure instance's portion of a slice.
type Variant struct {
	Proc  int
	Stack []sdg.SiteID
	Elems []sdg.VertexID // sorted
}

// ElemsKey canonically renders the element set.
func (v *Variant) ElemsKey() string {
	var sb strings.Builder
	for _, e := range v.Elems {
		fmt.Fprintf(&sb, "%d,", e)
	}
	return sb.String()
}

// Variants groups a slice's configurations into per-instance variants
// (Defn. 2.6).
func (u *Graph) Variants(slice map[Key]bool) []Variant {
	var out []Variant
	for procIdx, stacks := range u.Contexts {
		for _, w := range stacks {
			var elems []sdg.VertexID
			for _, v := range u.S.Procs[procIdx].Vertices {
				if slice[MakeKey(v, w)] {
					elems = append(elems, v)
				}
			}
			if len(elems) == 0 {
				continue
			}
			sort.Slice(elems, func(i, j int) bool { return elems[i] < elems[j] })
			out = append(out, Variant{Proc: procIdx, Stack: w, Elems: elems})
		}
	}
	return out
}

// Specializations computes, per procedure name, the distinct element sets
// over all variants — the paper's Specializations(P) (Eqn. 3), the ground
// truth for minimality.
func (u *Graph) Specializations(slice map[Key]bool) map[string]map[string][]sdg.VertexID {
	out := map[string]map[string][]sdg.VertexID{}
	for _, v := range u.Variants(slice) {
		name := u.S.Procs[v.Proc].Name
		if out[name] == nil {
			out[name] = map[string][]sdg.VertexID{}
		}
		out[name][v.ElemsKey()] = v.Elems
	}
	return out
}
