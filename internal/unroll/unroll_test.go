package unroll

import (
	"fmt"
	"testing"

	"specslice/internal/core"
	"specslice/internal/fsa"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// keyToWord converts an unrolled configuration key to the encoding's word.
func wordFor(enc *core.Encoding, v sdg.VertexID, stack []sdg.SiteID) []fsa.Symbol {
	w := []fsa.Symbol{enc.VertexSym(v)}
	for _, s := range stack {
		w = append(w, enc.SiteSym(s))
	}
	return w
}

// TestGroundTruthFig1 checks soundness, completeness, and minimality of the
// automaton-based algorithm against the explicit finite unrolling of the
// paper's non-recursive Fig. 1.
func TestGroundTruthFig1(t *testing.T) {
	g := sdg.MustBuild(workload.Fig1Program())
	checkGroundTruth(t, g, 10)
}

// TestGroundTruthFig2Bounded: Fig. 2 is recursive; soundness is checked on
// a depth-5 prefix (every bounded-slice configuration must be accepted by
// A1, and the specialization sets must already have converged).
func TestGroundTruthFig2Bounded(t *testing.T) {
	g := sdg.MustBuild(workload.Fig2Program())
	crit := core.PrintfCriterion(g, "main")
	res, err := core.Specialize(g, core.Configs(cfgsOf(crit)))
	if err != nil {
		t.Fatal(err)
	}
	u := Build(g, 5)
	if !u.Truncated {
		t.Fatal("expected truncation on a recursive program")
	}
	var keys []Key
	for _, v := range crit {
		keys = append(keys, MakeKey(v, nil))
	}
	sl := u.BackwardSlice(keys)
	// Soundness of A1 w.r.t. the prefix: every explicitly sliced
	// configuration is accepted.
	enc := res.Enc
	for k := range sl {
		v, stack := parseKey(k)
		if !res.A1.Accepts(wordFor(enc, v, stack)) {
			t.Errorf("A1 rejects unrolled-slice configuration %s", k)
		}
	}
	// Variants near the truncation boundary are cut short, so compare only
	// interior variants (stack depth ≤ bound − 3): each interior
	// element set must appear among the algorithm's specializations.
	got := gotSpecializations(res)
	for _, v := range u.Variants(sl) {
		if len(v.Stack) > u.MaxDepth-3 {
			continue
		}
		name := g.Procs[v.Proc].Name
		if !got[name][v.ElemsKey()] {
			t.Errorf("interior variant of %s at depth %d has element set %q missing from R",
				name, len(v.Stack), v.ElemsKey())
		}
	}
	// The paper's headline counts for Fig. 2.
	if len(got["r"]) != 2 || len(got["s"]) != 2 {
		t.Errorf("specializations: r=%d s=%d, want 2 and 2", len(got["r"]), len(got["s"]))
	}
}

func gotSpecializations(res *core.Result) map[string]map[string]bool {
	got := map[string]map[string]bool{}
	for _, rp := range res.R.Procs {
		name := rp.Fn.Name
		var vs []int
		for _, rv := range rp.Vertices {
			vs = append(vs, int(res.OriginVertex[rv]))
		}
		sortInts(vs)
		key := ""
		for _, v := range vs {
			key += fmt.Sprintf("%d,", v)
		}
		if got[name] == nil {
			got[name] = map[string]bool{}
		}
		got[name][key] = true
	}
	return got
}

func cfgsOf(vs []sdg.VertexID) []core.Config {
	var out []core.Config
	for _, v := range vs {
		out = append(out, core.Config{Vertex: v})
	}
	return out
}

func parseKey(k Key) (sdg.VertexID, []sdg.SiteID) {
	var parts []int
	cur := 0
	neg := false
	flush := func() {
		if neg {
			cur = -cur
		}
		parts = append(parts, cur)
		cur = 0
		neg = false
	}
	for i := 0; i < len(k); i++ {
		switch c := k[i]; {
		case c == '|':
			flush()
		case c == '-':
			neg = true
		default:
			cur = cur*10 + int(c-'0')
		}
	}
	flush()
	v := sdg.VertexID(parts[0])
	var stack []sdg.SiteID
	for _, p := range parts[1:] {
		stack = append(stack, sdg.SiteID(p))
	}
	return v, stack
}

// checkGroundTruth runs the full three-way comparison on a non-recursive
// program: exact configuration-set equality (soundness + completeness) and
// exact Specializations equality (minimality).
func checkGroundTruth(t *testing.T, g *sdg.Graph, depth int) {
	t.Helper()
	crit := core.PrintfCriterion(g, "main")
	if len(crit) == 0 {
		t.Fatal("no criterion")
	}
	res, err := core.Specialize(g, core.Configs(cfgsOf(crit)))
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	u := Build(g, depth)
	if u.Truncated {
		t.Fatalf("program is recursive; use the bounded check")
	}
	var keys []Key
	for _, v := range crit {
		keys = append(keys, MakeKey(v, nil))
	}
	sl := u.BackwardSlice(keys)

	// Completeness+soundness: configuration sets coincide.
	enc := res.Enc
	for k := range sl {
		v, stack := parseKey(k)
		if !res.A1.Accepts(wordFor(enc, v, stack)) {
			t.Errorf("A1 rejects ground-truth configuration %s (incomplete)", k)
		}
	}
	// All A1 words of bounded length must be ground-truth configs.
	for _, w := range res.A1.EnumerateWords(depth+1, 100000) {
		v := enc.SymVertex(w[0])
		var stack []sdg.SiteID
		for _, s := range w[1:] {
			stack = append(stack, enc.SymSite(s))
		}
		if !sl[MakeKey(v, stack)] {
			t.Errorf("A1 accepts %v not in the ground-truth slice (unsound)", w)
		}
	}
	compareSpecializations(t, u.Specializations(sl), res)
}

// compareSpecializations checks Defn. 2.10 minimality: the algorithm's
// variants per procedure equal the ground truth's distinct element sets.
func compareSpecializations(t *testing.T, want map[string]map[string][]sdg.VertexID, res *core.Result) {
	t.Helper()
	got := map[string]map[string]bool{}
	for i, rp := range res.R.Procs {
		name := rp.Fn.Name
		var vs []int
		for _, rv := range rp.Vertices {
			vs = append(vs, int(res.OriginVertex[rv]))
		}
		sortInts(vs)
		key := ""
		for _, v := range vs {
			key += fmt.Sprintf("%d,", v)
		}
		if got[name] == nil {
			got[name] = map[string]bool{}
		}
		if got[name][key] {
			t.Errorf("R proc %d duplicates an element set of %s", i, name)
		}
		got[name][key] = true
	}
	for name, sets := range want {
		if len(got[name]) != len(sets) {
			t.Errorf("%s: algorithm created %d specializations, ground truth has %d",
				name, len(got[name]), len(sets))
			continue
		}
		for key := range sets {
			if !got[name][key] {
				t.Errorf("%s: ground-truth specialization %q missing from R", name, key)
			}
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("R contains specializations of %s absent from the ground truth", name)
		}
	}
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// TestGroundTruthGeneratedNonRecursive runs the exact comparison on the
// non-recursive generated suites (space and the Siemens-like ones are
// DAG-structured).
func TestGroundTruthGeneratedNonRecursive(t *testing.T) {
	for _, cfg := range workload.SmallBenchmarks() {
		if cfg.Recursive {
			continue
		}
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			g := sdg.MustBuild(workload.Generate(cfg))
			checkGroundTruth(t, g, 30)
		})
	}
}

// TestGroundTruthFlawedMethodExample uses the §1 candidate-algorithm
// counterexample (z = 3) — the case ad hoc algorithms get wrong.
func TestGroundTruthFlawedMethodExample(t *testing.T) {
	src := `
int g1; int g2;

void p(int a, int b) {
  g1 = a;
  int z = 3;
  g2 = b + z;
}

int main() {
  p(11, 4);
  p(g2, 2);
  printf("%d", g1);
  return 0;
}
`
	g := sdg.MustBuild(lang.MustParse(src))
	checkGroundTruth(t, g, 10)
}
