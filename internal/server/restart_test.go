package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"syscall"
	"testing"
	"time"

	"specslice/internal/workload"
)

// TestRestartRecovery is the end-to-end crash-restart gate: it runs the
// real specslice binary, builds an engine over HTTP, kills the process
// with SIGKILL (no drain, no clean-close marker — the store must recover
// from its WAL and segment CRCs alone), restarts it on the same
// -store-dir, and asserts the program is served disk-warm with
// byte-identical slices.
func TestRestartRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX")
	}
	if testing.Short() {
		t.Skip("builds and execs the real binary")
	}

	tmp := t.TempDir()
	bin := filepath.Join(tmp, "specslice")
	build := exec.Command("go", "build", "-o", bin, "specslice/cmd/specslice")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	storeDir := filepath.Join(tmp, "store")

	req := SliceRequest{
		Program: workload.Fig1Source,
		Criteria: []CriterionRequest{
			{Kind: "printf", Proc: "main"},
			{Kind: "printf", Proc: "main", Mode: "mono"},
		},
	}

	// Generation 1: cold build, then SIGKILL mid-flight.
	proc1, url1 := startServe(t, bin, storeDir)
	resp1 := mustSlice(t, url1, req)
	if resp1.CacheHit || resp1.DiskWarm {
		t.Fatalf("gen1: hit=%v diskwarm=%v, want cold", resp1.CacheHit, resp1.DiskWarm)
	}
	// The snapshot is written behind the request path; wait for it to land
	// on disk before pulling the plug.
	waitForStoreEntries(t, url1, 1)
	if err := proc1.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	proc1.Wait()

	// Generation 2: same store directory, fresh process and RAM cache.
	proc2, url2 := startServe(t, bin, storeDir)
	defer func() {
		proc2.Process.Signal(syscall.SIGKILL)
		proc2.Wait()
	}()
	resp2 := mustSlice(t, url2, req)
	if resp2.CacheHit || !resp2.DiskWarm {
		t.Fatalf("gen2: hit=%v diskwarm=%v, want a disk-warm miss", resp2.CacheHit, resp2.DiskWarm)
	}
	if resp2.ProgramKey != resp1.ProgramKey {
		t.Fatalf("program keys differ across restart: %s vs %s", resp2.ProgramKey, resp1.ProgramKey)
	}
	for i := range resp1.Results {
		if resp1.Results[i].Error != "" || resp2.Results[i].Error != "" {
			t.Fatalf("result %d errored: gen1=%q gen2=%q", i, resp1.Results[i].Error, resp2.Results[i].Error)
		}
		if resp1.Results[i].Source != resp2.Results[i].Source {
			t.Errorf("result %d not byte-identical across crash restart:\n--- gen1\n%s\n--- gen2\n%s",
				i, resp1.Results[i].Source, resp2.Results[i].Source)
		}
	}
	st := getStats(t, url2)
	if st.Store == nil {
		t.Fatal("gen2 stats missing store block")
	}
	if st.Store.RecoveredEntries == 0 {
		t.Errorf("gen2 recovered nothing: %+v", st.Store)
	}
	if st.Store.RecoveredClean {
		t.Error("SIGKILL restart reported a clean shutdown")
	}
	if st.Cache.DiskHits != 1 {
		t.Errorf("gen2 disk hits = %d, want 1", st.Cache.DiskHits)
	}
}

// startServe launches `bin serve -addr 127.0.0.1:0 -store-dir dir` and
// returns the process plus the base URL parsed from its "listening on"
// log line.
func startServe(t *testing.T, bin, storeDir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, "serve", "-addr", "127.0.0.1:0", "-store-dir", storeDir)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrRe := regexp.MustCompile(`listening on ([0-9.:]+)`)
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				addrc <- m[1]
			}
		}
	}()
	select {
	case addr := <-addrc:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("server never logged its listen address")
		return nil, ""
	}
}

func mustSlice(t *testing.T, url string, req SliceRequest) SliceResponse {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/slice", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/slice: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.String())
	}
	var out SliceResponse
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, buf.String())
	}
	return out
}

// waitForStoreEntries polls /v1/stats until the write-behind snapshot has
// reached disk (or times out).
func waitForStoreEntries(t *testing.T, url string, want int64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		st := getStats(t, url)
		if st.Store != nil && st.Store.Entries >= want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("store never reached %d entries", want)
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above " + dir)
		}
		dir = parent
	}
}
