package server

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"specslice"
	"specslice/internal/workload"
)

// buildEngine returns a build function for src that counts invocations.
func buildEngine(t *testing.T, src string, builds *atomic.Int64, delay time.Duration) func() (*specslice.Engine, error) {
	t.Helper()
	return func() (*specslice.Engine, error) {
		builds.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		prog, err := specslice.Parse(src)
		if err != nil {
			return nil, err
		}
		return prog.Engine()
	}
}

// get calls cache.Get with a per-key family — no version chains, so these
// tests exercise pure LRU/singleflight semantics; chain behavior has its
// own tests (version_test.go).
func get(cache *EngineCache, key string, build func() (*specslice.Engine, error)) (*specslice.Engine, bool, error) {
	eng, hit, _, _, err := cache.Get(key, "fam:"+key, func(*specslice.Engine) (*specslice.Engine, BuildSource, error) {
		e, err := build()
		return e, BuildCold, err
	})
	return eng, hit, err
}

func TestContentKeyNormalization(t *testing.T) {
	a := specslice.MustParse(workload.Fig1Source)
	b := specslice.MustParse("  // comment\n" + workload.Fig1Source + "\n\n")
	if ContentKey(a.Source()) != ContentKey(b.Source()) {
		t.Error("normalization-equivalent programs have different content keys")
	}
	c := specslice.MustParse(workload.Fig2Source)
	if ContentKey(a.Source()) == ContentKey(c.Source()) {
		t.Error("distinct programs share a content key")
	}
}

func TestCacheHitAndLRUEviction(t *testing.T) {
	cache := NewEngineCache(2, -1)
	srcs := []string{workload.Fig1Source, workload.Fig2Source, workload.Fig16Source}
	var builds atomic.Int64

	// Fill: fig1, fig2. Both miss.
	for _, src := range srcs[:2] {
		if _, hit, err := get(cache, ContentKey(src), buildEngine(t, src, &builds, 0)); err != nil || hit {
			t.Fatalf("fill: hit=%v err=%v", hit, err)
		}
	}
	// fig1 again: hit, and moves to the front.
	if _, hit, err := get(cache, ContentKey(srcs[0]), buildEngine(t, srcs[0], &builds, 0)); err != nil || !hit {
		t.Fatalf("refresh: hit=%v err=%v", hit, err)
	}
	// fig16 evicts the cold entry (fig2).
	if _, hit, _ := get(cache, ContentKey(srcs[2]), buildEngine(t, srcs[2], &builds, 0)); hit {
		t.Fatal("fig16 cannot hit")
	}
	if _, hit, _ := get(cache, ContentKey(srcs[0]), buildEngine(t, srcs[0], &builds, 0)); !hit {
		t.Error("fig1 should have survived the eviction (recently used)")
	}
	if _, hit, _ := get(cache, ContentKey(srcs[1]), buildEngine(t, srcs[1], &builds, 0)); hit {
		t.Error("fig2 should have been evicted")
	}

	st := cache.Stats()
	if st.Evictions != 2 { // fig2 once, then refilling it evicted another
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 2 || st.Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 2/4", st.Hits, st.Misses)
	}
	if got := builds.Load(); got != 4 {
		t.Errorf("builds = %d, want 4", got)
	}
}

func TestCacheByteBudget(t *testing.T) {
	// Budget below two engines: after inserting two, only the newer stays.
	prog := specslice.MustParse(workload.Fig1Source)
	eng, err := prog.Engine()
	if err != nil {
		t.Fatal(err)
	}
	budget := eng.Footprint() * 3 / 2

	cache := NewEngineCache(-1, budget)
	var builds atomic.Int64
	get(cache, ContentKey("a"), buildEngine(t, workload.Fig1Source, &builds, 0))
	get(cache, ContentKey("b"), buildEngine(t, workload.Fig1Source, &builds, 0))
	st := cache.Stats()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Errorf("evictions=%d entries=%d, want 1/1", st.Evictions, st.Entries)
	}
	if st.Bytes > budget {
		t.Errorf("cache holds %d bytes over budget %d", st.Bytes, budget)
	}

	// An engine alone over budget stays cached (never evict the entry a
	// request is using) until the next insert displaces it.
	small := NewEngineCache(-1, 1)
	get(small, ContentKey("solo"), buildEngine(t, workload.Fig1Source, &builds, 0))
	if st := small.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Errorf("solo oversized entry: %+v", st)
	}
	get(small, ContentKey("solo2"), buildEngine(t, workload.Fig1Source, &builds, 0))
	if st := small.Stats(); st.Entries != 1 || st.Evictions != 1 {
		t.Errorf("displaced oversized entry: %+v", st)
	}
}

func TestCacheSingleflight(t *testing.T) {
	cache := NewEngineCache(8, -1)
	var builds atomic.Int64
	key := ContentKey(workload.Fig16Source)

	const callers = 32
	var wg sync.WaitGroup
	engines := make([]*specslice.Engine, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eng, _, err := get(cache, key, buildEngine(t, workload.Fig16Source, &builds, 20*time.Millisecond))
			if err != nil {
				t.Error(err)
			}
			engines[i] = eng
		}(i)
	}
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Errorf("builds = %d, want 1 (singleflight)", got)
	}
	for i := 1; i < callers; i++ {
		if engines[i] != engines[0] {
			t.Fatal("concurrent callers received different engines")
		}
	}
	st := cache.Stats()
	if st.Misses != callers || st.Deduped != callers-1 || st.Builds != 1 {
		t.Errorf("stats = %+v, want misses=%d deduped=%d builds=1", st, callers, callers-1)
	}
	if st.Hits+st.Misses != callers {
		t.Errorf("hit/miss accounting broken: %+v", st)
	}
}

// waitFor polls cond until it holds, failing the test after 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDedupWaiterAttribution: a request that joins another request's
// in-flight build must report deduped — it still learns the builder's
// source (how the engine came to exist) but may not claim the work.
// Regression test: waiters were indistinguishable from builders, so two
// concurrent requests for one new version both reported "advanced".
func TestDedupWaiterAttribution(t *testing.T) {
	cache := NewEngineCache(8, -1)
	key := ContentKey(workload.Fig1Source)
	release := make(chan struct{})
	build := func(*specslice.Engine) (*specslice.Engine, BuildSource, error) {
		<-release
		prog, err := specslice.Parse(workload.Fig1Source)
		if err != nil {
			return nil, BuildCold, err
		}
		eng, err := prog.Engine()
		// Claim the advance path so the test can see it pass through to
		// the waiter without the waiter owning it.
		return eng, BuildAdvance, err
	}

	type result struct {
		hit, deduped bool
		source       BuildSource
		err          error
	}
	results := make(chan result, 2)
	go func() {
		_, hit, deduped, source, err := cache.Get(key, "fam", build)
		results <- result{hit, deduped, source, err}
	}()
	// Wait for the first request to hold the build, then join it; Deduped
	// ticking over proves the second request is a waiter, not a hit.
	waitFor(t, func() bool { return cache.Stats().InFlight == 1 })
	go func() {
		_, hit, deduped, source, err := cache.Get(key, "fam", build)
		results <- result{hit, deduped, source, err}
	}()
	waitFor(t, func() bool { return cache.Stats().Deduped == 1 })
	close(release)

	var builders, waiters int
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.hit {
			t.Error("no request can report a RAM hit on a cold key")
		}
		if r.source != BuildAdvance {
			t.Errorf("source = %v, want advance for both callers", r.source)
		}
		if r.deduped {
			waiters++
		} else {
			builders++
		}
	}
	if builders != 1 || waiters != 1 {
		t.Errorf("builders=%d waiters=%d, want exactly one of each", builders, waiters)
	}
	st := cache.Stats()
	if st.Deduped != 1 || st.Builds != 1 || st.Advances != 1 {
		t.Errorf("stats = %+v, want deduped=1 builds=1 advances=1", st)
	}
}

func TestCacheBuildErrorNotCached(t *testing.T) {
	cache := NewEngineCache(8, -1)
	key := ContentKey("broken")
	wantErr := errors.New("boom")
	var calls atomic.Int64
	fail := func() (*specslice.Engine, error) { calls.Add(1); return nil, wantErr }

	for i := 0; i < 3; i++ {
		if _, _, err := get(cache, key, fail); !errors.Is(err, wantErr) {
			t.Fatalf("get %d: err = %v", i, err)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("build attempts = %d, want 3 (errors must not be cached)", calls.Load())
	}
	st := cache.Stats()
	if st.BuildErrors != 3 || st.Entries != 0 {
		t.Errorf("stats = %+v", st)
	}

	// The key still works once the program builds.
	var builds atomic.Int64
	if _, _, err := get(cache, key, buildEngine(t, workload.Fig1Source, &builds, 0)); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := get(cache, key, fail); !hit {
		t.Error("recovered key should now hit")
	}
}

func TestCacheBuildPanicDoesNotWedgeKey(t *testing.T) {
	cache := NewEngineCache(8, -1)
	key := ContentKey("panicky")
	if _, _, err := get(cache, key, func() (*specslice.Engine, error) {
		panic("adversarial program")
	}); err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking build: err = %v, want a panic-wrapping error", err)
	}
	st := cache.Stats()
	if st.InFlight != 0 || st.BuildErrors != 1 {
		t.Errorf("stats after panic = %+v", st)
	}
	// The key must stay usable: a later good build succeeds and caches.
	var builds atomic.Int64
	if _, _, err := get(cache, key, buildEngine(t, workload.Fig1Source, &builds, 0)); err != nil {
		t.Fatalf("key wedged after panic: %v", err)
	}
	if _, hit, _ := get(cache, key, buildEngine(t, workload.Fig1Source, &builds, 0)); !hit {
		t.Error("recovered key should hit")
	}
}

func TestCacheConcurrentMixedKeys(t *testing.T) {
	cache := NewEngineCache(4, -1)
	srcs := loadPrograms()
	var builds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := srcs[i%len(srcs)]
			for r := 0; r < 4; r++ {
				if _, _, err := get(cache, ContentKey(src), buildEngine(t, src, &builds, 0)); err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}
		}(i)
	}
	wg.Wait()
	st := cache.Stats()
	if st.Hits+st.Misses != 64*4 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 64*4)
	}
	if st.Builds+st.Deduped != st.Misses {
		t.Errorf("miss accounting: %+v", st)
	}
	if st.Entries > 4 {
		t.Errorf("entries = %d over budget 4", st.Entries)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after drain", st.InFlight)
	}
}
