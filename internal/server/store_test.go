package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"specslice"
	"specslice/internal/store"
	"specslice/internal/workload"
)

// newStoreServer starts a server whose persistent tier lives on fs — the
// in-memory filesystem survives server restarts the way a disk survives
// process crashes, so restart tests share one fs across server lifetimes.
func newStoreServer(t *testing.T, fs store.FS) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{StoreDir: "/persist", StoreFS: fs})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// TestDiskWarmRestart is the satellite's core scenario: a program built by
// one server generation is served disk-warm — byte-identically — by the
// next generation sharing the store, without a cold build.
func TestDiskWarmRestart(t *testing.T) {
	fs := store.NewMemFS()
	crit := []CriterionRequest{
		{Kind: "printf", Proc: "main"},
		{Kind: "printf", Proc: "main", Mode: "mono"},
	}

	// Generation 1: cold build, write-behind persist, clean shutdown.
	s1, ts1 := newStoreServer(t, fs)
	status, resp1, raw := postSlice(t, ts1.URL, SliceRequest{Program: workload.Fig1Source, Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("gen1: status %d: %s", status, raw)
	}
	if resp1.CacheHit || resp1.DiskWarm {
		t.Fatalf("gen1: hit=%v diskwarm=%v, want cold", resp1.CacheHit, resp1.DiskWarm)
	}
	ts1.Close()
	if err := s1.Close(); err != nil { // flushes the write-behind queue
		t.Fatal(err)
	}

	// Generation 2: RAM cache is empty, the store is warm.
	s2, ts2 := newStoreServer(t, fs)
	if st := s2.Store().Stats(); st.RecoveredEntries == 0 || !st.RecoveredClean {
		t.Fatalf("gen2 recovery: %+v, want recovered entries and a clean marker", st)
	}
	status, resp2, raw := postSlice(t, ts2.URL, SliceRequest{Program: workload.Fig1Source, Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("gen2: status %d: %s", status, raw)
	}
	if resp2.CacheHit || !resp2.DiskWarm {
		t.Fatalf("gen2: hit=%v diskwarm=%v, want a disk-warm miss", resp2.CacheHit, resp2.DiskWarm)
	}
	if resp2.ProgramKey != resp1.ProgramKey {
		t.Fatalf("program keys differ across restart: %s vs %s", resp2.ProgramKey, resp1.ProgramKey)
	}
	for i := range resp1.Results {
		if resp2.Results[i].Source != resp1.Results[i].Source {
			t.Errorf("result %d differs between cold and disk-warm engines:\n--- cold\n%s\n--- disk\n%s",
				i, resp1.Results[i].Source, resp2.Results[i].Source)
		}
	}
	st := getStats(t, ts2.URL)
	if st.Cache.DiskHits != 1 || st.Cache.ColdBuilds != 0 {
		t.Errorf("gen2 cache: disk=%d cold=%d, want 1/0 (%+v)", st.Cache.DiskHits, st.Cache.ColdBuilds, st.Cache)
	}
	if st.Store == nil {
		t.Fatal("stats missing store block")
	}
	if st.Store.DiskHits != 1 || st.Store.Entries == 0 || st.Store.BytesOnDisk <= 0 {
		t.Errorf("store stats = %+v", st.Store)
	}
	// A repeat post is now a plain RAM hit.
	if _, resp3, _ := postSlice(t, ts2.URL, SliceRequest{Program: workload.Fig1Source, Criteria: crit}); !resp3.CacheHit {
		t.Error("second gen2 post missed the RAM cache")
	}
}

// TestDiskAncestorAdvance: a restarted server advancing an edited program
// from the family's on-disk head instead of cold-building.
func TestDiskAncestorAdvance(t *testing.T) {
	fs := store.NewMemFS()
	crit := []CriterionRequest{{Kind: "printf", Proc: "main"}}

	s1, ts1 := newStoreServer(t, fs)
	if status, _, raw := postSlice(t, ts1.URL, SliceRequest{Program: versionBase, Criteria: crit}); status != http.StatusOK {
		t.Fatalf("gen1: %d %s", status, raw)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := newStoreServer(t, fs)
	status, resp, raw := postSlice(t, ts2.URL, SliceRequest{Program: versionEdit(1), Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("gen2 edit: status %d: %s", status, raw)
	}
	if !resp.Advanced || resp.DiskWarm || resp.CacheHit {
		t.Fatalf("gen2 edit: hit=%v advanced=%v diskwarm=%v, want a disk-ancestor advance",
			resp.CacheHit, resp.Advanced, resp.DiskWarm)
	}
	if resp.Results[0].Error != "" {
		t.Fatalf("gen2 edit slice failed: %s", resp.Results[0].Error)
	}
	st := s2.Cache().Stats()
	if st.Advances != 1 || st.ColdBuilds != 0 {
		t.Errorf("gen2: advances=%d cold=%d, want 1/0 (%+v)", st.Advances, st.ColdBuilds, st)
	}

	// The advance must match a cold build of the edited version exactly.
	_, fresh := newTestServer(t, Config{})
	_, coldResp, _ := postSlice(t, fresh.URL, SliceRequest{Program: versionEdit(1), Criteria: crit})
	if resp.Results[0].Source != coldResp.Results[0].Source {
		t.Errorf("disk-ancestor advance differs from cold build:\n--- advanced\n%s\n--- cold\n%s",
			resp.Results[0].Source, coldResp.Results[0].Source)
	}
}

// TestCorruptSnapshotFallsBackCold: a snapshot that passes the store's CRC
// but fails engine decode must degrade to a cold build — logged and
// counted, never an error to the client.
func TestCorruptSnapshotFallsBackCold(t *testing.T) {
	fs := store.NewMemFS()
	prog := specslice.MustParse(workload.Fig1Source)
	key := ContentKey(prog.Source())
	family := FamilyKey(prog.ProcNames())

	// Plant a well-checksummed but undecodable snapshot under the program's
	// exact key (an old format version or a buggy writer would do this).
	st, err := store.Open("/persist", store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, family, []byte("SSNAP\x00\x00\x01 this is not a snapshot")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newStoreServer(t, fs)
	status, resp, raw := postSlice(t, ts.URL, SliceRequest{
		Program:  workload.Fig1Source,
		Criteria: []CriterionRequest{{Kind: "printf", Proc: "main"}},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.DiskWarm || resp.CacheHit {
		t.Fatalf("corrupt snapshot served warm: hit=%v diskwarm=%v", resp.CacheHit, resp.DiskWarm)
	}
	if resp.Results[0].Error != "" {
		t.Fatalf("slice failed after fallback: %s", resp.Results[0].Error)
	}
	stats := getStats(t, ts.URL)
	if stats.Store == nil || stats.Store.DiskLoadsFailed == 0 {
		t.Errorf("decode failure not counted: %+v", stats.Store)
	}
	if stats.Cache.ColdBuilds != 1 || stats.Cache.DiskHits != 0 {
		t.Errorf("fallback accounting: %+v", stats.Cache)
	}
}

// TestBitRotSnapshotIsCleanMiss: a CRC-failing record is quarantined by
// the store at read time; the server sees a clean miss and cold-builds.
func TestBitRotSnapshotIsCleanMiss(t *testing.T) {
	fs := store.NewMemFS()
	crit := []CriterionRequest{{Kind: "printf", Proc: "main"}}

	s1, ts1 := newStoreServer(t, fs)
	if status, _, raw := postSlice(t, ts1.URL, SliceRequest{Program: workload.Fig1Source, Criteria: crit}); status != http.StatusOK {
		t.Fatalf("gen1: %d %s", status, raw)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	// Rot a byte deep inside the segment payload.
	if err := fs.Corrupt("/persist/seg-00000001.dat", 200, 0x08); err != nil {
		t.Fatal(err)
	}

	_, ts2 := newStoreServer(t, fs)
	status, resp, raw := postSlice(t, ts2.URL, SliceRequest{Program: workload.Fig1Source, Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("gen2: status %d: %s", status, raw)
	}
	if resp.DiskWarm {
		t.Fatal("rotted snapshot served disk-warm")
	}
	if resp.Results[0].Error != "" {
		t.Fatalf("slice failed after bit rot: %s", resp.Results[0].Error)
	}
	st := getStats(t, ts2.URL)
	if st.Store == nil || st.Store.CorruptRecords == 0 {
		t.Errorf("bit rot not counted: %+v", st.Store)
	}
}

// TestServeDrainClosesStoreCleanly: the SIGTERM path (context cancel)
// drains in-flight requests, flushes the write-behind queue, and leaves
// the store's clean-shutdown marker — the next generation recovers clean.
func TestServeDrainClosesStoreCleanly(t *testing.T) {
	fs := store.NewMemFS()
	s, err := New(Config{StoreDir: "/persist", StoreFS: fs})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	status, _, raw := postSlice(t, url, SliceRequest{
		Program:  workload.Fig1Source,
		Criteria: []CriterionRequest{{Kind: "printf", Proc: "main"}},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}

	cancel() // SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}

	st, err := store.Open("/persist", store.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen after drain: %v", err)
	}
	defer st.Close()
	stats := st.Stats()
	if !stats.RecoveredClean {
		t.Errorf("drain did not leave a clean-shutdown marker: %+v", stats)
	}
	if stats.RecoveredEntries == 0 {
		t.Errorf("drain lost the persisted engine: %+v", stats)
	}
}
