package server

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"specslice"
	"specslice/internal/workload"
)

// versionBase is the evolving program the chain tests edit. Edits splice
// extra statements into main; the printf criterion stays valid throughout.
const versionBase = `
int total;
int noise;

int scale(int v) {
  return v * 3;
}

void bump(int v) {
  total = total + scale(v);
}

int main() {
  int i = 0;
  scanf("%d", &i);
  bump(i);
  printf("%d\n", total);
  return 0;
}
`

// versionEdit returns variant n of versionBase: a client-specific edit of
// main that keeps the procedure set (and hence the family) intact.
func versionEdit(n int) string {
	return strings.Replace(versionBase, "int i = 0;",
		fmt.Sprintf("int i = 0;\n  noise = %d;\n  i = i + %d;", n, n%7), 1)
}

func TestVersionChainAdvance(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	crit := []CriterionRequest{{Kind: "printf", Proc: "main"}}

	// Base version: cold build.
	status, resp, raw := postSlice(t, ts.URL, SliceRequest{Program: versionBase, Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("base: status %d: %s", status, raw)
	}
	if resp.CacheHit || resp.Advanced {
		t.Errorf("base: hit=%v advanced=%v, want cold", resp.CacheHit, resp.Advanced)
	}

	// Edited version, same family: advanced, not cold.
	status, resp, raw = postSlice(t, ts.URL, SliceRequest{Program: versionEdit(1), Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("edit: status %d: %s", status, raw)
	}
	if resp.CacheHit || !resp.Advanced {
		t.Errorf("edit: hit=%v advanced=%v, want an advance", resp.CacheHit, resp.Advanced)
	}
	if resp.Results[0].Error != "" {
		t.Errorf("edit: slice failed: %s", resp.Results[0].Error)
	}

	// Same edited version again: plain hit.
	status, resp, _ = postSlice(t, ts.URL, SliceRequest{Program: versionEdit(1), Criteria: crit})
	if status != http.StatusOK || !resp.CacheHit || resp.Advanced {
		t.Errorf("re-post: status=%d hit=%v advanced=%v, want a hit", status, resp.CacheHit, resp.Advanced)
	}

	// Procedure added: new family, cold build.
	withProc := strings.Replace(versionBase, "int main", "int fresh(int z) {\n  return z + 1;\n}\n\nint main", 1)
	status, resp, raw = postSlice(t, ts.URL, SliceRequest{Program: withProc, Criteria: crit})
	if status != http.StatusOK {
		t.Fatalf("new family: status %d: %s", status, raw)
	}
	if resp.Advanced {
		t.Error("procedure addition must start a new chain, not advance")
	}

	st := s.Cache().Stats()
	if st.Advances != 1 || st.ColdBuilds != 2 {
		t.Errorf("advances=%d cold=%d, want 1/2 (%+v)", st.Advances, st.ColdBuilds, st)
	}
	if st.Builds != st.Advances+st.ColdBuilds+st.DiskHits {
		t.Errorf("builds %d != advances %d + cold %d + disk %d", st.Builds, st.Advances, st.ColdBuilds, st.DiskHits)
	}
}

func TestVersionChainAdvanceMatchesCold(t *testing.T) {
	// The slice served off an advanced engine must be byte-identical to
	// the one a fresh server cold-builds for the same version.
	_, chained := newTestServer(t, Config{})
	_, fresh := newTestServer(t, Config{})
	crit := []CriterionRequest{{Kind: "printf", Proc: "main"}, {Kind: "printf", Proc: "main", Mode: "mono"}}

	if status, _, raw := postSlice(t, chained.URL, SliceRequest{Program: versionBase, Criteria: crit}); status != http.StatusOK {
		t.Fatalf("base: %d %s", status, raw)
	}
	_, advResp, _ := postSlice(t, chained.URL, SliceRequest{Program: versionEdit(3), Criteria: crit})
	_, coldResp, _ := postSlice(t, fresh.URL, SliceRequest{Program: versionEdit(3), Criteria: crit})
	if !advResp.Advanced {
		t.Fatal("second post did not advance")
	}
	if advResp.ProgramKey != coldResp.ProgramKey {
		t.Fatalf("program keys differ: %s vs %s", advResp.ProgramKey, coldResp.ProgramKey)
	}
	for i := range coldResp.Results {
		if advResp.Results[i].Source != coldResp.Results[i].Source {
			t.Errorf("result %d differs between advanced and cold engines:\n--- advanced\n%s\n--- cold\n%s",
				i, advResp.Results[i].Source, coldResp.Results[i].Source)
		}
	}
}

// TestVersionChainConcurrent is the version-chain acceptance gate: 32
// concurrent clients editing the same base program, several rounds each.
// Zero failures, and the cache counters must distinguish hits, advances,
// and cold builds while staying balanced. Run under -race in CI.
func TestVersionChainConcurrent(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	crit := []CriterionRequest{{Kind: "printf", Proc: "main"}}

	// Seed the chain so every client has an ancestor available.
	if status, _, raw := postSlice(t, ts.URL, SliceRequest{Program: versionBase, Criteria: crit}); status != http.StatusOK {
		t.Fatalf("seed: %d %s", status, raw)
	}

	const clients = 32
	const rounds = 3
	var wg sync.WaitGroup
	var mu sync.Mutex
	lookups, advancedSeen := 0, 0
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Each client posts its own variant every round: round 0
				// is a miss (advance), later rounds hit the cached entry.
				status, resp, raw := postSlice(t, ts.URL, SliceRequest{Program: versionEdit(c + 1), Criteria: crit})
				if status != http.StatusOK {
					t.Errorf("client %d round %d: status %d: %s", c, r, status, raw)
					return
				}
				for _, res := range resp.Results {
					if res.Error != "" {
						t.Errorf("client %d round %d: slice error: %s", c, r, res.Error)
					}
				}
				mu.Lock()
				lookups++
				if resp.Advanced {
					advancedSeen++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	st := s.Cache().Stats()
	if st.Hits+st.Misses != int64(lookups)+1 { // +1 for the seed post
		t.Errorf("lookups: hits %d + misses %d != %d", st.Hits, st.Misses, lookups+1)
	}
	if st.Builds+st.Deduped+st.BuildErrors != st.Misses {
		t.Errorf("miss accounting broken: %+v", st)
	}
	if st.Advances+st.ColdBuilds+st.DiskHits != st.Builds {
		t.Errorf("build accounting broken: advances %d + cold %d + disk %d != builds %d", st.Advances, st.ColdBuilds, st.DiskHits, st.Builds)
	}
	if st.BuildErrors != 0 {
		t.Errorf("build errors under version-chain load: %+v", st)
	}
	if st.Advances == 0 || advancedSeen == 0 {
		t.Errorf("no advances recorded (stats %+v, responses %d) — chains are not engaging", st, advancedSeen)
	}
	if st.ColdBuilds != 1 {
		t.Errorf("cold builds = %d, want 1 (only the seed; every client variant has an ancestor)", st.ColdBuilds)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight builds = %d after drain", st.InFlight)
	}
	t.Logf("version-chain load: %d lookups, %d hits, %d advances, %d cold builds",
		lookups+1, st.Hits, st.Advances, st.ColdBuilds)
}

func TestVersionChainEvictedAncestorFallsBackCold(t *testing.T) {
	cache := NewEngineCache(1, -1) // one entry: building v2 evicts v1
	build := func(src string) func(*specslice.Engine) (*specslice.Engine, BuildSource, error) {
		return func(anc *specslice.Engine) (*specslice.Engine, BuildSource, error) {
			prog := specslice.MustParse(src)
			if anc != nil {
				p, err := prog.EliminateIndirectCalls()
				if err != nil {
					return nil, BuildCold, err
				}
				if neng, _, err := anc.Advance(p); err == nil {
					return neng, BuildAdvance, nil
				}
			}
			eng, err := prog.Engine()
			return eng, BuildCold, err
		}
	}
	fam := FamilyKey(specslice.MustParse(versionBase).ProcNames())
	v1, v2, v3 := versionBase, versionEdit(1), versionEdit(2)

	if _, _, _, src, err := cache.Get(ContentKey(v1), fam, build(v1)); err != nil || src != BuildCold {
		t.Fatalf("v1: source=%v err=%v", src, err)
	}
	if _, _, _, src, err := cache.Get(ContentKey(v2), fam, build(v2)); err != nil || src != BuildAdvance {
		t.Fatalf("v2: source=%v err=%v, want advance", src, err)
	}
	// v1 was evicted by v2's insert, but the family head now points at v2,
	// so v3 still advances.
	if _, _, _, src, err := cache.Get(ContentKey(v3), fam, build(v3)); err != nil || src != BuildAdvance {
		t.Fatalf("v3: source=%v err=%v, want advance from v2", src, err)
	}
	// Evict v3 with an unrelated family: the chain head is gone, so the
	// next member of the old family cold-builds.
	other := workload.Fig1Source
	if _, _, _, _, err := cache.Get(ContentKey(other), FamilyKey(specslice.MustParse(other).ProcNames()), build(other)); err != nil {
		t.Fatal(err)
	}
	v4 := versionEdit(3)
	if _, _, _, src, err := cache.Get(ContentKey(v4), fam, build(v4)); err != nil || src != BuildCold {
		t.Fatalf("v4 after eviction: source=%v err=%v, want cold", src, err)
	}
	st := cache.Stats()
	if st.Advances != 2 || st.ColdBuilds != 3 {
		t.Errorf("advances=%d cold=%d, want 2/3 (%+v)", st.Advances, st.ColdBuilds, st)
	}
}
