// Package server exposes the batch-slicing engine as a long-running
// HTTP/JSON service: clients POST program sources plus batches of slicing
// criteria and receive specialized programs with per-phase timings. Engines
// are content-addressed — programs are hashed after lang normalization, so
// textually different but normalization-equivalent sources share one warmed
// engine — and held in an LRU bounded by an entry count and a byte budget
// (engine.Footprint). Concurrent requests for a program not yet cached are
// deduplicated: one request builds, the rest wait for the same engine.
// Entries are linked into version chains (FamilyKey): a request for a new
// version of an already-cached program advances the cached engine through
// the edit (Engine.Advance) instead of rebuilding from scratch.
package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"specslice"
)

// ContentKey returns the cache key of a program: the hex SHA-256 of its
// lang-normalized source text. Callers hash prog.Source() of a parsed
// program, never the raw request text, so whitespace, comments, and
// normalization temporaries do not fragment the cache.
func ContentKey(normalizedSource string) string {
	sum := sha256.Sum256([]byte(normalizedSource))
	return hex.EncodeToString(sum[:])
}

// FamilyKey returns the version-chain key of a program: the hex SHA-256 of
// its sorted procedure names. Two versions of the same evolving program
// almost always share a family (statement edits, renames of locals, call
// edits), so a near-miss ContentKey can resolve to the family's most
// recent engine and advance it instead of cold-building. Procedure
// additions, removals, and renames start a new chain — exactly the edits
// for which most of the old analysis would be invalidated anyway.
func FamilyKey(sortedProcNames []string) string {
	h := sha256.New()
	for _, n := range sortedProcNames {
		h.Write([]byte(n))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// BuildSource reports how a cache miss obtained its engine: analyzed from
// scratch, advanced from a version-chain ancestor, or decoded warm from
// the persistent disk tier.
type BuildSource int

const (
	BuildCold BuildSource = iota
	BuildAdvance
	BuildDisk
)

func (b BuildSource) String() string {
	switch b {
	case BuildAdvance:
		return "advance"
	case BuildDisk:
		return "disk"
	default:
		return "cold"
	}
}

// CacheStats is a snapshot of the engine cache's counters. The counters
// satisfy Hits+Misses == lookups, Builds+BuildErrors+Deduped == Misses,
// and Advances+ColdBuilds+DiskHits == Builds, which the server load tests
// assert under concurrency. Hits counts RAM-warm lookups only; DiskHits
// counts misses served by decoding a snapshot from the disk tier.
type CacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Deduped int64 `json:"builds_deduped"` // misses that joined an in-flight build
	Builds  int64 `json:"builds"`         // completed engine builds
	// Advances counts builds served by advancing a version-chain ancestor;
	// ColdBuilds counts builds that analyzed the program from scratch;
	// DiskHits counts builds served warm from the persistent store.
	Advances    int64 `json:"advances"`
	ColdBuilds  int64 `json:"cold_builds"`
	DiskHits    int64 `json:"disk_hits"`
	BuildErrors int64 `json:"build_errors"`
	Evictions   int64 `json:"evictions"`
	InFlight    int64 `json:"in_flight_builds"` // gauge
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
}

// EngineCache is a content-addressed LRU of warmed slicing engines with
// version chains: each family (FamilyKey) remembers its most recently
// built member, and a miss whose family has a cached member hands that
// engine to the build callback as an ancestor to advance.
type EngineCache struct {
	maxEntries int
	maxBytes   int64

	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; values are *cacheEntry
	building map[string]*buildCall
	// families maps FamilyKey -> ContentKey of the family's most recently
	// built member still in the cache.
	families map[string]string
	stats    CacheStats
}

type cacheEntry struct {
	key    string
	family string
	eng    *specslice.Engine
	bytes  int64
}

// buildCall is the singleflight cell for one in-flight engine build.
type buildCall struct {
	done   chan struct{}
	eng    *specslice.Engine
	source BuildSource
	err    error
}

// NewEngineCache returns a cache evicting past maxEntries entries or
// maxBytes total estimated engine bytes; a zero or negative limit disables
// that bound.
func NewEngineCache(maxEntries int, maxBytes int64) *EngineCache {
	return &EngineCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[string]*list.Element{},
		lru:        list.New(),
		building:   map[string]*buildCall{},
		families:   map[string]string{},
	}
}

// Get returns the engine cached under key, building it with build on a
// miss. Build runs outside the cache lock; concurrent misses on one key
// share a single build. On a miss whose family has a cached member, that
// member's engine is passed to build as ancestor — the callback advances
// it instead of cold-building and reports which path it took (advance,
// disk-warm load, or cold build). Build errors are returned to every
// waiter and are not cached — the next request retries.
//
// deduped reports that this call joined another request's in-flight build
// instead of doing any work itself. Waiters still receive the builder's
// source so callers can see how the engine came to exist, but response
// attribution (advanced/disk_warm) belongs to the one request that did the
// work — the deduped flag is what distinguishes them.
func (c *EngineCache) Get(key, family string, build func(ancestor *specslice.Engine) (*specslice.Engine, BuildSource, error)) (eng *specslice.Engine, hit, deduped bool, source BuildSource, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		eng := el.Value.(*cacheEntry).eng
		c.mu.Unlock()
		return eng, true, false, BuildCold, nil
	}
	c.stats.Misses++
	if call, ok := c.building[key]; ok {
		c.stats.Deduped++
		c.mu.Unlock()
		<-call.done
		return call.eng, false, true, call.source, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.stats.InFlight++
	// Version-chain lookup: the family's most recent member, if still
	// cached, becomes the ancestor. Using it concurrently is safe — an
	// engine's analysis state is frozen once built, and Advance only
	// reads it.
	var ancestor *specslice.Engine
	if ak, ok := c.families[family]; ok {
		if el, ok := c.entries[ak]; ok {
			ancestor = el.Value.(*cacheEntry).eng
		}
	}
	c.mu.Unlock()

	var bytes int64
	call.eng, call.source, bytes, call.err = runBuild(ancestor, build)

	c.mu.Lock()
	delete(c.building, key)
	c.stats.InFlight--
	if call.err != nil {
		c.stats.BuildErrors++
	} else {
		c.stats.Builds++
		switch call.source {
		case BuildAdvance:
			c.stats.Advances++
		case BuildDisk:
			c.stats.DiskHits++
		default:
			c.stats.ColdBuilds++
		}
		el := c.lru.PushFront(&cacheEntry{key: key, family: family, eng: call.eng, bytes: bytes})
		c.entries[key] = el
		c.families[family] = key
		c.stats.Bytes += bytes
		// Evict from the cold end. The just-inserted entry is never evicted
		// (it is in use by this request); an engine bigger than the whole
		// byte budget therefore stays cached alone until displaced.
		for c.overBudget() && c.lru.Len() > 1 {
			c.evictOldest()
		}
	}
	c.stats.Entries = c.lru.Len()
	c.mu.Unlock()
	close(call.done)
	return call.eng, false, false, call.source, call.err
}

// runBuild runs the build plus the engine warm-up (Footprint warms every
// cache, so waiters and later hits get a fully built engine and the LRU
// charges its real weight), converting a panic anywhere in that analysis
// into an error. Without the guard, a panicking build (net/http recovers
// it per-connection, so the server survives) would leave the key's
// buildCall registered forever with an unclosed done channel — wedging
// every later request for that program.
func runBuild(ancestor *specslice.Engine, build func(*specslice.Engine) (*specslice.Engine, BuildSource, error)) (eng *specslice.Engine, source BuildSource, bytes int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			eng, source, bytes, err = nil, BuildCold, 0, fmt.Errorf("server: engine build panicked: %v", r)
		}
	}()
	eng, source, err = build(ancestor)
	if err != nil {
		return nil, BuildCold, 0, err
	}
	return eng, source, eng.Footprint(), nil
}

func (c *EngineCache) overBudget() bool {
	if c.maxEntries > 0 && c.lru.Len() > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.stats.Bytes > c.maxBytes
}

func (c *EngineCache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, ent.key)
	// Drop the version-chain head if it pointed at the evicted entry; the
	// family's next build will be cold (or advance a newer member).
	if c.families[ent.family] == ent.key {
		delete(c.families, ent.family)
	}
	c.stats.Bytes -= ent.bytes
	c.stats.Evictions++
}

// Stats returns a snapshot of the cache counters.
func (c *EngineCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	return st
}
