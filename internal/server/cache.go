// Package server exposes the batch-slicing engine as a long-running
// HTTP/JSON service: clients POST program sources plus batches of slicing
// criteria and receive specialized programs with per-phase timings. Engines
// are content-addressed — programs are hashed after lang normalization, so
// textually different but normalization-equivalent sources share one warmed
// engine — and held in an LRU bounded by an entry count and a byte budget
// (engine.Footprint). Concurrent requests for a program not yet cached are
// deduplicated: one request builds, the rest wait for the same engine.
package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"specslice"
)

// ContentKey returns the cache key of a program: the hex SHA-256 of its
// lang-normalized source text. Callers hash prog.Source() of a parsed
// program, never the raw request text, so whitespace, comments, and
// normalization temporaries do not fragment the cache.
func ContentKey(normalizedSource string) string {
	sum := sha256.Sum256([]byte(normalizedSource))
	return hex.EncodeToString(sum[:])
}

// CacheStats is a snapshot of the engine cache's counters. The counters
// satisfy Hits+Misses == lookups and Builds+BuildErrors+Deduped == Misses,
// which the server load test asserts under concurrency.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Deduped     int64 `json:"builds_deduped"` // misses that joined an in-flight build
	Builds      int64 `json:"builds"`         // completed engine builds
	BuildErrors int64 `json:"build_errors"`
	Evictions   int64 `json:"evictions"`
	InFlight    int64 `json:"in_flight_builds"` // gauge
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
}

// EngineCache is a content-addressed LRU of warmed slicing engines.
type EngineCache struct {
	maxEntries int
	maxBytes   int64

	mu       sync.Mutex
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used; values are *cacheEntry
	building map[string]*buildCall
	stats    CacheStats
}

type cacheEntry struct {
	key   string
	eng   *specslice.Engine
	bytes int64
}

// buildCall is the singleflight cell for one in-flight engine build.
type buildCall struct {
	done chan struct{}
	eng  *specslice.Engine
	err  error
}

// NewEngineCache returns a cache evicting past maxEntries entries or
// maxBytes total estimated engine bytes; a zero or negative limit disables
// that bound.
func NewEngineCache(maxEntries int, maxBytes int64) *EngineCache {
	return &EngineCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		entries:    map[string]*list.Element{},
		lru:        list.New(),
		building:   map[string]*buildCall{},
	}
}

// Get returns the engine cached under key, building it with build on a
// miss. Build runs outside the cache lock; concurrent misses on one key
// share a single build. Build errors are returned to every waiter and are
// not cached — the next request retries.
func (c *EngineCache) Get(key string, build func() (*specslice.Engine, error)) (eng *specslice.Engine, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		eng := el.Value.(*cacheEntry).eng
		c.mu.Unlock()
		return eng, true, nil
	}
	c.stats.Misses++
	if call, ok := c.building[key]; ok {
		c.stats.Deduped++
		c.mu.Unlock()
		<-call.done
		return call.eng, false, call.err
	}
	call := &buildCall{done: make(chan struct{})}
	c.building[key] = call
	c.stats.InFlight++
	c.mu.Unlock()

	var bytes int64
	call.eng, bytes, call.err = runBuild(build)

	c.mu.Lock()
	delete(c.building, key)
	c.stats.InFlight--
	if call.err != nil {
		c.stats.BuildErrors++
	} else {
		c.stats.Builds++
		el := c.lru.PushFront(&cacheEntry{key: key, eng: call.eng, bytes: bytes})
		c.entries[key] = el
		c.stats.Bytes += bytes
		// Evict from the cold end. The just-inserted entry is never evicted
		// (it is in use by this request); an engine bigger than the whole
		// byte budget therefore stays cached alone until displaced.
		for c.overBudget() && c.lru.Len() > 1 {
			c.evictOldest()
		}
	}
	c.stats.Entries = c.lru.Len()
	c.mu.Unlock()
	close(call.done)
	return call.eng, false, call.err
}

// runBuild runs the build plus the engine warm-up (Footprint warms every
// cache, so waiters and later hits get a fully built engine and the LRU
// charges its real weight), converting a panic anywhere in that analysis
// into an error. Without the guard, a panicking build (net/http recovers
// it per-connection, so the server survives) would leave the key's
// buildCall registered forever with an unclosed done channel — wedging
// every later request for that program.
func runBuild(build func() (*specslice.Engine, error)) (eng *specslice.Engine, bytes int64, err error) {
	defer func() {
		if r := recover(); r != nil {
			eng, bytes, err = nil, 0, fmt.Errorf("server: engine build panicked: %v", r)
		}
	}()
	eng, err = build()
	if err != nil {
		return nil, 0, err
	}
	return eng, eng.Footprint(), nil
}

func (c *EngineCache) overBudget() bool {
	if c.maxEntries > 0 && c.lru.Len() > c.maxEntries {
		return true
	}
	return c.maxBytes > 0 && c.stats.Bytes > c.maxBytes
}

func (c *EngineCache) evictOldest() {
	el := c.lru.Back()
	if el == nil {
		return
	}
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, ent.key)
	c.stats.Bytes -= ent.bytes
	c.stats.Evictions++
}

// Stats returns a snapshot of the cache counters.
func (c *EngineCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.lru.Len()
	return st
}
