package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"specslice"
)

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// CacheMaxEntries bounds the engine cache's entry count (default 64;
	// negative disables the bound).
	CacheMaxEntries int
	// CacheMaxBytes bounds the engine cache's total estimated bytes
	// (default 512 MiB; negative disables the bound).
	CacheMaxBytes int64
	// MaxProgramBytes rejects larger program sources (default 1 MiB).
	MaxProgramBytes int64
	// MaxCriteria rejects larger criterion batches (default 256).
	MaxCriteria int
	// Workers is the default per-batch worker-pool size (0 = GOMAXPROCS).
	Workers int
	// ShutdownGrace bounds the drain of in-flight requests on shutdown
	// (default 10s).
	ShutdownGrace time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheMaxEntries == 0 {
		c.CacheMaxEntries = 64
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 512 << 20
	}
	if c.MaxProgramBytes == 0 {
		c.MaxProgramBytes = 1 << 20
	}
	if c.MaxCriteria == 0 {
		c.MaxCriteria = 256
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// Server serves slice requests over HTTP, backed by a content-addressed
// engine cache. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	cache *EngineCache
	mux   *http.ServeMux
	start time.Time

	mu       sync.Mutex
	batches  int64
	requests int64
	failed   int64
	phases   specslice.Timings
	// build aggregates the cold-build phase timings of engines this
	// server built (cache misses that did not advance a version chain).
	build       specslice.BuildStats
	buildsTimed int64
}

// New returns a server with its routes installed.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewEngineCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/slice", s.handleSlice)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the engine cache (stats endpoints, tests).
func (s *Server) Cache() *EngineCache { return s.cache }

// ListenAndServe runs the server on addr until ctx is cancelled, then
// drains in-flight requests for up to ShutdownGrace before returning.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		return nil
	}
}

// SliceRequest is the body of POST /v1/slice: one program and a batch of
// slicing criteria served through the shared engine.
type SliceRequest struct {
	// Program is MicroC source text.
	Program string `json:"program"`
	// Criteria is the batch; each entry carries its own mode.
	Criteria []CriterionRequest `json:"criteria"`
	// Workers overrides the server's per-batch worker-pool size.
	Workers int `json:"workers,omitempty"`
	// NoSource omits the emitted program text from results (stats-only
	// clients, e.g. dashboards polling slice sizes).
	NoSource bool `json:"no_source,omitempty"`
}

// CriterionRequest selects one slice of the program.
type CriterionRequest struct {
	// Kind is "printf" (arguments of every printf, optionally restricted
	// to Proc), "line" (statements on source line Line — note the line
	// numbering is that of the lang-normalized program, the canonical
	// text behind ProgramKey, not the raw request text), or "stmt"
	// (statement printed as Stmt in procedure Proc).
	Kind string `json:"kind"`
	Proc string `json:"proc,omitempty"`
	Line int    `json:"line,omitempty"`
	Stmt string `json:"stmt,omitempty"`
	// Mode is "poly" (default), "mono", "weiser", or "feature".
	Mode string `json:"mode,omitempty"`
	// Label identifies the request in results; defaults to a canonical
	// rendering of the criterion.
	Label string `json:"label,omitempty"`
}

// SliceResponse is the body of a successful POST /v1/slice.
type SliceResponse struct {
	// ProgramKey is the content address of the lang-normalized program.
	ProgramKey string `json:"program_key"`
	// CacheHit reports whether the engine was served warm from the cache.
	CacheHit bool `json:"cache_hit"`
	// Advanced reports that the engine was built by advancing a cached
	// ancestor version of the same program family instead of analyzing
	// from scratch (version-chain semantics; see FamilyKey).
	Advanced bool          `json:"advanced,omitempty"`
	Results  []SliceResult `json:"results"`
	// Stats aggregates the batch, including the Fig. 21 phase breakdown.
	Stats specslice.BatchStats `json:"stats"`
}

// SliceResult is the outcome of one criterion.
type SliceResult struct {
	Label string `json:"label"`
	Mode  string `json:"mode"`
	// Source is the specialized program text (omitted with no_source).
	Source string `json:"source,omitempty"`
	// VariantCounts maps each sliced procedure to its number of
	// specialized versions.
	VariantCounts map[string]int `json:"variant_counts,omitempty"`
	// Vertices is the slice's total vertex count (copies counted).
	Vertices   int    `json:"vertices,omitempty"`
	DurationNS int64  `json:"duration_ns"`
	Error      string `json:"error,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS int64      `json:"uptime_ns"`
	Cache    CacheStats `json:"cache"`
	// Batches counts POST /v1/slice calls that reached the engine;
	// Requests and Failed count individual criteria across them.
	Batches  int64 `json:"batches"`
	Requests int64 `json:"requests"`
	Failed   int64 `json:"failed"`
	// Phases aggregates every served batch's polyvariant phase timings.
	Phases specslice.Timings `json:"phases"`
	// Build aggregates the cold-build phase breakdown (mod/ref, parallel
	// PDG construction, interprocedural wiring) and worker-pool width of
	// the engines this server cold-built; BuildsTimed counts them.
	Build       specslice.BuildStats `json:"build"`
	BuildsTimed int64                `json:"builds_timed"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		Batches:     s.batches,
		Requests:    s.requests,
		Failed:      s.failed,
		Phases:      s.phases,
		Build:       s.build,
		BuildsTimed: s.buildsTimed,
	}
	s.mu.Unlock()
	resp.UptimeNS = int64(time.Since(s.start))
	resp.Cache = s.cache.Stats()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	// Transport-level cap only: JSON escaping can double the program text
	// (newlines, tabs, quotes), so allow 2x plus envelope slack here and
	// leave validate() as the authoritative program-size check.
	r.Body = http.MaxBytesReader(w, r.Body, 2*s.cfg.MaxProgramBytes+1<<16)
	var req SliceRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.validate(&req); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	prog, err := specslice.Parse(req.Program)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "program does not parse: %v", err)
		return
	}
	norm := prog.Source()
	key := ContentKey(norm)
	family := FamilyKey(prog.ProcNames())
	eng, hit, advanced, err := s.cache.Get(key, family, func(ancestor *specslice.Engine) (*specslice.Engine, bool, error) {
		// Build from the canonical normalized source, not the request
		// text: every normalization-equivalent request must observe the
		// same engine, including source positions — a line criterion
		// resolves against the normalized program's line numbering no
		// matter whose formatting populated the cache.
		canon, err := specslice.Parse(norm)
		if err != nil {
			return nil, false, err
		}
		p, err := canon.EliminateIndirectCalls()
		if err != nil {
			return nil, false, err
		}
		// Version chain: a near-miss key with a cached ancestor in the
		// same family advances the ancestor's analysis state through the
		// edit instead of cold-building. An advance failure (e.g. the
		// transformed program acquired indirect-call dispatchers the
		// ancestor lacks) falls back to a cold build.
		if ancestor != nil {
			if neng, _, err := ancestor.Advance(p); err == nil {
				return neng, true, nil
			}
		}
		neng, err := p.Engine()
		if err == nil {
			// This closure runs exactly once per distinct build
			// (singleflight), so the cold-build phase aggregate counts
			// each graph construction once.
			s.mu.Lock()
			s.build.Add(neng.BuildStats())
			s.buildsTimed++
			s.mu.Unlock()
		}
		return neng, false, err
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "program does not analyze: %v", err)
		return
	}

	g := eng.SDG()
	reqs := make([]specslice.BatchRequest, len(req.Criteria))
	for i, c := range req.Criteria {
		mode, _ := batchMode(c.Mode) // validated above
		label := c.Label
		if label == "" {
			label = c.canonical()
		}
		reqs[i] = specslice.BatchRequest{Criterion: c.resolve(g), Mode: mode, Label: label}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	results, stats := eng.SliceAll(reqs, specslice.BatchOptions{Workers: workers})

	resp := SliceResponse{ProgramKey: key, CacheHit: hit, Advanced: advanced, Stats: stats}
	for i, res := range results {
		out := SliceResult{
			Label:      res.Label,
			Mode:       canonicalMode(req.Criteria[i].Mode),
			DurationNS: int64(res.Duration),
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.VariantCounts = res.Slice.VariantCounts()
			out.Vertices = res.Slice.Vertices()
			if !req.NoSource {
				if src, err := res.Slice.Source(); err != nil {
					out.Error = err.Error()
				} else {
					out.Source = src
				}
			}
		}
		resp.Results = append(resp.Results, out)
		if res.Slice != nil {
			// The response is fully materialized (variant counts, vertex
			// totals, emitted source are copies); return the slice's pooled
			// graph storage so warm readouts stay allocation-free.
			res.Slice.Release()
		}
	}

	// Failures are counted over the final results, so emit errors (which
	// surface after the engine batch) are included, and the per-response
	// stats agree with the aggregate /v1/stats counter.
	failed := 0
	for _, res := range resp.Results {
		if res.Error != "" {
			failed++
		}
	}
	resp.Stats.Failed = failed
	s.mu.Lock()
	s.batches++
	s.requests += int64(stats.Requests)
	s.failed += int64(failed)
	s.phases.Add(stats.Phases)
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) validate(req *SliceRequest) error {
	if req.Program == "" {
		return errors.New("program is required")
	}
	if int64(len(req.Program)) > s.cfg.MaxProgramBytes {
		return fmt.Errorf("program is %d bytes, limit %d", len(req.Program), s.cfg.MaxProgramBytes)
	}
	if len(req.Criteria) == 0 {
		return errors.New("at least one criterion is required")
	}
	if len(req.Criteria) > s.cfg.MaxCriteria {
		return fmt.Errorf("%d criteria, limit %d", len(req.Criteria), s.cfg.MaxCriteria)
	}
	if req.Workers < 0 {
		return errors.New("workers must be >= 0")
	}
	for i, c := range req.Criteria {
		if _, ok := batchMode(c.Mode); !ok {
			return fmt.Errorf("criteria[%d]: unknown mode %q (want poly, mono, weiser, or feature)", i, c.Mode)
		}
		switch c.Kind {
		case "printf":
		case "line":
			if c.Line <= 0 {
				return fmt.Errorf("criteria[%d]: line criterion needs a positive line", i)
			}
		case "stmt":
			if c.Proc == "" || c.Stmt == "" {
				return fmt.Errorf("criteria[%d]: stmt criterion needs proc and stmt", i)
			}
		default:
			return fmt.Errorf("criteria[%d]: unknown kind %q (want printf, line, or stmt)", i, c.Kind)
		}
	}
	return nil
}

// resolve maps the request onto an SDG criterion; resolution failures (no
// such printf, no statement on the line) surface as that request's error.
func (c CriterionRequest) resolve(g *specslice.SDG) specslice.Criterion {
	switch c.Kind {
	case "printf":
		return g.PrintfCriterion(c.Proc)
	case "line":
		return g.LineCriterion(c.Line)
	default: // "stmt"; kinds were validated
		return g.StmtCriterion(c.Proc, c.Stmt)
	}
}

func (c CriterionRequest) canonical() string {
	switch c.Kind {
	case "printf":
		if c.Proc == "" {
			return "printf"
		}
		return "printf:" + c.Proc
	case "line":
		return fmt.Sprintf("line:%d", c.Line)
	default:
		return fmt.Sprintf("stmt:%s:%s", c.Proc, c.Stmt)
	}
}

func batchMode(mode string) (specslice.BatchMode, bool) {
	switch mode {
	case "", "poly":
		return specslice.BatchPoly, true
	case "mono":
		return specslice.BatchMono, true
	case "weiser":
		return specslice.BatchWeiser, true
	case "feature":
		return specslice.BatchFeature, true
	}
	return 0, false
}

func canonicalMode(mode string) string {
	if mode == "" {
		return "poly"
	}
	return mode
}
