package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"specslice"
	"specslice/internal/store"
)

// Config tunes the service. Zero values take the documented defaults.
type Config struct {
	// CacheMaxEntries bounds the engine cache's entry count (default 64;
	// negative disables the bound).
	CacheMaxEntries int
	// CacheMaxBytes bounds the engine cache's total estimated bytes
	// (default 512 MiB; negative disables the bound).
	CacheMaxBytes int64
	// MaxProgramBytes rejects larger program sources (default 1 MiB).
	MaxProgramBytes int64
	// MaxCriteria rejects larger criterion batches (default 256).
	MaxCriteria int
	// Workers is the default per-batch worker-pool size (0 = GOMAXPROCS).
	Workers int
	// ShutdownGrace bounds the drain of in-flight requests on shutdown
	// (default 10s).
	ShutdownGrace time.Duration
	// StoreDir, when non-empty, enables the persistent snapshot tier: built
	// engines are encoded and written behind the request path, and a RAM
	// miss tries a checksummed disk load before cold-building. The
	// directory is created if absent and recovered (torn tails truncated,
	// corrupt records quarantined) on startup.
	StoreDir string
	// StoreBudgetBytes bounds the disk tier's size; oldest segments are
	// dropped past it (0 = unlimited).
	StoreBudgetBytes int64
	// StoreFS overrides the store's filesystem (tests inject store.MemFS /
	// store.FaultFS). Ignored when StoreDir is empty; nil means the real
	// filesystem.
	StoreFS store.FS
}

func (c Config) withDefaults() Config {
	if c.CacheMaxEntries == 0 {
		c.CacheMaxEntries = 64
	}
	if c.CacheMaxBytes == 0 {
		c.CacheMaxBytes = 512 << 20
	}
	if c.MaxProgramBytes == 0 {
		c.MaxProgramBytes = 1 << 20
	}
	if c.MaxCriteria == 0 {
		c.MaxCriteria = 256
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	return c
}

// Server serves slice requests over HTTP, backed by a content-addressed
// engine cache. All methods are safe for concurrent use.
type Server struct {
	cfg   Config
	cache *EngineCache
	mux   *http.ServeMux
	start time.Time

	// store is the persistent snapshot tier (nil when StoreDir is empty).
	// persistCh feeds the write-behind goroutine; snapshots are encoded and
	// written off the request path so persistence never adds latency to a
	// slice response.
	store     *store.Store
	persistCh chan persistReq
	persistWG sync.WaitGroup
	closeOnce sync.Once
	closeErr  error

	mu       sync.Mutex
	batches  int64
	requests int64
	failed   int64
	phases   specslice.Timings
	// build aggregates the cold-build phase timings of engines this
	// server built (cache misses that did not advance a version chain).
	build       specslice.BuildStats
	buildsTimed int64
	// diskLoadsFailed counts snapshot loads that decoded or verified badly
	// and fell back to a cold build (graceful degradation, never an error).
	diskLoadsFailed int64
	// persistDropped counts write-behind requests dropped because the
	// persist queue was full (the cache stays correct; the entry is simply
	// not disk-warm until rebuilt).
	persistDropped int64
	// encodeErrors counts responses whose JSON encoding failed after the
	// status header was written — the client saw a truncated body. Counted
	// (and logged) so broken responses are observable instead of silent.
	encodeErrors int64
}

// persistReq asks the write-behind goroutine to snapshot eng under key and,
// when fromKey is non-empty, record the version-chain advance fromKey→key.
type persistReq struct {
	key     string
	family  string
	fromKey string
	eng     *specslice.Engine
}

// New returns a server with its routes installed. With a StoreDir
// configured it opens (and if necessary recovers) the persistent snapshot
// tier and starts the write-behind goroutine; an unrecoverable store —
// e.g. an unwritable directory — fails construction rather than silently
// serving without persistence.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: NewEngineCache(cfg.CacheMaxEntries, cfg.CacheMaxBytes),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir, store.Options{
			FS:          cfg.StoreFS,
			BudgetBytes: cfg.StoreBudgetBytes,
			Logf:        log.Printf,
		})
		if err != nil {
			return nil, fmt.Errorf("server: open store: %w", err)
		}
		s.store = st
		s.persistCh = make(chan persistReq, 32)
		s.persistWG.Add(1)
		go s.persistLoop()
	}
	s.mux.HandleFunc("POST /v1/slice", s.handleSlice)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the engine cache (stats endpoints, tests).
func (s *Server) Cache() *EngineCache { return s.cache }

// Store exposes the persistent tier (nil when disabled); tests use it to
// assert on-disk state.
func (s *Server) Store() *store.Store { return s.store }

// Close flushes the write-behind queue and closes the persistent tier,
// journaling its clean-shutdown marker. Safe to call more than once and
// with persistence disabled.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		if s.store == nil {
			return
		}
		close(s.persistCh)
		s.persistWG.Wait()
		s.closeErr = s.store.Close()
	})
	return s.closeErr
}

// ListenAndServe runs the server on addr until ctx is cancelled, then
// drains in-flight requests for up to ShutdownGrace, flushes the persist
// queue, and closes the store before returning.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln)
}

// Serve runs the server on an existing listener until ctx is cancelled
// (callers that need the bound address — e.g. addr ":0" — create the
// listener themselves). Shutdown drains in-flight requests for up to
// ShutdownGrace, then closes the persistent tier cleanly.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.Close()
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		err := hs.Shutdown(shutCtx)
		if cerr := s.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("server: shutdown: %w", err)
		}
		return nil
	}
}

// persistLoop is the write-behind goroutine: it encodes engine snapshots
// and appends them to the store off the request path. Persistence failures
// are logged and counted, never propagated — the disk tier is an
// optimization, and a request that built an engine has already been
// answered by the time its snapshot is attempted.
func (s *Server) persistLoop() {
	defer s.persistWG.Done()
	for req := range s.persistCh {
		data, err := req.eng.Snapshot()
		if err != nil {
			log.Printf("server: snapshot %s: %v", req.key[:min(12, len(req.key))], err)
			continue
		}
		if err := s.store.Put(req.key, req.family, data); err != nil {
			log.Printf("server: persist %s: %v", req.key[:min(12, len(req.key))], err)
			continue
		}
		if req.fromKey != "" {
			if err := s.store.Advance(req.family, req.fromKey, req.key); err != nil {
				log.Printf("server: persist advance: %v", err)
			}
		}
	}
}

// persist enqueues a write-behind snapshot, dropping it (with a counter)
// when the queue is full — blocking the request path on disk is never
// worth a warm restart.
func (s *Server) persist(key, family, fromKey string, eng *specslice.Engine) {
	if s.store == nil {
		return
	}
	select {
	case s.persistCh <- persistReq{key: key, family: family, fromKey: fromKey, eng: eng}:
	default:
		s.mu.Lock()
		s.persistDropped++
		s.mu.Unlock()
	}
}

// noteDiskLoadFailure records a snapshot that failed to load or decode;
// the caller falls back to building.
func (s *Server) noteDiskLoadFailure(key string, err error) {
	log.Printf("server: disk snapshot %s unusable, cold-building: %v", key[:min(12, len(key))], err)
	s.mu.Lock()
	s.diskLoadsFailed++
	s.mu.Unlock()
}

// SliceRequest is the body of POST /v1/slice: one program and a batch of
// slicing criteria served through the shared engine.
type SliceRequest struct {
	// Program is MicroC source text.
	Program string `json:"program"`
	// Criteria is the batch; each entry carries its own mode.
	Criteria []CriterionRequest `json:"criteria"`
	// Workers overrides the server's per-batch worker-pool size.
	Workers int `json:"workers,omitempty"`
	// NoSource omits the emitted program text from results (stats-only
	// clients, e.g. dashboards polling slice sizes).
	NoSource bool `json:"no_source,omitempty"`
}

// CriterionRequest selects one slice of the program.
type CriterionRequest struct {
	// Kind is "printf" (arguments of every printf, optionally restricted
	// to Proc), "line" (statements on source line Line — note the line
	// numbering is that of the lang-normalized program, the canonical
	// text behind ProgramKey, not the raw request text), or "stmt"
	// (statement printed as Stmt in procedure Proc).
	Kind string `json:"kind"`
	Proc string `json:"proc,omitempty"`
	Line int    `json:"line,omitempty"`
	Stmt string `json:"stmt,omitempty"`
	// Mode is "poly" (default), "mono", "weiser", or "feature".
	Mode string `json:"mode,omitempty"`
	// Label identifies the request in results; defaults to a canonical
	// rendering of the criterion.
	Label string `json:"label,omitempty"`
}

// SliceResponse is the body of a successful POST /v1/slice.
type SliceResponse struct {
	// ProgramKey is the content address of the lang-normalized program.
	ProgramKey string `json:"program_key"`
	// CacheHit reports whether the engine was served warm from the cache.
	CacheHit bool `json:"cache_hit"`
	// Deduped reports that this request joined another request's in-flight
	// build of the same engine and only waited for it. Advanced and
	// DiskWarm are reserved for the request that did the work: a deduped
	// waiter never claims them, no matter how the builder obtained the
	// engine.
	Deduped bool `json:"deduped,omitempty"`
	// Advanced reports that this request built the engine by advancing a
	// cached ancestor version of the same program family instead of
	// analyzing from scratch (version-chain semantics; see FamilyKey).
	Advanced bool `json:"advanced,omitempty"`
	// DiskWarm reports that this request decoded the engine from a
	// checksummed snapshot in the persistent tier instead of analyzing (a
	// RAM miss that did not cost a cold build).
	DiskWarm bool          `json:"disk_warm,omitempty"`
	Results  []SliceResult `json:"results"`
	// Stats aggregates the batch, including the Fig. 21 phase breakdown.
	Stats specslice.BatchStats `json:"stats"`
}

// SliceResult is the outcome of one criterion.
type SliceResult struct {
	Label string `json:"label"`
	Mode  string `json:"mode"`
	// Source is the specialized program text (omitted with no_source).
	Source string `json:"source,omitempty"`
	// VariantCounts maps each sliced procedure to its number of
	// specialized versions.
	VariantCounts map[string]int `json:"variant_counts,omitempty"`
	// Vertices is the slice's total vertex count (copies counted).
	Vertices   int    `json:"vertices,omitempty"`
	DurationNS int64  `json:"duration_ns"`
	Error      string `json:"error,omitempty"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeNS int64      `json:"uptime_ns"`
	Cache    CacheStats `json:"cache"`
	// Batches counts POST /v1/slice calls that reached the engine;
	// Requests and Failed count individual criteria across them.
	Batches  int64 `json:"batches"`
	Requests int64 `json:"requests"`
	Failed   int64 `json:"failed"`
	// Phases aggregates every served batch's polyvariant phase timings.
	Phases specslice.Timings `json:"phases"`
	// Build aggregates the cold-build phase breakdown (mod/ref, parallel
	// PDG construction, interprocedural wiring) and worker-pool width of
	// the engines this server cold-built; BuildsTimed counts them.
	Build       specslice.BuildStats `json:"build"`
	BuildsTimed int64                `json:"builds_timed"`
	// ResponseEncodeErrors counts responses whose JSON encoding failed
	// after the status header was written (the client saw a truncated
	// body); non-zero means broken responses went out.
	ResponseEncodeErrors int64 `json:"response_encode_errors"`
	// Store reports the persistent snapshot tier; omitted when disabled.
	Store *StoreStatsResponse `json:"store,omitempty"`
}

// StoreStatsResponse is the persistent tier's block in GET /v1/stats.
type StoreStatsResponse struct {
	// DiskHits counts RAM misses served by decoding a disk snapshot
	// (mirrors cache.disk_hits); DiskLoadsFailed counts snapshots that
	// failed checksum/decode and fell back to a cold build.
	DiskHits        int64 `json:"disk_hits"`
	DiskLoadsFailed int64 `json:"disk_loads_failed"`
	// CorruptRecords and RecoveredEntries describe the last recovery scan
	// plus any read-time quarantines since.
	CorruptRecords   int64 `json:"corrupt_records"`
	RecoveredEntries int64 `json:"recovered_entries"`
	RecoveredClean   bool  `json:"recovered_clean"`
	Entries          int64 `json:"entries"`
	BytesOnDisk      int64 `json:"bytes_on_disk"`
	EvictedEntries   int64 `json:"evicted_entries"`
	PersistDropped   int64 `json:"persist_dropped"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxCriterionWireBytes is the per-criterion allowance in the request-size
// envelope: kind, proc, a statement text (one source line), a client-chosen
// label, mode, and JSON punctuation. 4 KiB is far above any legal
// criterion while keeping a 256-criterion envelope around 1 MiB.
const maxCriterionWireBytes = 4096

// writeJSON writes v with the given status. An encode failure cannot be
// turned into an error response — the status header is already on the wire
// — but it must not be silent either: the client received a truncated body,
// so it is logged and counted (response_encode_errors in /v1/stats).
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("server: response encode failed after status %d: %v", status, err)
		s.mu.Lock()
		s.encodeErrors++
		s.mu.Unlock()
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	resp := StatsResponse{
		Batches:     s.batches,
		Requests:    s.requests,
		Failed:      s.failed,
		Phases:      s.phases,
		Build:       s.build,
		BuildsTimed: s.buildsTimed,
	}
	resp.ResponseEncodeErrors = s.encodeErrors
	diskFailed := s.diskLoadsFailed
	dropped := s.persistDropped
	s.mu.Unlock()
	resp.UptimeNS = int64(time.Since(s.start))
	resp.Cache = s.cache.Stats()
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &StoreStatsResponse{
			DiskHits:         resp.Cache.DiskHits,
			DiskLoadsFailed:  diskFailed,
			CorruptRecords:   int64(st.CorruptRecords),
			RecoveredEntries: int64(st.RecoveredEntries),
			RecoveredClean:   st.RecoveredClean,
			Entries:          int64(st.Entries),
			BytesOnDisk:      st.BytesOnDisk,
			EvictedEntries:   int64(st.EvictedEntries),
			PersistDropped:   dropped,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	// Transport-level cap only: JSON escaping can double the program text
	// (newlines, tabs, quotes), and a legal batch of MaxCriteria criteria
	// carries statement texts and labels of its own, so the envelope is
	// sized from both plus fixed slack; validate() stays the authoritative
	// program-size and batch-size check.
	r.Body = http.MaxBytesReader(w, r.Body, 2*s.cfg.MaxProgramBytes+int64(s.cfg.MaxCriteria)*maxCriterionWireBytes+1<<16)
	var req SliceRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, "request exceeds %d bytes", tooLarge.Limit)
			return
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.validate(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	prog, err := specslice.Parse(req.Program)
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "program does not parse: %v", err)
		return
	}
	norm := prog.Source()
	key := ContentKey(norm)
	family := FamilyKey(prog.ProcNames())
	eng, hit, deduped, source, err := s.cache.Get(key, family, func(ancestor *specslice.Engine) (*specslice.Engine, BuildSource, error) {
		// Build from the canonical normalized source, not the request
		// text: every normalization-equivalent request must observe the
		// same engine, including source positions — a line criterion
		// resolves against the normalized program's line numbering no
		// matter whose formatting populated the cache.
		canon, err := specslice.Parse(norm)
		if err != nil {
			return nil, BuildCold, err
		}
		p, err := canon.EliminateIndirectCalls()
		if err != nil {
			return nil, BuildCold, err
		}
		// Tier 1 — RAM ancestor: a near-miss key with a cached ancestor in
		// the same family advances the ancestor's analysis state through
		// the edit instead of cold-building. An advance failure (e.g. the
		// transformed program acquired indirect-call dispatchers the
		// ancestor lacks) falls through.
		if ancestor != nil {
			if neng, _, err := ancestor.Advance(p); err == nil {
				s.persist(key, family, "", neng)
				return neng, BuildAdvance, nil
			}
		}
		if s.store != nil {
			// Tier 2 — disk snapshot of this exact program. Any failure
			// (store read error, checksum quarantine, snapshot decode) is
			// graceful degradation: log, count, fall through to building.
			if data, ok, derr := s.store.Get(key); derr != nil {
				s.noteDiskLoadFailure(key, derr)
			} else if ok {
				if neng, lerr := specslice.LoadEngineSnapshot(data); lerr != nil {
					s.noteDiskLoadFailure(key, lerr)
				} else {
					return neng, BuildDisk, nil
				}
			}
			// Tier 3 — disk ancestor: the family's on-disk head, loaded and
			// advanced through the edit. Still cheaper than a cold build
			// for incremental edits, and it extends the on-disk chain.
			if head, ok := s.store.FamilyHead(family); ok && head != key {
				if data, ok, derr := s.store.Get(head); derr != nil {
					s.noteDiskLoadFailure(head, derr)
				} else if ok {
					if anc, lerr := specslice.LoadEngineSnapshot(data); lerr != nil {
						s.noteDiskLoadFailure(head, lerr)
					} else if neng, _, aerr := anc.Advance(p); aerr == nil {
						s.persist(key, family, head, neng)
						return neng, BuildAdvance, nil
					}
				}
			}
		}
		// Tier 4 — cold build from scratch.
		neng, err := p.Engine()
		if err == nil {
			// This closure runs exactly once per distinct build
			// (singleflight), so the cold-build phase aggregate counts
			// each graph construction once.
			s.mu.Lock()
			s.build.Add(neng.BuildStats())
			s.buildsTimed++
			s.mu.Unlock()
			s.persist(key, family, "", neng)
		}
		return neng, BuildCold, err
	})
	if err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, "program does not analyze: %v", err)
		return
	}

	g := eng.SDG()
	reqs := make([]specslice.BatchRequest, len(req.Criteria))
	for i, c := range req.Criteria {
		mode, _ := batchMode(c.Mode) // validated above
		label := c.Label
		if label == "" {
			label = c.canonical()
		}
		reqs[i] = specslice.BatchRequest{Criterion: c.resolve(g), Mode: mode, Label: label}
	}
	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	results, stats := eng.SliceAll(reqs, specslice.BatchOptions{Workers: workers})

	resp := SliceResponse{
		ProgramKey: key,
		CacheHit:   hit,
		Deduped:    deduped,
		// Advanced/DiskWarm belong to the request whose closure did the
		// work; a waiter that merely joined the in-flight build reports
		// Deduped instead of claiming the builder's path.
		Advanced: source == BuildAdvance && !hit && !deduped,
		DiskWarm: source == BuildDisk && !hit && !deduped,
		Stats:    stats,
	}
	for i, res := range results {
		out := SliceResult{
			Label:      res.Label,
			Mode:       canonicalMode(req.Criteria[i].Mode),
			DurationNS: int64(res.Duration),
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		} else {
			out.VariantCounts = res.Slice.VariantCounts()
			out.Vertices = res.Slice.Vertices()
			if !req.NoSource {
				if src, err := res.Slice.Source(); err != nil {
					out.Error = err.Error()
				} else {
					out.Source = src
				}
			}
		}
		resp.Results = append(resp.Results, out)
		if res.Slice != nil {
			// The response is fully materialized (variant counts, vertex
			// totals, emitted source are copies); return the slice's pooled
			// graph storage so warm readouts stay allocation-free.
			res.Slice.Release()
		}
	}

	// Failures are counted over the final results, so emit errors (which
	// surface after the engine batch) are included, and the per-response
	// stats agree with the aggregate /v1/stats counter.
	failed := 0
	for _, res := range resp.Results {
		if res.Error != "" {
			failed++
		}
	}
	resp.Stats.Failed = failed
	s.mu.Lock()
	s.batches++
	s.requests += int64(stats.Requests)
	s.failed += int64(failed)
	s.phases.Add(stats.Phases)
	s.mu.Unlock()

	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) validate(req *SliceRequest) error {
	if req.Program == "" {
		return errors.New("program is required")
	}
	if int64(len(req.Program)) > s.cfg.MaxProgramBytes {
		return fmt.Errorf("program is %d bytes, limit %d", len(req.Program), s.cfg.MaxProgramBytes)
	}
	if len(req.Criteria) == 0 {
		return errors.New("at least one criterion is required")
	}
	if len(req.Criteria) > s.cfg.MaxCriteria {
		return fmt.Errorf("%d criteria, limit %d", len(req.Criteria), s.cfg.MaxCriteria)
	}
	if req.Workers < 0 {
		return errors.New("workers must be >= 0")
	}
	for i, c := range req.Criteria {
		if _, ok := batchMode(c.Mode); !ok {
			return fmt.Errorf("criteria[%d]: unknown mode %q (want poly, mono, weiser, or feature)", i, c.Mode)
		}
		switch c.Kind {
		case "printf":
		case "line":
			if c.Line <= 0 {
				return fmt.Errorf("criteria[%d]: line criterion needs a positive line", i)
			}
			// Line numbering is program-wide (the normalized program's), so
			// a proc scope would be silently ignored — reject it rather
			// than return an unscoped answer the client did not ask for.
			if c.Proc != "" {
				return fmt.Errorf("criteria[%d]: line criteria do not accept proc (line numbering is program-wide; use a stmt criterion to scope by procedure)", i)
			}
		case "stmt":
			if c.Proc == "" || c.Stmt == "" {
				return fmt.Errorf("criteria[%d]: stmt criterion needs proc and stmt", i)
			}
		default:
			return fmt.Errorf("criteria[%d]: unknown kind %q (want printf, line, or stmt)", i, c.Kind)
		}
	}
	return nil
}

// resolve maps the request onto an SDG criterion; resolution failures (no
// such printf, no statement on the line) surface as that request's error.
func (c CriterionRequest) resolve(g *specslice.SDG) specslice.Criterion {
	switch c.Kind {
	case "printf":
		return g.PrintfCriterion(c.Proc)
	case "line":
		return g.LineCriterion(c.Line)
	default: // "stmt"; kinds were validated
		return g.StmtCriterion(c.Proc, c.Stmt)
	}
}

func (c CriterionRequest) canonical() string {
	switch c.Kind {
	case "printf":
		if c.Proc == "" {
			return "printf"
		}
		return "printf:" + c.Proc
	case "line":
		return fmt.Sprintf("line:%d", c.Line)
	default:
		return fmt.Sprintf("stmt:%s:%s", c.Proc, c.Stmt)
	}
}

func batchMode(mode string) (specslice.BatchMode, bool) {
	switch mode {
	case "", "poly":
		return specslice.BatchPoly, true
	case "mono":
		return specslice.BatchMono, true
	case "weiser":
		return specslice.BatchWeiser, true
	case "feature":
		return specslice.BatchFeature, true
	}
	return 0, false
}

func canonicalMode(mode string) string {
	if mode == "" {
		return "poly"
	}
	return mode
}
