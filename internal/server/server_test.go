package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"specslice"
	"specslice/internal/workload"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSlice(t *testing.T, url string, req SliceRequest) (int, SliceResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/slice", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/slice: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out SliceResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, buf.String())
		}
	}
	return resp.StatusCode, out, buf.String()
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestSliceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := SliceRequest{
		Program: workload.Fig1Source,
		Criteria: []CriterionRequest{
			{Kind: "printf", Proc: "main"},
			{Kind: "printf", Proc: "main", Mode: "mono", Label: "baseline"},
		},
	}
	status, resp, raw := postSlice(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if len(resp.ProgramKey) != 64 {
		t.Errorf("program key %q is not a sha256 hex digest", resp.ProgramKey)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	poly := resp.Results[0]
	if poly.Error != "" || poly.Mode != "poly" || poly.Label != "printf:main" {
		t.Errorf("poly result = %+v", poly)
	}
	// Fig. 1's p specializes into two versions under the paper's slice.
	if poly.VariantCounts["p"] != 2 {
		t.Errorf("poly variants of p = %d, want 2", poly.VariantCounts["p"])
	}
	if !strings.Contains(poly.Source, "main()") {
		t.Errorf("poly source missing main:\n%s", poly.Source)
	}
	mono := resp.Results[1]
	if mono.Error != "" || mono.Mode != "mono" || mono.Label != "baseline" {
		t.Errorf("mono result = %+v", mono)
	}
	if mono.VariantCounts["p"] != 1 {
		t.Errorf("mono variants of p = %d, want 1", mono.VariantCounts["p"])
	}
	if resp.Stats.Requests != 2 || resp.Stats.Failed != 0 {
		t.Errorf("batch stats = %+v", resp.Stats)
	}
	if resp.Stats.Phases.TotalNS <= 0 {
		t.Errorf("phase timings not reported: %+v", resp.Stats.Phases)
	}

	// A normalization-equivalent program (different whitespace/comments)
	// must hit the same cache entry.
	req2 := SliceRequest{
		Program:  "// reformatted\n" + strings.ReplaceAll(workload.Fig1Source, "\n", "\n "),
		Criteria: []CriterionRequest{{Kind: "printf"}},
		NoSource: true,
	}
	status, resp2, raw := postSlice(t, ts.URL, req2)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if !resp2.CacheHit {
		t.Error("normalization-equivalent program missed the cache")
	}
	if resp2.ProgramKey != resp.ProgramKey {
		t.Errorf("content keys differ: %s vs %s", resp2.ProgramKey, resp.ProgramKey)
	}
	if resp2.Results[0].Source != "" {
		t.Error("no_source request returned source text")
	}
}

// TestSliceLineCriterionCanonical: line criteria resolve against the
// normalized program's numbering, so a cache hit from a reformatted but
// normalization-equivalent request returns the same slice as the request
// that populated the cache — the first requester's formatting must not
// leak into later line lookups.
func TestSliceLineCriterionCanonical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	norm := specslice.MustParse(workload.Fig1Source).Source()
	line := 0
	for i, l := range strings.Split(norm, "\n") {
		if strings.Contains(l, "g2 = 100") {
			line = i + 1
			break
		}
	}
	if line == 0 {
		t.Fatal("g2 = 100 not found in normalized Fig1")
	}

	crit := []CriterionRequest{{Kind: "line", Line: line}}
	// Shift every raw line: comments + extra blank lines. Normalized text
	// (and hence the content key and line numbering) is unchanged.
	variants := []string{
		workload.Fig1Source,
		"// leading comment\n\n\n" + workload.Fig1Source,
	}
	var sources []string
	for i, src := range variants {
		status, resp, raw := postSlice(t, ts.URL, SliceRequest{Program: src, Criteria: crit})
		if status != http.StatusOK {
			t.Fatalf("variant %d: status %d: %s", i, status, raw)
		}
		if resp.Results[0].Error != "" {
			t.Fatalf("variant %d: line %d did not resolve: %s", i, line, resp.Results[0].Error)
		}
		if i > 0 && !resp.CacheHit {
			t.Errorf("variant %d missed the cache", i)
		}
		sources = append(sources, resp.Results[0].Source)
	}
	if sources[0] != sources[1] {
		t.Errorf("equivalent requests sliced different lines:\n--- a ---\n%s\n--- b ---\n%s", sources[0], sources[1])
	}
	if !strings.Contains(sources[0], "g2 = 100") {
		t.Errorf("slice of the g2 = 100 line lost the criterion statement:\n%s", sources[0])
	}
}

func TestSliceFeatureRemoval(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SliceRequest{
		Program:  workload.Fig16Source,
		Criteria: []CriterionRequest{{Kind: "stmt", Proc: "main", Stmt: "prod = 1", Mode: "feature"}},
	}
	status, resp, raw := postSlice(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	res := resp.Results[0]
	if res.Error != "" {
		t.Fatalf("feature removal failed: %s", res.Error)
	}
	if strings.Contains(res.Source, "prod") {
		t.Errorf("feature removal kept prod:\n%s", res.Source)
	}
}

func TestSlicePerRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SliceRequest{
		Program: workload.Fig1Source,
		Criteria: []CriterionRequest{
			{Kind: "printf", Proc: "main"},
			{Kind: "printf", Proc: "no_such_proc"},
			{Kind: "line", Line: 9999},
		},
	}
	status, resp, raw := postSlice(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if resp.Results[0].Error != "" {
		t.Errorf("valid criterion failed: %s", resp.Results[0].Error)
	}
	for i := 1; i <= 2; i++ {
		if resp.Results[i].Error == "" {
			t.Errorf("result %d: want a resolution error", i)
		}
	}
	if resp.Stats.Failed != 2 {
		t.Errorf("batch failed = %d, want 2", resp.Stats.Failed)
	}
}

func TestSliceValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxCriteria: 2})
	crit := []CriterionRequest{{Kind: "printf"}}
	cases := []struct {
		name   string
		req    SliceRequest
		status int
	}{
		{"empty program", SliceRequest{Criteria: crit}, http.StatusBadRequest},
		{"no criteria", SliceRequest{Program: workload.Fig1Source}, http.StatusBadRequest},
		{"too many criteria", SliceRequest{Program: workload.Fig1Source,
			Criteria: []CriterionRequest{{Kind: "printf"}, {Kind: "printf"}, {Kind: "printf"}}}, http.StatusBadRequest},
		{"bad kind", SliceRequest{Program: workload.Fig1Source,
			Criteria: []CriterionRequest{{Kind: "vertex"}}}, http.StatusBadRequest},
		{"bad mode", SliceRequest{Program: workload.Fig1Source,
			Criteria: []CriterionRequest{{Kind: "printf", Mode: "quantum"}}}, http.StatusBadRequest},
		{"bad line", SliceRequest{Program: workload.Fig1Source,
			Criteria: []CriterionRequest{{Kind: "line"}}}, http.StatusBadRequest},
		// Line numbering is program-wide; a proc scope would be silently
		// ignored, so the server must refuse it instead.
		{"line with proc", SliceRequest{Program: workload.Fig1Source,
			Criteria: []CriterionRequest{{Kind: "line", Line: 3, Proc: "main"}}}, http.StatusBadRequest},
		{"stmt without proc", SliceRequest{Program: workload.Fig1Source,
			Criteria: []CriterionRequest{{Kind: "stmt", Stmt: "g1 = a"}}}, http.StatusBadRequest},
		{"negative workers", SliceRequest{Program: workload.Fig1Source, Workers: -1,
			Criteria: crit}, http.StatusBadRequest},
		{"parse error", SliceRequest{Program: "int main( {", Criteria: crit}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postSlice(t, ts.URL, tc.req)
			if status != tc.status {
				t.Errorf("status %d, want %d: %s", status, tc.status, raw)
			}
		})
	}

	t.Run("malformed json", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/slice", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		_, ts := newTestServer(t, Config{MaxProgramBytes: 256})
		status, _, raw := postSlice(t, ts.URL, SliceRequest{Program: workload.Fig16Source, Criteria: crit})
		if status != http.StatusBadRequest && status != http.StatusRequestEntityTooLarge {
			t.Errorf("status %d, want 400 or 413: %s", status, raw)
		}
	})
	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/v1/slice")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("status %d, want 405", resp.StatusCode)
		}
	})
}

// TestSliceDedupResponseAttribution: concurrent requests for one uncached
// version share a single build; only the request whose closure did the
// work may report advanced/disk_warm, every waiter reports deduped.
// Regression test: waiters used to echo the builder's path, so several
// responses claimed the same advance.
func TestSliceDedupResponseAttribution(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	crit := []CriterionRequest{{Kind: "printf", Proc: "main"}}

	// Warm v1 so v2's one build is an advance along the version chain.
	if status, _, raw := postSlice(t, ts.URL, SliceRequest{Program: workload.Fig1Source, Criteria: crit}); status != http.StatusOK {
		t.Fatalf("warm v1: status %d: %s", status, raw)
	}
	v2 := strings.Replace(workload.Fig1Source, "g2 = 100", "g2 = 101", 1)
	if v2 == workload.Fig1Source {
		t.Fatal("edit did not change the source")
	}

	const clients = 16
	var wg sync.WaitGroup
	responses := make([]SliceResponse, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(SliceRequest{Program: v2, Criteria: crit, NoSource: true})
			resp, err := http.Post(ts.URL+"/v1/slice", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&responses[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	var advanced, deduped, hits int64
	for i, r := range responses {
		if r.Deduped && (r.Advanced || r.DiskWarm || r.CacheHit) {
			t.Errorf("client %d: deduped response claims the builder's work: %+v", i, r)
		}
		if r.CacheHit && (r.Advanced || r.DiskWarm) {
			t.Errorf("client %d: RAM hit claims a build path: %+v", i, r)
		}
		if r.Advanced {
			advanced++
		}
		if r.Deduped {
			deduped++
		}
		if r.CacheHit {
			hits++
		}
	}
	// Exactly one of the clients built v2 (singleflight), and its build
	// advanced the warm v1 engine; everyone else either joined that build
	// (deduped) or arrived after it landed in the LRU (hit). The split
	// between waiters and hits is timing, the total is not.
	if advanced != 1 {
		t.Errorf("%d responses claim the advance, want exactly 1", advanced)
	}
	if advanced+deduped+hits != clients {
		t.Errorf("responses unaccounted for: advanced=%d deduped=%d hits=%d of %d",
			advanced, deduped, hits, clients)
	}
	st := getStats(t, ts.URL)
	if deduped != st.Cache.Deduped {
		t.Errorf("%d deduped responses but the cache counted %d", deduped, st.Cache.Deduped)
	}
}

// TestSliceMaxSizeCriteriaBatch: the request-size cap must admit a
// maximum-size valid batch — MaxCriteria stmt criteria with long texts
// and labels. Regression test: the cap was sized from MaxProgramBytes
// alone, so full-width criterion batches drew a spurious 413.
func TestSliceMaxSizeCriteriaBatch(t *testing.T) {
	const maxCriteria = 256
	_, ts := newTestServer(t, Config{MaxProgramBytes: 2048, MaxCriteria: maxCriteria})
	crit := make([]CriterionRequest, maxCriteria)
	for i := range crit {
		crit[i] = CriterionRequest{
			Kind:  "stmt",
			Proc:  "main",
			Stmt:  "g2 = 100",
			Label: fmt.Sprintf("%0300d", i), // long client labels are legal
		}
	}
	req := SliceRequest{Program: workload.Fig1Source, Criteria: crit, NoSource: true}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	// The regression condition: this valid request is bigger than the old
	// cap of 2*MaxProgramBytes + 64 KiB.
	if oldCap := int64(2*2048 + 1<<16); int64(len(body)) <= oldCap {
		t.Fatalf("test body %d bytes does not exceed the old cap %d", len(body), oldCap)
	}
	status, resp, raw := postSlice(t, ts.URL, req)
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", status, raw)
	}
	if len(resp.Results) != maxCriteria {
		t.Fatalf("got %d results, want %d", len(resp.Results), maxCriteria)
	}
	for i, r := range resp.Results {
		if r.Error != "" {
			t.Fatalf("result %d: %s", i, r.Error)
		}
	}
}

// TestWriteJSONEncodeFailureCounted: an encode failure after the status
// line is written cannot change the response any more, but it must not
// vanish either — it is logged and counted in the server stats.
// Regression test: the encoder's error was silently discarded.
func TestWriteJSONEncodeFailureCounted(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// NaN has no JSON encoding, so this encode fails deterministically.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]float64{"bad": math.NaN()})
	if st := getStats(t, ts.URL); st.ResponseEncodeErrors != 1 {
		t.Errorf("response_encode_errors = %d, want 1", st.ResponseEncodeErrors)
	}
	// A clean response does not move the counter.
	s.writeJSON(httptest.NewRecorder(), http.StatusOK, map[string]int{"ok": 1})
	if st := getStats(t, ts.URL); st.ResponseEncodeErrors != 1 {
		t.Errorf("counter moved on a successful encode: %d", st.ResponseEncodeErrors)
	}
}

// loadPrograms returns the mixed corpus the load test rotates through:
// the paper's figures plus two generated suites.
func loadPrograms() []string {
	return []string{
		workload.Fig1Source,
		workload.Fig2Source,
		workload.Fig16Source,
		workload.GenerateSource(workload.BenchConfig{
			Name: "load-a", Procs: 6, TargetVertices: 220, CallSites: 18, Slices: 4, Seed: 901,
		}),
		workload.GenerateSource(workload.BenchConfig{
			Name: "load-b", Procs: 9, TargetVertices: 320, CallSites: 26, Slices: 5, Seed: 902,
		}),
	}
}

// TestServerLoadConcurrent is the serving acceptance test: 64 concurrent
// clients, mixed programs and modes, several rounds. Run under -race. It
// asserts zero failed requests, consistent hit/miss accounting, and that
// warm cache hits dominate once every program has been built.
func TestServerLoadConcurrent(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheMaxEntries: 16})
	programs := loadPrograms()
	modes := []string{"poly", "mono", "weiser"}

	const (
		clients = 64
		rounds  = 4
	)
	var wg sync.WaitGroup
	errc := make(chan error, clients*rounds)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := SliceRequest{
					Program: programs[(c+r)%len(programs)],
					Criteria: []CriterionRequest{
						{Kind: "printf", Mode: modes[c%len(modes)]},
						{Kind: "printf", Proc: "main"},
					},
					NoSource: c%2 == 0,
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/v1/slice", "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					continue
				}
				var out SliceResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("client %d round %d: decode: %v", c, r, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("client %d round %d: status %d", c, r, resp.StatusCode)
					continue
				}
				for _, res := range out.Results {
					if res.Error != "" {
						errc <- fmt.Errorf("client %d round %d: %s: %s", c, r, res.Label, res.Error)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errc)
	failed := 0
	for err := range errc {
		failed++
		t.Error(err)
	}
	if failed > 0 {
		t.Fatalf("%d failed requests, want 0", failed)
	}

	st := getStats(t, ts.URL)
	lookups := int64(clients * rounds)
	if st.Cache.Hits+st.Cache.Misses != lookups {
		t.Errorf("hits %d + misses %d != %d lookups", st.Cache.Hits, st.Cache.Misses, lookups)
	}
	if st.Cache.Builds+st.Cache.BuildErrors+st.Cache.Deduped != st.Cache.Misses {
		t.Errorf("builds %d + errors %d + deduped %d != misses %d",
			st.Cache.Builds, st.Cache.BuildErrors, st.Cache.Deduped, st.Cache.Misses)
	}
	if st.Cache.BuildErrors != 0 {
		t.Errorf("%d build errors", st.Cache.BuildErrors)
	}
	if st.Cache.Builds != int64(len(programs)) {
		t.Errorf("builds = %d, want %d (one per distinct program)", st.Cache.Builds, len(programs))
	}
	if st.Cache.Advances+st.Cache.ColdBuilds+st.Cache.DiskHits != st.Cache.Builds {
		t.Errorf("build accounting broken: advances %d + cold %d + disk %d != builds %d",
			st.Cache.Advances, st.Cache.ColdBuilds, st.Cache.DiskHits, st.Cache.Builds)
	}
	// After the first round every program is warm: hits must dominate.
	if st.Cache.Hits <= st.Cache.Misses {
		t.Errorf("hits %d do not dominate misses %d", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.InFlight != 0 {
		t.Errorf("in-flight builds = %d after drain", st.Cache.InFlight)
	}
	if st.Requests != lookups*2 || st.Failed != 0 {
		t.Errorf("server requests %d (want %d), failed %d (want 0)", st.Requests, lookups*2, st.Failed)
	}
	if st.Batches != lookups {
		t.Errorf("batches %d, want %d", st.Batches, lookups)
	}
	if st.Phases.TotalNS <= 0 || st.Phases.PrestarNS <= 0 {
		t.Errorf("aggregate phases not accumulated: %+v", st.Phases)
	}

	// One more sequential pass: everything must now be served warm.
	for _, src := range programs {
		status, resp, raw := postSlice(t, ts.URL, SliceRequest{
			Program:  src,
			Criteria: []CriterionRequest{{Kind: "printf"}},
			NoSource: true,
		})
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, raw)
		}
		if !resp.CacheHit {
			t.Errorf("program %s missed the warm cache", resp.ProgramKey[:8])
		}
	}
}
