package emit

import (
	"reflect"
	"strings"
	"testing"

	"specslice/internal/core"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

const fig1Src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

const fig2Src = `
int g1; int g2;

void s(int a, int b) {
  g1 = b;
  g2 = a;
}

void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}

int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  printf("%d\n", g1);
  return 0;
}
`

func specializeAndEmit(t *testing.T, src string) (*lang.Program, *lang.Program) {
	t.Helper()
	prog := lang.MustParse(src)
	g := sdg.MustBuild(prog)
	crit := core.PrintfCriterion(g, "main")
	var cfgs []core.Config
	for _, v := range crit {
		cfgs = append(cfgs, core.Config{Vertex: v})
	}
	res, err := core.Specialize(g, core.Configs(cfgs))
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	out, err := Program(g, res.Variants())
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	return prog, out
}

func TestFig1EmittedProgram(t *testing.T) {
	_, out := specializeAndEmit(t, fig1Src)
	text := lang.Print(out)

	// Shape checks against the paper's Fig. 1(b).
	if !strings.Contains(text, "p_1(int b)") && !strings.Contains(text, "p_2(int b)") {
		t.Errorf("no one-parameter specialization of p:\n%s", text)
	}
	if !strings.Contains(text, "int a, int b") {
		t.Errorf("no two-parameter specialization of p:\n%s", text)
	}
	if strings.Contains(text, "g3") {
		t.Errorf("g3 must be sliced away:\n%s", text)
	}
	if strings.Contains(text, "g2 = 100") {
		t.Errorf("dead initialization g2 = 100 must be sliced away:\n%s", text)
	}

	// Re-parse and re-analyze: the emitted text must be a valid program.
	re, err := lang.Parse(text)
	if err != nil {
		t.Fatalf("emitted program does not reparse: %v\n%s", err, text)
	}
	if _, err := sdg.Build(re); err != nil {
		t.Fatalf("emitted program does not re-analyze: %v", err)
	}
}

func TestFig1Semantics(t *testing.T) {
	orig, out := specializeAndEmit(t, fig1Src)
	r1, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatalf("emitted program fails to run: %v\n%s", err, lang.Print(out))
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: original %v, slice %v", r1.Output, r2.Output)
	}
	if r2.Steps >= r1.Steps {
		t.Errorf("slice runs %d steps, original %d; expected fewer", r2.Steps, r1.Steps)
	}
}

func TestFig2EmittedMutualRecursion(t *testing.T) {
	orig, out := specializeAndEmit(t, fig2Src)
	text := lang.Print(out)
	// Specialized r variants must exist and be mutually recursive.
	if !strings.Contains(text, "r_1") || !strings.Contains(text, "r_2") {
		t.Fatalf("expected r_1 and r_2:\n%s", text)
	}
	r1, err := interp.Run(orig, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(out, interp.Options{})
	if err != nil {
		t.Fatalf("emitted program fails: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Errorf("outputs differ: %v vs %v\n%s", r1.Output, r2.Output, text)
	}
}

// TestDeadLocalNotEmitted reproduces the paper's §1 "flawed method" example:
// z = 3 must appear in the variant that needs it and not in the other.
func TestDeadLocalNotEmitted(t *testing.T) {
	src := `
int g1; int g2;

void p(int a, int b) {
  g1 = a;
  int z = 3;
  g2 = b + z;
}

int main() {
  p(11, 4);
  p(g2, 2);
  printf("%d", g1);
  return 0;
}
`
	_, out := specializeAndEmit(t, src)
	// Two variants of p: one with g1 = a only (no z), one with z and g2.
	var withZ, withoutZ int
	for _, fn := range out.Funcs {
		if !strings.HasPrefix(fn.Name, "p") {
			continue
		}
		text := lang.Print(&lang.Program{Funcs: []*lang.FuncDecl{fn}})
		// Force text to include a main so Print works standalone: just
		// search the function body instead.
		if strings.Contains(text, "z = 3") {
			withZ++
		} else {
			withoutZ++
		}
	}
	if withZ != 1 || withoutZ != 1 {
		t.Errorf("z = 3 appears in %d variants and is absent from %d; want 1 and 1\n%s",
			withZ, withoutZ, lang.Print(out))
	}
}

func TestEmitPreservesOrigins(t *testing.T) {
	orig, out := specializeAndEmit(t, fig1Src)
	origIDs := map[lang.NodeID]bool{}
	for _, fn := range orig.Funcs {
		for _, s := range fn.Stmts() {
			origIDs[s.Base().OriginID()] = true
		}
	}
	for _, fn := range out.Funcs {
		for _, s := range fn.Stmts() {
			if d, ok := s.(*lang.DeclStmt); ok && d.Init == nil {
				continue // synthesized declarations have no origin
			}
			if !origIDs[s.Base().OriginID()] {
				t.Errorf("emitted statement at %s has origin %d not in the source program",
					s.Base().Pos, s.Base().OriginID())
			}
		}
	}
}
