// Package emit pretty-prints slicing results back into executable MicroC
// programs (paper Alg. 1's final step). Given the source SDG and one or
// more procedure variants — each a subset of a source procedure's vertices
// plus the specialized callee for every retained call-site — it rebuilds a
// lang.Program whose statements carry Origin links to the source program,
// so the interpreter can compare behaviors statement-by-statement.
package emit

import (
	"fmt"
	"sort"

	"specslice/internal/core"
	"specslice/internal/lang"
	"specslice/internal/sdg"
)

// Program rebuilds an executable program from procedure variants (e.g.
// core.Result.Variants(), or the single-variant sets produced by the mono
// package). The variant whose original procedure is main and whose name is
// "main" becomes the program's main.
func Program(src *sdg.Graph, variants []core.ProcVariant) (*lang.Program, error) {
	e := &emitter{src: src, out: lang.NewProgram()}

	// Index: statement ID -> primary vertex, per original proc.
	e.vertexOfStmt = map[lang.NodeID]sdg.VertexID{}
	for _, v := range src.Vertices {
		if v.Stmt == nil {
			continue
		}
		switch v.Kind {
		case sdg.KindStmt, sdg.KindPredicate, sdg.KindCall:
			e.vertexOfStmt[v.Stmt.Base().ID] = v.ID
		}
	}
	// Index: site by call statement ID.
	e.siteOfStmt = map[lang.NodeID]*sdg.Site{}
	for _, s := range src.Sites {
		e.siteOfStmt[s.Stmt.Base().ID] = s
	}

	hasMain := false
	for _, v := range variants {
		fn, err := e.emitFunc(v)
		if err != nil {
			return nil, err
		}
		e.out.Funcs = append(e.out.Funcs, fn)
		if fn.Name == "main" {
			hasMain = true
		}
	}
	if !hasMain {
		return nil, fmt.Errorf("emit: no main variant in the slice")
	}

	// Globals: those referenced anywhere in the emitted code.
	used := map[string]bool{}
	for _, fn := range e.out.Funcs {
		for _, s := range fn.Stmts() {
			for _, ex := range lang.StmtExprs(s) {
				for _, vr := range lang.ExprVars(ex) {
					used[vr] = true
				}
			}
			switch x := s.(type) {
			case *lang.AssignStmt:
				used[x.LHS] = true
			case *lang.ScanfStmt:
				used[x.Var] = true
			case *lang.CallStmt:
				if x.Target != "" {
					used[x.Target] = true
				}
			}
		}
	}
	for _, g := range src.Prog.Globals {
		if used[g.Name] {
			cp := *g
			e.out.Globals = append(e.out.Globals, &cp)
		}
	}

	if err := lang.Validate(e.out); err != nil {
		return nil, fmt.Errorf("emit: emitted program does not validate: %w", err)
	}
	return e.out, nil
}

// Source emits the variants and renders them as MicroC source text in one
// step — the path behind specslice.Slice.Source, which the HTTP service
// uses to return slice text to clients.
func Source(src *sdg.Graph, variants []core.ProcVariant) (string, error) {
	out, err := Program(src, variants)
	if err != nil {
		return "", err
	}
	return lang.Print(out), nil
}

type emitter struct {
	src          *sdg.Graph
	out          *lang.Program
	vertexOfStmt map[lang.NodeID]sdg.VertexID
	siteOfStmt   map[lang.NodeID]*sdg.Site
}

func (e *emitter) emitFunc(v core.ProcVariant) (*lang.FuncDecl, error) {
	orig := v.Orig.Fn
	fn := &lang.FuncDecl{Pos: orig.Pos, Name: v.Name}

	// Parameters: positional formals present in the variant, original order.
	keepParam := map[int]bool{}
	returnsValue := false
	for _, fiID := range v.Orig.FormalIns {
		fi := e.src.Vertices[fiID]
		if fi.Param != sdg.NoParam && v.Vertices[fiID] {
			keepParam[fi.Param] = true
		}
	}
	for _, foID := range v.Orig.FormalOuts {
		fo := e.src.Vertices[foID]
		if fo.IsReturn && v.Vertices[foID] {
			returnsValue = true
		}
	}
	for i, p := range orig.Params {
		if keepParam[i] {
			fn.Params = append(fn.Params, p)
		}
	}
	fn.ReturnsValue = returnsValue

	body, err := e.emitBlock(orig.Body, v, returnsValue)
	if err != nil {
		return nil, fmt.Errorf("emit: %s: %w", v.Name, err)
	}
	fn.Body = body

	// Declare locals that are referenced but no longer declared (their
	// declaring statement may have been sliced away).
	declared := map[string]bool{}
	for _, p := range fn.Params {
		declared[p.Name] = true
	}
	lang.WalkStmts(fn.Body, func(s lang.Stmt) {
		if d, ok := s.(*lang.DeclStmt); ok {
			declared[d.Name] = true
		}
	})
	origLocals := map[string]bool{}
	fnptrLocals := map[string]bool{}
	lang.WalkStmts(orig.Body, func(s lang.Stmt) {
		if d, ok := s.(*lang.DeclStmt); ok {
			origLocals[d.Name] = true
			if d.IsFnPtr {
				fnptrLocals[d.Name] = true
			}
		}
	})
	for _, pp := range orig.Params {
		origLocals[pp.Name] = true
	}
	needed := map[string]bool{}
	lang.WalkStmts(fn.Body, func(s lang.Stmt) {
		for _, ex := range lang.StmtExprs(s) {
			for _, vr := range lang.ExprVars(ex) {
				needed[vr] = true
			}
		}
		switch x := s.(type) {
		case *lang.AssignStmt:
			needed[x.LHS] = true
		case *lang.ScanfStmt:
			needed[x.Var] = true
		case *lang.CallStmt:
			if x.Target != "" {
				needed[x.Target] = true
			}
			if x.Indirect {
				needed[x.Callee] = true
			}
		}
	})
	var missing []string
	for vr := range needed {
		if origLocals[vr] && !declared[vr] {
			missing = append(missing, vr)
		}
	}
	sort.Strings(missing)
	var decls []lang.Stmt
	for _, vr := range missing {
		decls = append(decls, &lang.DeclStmt{
			StmtBase: lang.StmtBase{ID: e.out.NewID(), Pos: orig.Pos},
			Name:     vr, IsFnPtr: fnptrLocals[vr],
		})
	}
	fn.Body.Stmts = append(decls, fn.Body.Stmts...)
	return fn, nil
}

func (e *emitter) emitBlock(b *lang.Block, v core.ProcVariant, returnsValue bool) (*lang.Block, error) {
	out := &lang.Block{}
	if b == nil {
		return out, nil
	}
	for _, s := range b.Stmts {
		stmts, err := e.emitStmt(s, v, returnsValue)
		if err != nil {
			return nil, err
		}
		out.Stmts = append(out.Stmts, stmts...)
	}
	return out, nil
}

func (e *emitter) included(s lang.Stmt, v core.ProcVariant) bool {
	vid, ok := e.vertexOfStmt[s.Base().ID]
	return ok && v.Vertices[vid]
}

func (e *emitter) emitStmt(s lang.Stmt, v core.ProcVariant, returnsValue bool) ([]lang.Stmt, error) {
	switch x := s.(type) {
	case *lang.DeclStmt:
		if x.Init == nil {
			// Pure declarations are re-synthesized on demand in emitFunc.
			return nil, nil
		}
		if !e.included(s, v) {
			return nil, nil
		}
		return []lang.Stmt{lang.CloneStmtInto(e.out, s)}, nil

	case *lang.AssignStmt, *lang.BreakStmt, *lang.ContinueStmt:
		if !e.included(s, v) {
			return nil, nil
		}
		return []lang.Stmt{lang.CloneStmtInto(e.out, s)}, nil

	case *lang.ReturnStmt:
		if !e.included(s, v) {
			return nil, nil
		}
		cp := lang.CloneStmtInto(e.out, s).(*lang.ReturnStmt)
		if !returnsValue {
			cp.Value = nil
		}
		return []lang.Stmt{cp}, nil

	case *lang.IfStmt:
		if !e.included(s, v) {
			if err := e.checkNoIncludedDescendant(x.Then, x.Else, v, x.Pos); err != nil {
				return nil, err
			}
			return nil, nil
		}
		cp := &lang.IfStmt{
			StmtBase: lang.StmtBase{ID: e.out.NewID(), Pos: x.Pos, Origin: x.OriginID()},
			Cond:     lang.CloneExpr(x.Cond),
		}
		var err error
		cp.Then, err = e.emitBlock(x.Then, v, returnsValue)
		if err != nil {
			return nil, err
		}
		if x.Else != nil {
			elseB, err := e.emitBlock(x.Else, v, returnsValue)
			if err != nil {
				return nil, err
			}
			if len(elseB.Stmts) > 0 {
				cp.Else = elseB
			}
		}
		return []lang.Stmt{cp}, nil

	case *lang.WhileStmt:
		if !e.included(s, v) {
			if err := e.checkNoIncludedDescendant(x.Body, nil, v, x.Pos); err != nil {
				return nil, err
			}
			return nil, nil
		}
		cp := &lang.WhileStmt{
			StmtBase: lang.StmtBase{ID: e.out.NewID(), Pos: x.Pos, Origin: x.OriginID()},
			Cond:     lang.CloneExpr(x.Cond),
		}
		var err error
		cp.Body, err = e.emitBlock(x.Body, v, returnsValue)
		if err != nil {
			return nil, err
		}
		return []lang.Stmt{cp}, nil

	case *lang.CallStmt:
		if !e.included(s, v) {
			return nil, nil
		}
		site := e.siteOfStmt[x.ID]
		if site == nil {
			return nil, fmt.Errorf("no site for call at %s", x.Pos)
		}
		callee, ok := v.CallTarget[site.ID]
		if !ok {
			// A call vertex can survive with no specialized callee only
			// when none of its actuals did: the call is a no-op in the
			// slice's semantics, so it is dropped from the text.
			for _, a := range append(append([]sdg.VertexID(nil), site.ActualIns...), site.ActualOuts...) {
				if v.Vertices[a] {
					return nil, fmt.Errorf("call at %s retained with live actuals but no specialized callee", x.Pos)
				}
			}
			return nil, nil
		}
		cp := &lang.CallStmt{
			StmtBase: lang.StmtBase{ID: e.out.NewID(), Pos: x.Pos, Origin: x.OriginID()},
			Callee:   callee, Indirect: x.Indirect,
		}
		// Keep only the argument positions whose actual-in survived.
		for _, aiID := range site.ActualIns {
			ai := e.src.Vertices[aiID]
			if ai.Param != sdg.NoParam && v.Vertices[aiID] {
				cp.Args = append(cp.Args, lang.CloneExpr(x.Args[ai.Param]))
			}
		}
		// Keep the result assignment only if the return actual-out survived.
		for _, aoID := range site.ActualOuts {
			ao := e.src.Vertices[aoID]
			if ao.IsReturn && v.Vertices[aoID] {
				cp.Target = x.Target
			}
		}
		return []lang.Stmt{cp}, nil

	case *lang.PrintfStmt:
		if !e.included(s, v) {
			return nil, nil
		}
		// §6.1 guarantees all printf actuals survive together.
		site := e.siteOfStmt[x.ID]
		for _, ai := range site.ActualIns {
			if !v.Vertices[ai] {
				return nil, fmt.Errorf("printf at %s retained with missing actual (violates §6.1)", x.Pos)
			}
		}
		return []lang.Stmt{lang.CloneStmtInto(e.out, s)}, nil

	case *lang.ScanfStmt:
		if !e.included(s, v) {
			return nil, nil
		}
		return []lang.Stmt{lang.CloneStmtInto(e.out, s)}, nil
	}
	return nil, fmt.Errorf("emit: unknown statement %T", s)
}

// checkNoIncludedDescendant guards the structural assumption that a sliced
// statement's structural ancestors are in the slice too (which holds because
// control dependence is transitively closed under pre*).
func (e *emitter) checkNoIncludedDescendant(b1, b2 *lang.Block, v core.ProcVariant, pos lang.Pos) error {
	var err error
	check := func(s lang.Stmt) {
		if err == nil && e.included(s, v) {
			err = fmt.Errorf("statement at %s is in the slice but its enclosing control structure at %s is not", s.Base().Pos, pos)
		}
	}
	lang.WalkStmts(b1, check)
	lang.WalkStmts(b2, check)
	return err
}
