package sdg

import (
	"fmt"
	"hash/fnv"
	"io"
	"reflect"
	"sort"

	"specslice/internal/dataflow"
	"specslice/internal/lang"
	"specslice/internal/par"
)

// This file implements procedure-granular incremental SDG construction:
// Advance builds the graph of an edited program by replaying the procedure
// dependence graphs of untouched procedures from the previous version and
// rebuilding only the procedures an edit actually affects.
//
// The unit of reuse is the "build signature" of a procedure — a hash of
// every input its PDG construction reads:
//
//   - its own normalized source (lang.ProcHash), which covers the
//     signature, body statements, CFG shape, and intraprocedural dataflow;
//   - its own mod/ref interface (formal-in globals and GMOD), which shapes
//     its formal vertices;
//   - the mod/ref interface, return-ness, and arity of every procedure it
//     calls, which shape its call-site actual vertices and kill sets.
//
// If the signature is unchanged between versions, a full rebuild of that
// procedure would produce a structurally identical PDG, so Advance copies
// it. Crucially, the replay creates vertices and call sites in exactly the
// order Build would (all skeletons in procedure order, then all bodies in
// procedure order, sites in statement order), so the advanced graph's
// vertex and site numbering — and therefore every downstream artifact, PDS
// encoding, automaton, and emitted slice — is identical to a from-scratch
// build of the new program. The incremental equivalence oracle
// (TESTING.md, Layer 4) holds Advance to exactly that standard.

// DeltaStats reports what Advance reused and what it had to rebuild.
type DeltaStats struct {
	// ProcsReused / ProcsRebuilt partition the new program's procedures.
	ProcsReused  int
	ProcsRebuilt int
	// ProcsRemoved counts old procedures with no same-name successor.
	ProcsRemoved int
	// SummarySitesSeeded / SummaryEdgesSeeded count the call sites (and
	// their summary edges) copied from the old graph because the callee's
	// entire call subtree is unchanged.
	SummarySitesSeeded int
	SummaryEdgesSeeded int
	// SummarySeeded reports that the old graph's summary fixpoint was
	// reused: the new graph carries the seeded edges and only DirtyProcs
	// need their formal-out pair propagation re-run
	// (slice.ComputeSummaryEdgesPartial). When false the new graph needs
	// the full summary computation.
	SummarySeeded bool
	// DirtyProcs lists the new-graph procedure indexes whose summary-edge
	// pairs must be recomputed: procedures whose call subtree contains a
	// rebuilt procedure, plus unchanged callees of rebuilt callers (their
	// pairs are needed to populate the rebuilt callers' new sites).
	DirtyProcs []int
}

// Advance constructs the SDG of newProg, reusing the PDGs of every
// procedure whose build signature is unchanged from old. The result is
// indistinguishable from Build(newProg) — same vertices, same numbering,
// same edges — but unchanged procedures skip CFG construction, control
// dependence, and the reaching-definitions dataflow, and (when old's
// summary edges were computed) most of the summary fixpoint is inherited.
// old is only read; it must be fully built (its engine frozen), and may be
// in use by concurrent readers.
func Advance(old *Graph, newProg *lang.Program) (*Graph, *DeltaStats, error) {
	for _, fn := range newProg.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return nil, nil, fmt.Errorf("sdg: %s: indirect call through %q; apply the funcptr transformation first", c.Pos, c.Callee)
			}
		}
	}
	// Hash the new version once; the old version's hashes were retained by
	// its own build, so the diff needs no second print pass.
	newHashes := lang.ProgramHashes(newProg)
	oldHashes := old.procHashes
	if oldHashes == nil {
		oldHashes = lang.ProgramHashes(old.Prog)
	}
	diff := lang.DiffProgramsHashed(old.Prog, newProg, oldHashes, newHashes)
	// Mod/ref is itself advanced procedure-granularly: summaries of procs
	// whose call subtree is textually unchanged are inherited, and the
	// fixpoints re-run only over edited procs and their callers.
	mr := dataflow.AdvanceModRefDiff(newProg, old.Prog, old.modref, diff)
	sigs := computeBuildSigsFromHashes(newProg, mr, newHashes, 1)
	b := &builder{
		g: &Graph{
			Prog:       newProg,
			ProcByName: map[string]int{},
			buildSigs:  sigs,
			procHashes: newHashes,
			modref:     mr,
		},
		mr: mr,
	}
	for i, fn := range newProg.Funcs {
		p := &Proc{Index: i, Name: fn.Name, Fn: fn}
		b.g.Procs = append(b.g.Procs, p)
		b.g.ProcByName[fn.Name] = i
	}

	st := &DeltaStats{}
	reuse := make([]bool, len(b.g.Procs))
	for i, p := range b.g.Procs {
		oi, ok := old.ProcByName[p.Name]
		if !ok {
			continue
		}
		if old.buildSigs[p.Name] != sigs[p.Name] {
			continue
		}
		reuse[i] = replayable(old.Procs[oi].Fn, p.Fn)
	}
	for name := range old.ProcByName {
		if _, ok := b.g.ProcByName[name]; !ok {
			st.ProcsRemoved++
		}
	}

	// Phase A: skeletons, in procedure order, exactly as Build does. The
	// skeleton is cheap (a handful of vertices from the already-computed
	// mod/ref sets), so it is rebuilt even for reused procedures — which
	// also revalidates the signature: a reused procedure's fresh skeleton
	// must match its old one vertex for vertex.
	for _, p := range b.g.Procs {
		b.buildProcSkeleton(p)
	}

	// Phase B: bodies, in procedure order. vmap carries old → new vertex
	// IDs for replayed procedures; sitemap likewise for their call sites.
	vmap := make([]VertexID, old.NumVertices())
	for i := range vmap {
		vmap[i] = -1
	}
	sitemap := make([]SiteID, len(old.Sites))
	for i := range sitemap {
		sitemap[i] = -1
	}
	for i, p := range b.g.Procs {
		if reuse[i] {
			po := old.Procs[old.ProcByName[p.Name]]
			if replayBody(b, old, po, p, vmap, sitemap) {
				st.ProcsReused++
				continue
			}
			// Structural mismatch despite equal signatures (hash
			// collision): fall back to an ordinary rebuild. Nothing has
			// been mutated for this procedure yet.
			reuse[i] = false
		}
		if err := b.buildProcBody(p); err != nil {
			return nil, nil, err
		}
		st.ProcsRebuilt++
	}
	b.connectProcs()

	seedSummaries(b.g, old, reuse, vmap, st)
	return b.g, st, nil
}

// replayable checks the cheap structural preconditions of a body replay:
// statement lists of equal length and matching statement kinds. Equal build
// signatures already imply this (equal normalized source parses to equal
// structure); the check guards against hash collisions.
func replayable(oldFn, newFn *lang.FuncDecl) bool {
	os, ns := oldFn.Stmts(), newFn.Stmts()
	if len(os) != len(ns) {
		return false
	}
	for i := range os {
		if reflect.TypeOf(os[i]) != reflect.TypeOf(ns[i]) {
			return false
		}
	}
	return true
}

// skeletonSize returns the number of skeleton (entry + formal) vertices of
// p; Proc.Vertices lists them first, in creation order.
func skeletonSize(p *Proc) int { return 1 + len(p.FormalIns) + len(p.FormalOuts) }

// replayBody copies po's body vertices, call sites, and intraprocedural
// edges into pn (whose skeleton is already built), preserving Build's
// creation order so IDs match a from-scratch build. It reports false —
// before mutating anything — if the old and new structures do not line up.
func replayBody(b *builder, old *Graph, po, pn *Proc, vmap []VertexID, sitemap []SiteID) bool {
	skel := skeletonSize(po)
	if skeletonSize(pn) != skel || len(pn.Vertices) != skel {
		return false
	}
	for i := 0; i < skel; i++ {
		o, n := old.Vertices[po.Vertices[i]], b.g.Vertices[pn.Vertices[i]]
		if o.Kind != n.Kind || o.Param != n.Param || o.Var != n.Var || o.IsReturn != n.IsReturn {
			return false
		}
	}

	// Old body statements map to new ones positionally: identical
	// normalized source parses to the identical statement sequence.
	os, ns := po.Fn.Stmts(), pn.Fn.Stmts()
	smap := make(map[lang.Stmt]lang.Stmt, len(os))
	for i := range os {
		smap[os[i]] = ns[i]
	}

	for i := 0; i < skel; i++ {
		vmap[po.Vertices[i]] = pn.Vertices[i]
	}

	// Call-site shells first (their IDs are referenced by the body
	// vertices' Site fields), in po.Sites order — which is statement
	// order, the order Build assigns.
	for _, osid := range po.Sites {
		so := old.Sites[osid]
		sn := &Site{
			ID:         SiteID(len(b.g.Sites)),
			CallerProc: pn.Index,
			Callee:     so.Callee,
			Lib:        so.Lib,
			Stmt:       smap[so.Stmt],
		}
		b.g.Sites = append(b.g.Sites, sn)
		pn.Sites = append(pn.Sites, sn.ID)
		sitemap[osid] = sn.ID
	}

	// Body vertices, in creation order. Attributes are copied verbatim;
	// Stmt points into the new AST (new source positions — line criteria
	// resolve against the new normalized text) and Site is renumbered.
	for _, ovid := range po.Vertices[skel:] {
		o := old.Vertices[ovid]
		nv := &Vertex{
			Kind:     o.Kind,
			Proc:     pn.Index,
			Site:     -1,
			Param:    o.Param,
			Var:      o.Var,
			IsReturn: o.IsReturn,
			Label:    o.Label,
		}
		if o.Stmt != nil {
			nv.Stmt = smap[o.Stmt]
		}
		if o.Site >= 0 {
			nv.Site = sitemap[o.Site]
		}
		vmap[ovid] = b.g.AddVertex(nv)
	}

	// Fill the sites' vertex lists through the now-complete vertex map.
	for _, osid := range po.Sites {
		so := old.Sites[osid]
		sn := b.g.Sites[sitemap[osid]]
		sn.CallVertex = vmap[so.CallVertex]
		for _, ai := range so.ActualIns {
			sn.ActualIns = append(sn.ActualIns, vmap[ai])
		}
		for _, ao := range so.ActualOuts {
			sn.ActualOuts = append(sn.ActualOuts, vmap[ao])
		}
	}

	// Intraprocedural control and flow edges. Skeleton control edges were
	// re-added by buildProcSkeleton; AddEdge dedups them. Call, param-in,
	// and param-out edges are re-derived by connectProcs; summary edges
	// are seeded separately.
	for _, ovid := range po.Vertices {
		for _, e := range old.Out(ovid) {
			if e.Kind != EdgeControl && e.Kind != EdgeFlow {
				continue
			}
			if old.Vertices[e.To].Proc != po.Index {
				continue
			}
			b.g.AddEdge(vmap[e.From], vmap[e.To], e.Kind)
		}
	}
	return true
}

// seedSummaries copies the old graph's summary edges wherever they are
// guaranteed still valid, and records which procedures' pair propagation
// the partial summary fixpoint must re-run.
//
// A summary edge at call site s (in caller P, calling Q) depends only on
// Q's call subtree: the same-level realizable paths from Q's formal-ins to
// its formal-outs. If every procedure reachable from Q (including Q) was
// replayed, the old edges at s are exactly the edges a fresh fixpoint
// would produce, so they are copied — provided P itself was replayed, so s
// has an old counterpart to copy from. Every site that does not get
// copies has its callee recorded in DirtyProcs, whose formal-outs seed
// slice.ComputeSummaryEdgesPartial.
func seedSummaries(g *Graph, old *Graph, reuse []bool, vmap []VertexID, st *DeltaStats) {
	if !old.SummariesComputed() {
		// Nothing to inherit: the engine will run the full fixpoint.
		st.SummarySeeded = false
		return
	}
	// deepDirty[i]: procedure i's call subtree contains a rebuilt
	// procedure. Propagate dirtiness caller-ward to a fixpoint.
	deepDirty := make([]bool, len(g.Procs))
	for i := range g.Procs {
		deepDirty[i] = !reuse[i]
	}
	for changed := true; changed; {
		changed = false
		for _, s := range g.Sites {
			if s.Lib {
				continue
			}
			if deepDirty[g.ProcByName[s.Callee]] && !deepDirty[s.CallerProc] {
				deepDirty[s.CallerProc] = true
				changed = true
			}
		}
	}

	need := map[int]bool{}
	for i := range g.Procs {
		if deepDirty[i] {
			need[i] = true
		}
	}
	for i, p := range g.Procs {
		if !reuse[i] {
			// Rebuilt caller: its sites are new, so even deep-clean
			// callees must have their pairs recomputed to populate them.
			for _, sid := range p.Sites {
				s := g.Sites[sid]
				if !s.Lib {
					need[g.ProcByName[s.Callee]] = true
				}
			}
			continue
		}
		po := old.Procs[old.ProcByName[p.Name]]
		for _, osid := range po.Sites {
			so := old.Sites[osid]
			if so.Lib || deepDirty[g.ProcByName[so.Callee]] {
				continue
			}
			st.SummarySitesSeeded++
			for _, ai := range so.ActualIns {
				for _, e := range old.Out(ai) {
					if e.Kind != EdgeSummary {
						continue
					}
					if old.Vertices[e.To].Site != so.ID {
						continue
					}
					if g.AddEdge(vmap[e.From], vmap[e.To], EdgeSummary) {
						st.SummaryEdgesSeeded++
					}
				}
			}
		}
	}
	st.DirtyProcs = make([]int, 0, len(need))
	for i := range need {
		st.DirtyProcs = append(st.DirtyProcs, i)
	}
	sort.Ints(st.DirtyProcs)
	st.SummarySeeded = true
}

// computeBuildSigs derives each procedure's build signature from the
// normalized program and its mod/ref analysis; see the file comment.
func computeBuildSigs(prog *lang.Program, mr *dataflow.ModRef) map[string]uint64 {
	sigs, _ := computeBuildSigsWorkers(prog, mr, 1)
	return sigs
}

// computeBuildSigsWorkers is computeBuildSigs over a worker pool: the
// per-procedure hashes (dominated by printing each body) are independent.
// It also returns the raw per-procedure content hashes so the graph can
// retain them for later diffing.
func computeBuildSigsWorkers(prog *lang.Program, mr *dataflow.ModRef, workers int) (sigs, hashes map[string]uint64) {
	hashSlots := make([]uint64, len(prog.Funcs))
	par.For(workers, len(prog.Funcs), func(i int) {
		hashSlots[i] = lang.ProcHash(prog.Funcs[i])
	})
	hashes = make(map[string]uint64, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		hashes[fn.Name] = hashSlots[i]
	}
	return computeBuildSigsFromHashes(prog, mr, hashes, workers), hashes
}

// computeBuildSigsFromHashes derives the build signatures from
// already-computed per-procedure content hashes — the advance path holds
// the new version's hashes from its diff and must not print again.
func computeBuildSigsFromHashes(prog *lang.Program, mr *dataflow.ModRef, hashes map[string]uint64, workers int) map[string]uint64 {
	ifaces := make(map[string]uint64, len(prog.Funcs))
	ifaceSlots := make([]uint64, len(prog.Funcs))
	par.For(workers, len(prog.Funcs), func(i int) {
		ifaceSlots[i] = ifaceHash(prog.Funcs[i], mr)
	})
	for i, fn := range prog.Funcs {
		ifaces[fn.Name] = ifaceSlots[i]
	}
	sigSlots := make([]uint64, len(prog.Funcs))
	par.For(workers, len(prog.Funcs), func(i int) {
		fn := prog.Funcs[i]
		h := fnv.New64a()
		writeU64(h, hashes[fn.Name])
		writeU64(h, ifaces[fn.Name])
		for _, callee := range directCallees(fn) {
			h.Write([]byte(callee))
			h.Write([]byte{0})
			writeU64(h, ifaces[callee])
		}
		sigSlots[i] = h.Sum64()
	})
	sigs := make(map[string]uint64, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		sigs[fn.Name] = sigSlots[i]
	}
	return sigs
}

// ifaceHash hashes the parts of a procedure's interface its callers' PDGs
// depend on: return-ness, arity, and the mod/ref global sets that shape
// actual-in/actual-out vertices and must-kill information. The sets are
// hashed by sorted name (the ModRef accessors' order), not interned ID,
// so signatures stay comparable across versions whose interners differ.
func ifaceHash(fn *lang.FuncDecl, mr *dataflow.ModRef) uint64 {
	h := fnv.New64a()
	if fn.ReturnsValue {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte{byte(len(fn.Params))})
	writeNames(h, mr.FormalInGlobalNames(fn.Name))
	writeNames(h, mr.GMODNames(fn.Name))
	writeNames(h, mr.MustModNames(fn.Name))
	return h.Sum64()
}

// directCallees returns the unique direct callee names of fn, sorted.
func directCallees(fn *lang.FuncDecl) []string {
	set := map[string]bool{}
	for _, s := range fn.Stmts() {
		if c, ok := s.(*lang.CallStmt); ok && !c.Indirect {
			set[c.Callee] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func writeU64(h io.Writer, v uint64) {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

func writeNames(h io.Writer, names []string) {
	for _, k := range names {
		h.Write([]byte(k))
		h.Write([]byte{0})
	}
	h.Write([]byte{1})
}
