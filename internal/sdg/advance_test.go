package sdg

import (
	"fmt"
	"strings"
	"testing"

	"specslice/internal/lang"
)

const advBase = `
int ga; int gb;

int leaf(int a, int b) {
  return a * b + 1;
}

void store(int v) {
  ga = v;
  gb = gb + v;
}

int mid(int x) {
  int t = leaf(x, 2);
  store(t);
  return t + ga;
}

int main() {
  int x = 1;
  scanf("%d", &x);
  x = mid(x);
  store(x);
  printf("%d\n", ga + gb);
  return 0;
}
`

func parseAdv(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return p
}

// graphsIdentical requires got to be indistinguishable from want: same
// vertex numbering, attributes, statement positions, sites, procs, and
// edge sets. This is the property that makes Advance safe to substitute
// for Build anywhere downstream.
func graphsIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() {
		t.Fatalf("vertices: got %d, want %d", got.NumVertices(), want.NumVertices())
	}
	for i := range want.Vertices {
		g, w := got.Vertices[i], want.Vertices[i]
		if g.Kind != w.Kind || g.Proc != w.Proc || g.Site != w.Site ||
			g.Param != w.Param || g.Var != w.Var || g.IsReturn != w.IsReturn || g.Label != w.Label {
			t.Fatalf("vertex %d differs:\ngot  %+v\nwant %+v", i, *g, *w)
		}
		switch {
		case (g.Stmt == nil) != (w.Stmt == nil):
			t.Fatalf("vertex %d: stmt presence differs", i)
		case g.Stmt != nil:
			if g.Stmt.Base().Pos != w.Stmt.Base().Pos || g.Stmt.Base().ID != w.Stmt.Base().ID {
				t.Fatalf("vertex %d: stmt identity differs: got %v/#%d want %v/#%d",
					i, g.Stmt.Base().Pos, g.Stmt.Base().ID, w.Stmt.Base().Pos, w.Stmt.Base().ID)
			}
		}
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("sites: got %d, want %d", len(got.Sites), len(want.Sites))
	}
	for i := range want.Sites {
		g, w := got.Sites[i], want.Sites[i]
		if g.ID != w.ID || g.CallerProc != w.CallerProc || g.Callee != w.Callee ||
			g.Lib != w.Lib || g.CallVertex != w.CallVertex ||
			fmt.Sprint(g.ActualIns) != fmt.Sprint(w.ActualIns) ||
			fmt.Sprint(g.ActualOuts) != fmt.Sprint(w.ActualOuts) {
			t.Fatalf("site %d differs:\ngot  %+v\nwant %+v", i, *g, *w)
		}
	}
	if len(got.Procs) != len(want.Procs) {
		t.Fatalf("procs: got %d, want %d", len(got.Procs), len(want.Procs))
	}
	for i := range want.Procs {
		g, w := got.Procs[i], want.Procs[i]
		if g.Name != w.Name || g.Entry != w.Entry ||
			fmt.Sprint(g.FormalIns) != fmt.Sprint(w.FormalIns) ||
			fmt.Sprint(g.FormalOuts) != fmt.Sprint(w.FormalOuts) ||
			fmt.Sprint(g.Vertices) != fmt.Sprint(w.Vertices) ||
			fmt.Sprint(g.Sites) != fmt.Sprint(w.Sites) {
			t.Fatalf("proc %d (%s) differs:\ngot  %+v\nwant %+v", i, w.Name, *g, *w)
		}
	}
	edgeSet := func(g *Graph) map[Edge]bool {
		m := map[Edge]bool{}
		for _, e := range g.Edges() {
			m[e] = true
		}
		return m
	}
	ge, we := edgeSet(got), edgeSet(want)
	for e := range we {
		if !ge[e] {
			t.Errorf("missing edge %v -%v-> %v", want.VertexString(e.From), e.Kind, want.VertexString(e.To))
		}
	}
	for e := range ge {
		if !we[e] {
			t.Errorf("extra edge %v -%v-> %v", got.VertexString(e.From), e.Kind, got.VertexString(e.To))
		}
	}
}

func TestAdvanceMatchesBuild(t *testing.T) {
	edits := []struct {
		name       string
		edit       func(string) string
		wantReused int // procedures whose PDG must be replayed
	}{
		{
			name:       "identical program",
			edit:       func(s string) string { return s },
			wantReused: 4,
		},
		{
			name: "statement edit in a leaf",
			edit: func(s string) string {
				return strings.Replace(s, "return a * b + 1;", "return a * b + 7;", 1)
			},
			wantReused: 3,
		},
		{
			name: "statement insert in main shifts lines",
			edit: func(s string) string {
				return strings.Replace(s, "int x = 1;", "int x = 1;\n  x = x + 4;", 1)
			},
			wantReused: 3,
		},
		{
			// store's GMOD/formal-in interface changes, so its callers
			// (mid, main) must rebuild too; only leaf survives.
			name: "interface change ripples to callers",
			edit: func(s string) string {
				return strings.Replace(s, "gb = gb + v;", "gb = v;", 1)
			},
			wantReused: 1,
		},
		{
			name: "procedure added",
			edit: func(s string) string {
				return strings.Replace(s, "int main", "int extra(int q) {\n  return q + 40;\n}\n\nint main", 1)
			},
			wantReused: 4,
		},
		{
			name: "procedure removed with its call sites",
			edit: func(s string) string {
				s = strings.Replace(s, "int t = leaf(x, 2);", "int t = x + 2;", 1)
				return strings.Replace(s, "int leaf(int a, int b) {\n  return a * b + 1;\n}\n\n", "", 1)
			},
			wantReused: 2, // store, main
		},
		{
			name: "global added and used",
			edit: func(s string) string {
				s = strings.Replace(s, "int ga; int gb;", "int ga; int gb; int gc;", 1)
				return strings.Replace(s, "ga = v;", "ga = v;\n  gc = v;", 1)
			},
			wantReused: 1, // leaf only: store's interface grows, callers follow
		},
	}

	oldProg := parseAdv(t, advBase)
	oldG := MustBuild(oldProg)
	for _, tc := range edits {
		t.Run(tc.name, func(t *testing.T) {
			newSrc := tc.edit(advBase)
			got, delta, err := Advance(oldG, parseAdv(t, newSrc))
			if err != nil {
				t.Fatalf("Advance: %v", err)
			}
			want := MustBuild(parseAdv(t, newSrc))
			graphsIdentical(t, got, want)
			if delta.ProcsReused != tc.wantReused {
				t.Errorf("ProcsReused = %d, want %d (delta %+v)", delta.ProcsReused, tc.wantReused, *delta)
			}
			if delta.ProcsReused+delta.ProcsRebuilt != len(want.Procs) {
				t.Errorf("reused %d + rebuilt %d != %d procs", delta.ProcsReused, delta.ProcsRebuilt, len(want.Procs))
			}
		})
	}
}

func TestAdvanceStableUnderReformat(t *testing.T) {
	// A reformat-only edit (indentation change) must reuse every PDG: the
	// build signature hashes the normalized source, not the raw text.
	oldG := MustBuild(parseAdv(t, advBase))
	reform := strings.ReplaceAll(advBase, "\n  ", "\n        ")
	got, delta, err := Advance(oldG, parseAdv(t, reform))
	if err != nil {
		t.Fatalf("Advance: %v", err)
	}
	if delta.ProcsRebuilt != 0 {
		t.Errorf("reformat rebuilt %d procs, want 0", delta.ProcsRebuilt)
	}
	graphsIdentical(t, got, MustBuild(parseAdv(t, reform)))
}

func TestAdvanceRejectsIndirectCalls(t *testing.T) {
	oldG := MustBuild(parseAdv(t, advBase))
	src := `
fnptr fp;

int f(int a) {
  return a;
}

int main() {
  fp = &f;
  int r = fp(3);
  printf("%d\n", r);
  return 0;
}
`
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, _, err := Advance(oldG, prog); err == nil {
		t.Fatal("Advance accepted a program with indirect calls")
	}
}
