package sdg

import (
	"specslice/internal/lang"
)

// Arena owns the backing storage of one bulk-constructed graph: vertex,
// procedure, and site slabs, the ID arenas their per-element lists are
// carved from, and the packed edge adjacency. The core readout builds each
// specialized graph R out of one arena — a handful of slab allocations on
// first use, zero once the arena comes back from the pool — and
// Result.Release returns it, so a warm slicing service reuses the same
// storage request after request (the same discipline the fsa pipeline and
// pds Prestar engine apply to their scratch).
//
// The contract is the usual one for pooled storage: after Release, the
// graph and every slice carved from the arena are dead; using them
// observes arbitrary later reuse.
type Arena struct {
	g     Graph
	verts []Vertex
	procs []Proc
	sites []Site
	vptrs []*Vertex
	pptrs []*Proc
	sptrs []*Site
	vids  []VertexID
	sids  []SiteID
	adj   [][]Edge
	eback []Edge

	procByName map[string]int
}

// NewArena returns an empty arena. Callers (the core result pool) own its
// lifecycle; Prepare resets it for reuse.
func NewArena() *Arena { return &Arena{} }

// Prepare resets the arena for a graph with exactly the given element
// counts — nVIDs and nSIDs bound the total VertexID/SiteID slots the
// caller will carve — and returns the embedded graph, empty. Capacities
// persist across reuse; only a growing workload allocates.
func (a *Arena) Prepare(prog *lang.Program, nVerts, nProcs, nSites, nVIDs, nSIDs int) *Graph {
	if cap(a.verts) < nVerts {
		a.verts = make([]Vertex, 0, nVerts)
		a.vptrs = make([]*Vertex, 0, nVerts)
	}
	if cap(a.procs) < nProcs {
		a.procs = make([]Proc, 0, nProcs)
		a.pptrs = make([]*Proc, 0, nProcs)
	}
	if cap(a.sites) < nSites {
		a.sites = make([]Site, 0, nSites)
		a.sptrs = make([]*Site, 0, nSites)
	}
	if cap(a.vids) < nVIDs {
		a.vids = make([]VertexID, 0, nVIDs)
	}
	if cap(a.sids) < nSIDs {
		a.sids = make([]SiteID, 0, nSIDs)
	}
	a.verts, a.vptrs = a.verts[:0], a.vptrs[:0]
	a.procs, a.pptrs = a.procs[:0], a.pptrs[:0]
	a.sites, a.sptrs = a.sites[:0], a.sptrs[:0]
	a.vids, a.sids = a.vids[:0], a.sids[:0]
	if a.procByName == nil {
		a.procByName = make(map[string]int, nProcs)
	} else {
		clear(a.procByName)
	}
	a.g = Graph{Prog: prog, ProcByName: a.procByName}
	return &a.g
}

// AddVertex appends a vertex to the slab (assigning its ID) and registers
// it with the graph. Unlike Graph.AddVertex it does not touch the owning
// procedure's Vertices list — bulk builders carve those themselves.
func (a *Arena) AddVertex(v Vertex) (VertexID, *Vertex) {
	if len(a.verts) == cap(a.verts) {
		panic("sdg: arena vertex slab overflow (Prepare undercounted)")
	}
	id := VertexID(len(a.verts))
	v.ID = id
	a.verts = append(a.verts, v)
	p := &a.verts[id]
	a.vptrs = append(a.vptrs, p)
	a.g.Vertices = a.vptrs
	return id, p
}

// AddProc appends a procedure (assigning its Index) and registers it.
func (a *Arena) AddProc(p Proc) *Proc {
	if len(a.procs) == cap(a.procs) {
		panic("sdg: arena proc slab overflow (Prepare undercounted)")
	}
	p.Index = len(a.procs)
	a.procs = append(a.procs, p)
	pp := &a.procs[p.Index]
	a.pptrs = append(a.pptrs, pp)
	a.g.Procs = a.pptrs
	a.procByName[p.Name] = p.Index
	return pp
}

// AddSite appends a call site (assigning its ID) and registers it.
func (a *Arena) AddSite(s Site) *Site {
	if len(a.sites) == cap(a.sites) {
		panic("sdg: arena site slab overflow (Prepare undercounted)")
	}
	s.ID = SiteID(len(a.sites))
	a.sites = append(a.sites, s)
	sp := &a.sites[s.ID]
	a.sptrs = append(a.sptrs, sp)
	a.g.Sites = a.sptrs
	return sp
}

// VIDs carves an empty VertexID list with capacity n from the ID arena.
func (a *Arena) VIDs(n int) []VertexID {
	off := len(a.vids)
	if off+n > cap(a.vids) {
		panic("sdg: arena VertexID overflow (Prepare undercounted)")
	}
	a.vids = a.vids[:off+n]
	return a.vids[off : off : off+n]
}

// SIDs carves an empty SiteID list with capacity n from the ID arena.
func (a *Arena) SIDs(n int) []SiteID {
	off := len(a.sids)
	if off+n > cap(a.sids) {
		panic("sdg: arena SiteID overflow (Prepare undercounted)")
	}
	a.sids = a.sids[:off+n]
	return a.sids[off : off : off+n]
}

// InstallEdges installs the (duplicate-free) edge list into the graph
// through the arena's recycled adjacency backings, keeping any regrown
// backing for the next reuse.
func (a *Arena) InstallEdges(edges []Edge) {
	a.adj, a.eback = a.g.InstallEdges(edges, a.adj, a.eback)
}
