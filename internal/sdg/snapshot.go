package sdg

import (
	"encoding/binary"
	"fmt"
	"reflect"

	"specslice/internal/dataflow"
	"specslice/internal/lang"
)

// This file implements the versioned binary snapshot codec behind the
// persistent engine store (internal/store): EncodeSnapshot flattens a
// built graph into bytes, DecodeSnapshot reconstructs an equivalent graph.
//
// The codec leans on the same determinism contract the incremental engine
// relies on: print/parse is a fixed point (lang.FuzzRoundTrip) and a
// procedure's statement pre-order survives the round trip, so statement
// identity can be stored as a (procedure, pre-order ordinal) pair against
// the snapshot's own normalized source text instead of serializing ASTs.
// Structures that are cheaper to rebuild than to store — the mod/ref
// relations, build signatures, and procedure content hashes — are not
// serialized at all; the snapshot carries a rebuild marker and the decoder
// recomputes them from the parsed source (dataflow.ComputeModRefWorkers is
// schedule-independent and exact, so the rebuilt rows match the originals
// word for word). Vertex-derived redundancy is likewise dropped: procedure
// vertex lists, formal lists, entry vertices, and call-site actual lists
// are all reconstructed from the vertex section, whose order is the
// original creation order.
//
// The decoder is designed to run on hostile bytes (store corruption that
// slipped past CRCs, fuzz inputs): every index is bounds-checked before
// use, every count is validated against the remaining input length before
// any allocation sized by it, and every failure is an error — never a
// panic, never an over-allocation.

// snapshotMagic identifies engine snapshots; the trailing byte is the
// format version. Any incompatible layout change must bump it.
const snapshotMagic = "SSNAP\x00\x00\x01"

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

const (
	snapFlagSummaries     = 1 << 0 // summary edges are included and complete
	snapFlagModRefRebuilt = 1 << 1 // mod/ref is a rebuild marker, not stored rows
)

// maxSnapshotParam bounds the Param field of any snapshot vertex; it only
// exists to keep a corrupt snapshot from sizing an allocation.
const maxSnapshotParam = 1 << 20

// EncodeSnapshot serializes a built graph. The graph must have been
// produced by Build or Advance (one Proc per program function, in order)
// and must be frozen: callers snapshot through engine.Engine.Snapshot,
// which runs the summary fixpoint first, so the encoded edge set is the
// complete analysis state and the decoded graph skips the fixpoint.
func EncodeSnapshot(g *Graph) ([]byte, error) {
	if g == nil || g.Prog == nil {
		return nil, fmt.Errorf("sdg: snapshot of nil graph")
	}
	if len(g.Procs) != len(g.Prog.Funcs) {
		return nil, fmt.Errorf("sdg: snapshot: %d procs vs %d functions", len(g.Procs), len(g.Prog.Funcs))
	}
	src := lang.Print(g.Prog)
	// The decoder reconstructs statement identity by re-parsing src, so the
	// round trip must reproduce this exact program shape. The property is
	// fuzz-tested program-wide; verify it for this graph anyway — an
	// unencodable graph must fail here, at write time, not at recovery.
	reparsed, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("sdg: snapshot source does not reparse: %w", err)
	}
	if out := lang.Print(reparsed); out != src {
		return nil, fmt.Errorf("sdg: snapshot source is not a print/parse fixed point")
	}
	if len(reparsed.Funcs) != len(g.Prog.Funcs) {
		return nil, fmt.Errorf("sdg: snapshot round trip changed function count")
	}
	stmtOrd := make([]map[lang.Stmt]int, len(g.Procs))
	for i, fn := range g.Prog.Funcs {
		rfn := reparsed.Funcs[i]
		if fn.Name != rfn.Name || !sameStmtShape(fn, rfn) {
			return nil, fmt.Errorf("sdg: snapshot round trip changed procedure %s", fn.Name)
		}
		stmts := fn.Stmts()
		ord := make(map[lang.Stmt]int, len(stmts))
		for j, s := range stmts {
			ord[s] = j
		}
		stmtOrd[i] = ord
	}

	var flags byte = snapFlagModRefRebuilt
	if g.summariesDone {
		flags |= snapFlagSummaries
	}

	// String table for the names that repeat across vertices and sites.
	strIdx := map[string]int{}
	var strs []string
	intern := func(s string) int {
		if i, ok := strIdx[s]; ok {
			return i
		}
		strIdx[s] = len(strs)
		strs = append(strs, s)
		return len(strs) - 1
	}
	for _, v := range g.Vertices {
		if v.Var != "" {
			intern(v.Var)
		}
	}
	for _, s := range g.Sites {
		intern(s.Callee)
	}

	var b []byte
	b = append(b, snapshotMagic...)
	b = append(b, flags)
	b = appendUvarint(b, uint64(len(src)))
	b = append(b, src...)
	b = appendUvarint(b, uint64(len(g.Vertices)))
	b = appendUvarint(b, uint64(len(g.Sites)))
	b = appendUvarint(b, uint64(g.NumEdges()))
	b = appendUvarint(b, uint64(len(strs)))
	for _, s := range strs {
		b = appendUvarint(b, uint64(len(s)))
		b = append(b, s...)
	}
	for _, v := range g.Vertices {
		if v.Proc < 0 || v.Proc >= len(g.Procs) {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d has proc %d", v.ID, v.Proc)
		}
		b = append(b, byte(v.Kind))
		b = appendUvarint(b, uint64(v.Proc))
		b = appendUvarint(b, uint64(v.Site+1))
		b = appendUvarint(b, uint64(v.Param+1))
		stmt := uint64(0)
		if v.Stmt != nil {
			o, ok := stmtOrd[v.Proc][v.Stmt]
			if !ok {
				return nil, fmt.Errorf("sdg: snapshot: vertex %d statement not in procedure %s", v.ID, g.Procs[v.Proc].Name)
			}
			stmt = uint64(o + 1)
		}
		b = appendUvarint(b, stmt)
		vr := uint64(0)
		if v.Var != "" {
			vr = uint64(strIdx[v.Var] + 1)
		}
		b = appendUvarint(b, vr)
		var fl byte
		if v.IsReturn {
			fl = 1
		}
		b = append(b, fl)
		b = appendUvarint(b, uint64(len(v.Label)))
		b = append(b, v.Label...)
	}
	for _, s := range g.Sites {
		b = appendUvarint(b, uint64(strIdx[s.Callee]))
		if s.Lib {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	for _, es := range g.out {
		for _, e := range es {
			b = appendUvarint(b, uint64(e.From))
			b = appendUvarint(b, uint64(e.To))
			b = append(b, byte(e.Kind))
		}
	}
	return b, nil
}

// sameStmtShape reports whether two versions of a function have identical
// statement pre-orders (count and dynamic statement kinds) — the property
// the ordinal-based statement encoding depends on.
func sameStmtShape(a, b *lang.FuncDecl) bool {
	as, bs := a.Stmts(), b.Stmts()
	if len(as) != len(bs) || len(a.Params) != len(b.Params) || a.ReturnsValue != b.ReturnsValue {
		return false
	}
	for i := range as {
		if reflect.TypeOf(as[i]) != reflect.TypeOf(bs[i]) {
			return false
		}
	}
	return true
}

// snapReader is a bounds-checked cursor over snapshot bytes. Every read
// returns an error on truncation instead of panicking.
type snapReader struct {
	b   []byte
	off int
}

func (r *snapReader) remaining() int { return len(r.b) - r.off }

func (r *snapReader) readByte() (byte, error) {
	if r.off >= len(r.b) {
		return 0, fmt.Errorf("sdg: snapshot truncated at byte %d", r.off)
	}
	c := r.b[r.off]
	r.off++
	return c, nil
}

func (r *snapReader) readUvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("sdg: snapshot: bad varint at byte %d", r.off)
	}
	r.off += n
	return v, nil
}

// readCount reads a count that sizes an upcoming allocation and validates
// it against the remaining input: each counted item occupies at least
// minBytes in the encoding, so a count the input cannot possibly hold is
// corruption — rejecting it here is what keeps the decoder from
// over-allocating on arbitrary bytes.
func (r *snapReader) readCount(what string, minBytes int) (int, error) {
	v, err := r.readUvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.remaining()/minBytes)+1 {
		return 0, fmt.Errorf("sdg: snapshot: %s count %d exceeds input", what, v)
	}
	return int(v), nil
}

func (r *snapReader) readString(n int) (string, error) {
	if n < 0 || n > r.remaining() {
		return "", fmt.Errorf("sdg: snapshot: string of %d bytes exceeds input", n)
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s, nil
}

// DecodeSnapshot reconstructs a graph from EncodeSnapshot bytes. The
// result is interchangeable with building the snapshot's source from
// scratch: identical vertex and site numbering, identical edge set
// (summary edges included), and freshly recomputed mod/ref state, so
// version chains can advance from it. Corrupt or truncated input returns
// an error; the decoder never panics and never allocates more than a
// small multiple of len(data).
func DecodeSnapshot(data []byte) (*Graph, error) {
	r := &snapReader{b: data}
	magic, err := r.readString(len(snapshotMagic))
	if err != nil || magic != snapshotMagic {
		return nil, fmt.Errorf("sdg: not an engine snapshot (bad magic)")
	}
	flags, err := r.readByte()
	if err != nil {
		return nil, err
	}
	srcLen, err := r.readCount("source", 1)
	if err != nil {
		return nil, err
	}
	src, err := r.readString(srcLen)
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("sdg: snapshot source does not parse: %w", err)
	}
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return nil, fmt.Errorf("sdg: snapshot source has indirect call through %q", c.Callee)
			}
		}
	}

	// minimum encoded sizes: vertex = kind+proc+site+param+stmt+var+flags+label ≥ 8,
	// site = callee+lib ≥ 2, edge = from+to+kind ≥ 3.
	nVerts, err := r.readCount("vertex", 8)
	if err != nil {
		return nil, err
	}
	nSites, err := r.readCount("site", 2)
	if err != nil {
		return nil, err
	}
	nEdges, err := r.readCount("edge", 3)
	if err != nil {
		return nil, err
	}
	nStrs, err := r.readCount("string", 1)
	if err != nil {
		return nil, err
	}
	strs := make([]string, nStrs)
	for i := range strs {
		n, err := r.readCount("string bytes", 1)
		if err != nil {
			return nil, err
		}
		if strs[i], err = r.readString(n); err != nil {
			return nil, err
		}
	}

	g := &Graph{Prog: prog, ProcByName: map[string]int{}}
	stmtsOf := make([][]lang.Stmt, len(prog.Funcs))
	for i, fn := range prog.Funcs {
		g.Procs = append(g.Procs, &Proc{Index: i, Name: fn.Name, Fn: fn})
		g.ProcByName[fn.Name] = i
		stmtsOf[i] = fn.Stmts()
	}

	sites := make([]*Site, nSites)
	for i := range sites {
		sites[i] = &Site{ID: SiteID(i), CallerProc: -1, CallVertex: -1}
	}
	hasEntry := make([]bool, len(g.Procs))
	g.Vertices = make([]*Vertex, 0, nVerts)
	for i := 0; i < nVerts; i++ {
		kind, err := r.readByte()
		if err != nil {
			return nil, err
		}
		if VertexKind(kind) > KindPredicate {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d has kind %d", i, kind)
		}
		procU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if procU >= uint64(len(g.Procs)) {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d references procedure %d of %d", i, procU, len(g.Procs))
		}
		proc := int(procU)
		siteU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if siteU > uint64(nSites) {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d references site %d of %d", i, siteU, nSites)
		}
		paramU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if paramU > maxSnapshotParam {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d has parameter index %d", i, paramU)
		}
		stmtU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if stmtU > uint64(len(stmtsOf[proc])) {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d references statement %d of %d in %s",
				i, stmtU, len(stmtsOf[proc]), g.Procs[proc].Name)
		}
		varU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if varU > uint64(len(strs)) {
			return nil, fmt.Errorf("sdg: snapshot: vertex %d references string %d of %d", i, varU, len(strs))
		}
		vfl, err := r.readByte()
		if err != nil {
			return nil, err
		}
		labelLen, err := r.readCount("label bytes", 1)
		if err != nil {
			return nil, err
		}
		label, err := r.readString(labelLen)
		if err != nil {
			return nil, err
		}
		v := &Vertex{
			Kind:     VertexKind(kind),
			Proc:     proc,
			Site:     SiteID(siteU) - 1,
			Param:    int(paramU) - 1,
			IsReturn: vfl&1 != 0,
			Label:    label,
		}
		if stmtU > 0 {
			v.Stmt = stmtsOf[proc][stmtU-1]
		}
		if varU > 0 {
			v.Var = strs[varU-1]
		}
		if err := checkVertexShape(v, i); err != nil {
			return nil, err
		}
		id := g.AddVertex(v)
		p := g.Procs[proc]
		switch v.Kind {
		case KindEntry:
			if hasEntry[proc] {
				return nil, fmt.Errorf("sdg: snapshot: procedure %s has two entry vertices", p.Name)
			}
			hasEntry[proc] = true
			p.Entry = id
		case KindFormalIn:
			if v.Param >= len(p.Fn.Params) && v.Param != NoParam {
				return nil, fmt.Errorf("sdg: snapshot: formal-in %d of %s exceeds arity %d", v.Param, p.Name, len(p.Fn.Params))
			}
			p.FormalIns = append(p.FormalIns, id)
		case KindFormalOut:
			p.FormalOuts = append(p.FormalOuts, id)
		}
		if v.Site >= 0 {
			s := sites[v.Site]
			switch v.Kind {
			case KindCall:
				if s.CallVertex >= 0 {
					return nil, fmt.Errorf("sdg: snapshot: site %d has two call vertices", v.Site)
				}
				s.CallVertex = id
				s.CallerProc = proc
				s.Stmt = v.Stmt
			case KindActualIn:
				s.ActualIns = append(s.ActualIns, id)
			case KindActualOut:
				s.ActualOuts = append(s.ActualOuts, id)
			default:
				return nil, fmt.Errorf("sdg: snapshot: %s vertex %d carries a site", v.Kind, i)
			}
		}
	}

	for i := range sites {
		calleeU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		if calleeU >= uint64(len(strs)) {
			return nil, fmt.Errorf("sdg: snapshot: site %d references string %d of %d", i, calleeU, len(strs))
		}
		lib, err := r.readByte()
		if err != nil {
			return nil, err
		}
		s := sites[i]
		s.Callee = strs[calleeU]
		s.Lib = lib != 0
		if s.CallVertex < 0 {
			return nil, fmt.Errorf("sdg: snapshot: site %d has no call vertex", i)
		}
		if s.Stmt == nil {
			return nil, fmt.Errorf("sdg: snapshot: site %d has no statement", i)
		}
		if !s.Lib {
			if _, ok := g.ProcByName[s.Callee]; !ok {
				return nil, fmt.Errorf("sdg: snapshot: site %d calls unknown procedure %q", i, s.Callee)
			}
		}
		for _, a := range append(append([]VertexID{}, s.ActualIns...), s.ActualOuts...) {
			if g.Vertices[a].Proc != s.CallerProc {
				return nil, fmt.Errorf("sdg: snapshot: site %d spans procedures", i)
			}
		}
		g.Sites = append(g.Sites, s)
		g.Procs[s.CallerProc].Sites = append(g.Procs[s.CallerProc].Sites, s.ID)
	}

	edges := make([]Edge, 0, nEdges)
	seen := make(map[uint64]struct{}, 2*nEdges)
	for i := 0; i < nEdges; i++ {
		fromU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		toU, err := r.readUvarint()
		if err != nil {
			return nil, err
		}
		kind, err := r.readByte()
		if err != nil {
			return nil, err
		}
		if fromU >= uint64(nVerts) || toU >= uint64(nVerts) {
			return nil, fmt.Errorf("sdg: snapshot: edge %d references vertex %d/%d of %d", i, fromU, toU, nVerts)
		}
		if EdgeKind(kind) > EdgeSummary {
			return nil, fmt.Errorf("sdg: snapshot: edge %d has kind %d", i, kind)
		}
		k := edgeKey(VertexID(fromU), VertexID(toU), EdgeKind(kind))
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("sdg: snapshot: duplicate edge %d", i)
		}
		seen[k] = struct{}{}
		edges = append(edges, Edge{From: VertexID(fromU), To: VertexID(toU), Kind: EdgeKind(kind)})
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("sdg: snapshot: %d trailing bytes", r.remaining())
	}
	g.InstallEdges(edges, nil, nil)

	for _, p := range g.Procs {
		if len(p.Vertices) == 0 || g.Vertices[p.Vertices[0]].Kind != KindEntry {
			return nil, fmt.Errorf("sdg: snapshot: procedure %s has no entry vertex", p.Name)
		}
		p.IndexFormals(g)
	}

	// Rebuild-marker structures: mod/ref, build signatures, and procedure
	// hashes are recomputed from the parsed source — exact fixpoints, so
	// the rebuilt state equals what the original build held, and Advance
	// from this graph behaves like Advance from the original.
	if flags&snapFlagModRefRebuilt != 0 {
		mr := dataflow.ComputeModRefWorkers(prog, 1)
		g.modref = mr
		g.buildSigs, g.procHashes = computeBuildSigsWorkers(prog, mr, 1)
	}
	if flags&snapFlagSummaries != 0 {
		g.summariesDone = true
	}
	return g, nil
}

// checkVertexShape enforces the kind-dependent invariants the builder
// establishes: skeleton vertices carry no statement, statement-level
// vertices do, and predicate/call kinds sit on the right statement types.
func checkVertexShape(v *Vertex, i int) error {
	switch v.Kind {
	case KindEntry, KindFormalIn, KindFormalOut:
		if v.Stmt != nil {
			return fmt.Errorf("sdg: snapshot: %s vertex %d carries a statement", v.Kind, i)
		}
		if v.Site >= 0 {
			return fmt.Errorf("sdg: snapshot: %s vertex %d carries a site", v.Kind, i)
		}
	case KindStmt:
		if v.Stmt == nil {
			return fmt.Errorf("sdg: snapshot: stmt vertex %d has no statement", i)
		}
	case KindPredicate:
		switch v.Stmt.(type) {
		case *lang.IfStmt, *lang.WhileStmt:
		default:
			return fmt.Errorf("sdg: snapshot: predicate vertex %d on %T", i, v.Stmt)
		}
	case KindCall, KindActualIn, KindActualOut:
		if v.Site < 0 {
			return fmt.Errorf("sdg: snapshot: %s vertex %d has no site", v.Kind, i)
		}
		switch v.Stmt.(type) {
		case *lang.CallStmt, *lang.PrintfStmt, *lang.ScanfStmt:
		default:
			return fmt.Errorf("sdg: snapshot: %s vertex %d on %T", v.Kind, i, v.Stmt)
		}
	}
	return nil
}

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}
