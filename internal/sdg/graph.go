// Package sdg builds system dependence graphs (Horwitz–Reps–Binkley 1990)
// for MicroC programs: one procedure dependence graph (PDG) per function —
// entry, formal-in/out, call, actual-in/out, statement, and predicate
// vertices with control and flow dependence edges — connected by call,
// parameter-in, and parameter-out edges. Library calls (printf/scanf) get
// the extra actual→call dependence edges of the paper's §6.1 so their
// signatures survive slicing.
package sdg

import (
	"fmt"
	"sort"
	"time"

	"specslice/internal/dataflow"
	"specslice/internal/lang"
)

// VertexID identifies an SDG vertex.
type VertexID int

// SiteID identifies a call-site.
type SiteID int

// VertexKind classifies SDG vertices.
type VertexKind int

const (
	KindEntry VertexKind = iota
	KindFormalIn
	KindFormalOut
	KindCall
	KindActualIn
	KindActualOut
	KindStmt      // assignment, decl-with-init, return, break, continue
	KindPredicate // if / while condition
)

var kindNames = [...]string{"entry", "formal-in", "formal-out", "call", "actual-in", "actual-out", "stmt", "pred"}

func (k VertexKind) String() string { return kindNames[k] }

// EdgeKind classifies SDG edges.
type EdgeKind int

const (
	EdgeControl EdgeKind = iota
	EdgeFlow
	EdgeCall
	EdgeParamIn
	EdgeParamOut
	EdgeSummary // actual-in → actual-out; computed by the slice package
)

var edgeNames = [...]string{"control", "flow", "call", "param-in", "param-out", "summary"}

func (k EdgeKind) String() string { return edgeNames[k] }

// NoParam marks formal/actual vertices that stand for a global or the
// return value rather than a positional parameter.
const NoParam = -1

// Vertex is one SDG vertex.
type Vertex struct {
	ID   VertexID
	Kind VertexKind
	Proc int       // index into Graph.Procs
	Stmt lang.Stmt // originating statement; nil for entry/formal vertices
	Site SiteID    // for call/actual vertices; -1 otherwise
	// Param is the 0-based parameter position for positional formal/actual
	// vertices, or NoParam.
	Param int
	// Var is the variable a formal/actual global vertex stands for, or the
	// return-value pseudo-variable.
	Var string
	// IsReturn marks the return-value formal-out/actual-out.
	IsReturn bool
	Label    string
}

// Edge is a directed SDG edge.
type Edge struct {
	From, To VertexID
	Kind     EdgeKind
}

// Proc is the PDG of one procedure.
type Proc struct {
	Index      int
	Name       string
	Fn         *lang.FuncDecl
	Entry      VertexID
	FormalIns  []VertexID // positional params in order, then globals sorted by name
	FormalOuts []VertexID // return value first (if any), then globals sorted by name
	Vertices   []VertexID
	Sites      []SiteID

	// formals is the O(1) formal-parameter lookup index, precomputed by
	// IndexFormals at build time. Graphs produced by bulk construction
	// (the core readout's specialized graphs) leave it nil and the lookup
	// methods fall back to binary search over the formal ordering
	// invariant — positional parameters first in ascending Param order,
	// then globals sorted by Var (and for formal-outs, the return value
	// first) — which Build establishes and every variant preserves.
	formals *formalIndex
}

// formalIndex caches formal-vertex lookups for one procedure.
type formalIndex struct {
	inByParam []VertexID // positional param -> formal-in + 1 (0 = none)
	inByVar   map[string]VertexID
	ret       VertexID // return formal-out, or -1
	outByVar  map[string]VertexID
}

// IndexFormals precomputes p's formal lookup index from its FormalIns and
// FormalOuts. Build calls it once per procedure after the skeleton phase;
// it must be re-run if the formal lists change.
func (p *Proc) IndexFormals(g *Graph) {
	idx := &formalIndex{ret: -1}
	for _, fiID := range p.FormalIns {
		fi := g.Vertices[fiID]
		if fi.Param != NoParam {
			for len(idx.inByParam) <= fi.Param {
				idx.inByParam = append(idx.inByParam, 0)
			}
			idx.inByParam[fi.Param] = fiID + 1
		} else {
			if idx.inByVar == nil {
				idx.inByVar = make(map[string]VertexID)
			}
			idx.inByVar[fi.Var] = fiID + 1
		}
	}
	for _, foID := range p.FormalOuts {
		fo := g.Vertices[foID]
		if fo.IsReturn {
			idx.ret = foID
		} else {
			if idx.outByVar == nil {
				idx.outByVar = make(map[string]VertexID)
			}
			idx.outByVar[fo.Var] = foID + 1
		}
	}
	p.formals = idx
}

// FormalInFor returns the formal-in vertex for positional parameter i.
func (p *Proc) FormalInFor(g *Graph, i int) (VertexID, bool) {
	if idx := p.formals; idx != nil {
		if i >= 0 && i < len(idx.inByParam) && idx.inByParam[i] != 0 {
			return idx.inByParam[i] - 1, true
		}
		return 0, false
	}
	// Binary search over the positional prefix (ascending Param).
	lo, hi := 0, len(p.FormalIns)
	for lo < hi {
		mid := (lo + hi) / 2
		fi := g.Vertices[p.FormalIns[mid]]
		if fi.Param == NoParam || fi.Param > i {
			hi = mid
		} else if fi.Param < i {
			lo = mid + 1
		} else {
			return p.FormalIns[mid], true
		}
	}
	return 0, false
}

// formalInGlobal returns the formal-in vertex for global name.
func (p *Proc) formalInGlobal(g *Graph, name string) (VertexID, bool) {
	if idx := p.formals; idx != nil {
		if v, ok := idx.inByVar[name]; ok {
			return v - 1, true
		}
		return 0, false
	}
	// Binary search over the globals suffix (Param == NoParam, sorted by
	// Var); positional formals order before every global.
	lo, hi := 0, len(p.FormalIns)
	for lo < hi {
		mid := (lo + hi) / 2
		fi := g.Vertices[p.FormalIns[mid]]
		if fi.Param != NoParam || fi.Var < name {
			lo = mid + 1
		} else if fi.Var > name {
			hi = mid
		} else {
			return p.FormalIns[mid], true
		}
	}
	return 0, false
}

// MatchFormalIn returns p's formal-in vertex matching actual-in a:
// positional actuals match on Param, global actuals on Var. It replaces
// the former linear scan over FormalIns (quadratic on wide parameter
// lists); the scan survives as the differential reference in
// internal/core/reference_test.go.
func (p *Proc) MatchFormalIn(g *Graph, a *Vertex) (VertexID, bool) {
	if a.Param != NoParam {
		return p.FormalInFor(g, a.Param)
	}
	return p.formalInGlobal(g, a.Var)
}

// MatchFormalOut returns p's formal-out vertex matching actual-out a: the
// return formal-out for return actuals, otherwise the matching global.
func (p *Proc) MatchFormalOut(g *Graph, a *Vertex) (VertexID, bool) {
	if idx := p.formals; idx != nil {
		if a.IsReturn {
			if idx.ret >= 0 {
				return idx.ret, true
			}
			return 0, false
		}
		if v, ok := idx.outByVar[a.Var]; ok {
			return v - 1, true
		}
		return 0, false
	}
	if a.IsReturn {
		if len(p.FormalOuts) > 0 && g.Vertices[p.FormalOuts[0]].IsReturn {
			return p.FormalOuts[0], true
		}
		return 0, false
	}
	// Binary search over the globals suffix (return value, if any, first).
	lo, hi := 0, len(p.FormalOuts)
	for lo < hi {
		mid := (lo + hi) / 2
		fo := g.Vertices[p.FormalOuts[mid]]
		if fo.IsReturn || fo.Var < a.Var {
			lo = mid + 1
		} else if fo.Var > a.Var {
			hi = mid
		} else {
			return p.FormalOuts[mid], true
		}
	}
	return 0, false
}

// Site is one call-site (user call, printf, or scanf).
type Site struct {
	ID         SiteID
	CallerProc int
	Callee     string // callee function name; "printf"/"scanf" for library calls
	Lib        bool
	CallVertex VertexID
	ActualIns  []VertexID // positional args in order, then globals sorted by name
	ActualOuts []VertexID // return value first (if present), then globals sorted by name
	Stmt       lang.Stmt
}

// ActualInFor returns the site's actual-in matching formal-in f, by binary
// search over the actual ordering invariant (positional args ascending,
// then globals sorted by Var — the mirror of the formal lists).
func (s *Site) ActualInFor(g *Graph, f *Vertex) (VertexID, bool) {
	lo, hi := 0, len(s.ActualIns)
	for lo < hi {
		mid := (lo + hi) / 2
		ai := g.Vertices[s.ActualIns[mid]]
		var less bool
		switch {
		case f.Param != NoParam:
			less = ai.Param != NoParam && ai.Param < f.Param
		default:
			less = ai.Param != NoParam || ai.Var < f.Var
		}
		if less {
			lo = mid + 1
			continue
		}
		if (f.Param != NoParam && ai.Param == f.Param) ||
			(f.Param == NoParam && ai.Param == NoParam && ai.Var == f.Var) {
			return s.ActualIns[mid], true
		}
		hi = mid
	}
	return 0, false
}

// ActualOutFor returns the site's actual-out matching formal-out f (the
// return actual for the return formal-out, otherwise the matching global).
func (s *Site) ActualOutFor(g *Graph, f *Vertex) (VertexID, bool) {
	if f.IsReturn {
		if len(s.ActualOuts) > 0 && g.Vertices[s.ActualOuts[0]].IsReturn {
			return s.ActualOuts[0], true
		}
		return 0, false
	}
	lo, hi := 0, len(s.ActualOuts)
	for lo < hi {
		mid := (lo + hi) / 2
		ao := g.Vertices[s.ActualOuts[mid]]
		if ao.IsReturn || ao.Var < f.Var {
			lo = mid + 1
		} else if ao.Var > f.Var {
			hi = mid
		} else {
			return s.ActualOuts[mid], true
		}
	}
	return 0, false
}

// Graph is a system dependence graph.
type Graph struct {
	Prog     *lang.Program
	Vertices []*Vertex
	Procs    []*Proc
	Sites    []*Site

	ProcByName map[string]int

	out [][]Edge
	in  [][]Edge
	// edgeSet is the O(1) dedup/membership index over all edges, keyed on
	// the packed (from, kind, to) int. It is nil until the first AddEdge
	// call.
	edgeSet map[uint64]struct{}
	// buildSigs maps each procedure name to its build signature: a hash of
	// every input its PDG construction depends on (normalized source plus
	// its own and its callees' mod/ref interfaces). Advance reuses a
	// procedure's PDG exactly when its signature is unchanged.
	buildSigs map[string]uint64
	// procHashes retains each procedure's raw content hash
	// (lang.ProcHash), so advancing from this graph diffs the versions
	// without printing the old program again.
	procHashes map[string]uint64
	// modref caches the program's interprocedural mod/ref analysis, so
	// Advance can reuse the summaries of procedures whose call subtree an
	// edit did not touch instead of re-running the fixpoints program-wide.
	modref *dataflow.ModRef
	// summariesDone records that the summary-edge fixpoint has been reached,
	// so recomputation can be skipped (see slice.ComputeSummaryEdges).
	summariesDone bool
	// buildStats records the phase timings of the Build that produced the
	// graph (zero when not built by Build).
	buildStats BuildStats
}

// SummariesComputed reports whether MarkSummariesComputed has been called.
func (g *Graph) SummariesComputed() bool { return g.summariesDone }

// MarkSummariesComputed records that the graph's summary edges are complete.
// Adding non-summary edges afterwards invalidates the mark; callers that
// mutate the graph further should not rely on it.
func (g *Graph) MarkSummariesComputed() { g.summariesDone = true }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// AddVertex appends a vertex and returns its ID.
func (g *Graph) AddVertex(v *Vertex) VertexID {
	v.ID = VertexID(len(g.Vertices))
	g.Vertices = append(g.Vertices, v)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if v.Proc >= 0 && v.Proc < len(g.Procs) {
		g.Procs[v.Proc].Vertices = append(g.Procs[v.Proc].Vertices, v.ID)
	}
	return v.ID
}

// edgeKey packs (from, kind, to) into one word: 4 bits of kind below 30
// bits of to below 30 bits of from. Vertex counts are bounded far below
// 2^30 by memory long before the key can overflow.
func edgeKey(from, to VertexID, kind EdgeKind) uint64 {
	return uint64(from)<<34 | uint64(to)<<4 | uint64(kind)
}

// ensureEdgeIndex builds the packed dedup index from the adjacency lists.
// Graphs assembled by InstallEdges skip the index (their edge list is
// dedup-free by construction), so the first mutation or membership query
// afterwards pays one linear pass here.
func (g *Graph) ensureEdgeIndex() {
	if g.edgeSet != nil {
		return
	}
	g.edgeSet = make(map[uint64]struct{}, 2*g.NumEdges())
	for _, es := range g.out {
		for _, e := range es {
			g.edgeSet[edgeKey(e.From, e.To, e.Kind)] = struct{}{}
		}
	}
}

// AddEdge inserts the edge if not already present, reporting whether it
// was new. Dedup is O(1) through the packed edge index.
func (g *Graph) AddEdge(from, to VertexID, kind EdgeKind) bool {
	g.ensureEdgeIndex()
	k := edgeKey(from, to, kind)
	if _, ok := g.edgeSet[k]; ok {
		return false
	}
	g.edgeSet[k] = struct{}{}
	e := Edge{From: from, To: to, Kind: kind}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return true
}

// HasEdge reports whether the exact edge exists, in O(1) after the index
// is (lazily) built.
func (g *Graph) HasEdge(from, to VertexID, kind EdgeKind) bool {
	g.ensureEdgeIndex()
	_, ok := g.edgeSet[edgeKey(from, to, kind)]
	return ok
}

// InstallEdges replaces the graph's adjacency with the given edge list,
// which must already be duplicate-free, packing the per-vertex out/in
// lists into the two provided backings (grown if short, and returned so
// bulk builders can recycle them): one [][]Edge of length 2·vertices
// holding both directions' headers and one []Edge of length 2·edges
// holding both copies. The dedup index is not built; a later AddEdge or
// HasEdge reconstructs it lazily.
func (g *Graph) InstallEdges(edges []Edge, adj [][]Edge, backing []Edge) ([][]Edge, []Edge) {
	n := len(g.Vertices)
	m := len(edges)
	if cap(adj) < 2*n {
		adj = make([][]Edge, 2*n)
	}
	adj = adj[:2*n]
	if cap(backing) < 2*m {
		backing = make([]Edge, 2*m)
	}
	backing = backing[:2*m]
	g.out, g.in = adj[:n:n], adj[n:]
	// Counting pass, then prefix offsets into the shared backing: out
	// lists occupy [0, m), in lists [m, 2m).
	counts := make([]int32, 2*n)
	for i := range edges {
		counts[edges[i].From]++
		counts[int(edges[i].To)+n]++
	}
	off := 0
	for v := 0; v < n; v++ {
		c := int(counts[v])
		g.out[v] = backing[off : off : off+c]
		off += c
	}
	off = m
	for v := 0; v < n; v++ {
		c := int(counts[n+v])
		g.in[v] = backing[off : off : off+c]
		off += c
	}
	for _, e := range edges {
		g.out[e.From] = append(g.out[e.From], e)
		g.in[e.To] = append(g.in[e.To], e)
	}
	g.edgeSet = nil
	return adj, backing
}

// Out returns the outgoing edges of v.
func (g *Graph) Out(v VertexID) []Edge { return g.out[v] }

// In returns the incoming edges of v.
func (g *Graph) In(v VertexID) []Edge { return g.in[v] }

// Edges returns all edges, ordered by source vertex.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, es := range g.out {
		out = append(out, es...)
	}
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// ProcOf returns the PDG containing v.
func (g *Graph) ProcOf(v VertexID) *Proc { return g.Procs[g.Vertices[v].Proc] }

// SiteCalls returns the call-sites calling procedure name.
func (g *Graph) SiteCalls(name string) []*Site {
	var out []*Site
	for _, s := range g.Sites {
		if s.Callee == name && !s.Lib {
			out = append(out, s)
		}
	}
	return out
}

// VertexString renders v for diagnostics.
func (g *Graph) VertexString(v VertexID) string {
	vx := g.Vertices[v]
	proc := "?"
	if vx.Proc >= 0 {
		proc = g.Procs[vx.Proc].Name
	}
	return fmt.Sprintf("v%d[%s %s %s]", v, proc, vx.Kind, vx.Label)
}

// SortedGlobals returns the program's non-fnptr global names, sorted.
func SortedGlobals(prog *lang.Program) []string {
	var out []string
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			out = append(out, g.Name)
		}
	}
	sort.Strings(out)
	return out
}

// BuildStats records where a Build spent its time and how wide its worker
// pool ran — the cold-path mirror of core.Timings, surfaced through the
// engine and the serving layer's /v1/stats.
type BuildStats struct {
	// Workers is the pool size the procedure-parallel phases actually used.
	Workers int
	// ModRef covers the interprocedural mod/ref analysis (plus build
	// signatures), PDG the per-procedure skeleton+body construction and
	// merge, Connect the interprocedural wiring.
	ModRef  time.Duration
	PDG     time.Duration
	Connect time.Duration
	Total   time.Duration
	// ModRefIntern/Local/Fixpoint split the dense mod/ref solve: variable
	// interning and call-graph setup, per-procedure CFG + effect-bit
	// extraction, and the word-wise summary propagation. Their sum is
	// less than ModRef, which also covers build-signature hashing.
	ModRefIntern   time.Duration
	ModRefLocal    time.Duration
	ModRefFixpoint time.Duration
}

// BuildStats reports the graph's build-phase timings (zero for graphs not
// produced by Build, e.g. Advance deltas or readout results).
func (g *Graph) BuildStats() BuildStats { return g.buildStats }

// Stats summarizes a graph for reporting.
type Stats struct {
	Procs     int
	Vertices  int
	Edges     int
	CallSites int
}

// Statistics returns summary counts.
func (g *Graph) Statistics() Stats {
	return Stats{Procs: len(g.Procs), Vertices: len(g.Vertices), Edges: g.NumEdges(), CallSites: len(g.Sites)}
}
