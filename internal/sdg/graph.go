// Package sdg builds system dependence graphs (Horwitz–Reps–Binkley 1990)
// for MicroC programs: one procedure dependence graph (PDG) per function —
// entry, formal-in/out, call, actual-in/out, statement, and predicate
// vertices with control and flow dependence edges — connected by call,
// parameter-in, and parameter-out edges. Library calls (printf/scanf) get
// the extra actual→call dependence edges of the paper's §6.1 so their
// signatures survive slicing.
package sdg

import (
	"fmt"
	"sort"

	"specslice/internal/dataflow"
	"specslice/internal/lang"
)

// VertexID identifies an SDG vertex.
type VertexID int

// SiteID identifies a call-site.
type SiteID int

// VertexKind classifies SDG vertices.
type VertexKind int

const (
	KindEntry VertexKind = iota
	KindFormalIn
	KindFormalOut
	KindCall
	KindActualIn
	KindActualOut
	KindStmt      // assignment, decl-with-init, return, break, continue
	KindPredicate // if / while condition
)

var kindNames = [...]string{"entry", "formal-in", "formal-out", "call", "actual-in", "actual-out", "stmt", "pred"}

func (k VertexKind) String() string { return kindNames[k] }

// EdgeKind classifies SDG edges.
type EdgeKind int

const (
	EdgeControl EdgeKind = iota
	EdgeFlow
	EdgeCall
	EdgeParamIn
	EdgeParamOut
	EdgeSummary // actual-in → actual-out; computed by the slice package
)

var edgeNames = [...]string{"control", "flow", "call", "param-in", "param-out", "summary"}

func (k EdgeKind) String() string { return edgeNames[k] }

// NoParam marks formal/actual vertices that stand for a global or the
// return value rather than a positional parameter.
const NoParam = -1

// Vertex is one SDG vertex.
type Vertex struct {
	ID   VertexID
	Kind VertexKind
	Proc int       // index into Graph.Procs
	Stmt lang.Stmt // originating statement; nil for entry/formal vertices
	Site SiteID    // for call/actual vertices; -1 otherwise
	// Param is the 0-based parameter position for positional formal/actual
	// vertices, or NoParam.
	Param int
	// Var is the variable a formal/actual global vertex stands for, or the
	// return-value pseudo-variable.
	Var string
	// IsReturn marks the return-value formal-out/actual-out.
	IsReturn bool
	Label    string
}

// Edge is a directed SDG edge.
type Edge struct {
	From, To VertexID
	Kind     EdgeKind
}

// Proc is the PDG of one procedure.
type Proc struct {
	Index      int
	Name       string
	Fn         *lang.FuncDecl
	Entry      VertexID
	FormalIns  []VertexID // positional params in order, then globals sorted by name
	FormalOuts []VertexID // return value first (if any), then globals sorted by name
	Vertices   []VertexID
	Sites      []SiteID
}

// FormalInFor returns the formal-in vertex for positional parameter i.
func (p *Proc) FormalInFor(g *Graph, i int) (VertexID, bool) {
	for _, v := range p.FormalIns {
		if g.Vertices[v].Param == i {
			return v, true
		}
	}
	return 0, false
}

// Site is one call-site (user call, printf, or scanf).
type Site struct {
	ID         SiteID
	CallerProc int
	Callee     string // callee function name; "printf"/"scanf" for library calls
	Lib        bool
	CallVertex VertexID
	ActualIns  []VertexID // positional args in order, then globals sorted by name
	ActualOuts []VertexID // return value first (if present), then globals sorted by name
	Stmt       lang.Stmt
}

// Graph is a system dependence graph.
type Graph struct {
	Prog     *lang.Program
	Vertices []*Vertex
	Procs    []*Proc
	Sites    []*Site

	ProcByName map[string]int

	out [][]Edge
	in  [][]Edge
	// edgeSet is the O(1) dedup/membership index over all edges, keyed on
	// the packed (from, kind, to) int. It is nil until the first AddEdge
	// call.
	edgeSet map[uint64]struct{}
	// buildSigs maps each procedure name to its build signature: a hash of
	// every input its PDG construction depends on (normalized source plus
	// its own and its callees' mod/ref interfaces). Advance reuses a
	// procedure's PDG exactly when its signature is unchanged.
	buildSigs map[string]uint64
	// modref caches the program's interprocedural mod/ref analysis, so
	// Advance can reuse the summaries of procedures whose call subtree an
	// edit did not touch instead of re-running the fixpoints program-wide.
	modref *dataflow.ModRef
	// summariesDone records that the summary-edge fixpoint has been reached,
	// so recomputation can be skipped (see slice.ComputeSummaryEdges).
	summariesDone bool
}

// SummariesComputed reports whether MarkSummariesComputed has been called.
func (g *Graph) SummariesComputed() bool { return g.summariesDone }

// MarkSummariesComputed records that the graph's summary edges are complete.
// Adding non-summary edges afterwards invalidates the mark; callers that
// mutate the graph further should not rely on it.
func (g *Graph) MarkSummariesComputed() { g.summariesDone = true }

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.Vertices) }

// AddVertex appends a vertex and returns its ID.
func (g *Graph) AddVertex(v *Vertex) VertexID {
	v.ID = VertexID(len(g.Vertices))
	g.Vertices = append(g.Vertices, v)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	if v.Proc >= 0 && v.Proc < len(g.Procs) {
		g.Procs[v.Proc].Vertices = append(g.Procs[v.Proc].Vertices, v.ID)
	}
	return v.ID
}

// edgeKey packs (from, kind, to) into one word: 4 bits of kind below 30
// bits of to below 30 bits of from. Vertex counts are bounded far below
// 2^30 by memory long before the key can overflow.
func edgeKey(from, to VertexID, kind EdgeKind) uint64 {
	return uint64(from)<<34 | uint64(to)<<4 | uint64(kind)
}

// AddEdge inserts the edge if not already present, reporting whether it
// was new. Dedup is O(1) through the packed edge index.
func (g *Graph) AddEdge(from, to VertexID, kind EdgeKind) bool {
	k := edgeKey(from, to, kind)
	if g.edgeSet == nil {
		g.edgeSet = map[uint64]struct{}{}
	}
	if _, ok := g.edgeSet[k]; ok {
		return false
	}
	g.edgeSet[k] = struct{}{}
	e := Edge{From: from, To: to, Kind: kind}
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return true
}

// HasEdge reports whether the exact edge exists, in O(1).
func (g *Graph) HasEdge(from, to VertexID, kind EdgeKind) bool {
	_, ok := g.edgeSet[edgeKey(from, to, kind)]
	return ok
}

// Out returns the outgoing edges of v.
func (g *Graph) Out(v VertexID) []Edge { return g.out[v] }

// In returns the incoming edges of v.
func (g *Graph) In(v VertexID) []Edge { return g.in[v] }

// Edges returns all edges, ordered by source vertex.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, es := range g.out {
		out = append(out, es...)
	}
	return out
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// ProcOf returns the PDG containing v.
func (g *Graph) ProcOf(v VertexID) *Proc { return g.Procs[g.Vertices[v].Proc] }

// SiteCalls returns the call-sites calling procedure name.
func (g *Graph) SiteCalls(name string) []*Site {
	var out []*Site
	for _, s := range g.Sites {
		if s.Callee == name && !s.Lib {
			out = append(out, s)
		}
	}
	return out
}

// VertexString renders v for diagnostics.
func (g *Graph) VertexString(v VertexID) string {
	vx := g.Vertices[v]
	proc := "?"
	if vx.Proc >= 0 {
		proc = g.Procs[vx.Proc].Name
	}
	return fmt.Sprintf("v%d[%s %s %s]", v, proc, vx.Kind, vx.Label)
}

// SortedGlobals returns the program's non-fnptr global names, sorted.
func SortedGlobals(prog *lang.Program) []string {
	var out []string
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			out = append(out, g.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Stats summarizes a graph for reporting.
type Stats struct {
	Procs     int
	Vertices  int
	Edges     int
	CallSites int
}

// Statistics returns summary counts.
func (g *Graph) Statistics() Stats {
	return Stats{Procs: len(g.Procs), Vertices: len(g.Vertices), Edges: g.NumEdges(), CallSites: len(g.Sites)}
}
