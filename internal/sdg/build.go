package sdg

import (
	"fmt"

	"specslice/internal/cfg"
	"specslice/internal/dataflow"
	"specslice/internal/lang"
)

// RetVar is the pseudo-variable carrying a procedure's return value between
// return statements and the return-value formal-out vertex.
const RetVar = "$ret"

// Build constructs the SDG of prog. The program must contain only direct
// calls; run funcptr.Transform first to eliminate indirect calls.
func Build(prog *lang.Program) (*Graph, error) {
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return nil, fmt.Errorf("sdg: %s: indirect call through %q; apply the funcptr transformation first", c.Pos, c.Callee)
			}
		}
	}
	mr := dataflow.ComputeModRef(prog)
	b := &builder{
		g: &Graph{
			Prog:       prog,
			ProcByName: map[string]int{},
			buildSigs:  computeBuildSigs(prog, mr),
			modref:     mr,
		},
		mr: mr,
	}
	for i, fn := range prog.Funcs {
		p := &Proc{Index: i, Name: fn.Name, Fn: fn}
		b.g.Procs = append(b.g.Procs, p)
		b.g.ProcByName[fn.Name] = i
	}
	for _, p := range b.g.Procs {
		b.buildProcSkeleton(p)
	}
	for _, p := range b.g.Procs {
		if err := b.buildProcBody(p); err != nil {
			return nil, err
		}
	}
	b.connectProcs()
	return b.g, nil
}

// MustBuild builds the SDG and panics on error; for tests and workloads
// known to be valid.
func MustBuild(prog *lang.Program) *Graph {
	g, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return g
}

type builder struct {
	g  *Graph
	mr *dataflow.ModRef
}

// buildProcSkeleton creates the entry and formal vertices of p.
func (b *builder) buildProcSkeleton(p *Proc) {
	fn := p.Fn
	p.Entry = b.g.AddVertex(&Vertex{Kind: KindEntry, Proc: p.Index, Site: -1, Param: NoParam, Label: fn.Name})

	for i, prm := range fn.Params {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalIn, Proc: p.Index, Site: -1, Param: i, Var: prm.Name,
			Label: fmt.Sprintf("%s: %s", fn.Name, prm.Name),
		})
		p.FormalIns = append(p.FormalIns, v)
	}
	for _, gname := range b.mr.FormalInGlobals(fn.Name).Sorted() {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalIn, Proc: p.Index, Site: -1, Param: NoParam, Var: gname,
			Label: fmt.Sprintf("%s: global %s in", fn.Name, gname),
		})
		p.FormalIns = append(p.FormalIns, v)
	}

	if fn.ReturnsValue {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalOut, Proc: p.Index, Site: -1, Param: NoParam, Var: RetVar, IsReturn: true,
			Label: fmt.Sprintf("%s: return", fn.Name),
		})
		p.FormalOuts = append(p.FormalOuts, v)
	}
	for _, gname := range b.mr.GMOD[fn.Name].Sorted() {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalOut, Proc: p.Index, Site: -1, Param: NoParam, Var: gname,
			Label: fmt.Sprintf("%s: global %s out", fn.Name, gname),
		})
		p.FormalOuts = append(p.FormalOuts, v)
	}

	for _, v := range p.FormalIns {
		b.g.AddEdge(p.Entry, v, EdgeControl)
	}
	for _, v := range p.FormalOuts {
		b.g.AddEdge(p.Entry, v, EdgeControl)
	}
}

// defEvent / useEvent attribute a variable definition or use to a vertex.
type defEvent struct {
	vertex VertexID
	vr     string
	kills  bool // definite assignment: kills prior defs of vr
}

type useEvent struct {
	vertex VertexID
	vr     string
}

// nodeInfo is the dataflow view of one CFG node.
type nodeInfo struct {
	vertex VertexID // primary vertex (call vertex for sites); -1 if none
	defs   []defEvent
	uses   []useEvent
}

func (b *builder) buildProcBody(p *Proc) error {
	fn := p.Fn
	graph := cfg.Build(fn)
	info := make([]nodeInfo, len(graph.Nodes))
	for i := range info {
		info[i].vertex = -1
	}

	// Entry node: formal-ins define their variables.
	info[graph.Entry.ID].vertex = VertexID(p.Entry)
	for _, fiID := range p.FormalIns {
		fi := b.g.Vertices[fiID]
		info[graph.Entry.ID].defs = append(info[graph.Entry.ID].defs, defEvent{vertex: fiID, vr: fi.Var, kills: true})
	}
	// Exit node: formal-outs use their variables.
	for _, foID := range p.FormalOuts {
		fo := b.g.Vertices[foID]
		info[graph.Exit.ID].uses = append(info[graph.Exit.ID].uses, useEvent{vertex: foID, vr: fo.Var})
	}

	// Statement vertices.
	for _, node := range graph.Nodes {
		if node.Stmt == nil {
			continue
		}
		ni := &info[node.ID]
		switch x := node.Stmt.(type) {
		case *lang.DeclStmt:
			if x.Init == nil {
				continue // pure declaration: no vertex
			}
			v := b.g.AddVertex(&Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: x.Name + " = " + lang.ExprString(x.Init)})
			ni.vertex = v
			ni.defs = append(ni.defs, defEvent{vertex: v, vr: x.Name, kills: true})
			b.addExprUses(ni, v, x.Init)

		case *lang.AssignStmt:
			v := b.g.AddVertex(&Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: x.LHS + " = " + lang.ExprString(x.RHS)})
			ni.vertex = v
			ni.defs = append(ni.defs, defEvent{vertex: v, vr: x.LHS, kills: true})
			b.addExprUses(ni, v, x.RHS)

		case *lang.IfStmt:
			v := b.g.AddVertex(&Vertex{Kind: KindPredicate, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "if " + lang.ExprString(x.Cond)})
			ni.vertex = v
			b.addExprUses(ni, v, x.Cond)

		case *lang.WhileStmt:
			v := b.g.AddVertex(&Vertex{Kind: KindPredicate, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "while " + lang.ExprString(x.Cond)})
			ni.vertex = v
			b.addExprUses(ni, v, x.Cond)

		case *lang.ReturnStmt:
			v := b.g.AddVertex(&Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "return " + lang.ExprString(x.Value)})
			ni.vertex = v
			if x.Value != nil && fn.ReturnsValue {
				ni.defs = append(ni.defs, defEvent{vertex: v, vr: RetVar, kills: true})
				b.addExprUses(ni, v, x.Value)
			}

		case *lang.BreakStmt:
			ni.vertex = b.g.AddVertex(&Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "break"})
		case *lang.ContinueStmt:
			ni.vertex = b.g.AddVertex(&Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "continue"})

		case *lang.CallStmt:
			b.buildCallSite(p, ni, x)

		case *lang.PrintfStmt:
			site := &Site{ID: SiteID(len(b.g.Sites)), CallerProc: p.Index, Callee: "printf", Lib: true, Stmt: x}
			b.g.Sites = append(b.g.Sites, site)
			p.Sites = append(p.Sites, site.ID)
			cv := b.g.AddVertex(&Vertex{Kind: KindCall, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Label: "call printf"})
			site.CallVertex = cv
			ni.vertex = cv
			for i, a := range x.Args {
				ai := b.g.AddVertex(&Vertex{Kind: KindActualIn, Proc: p.Index, Stmt: x, Site: site.ID, Param: i, Label: lang.ExprString(a)})
				site.ActualIns = append(site.ActualIns, ai)
				b.g.AddEdge(cv, ai, EdgeControl)
				for _, vr := range lang.ExprVars(a) {
					ni.uses = append(ni.uses, useEvent{vertex: ai, vr: vr})
				}
				// §6.1: library signatures must not change; make the call
				// depend on each of its actuals.
				b.g.AddEdge(ai, cv, EdgeFlow)
			}

		case *lang.ScanfStmt:
			site := &Site{ID: SiteID(len(b.g.Sites)), CallerProc: p.Index, Callee: "scanf", Lib: true, Stmt: x}
			b.g.Sites = append(b.g.Sites, site)
			p.Sites = append(p.Sites, site.ID)
			cv := b.g.AddVertex(&Vertex{Kind: KindCall, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Label: "call scanf"})
			site.CallVertex = cv
			ni.vertex = cv
			ao := b.g.AddVertex(&Vertex{Kind: KindActualOut, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: x.Var, Label: "&" + x.Var})
			site.ActualOuts = append(site.ActualOuts, ao)
			b.g.AddEdge(cv, ao, EdgeControl)
			b.g.AddEdge(cv, ao, EdgeFlow) // the read value comes from the call
			ni.defs = append(ni.defs, defEvent{vertex: ao, vr: x.Var, kills: true})
			// §6.1 edge: the actual-out is the &var argument; slicing back
			// from the call keeps its argument list intact.
			b.g.AddEdge(ao, cv, EdgeFlow)

		default:
			return fmt.Errorf("sdg: unhandled statement %T", x)
		}
	}

	// Control dependence edges (Ball–Horwitz augmented CFG).
	deps := cfg.ControlDeps(graph)
	for nodeID, controllers := range deps {
		dep := info[nodeID].vertex
		if dep < 0 {
			continue
		}
		for _, ctl := range controllers {
			src := info[ctl].vertex
			if src < 0 {
				continue
			}
			b.g.AddEdge(src, dep, EdgeControl)
		}
	}

	// Flow dependence via reaching definitions over executable edges.
	b.flowEdges(graph, info)
	return nil
}

func (b *builder) addExprUses(ni *nodeInfo, v VertexID, e lang.Expr) {
	if e == nil {
		return
	}
	for _, vr := range lang.ExprVars(e) {
		ni.uses = append(ni.uses, useEvent{vertex: v, vr: vr})
	}
}

func (b *builder) buildCallSite(p *Proc, ni *nodeInfo, x *lang.CallStmt) {
	calleeIdx := b.g.ProcByName[x.Callee]
	calleeFn := b.g.Procs[calleeIdx].Fn
	site := &Site{ID: SiteID(len(b.g.Sites)), CallerProc: p.Index, Callee: x.Callee, Stmt: x}
	b.g.Sites = append(b.g.Sites, site)
	p.Sites = append(p.Sites, site.ID)

	cv := b.g.AddVertex(&Vertex{Kind: KindCall, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Label: "call " + x.Callee})
	site.CallVertex = cv
	ni.vertex = cv

	for i, a := range x.Args {
		ai := b.g.AddVertex(&Vertex{Kind: KindActualIn, Proc: p.Index, Stmt: x, Site: site.ID, Param: i, Label: lang.ExprString(a)})
		site.ActualIns = append(site.ActualIns, ai)
		b.g.AddEdge(cv, ai, EdgeControl)
		for _, vr := range lang.ExprVars(a) {
			ni.uses = append(ni.uses, useEvent{vertex: ai, vr: vr})
		}
	}
	for _, gname := range b.mr.FormalInGlobals(x.Callee).Sorted() {
		ai := b.g.AddVertex(&Vertex{Kind: KindActualIn, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: gname, Label: "global " + gname + " in"})
		site.ActualIns = append(site.ActualIns, ai)
		b.g.AddEdge(cv, ai, EdgeControl)
		ni.uses = append(ni.uses, useEvent{vertex: ai, vr: gname})
	}

	if x.Target != "" && calleeFn.ReturnsValue {
		ao := b.g.AddVertex(&Vertex{Kind: KindActualOut, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: x.Target, IsReturn: true, Label: x.Target + " = ret"})
		site.ActualOuts = append(site.ActualOuts, ao)
		b.g.AddEdge(cv, ao, EdgeControl)
		ni.defs = append(ni.defs, defEvent{vertex: ao, vr: x.Target, kills: true})
	}
	mustMod := b.mr.MustMod[x.Callee]
	for _, gname := range b.mr.GMOD[x.Callee].Sorted() {
		ao := b.g.AddVertex(&Vertex{Kind: KindActualOut, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: gname, Label: "global " + gname + " out"})
		site.ActualOuts = append(site.ActualOuts, ao)
		b.g.AddEdge(cv, ao, EdgeControl)
		ni.defs = append(ni.defs, defEvent{vertex: ao, vr: gname, kills: mustMod[gname]})
	}
}

// flowEdges solves reaching definitions over the executable CFG and adds
// flow-dependence edges from reaching defs to uses.
func (b *builder) flowEdges(graph *cfg.Graph, info []nodeInfo) {
	// Index all definitions.
	type def struct {
		vertex VertexID
		vr     string
	}
	var defs []def
	defIndex := map[def]int{}
	defsOfVar := map[string][]int{}
	for i := range info {
		for _, d := range info[i].defs {
			k := def{d.vertex, d.vr}
			if _, ok := defIndex[k]; !ok {
				defIndex[k] = len(defs)
				defsOfVar[d.vr] = append(defsOfVar[d.vr], len(defs))
				defs = append(defs, k)
			}
		}
	}
	nd := len(defs)
	words := (nd + 63) / 64
	newSet := func() []uint64 { return make([]uint64, words) }
	setBit := func(s []uint64, i int) { s[i/64] |= 1 << (uint(i) % 64) }
	clearBit := func(s []uint64, i int) { s[i/64] &^= 1 << (uint(i) % 64) }
	getBit := func(s []uint64, i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

	n := len(graph.Nodes)
	inSets := make([][]uint64, n)
	outSets := make([][]uint64, n)
	for i := 0; i < n; i++ {
		inSets[i] = newSet()
		outSets[i] = newSet()
	}

	apply := func(nodeID int, in []uint64) []uint64 {
		out := append([]uint64(nil), in...)
		for _, d := range info[nodeID].defs {
			if d.kills {
				for _, di := range defsOfVar[d.vr] {
					clearBit(out, di)
				}
			}
		}
		for _, d := range info[nodeID].defs {
			setBit(out, defIndex[def{d.vertex, d.vr}])
		}
		return out
	}

	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		in := newSet()
		for _, e := range graph.Preds[id] {
			if e.Pseudo {
				continue
			}
			for w := 0; w < words; w++ {
				in[w] |= outSets[e.To][w]
			}
		}
		inSets[id] = in
		out := apply(id, in)
		changed := false
		for w := 0; w < words; w++ {
			if out[w] != outSets[id][w] {
				changed = true
				break
			}
		}
		if changed {
			outSets[id] = out
			for _, e := range graph.Succs[id] {
				if e.Pseudo {
					continue
				}
				if !inWork[e.To] {
					inWork[e.To] = true
					work = append(work, e.To)
				}
			}
		}
	}

	for id := 0; id < n; id++ {
		for _, u := range info[id].uses {
			for _, di := range defsOfVar[u.vr] {
				if getBit(inSets[id], di) {
					b.g.AddEdge(defs[di].vertex, u.vertex, EdgeFlow)
				}
			}
		}
	}
}

// connectProcs adds call, parameter-in, and parameter-out edges.
func (b *builder) connectProcs() {
	for _, site := range b.g.Sites {
		if site.Lib {
			continue
		}
		callee := b.g.Procs[b.g.ProcByName[site.Callee]]
		b.g.AddEdge(site.CallVertex, callee.Entry, EdgeCall)
		// Parameter-in: positional by Param index, globals by Var.
		for _, aiID := range site.ActualIns {
			ai := b.g.Vertices[aiID]
			for _, fiID := range callee.FormalIns {
				fi := b.g.Vertices[fiID]
				if matchFormal(ai, fi) {
					b.g.AddEdge(aiID, fiID, EdgeParamIn)
				}
			}
		}
		for _, aoID := range site.ActualOuts {
			ao := b.g.Vertices[aoID]
			for _, foID := range callee.FormalOuts {
				fo := b.g.Vertices[foID]
				if (ao.IsReturn && fo.IsReturn) || (!ao.IsReturn && !fo.IsReturn && ao.Var == fo.Var) {
					b.g.AddEdge(foID, aoID, EdgeParamOut)
				}
			}
		}
	}
}

func matchFormal(ai, fi *Vertex) bool {
	if ai.Param != NoParam {
		return fi.Param == ai.Param
	}
	return fi.Param == NoParam && ai.Var == fi.Var
}
