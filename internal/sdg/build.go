package sdg

import (
	"fmt"
	"time"

	"specslice/internal/cfg"
	"specslice/internal/dataflow"
	"specslice/internal/lang"
	"specslice/internal/par"
)

// RetVar is the pseudo-variable carrying a procedure's return value between
// return statements and the return-value formal-out vertex.
const RetVar = "$ret"

// Build constructs the SDG of prog with a GOMAXPROCS-sized worker pool.
// The program must contain only direct calls; run funcptr.Transform first
// to eliminate indirect calls.
func Build(prog *lang.Program) (*Graph, error) { return BuildWorkers(prog, 0) }

// BuildWorkers constructs the SDG of prog, sharding the procedure-local
// work — mod/ref summary components, build signatures, and the
// per-procedure dependence-graph bodies (CFG, control dependence, reaching
// definitions) — across a worker pool of the given size (<= 0 means
// GOMAXPROCS, mirroring engine.BatchOptions.Workers). Bodies are built
// into per-procedure buffers and merged in procedure order, so the
// resulting graph — vertex and site numbering included — is byte-identical
// for every worker count; the sequential-vs-parallel identity test and the
// incremental oracle (which crosses this path against Advance's direct
// one) hold it there.
func BuildWorkers(prog *lang.Program, workers int) (*Graph, error) {
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return nil, fmt.Errorf("sdg: %s: indirect call through %q; apply the funcptr transformation first", c.Pos, c.Callee)
			}
		}
	}
	workers = par.Workers(workers)
	t0 := time.Now()
	mr := dataflow.ComputeModRefWorkers(prog, workers)
	sigs, hashes := computeBuildSigsWorkers(prog, mr, workers)
	b := &builder{
		g: &Graph{
			Prog:       prog,
			ProcByName: map[string]int{},
			buildSigs:  sigs,
			procHashes: hashes,
			modref:     mr,
		},
		mr: mr,
	}
	tModRef := time.Now()
	for i, fn := range prog.Funcs {
		p := &Proc{Index: i, Name: fn.Name, Fn: fn}
		b.g.Procs = append(b.g.Procs, p)
		b.g.ProcByName[fn.Name] = i
	}
	for _, p := range b.g.Procs {
		b.buildProcSkeleton(p)
	}

	// Bodies: each procedure's CFG, control dependence, and reaching
	// definitions run independently into a buffer; the deterministic merge
	// below replays them in procedure order, reproducing the exact vertex,
	// site, and edge insertion order of a fully sequential build. The
	// fan-out is chunked by statement count so small procedures ride
	// along with big ones instead of each paying a scheduling round-trip.
	skelBase := VertexID(len(b.g.Vertices))
	bufs := make([]bodyBuf, len(b.g.Procs))
	par.ForWeighted(workers, len(b.g.Procs),
		func(i int) int { return len(b.g.Procs[i].Fn.Stmts()) },
		func(i int) {
			bufs[i].skelBase = skelBase
			bufs[i].err = b.buildBody(b.g.Procs[i], &bufs[i])
		})
	for i, p := range b.g.Procs {
		if err := bufs[i].err; err != nil {
			return nil, err
		}
		b.mergeBody(p, &bufs[i])
	}
	tPDG := time.Now()
	b.connectProcs()
	tConnect := time.Now()
	mrStats := mr.Stats()
	b.g.buildStats = BuildStats{
		Workers:        workers,
		ModRef:         tModRef.Sub(t0),
		PDG:            tPDG.Sub(tModRef),
		Connect:        tConnect.Sub(tPDG),
		Total:          tConnect.Sub(t0),
		ModRefIntern:   mrStats.Intern,
		ModRefLocal:    mrStats.Local,
		ModRefFixpoint: mrStats.Fixpoint,
	}
	return b.g, nil
}

// MustBuild builds the SDG and panics on error; for tests and workloads
// known to be valid.
func MustBuild(prog *lang.Program) *Graph {
	g, err := Build(prog)
	if err != nil {
		panic(err)
	}
	return g
}

// MustBuildWorkers is BuildWorkers, panicking on error.
func MustBuildWorkers(prog *lang.Program, workers int) *Graph {
	g, err := BuildWorkers(prog, workers)
	if err != nil {
		panic(err)
	}
	return g
}

type builder struct {
	g  *Graph
	mr *dataflow.ModRef
}

// bodyEmitter receives one procedure body's vertices, call sites, and
// edges in creation order. The direct implementation writes straight into
// the graph (the Advance rebuild path); bodyBuf records locally for the
// parallel build's deterministic merge.
type bodyEmitter interface {
	addVertex(v Vertex) VertexID
	// addSite appends a call site with CallerProc/Callee/Lib/Stmt set and
	// assigns its ID (global or buffer-local); the caller fills CallVertex
	// and the actual lists through the returned pointer.
	addSite(s Site) *Site
	addEdge(from, to VertexID, kind EdgeKind)
}

// directEmit writes body elements straight into the graph, in creation
// order — the classic sequential construction.
type directEmit struct {
	b *builder
	p *Proc
}

func (d directEmit) addVertex(v Vertex) VertexID {
	cp := v
	return d.b.g.AddVertex(&cp)
}

func (d directEmit) addSite(s Site) *Site {
	cp := s
	cp.ID = SiteID(len(d.b.g.Sites))
	d.b.g.Sites = append(d.b.g.Sites, &cp)
	d.p.Sites = append(d.p.Sites, cp.ID)
	return &cp
}

func (d directEmit) addEdge(from, to VertexID, kind EdgeKind) {
	d.b.g.AddEdge(from, to, kind)
}

// bodyBuf collects one procedure body locally. Vertex references at or
// above skelBase denote the buffer's own vertices (skelBase + local
// index); references below it are global skeleton vertices, which are
// already numbered. Site IDs and vertex Site fields are buffer-local.
type bodyBuf struct {
	skelBase VertexID
	verts    []Vertex
	sites    []*Site
	edges    []Edge
	err      error
}

func (bb *bodyBuf) addVertex(v Vertex) VertexID {
	bb.verts = append(bb.verts, v)
	return bb.skelBase + VertexID(len(bb.verts)-1)
}

func (bb *bodyBuf) addSite(s Site) *Site {
	s.ID = SiteID(len(bb.sites))
	sp := &s
	bb.sites = append(bb.sites, sp)
	return sp
}

func (bb *bodyBuf) addEdge(from, to VertexID, kind EdgeKind) {
	bb.edges = append(bb.edges, Edge{From: from, To: to, Kind: kind})
}

// mergeBody replays a buffered body into the graph: sites first (their
// global IDs are contiguous per procedure), then vertices (renumbered from
// the buffer-local range), then edges in recorded order through the
// deduplicating AddEdge — exactly the sequence the direct emitter produces.
func (b *builder) mergeBody(p *Proc, buf *bodyBuf) {
	siteBase := SiteID(len(b.g.Sites))
	vertBase := VertexID(len(b.g.Vertices))
	dec := func(ref VertexID) VertexID {
		if ref >= buf.skelBase {
			return vertBase + (ref - buf.skelBase)
		}
		return ref
	}
	for _, site := range buf.sites {
		site.ID += siteBase
		b.g.Sites = append(b.g.Sites, site)
		p.Sites = append(p.Sites, site.ID)
	}
	for i := range buf.verts {
		v := &buf.verts[i]
		if v.Site >= 0 {
			v.Site += siteBase
		}
		b.g.AddVertex(v)
	}
	for _, site := range buf.sites {
		site.CallVertex = dec(site.CallVertex)
		for i := range site.ActualIns {
			site.ActualIns[i] = dec(site.ActualIns[i])
		}
		for i := range site.ActualOuts {
			site.ActualOuts[i] = dec(site.ActualOuts[i])
		}
	}
	for _, e := range buf.edges {
		b.g.AddEdge(dec(e.From), dec(e.To), e.Kind)
	}
}

// buildProcSkeleton creates the entry and formal vertices of p.
func (b *builder) buildProcSkeleton(p *Proc) {
	fn := p.Fn
	p.Entry = b.g.AddVertex(&Vertex{Kind: KindEntry, Proc: p.Index, Site: -1, Param: NoParam, Label: fn.Name})

	for i, prm := range fn.Params {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalIn, Proc: p.Index, Site: -1, Param: i, Var: prm.Name,
			Label: fmt.Sprintf("%s: %s", fn.Name, prm.Name),
		})
		p.FormalIns = append(p.FormalIns, v)
	}
	for _, gname := range b.mr.FormalInGlobalNames(fn.Name) {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalIn, Proc: p.Index, Site: -1, Param: NoParam, Var: gname,
			Label: fmt.Sprintf("%s: global %s in", fn.Name, gname),
		})
		p.FormalIns = append(p.FormalIns, v)
	}

	if fn.ReturnsValue {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalOut, Proc: p.Index, Site: -1, Param: NoParam, Var: RetVar, IsReturn: true,
			Label: fmt.Sprintf("%s: return", fn.Name),
		})
		p.FormalOuts = append(p.FormalOuts, v)
	}
	for _, gname := range b.mr.GMODNames(fn.Name) {
		v := b.g.AddVertex(&Vertex{
			Kind: KindFormalOut, Proc: p.Index, Site: -1, Param: NoParam, Var: gname,
			Label: fmt.Sprintf("%s: global %s out", fn.Name, gname),
		})
		p.FormalOuts = append(p.FormalOuts, v)
	}

	for _, v := range p.FormalIns {
		b.g.AddEdge(p.Entry, v, EdgeControl)
	}
	for _, v := range p.FormalOuts {
		b.g.AddEdge(p.Entry, v, EdgeControl)
	}
	p.IndexFormals(b.g)
}

// defEvent / useEvent attribute a variable definition or use to a vertex.
type defEvent struct {
	vertex VertexID
	vr     string
	kills  bool // definite assignment: kills prior defs of vr
}

type useEvent struct {
	vertex VertexID
	vr     string
}

// nodeInfo is the dataflow view of one CFG node.
type nodeInfo struct {
	vertex VertexID // primary vertex (call vertex for sites); -1 if none
	defs   []defEvent
	uses   []useEvent
}

// buildProcBody builds p's body directly into the graph — the Advance
// rebuild path, which runs procedures strictly in order.
func (b *builder) buildProcBody(p *Proc) error {
	return b.buildBody(p, directEmit{b: b, p: p})
}

func (b *builder) buildBody(p *Proc, em bodyEmitter) error {
	fn := p.Fn
	graph := cfg.Build(fn)
	info := make([]nodeInfo, len(graph.Nodes))
	for i := range info {
		info[i].vertex = -1
	}

	// Entry node: formal-ins define their variables.
	info[graph.Entry.ID].vertex = VertexID(p.Entry)
	for _, fiID := range p.FormalIns {
		fi := b.g.Vertices[fiID]
		info[graph.Entry.ID].defs = append(info[graph.Entry.ID].defs, defEvent{vertex: fiID, vr: fi.Var, kills: true})
	}
	// Exit node: formal-outs use their variables.
	for _, foID := range p.FormalOuts {
		fo := b.g.Vertices[foID]
		info[graph.Exit.ID].uses = append(info[graph.Exit.ID].uses, useEvent{vertex: foID, vr: fo.Var})
	}

	// Statement vertices.
	for _, node := range graph.Nodes {
		if node.Stmt == nil {
			continue
		}
		ni := &info[node.ID]
		switch x := node.Stmt.(type) {
		case *lang.DeclStmt:
			if x.Init == nil {
				continue // pure declaration: no vertex
			}
			v := em.addVertex(Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: x.Name + " = " + lang.ExprString(x.Init)})
			ni.vertex = v
			ni.defs = append(ni.defs, defEvent{vertex: v, vr: x.Name, kills: true})
			b.addExprUses(ni, v, x.Init)

		case *lang.AssignStmt:
			v := em.addVertex(Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: x.LHS + " = " + lang.ExprString(x.RHS)})
			ni.vertex = v
			ni.defs = append(ni.defs, defEvent{vertex: v, vr: x.LHS, kills: true})
			b.addExprUses(ni, v, x.RHS)

		case *lang.IfStmt:
			v := em.addVertex(Vertex{Kind: KindPredicate, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "if " + lang.ExprString(x.Cond)})
			ni.vertex = v
			b.addExprUses(ni, v, x.Cond)

		case *lang.WhileStmt:
			v := em.addVertex(Vertex{Kind: KindPredicate, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "while " + lang.ExprString(x.Cond)})
			ni.vertex = v
			b.addExprUses(ni, v, x.Cond)

		case *lang.ReturnStmt:
			v := em.addVertex(Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "return " + lang.ExprString(x.Value)})
			ni.vertex = v
			if x.Value != nil && fn.ReturnsValue {
				ni.defs = append(ni.defs, defEvent{vertex: v, vr: RetVar, kills: true})
				b.addExprUses(ni, v, x.Value)
			}

		case *lang.BreakStmt:
			ni.vertex = em.addVertex(Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "break"})
		case *lang.ContinueStmt:
			ni.vertex = em.addVertex(Vertex{Kind: KindStmt, Proc: p.Index, Stmt: x, Site: -1, Param: NoParam, Label: "continue"})

		case *lang.CallStmt:
			b.buildCallSite(p, ni, x, em)

		case *lang.PrintfStmt:
			site := em.addSite(Site{CallerProc: p.Index, Callee: "printf", Lib: true, Stmt: x})
			cv := em.addVertex(Vertex{Kind: KindCall, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Label: "call printf"})
			site.CallVertex = cv
			ni.vertex = cv
			for i, a := range x.Args {
				ai := em.addVertex(Vertex{Kind: KindActualIn, Proc: p.Index, Stmt: x, Site: site.ID, Param: i, Label: lang.ExprString(a)})
				site.ActualIns = append(site.ActualIns, ai)
				em.addEdge(cv, ai, EdgeControl)
				for _, vr := range lang.ExprVars(a) {
					ni.uses = append(ni.uses, useEvent{vertex: ai, vr: vr})
				}
				// §6.1: library signatures must not change; make the call
				// depend on each of its actuals.
				em.addEdge(ai, cv, EdgeFlow)
			}

		case *lang.ScanfStmt:
			site := em.addSite(Site{CallerProc: p.Index, Callee: "scanf", Lib: true, Stmt: x})
			cv := em.addVertex(Vertex{Kind: KindCall, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Label: "call scanf"})
			site.CallVertex = cv
			ni.vertex = cv
			ao := em.addVertex(Vertex{Kind: KindActualOut, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: x.Var, Label: "&" + x.Var})
			site.ActualOuts = append(site.ActualOuts, ao)
			em.addEdge(cv, ao, EdgeControl)
			em.addEdge(cv, ao, EdgeFlow) // the read value comes from the call
			ni.defs = append(ni.defs, defEvent{vertex: ao, vr: x.Var, kills: true})
			// §6.1 edge: the actual-out is the &var argument; slicing back
			// from the call keeps its argument list intact.
			em.addEdge(ao, cv, EdgeFlow)

		default:
			return fmt.Errorf("sdg: unhandled statement %T", x)
		}
	}

	// Control dependence edges (Ball–Horwitz augmented CFG).
	deps := cfg.ControlDeps(graph)
	for nodeID, controllers := range deps {
		dep := info[nodeID].vertex
		if dep < 0 {
			continue
		}
		for _, ctl := range controllers {
			src := info[ctl].vertex
			if src < 0 {
				continue
			}
			em.addEdge(src, dep, EdgeControl)
		}
	}

	// Flow dependence via reaching definitions over executable edges.
	b.flowEdges(graph, info, em)
	return nil
}

func (b *builder) addExprUses(ni *nodeInfo, v VertexID, e lang.Expr) {
	if e == nil {
		return
	}
	for _, vr := range lang.ExprVars(e) {
		ni.uses = append(ni.uses, useEvent{vertex: v, vr: vr})
	}
}

func (b *builder) buildCallSite(p *Proc, ni *nodeInfo, x *lang.CallStmt, em bodyEmitter) {
	calleeIdx := b.g.ProcByName[x.Callee]
	calleeFn := b.g.Procs[calleeIdx].Fn
	site := em.addSite(Site{CallerProc: p.Index, Callee: x.Callee, Stmt: x})

	cv := em.addVertex(Vertex{Kind: KindCall, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Label: "call " + x.Callee})
	site.CallVertex = cv
	ni.vertex = cv

	for i, a := range x.Args {
		ai := em.addVertex(Vertex{Kind: KindActualIn, Proc: p.Index, Stmt: x, Site: site.ID, Param: i, Label: lang.ExprString(a)})
		site.ActualIns = append(site.ActualIns, ai)
		em.addEdge(cv, ai, EdgeControl)
		for _, vr := range lang.ExprVars(a) {
			ni.uses = append(ni.uses, useEvent{vertex: ai, vr: vr})
		}
	}
	for _, gname := range b.mr.FormalInGlobalNames(x.Callee) {
		ai := em.addVertex(Vertex{Kind: KindActualIn, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: gname, Label: "global " + gname + " in"})
		site.ActualIns = append(site.ActualIns, ai)
		em.addEdge(cv, ai, EdgeControl)
		ni.uses = append(ni.uses, useEvent{vertex: ai, vr: gname})
	}

	if x.Target != "" && calleeFn.ReturnsValue {
		ao := em.addVertex(Vertex{Kind: KindActualOut, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: x.Target, IsReturn: true, Label: x.Target + " = ret"})
		site.ActualOuts = append(site.ActualOuts, ao)
		em.addEdge(cv, ao, EdgeControl)
		ni.defs = append(ni.defs, defEvent{vertex: ao, vr: x.Target, kills: true})
	}
	for _, gname := range b.mr.GMODNames(x.Callee) {
		ao := em.addVertex(Vertex{Kind: KindActualOut, Proc: p.Index, Stmt: x, Site: site.ID, Param: NoParam, Var: gname, Label: "global " + gname + " out"})
		site.ActualOuts = append(site.ActualOuts, ao)
		em.addEdge(cv, ao, EdgeControl)
		ni.defs = append(ni.defs, defEvent{vertex: ao, vr: gname, kills: b.mr.MustModHas(x.Callee, gname)})
	}
}

// flowEdges solves reaching definitions over the executable CFG and adds
// flow-dependence edges from reaching defs to uses.
func (b *builder) flowEdges(graph *cfg.Graph, info []nodeInfo, em bodyEmitter) {
	// Index all definitions.
	type def struct {
		vertex VertexID
		vr     string
	}
	var defs []def
	defIndex := map[def]int{}
	defsOfVar := map[string][]int{}
	for i := range info {
		for _, d := range info[i].defs {
			k := def{d.vertex, d.vr}
			if _, ok := defIndex[k]; !ok {
				defIndex[k] = len(defs)
				defsOfVar[d.vr] = append(defsOfVar[d.vr], len(defs))
				defs = append(defs, k)
			}
		}
	}
	nd := len(defs)
	words := (nd + 63) / 64
	newSet := func() []uint64 { return make([]uint64, words) }
	setBit := func(s []uint64, i int) { s[i/64] |= 1 << (uint(i) % 64) }
	clearBit := func(s []uint64, i int) { s[i/64] &^= 1 << (uint(i) % 64) }
	getBit := func(s []uint64, i int) bool { return s[i/64]&(1<<(uint(i)%64)) != 0 }

	n := len(graph.Nodes)
	inSets := make([][]uint64, n)
	outSets := make([][]uint64, n)
	for i := 0; i < n; i++ {
		inSets[i] = newSet()
		outSets[i] = newSet()
	}

	apply := func(nodeID int, in []uint64) []uint64 {
		out := append([]uint64(nil), in...)
		for _, d := range info[nodeID].defs {
			if d.kills {
				for _, di := range defsOfVar[d.vr] {
					clearBit(out, di)
				}
			}
		}
		for _, d := range info[nodeID].defs {
			setBit(out, defIndex[def{d.vertex, d.vr}])
		}
		return out
	}

	work := make([]int, 0, n)
	inWork := make([]bool, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		id := work[0]
		work = work[1:]
		inWork[id] = false
		in := newSet()
		for _, e := range graph.Preds[id] {
			if e.Pseudo {
				continue
			}
			for w := 0; w < words; w++ {
				in[w] |= outSets[e.To][w]
			}
		}
		inSets[id] = in
		out := apply(id, in)
		changed := false
		for w := 0; w < words; w++ {
			if out[w] != outSets[id][w] {
				changed = true
				break
			}
		}
		if changed {
			outSets[id] = out
			for _, e := range graph.Succs[id] {
				if e.Pseudo {
					continue
				}
				if !inWork[e.To] {
					inWork[e.To] = true
					work = append(work, e.To)
				}
			}
		}
	}

	for id := 0; id < n; id++ {
		for _, u := range info[id].uses {
			for _, di := range defsOfVar[u.vr] {
				if getBit(inSets[id], di) {
					em.addEdge(defs[di].vertex, u.vertex, EdgeFlow)
				}
			}
		}
	}
}

// connectProcs adds call, parameter-in, and parameter-out edges, matching
// actuals to formals through the procedures' precomputed formal indexes.
func (b *builder) connectProcs() {
	for _, site := range b.g.Sites {
		if site.Lib {
			continue
		}
		callee := b.g.Procs[b.g.ProcByName[site.Callee]]
		b.g.AddEdge(site.CallVertex, callee.Entry, EdgeCall)
		// Parameter-in: positional by Param index, globals by Var.
		for _, aiID := range site.ActualIns {
			if fiID, ok := callee.MatchFormalIn(b.g, b.g.Vertices[aiID]); ok {
				b.g.AddEdge(aiID, fiID, EdgeParamIn)
			}
		}
		for _, aoID := range site.ActualOuts {
			if foID, ok := callee.MatchFormalOut(b.g, b.g.Vertices[aoID]); ok {
				b.g.AddEdge(foID, aoID, EdgeParamOut)
			}
		}
	}
}
