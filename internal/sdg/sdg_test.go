package sdg

import (
	"testing"

	"specslice/internal/dataflow"
	"specslice/internal/lang"
)

const fig1Src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

func TestModRefFig1(t *testing.T) {
	prog := lang.MustParse(fig1Src)
	mr := dataflow.ComputeModRef(prog)
	for _, g := range []string{"g1", "g2", "g3"} {
		if !mr.GMOD("p")[g] {
			t.Errorf("GMOD(p) missing %s", g)
		}
		if !mr.MustMod("p")[g] {
			t.Errorf("MustMod(p) missing %s", g)
		}
	}
	if len(mr.UEREF("p")) != 0 {
		t.Errorf("UEREF(p) = %v, want empty (params only feed globals)", mr.UEREF("p").Sorted())
	}
	if got := mr.FormalInGlobals("p"); len(got) != 0 {
		t.Errorf("FormalInGlobals(p) = %v, want empty (paper Fig. 3 has only a and b formal-ins)", got.Sorted())
	}
	if !mr.GMOD("main")["g1"] || !mr.MustMod("main")["g3"] {
		t.Errorf("main summaries wrong: GMOD=%v MustMod=%v", mr.GMOD("main").Sorted(), mr.MustMod("main").Sorted())
	}
}

func TestUERefPartialMod(t *testing.T) {
	src := `
int g;
void maybe(int c) {
  if (c > 0) { g = 1; }
}
int main() {
  maybe(0);
  printf("%d", g);
  return 0;
}
`
	prog := lang.MustParse(src)
	mr := dataflow.ComputeModRef(prog)
	if !mr.GMOD("maybe")["g"] {
		t.Error("GMOD(maybe) missing g")
	}
	if mr.MustMod("maybe")["g"] {
		t.Error("MustMod(maybe) must not contain g (conditional assignment)")
	}
	// g in GMOD−MustMod must yield a formal-in so the old value can pass
	// through the call.
	if !mr.FormalInGlobals("maybe")["g"] {
		t.Error("FormalInGlobals(maybe) missing g")
	}
}

func TestUERefUseBeforeDef(t *testing.T) {
	src := `
int g;
int reader() { return g + 1; }
int main() {
  int x;
  x = reader();
  printf("%d", x);
  return 0;
}
`
	prog := lang.MustParse(src)
	mr := dataflow.ComputeModRef(prog)
	if !mr.UEREF("reader")["g"] {
		t.Error("UEREF(reader) missing g")
	}
	if !mr.UEREF("main")["g"] {
		t.Error("UEREF(main) missing g (exposed through call)")
	}
}

// findVertex locates the unique vertex in proc with the given kind and label.
func findVertex(t *testing.T, g *Graph, proc, label string, kind VertexKind) VertexID {
	t.Helper()
	var found []VertexID
	for _, v := range g.Vertices {
		if g.Procs[v.Proc].Name == proc && v.Kind == kind && v.Label == label {
			found = append(found, v.ID)
		}
	}
	if len(found) != 1 {
		t.Fatalf("vertex %s/%s/%s: found %d", proc, kind, label, len(found))
	}
	return found[0]
}

func TestBuildFig1Shape(t *testing.T) {
	prog := lang.MustParse(fig1Src)
	g := MustBuild(prog)

	p := g.Procs[g.ProcByName["p"]]
	if len(p.FormalIns) != 2 {
		t.Errorf("p formal-ins = %d, want 2 (a, b)", len(p.FormalIns))
	}
	// Formal-outs: g1, g2, g3 (p returns nothing).
	if len(p.FormalOuts) != 3 {
		t.Errorf("p formal-outs = %d, want 3 (g1, g2, g3)", len(p.FormalOuts))
	}

	// Call sites: 3 calls to p + 1 printf.
	userSites, libSites := 0, 0
	for _, s := range g.Sites {
		if s.Lib {
			libSites++
		} else {
			userSites++
		}
	}
	if userSites != 3 || libSites != 1 {
		t.Errorf("sites = %d user + %d lib, want 3 + 1", userSites, libSites)
	}

	// Each call to p: actual-ins = 2 positional (no globals), actual-outs = 3.
	for _, s := range g.SiteCalls("p") {
		if len(s.ActualIns) != 2 {
			t.Errorf("site %d actual-ins = %d, want 2", s.ID, len(s.ActualIns))
		}
		if len(s.ActualOuts) != 3 {
			t.Errorf("site %d actual-outs = %d, want 3", s.ID, len(s.ActualOuts))
		}
	}

	// Flow dependence inside p: g2=b → g3=g2.
	g2b := findVertex(t, g, "p", "g2 = b", KindStmt)
	g3g2 := findVertex(t, g, "p", "g3 = g2", KindStmt)
	found := false
	for _, e := range g.Out(g2b) {
		if e.To == g3g2 && e.Kind == EdgeFlow {
			found = true
		}
	}
	if !found {
		t.Error("missing flow edge g2=b → g3=g2")
	}

	// Param-in edge: formal-in a receives from actual-ins at the three sites.
	fiA, _ := p.FormalInFor(g, 0)
	if n := len(g.In(fiA)); n != 4 { // control from entry + 3 param-in
		t.Errorf("formal-in a has %d in-edges, want 4", n)
	}
}

func TestControlDependenceLoopsAndJumps(t *testing.T) {
	src := `
int g;
int main() {
  int i = 0;
  while (i < 3) {
    if (i == 1) { break; }
    g = g + 1;
    i = i + 1;
  }
  printf("%d", g);
  return 0;
}
`
	g := MustBuild(lang.MustParse(src))
	// g = g+1 must be control dependent on both the while predicate and the
	// break's pseudo-predicate region (Ball–Horwitz: on the if, at least).
	asg := findVertex(t, g, "main", "g = g + 1", KindStmt)
	controllers := map[string]bool{}
	for _, e := range g.In(asg) {
		if e.Kind == EdgeControl {
			controllers[g.Vertices[e.From].Label] = true
		}
	}
	// With a conditional break before it, g=g+1 executes only when the if
	// did not take the break: its controllers are the if predicate and the
	// break pseudo-predicate (Ball–Horwitz), not the while directly.
	if !controllers["if i == 1"] {
		t.Errorf("g=g+1 controllers = %v, want to include the if", controllers)
	}
	if !controllers["break"] {
		t.Errorf("g=g+1 controllers = %v, want to include break (Ball–Horwitz)", controllers)
	}
	// The while predicate is in turn controlled by the if/break region
	// (the loop repeats only if the break was not taken).
	whileV := findVertex(t, g, "main", "while i < 3", KindPredicate)
	wctl := map[string]bool{}
	for _, e := range g.In(whileV) {
		if e.Kind == EdgeControl {
			wctl[g.Vertices[e.From].Label] = true
		}
	}
	if !wctl["break"] && !wctl["if i == 1"] {
		t.Errorf("while controllers = %v, want if/break", wctl)
	}
}

func TestRecursiveBuild(t *testing.T) {
	src := `
int g1; int g2;
void s(int a, int b) { g1 = b; g2 = a; }
int r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
  return 0;
}
int main() {
  g1 = 1;
  g2 = 2;
  int x;
  x = r(3);
  printf("%d\n", g1);
  return 0;
}
`
	g := MustBuild(lang.MustParse(src))
	if len(g.SiteCalls("r")) != 2 {
		t.Errorf("r call-sites = %d, want 2 (main and recursive)", len(g.SiteCalls("r")))
	}
	st := g.Statistics()
	if st.Procs != 3 || st.Vertices == 0 || st.Edges == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestIndirectCallRejected(t *testing.T) {
	src := `
int f(int a) { return a; }
int main() {
  fnptr p;
  p = f;
  int x;
  x = p(1);
  printf("%d", x);
  return 0;
}
`
	if _, err := Build(lang.MustParse(src)); err == nil {
		t.Fatal("Build accepted an indirect call; want funcptr-transform error")
	}
}
