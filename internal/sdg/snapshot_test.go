package sdg

import (
	"math/rand"
	"testing"

	"specslice/internal/lang"
	"specslice/internal/workload"
)

func snapshotPrograms(t *testing.T) map[string]*lang.Program {
	t.Helper()
	progs := map[string]*lang.Program{
		"advBase": parseAdv(t, advBase),
	}
	for _, cfg := range workload.Benchmarks()[:3] {
		progs[cfg.Name] = workload.Generate(cfg)
	}
	if testing.Short() {
		return map[string]*lang.Program{"advBase": progs["advBase"]}
	}
	return progs
}

// TestSnapshotRoundTripIdentity holds DecodeSnapshot(EncodeSnapshot(g)) to
// the same structural-identity bar as Advance vs Build: identical vertex
// numbering and attributes, identical sites and procedure skeletons, an
// identical edge set, and rebuilt mod/ref state equal to the original's —
// the decoded graph must be substitutable for the built one everywhere,
// including as the ancestor of a version chain.
func TestSnapshotRoundTripIdentity(t *testing.T) {
	for name, prog := range snapshotPrograms(t) {
		t.Run(name, func(t *testing.T) {
			want := MustBuild(prog)
			data, err := EncodeSnapshot(want)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			// The decoded graph carries re-parsed statements, so statement
			// identity is positional rather than pointer-based; compare
			// everything else exactly and statements by pre-order ordinal.
			if got.NumVertices() != want.NumVertices() {
				t.Fatalf("vertices: got %d, want %d", got.NumVertices(), want.NumVertices())
			}
			wantOrd := stmtOrdinals(want.Prog)
			gotOrd := stmtOrdinals(got.Prog)
			for i := range want.Vertices {
				g, w := got.Vertices[i], want.Vertices[i]
				if g.Kind != w.Kind || g.Proc != w.Proc || g.Site != w.Site ||
					g.Param != w.Param || g.Var != w.Var || g.IsReturn != w.IsReturn || g.Label != w.Label {
					t.Fatalf("vertex %d differs:\ngot  %+v\nwant %+v", i, *g, *w)
				}
				if (g.Stmt == nil) != (w.Stmt == nil) {
					t.Fatalf("vertex %d: stmt presence differs", i)
				}
				if g.Stmt != nil && gotOrd[g.Stmt] != wantOrd[w.Stmt] {
					t.Fatalf("vertex %d: stmt ordinal %d, want %d", i, gotOrd[g.Stmt], wantOrd[w.Stmt])
				}
			}
			if len(got.Sites) != len(want.Sites) {
				t.Fatalf("sites: got %d, want %d", len(got.Sites), len(want.Sites))
			}
			for i := range want.Sites {
				g, w := got.Sites[i], want.Sites[i]
				if g.ID != w.ID || g.CallerProc != w.CallerProc || g.Callee != w.Callee ||
					g.Lib != w.Lib || g.CallVertex != w.CallVertex ||
					!idsEqual(g.ActualIns, w.ActualIns) || !idsEqual(g.ActualOuts, w.ActualOuts) {
					t.Fatalf("site %d differs:\ngot  %+v\nwant %+v", i, *g, *w)
				}
			}
			for i := range want.Procs {
				g, w := got.Procs[i], want.Procs[i]
				if g.Name != w.Name || g.Entry != w.Entry ||
					!idsEqual(g.FormalIns, w.FormalIns) || !idsEqual(g.FormalOuts, w.FormalOuts) ||
					!idsEqual(g.Vertices, w.Vertices) || len(g.Sites) != len(w.Sites) {
					t.Fatalf("proc %s differs:\ngot  %+v\nwant %+v", w.Name, *g, *w)
				}
			}
			if got.NumEdges() != want.NumEdges() {
				t.Fatalf("edges: got %d, want %d", got.NumEdges(), want.NumEdges())
			}
			for v := 0; v < want.NumVertices(); v++ {
				ge, we := got.Out(VertexID(v)), want.Out(VertexID(v))
				if len(ge) != len(we) {
					t.Fatalf("vertex %d: %d out-edges, want %d", v, len(ge), len(we))
				}
				for j := range we {
					if ge[j] != we[j] {
						t.Fatalf("vertex %d edge %d: got %+v, want %+v", v, j, ge[j], we[j])
					}
				}
			}
			if got.SummariesComputed() != want.SummariesComputed() {
				t.Fatalf("summariesDone: got %v, want %v", got.SummariesComputed(), want.SummariesComputed())
			}
			// The rebuild-marker structures must come back equal to the
			// original build's, or Advance from a decoded ancestor would
			// diverge from Advance from the live one.
			for name, sig := range want.buildSigs {
				if got.buildSigs[name] != sig {
					t.Fatalf("buildSigs[%s]: got %d, want %d", name, got.buildSigs[name], sig)
				}
			}
			for name, h := range want.procHashes {
				if got.procHashes[name] != h {
					t.Fatalf("procHashes[%s]: got %d, want %d", name, got.procHashes[name], h)
				}
			}
			if got.modref == nil {
				t.Fatal("decoded graph has no mod/ref state")
			}
		})
	}
}

func stmtOrdinals(p *lang.Program) map[lang.Stmt]int {
	ord := map[lang.Stmt]int{}
	for _, fn := range p.Funcs {
		for i, s := range fn.Stmts() {
			ord[s] = i
		}
	}
	return ord
}

func idsEqual[T VertexID | SiteID](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotSummaryFlag checks that the summary-edge mark and the edges
// behind it survive the round trip.
func TestSnapshotSummaryFlag(t *testing.T) {
	g := MustBuild(parseAdv(t, advBase))
	// Simulate the engine's post-fixpoint state with a hand-added summary
	// edge; the codec must carry both the edge and the mark.
	s := g.Sites[0]
	if len(s.ActualIns) == 0 || len(s.ActualOuts) == 0 {
		t.Skip("first site has no actuals")
	}
	g.AddEdge(s.ActualIns[0], s.ActualOuts[0], EdgeSummary)
	g.MarkSummariesComputed()
	data, err := EncodeSnapshot(g)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.SummariesComputed() {
		t.Fatal("summary mark lost")
	}
	if !got.HasEdge(s.ActualIns[0], s.ActualOuts[0], EdgeSummary) {
		t.Fatal("summary edge lost")
	}
}

// TestSnapshotAdvanceFromDecoded requires a decoded graph to be a working
// version-chain ancestor: advancing it over an edit must produce the same
// graph as advancing the original.
func TestSnapshotAdvanceFromDecoded(t *testing.T) {
	old := parseAdv(t, advBase)
	edited := parseAdv(t, advBase+`
int extra(int q) {
  return q + 41;
}
`)
	want := MustBuild(old)
	data, err := EncodeSnapshot(want)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	fromLive, _, err := Advance(want, edited)
	if err != nil {
		t.Fatalf("advance live: %v", err)
	}
	fromDisk, _, err := Advance(decoded, edited)
	if err != nil {
		t.Fatalf("advance decoded: %v", err)
	}
	graphsIdentical(t, fromDisk, fromLive)
}

// TestSnapshotDecodeHostileBytes drives the decoder over every truncation
// of a valid snapshot and thousands of seeded single-byte corruptions. The
// contract is the store's graceful-degradation invariant: an error or a
// structurally valid graph, never a panic.
func TestSnapshotDecodeHostileBytes(t *testing.T) {
	g := MustBuild(parseAdv(t, advBase))
	data, err := EncodeSnapshot(g)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded cleanly", n, len(data))
		}
	}
	rng := rand.New(rand.NewSource(7))
	flips := 4000
	if testing.Short() {
		flips = 500
	}
	for i := 0; i < flips; i++ {
		mut := append([]byte(nil), data...)
		pos := rng.Intn(len(mut))
		mut[pos] ^= byte(1 + rng.Intn(255))
		// Either outcome is fine; what matters is no panic and no
		// absurd allocation (the -race CI run would catch a crash, and
		// readCount bounds every allocation by len(data)).
		_, _ = DecodeSnapshot(mut)
	}
	junk := [][]byte{
		nil,
		[]byte("not a snapshot"),
		[]byte(snapshotMagic),
		append([]byte(snapshotMagic), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01),
	}
	for i, b := range junk {
		if _, err := DecodeSnapshot(b); err == nil {
			t.Fatalf("junk input %d decoded cleanly", i)
		}
	}
}
