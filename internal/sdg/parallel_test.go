package sdg

import (
	"testing"
)

// TestBuildWorkersByteIdentity holds the procedure-parallel build to the
// same standard the incremental oracle holds Advance: for every worker
// count, BuildWorkers must produce a graph indistinguishable from the
// sequential build — identical vertex and site numbering, attributes, and
// edge sets — because the per-procedure body buffers merge in procedure
// order regardless of completion order. Run under -race in CI, this also
// shakes out data races between body workers.
func TestBuildWorkersByteIdentity(t *testing.T) {
	srcs := map[string]string{
		"advBase": advBase,
		"globals": `
int g1; int g2;

int fib(int n) {
  if (n < 2) { return n; }
  int a = fib(n - 1);
  int b = fib(n - 2);
  g1 = g1 + 1;
  return a + b;
}

void log(int v) {
  g2 = g2 + v;
  printf("%d\n", v);
}

int main() {
  int n = 0;
  scanf("%d", &n);
  int r = fib(n);
  log(r);
  printf("%d %d\n", g1, g2);
  return 0;
}
`,
	}
	for name, src := range srcs {
		prog := parseAdv(t, src)
		want, err := BuildWorkers(prog, 1)
		if err != nil {
			t.Fatalf("%s: sequential build: %v", name, err)
		}
		for _, w := range []int{2, 4, 8} {
			got, err := BuildWorkers(prog, w)
			if err != nil {
				t.Fatalf("%s: build at %d workers: %v", name, w, err)
			}
			graphsIdentical(t, got, want)
		}
		// Build (the default entry point) must agree too.
		def, err := Build(prog)
		if err != nil {
			t.Fatalf("%s: default build: %v", name, err)
		}
		graphsIdentical(t, def, want)
	}
}
