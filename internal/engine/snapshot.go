package engine

import "specslice/internal/sdg"

// Snapshot serializes the engine's analysis state for the persistent
// store. The summary-edge fixpoint runs first so the snapshot carries the
// complete edge set; the automaton and Prestar indexes are deliberately
// not stored — they rebuild from the graph in microseconds on the first
// request and would dominate the snapshot's size.
func (e *Engine) Snapshot() ([]byte, error) {
	e.EnsureSummaryEdges()
	return sdg.EncodeSnapshot(e.g)
}

// FromSnapshot reconstructs an engine from Snapshot bytes. The decoded
// engine serves slices byte-identical to one cold-built from the
// snapshot's source, and version chains can Advance from it. Corrupt
// input returns an error, never panics.
func FromSnapshot(data []byte) (*Engine, error) {
	g, err := sdg.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	return New(g), nil
}
