package engine

import (
	"fmt"
	"reflect"
	"testing"

	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// TestParallelBuildEncodeIdentity is the serving-level form of the
// sequential-vs-parallel guarantee: a full engine built over
// sdg.BuildWorkers at 1 and at 4 workers must produce byte-identical
// analysis state — graphs with the same numbering, the same summary
// edges, and a PDS encoding with the same rule list, rule order, and
// formal-out control locations — on generated workloads including the
// recursive gzip suite. Any divergence here would leak into automata,
// caches, and emitted slices; run under -race in CI it also exercises the
// body/mod-ref worker pools.
func TestParallelBuildEncodeIdentity(t *testing.T) {
	cfgs := []workload.BenchConfig{
		workload.SmallBenchmarks()[0], // tcas
		{Name: "par-mix", Procs: 14, TargetVertices: 700, CallSites: 60, Slices: 4, Seed: 424, Recursive: true},
	}
	if !testing.Short() {
		for _, c := range workload.Benchmarks() {
			if c.Name == "gzip" {
				cfgs = append(cfgs, c)
			}
		}
	}
	for _, cfg := range cfgs {
		prog := workload.Generate(cfg)
		g1, err := sdg.BuildWorkers(prog, 1)
		if err != nil {
			t.Fatalf("%s: sequential build: %v", cfg.Name, err)
		}
		g4, err := sdg.BuildWorkers(prog, 4)
		if err != nil {
			t.Fatalf("%s: parallel build: %v", cfg.Name, err)
		}
		if err := sameGraph(g1, g4); err != nil {
			t.Fatalf("%s: graphs differ between 1 and 4 workers: %v", cfg.Name, err)
		}

		e1, e4 := New(g1), New(g4)
		enc1, enc4 := e1.Encoding(), e4.Encoding()
		if enc1.PDS.NumLocs != enc4.PDS.NumLocs {
			t.Fatalf("%s: NumLocs %d vs %d", cfg.Name, enc1.PDS.NumLocs, enc4.PDS.NumLocs)
		}
		if len(enc1.PDS.Rules) != len(enc4.PDS.Rules) {
			t.Fatalf("%s: rule count %d vs %d", cfg.Name, len(enc1.PDS.Rules), len(enc4.PDS.Rules))
		}
		for i := range enc1.PDS.Rules {
			if !reflect.DeepEqual(enc1.PDS.Rules[i], enc4.PDS.Rules[i]) {
				t.Fatalf("%s: rule %d differs: %v vs %v", cfg.Name, i, enc1.PDS.Rules[i], enc4.PDS.Rules[i])
			}
		}
		if !reflect.DeepEqual(enc1.LocOfFO, enc4.LocOfFO) {
			t.Fatalf("%s: formal-out control locations differ", cfg.Name)
		}
	}
}

// sameGraph requires identical numbering and structure, including the
// summary edges the engines computed.
func sameGraph(a, b *sdg.Graph) error {
	if a.NumVertices() != b.NumVertices() || len(a.Sites) != len(b.Sites) || len(a.Procs) != len(b.Procs) {
		return fmt.Errorf("element counts differ")
	}
	for i := range a.Vertices {
		va, vb := a.Vertices[i], b.Vertices[i]
		if va.Kind != vb.Kind || va.Proc != vb.Proc || va.Site != vb.Site ||
			va.Param != vb.Param || va.Var != vb.Var || va.IsReturn != vb.IsReturn || va.Label != vb.Label {
			return fmt.Errorf("vertex %d differs: %+v vs %+v", i, *va, *vb)
		}
	}
	for i := range a.Sites {
		sa, sb := a.Sites[i], b.Sites[i]
		if sa.Callee != sb.Callee || sa.Lib != sb.Lib || sa.CallerProc != sb.CallerProc ||
			sa.CallVertex != sb.CallVertex ||
			!reflect.DeepEqual(sa.ActualIns, sb.ActualIns) || !reflect.DeepEqual(sa.ActualOuts, sb.ActualOuts) {
			return fmt.Errorf("site %d differs", i)
		}
	}
	for i := range a.Procs {
		pa, pb := a.Procs[i], b.Procs[i]
		if pa.Name != pb.Name || pa.Entry != pb.Entry ||
			!reflect.DeepEqual(pa.FormalIns, pb.FormalIns) || !reflect.DeepEqual(pa.FormalOuts, pb.FormalOuts) ||
			!reflect.DeepEqual(pa.Vertices, pb.Vertices) || !reflect.DeepEqual(pa.Sites, pb.Sites) {
			return fmt.Errorf("proc %d (%s) differs", i, pa.Name)
		}
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		return fmt.Errorf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	seen := make(map[sdg.Edge]bool, len(ea))
	for _, e := range ea {
		seen[e] = true
	}
	for _, e := range eb {
		if !seen[e] {
			return fmt.Errorf("edge %+v only in parallel build", e)
		}
	}
	return nil
}
