package engine

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"specslice/internal/core"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

func buildEngine(t *testing.T, src string) *Engine {
	t.Helper()
	g, err := sdg.Build(lang.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return New(g)
}

func printfSpec(t *testing.T, g *sdg.Graph, proc string) core.CriterionSpec {
	t.Helper()
	vs := core.PrintfCriterion(g, proc)
	if len(vs) == 0 {
		t.Fatalf("no printf criterion in %q", proc)
	}
	var cfgs core.Configs
	for _, v := range vs {
		cfgs = append(cfgs, core.Config{Vertex: v})
	}
	return cfgs
}

func TestFootprintAccounting(t *testing.T) {
	small := buildEngine(t, workload.Fig1Source)
	f1 := small.Footprint()
	if f1 <= 0 {
		t.Fatalf("footprint = %d, want > 0", f1)
	}
	if f2 := small.Footprint(); f2 != f1 {
		t.Errorf("footprint not stable: %d then %d", f1, f2)
	}

	big := buildEngine(t, workload.GenerateSource(workload.BenchConfig{
		Name: "fp", Procs: 12, TargetVertices: 600, CallSites: 40, Slices: 4, Seed: 7,
	}))
	fb := big.Footprint()
	if fb <= f1 {
		t.Errorf("bigger program has footprint %d <= small %d", fb, f1)
	}
	// The estimate must at least cover the raw graph payload it claims to
	// account (sanity floor: one pointer per vertex and edge).
	g := big.Graph()
	if fb < int64(g.NumVertices()+g.NumEdges())*8 {
		t.Errorf("footprint %d implausibly small for %d vertices / %d edges",
			fb, g.NumVertices(), g.NumEdges())
	}
}

// TestFootprintConcurrent checks Footprint is safe alongside slicing (it
// warms the same sync.Once caches). Run under -race.
func TestFootprintConcurrent(t *testing.T) {
	eng := buildEngine(t, workload.Fig16Source)
	spec := printfSpec(t, eng.Graph(), "main")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if eng.Footprint() <= 0 {
				t.Error("footprint <= 0")
			}
			if _, err := eng.Specialize(spec); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}

func TestSliceAllErrorPaths(t *testing.T) {
	eng := buildEngine(t, workload.Fig16Source)
	g := eng.Graph()
	preset := errors.New("criterion resolution failed upstream")
	reqs := []Request{
		{Label: "ok-poly", Mode: ModePoly, Spec: printfSpec(t, g, "main")},
		{Label: "upstream", Err: preset},
		{Label: "no-spec", Mode: ModePoly},
		{Label: "bad-mode", Mode: Mode(42)},
		{Label: "ok-mono", Mode: ModeMono, Vertices: core.PrintfCriterion(g, "main")},
	}
	resps, stats := eng.SliceAll(reqs, BatchOptions{Workers: 4})
	if len(resps) != len(reqs) {
		t.Fatalf("got %d responses, want %d", len(resps), len(reqs))
	}
	for i, r := range resps {
		if r.Index != i || r.Label != reqs[i].Label {
			t.Errorf("response %d out of order: %+v", i, r)
		}
	}
	if resps[0].Err != nil || resps[0].Poly == nil {
		t.Errorf("ok-poly: %+v", resps[0])
	}
	if !errors.Is(resps[1].Err, preset) {
		t.Errorf("upstream error not forwarded: %v", resps[1].Err)
	}
	if resps[2].Err == nil || !strings.Contains(resps[2].Err.Error(), "no criterion spec") {
		t.Errorf("no-spec: %v", resps[2].Err)
	}
	if resps[3].Err == nil || !strings.Contains(resps[3].Err.Error(), "unknown mode") {
		t.Errorf("bad-mode: %v", resps[3].Err)
	}
	if resps[4].Err != nil || resps[4].Mono == nil {
		t.Errorf("ok-mono: %+v", resps[4])
	}
	if stats.Requests != 5 || stats.Failed != 3 {
		t.Errorf("stats = %+v, want 5 requests / 3 failed", stats)
	}
	if stats.Phases.Total <= 0 {
		t.Errorf("phases not aggregated from the poly request: %+v", stats.Phases)
	}
}

func TestSliceAllEmptyAndOversizedPool(t *testing.T) {
	eng := buildEngine(t, workload.Fig1Source)
	if resps, stats := eng.SliceAll(nil, BatchOptions{}); resps != nil || stats.Requests != 0 {
		t.Errorf("empty batch: %v %+v", resps, stats)
	}
	// More workers than requests must clamp, not deadlock.
	reqs := []Request{{Label: "one", Mode: ModePoly, Spec: printfSpec(t, eng.Graph(), "main")}}
	resps, stats := eng.SliceAll(reqs, BatchOptions{Workers: 64})
	if resps[0].Err != nil || stats.Workers != 1 {
		t.Errorf("oversized pool: err=%v workers=%d", resps[0].Err, stats.Workers)
	}
}

// TestSliceAllConcurrentCallers hammers one engine with whole batches from
// many goroutines (the serving pattern: each HTTP request is a SliceAll).
// Run under -race.
func TestSliceAllConcurrentCallers(t *testing.T) {
	eng := buildEngine(t, workload.Fig16Source)
	g := eng.Graph()
	spec := printfSpec(t, g, "main")
	verts := core.PrintfCriterion(g, "main")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reqs := []Request{
				{Label: "poly", Mode: ModePoly, Spec: spec},
				{Label: "mono", Mode: ModeMono, Vertices: verts},
				{Label: "weiser", Mode: ModeWeiser, Vertices: verts},
				{Label: "broken", Mode: ModePoly}, // no spec
			}
			resps, stats := eng.SliceAll(reqs, BatchOptions{Workers: 1 + i%4})
			if stats.Failed != 1 {
				t.Errorf("caller %d: failed = %d, want 1", i, stats.Failed)
			}
			for j := 0; j < 3; j++ {
				if resps[j].Err != nil {
					t.Errorf("caller %d req %d: %v", i, j, resps[j].Err)
				}
			}
		}(i)
	}
	wg.Wait()
}
