// Package engine turns the one-shot slicing pipeline into a reusable,
// concurrency-safe service over a single program: the SDG encoding (PDS
// rules + Prestar indexes), the reachable-configuration automaton, and the
// HRB summary edges are each computed once and cached, after which any
// number of goroutines may issue slice requests — polyvariant, monovariant,
// Weiser, feature removal, or closure — against the shared state. SliceAll
// fans a batch of criteria out across a worker pool and reports per-request
// results plus aggregate timings.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"specslice/internal/core"
	"specslice/internal/feature"
	"specslice/internal/lang"
	"specslice/internal/mono"
	"specslice/internal/sdg"
	"specslice/internal/slice"
)

// Engine caches the per-program analysis state shared by all slice
// requests. Create one with New and reuse it for every query against the
// same SDG; all methods are safe for concurrent use.
type Engine struct {
	g *sdg.Graph

	encOnce sync.Once
	enc     *core.Encoding

	sumOnce sync.Once
	// partialSummary marks an engine created by Advance over a graph whose
	// summary edges were partially inherited: EnsureSummaryEdges then runs
	// the seeded fixpoint over dirtyProcs instead of the full computation.
	partialSummary bool
	dirtyProcs     []int
}

// New returns an engine serving slice requests against g. The graph must
// not be mutated externally afterwards.
func New(g *sdg.Graph) *Engine { return &Engine{g: g} }

// Advance returns a new engine for newProg that reuses every untouched
// part of e's analysis state: procedure dependence graphs of unchanged
// procedures are copied instead of recomputed (sdg.Advance), and summary
// edges of call sites whose callee subtree is unchanged are inherited, so
// only the edit's dirty region pays the summary fixpoint. The advanced
// engine is indistinguishable from one built from scratch on newProg —
// the incremental equivalence oracle holds poly and mono slices to
// byte-identical outputs. e itself is untouched and keeps serving its own
// program version; Advance may run while other goroutines slice through e.
func (e *Engine) Advance(newProg *lang.Program) (*Engine, *sdg.DeltaStats, error) {
	// Freeze e's graph (the summary fixpoint is its only mutation) before
	// reading it, exactly like every slice request does.
	e.EnsureSummaryEdges()
	g2, delta, err := sdg.Advance(e.g, newProg)
	if err != nil {
		return nil, nil, err
	}
	ne := &Engine{g: g2}
	if delta.SummarySeeded {
		ne.partialSummary = true
		ne.dirtyProcs = delta.DirtyProcs
	}
	return ne, delta, nil
}

// Graph returns the underlying SDG.
func (e *Engine) Graph() *sdg.Graph { return e.g }

// BuildStats reports the phase timings and worker-pool width of the cold
// build that produced the engine's graph (zero for advanced engines,
// whose graphs were not built from scratch).
func (e *Engine) BuildStats() sdg.BuildStats { return e.g.BuildStats() }

// Encoding returns the cached PDS encoding, building it on first use. The
// summary-edge fixpoint runs first: it is the only graph mutation, so
// sequencing every encoding (and hence every slice request) behind it
// freezes the graph before any reader touches it.
func (e *Engine) Encoding() *core.Encoding {
	e.EnsureSummaryEdges()
	e.encOnce.Do(func() { e.enc = core.Encode(e.g) })
	return e.enc
}

// Warm eagerly builds every cache (summary edges, encoding, reachable
// configurations) so that subsequent requests pay only per-query costs.
func (e *Engine) Warm() error {
	_, err := e.Encoding().Reachable()
	return err
}

// EnsureSummaryEdges computes the graph's HRB summary edges exactly once —
// the engine's only graph mutation. Every request path joins this
// sync.Once before reading the graph, which is what makes the shared
// engine safe for concurrent use.
func (e *Engine) EnsureSummaryEdges() {
	e.sumOnce.Do(func() {
		if e.partialSummary {
			slice.ComputeSummaryEdgesPartial(e.g, e.dirtyProcs)
		} else {
			slice.ComputeSummaryEdges(e.g)
		}
	})
}

// Specialize runs the polyvariant specialization slicer (paper Alg. 1)
// against the cached encoding.
func (e *Engine) Specialize(spec core.CriterionSpec) (*core.Result, error) {
	return core.SpecializeWithEncoding(e.Encoding(), spec)
}

// ClosureSlice computes the PDS-based stack-configuration closure slice.
func (e *Engine) ClosureSlice(spec core.CriterionSpec) (map[sdg.VertexID]bool, error) {
	_, elems, err := core.ClosureSliceWithEncoding(e.Encoding(), spec)
	return elems, err
}

// Backward computes the HRB two-phase backward closure slice.
func (e *Engine) Backward(criterion []sdg.VertexID) slice.VSet {
	e.EnsureSummaryEdges()
	return slice.Backward(e.g, criterion)
}

// Binkley computes the monovariant executable slice baseline.
func (e *Engine) Binkley(criterion []sdg.VertexID) *mono.Result {
	e.EnsureSummaryEdges()
	return mono.Binkley(e.g, criterion)
}

// Weiser computes the Weiser-style executable slice baseline.
func (e *Engine) Weiser(criterion []sdg.VertexID) *mono.Result {
	e.EnsureSummaryEdges()
	return mono.Weiser(e.g, criterion)
}

// RemoveFeature computes the paper's §7 feature removal.
func (e *Engine) RemoveFeature(criterion []sdg.VertexID) (*core.Result, error) {
	return feature.RemoveWithEncoding(e.g, e.Encoding(), criterion)
}

// Footprint estimates, in bytes, the heap retained by the engine's cached
// analysis state: the SDG itself, the PDS encoding with its Prestar rule
// indexes, and the reachable-configuration automaton. The caches are built
// first (Warm) so the estimate is stable; a program whose warm fails (e.g.
// no reachable configurations) is still accounted for its graph and
// encoding. The per-element constants are deliberately coarse — the number
// exists so content-addressed engine caches can evict by an additive byte
// budget, not for profiling.
func (e *Engine) Footprint() int64 {
	_ = e.Warm()
	const (
		vertexBytes = 176 // *Vertex + struct + out/in adjacency headers
		edgeBytes   = 72  // out copy + in copy + dedup-set key
		siteBytes   = 176 // *Site + struct
		procBytes   = 176 // *Proc + struct
		idBytes     = 8   // one VertexID/SiteID slot in a slice
		ruleBytes   = 152 // Rule + its copy in a Prestar index bucket
		locBytes    = 96  // LocOfFO entry + per-location bookkeeping
		stateBytes  = 48  // out slice header + bitset slots
		transBytes  = 56  // out entry + dedup index entry
	)
	g := e.g
	n := int64(g.NumVertices())*vertexBytes + int64(g.NumEdges())*edgeBytes
	for _, s := range g.Sites {
		n += siteBytes + int64(len(s.ActualIns)+len(s.ActualOuts))*idBytes
	}
	for _, p := range g.Procs {
		n += procBytes + int64(len(p.Vertices)+len(p.FormalIns)+len(p.FormalOuts)+len(p.Sites))*idBytes
	}
	enc := e.Encoding()
	n += int64(len(enc.PDS.Rules))*ruleBytes + int64(len(enc.LocOfFO))*locBytes
	if reach, err := enc.Reachable(); err == nil {
		n += int64(reach.NumStates())*stateBytes + int64(reach.NumTransitions())*transBytes
	}
	// Interned Prestar scratch survives between batches (pooled arenas
	// keep their buckets), so it is part of what a byte-budgeted cache
	// retains by holding this engine. Freshly built engines have not run
	// a query yet, so charge at least the one-arena steady-state
	// provision — otherwise the LRU charges engines before their scratch
	// exists and under-evicts once traffic warms them.
	n += max(enc.ScratchBytes(), enc.ScratchProvision())
	return n
}

// Mode selects the slicer a batch request runs.
type Mode int

const (
	ModePoly Mode = iota
	ModeMono
	ModeWeiser
	ModeFeature
)

var modeNames = [...]string{"poly", "mono", "weiser", "feature"}

func (m Mode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Request is one criterion in a batch.
type Request struct {
	// Label identifies the request in results (free-form).
	Label string
	Mode  Mode
	// Spec drives ModePoly requests.
	Spec core.CriterionSpec
	// Vertices drives ModeMono/ModeWeiser/ModeFeature requests.
	Vertices []sdg.VertexID
	// Err, when non-nil, short-circuits the request: criterion resolution
	// failed upstream and the error is reported in the matching Response.
	Err error
}

// Response is the outcome of one batch request.
type Response struct {
	Index    int
	Label    string
	Mode     Mode
	Poly     *core.Result // ModePoly and ModeFeature results
	Mono     *mono.Result // ModeMono and ModeWeiser results
	Err      error
	Duration time.Duration
}

// BatchOptions configures SliceAll.
type BatchOptions struct {
	// Workers is the worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
}

// BatchStats aggregates a SliceAll run.
type BatchStats struct {
	Requests int
	Failed   int
	Workers  int
	// Wall is the end-to-end batch time; Work is the sum of per-request
	// durations (Work/Wall ≈ achieved parallelism).
	Wall time.Duration
	Work time.Duration
	// Phases sums the polyvariant requests' per-phase timings (the paper's
	// Fig. 21 breakdown: Prestar, AutomatonOps with its determinize and
	// minimize sub-phases, Readout) across the batch.
	Phases core.Timings
}

// SliceAll serves every request, fanning them out across a worker pool, and
// returns responses in request order plus aggregate timings. Individual
// request failures land in their Response; the batch always completes.
func (e *Engine) SliceAll(reqs []Request, opts BatchOptions) ([]Response, BatchStats) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	stats := BatchStats{Requests: len(reqs), Workers: workers}
	if len(reqs) == 0 {
		return nil, stats
	}

	// Pay the shared setup (summary edges, then encoding) once, outside
	// the pool, so worker timings are pure per-request cost.
	e.Encoding()

	t0 := time.Now()
	out := make([]Response, len(reqs))
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.serve(i, reqs[i])
			}
		}()
	}
	for i := range reqs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	stats.Wall = time.Since(t0)
	for _, r := range out {
		stats.Work += r.Duration
		if r.Err != nil {
			stats.Failed++
		}
		if r.Poly != nil {
			stats.Phases.Add(r.Poly.Timings)
		}
	}
	return out, stats
}

func (e *Engine) serve(i int, req Request) (resp Response) {
	resp = Response{Index: i, Label: req.Label, Mode: req.Mode}
	t0 := time.Now()
	defer func() { resp.Duration = time.Since(t0) }()
	if req.Err != nil {
		resp.Err = req.Err
		return resp
	}
	switch req.Mode {
	case ModePoly:
		if req.Spec == nil {
			resp.Err = fmt.Errorf("engine: poly request %d has no criterion spec", i)
			return resp
		}
		resp.Poly, resp.Err = e.Specialize(req.Spec)
	case ModeMono:
		resp.Mono = e.Binkley(req.Vertices)
	case ModeWeiser:
		resp.Mono = e.Weiser(req.Vertices)
	case ModeFeature:
		resp.Poly, resp.Err = e.RemoveFeature(req.Vertices)
	default:
		resp.Err = fmt.Errorf("engine: unknown mode %v", req.Mode)
	}
	return resp
}
