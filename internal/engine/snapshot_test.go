package engine

import (
	"math/rand"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// TestSnapshotServesIdenticalSlices is the codec's end-to-end soundness
// gate (the store's recovery property leans on it): an engine restored
// from a snapshot must be indistinguishable from the cold-built original
// on 100+ random criteria — byte-identical polyvariant and monovariant
// slices, or the identical error.
func TestSnapshotServesIdenticalSlices(t *testing.T) {
	cfg := workload.Benchmarks()[0] // tcas-shaped suite
	prog := workload.Generate(cfg)
	cold := New(sdg.MustBuild(prog))
	data, err := cold.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	warm, err := FromSnapshot(data)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := warm.Warm(); err != nil {
		t.Fatalf("warm restored engine: %v", err)
	}

	n := cold.Graph().NumVertices()
	rng := rand.New(rand.NewSource(42))
	criteria := 120
	if testing.Short() {
		criteria = 25
	}
	for i := 0; i < criteria; i++ {
		v := sdg.VertexID(rng.Intn(n))
		spec := core.Configs{{Vertex: v}}

		wantRes, wantErr := cold.Specialize(spec)
		gotRes, gotErr := warm.Specialize(spec)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("criterion %v: poly error mismatch: cold=%v disk=%v", v, wantErr, gotErr)
		}
		if wantErr == nil {
			compareEmit(t, "poly", v, cold, warm, wantRes.Variants(), gotRes.Variants())
			wantRes.Release()
			gotRes.Release()
		}

		wantMono := cold.Binkley([]sdg.VertexID{v})
		gotMono := warm.Binkley([]sdg.VertexID{v})
		compareEmit(t, "mono", v, cold, warm, wantMono.Variants(), gotMono.Variants())
	}

	// A snapshot taken after the fixpoint marks its summaries complete;
	// restoring must not re-run the fixpoint (the mark round-trips).
	if !warm.Graph().SummariesComputed() {
		t.Fatal("restored graph lost the summary-edge mark")
	}
}

// compareEmit renders both engines' variants and requires the identical
// outcome — the same source bytes, or the same emit error (e.g. "no main
// variant" when the criterion's slice excludes main on both sides).
func compareEmit(t *testing.T, mode string, v sdg.VertexID, cold, warm *Engine, wantVars, gotVars []core.ProcVariant) {
	t.Helper()
	wantSrc, err1 := emit.Source(cold.Graph(), wantVars)
	gotSrc, err2 := emit.Source(warm.Graph(), gotVars)
	// Error text may embed source positions, which legitimately differ: the
	// restored engine's program is re-parsed from normalized source. Only
	// the outcome must match.
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("criterion %v: %s emit outcome differs: cold=%v disk=%v", v, mode, err1, err2)
	}
	if wantSrc != gotSrc {
		t.Fatalf("criterion %v: %s slice differs:\ncold:\n%s\ndisk:\n%s", v, mode, wantSrc, gotSrc)
	}
}

// TestSnapshotOfAdvancedEngine covers the version-chain path the store's
// write-behind uses: an engine produced by Advance must snapshot and
// restore like a cold-built one.
func TestSnapshotOfAdvancedEngine(t *testing.T) {
	base := buildEngine(t, workload.Fig16Source)
	ed := workload.NewEditor(base.Graph().Prog, 9)
	ed.Step()
	edited := ed.Program()
	adv, _, err := base.Advance(edited)
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	data, err := adv.Snapshot()
	if err != nil {
		t.Fatalf("snapshot advanced engine: %v", err)
	}
	restored, err := FromSnapshot(data)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	wantRes, err := adv.Specialize(printfSpec(t, adv.Graph(), "main"))
	if err != nil {
		t.Fatalf("specialize advanced: %v", err)
	}
	gotRes, err := restored.Specialize(printfSpec(t, restored.Graph(), "main"))
	if err != nil {
		t.Fatalf("specialize restored: %v", err)
	}
	wantSrc, _ := emit.Source(adv.Graph(), wantRes.Variants())
	gotSrc, _ := emit.Source(restored.Graph(), gotRes.Variants())
	if wantSrc != gotSrc {
		t.Fatalf("restored advanced engine slices differ:\nlive:\n%s\ndisk:\n%s", wantSrc, gotSrc)
	}
}
