package engine

import (
	"strings"
	"sync"
	"testing"

	"specslice/internal/emit"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// polySource slices eng at the printf criterion in main and emits source.
func polySource(t *testing.T, eng *Engine) string {
	t.Helper()
	res, err := eng.Specialize(printfSpec(t, eng.Graph(), "main"))
	if err != nil {
		t.Fatalf("specialize: %v", err)
	}
	src, err := emit.Source(eng.Graph(), res.Variants())
	if err != nil {
		t.Fatalf("emit: %v", err)
	}
	return src
}

// summarySet collects a graph's summary edges keyed by structural identity
// (caller name, site index within the caller, actual labels), so two
// independently built graphs can be compared.
func summarySet(g *sdg.Graph) map[string]bool {
	out := map[string]bool{}
	for _, e := range g.Edges() {
		if e.Kind != sdg.EdgeSummary {
			continue
		}
		from, to := g.Vertices[e.From], g.Vertices[e.To]
		out[g.Procs[from.Proc].Name+"|"+from.Label+"|"+to.Label+"|"+g.Sites[from.Site].Callee] = true
	}
	return out
}

func TestAdvancePartialSummaryMatchesFull(t *testing.T) {
	base := workload.GenerateSource(workload.BenchConfig{
		Name: "adv", Procs: 10, TargetVertices: 400, CallSites: 30, Slices: 6, Seed: 31,
	})
	old := buildEngine(t, base)
	if err := old.Warm(); err != nil {
		t.Fatalf("warm: %v", err)
	}

	// Edit one procedure's body (p7 exists in every generated program of
	// this size); the dirty region is p7 plus its transitive callers.
	edited := strings.Replace(base, "int acc = a0 + a1;", "int acc = a0 + a1 + 3;", 1)
	if edited == base {
		t.Fatal("edit did not apply; generator output changed shape")
	}
	adv, delta, err := old.Advance(lang.MustParse(edited))
	if err != nil {
		t.Fatalf("advance: %v", err)
	}
	if !delta.SummarySeeded {
		t.Fatalf("summary fixpoint not seeded: %+v", *delta)
	}
	if delta.ProcsReused == 0 {
		t.Fatalf("nothing reused: %+v", *delta)
	}
	adv.EnsureSummaryEdges()

	scratch := buildEngine(t, edited)
	scratch.EnsureSummaryEdges()
	gotSum, wantSum := summarySet(adv.Graph()), summarySet(scratch.Graph())
	for k := range wantSum {
		if !gotSum[k] {
			t.Errorf("advanced graph missing summary edge %s", k)
		}
	}
	for k := range gotSum {
		if !wantSum[k] {
			t.Errorf("advanced graph has extra summary edge %s", k)
		}
	}
	if got, want := polySource(t, adv), polySource(t, scratch); got != want {
		t.Errorf("advanced slice differs from scratch slice:\n--- advanced\n%s\n--- scratch\n%s", got, want)
	}
}

func TestAdvanceChainAcrossEdits(t *testing.T) {
	// Advance repeatedly (the version-chain pattern the server uses) and
	// check every link against a from-scratch engine.
	src := workload.Fig16Source
	cur := buildEngine(t, src)
	edits := []func(string) string{
		func(s string) string { return strings.Replace(s, "printf", "printf", 1) }, // no-op
		func(s string) string {
			return strings.Replace(s, "int main() {", "int main() {\n  int drift = 1;\n  drift = drift + 1;", 1)
		},
		func(s string) string {
			return strings.Replace(s, "int main() {", "int helper9(int z) {\n  return z + 9;\n}\n\nint main() {", 1)
		},
	}
	for i, edit := range edits {
		src = edit(src)
		prog := lang.MustParse(src)
		next, _, err := cur.Advance(prog)
		if err != nil {
			t.Fatalf("edit %d: advance: %v", i, err)
		}
		scratch := buildEngine(t, src)
		if got, want := polySource(t, next), polySource(t, scratch); got != want {
			t.Fatalf("edit %d: advanced slice differs from scratch:\n--- advanced\n%s\n--- scratch\n%s", i, got, want)
		}
		cur = next
	}
}

// TestFootprintIncludesPrestarScratch pins the byte-budget fix: the
// engine's footprint must cover the Prestar saturation scratch retained
// between batches, charging the one-arena provision before any query has
// run so a byte-budgeted LRU cannot under-evict warm engines.
func TestFootprintIncludesPrestarScratch(t *testing.T) {
	eng := buildEngine(t, workload.Fig16Source)
	enc := eng.Encoding()
	if sb := enc.ScratchBytes(); sb != 0 {
		t.Fatalf("scratch bytes before any query = %d, want 0", sb)
	}
	prov := enc.ScratchProvision()
	if prov <= 0 {
		t.Fatalf("scratch provision = %d, want > 0", prov)
	}
	f0 := eng.Footprint()

	if _, err := eng.Specialize(printfSpec(t, eng.Graph(), "main")); err != nil {
		t.Fatal(err)
	}
	sb := enc.ScratchBytes()
	if sb <= 0 {
		t.Fatal("no Prestar scratch accounted after a query — the pooled arena is invisible to Footprint")
	}
	f1 := eng.Footprint()
	if f1 < f0 {
		t.Errorf("footprint shrank after a query: %d -> %d", f0, f1)
	}
	if want := max(sb, prov) - prov; f1-f0 != want {
		t.Errorf("footprint delta = %d, want %d (scratch %d, provision %d)", f1-f0, want, sb, prov)
	}
}

// TestAdvanceWhileServing advances an engine while other goroutines slice
// through it — the server's hot pattern. Run under -race.
func TestAdvanceWhileServing(t *testing.T) {
	base := workload.Fig16Source
	eng := buildEngine(t, base)
	edited := strings.Replace(base, "int main() {", "int main() {\n  int extra = 2;\n  extra = extra * 3;", 1)
	prog := lang.MustParse(edited)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := eng.Specialize(printfSpec(t, eng.Graph(), "main")); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			next, _, err := eng.Advance(prog)
			if err != nil {
				t.Error(err)
				return
			}
			if err := next.Warm(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
