package dataflow

// This file holds the reference mod/ref solver used as a differential
// oracle for the dense bitset implementation in modref.go. It is the old
// map-of-StringSet solver, relocated here when the production path moved
// to interned IDs and word-wise propagation — with one deliberate
// change: instead of scheduling SCCs of the call-graph condensation, it
// iterates the summary equations over the whole program round-robin
// until nothing changes. The fixpoints are unique, so the schedule
// cannot matter, and using a different one keeps the oracle independent
// of the production solver's traversal machinery.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"specslice/internal/cfg"
	"specslice/internal/lang"
)

// refModRef holds the oracle's per-procedure summaries.
type refModRef struct {
	gmod, gref, mustmod, ueref map[string]StringSet
}

type refSolver struct {
	prog         *lang.Program
	globals      StringSet
	addressTaken []string
	graphs       map[string]*cfg.Graph
	r            *refModRef
}

func refComputeModRef(prog *lang.Program) *refModRef {
	s := &refSolver{
		prog:         prog,
		globals:      StringSet{},
		addressTaken: addressTakenFuncs(prog),
		graphs:       map[string]*cfg.Graph{},
		r: &refModRef{
			gmod:    map[string]StringSet{},
			gref:    map[string]StringSet{},
			mustmod: map[string]StringSet{},
			ueref:   map[string]StringSet{},
		},
	}
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			s.globals[g.Name] = true
		}
	}
	for _, fn := range prog.Funcs {
		s.graphs[fn.Name] = cfg.Build(fn)
		s.r.gmod[fn.Name] = StringSet{}
		s.r.gref[fn.Name] = StringSet{}
		s.r.mustmod[fn.Name] = s.globals.Clone() // top; shrinks to greatest fixpoint
		s.r.ueref[fn.Name] = StringSet{}
	}

	// GMOD/GREF: least fixpoint, growing.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			gm, gr := s.r.gmod[fn.Name], s.r.gref[fn.Name]
			before := len(gm) + len(gr)
			for _, st := range fn.Stmts() {
				s.addStmtModRef(st, gm, gr)
			}
			if len(gm)+len(gr) != before {
				changed = true
			}
		}
	}

	// MustMod: greatest fixpoint, shrinking.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			outs := s.mustDefOuts(fn.Name)
			got := outs[s.graphs[fn.Name].Exit.ID]
			if !got.Equal(s.r.mustmod[fn.Name]) {
				s.r.mustmod[fn.Name] = got
				changed = true
			}
		}
	}

	// UEREF: least fixpoint over the final must-assigned solution.
	mustOuts := map[string][]StringSet{}
	for _, fn := range prog.Funcs {
		mustOuts[fn.Name] = s.mustDefOuts(fn.Name)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			g := s.graphs[fn.Name]
			outs := mustOuts[fn.Name]
			ue := s.r.ueref[fn.Name]
			before := len(ue)
			for ni, node := range g.Nodes {
				uses := s.nodeGlobalUses(node)
				if len(uses) == 0 {
					continue
				}
				in := s.mustDefIn(g, outs, ni)
				for v := range uses {
					if !in[v] {
						ue[v] = true
					}
				}
			}
			if len(ue) != before {
				changed = true
			}
		}
	}
	return s.r
}

func (s *refSolver) calleesOf(c *lang.CallStmt) []string {
	if !c.Indirect {
		return []string{c.Callee}
	}
	return s.addressTaken
}

func (s *refSolver) addStmtModRef(st lang.Stmt, gm, gr StringSet) {
	refExpr := func(e lang.Expr) {
		for _, v := range lang.ExprVars(e) {
			if s.globals[v] {
				gr[v] = true
			}
		}
	}
	switch x := st.(type) {
	case *lang.DeclStmt:
		refExpr(x.Init)
	case *lang.AssignStmt:
		refExpr(x.RHS)
		if s.globals[x.LHS] {
			gm[x.LHS] = true
		}
	case *lang.IfStmt:
		refExpr(x.Cond)
	case *lang.WhileStmt:
		refExpr(x.Cond)
	case *lang.ReturnStmt:
		refExpr(x.Value)
	case *lang.PrintfStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
	case *lang.ScanfStmt:
		if s.globals[x.Var] {
			gm[x.Var] = true
		}
	case *lang.CallStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
		if s.globals[x.Target] {
			gm[x.Target] = true
		}
		for _, callee := range s.calleesOf(x) {
			for g := range s.r.gmod[callee] {
				gm[g] = true
			}
			for g := range s.r.gref[callee] {
				gr[g] = true
			}
		}
	}
}

// nodeGlobalUses returns the globals referenced by the node: direct
// variable references in its expressions, plus the callee's
// upward-exposed globals for call nodes.
func (s *refSolver) nodeGlobalUses(node *cfg.Node) StringSet {
	uses := StringSet{}
	if node.Stmt == nil {
		return uses
	}
	for _, e := range lang.StmtExprs(node.Stmt) {
		for _, v := range lang.ExprVars(e) {
			if s.globals[v] {
				uses[v] = true
			}
		}
	}
	if c, ok := node.Stmt.(*lang.CallStmt); ok {
		for _, callee := range s.calleesOf(c) {
			for g := range s.r.ueref[callee] {
				uses[g] = true
			}
		}
	}
	return uses
}

// mustDefIn is the meet over a node's executable predecessors.
func (s *refSolver) mustDefIn(g *cfg.Graph, outs []StringSet, i int) StringSet {
	if g.Nodes[i].Kind == cfg.KindEntry {
		return StringSet{}
	}
	var in StringSet
	first := true
	for _, e := range g.Preds[i] {
		if e.Pseudo {
			continue
		}
		if first {
			in = outs[e.To].Clone()
			first = false
		} else {
			in = refIntersect(in, outs[e.To])
		}
	}
	if first {
		return s.globals.Clone() // unreachable
	}
	return in
}

// mustDefOuts runs the intraprocedural forward must-assigned analysis
// for fn using the current MustMod summaries for callees.
func (s *refSolver) mustDefOuts(fn string) []StringSet {
	g := s.graphs[fn]
	n := len(g.Nodes)
	out := make([]StringSet, n)
	for ni := range out {
		out[ni] = s.globals.Clone()
	}
	out[g.Entry.ID] = StringSet{}

	gen := func(node *cfg.Node) StringSet {
		gs := StringSet{}
		if node.Stmt == nil {
			return gs
		}
		switch x := node.Stmt.(type) {
		case *lang.AssignStmt:
			if s.globals[x.LHS] {
				gs[x.LHS] = true
			}
		case *lang.ScanfStmt:
			if s.globals[x.Var] {
				gs[x.Var] = true
			}
		case *lang.CallStmt:
			if s.globals[x.Target] {
				gs[x.Target] = true
			}
			callees := s.calleesOf(x)
			if len(callees) > 0 {
				meet := s.r.mustmod[callees[0]].Clone()
				for _, c := range callees[1:] {
					meet = refIntersect(meet, s.r.mustmod[c])
				}
				for v := range meet {
					gs[v] = true
				}
			}
		}
		return gs
	}

	for changed := true; changed; {
		changed = false
		for ni := 0; ni < n; ni++ {
			node := g.Nodes[ni]
			if node.Kind == cfg.KindEntry {
				continue
			}
			in := s.mustDefIn(g, out, ni)
			for v := range gen(node) {
				in[v] = true
			}
			if !in.Equal(out[ni]) {
				out[ni] = in
				changed = true
			}
		}
	}
	return out
}

func refIntersect(a, b StringSet) StringSet {
	out := StringSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// --- random program generator -----------------------------------------

// refProgGen emits a deterministic random MicroC program: global
// declarations plus one source string per function, so tests can splice
// in an edited body for the incremental path. Call targets are drawn
// uniformly over all function indexes, so self-recursion and mutual
// recursion (cycles through later-indexed functions) arise constantly;
// a fnptr global with address-taken functions and indirect calls shows
// up in a fraction of programs.
type refProgGen struct {
	rng      *rand.Rand
	nGlobals int
	nFuncs   int
	fnptr    bool
	stmts    int // per-body statement budget
}

func newRefProgGen(seed int64, large bool) *refProgGen {
	rng := rand.New(rand.NewSource(seed))
	g := &refProgGen{
		rng:      rng,
		nGlobals: 2 + rng.Intn(6),
		nFuncs:   2 + rng.Intn(8),
		fnptr:    rng.Intn(5) == 0,
		stmts:    4 + rng.Intn(10),
	}
	if large {
		// Past the solver's parMinStmts inline threshold, so the
		// worker sweep exercises the parallel chunked path for real.
		g.nFuncs = 28 + rng.Intn(8)
		g.stmts = 40 + rng.Intn(12)
		g.nGlobals = 6 + rng.Intn(6)
	}
	return g
}

func (g *refProgGen) global() string { return fmt.Sprintf("g%d", g.rng.Intn(g.nGlobals)) }

func (g *refProgGen) expr(depth int) string {
	if depth > 0 && g.rng.Intn(3) == 0 {
		ops := []string{"+", "-", "*", "<"}
		return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.rng.Intn(len(ops))], g.expr(depth-1))
	}
	switch g.rng.Intn(4) {
	case 0:
		return g.global()
	case 1:
		return "a"
	case 2:
		return "x"
	default:
		return fmt.Sprintf("%d", g.rng.Intn(100))
	}
}

func (g *refProgGen) stmt(b *strings.Builder, indent string, depth, inLoop int) {
	switch k := g.rng.Intn(12); {
	case k <= 2: // global assignment
		fmt.Fprintf(b, "%s%s = %s;\n", indent, g.global(), g.expr(2))
	case k == 3:
		fmt.Fprintf(b, "%sx = %s;\n", indent, g.expr(2))
	case k == 4:
		fmt.Fprintf(b, "%sscanf(\"%%d\", &%s);\n", indent, g.global())
	case k == 5:
		fmt.Fprintf(b, "%sprintf(\"%%d\", %s);\n", indent, g.expr(2))
	case k <= 8: // call: plain, into a local, or into a global
		callee := fmt.Sprintf("f%d", g.rng.Intn(g.nFuncs))
		if g.fnptr && g.rng.Intn(4) == 0 {
			callee = "fp"
		}
		switch g.rng.Intn(3) {
		case 0:
			fmt.Fprintf(b, "%s%s(%s);\n", indent, callee, g.expr(1))
		case 1:
			fmt.Fprintf(b, "%sx = %s(%s);\n", indent, callee, g.expr(1))
		default:
			fmt.Fprintf(b, "%s%s = %s(%s);\n", indent, g.global(), callee, g.expr(1))
		}
	case k == 9 && depth < 2: // if / if-else, sometimes with an early return
		fmt.Fprintf(b, "%sif (%s) {\n", indent, g.expr(1))
		if g.rng.Intn(6) == 0 {
			fmt.Fprintf(b, "%s  return %s;\n", indent, g.expr(1))
		} else {
			g.stmt(b, indent+"  ", depth+1, inLoop)
		}
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(b, "%s} else {\n", indent)
			g.stmt(b, indent+"  ", depth+1, inLoop)
		}
		fmt.Fprintf(b, "%s}\n", indent)
	case k == 10 && depth < 2: // while, sometimes with break/continue
		fmt.Fprintf(b, "%swhile (%s) {\n", indent, g.expr(1))
		g.stmt(b, indent+"  ", depth+1, inLoop+1)
		if g.rng.Intn(4) == 0 {
			word := "break"
			if g.rng.Intn(2) == 0 {
				word = "continue"
			}
			fmt.Fprintf(b, "%s  if (%s) { %s; }\n", indent, g.expr(0), word)
		}
		fmt.Fprintf(b, "%sx = x - 1;\n%s}\n", indent, indent)
	default:
		fmt.Fprintf(b, "%s%s = %s + %s;\n", indent, g.global(), g.global(), g.expr(1))
	}
}

// funcSource renders function fi's full text from a dedicated rand
// stream, so an "edit" is just re-rendering one function with another
// seed.
func (g *refProgGen) funcSource(fi int, seed int64) string {
	saved := g.rng
	g.rng = rand.New(rand.NewSource(seed))
	defer func() { g.rng = saved }()

	var b strings.Builder
	fmt.Fprintf(&b, "int f%d(int a) {\n  int x = %d;\n", fi, g.rng.Intn(10))
	for i := 0; i < g.stmts; i++ {
		g.stmt(&b, "  ", 0, 0)
	}
	b.WriteString("  return x;\n}\n")
	return b.String()
}

func (g *refProgGen) header() string {
	var b strings.Builder
	for i := 0; i < g.nGlobals; i++ {
		fmt.Fprintf(&b, "int g%d;\n", i)
	}
	if g.fnptr {
		b.WriteString("fnptr fp;\n")
	}
	return b.String()
}

func (g *refProgGen) mainSource() string {
	var b strings.Builder
	b.WriteString("int main() {\n  int a = 1;\n  int x = 0;\n")
	if g.fnptr {
		fmt.Fprintf(&b, "  fp = &f%d;\n", g.rng.Intn(g.nFuncs))
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "  fp = &f%d;\n", g.rng.Intn(g.nFuncs))
		}
	}
	for i := 0; i < 3; i++ {
		g.stmt(&b, "  ", 0, 0)
	}
	fmt.Fprintf(&b, "  printf(\"%%d\", %s);\n  return 0;\n}\n", g.global())
	return b.String()
}

// source assembles the program; bodySeeds[i] overrides function i's
// body stream (used by the incremental tests to splice in edits).
func (g *refProgGen) source(bodySeeds map[int]int64) string {
	var b strings.Builder
	b.WriteString(g.header())
	for fi := 0; fi < g.nFuncs; fi++ {
		seed := int64(1000 + fi)
		if s, ok := bodySeeds[fi]; ok {
			seed = s
		}
		b.WriteString(g.funcSource(fi, seed))
	}
	b.WriteString(g.mainSource())
	return b.String()
}

func refParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}
	return prog
}

// checkAgainstOracle fails unless mr's four relations are identical to
// the oracle's for every procedure.
func checkAgainstOracle(t *testing.T, ctx string, mr *ModRef, ref *refModRef, prog *lang.Program) {
	t.Helper()
	rels := []struct {
		name string
		got  func(fn string) StringSet
		want map[string]StringSet
	}{
		{"GMOD", mr.GMOD, ref.gmod},
		{"GREF", mr.GREF, ref.gref},
		{"MustMod", mr.MustMod, ref.mustmod},
		{"UEREF", mr.UEREF, ref.ueref},
	}
	for _, fn := range prog.Funcs {
		for _, rel := range rels {
			got, want := rel.got(fn.Name), rel.want[fn.Name]
			if !got.Equal(want) {
				t.Errorf("%s: %s[%s]: dense=%v oracle=%v", ctx, rel.name, fn.Name, got.Sorted(), want.Sorted())
			}
		}
		// The precomputed name slices must agree with the materialized view.
		wantFI := mr.FormalInGlobals(fn.Name).Sorted()
		if gotFI := mr.FormalInGlobalNames(fn.Name); !sameStrings(gotFI, wantFI) {
			t.Errorf("%s: FormalInGlobalNames[%s]=%v, want %v", ctx, fn.Name, gotFI, wantFI)
		}
	}
}

const refOraclePrograms = 220

// TestModRefDifferentialOracle cross-checks the dense solver against
// the reference solver on randomly generated programs — recursive and
// mutually recursive call graphs included — and requires the dense rows
// to be identical at every worker count.
func TestModRefDifferentialOracle(t *testing.T) {
	n := refOraclePrograms
	if testing.Short() {
		n = 40
	}
	for i := 0; i < n; i++ {
		large := i%20 == 19 // past parMinStmts, so workers>1 really fan out
		g := newRefProgGen(int64(i), large)
		prog := refParse(t, g.source(nil))
		ref := refComputeModRef(prog)

		base := ComputeModRefWorkers(prog, 1)
		checkAgainstOracle(t, fmt.Sprintf("prog %d (workers=1)", i), base, ref, prog)
		for _, workers := range []int{2, 4, 8} {
			mr := ComputeModRefWorkers(prog, workers)
			for _, fn := range prog.Funcs {
				if !rowsEqualFor(base, mr, fn.Name) {
					t.Errorf("prog %d: workers=%d rows differ from workers=1 for %s", i, workers, fn.Name)
				}
			}
			checkAgainstOracle(t, fmt.Sprintf("prog %d (workers=%d)", i, workers), mr, ref, prog)
		}
	}
}

// TestAdvanceModRefDiffOracle edits one random procedure per program
// (and occasionally appends a new one), advances the summaries
// incrementally, and requires the result to match both a from-scratch
// dense run and the reference solver.
func TestAdvanceModRefDiffOracle(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		g := newRefProgGen(int64(500+i), i%10 == 9)
		oldProg := refParse(t, g.source(nil))
		oldMR := ComputeModRef(oldProg)

		edited := g.source(map[int]int64{g.rng.Intn(g.nFuncs): int64(9000 + i)})
		if i%7 == 0 {
			edited += fmt.Sprintf("int fextra(int a) {\n  g0 = a;\n  return f0(a);\n}\n")
		}
		newProg := refParse(t, edited)

		adv := AdvanceModRef(newProg, oldProg, oldMR)
		full := ComputeModRef(newProg)
		for _, fn := range newProg.Funcs {
			if !rowsEqualFor(adv, full, fn.Name) {
				t.Errorf("prog %d: advanced rows differ from full recompute for %s", i, fn.Name)
			}
		}
		checkAgainstOracle(t, fmt.Sprintf("advanced prog %d", i), adv, refComputeModRef(newProg), newProg)
	}
}
