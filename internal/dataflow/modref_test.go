package dataflow

import (
	"testing"

	"specslice/internal/lang"
)

func modref(t *testing.T, src string) *ModRef {
	t.Helper()
	return ComputeModRef(lang.MustParse(src))
}

func TestTransitiveGMOD(t *testing.T) {
	mr := modref(t, `
int g;
void leaf() { g = 1; }
void mid() { leaf(); }
int main() { mid(); return 0; }
`)
	for _, fn := range []string{"leaf", "mid", "main"} {
		if !mr.GMOD(fn)["g"] {
			t.Errorf("GMOD(%s) missing g", fn)
		}
		if !mr.MustMod(fn)["g"] {
			t.Errorf("MustMod(%s) missing g (unconditional chain)", fn)
		}
	}
}

func TestMustModBranches(t *testing.T) {
	mr := modref(t, `
int g; int h;
void both(int c) {
  if (c > 0) { g = 1; h = 1; } else { g = 2; }
}
int main() { both(1); return 0; }
`)
	if !mr.MustMod("both")["g"] {
		t.Error("g assigned on both branches: MustMod must contain it")
	}
	if mr.MustMod("both")["h"] {
		t.Error("h assigned on one branch only: MustMod must not contain it")
	}
	if !mr.GMOD("both")["h"] {
		t.Error("GMOD must contain h")
	}
}

func TestMustModLoopBody(t *testing.T) {
	mr := modref(t, `
int g;
void loopy(int n) {
  while (n > 0) { g = 1; n = n - 1; }
}
int main() { loopy(3); return 0; }
`)
	if mr.MustMod("loopy")["g"] {
		t.Error("loop body may not execute: g must not be in MustMod")
	}
	if !mr.FormalInGlobals("loopy")["g"] {
		t.Error("g in GMOD−MustMod needs a formal-in (old value may survive)")
	}
}

func TestMustModRecursionGreatestFixedPoint(t *testing.T) {
	// Every path through rec assigns g (both the base case and the
	// recursive case), so the greatest fixed point keeps g.
	mr := modref(t, `
int g;
void rec(int n) {
  if (n > 0) { rec(n - 1); } else { g = 0; }
  g = g + 1;
}
int main() { rec(2); return 0; }
`)
	if !mr.MustMod("rec")["g"] {
		t.Error("rec assigns g on every path; MustMod must contain g")
	}
}

func TestUERefThroughCallOrder(t *testing.T) {
	// writerThenReader assigns g before calling reader, so g is NOT
	// upward-exposed there; readerFirst is the opposite.
	mr := modref(t, `
int g;
int reader() { return g; }
void writerThenReader() { g = 1; int x = reader(); }
void readerFirst() { int x = reader(); g = 1; }
int main() { writerThenReader(); readerFirst(); return 0; }
`)
	if mr.UEREF("writerThenReader")["g"] {
		t.Error("g defined before the reading call: not upward-exposed")
	}
	if !mr.UEREF("readerFirst")["g"] {
		t.Error("g read by callee before any def: upward-exposed")
	}
}

func TestScanfMods(t *testing.T) {
	mr := modref(t, `
int g;
void read() { scanf("%d", &g); }
int main() { read(); printf("%d", g); return 0; }
`)
	if !mr.GMOD("read")["g"] || !mr.MustMod("read")["g"] {
		t.Errorf("scanf into global: GMOD=%v MustMod=%v", mr.GMOD("read").Sorted(), mr.MustMod("read").Sorted())
	}
}

func TestIndirectCallConservative(t *testing.T) {
	mr := modref(t, `
int g; int h;
void f1() { g = 1; }
void f2() { h = 1; }
int main() {
  fnptr p;
  p = f1;
  if (g > 0) { p = f2; }
  p();
  return 0;
}
`)
	// Indirect call may reach any address-taken function.
	if !mr.GMOD("main")["g"] || !mr.GMOD("main")["h"] {
		t.Errorf("GMOD(main) = %v, want g and h via the indirect call", mr.GMOD("main").Sorted())
	}
	// But must-mod cannot assume a particular target.
	if mr.MustMod("main")["h"] {
		t.Error("MustMod(main) must not contain h (the call may hit f1)")
	}
}

func TestStringSetHelpers(t *testing.T) {
	s := StringSet{"b": true, "a": true}
	if got := s.Sorted(); got[0] != "a" || got[1] != "b" {
		t.Errorf("Sorted = %v", got)
	}
	c := s.Clone()
	c["c"] = true
	if s["c"] {
		t.Error("Clone aliases the original")
	}
	if !s.Equal(StringSet{"a": true, "b": true}) || s.Equal(c) {
		t.Error("Equal wrong")
	}
}
