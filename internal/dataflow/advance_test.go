package dataflow

import (
	"strings"
	"testing"

	"specslice/internal/lang"
)

const mrBase = `
int g; int h;

int inc(int a) {
  g = g + a;
  return a + 1;
}

void set(int v) {
  h = v;
}

int main() {
  int x = 1;
  x = inc(x);
  set(x);
  printf("%d\n", g + h);
  return 0;
}
`

func mrParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func modRefEqual(t *testing.T, ctx string, got, want *ModRef, prog *lang.Program) {
	t.Helper()
	for _, fn := range prog.Funcs {
		if !rowsEqualFor(got, want, fn.Name) {
			t.Errorf("%s: %s summaries diverge from full recompute:\ngot  GMOD=%v GREF=%v MustMod=%v UEREF=%v\nwant GMOD=%v GREF=%v MustMod=%v UEREF=%v",
				ctx, fn.Name,
				got.GMOD(fn.Name).Sorted(), got.GREF(fn.Name).Sorted(), got.MustMod(fn.Name).Sorted(), got.UEREF(fn.Name).Sorted(),
				want.GMOD(fn.Name).Sorted(), want.GREF(fn.Name).Sorted(), want.MustMod(fn.Name).Sorted(), want.UEREF(fn.Name).Sorted())
		}
	}
}

func TestAdvanceModRefMatchesFull(t *testing.T) {
	old := mrParse(t, mrBase)
	oldMR := ComputeModRef(old)
	edits := map[string]string{
		"summary-preserving edit":  strings.Replace(mrBase, "return a + 1;", "return a + 2;", 1),
		"summary-changing edit":    strings.Replace(mrBase, "h = v;", "h = v;\n  g = v;", 1),
		"summary-shrinking edit":   strings.Replace(mrBase, "g = g + a;", "", 1),
		"procedure added and used": strings.Replace(mrBase, "int main", "void zero() {\n  g = 0;\n}\n\nint main", 1),
	}
	for name, src := range edits {
		newProg := mrParse(t, src)
		modRefEqual(t, name, AdvanceModRef(newProg, old, oldMR), ComputeModRef(newProg), newProg)
	}
}

func TestAdvanceModRefIndirectCallsFallBack(t *testing.T) {
	// The caller cutoff sees only direct calls, so indirect-call programs
	// must take the full-recompute path and still come out exact.
	src := `
int g;
fnptr fp;

int touch(int a) {
  g = g + a;
  return a;
}

int main() {
  fp = &touch;
  int r = fp(3);
  printf("%d\n", g + r);
  return 0;
}
`
	old := mrParse(t, src)
	oldMR := ComputeModRef(old)
	edited := strings.Replace(src, "g = g + a;", "g = a;", 1)
	newProg := mrParse(t, edited)
	modRefEqual(t, "indirect", AdvanceModRef(newProg, old, oldMR), ComputeModRef(newProg), newProg)
}
