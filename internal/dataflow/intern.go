package dataflow

import (
	"math/bits"
	"sort"

	"specslice/internal/lang"
)

// Interner assigns dense integer IDs to the program's global variables so
// the mod/ref relations can live in bitset rows instead of string-keyed
// maps. IDs are assigned in ascending name order, which makes decoding a
// row's set bits yield names already sorted — the order every downstream
// consumer (formal vertex creation, interface hashing, set printing)
// needs, without a sort per access.
//
// An Interner is immutable after construction and safe for concurrent
// readers; one instance is built per Build/Advance and shared between the
// solver and the SDG builder through the ModRef it produces.
type Interner struct {
	names []string
	ids   map[string]int
}

// InternGlobals builds the interner over prog's non-function-pointer
// globals — the only variables the mod/ref relations can contain.
func InternGlobals(prog *lang.Program) *Interner {
	names := make([]string, 0, len(prog.Globals))
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			names = append(names, g.Name)
		}
	}
	sort.Strings(names)
	in := &Interner{names: names, ids: make(map[string]int, len(names))}
	for i, n := range names {
		in.ids[n] = i
	}
	return in
}

// ID returns the dense ID of name, if it is an interned global.
func (in *Interner) ID(name string) (int, bool) {
	id, ok := in.ids[name]
	return id, ok
}

// Name returns the variable with the given ID.
func (in *Interner) Name(id int) string { return in.names[id] }

// Len returns the number of interned variables.
func (in *Interner) Len() int { return len(in.names) }

// Words returns the row width, in 64-bit words, of a bitset over the
// interned variables.
func (in *Interner) Words() int { return (len(in.names) + 63) / 64 }

// Names returns the interned variables in ID (= ascending name) order. The
// slice is shared; callers must not mutate it.
func (in *Interner) Names() []string { return in.names }

// rowEqual reports word-wise equality of two rows.
func rowEqual(a, b []uint64) bool {
	for w := range a {
		if a[w] != b[w] {
			return false
		}
	}
	return true
}

// orInto ORs src into dst and reports whether dst changed.
func orInto(dst, src []uint64) bool {
	changed := false
	for w := range dst {
		if n := dst[w] | src[w]; n != dst[w] {
			dst[w] = n
			changed = true
		}
	}
	return changed
}

// andInto ANDs src into dst.
func andInto(dst, src []uint64) {
	for w := range dst {
		dst[w] &= src[w]
	}
}

// rowIsEmpty reports whether no bit is set.
func rowIsEmpty(r []uint64) bool {
	for _, w := range r {
		if w != 0 {
			return false
		}
	}
	return true
}

// popcount returns the number of set bits in the row.
func popcount(r []uint64) int {
	n := 0
	for _, w := range r {
		n += bits.OnesCount64(w)
	}
	return n
}

// eachBit calls f for every set bit, in ascending ID order.
func eachBit(r []uint64, f func(id int)) {
	for wi, w := range r {
		for w != 0 {
			f(wi*64 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// decodeNames expands a row into variable names, in sorted order (IDs are
// assigned in name order). Returns nil for an empty row.
func (in *Interner) decodeNames(r []uint64) []string {
	n := popcount(r)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	eachBit(r, func(id int) { out = append(out, in.names[id]) })
	return out
}

// decodeSet expands a row into a StringSet view.
func (in *Interner) decodeSet(r []uint64) StringSet {
	out := make(StringSet, popcount(r))
	eachBit(r, func(id int) { out[in.names[id]] = true })
	return out
}
