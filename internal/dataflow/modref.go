// Package dataflow implements the interprocedural side-effect analyses the
// SDG builder needs: GMOD/GREF (globals a procedure may modify/reference,
// transitively) and MustMod (globals a procedure assigns on every
// terminating path), in the style of Cooper–Kennedy.
package dataflow

import (
	"sort"

	"specslice/internal/cfg"
	"specslice/internal/lang"
)

// StringSet is a set of variable names.
type StringSet map[string]bool

// Clone returns a copy of s.
func (s StringSet) Clone() StringSet {
	c := make(StringSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Sorted returns the members in sorted order.
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports set equality.
func (s StringSet) Equal(o StringSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// ModRef holds the per-procedure side-effect summaries.
type ModRef struct {
	// GMOD maps each function to the globals it may modify, including
	// through callees.
	GMOD map[string]StringSet
	// GREF maps each function to the globals it may reference, including
	// through callees.
	GREF map[string]StringSet
	// MustMod maps each function to the globals it definitely assigns on
	// every path from entry to exit, including through callees.
	MustMod map[string]StringSet
	// UEREF maps each function to the globals it may reference before
	// definitely assigning them (upward-exposed references), including
	// through callees. The SDG builder creates formal-in vertices for
	// UEREF ∪ (GMOD − MustMod), matching the paper's
	// MayRef ∪ (MayMod − MustMod) rule (§2.1.1).
	UEREF map[string]StringSet
}

// FormalInGlobals returns the globals needing formal-in vertices for fn:
// UEREF(fn) ∪ (GMOD(fn) − MustMod(fn)).
func (mr *ModRef) FormalInGlobals(fn string) StringSet {
	out := mr.UEREF[fn].Clone()
	for g := range mr.GMOD[fn] {
		if !mr.MustMod[fn][g] {
			out[g] = true
		}
	}
	return out
}

// ComputeModRef computes GMOD, GREF, and MustMod for every function.
// Indirect calls are treated conservatively as calls to any address-taken
// function (Andersen-style, flow-insensitive); programs transformed by the
// funcptr package contain no indirect calls and get precise results.
func ComputeModRef(prog *lang.Program) *ModRef {
	return computeModRef(prog, prog.Funcs, nil)
}

// AdvanceModRef computes newProg's summaries incrementally against a
// previous version: a procedure's GMOD/GREF/MustMod/UEREF depend only on
// its own statements and its (transitive) callees' summaries, so every
// procedure whose call subtree is textually unchanged keeps its old
// summaries, and the fixpoints re-run only over the dirty region — the
// edited procedures and their transitive callers. old is only read (its
// sets are cloned, never aliased), so the previous version may keep
// serving concurrently. Falls back to a full computation when the global
// declarations or the address-taken function set changed (both are
// program-wide inputs to every summary).
func AdvanceModRef(newProg, oldProg *lang.Program, old *ModRef) *ModRef {
	if old == nil || oldProg == nil {
		return ComputeModRef(newProg)
	}
	// The caller-cutoff logic below tracks dependencies through direct
	// calls only, so programs still containing indirect calls (callers
	// invisible in the reverse call graph) get the full recomputation.
	if hasIndirectCalls(newProg) || hasIndirectCalls(oldProg) {
		return ComputeModRef(newProg)
	}
	diff := lang.DiffPrograms(oldProg, newProg)
	if diff.GlobalsChanged || !sameStrings(addressTakenFuncs(oldProg), addressTakenFuncs(newProg)) {
		return ComputeModRef(newProg)
	}

	// Dirty: textually changed or added procedures. Removed procedures
	// need no entry — any caller they had must have changed textually to
	// keep resolving. Callers of dirty procedures join the set lazily,
	// change-driven: only when a dirty procedure's recomputed summaries
	// actually differ from its old ones (the common statement edit
	// preserves the summaries, and then no caller is ever reanalyzed).
	dirty := map[string]bool{}
	for _, name := range diff.Changed {
		dirty[name] = true
	}
	for _, name := range diff.Added {
		dirty[name] = true
	}
	oldHas := map[string]bool{}
	for _, fn := range oldProg.Funcs {
		oldHas[fn.Name] = true
	}
	// Reverse call graph of the new program (all calls are direct here —
	// indirect-call programs took the full-recompute path above).
	callers := map[string][]string{}
	for _, fn := range newProg.Funcs {
		seen := map[string]bool{}
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && !c.Indirect && !seen[c.Callee] {
				seen[c.Callee] = true
				callers[c.Callee] = append(callers[c.Callee], fn.Name)
			}
		}
	}

	for {
		base := &ModRef{
			GMOD:    map[string]StringSet{},
			GREF:    map[string]StringSet{},
			MustMod: map[string]StringSet{},
			UEREF:   map[string]StringSet{},
		}
		var dirtyFns []*lang.FuncDecl
		for _, fn := range newProg.Funcs {
			if dirty[fn.Name] {
				dirtyFns = append(dirtyFns, fn)
				continue
			}
			base.GMOD[fn.Name] = old.GMOD[fn.Name].Clone()
			base.GREF[fn.Name] = old.GREF[fn.Name].Clone()
			base.MustMod[fn.Name] = old.MustMod[fn.Name].Clone()
			base.UEREF[fn.Name] = old.UEREF[fn.Name].Clone()
		}
		mr := computeModRef(newProg, dirtyFns, base)

		// Cutoff check: if every dirty procedure's summaries match its old
		// ones, the callers outside the dirty set — computed against
		// exactly those summaries — are still final. Otherwise pull the
		// affected callers in and rerun; the set only grows, so this
		// terminates.
		grew := false
		for _, fn := range dirtyFns {
			name := fn.Name
			if !oldHas[name] || summariesEqual(old, mr, name) {
				continue
			}
			for _, caller := range callers[name] {
				if !dirty[caller] {
					dirty[caller] = true
					grew = true
				}
			}
		}
		if !grew {
			return mr
		}
	}
}

// summariesEqual reports whether name's four summary sets agree between
// two analyses.
func summariesEqual(a, b *ModRef, name string) bool {
	return a.GMOD[name].Equal(b.GMOD[name]) &&
		a.GREF[name].Equal(b.GREF[name]) &&
		a.MustMod[name].Equal(b.MustMod[name]) &&
		a.UEREF[name].Equal(b.UEREF[name])
}

// computeModRef runs the summary fixpoints over fns only; base carries
// final summaries for every other procedure (nil means fns covers the
// whole program). Restricting the iteration is sound because the dirty
// set is closed under callers: every procedure outside fns has its final
// summaries in base, and summaries only flow callee -> caller.
func computeModRef(prog *lang.Program, fns []*lang.FuncDecl, base *ModRef) *ModRef {
	globals := StringSet{}
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			globals[g.Name] = true
		}
	}
	addressTaken := addressTakenFuncs(prog)

	mr := base
	if mr == nil {
		mr = &ModRef{
			GMOD:    map[string]StringSet{},
			GREF:    map[string]StringSet{},
			MustMod: map[string]StringSet{},
			UEREF:   map[string]StringSet{},
		}
	}
	for _, f := range fns {
		mr.GMOD[f.Name] = StringSet{}
		mr.GREF[f.Name] = StringSet{}
		mr.MustMod[f.Name] = globals.Clone() // top; shrinks to greatest fixed point
		mr.UEREF[f.Name] = StringSet{}
	}

	// GMOD/GREF: least fixed point, growing.
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			gm, gr := mr.GMOD[fn.Name], mr.GREF[fn.Name]
			before := len(gm) + len(gr)
			for _, s := range fn.Stmts() {
				mr.addStmtModRef(prog, fn, s, globals, addressTaken, gm, gr)
			}
			if len(gm)+len(gr) != before {
				changed = true
			}
		}
	}

	// MustMod: greatest fixed point, shrinking. Needs a per-function
	// forward must-analysis over the executable CFG.
	graphs := map[string]*cfg.Graph{}
	for _, fn := range fns {
		graphs[fn.Name] = cfg.Build(fn)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			outs := mustDefOuts(prog, fn, graphs[fn.Name], globals, addressTaken, mr)
			got := outs[graphs[fn.Name].Exit.ID]
			if !got.Equal(mr.MustMod[fn.Name]) {
				mr.MustMod[fn.Name] = got
				changed = true
			}
		}
	}

	// UEREF: least fixed point, growing. A global is upward-exposed in fn
	// if some node uses it (directly, or via a callee's UEREF) at a point
	// where it is not yet definitely assigned.
	mustOuts := map[string][]StringSet{}
	for _, fn := range fns {
		mustOuts[fn.Name] = mustDefOuts(prog, fn, graphs[fn.Name], globals, addressTaken, mr)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			g := graphs[fn.Name]
			outs := mustOuts[fn.Name]
			ue := mr.UEREF[fn.Name]
			before := len(ue)
			for i, node := range g.Nodes {
				uses := nodeGlobalUses(prog, node, globals, addressTaken, mr)
				if len(uses) == 0 {
					continue
				}
				in := mustDefIn(g, outs, i, globals)
				for v := range uses {
					if !in[v] {
						ue[v] = true
					}
				}
			}
			if len(ue) != before {
				changed = true
			}
		}
	}
	return mr
}

func hasIndirectCalls(prog *lang.Program) bool {
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return true
			}
		}
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustDefIn computes the set of globals definitely assigned before node i
// begins, as the meet over its executable predecessors.
func mustDefIn(g *cfg.Graph, outs []StringSet, i int, globals StringSet) StringSet {
	if g.Nodes[i].Kind == cfg.KindEntry {
		return StringSet{}
	}
	var in StringSet
	first := true
	for _, e := range g.Preds[i] {
		if e.Pseudo {
			continue
		}
		if first {
			in = outs[e.To].Clone()
			first = false
		} else {
			in = intersect(in, outs[e.To])
		}
	}
	if first {
		return globals.Clone() // unreachable
	}
	return in
}

// nodeGlobalUses returns the globals referenced by the node: direct variable
// references in its expressions, plus the callee's upward-exposed globals
// for call nodes.
func nodeGlobalUses(prog *lang.Program, node *cfg.Node, globals StringSet, addressTaken []string, mr *ModRef) StringSet {
	uses := StringSet{}
	if node.Stmt == nil {
		return uses
	}
	for _, e := range lang.StmtExprs(node.Stmt) {
		for _, v := range lang.ExprVars(e) {
			if globals[v] {
				uses[v] = true
			}
		}
	}
	if c, ok := node.Stmt.(*lang.CallStmt); ok {
		for _, callee := range calleesOf(prog, c, addressTaken) {
			for g := range mr.UEREF[callee] {
				uses[g] = true
			}
		}
	}
	return uses
}

func (mr *ModRef) addStmtModRef(prog *lang.Program, fn *lang.FuncDecl, s lang.Stmt, globals StringSet, addressTaken []string, gm, gr StringSet) {
	refExpr := func(e lang.Expr) {
		for _, v := range lang.ExprVars(e) {
			if globals[v] {
				gr[v] = true
			}
		}
	}
	switch x := s.(type) {
	case *lang.DeclStmt:
		refExpr(x.Init)
	case *lang.AssignStmt:
		refExpr(x.RHS)
		if globals[x.LHS] {
			gm[x.LHS] = true
		}
	case *lang.IfStmt:
		refExpr(x.Cond)
	case *lang.WhileStmt:
		refExpr(x.Cond)
	case *lang.ReturnStmt:
		refExpr(x.Value)
	case *lang.PrintfStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
	case *lang.ScanfStmt:
		if globals[x.Var] {
			gm[x.Var] = true
		}
	case *lang.CallStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
		if globals[x.Target] {
			gm[x.Target] = true
		}
		for _, callee := range calleesOf(prog, x, addressTaken) {
			for g := range mr.GMOD[callee] {
				gm[g] = true
			}
			for g := range mr.GREF[callee] {
				gr[g] = true
			}
		}
	}
}

// mustDefOuts runs the intraprocedural forward must-assigned analysis using
// the current MustMod summaries for callees, returning the per-node
// "definitely assigned at node end" sets.
func mustDefOuts(prog *lang.Program, fn *lang.FuncDecl, g *cfg.Graph, globals StringSet, addressTaken []string, mr *ModRef) []StringSet {
	n := len(g.Nodes)
	// out[i] = set of globals definitely assigned on every path from entry
	// to the end of node i. Initialize to top (all globals) except entry.
	out := make([]StringSet, n)
	for i := range out {
		out[i] = globals.Clone()
	}
	out[g.Entry.ID] = StringSet{}

	gen := func(node *cfg.Node) StringSet {
		gs := StringSet{}
		if node.Stmt == nil {
			return gs
		}
		switch x := node.Stmt.(type) {
		case *lang.AssignStmt:
			if globals[x.LHS] {
				gs[x.LHS] = true
			}
		case *lang.ScanfStmt:
			if globals[x.Var] {
				gs[x.Var] = true
			}
		case *lang.CallStmt:
			if globals[x.Target] {
				gs[x.Target] = true
			}
			callees := calleesOf(prog, x, addressTaken)
			if len(callees) > 0 {
				meet := mr.MustMod[callees[0]].Clone()
				for _, c := range callees[1:] {
					meet = intersect(meet, mr.MustMod[c])
				}
				for v := range meet {
					gs[v] = true
				}
			}
		}
		return gs
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			node := g.Nodes[i]
			if node.Kind == cfg.KindEntry {
				continue
			}
			var in StringSet
			first := true
			for _, e := range g.Preds[i] {
				if e.Pseudo {
					continue
				}
				if first {
					in = out[e.To].Clone()
					first = false
				} else {
					in = intersect(in, out[e.To])
				}
			}
			if first { // unreachable node
				in = globals.Clone()
			}
			for v := range gen(node) {
				in[v] = true
			}
			if !in.Equal(out[i]) {
				out[i] = in
				changed = true
			}
		}
	}
	return out
}

func intersect(a, b StringSet) StringSet {
	out := StringSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// addressTakenFuncs returns the functions whose address is taken anywhere in
// the program (assigned to a fnptr), sorted for determinism.
func addressTakenFuncs(prog *lang.Program) []string {
	set := StringSet{}
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			for _, e := range lang.StmtExprs(s) {
				lang.WalkExprs(e, func(x lang.Expr) {
					if fr, ok := x.(*lang.FuncRef); ok {
						set[fr.Name] = true
					}
				})
			}
		}
	}
	return set.Sorted()
}

// calleesOf resolves the possible callees of a call statement: the named
// function for direct calls, or every address-taken function for indirect
// calls.
func calleesOf(prog *lang.Program, c *lang.CallStmt, addressTaken []string) []string {
	if !c.Indirect {
		return []string{c.Callee}
	}
	return addressTaken
}
