// Package dataflow implements the interprocedural side-effect analyses the
// SDG builder needs: GMOD/GREF (globals a procedure may modify/reference,
// transitively) and MustMod (globals a procedure assigns on every
// terminating path), in the style of Cooper–Kennedy.
package dataflow

import (
	"sort"

	"specslice/internal/cfg"
	"specslice/internal/lang"
)

// StringSet is a set of variable names.
type StringSet map[string]bool

// Clone returns a copy of s.
func (s StringSet) Clone() StringSet {
	c := make(StringSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Sorted returns the members in sorted order.
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports set equality.
func (s StringSet) Equal(o StringSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// ModRef holds the per-procedure side-effect summaries.
type ModRef struct {
	// GMOD maps each function to the globals it may modify, including
	// through callees.
	GMOD map[string]StringSet
	// GREF maps each function to the globals it may reference, including
	// through callees.
	GREF map[string]StringSet
	// MustMod maps each function to the globals it definitely assigns on
	// every path from entry to exit, including through callees.
	MustMod map[string]StringSet
	// UEREF maps each function to the globals it may reference before
	// definitely assigning them (upward-exposed references), including
	// through callees. The SDG builder creates formal-in vertices for
	// UEREF ∪ (GMOD − MustMod), matching the paper's
	// MayRef ∪ (MayMod − MustMod) rule (§2.1.1).
	UEREF map[string]StringSet
}

// FormalInGlobals returns the globals needing formal-in vertices for fn:
// UEREF(fn) ∪ (GMOD(fn) − MustMod(fn)).
func (mr *ModRef) FormalInGlobals(fn string) StringSet {
	out := mr.UEREF[fn].Clone()
	for g := range mr.GMOD[fn] {
		if !mr.MustMod[fn][g] {
			out[g] = true
		}
	}
	return out
}

// ComputeModRef computes GMOD, GREF, and MustMod for every function.
// Indirect calls are treated conservatively as calls to any address-taken
// function (Andersen-style, flow-insensitive); programs transformed by the
// funcptr package contain no indirect calls and get precise results.
func ComputeModRef(prog *lang.Program) *ModRef {
	globals := StringSet{}
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			globals[g.Name] = true
		}
	}
	addressTaken := addressTakenFuncs(prog)

	mr := &ModRef{
		GMOD:    map[string]StringSet{},
		GREF:    map[string]StringSet{},
		MustMod: map[string]StringSet{},
		UEREF:   map[string]StringSet{},
	}
	for _, f := range prog.Funcs {
		mr.GMOD[f.Name] = StringSet{}
		mr.GREF[f.Name] = StringSet{}
		mr.MustMod[f.Name] = globals.Clone() // top; shrinks to greatest fixed point
		mr.UEREF[f.Name] = StringSet{}
	}

	// GMOD/GREF: least fixed point, growing.
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			gm, gr := mr.GMOD[fn.Name], mr.GREF[fn.Name]
			before := len(gm) + len(gr)
			for _, s := range fn.Stmts() {
				mr.addStmtModRef(prog, fn, s, globals, addressTaken, gm, gr)
			}
			if len(gm)+len(gr) != before {
				changed = true
			}
		}
	}

	// MustMod: greatest fixed point, shrinking. Needs a per-function
	// forward must-analysis over the executable CFG.
	graphs := map[string]*cfg.Graph{}
	for _, fn := range prog.Funcs {
		graphs[fn.Name] = cfg.Build(fn)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			outs := mustDefOuts(prog, fn, graphs[fn.Name], globals, addressTaken, mr)
			got := outs[graphs[fn.Name].Exit.ID]
			if !got.Equal(mr.MustMod[fn.Name]) {
				mr.MustMod[fn.Name] = got
				changed = true
			}
		}
	}

	// UEREF: least fixed point, growing. A global is upward-exposed in fn
	// if some node uses it (directly, or via a callee's UEREF) at a point
	// where it is not yet definitely assigned.
	mustOuts := map[string][]StringSet{}
	for _, fn := range prog.Funcs {
		mustOuts[fn.Name] = mustDefOuts(prog, fn, graphs[fn.Name], globals, addressTaken, mr)
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range prog.Funcs {
			g := graphs[fn.Name]
			outs := mustOuts[fn.Name]
			ue := mr.UEREF[fn.Name]
			before := len(ue)
			for i, node := range g.Nodes {
				uses := nodeGlobalUses(prog, node, globals, addressTaken, mr)
				if len(uses) == 0 {
					continue
				}
				in := mustDefIn(g, outs, i, globals)
				for v := range uses {
					if !in[v] {
						ue[v] = true
					}
				}
			}
			if len(ue) != before {
				changed = true
			}
		}
	}
	return mr
}

// mustDefIn computes the set of globals definitely assigned before node i
// begins, as the meet over its executable predecessors.
func mustDefIn(g *cfg.Graph, outs []StringSet, i int, globals StringSet) StringSet {
	if g.Nodes[i].Kind == cfg.KindEntry {
		return StringSet{}
	}
	var in StringSet
	first := true
	for _, e := range g.Preds[i] {
		if e.Pseudo {
			continue
		}
		if first {
			in = outs[e.To].Clone()
			first = false
		} else {
			in = intersect(in, outs[e.To])
		}
	}
	if first {
		return globals.Clone() // unreachable
	}
	return in
}

// nodeGlobalUses returns the globals referenced by the node: direct variable
// references in its expressions, plus the callee's upward-exposed globals
// for call nodes.
func nodeGlobalUses(prog *lang.Program, node *cfg.Node, globals StringSet, addressTaken []string, mr *ModRef) StringSet {
	uses := StringSet{}
	if node.Stmt == nil {
		return uses
	}
	for _, e := range lang.StmtExprs(node.Stmt) {
		for _, v := range lang.ExprVars(e) {
			if globals[v] {
				uses[v] = true
			}
		}
	}
	if c, ok := node.Stmt.(*lang.CallStmt); ok {
		for _, callee := range calleesOf(prog, c, addressTaken) {
			for g := range mr.UEREF[callee] {
				uses[g] = true
			}
		}
	}
	return uses
}

func (mr *ModRef) addStmtModRef(prog *lang.Program, fn *lang.FuncDecl, s lang.Stmt, globals StringSet, addressTaken []string, gm, gr StringSet) {
	refExpr := func(e lang.Expr) {
		for _, v := range lang.ExprVars(e) {
			if globals[v] {
				gr[v] = true
			}
		}
	}
	switch x := s.(type) {
	case *lang.DeclStmt:
		refExpr(x.Init)
	case *lang.AssignStmt:
		refExpr(x.RHS)
		if globals[x.LHS] {
			gm[x.LHS] = true
		}
	case *lang.IfStmt:
		refExpr(x.Cond)
	case *lang.WhileStmt:
		refExpr(x.Cond)
	case *lang.ReturnStmt:
		refExpr(x.Value)
	case *lang.PrintfStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
	case *lang.ScanfStmt:
		if globals[x.Var] {
			gm[x.Var] = true
		}
	case *lang.CallStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
		if globals[x.Target] {
			gm[x.Target] = true
		}
		for _, callee := range calleesOf(prog, x, addressTaken) {
			for g := range mr.GMOD[callee] {
				gm[g] = true
			}
			for g := range mr.GREF[callee] {
				gr[g] = true
			}
		}
	}
}

// mustDefOuts runs the intraprocedural forward must-assigned analysis using
// the current MustMod summaries for callees, returning the per-node
// "definitely assigned at node end" sets.
func mustDefOuts(prog *lang.Program, fn *lang.FuncDecl, g *cfg.Graph, globals StringSet, addressTaken []string, mr *ModRef) []StringSet {
	n := len(g.Nodes)
	// out[i] = set of globals definitely assigned on every path from entry
	// to the end of node i. Initialize to top (all globals) except entry.
	out := make([]StringSet, n)
	for i := range out {
		out[i] = globals.Clone()
	}
	out[g.Entry.ID] = StringSet{}

	gen := func(node *cfg.Node) StringSet {
		gs := StringSet{}
		if node.Stmt == nil {
			return gs
		}
		switch x := node.Stmt.(type) {
		case *lang.AssignStmt:
			if globals[x.LHS] {
				gs[x.LHS] = true
			}
		case *lang.ScanfStmt:
			if globals[x.Var] {
				gs[x.Var] = true
			}
		case *lang.CallStmt:
			if globals[x.Target] {
				gs[x.Target] = true
			}
			callees := calleesOf(prog, x, addressTaken)
			if len(callees) > 0 {
				meet := mr.MustMod[callees[0]].Clone()
				for _, c := range callees[1:] {
					meet = intersect(meet, mr.MustMod[c])
				}
				for v := range meet {
					gs[v] = true
				}
			}
		}
		return gs
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			node := g.Nodes[i]
			if node.Kind == cfg.KindEntry {
				continue
			}
			var in StringSet
			first := true
			for _, e := range g.Preds[i] {
				if e.Pseudo {
					continue
				}
				if first {
					in = out[e.To].Clone()
					first = false
				} else {
					in = intersect(in, out[e.To])
				}
			}
			if first { // unreachable node
				in = globals.Clone()
			}
			for v := range gen(node) {
				in[v] = true
			}
			if !in.Equal(out[i]) {
				out[i] = in
				changed = true
			}
		}
	}
	return out
}

func intersect(a, b StringSet) StringSet {
	out := StringSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// addressTakenFuncs returns the functions whose address is taken anywhere in
// the program (assigned to a fnptr), sorted for determinism.
func addressTakenFuncs(prog *lang.Program) []string {
	set := StringSet{}
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			for _, e := range lang.StmtExprs(s) {
				lang.WalkExprs(e, func(x lang.Expr) {
					if fr, ok := x.(*lang.FuncRef); ok {
						set[fr.Name] = true
					}
				})
			}
		}
	}
	return set.Sorted()
}

// calleesOf resolves the possible callees of a call statement: the named
// function for direct calls, or every address-taken function for indirect
// calls.
func calleesOf(prog *lang.Program, c *lang.CallStmt, addressTaken []string) []string {
	if !c.Indirect {
		return []string{c.Callee}
	}
	return addressTaken
}
