// Package dataflow implements the interprocedural side-effect analyses the
// SDG builder needs: GMOD/GREF (globals a procedure may modify/reference,
// transitively) and MustMod (globals a procedure assigns on every
// terminating path), in the style of Cooper–Kennedy.
//
// The summary equations only flow callee → caller, so the solver runs
// bottom-up over the condensation of the call graph: each strongly
// connected component is solved to its (unique) fixpoint once its callees
// are final, non-recursive procedures in a single pass. Components at the
// same condensation level share no call edges, so a level's components
// solve in parallel across a worker pool; the fixpoints are unique, which
// is what keeps the result — and everything downstream, vertex numbering
// included — byte-identical no matter the worker count.
package dataflow

import (
	"sort"

	"specslice/internal/cfg"
	"specslice/internal/lang"
	"specslice/internal/par"
)

// StringSet is a set of variable names.
type StringSet map[string]bool

// Clone returns a copy of s.
func (s StringSet) Clone() StringSet {
	c := make(StringSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Sorted returns the members in sorted order.
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports set equality.
func (s StringSet) Equal(o StringSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// ModRef holds the per-procedure side-effect summaries.
type ModRef struct {
	// GMOD maps each function to the globals it may modify, including
	// through callees.
	GMOD map[string]StringSet
	// GREF maps each function to the globals it may reference, including
	// through callees.
	GREF map[string]StringSet
	// MustMod maps each function to the globals it definitely assigns on
	// every path from entry to exit, including through callees.
	MustMod map[string]StringSet
	// UEREF maps each function to the globals it may reference before
	// definitely assigning them (upward-exposed references), including
	// through callees. The SDG builder creates formal-in vertices for
	// UEREF ∪ (GMOD − MustMod), matching the paper's
	// MayRef ∪ (MayMod − MustMod) rule (§2.1.1).
	UEREF map[string]StringSet
}

// FormalInGlobals returns the globals needing formal-in vertices for fn:
// UEREF(fn) ∪ (GMOD(fn) − MustMod(fn)).
func (mr *ModRef) FormalInGlobals(fn string) StringSet {
	out := mr.UEREF[fn].Clone()
	for g := range mr.GMOD[fn] {
		if !mr.MustMod[fn][g] {
			out[g] = true
		}
	}
	return out
}

// ComputeModRef computes GMOD, GREF, and MustMod for every function,
// single-threaded. Indirect calls are treated conservatively as calls to
// any address-taken function (Andersen-style, flow-insensitive); programs
// transformed by the funcptr package contain no indirect calls and get
// precise results.
func ComputeModRef(prog *lang.Program) *ModRef {
	return computeModRef(prog, prog.Funcs, nil, 1)
}

// ComputeModRefWorkers is ComputeModRef over a worker pool of the given
// size (<= 0 means GOMAXPROCS): call-graph components at the same
// condensation level are analyzed concurrently. The result is identical
// for every worker count.
func ComputeModRefWorkers(prog *lang.Program, workers int) *ModRef {
	return computeModRef(prog, prog.Funcs, nil, workers)
}

// AdvanceModRef computes newProg's summaries incrementally against a
// previous version: a procedure's GMOD/GREF/MustMod/UEREF depend only on
// its own statements and its (transitive) callees' summaries, so every
// procedure whose call subtree is textually unchanged keeps its old
// summaries, and the fixpoints re-run only over the dirty region — the
// edited procedures and their transitive callers. old is only read (its
// sets are cloned, never aliased), so the previous version may keep
// serving concurrently. Falls back to a full computation when the global
// declarations or the address-taken function set changed (both are
// program-wide inputs to every summary).
func AdvanceModRef(newProg, oldProg *lang.Program, old *ModRef) *ModRef {
	if old == nil || oldProg == nil {
		return ComputeModRef(newProg)
	}
	return AdvanceModRefDiff(newProg, oldProg, old, lang.DiffPrograms(oldProg, newProg))
}

// AdvanceModRefDiff is AdvanceModRef against a precomputed program diff,
// for callers (sdg.Advance) that already diffed the versions through
// retained per-procedure hashes and should not pay a second print pass.
func AdvanceModRefDiff(newProg, oldProg *lang.Program, old *ModRef, diff lang.ProgramDiff) *ModRef {
	if old == nil || oldProg == nil {
		return ComputeModRef(newProg)
	}
	// The caller-cutoff logic below tracks dependencies through direct
	// calls only, so programs still containing indirect calls (callers
	// invisible in the reverse call graph) get the full recomputation.
	if hasIndirectCalls(newProg) || hasIndirectCalls(oldProg) {
		return ComputeModRef(newProg)
	}
	if diff.GlobalsChanged || !sameStrings(addressTakenFuncs(oldProg), addressTakenFuncs(newProg)) {
		return ComputeModRef(newProg)
	}

	// Dirty: textually changed or added procedures. Removed procedures
	// need no entry — any caller they had must have changed textually to
	// keep resolving. Callers of dirty procedures join the set lazily,
	// change-driven: only when a dirty procedure's recomputed summaries
	// actually differ from its old ones (the common statement edit
	// preserves the summaries, and then no caller is ever reanalyzed).
	dirty := map[string]bool{}
	for _, name := range diff.Changed {
		dirty[name] = true
	}
	for _, name := range diff.Added {
		dirty[name] = true
	}
	oldHas := map[string]bool{}
	for _, fn := range oldProg.Funcs {
		oldHas[fn.Name] = true
	}
	// Reverse call graph of the new program (all calls are direct here —
	// indirect-call programs took the full-recompute path above).
	callers := map[string][]string{}
	for _, fn := range newProg.Funcs {
		seen := map[string]bool{}
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && !c.Indirect && !seen[c.Callee] {
				seen[c.Callee] = true
				callers[c.Callee] = append(callers[c.Callee], fn.Name)
			}
		}
	}

	for {
		base := &ModRef{
			GMOD:    map[string]StringSet{},
			GREF:    map[string]StringSet{},
			MustMod: map[string]StringSet{},
			UEREF:   map[string]StringSet{},
		}
		var dirtyFns []*lang.FuncDecl
		for _, fn := range newProg.Funcs {
			if dirty[fn.Name] {
				dirtyFns = append(dirtyFns, fn)
				continue
			}
			base.GMOD[fn.Name] = old.GMOD[fn.Name].Clone()
			base.GREF[fn.Name] = old.GREF[fn.Name].Clone()
			base.MustMod[fn.Name] = old.MustMod[fn.Name].Clone()
			base.UEREF[fn.Name] = old.UEREF[fn.Name].Clone()
		}
		mr := computeModRef(newProg, dirtyFns, base, 1)

		// Cutoff check: if every dirty procedure's summaries match its old
		// ones, the callers outside the dirty set — computed against
		// exactly those summaries — are still final. Otherwise pull the
		// affected callers in and rerun; the set only grows, so this
		// terminates.
		grew := false
		for _, fn := range dirtyFns {
			name := fn.Name
			if !oldHas[name] || summariesEqual(old, mr, name) {
				continue
			}
			for _, caller := range callers[name] {
				if !dirty[caller] {
					dirty[caller] = true
					grew = true
				}
			}
		}
		if !grew {
			return mr
		}
	}
}

// summariesEqual reports whether name's four summary sets agree between
// two analyses.
func summariesEqual(a, b *ModRef, name string) bool {
	return a.GMOD[name].Equal(b.GMOD[name]) &&
		a.GREF[name].Equal(b.GREF[name]) &&
		a.MustMod[name].Equal(b.MustMod[name]) &&
		a.UEREF[name].Equal(b.UEREF[name])
}

// solver carries the shared inputs of one computeModRef run plus the
// per-function summary slots the component workers write. Slots are
// indexed by position in fns; a worker only writes the slots of its own
// component and only reads slots of strictly lower condensation levels
// (already final) or its own component, so slot access is race-free
// without locks.
type solver struct {
	prog         *lang.Program
	globals      StringSet
	addressTaken []string
	base         *ModRef // final summaries of procedures outside fns
	fns          []*lang.FuncDecl
	idxOf        map[string]int // fn name -> index in fns
	graphs       []*cfg.Graph

	gmod, gref, mustmod, ueref []StringSet
}

func (s *solver) curGMOD(name string) StringSet {
	if i, ok := s.idxOf[name]; ok {
		return s.gmod[i]
	}
	return s.base.GMOD[name]
}

func (s *solver) curGREF(name string) StringSet {
	if i, ok := s.idxOf[name]; ok {
		return s.gref[i]
	}
	return s.base.GREF[name]
}

func (s *solver) curMustMod(name string) StringSet {
	if i, ok := s.idxOf[name]; ok {
		return s.mustmod[i]
	}
	return s.base.MustMod[name]
}

func (s *solver) curUEREF(name string) StringSet {
	if i, ok := s.idxOf[name]; ok {
		return s.ueref[i]
	}
	return s.base.UEREF[name]
}

// computeModRef runs the summary analyses over fns only; base carries
// final summaries for every other procedure (nil means fns covers the
// whole program). Restricting the iteration is sound because the caller
// keeps the fns set closed under callers: every procedure outside fns has
// its final summaries in base, and summaries only flow callee -> caller.
func computeModRef(prog *lang.Program, fns []*lang.FuncDecl, base *ModRef, workers int) *ModRef {
	globals := StringSet{}
	for _, g := range prog.Globals {
		if !g.IsFnPtr {
			globals[g.Name] = true
		}
	}

	mr := base
	if mr == nil {
		mr = &ModRef{
			GMOD:    map[string]StringSet{},
			GREF:    map[string]StringSet{},
			MustMod: map[string]StringSet{},
			UEREF:   map[string]StringSet{},
		}
	}
	if len(fns) == 0 {
		return mr
	}

	s := &solver{
		prog:         prog,
		globals:      globals,
		addressTaken: addressTakenFuncs(prog),
		base:         mr,
		fns:          fns,
		idxOf:        make(map[string]int, len(fns)),
		graphs:       make([]*cfg.Graph, len(fns)),
		gmod:         make([]StringSet, len(fns)),
		gref:         make([]StringSet, len(fns)),
		mustmod:      make([]StringSet, len(fns)),
		ueref:        make([]StringSet, len(fns)),
	}
	for i, fn := range fns {
		s.idxOf[fn.Name] = i
	}
	par.For(workers, len(fns), func(i int) {
		s.graphs[i] = cfg.Build(fns[i])
	})

	// Call graph restricted to fns, condensed into SCCs, grouped into
	// levels (level = 1 + max callee level), callees first.
	callees := make([][]int, len(fns))
	for i, fn := range fns {
		seen := map[int]bool{}
		for _, st := range fn.Stmts() {
			c, ok := st.(*lang.CallStmt)
			if !ok {
				continue
			}
			for _, callee := range calleesOf(prog, c, s.addressTaken) {
				if j, in := s.idxOf[callee]; in && !seen[j] {
					seen[j] = true
					callees[i] = append(callees[i], j)
				}
			}
		}
		sort.Ints(callees[i])
	}
	levels := sccLevels(len(fns), callees)

	// Solve levels bottom-up; components within a level are independent
	// (a callee is always strictly lower-level) and run in parallel.
	for _, comps := range levels {
		par.For(workers, len(comps), func(ci int) {
			s.solveComponent(comps[ci], callees)
		})
	}

	// Install the slots (the maps are shared with readers of base, so the
	// parallel phase never touches them).
	for i, fn := range fns {
		mr.GMOD[fn.Name] = s.gmod[i]
		mr.GREF[fn.Name] = s.gref[i]
		mr.MustMod[fn.Name] = s.mustmod[i]
		mr.UEREF[fn.Name] = s.ueref[i]
	}
	return mr
}

// sccLevels computes the strongly connected components of the call graph
// (Tarjan, iterative) and groups them by condensation level, lowest
// (callee-most) first. Component member lists and the components within a
// level are in ascending function order, so the schedule is deterministic.
func sccLevels(n int, succs [][]int) [][][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	compOf := [][]int{}
	next := 0

	type frame struct{ v, ci int }
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ci == 0 {
				index[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ci < len(succs[v]) {
				w := succs[v][f.ci]
				f.ci++
				if index[w] == unvisited {
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(compOf)
					members = append(members, w)
					if w == v {
						break
					}
				}
				sort.Ints(members)
				compOf = append(compOf, members)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}

	// Level of a component: 1 + max level of callee components.
	level := make([]int, len(compOf))
	maxLevel := 0
	// Tarjan emits components in reverse topological order (callees
	// before callers), so one pass in emission order suffices.
	for ci, members := range compOf {
		lv := 0
		for _, v := range members {
			for _, w := range succs[v] {
				if comp[w] != ci && level[comp[w]]+1 > lv {
					lv = level[comp[w]] + 1
				}
			}
		}
		level[ci] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	out := make([][][]int, maxLevel+1)
	for ci, members := range compOf {
		out[level[ci]] = append(out[level[ci]], members)
	}
	for _, comps := range out {
		sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	}
	return out
}

// solveComponent runs the three summary fixpoints over one SCC, reading
// already-final callee summaries from lower levels (or base) and writing
// the component members' slots. Non-recursive components converge in a
// single pass of each analysis.
func (s *solver) solveComponent(members []int, callees [][]int) {
	recursive := len(members) > 1
	if !recursive {
		v := members[0]
		for _, w := range callees[v] {
			if w == v {
				recursive = true
				break
			}
		}
	}
	for _, i := range members {
		s.gmod[i] = StringSet{}
		s.gref[i] = StringSet{}
		s.mustmod[i] = s.globals.Clone() // top; shrinks to greatest fixed point
		s.ueref[i] = StringSet{}
	}

	// GMOD/GREF: least fixed point, growing.
	for {
		changed := false
		for _, i := range members {
			fn := s.fns[i]
			gm, gr := s.gmod[i], s.gref[i]
			before := len(gm) + len(gr)
			for _, st := range fn.Stmts() {
				s.addStmtModRef(fn, st, gm, gr)
			}
			if len(gm)+len(gr) != before {
				changed = true
			}
		}
		if !recursive || !changed {
			break
		}
	}

	// MustMod: greatest fixed point, shrinking. Needs a per-function
	// forward must-analysis over the executable CFG.
	for {
		changed := false
		for _, i := range members {
			outs := s.mustDefOuts(i)
			got := outs[s.graphs[i].Exit.ID]
			if !got.Equal(s.mustmod[i]) {
				s.mustmod[i] = got
				changed = true
			}
		}
		if !recursive || !changed {
			break
		}
	}

	// UEREF: least fixed point, growing. A global is upward-exposed in fn
	// if some node uses it (directly, or via a callee's UEREF) at a point
	// where it is not yet definitely assigned.
	mustOuts := make([][]StringSet, len(members))
	for mi, i := range members {
		mustOuts[mi] = s.mustDefOuts(i)
	}
	for {
		changed := false
		for mi, i := range members {
			g := s.graphs[i]
			outs := mustOuts[mi]
			ue := s.ueref[i]
			before := len(ue)
			for ni, node := range g.Nodes {
				uses := s.nodeGlobalUses(node)
				if len(uses) == 0 {
					continue
				}
				in := s.mustDefIn(g, outs, ni)
				for v := range uses {
					if !in[v] {
						ue[v] = true
					}
				}
			}
			if len(ue) != before {
				changed = true
			}
		}
		if !recursive || !changed {
			break
		}
	}
}

func hasIndirectCalls(prog *lang.Program) bool {
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return true
			}
		}
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mustDefIn computes the set of globals definitely assigned before node i
// begins, as the meet over its executable predecessors.
func (s *solver) mustDefIn(g *cfg.Graph, outs []StringSet, i int) StringSet {
	if g.Nodes[i].Kind == cfg.KindEntry {
		return StringSet{}
	}
	var in StringSet
	first := true
	for _, e := range g.Preds[i] {
		if e.Pseudo {
			continue
		}
		if first {
			in = outs[e.To].Clone()
			first = false
		} else {
			in = intersect(in, outs[e.To])
		}
	}
	if first {
		return s.globals.Clone() // unreachable
	}
	return in
}

// nodeGlobalUses returns the globals referenced by the node: direct variable
// references in its expressions, plus the callee's upward-exposed globals
// for call nodes.
func (s *solver) nodeGlobalUses(node *cfg.Node) StringSet {
	uses := StringSet{}
	if node.Stmt == nil {
		return uses
	}
	for _, e := range lang.StmtExprs(node.Stmt) {
		for _, v := range lang.ExprVars(e) {
			if s.globals[v] {
				uses[v] = true
			}
		}
	}
	if c, ok := node.Stmt.(*lang.CallStmt); ok {
		for _, callee := range calleesOf(s.prog, c, s.addressTaken) {
			for g := range s.curUEREF(callee) {
				uses[g] = true
			}
		}
	}
	return uses
}

func (s *solver) addStmtModRef(fn *lang.FuncDecl, st lang.Stmt, gm, gr StringSet) {
	refExpr := func(e lang.Expr) {
		for _, v := range lang.ExprVars(e) {
			if s.globals[v] {
				gr[v] = true
			}
		}
	}
	switch x := st.(type) {
	case *lang.DeclStmt:
		refExpr(x.Init)
	case *lang.AssignStmt:
		refExpr(x.RHS)
		if s.globals[x.LHS] {
			gm[x.LHS] = true
		}
	case *lang.IfStmt:
		refExpr(x.Cond)
	case *lang.WhileStmt:
		refExpr(x.Cond)
	case *lang.ReturnStmt:
		refExpr(x.Value)
	case *lang.PrintfStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
	case *lang.ScanfStmt:
		if s.globals[x.Var] {
			gm[x.Var] = true
		}
	case *lang.CallStmt:
		for _, a := range x.Args {
			refExpr(a)
		}
		if s.globals[x.Target] {
			gm[x.Target] = true
		}
		for _, callee := range calleesOf(s.prog, x, s.addressTaken) {
			for g := range s.curGMOD(callee) {
				gm[g] = true
			}
			for g := range s.curGREF(callee) {
				gr[g] = true
			}
		}
	}
}

// mustDefOuts runs the intraprocedural forward must-assigned analysis for
// fns[i] using the current MustMod summaries for callees, returning the
// per-node "definitely assigned at node end" sets.
func (s *solver) mustDefOuts(i int) []StringSet {
	g := s.graphs[i]
	n := len(g.Nodes)
	// out[i] = set of globals definitely assigned on every path from entry
	// to the end of node i. Initialize to top (all globals) except entry.
	out := make([]StringSet, n)
	for ni := range out {
		out[ni] = s.globals.Clone()
	}
	out[g.Entry.ID] = StringSet{}

	gen := func(node *cfg.Node) StringSet {
		gs := StringSet{}
		if node.Stmt == nil {
			return gs
		}
		switch x := node.Stmt.(type) {
		case *lang.AssignStmt:
			if s.globals[x.LHS] {
				gs[x.LHS] = true
			}
		case *lang.ScanfStmt:
			if s.globals[x.Var] {
				gs[x.Var] = true
			}
		case *lang.CallStmt:
			if s.globals[x.Target] {
				gs[x.Target] = true
			}
			callees := calleesOf(s.prog, x, s.addressTaken)
			if len(callees) > 0 {
				meet := s.curMustMod(callees[0]).Clone()
				for _, c := range callees[1:] {
					meet = intersect(meet, s.curMustMod(c))
				}
				for v := range meet {
					gs[v] = true
				}
			}
		}
		return gs
	}

	for changed := true; changed; {
		changed = false
		for ni := 0; ni < n; ni++ {
			node := g.Nodes[ni]
			if node.Kind == cfg.KindEntry {
				continue
			}
			var in StringSet
			first := true
			for _, e := range g.Preds[ni] {
				if e.Pseudo {
					continue
				}
				if first {
					in = out[e.To].Clone()
					first = false
				} else {
					in = intersect(in, out[e.To])
				}
			}
			if first { // unreachable node
				in = s.globals.Clone()
			}
			for v := range gen(node) {
				in[v] = true
			}
			if !in.Equal(out[ni]) {
				out[ni] = in
				changed = true
			}
		}
	}
	return out
}

func intersect(a, b StringSet) StringSet {
	out := StringSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

// addressTakenFuncs returns the functions whose address is taken anywhere in
// the program (assigned to a fnptr), sorted for determinism.
func addressTakenFuncs(prog *lang.Program) []string {
	set := StringSet{}
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			for _, e := range lang.StmtExprs(s) {
				lang.WalkExprs(e, func(x lang.Expr) {
					if fr, ok := x.(*lang.FuncRef); ok {
						set[fr.Name] = true
					}
				})
			}
		}
	}
	return set.Sorted()
}

// calleesOf resolves the possible callees of a call statement: the named
// function for direct calls, or every address-taken function for indirect
// calls.
func calleesOf(prog *lang.Program, c *lang.CallStmt, addressTaken []string) []string {
	if !c.Indirect {
		return []string{c.Callee}
	}
	return addressTaken
}
