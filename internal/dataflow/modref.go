// Package dataflow implements the interprocedural side-effect analyses the
// SDG builder needs: GMOD/GREF (globals a procedure may modify/reference,
// transitively), MustMod (globals a procedure assigns on every terminating
// path), and UEREF (globals it may reference before definitely assigning
// them), in the style of Cooper–Kennedy.
//
// The relations are solved on dense bitsets: every global gets an interned
// ID (Interner), every procedure one []uint64 row per relation, and the
// summary equations become word-wise OR/AND over rows. The equations only
// flow callee → caller, so the solver runs bottom-up over the condensation
// of the call graph: non-recursive components solve in a single pass once
// their callees are final, recursive components iterate their rows to
// fixpoint, and change detection is word comparison. Components at the
// same condensation level share no call edges, so a level's components
// fan out across a worker pool in contiguous chunks balanced by statement
// count — coarse enough that small components don't drown the win in
// scheduling overhead. The fixpoints are unique, which is what keeps the
// result — and everything downstream, vertex numbering included —
// byte-identical no matter the worker count. The map-based solver this
// replaced survives in reference_test.go as the differential oracle.
package dataflow

import (
	"sort"
	"sync"
	"time"

	"specslice/internal/cfg"
	"specslice/internal/lang"
	"specslice/internal/par"
)

// StringSet is a set of variable names — the materialized-view currency of
// the dense relations, kept for oracle tests and non-hot-path consumers.
type StringSet map[string]bool

// Clone returns a copy of s.
func (s StringSet) Clone() StringSet {
	c := make(StringSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// Sorted returns the members in sorted order.
func (s StringSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Equal reports set equality.
func (s StringSet) Equal(o StringSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// ModRefStats records where one mod/ref computation spent its time.
type ModRefStats struct {
	// Intern covers interner construction, the procedure table, and
	// address-taken resolution; Local the per-procedure CFG construction
	// and local def/ref/use bit extraction; Fixpoint the call-graph
	// condensation and the word-wise summary propagation.
	Intern   time.Duration
	Local    time.Duration
	Fixpoint time.Duration
}

// ModRef holds the per-procedure side-effect summaries on dense rows over
// interned global-variable IDs. The four relations are:
//
//   - GMOD: globals a procedure may modify, including through callees;
//   - GREF: globals it may reference, including through callees;
//   - MustMod: globals it definitely assigns on every path from entry to
//     exit, including through callees;
//   - UEREF: globals it may reference before definitely assigning them
//     (upward-exposed references), including through callees. The SDG
//     builder creates formal-in vertices for UEREF ∪ (GMOD − MustMod),
//     matching the paper's MayRef ∪ (MayMod − MustMod) rule (§2.1.1).
//
// The accessor methods returning StringSet are a lazily-materialized view
// (built once, on first use) for oracle tests and cold consumers; the SDG
// builder's hot paths read the precomputed sorted name slices and bit
// tests instead. A ModRef is immutable after construction and safe for
// concurrent readers.
type ModRef struct {
	in    *Interner
	procs []string // procedure names, in program order
	idx   map[string]int
	words int
	top   []uint64 // all interned variables set

	gmod, gref, mustmod, ueref []uint64 // len(procs)×words, flattened

	// Sorted-name views the SDG builder and the build-signature hasher
	// read per skeleton and per call site; precomputed once so no access
	// sorts or allocates.
	formalInNames [][]string
	gmodNames     [][]string
	mustModNames  [][]string

	stats ModRefStats

	viewOnce sync.Once
	view     *modRefView
}

// modRefView is the map materialization of the dense rows.
type modRefView struct {
	gmod, gref, mustmod, ueref map[string]StringSet
}

func (mr *ModRef) row(rel []uint64, i int) []uint64 {
	return rel[i*mr.words : (i+1)*mr.words : (i+1)*mr.words]
}

func (mr *ModRef) materialize() *modRefView {
	mr.viewOnce.Do(func() {
		v := &modRefView{
			gmod:    make(map[string]StringSet, len(mr.procs)),
			gref:    make(map[string]StringSet, len(mr.procs)),
			mustmod: make(map[string]StringSet, len(mr.procs)),
			ueref:   make(map[string]StringSet, len(mr.procs)),
		}
		for i, name := range mr.procs {
			v.gmod[name] = mr.in.decodeSet(mr.row(mr.gmod, i))
			v.gref[name] = mr.in.decodeSet(mr.row(mr.gref, i))
			v.mustmod[name] = mr.in.decodeSet(mr.row(mr.mustmod, i))
			v.ueref[name] = mr.in.decodeSet(mr.row(mr.ueref, i))
		}
		mr.view = v
	})
	return mr.view
}

// GMOD returns fn's may-modify set as a materialized view.
func (mr *ModRef) GMOD(fn string) StringSet { return mr.materialize().gmod[fn] }

// GREF returns fn's may-reference set as a materialized view.
func (mr *ModRef) GREF(fn string) StringSet { return mr.materialize().gref[fn] }

// MustMod returns fn's must-modify set as a materialized view.
func (mr *ModRef) MustMod(fn string) StringSet { return mr.materialize().mustmod[fn] }

// UEREF returns fn's upward-exposed reference set as a materialized view.
func (mr *ModRef) UEREF(fn string) StringSet { return mr.materialize().ueref[fn] }

// FormalInGlobals returns the globals needing formal-in vertices for fn:
// UEREF(fn) ∪ (GMOD(fn) − MustMod(fn)).
func (mr *ModRef) FormalInGlobals(fn string) StringSet {
	out := StringSet{}
	for _, name := range mr.FormalInGlobalNames(fn) {
		out[name] = true
	}
	return out
}

// FormalInGlobalNames returns FormalInGlobals(fn) as a sorted name slice,
// precomputed — the SDG builder's form. Callers must not mutate it.
func (mr *ModRef) FormalInGlobalNames(fn string) []string {
	if i, ok := mr.idx[fn]; ok {
		return mr.formalInNames[i]
	}
	return nil
}

// GMODNames returns GMOD(fn) as a sorted name slice, precomputed. Callers
// must not mutate it.
func (mr *ModRef) GMODNames(fn string) []string {
	if i, ok := mr.idx[fn]; ok {
		return mr.gmodNames[i]
	}
	return nil
}

// MustModNames returns MustMod(fn) as a sorted name slice, precomputed.
// Callers must not mutate it.
func (mr *ModRef) MustModNames(fn string) []string {
	if i, ok := mr.idx[fn]; ok {
		return mr.mustModNames[i]
	}
	return nil
}

// MustModHas reports v ∈ MustMod(fn) by a bit test.
func (mr *ModRef) MustModHas(fn, v string) bool {
	i, ok := mr.idx[fn]
	if !ok {
		return false
	}
	id, ok := mr.in.ID(v)
	if !ok {
		return false
	}
	return mr.row(mr.mustmod, i)[id/64]&(1<<(uint(id)%64)) != 0
}

// Interner returns the global-variable interner the rows are encoded over.
func (mr *ModRef) Interner() *Interner { return mr.in }

// Stats reports the phase timings of the computation that produced mr.
func (mr *ModRef) Stats() ModRefStats { return mr.stats }

// rowsEqualFor reports whether name's four summary rows agree between two
// analyses over the same interner.
func rowsEqualFor(a, b *ModRef, name string) bool {
	ai, aok := a.idx[name]
	bi, bok := b.idx[name]
	if !aok || !bok {
		return aok == bok
	}
	return rowEqual(a.row(a.gmod, ai), b.row(b.gmod, bi)) &&
		rowEqual(a.row(a.gref, ai), b.row(b.gref, bi)) &&
		rowEqual(a.row(a.mustmod, ai), b.row(b.mustmod, bi)) &&
		rowEqual(a.row(a.ueref, ai), b.row(b.ueref, bi))
}

// ComputeModRef computes the four relations for every function,
// single-threaded. Indirect calls are treated conservatively as calls to
// any address-taken function (Andersen-style, flow-insensitive); programs
// transformed by the funcptr package contain no indirect calls and get
// precise results.
func ComputeModRef(prog *lang.Program) *ModRef {
	return computeModRef(prog, prog.Funcs, nil, 1)
}

// ComputeModRefWorkers is ComputeModRef over a worker pool of the given
// size (<= 0 means GOMAXPROCS): the local phase shards procedures and the
// fixpoint phase shards call-graph components at the same condensation
// level, in chunks balanced by statement count. The result is identical
// for every worker count.
func ComputeModRefWorkers(prog *lang.Program, workers int) *ModRef {
	return computeModRef(prog, prog.Funcs, nil, workers)
}

// AdvanceModRef computes newProg's summaries incrementally against a
// previous version: a procedure's four relations depend only on its own
// statements and its (transitive) callees' summaries, so every procedure
// whose call subtree is textually unchanged keeps its old rows, and the
// fixpoints re-run only over the dirty region — the edited procedures and
// their transitive callers. old is only read (its rows are copied, never
// aliased), so the previous version may keep serving concurrently. Falls
// back to a full computation when the global declarations or the
// address-taken function set changed (both are program-wide inputs to
// every summary).
func AdvanceModRef(newProg, oldProg *lang.Program, old *ModRef) *ModRef {
	if old == nil || oldProg == nil {
		return ComputeModRef(newProg)
	}
	return AdvanceModRefDiff(newProg, oldProg, old, lang.DiffPrograms(oldProg, newProg))
}

// AdvanceModRefDiff is AdvanceModRef against a precomputed program diff,
// for callers (sdg.Advance) that already diffed the versions through
// retained per-procedure hashes and should not pay a second print pass.
func AdvanceModRefDiff(newProg, oldProg *lang.Program, old *ModRef, diff lang.ProgramDiff) *ModRef {
	if old == nil || oldProg == nil {
		return ComputeModRef(newProg)
	}
	// The caller-cutoff logic below tracks dependencies through direct
	// calls only, so programs still containing indirect calls (callers
	// invisible in the reverse call graph) get the full recomputation.
	if hasIndirectCalls(newProg) || hasIndirectCalls(oldProg) {
		return ComputeModRef(newProg)
	}
	// Globals unchanged ⇒ the old interner covers the new program, so old
	// rows copy verbatim and the change cutoff is a word comparison.
	if diff.GlobalsChanged || !sameStrings(addressTakenFuncs(oldProg), addressTakenFuncs(newProg)) {
		return ComputeModRef(newProg)
	}

	// Dirty: textually changed or added procedures. Removed procedures
	// need no entry — any caller they had must have changed textually to
	// keep resolving. Callers of dirty procedures join the set lazily,
	// change-driven: only when a dirty procedure's recomputed rows
	// actually differ from its old ones (the common statement edit
	// preserves the summaries, and then no caller is ever reanalyzed).
	dirty := map[string]bool{}
	for _, name := range diff.Changed {
		dirty[name] = true
	}
	for _, name := range diff.Added {
		dirty[name] = true
	}
	oldHas := map[string]bool{}
	for _, fn := range oldProg.Funcs {
		oldHas[fn.Name] = true
	}
	// Reverse call graph of the new program (all calls are direct here —
	// indirect-call programs took the full-recompute path above).
	callers := map[string][]string{}
	for _, fn := range newProg.Funcs {
		seen := map[string]bool{}
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && !c.Indirect && !seen[c.Callee] {
				seen[c.Callee] = true
				callers[c.Callee] = append(callers[c.Callee], fn.Name)
			}
		}
	}

	for {
		var dirtyFns []*lang.FuncDecl
		for _, fn := range newProg.Funcs {
			if dirty[fn.Name] {
				dirtyFns = append(dirtyFns, fn)
			}
		}
		mr := computeModRef(newProg, dirtyFns, old, 1)

		// Cutoff check: if every dirty procedure's rows match its old
		// ones, the callers outside the dirty set — computed against
		// exactly those rows — are still final. Otherwise pull the
		// affected callers in and rerun; the set only grows, so this
		// terminates.
		grew := false
		for _, fn := range dirtyFns {
			name := fn.Name
			if !oldHas[name] || rowsEqualFor(old, mr, name) {
				continue
			}
			for _, caller := range callers[name] {
				if !dirty[caller] {
					dirty[caller] = true
					grew = true
				}
			}
		}
		if !grew {
			return mr
		}
	}
}

// procLocal is the precomputed dataflow view of one procedure being
// solved: its CFG, the direct (callee-independent) effect bits of its
// statements, and its resolved call structure. Extracting this once —
// instead of re-walking the AST on every fixpoint iteration — is where
// most of the dense solver's sequential win comes from.
type procLocal struct {
	graph *cfg.Graph
	size  int // statement count; the chunking weight

	localMod, localRef []uint64 // direct global assignments / references

	genBits []uint64 // nodes×words: direct must-gen bits per CFG node
	useBits []uint64 // nodes×words: direct global uses per CFG node

	// callAt[i] lists the resolved callee procedure indexes of node i
	// (every address-taken procedure for indirect calls), nil for
	// non-call nodes; their MustMod meet and UEREF union are read live
	// from the rows during propagation.
	callAt [][]int

	// preds[i] lists the executable (non-pseudo) predecessors of node i.
	preds [][]int

	callees []int // unique callee proc indexes, ascending (call graph)
}

// solver carries the shared state of one computeModRef run. Rows are
// indexed by program-wide procedure index; a worker only writes the rows
// of its own component and only reads rows of strictly lower condensation
// levels (already final) or its own component, so row access is race-free
// without locks.
type solver struct {
	prog    *lang.Program
	mr      *ModRef
	fns     []*lang.FuncDecl // the dirty subset being solved
	fnProc  []int            // fns index -> procedure index
	solveAt []int            // procedure index -> fns index, -1 if final
	locals  []procLocal      // by fns index
}

// computeModRef solves the four relations over prog. fns is the subset to
// (re)solve; prev supplies final rows, by name, for every procedure
// outside fns (nil means fns covers the whole program). Restricting the
// iteration is sound because the caller keeps the fns set closed under
// callers: every procedure outside fns has final rows in prev, and
// summaries only flow callee → caller. prev must be encoded over the same
// global declarations (the advance path guarantees this by falling back
// to a full computation when globals change).
func computeModRef(prog *lang.Program, fns []*lang.FuncDecl, prev *ModRef, workers int) *ModRef {
	t0 := time.Now()
	var in *Interner
	if prev != nil {
		in = prev.in
	} else {
		in = InternGlobals(prog)
	}
	n := len(prog.Funcs)
	words := in.Words()
	mr := &ModRef{
		in:      in,
		procs:   make([]string, n),
		idx:     make(map[string]int, n),
		words:   words,
		top:     make([]uint64, words),
		gmod:    make([]uint64, n*words),
		gref:    make([]uint64, n*words),
		mustmod: make([]uint64, n*words),
		ueref:   make([]uint64, n*words),
	}
	for id := 0; id < in.Len(); id++ {
		mr.top[id/64] |= 1 << (uint(id) % 64)
	}
	for i, fn := range prog.Funcs {
		mr.procs[i] = fn.Name
		mr.idx[fn.Name] = i
	}

	s := &solver{
		prog:    prog,
		mr:      mr,
		fns:     fns,
		fnProc:  make([]int, len(fns)),
		solveAt: make([]int, n),
		locals:  make([]procLocal, len(fns)),
	}
	for i := range s.solveAt {
		s.solveAt[i] = -1
	}
	for k, fn := range fns {
		pi := mr.idx[fn.Name]
		s.fnProc[k] = pi
		s.solveAt[pi] = k
	}
	// Procedures outside fns keep their previous rows, copied (never
	// aliased — prev may be serving concurrent readers).
	if prev != nil {
		for i, name := range mr.procs {
			if s.solveAt[i] >= 0 {
				continue
			}
			pi := prev.idx[name]
			copy(mr.row(mr.gmod, i), prev.row(prev.gmod, pi))
			copy(mr.row(mr.gref, i), prev.row(prev.gref, pi))
			copy(mr.row(mr.mustmod, i), prev.row(prev.mustmod, pi))
			copy(mr.row(mr.ueref, i), prev.row(prev.ueref, pi))
		}
	}
	addressTaken := resolveAddressTaken(prog, mr.idx)
	tIntern := time.Now()

	if len(fns) > 0 {
		// Local phase: per-procedure CFG + effect-bit extraction, sharded
		// in chunks balanced by statement count.
		sizes := make([]int, len(fns))
		for k, fn := range fns {
			sizes[k] = len(fn.Stmts())
		}
		par.ForWeighted(parWorkers(workers, total(sizes)), len(fns),
			func(k int) int { return sizes[k] },
			func(k int) { s.buildLocal(k, addressTaken) })
	}
	tLocal := time.Now()

	if len(fns) > 0 {
		// Call graph restricted to fns, condensed into SCCs, grouped into
		// levels (level = 1 + max callee level), callees first.
		succs := make([][]int, len(fns))
		for k := range s.locals {
			for _, pi := range s.locals[k].callees {
				if j := s.solveAt[pi]; j >= 0 {
					succs[k] = append(succs[k], j)
				}
			}
		}
		levels := sccLevels(len(fns), succs)

		// Solve levels bottom-up; components within a level are
		// independent (a callee is always strictly lower-level) and fan
		// out in statement-count-balanced chunks.
		for _, comps := range levels {
			comps := comps
			weight := func(ci int) int {
				w := 0
				for _, k := range comps[ci] {
					w += s.locals[k].size
				}
				return w
			}
			lw := 0
			for ci := range comps {
				lw += weight(ci)
			}
			par.ForWeighted(parWorkers(workers, lw), len(comps), weight,
				func(ci int) { s.solveComponent(comps[ci]) })
		}
	}

	// Precompute the sorted-name views the SDG builder reads per skeleton
	// and per call site: FormalInGlobals = UEREF ∪ (GMOD − MustMod).
	mr.formalInNames = make([][]string, n)
	mr.gmodNames = make([][]string, n)
	mr.mustModNames = make([][]string, n)
	scratch := make([]uint64, words)
	for i := 0; i < n; i++ {
		gm := mr.row(mr.gmod, i)
		mm := mr.row(mr.mustmod, i)
		ue := mr.row(mr.ueref, i)
		for w := 0; w < words; w++ {
			scratch[w] = ue[w] | (gm[w] &^ mm[w])
		}
		mr.formalInNames[i] = in.decodeNames(scratch)
		mr.gmodNames[i] = in.decodeNames(gm)
		mr.mustModNames[i] = in.decodeNames(mm)
	}
	tFix := time.Now()
	mr.stats = ModRefStats{
		Intern:   tIntern.Sub(t0),
		Local:    tLocal.Sub(tIntern),
		Fixpoint: tFix.Sub(tLocal),
	}
	return mr
}

// parMinStmts is the statement-count floor below which a phase runs
// inline: fanning a few hundred statements across goroutines costs more
// in scheduling than the word-wise solve itself.
const parMinStmts = 1024

func parWorkers(workers, totalWeight int) int {
	if totalWeight < parMinStmts {
		return 1
	}
	return workers
}

func total(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// buildLocal extracts fns[k]'s CFG and direct effect bits.
func (s *solver) buildLocal(k int, addressTaken []int) {
	fn := s.fns[k]
	mr := s.mr
	words := mr.words
	g := cfg.Build(fn)
	loc := &s.locals[k]
	loc.graph = g
	loc.size = len(fn.Stmts())
	loc.localMod = make([]uint64, words)
	loc.localRef = make([]uint64, words)
	nn := len(g.Nodes)
	loc.genBits = make([]uint64, nn*words)
	loc.useBits = make([]uint64, nn*words)
	loc.callAt = make([][]int, nn)
	loc.preds = make([][]int, nn)
	for ni := range g.Preds {
		for _, e := range g.Preds[ni] {
			if !e.Pseudo {
				loc.preds[ni] = append(loc.preds[ni], e.To)
			}
		}
	}

	// The interner holds exactly the non-fnptr globals, so an ID lookup
	// doubles as the is-global test (name-based, like the map solver: a
	// local shadowing a global's name is treated as the global).
	setVar := func(row []uint64, name string) {
		if id, ok := mr.in.ID(name); ok {
			row[id/64] |= 1 << (uint(id) % 64)
		}
	}
	refExpr := func(row []uint64, e lang.Expr) {
		for _, v := range lang.ExprVars(e) {
			setVar(row, v)
		}
	}

	calleeSet := map[int]bool{}
	for _, node := range g.Nodes {
		if node.Stmt == nil {
			continue
		}
		gen := loc.genBits[node.ID*words : (node.ID+1)*words]
		use := loc.useBits[node.ID*words : (node.ID+1)*words]
		// Direct uses: every global referenced in the node's expressions.
		for _, e := range lang.StmtExprs(node.Stmt) {
			refExpr(use, e)
			refExpr(loc.localRef, e)
		}
		switch x := node.Stmt.(type) {
		case *lang.AssignStmt:
			setVar(gen, x.LHS)
			setVar(loc.localMod, x.LHS)
		case *lang.ScanfStmt:
			setVar(gen, x.Var)
			setVar(loc.localMod, x.Var)
		case *lang.CallStmt:
			setVar(gen, x.Target)
			setVar(loc.localMod, x.Target)
			var callees []int
			if x.Indirect {
				callees = addressTaken
			} else if pi, ok := mr.idx[x.Callee]; ok {
				callees = []int{pi}
			}
			if len(callees) > 0 {
				loc.callAt[node.ID] = callees
				for _, pi := range callees {
					calleeSet[pi] = true
				}
			}
		}
	}
	loc.callees = make([]int, 0, len(calleeSet))
	for pi := range calleeSet {
		loc.callees = append(loc.callees, pi)
	}
	sort.Ints(loc.callees)
}

// sccLevels computes the strongly connected components of the call graph
// (Tarjan, iterative) and groups them by condensation level, lowest
// (callee-most) first. Component member lists and the components within a
// level are in ascending function order, so the schedule is deterministic.
func sccLevels(n int, succs [][]int) [][][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []int
	compOf := [][]int{}
	next := 0

	type frame struct{ v, ci int }
	var frames []frame
	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ci == 0 {
				index[v], low[v] = next, next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ci < len(succs[v]) {
				w := succs[v][f.ci]
				f.ci++
				if index[w] == unvisited {
					frames = append(frames, frame{w, 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			if low[v] == index[v] {
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = len(compOf)
					members = append(members, w)
					if w == v {
						break
					}
				}
				sort.Ints(members)
				compOf = append(compOf, members)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}

	// Level of a component: 1 + max level of callee components.
	level := make([]int, len(compOf))
	maxLevel := 0
	// Tarjan emits components in reverse topological order (callees
	// before callers), so one pass in emission order suffices.
	for ci, members := range compOf {
		lv := 0
		for _, v := range members {
			for _, w := range succs[v] {
				if comp[w] != ci && level[comp[w]]+1 > lv {
					lv = level[comp[w]] + 1
				}
			}
		}
		level[ci] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	out := make([][][]int, maxLevel+1)
	for ci, members := range compOf {
		out[level[ci]] = append(out[level[ci]], members)
	}
	for _, comps := range out {
		sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	}
	return out
}

// solveComponent runs the three summary fixpoints over one SCC (members
// are fns indexes), reading already-final callee rows from lower levels
// and writing the component members' rows. Non-recursive components
// converge in a single pass of each analysis.
func (s *solver) solveComponent(members []int) {
	mr := s.mr
	words := mr.words
	recursive := len(members) > 1
	if !recursive {
		k := members[0]
		pi := s.fnProc[k]
		for _, c := range s.locals[k].callees {
			if c == pi {
				recursive = true
				break
			}
		}
	}

	// GMOD/GREF: least fixed point, growing. Rows start at the direct
	// effects; each pass ORs in the callee rows word-wise.
	for _, k := range members {
		pi := s.fnProc[k]
		copy(mr.row(mr.gmod, pi), s.locals[k].localMod)
		copy(mr.row(mr.gref, pi), s.locals[k].localRef)
	}
	for {
		changed := false
		for _, k := range members {
			pi := s.fnProc[k]
			gm := mr.row(mr.gmod, pi)
			gr := mr.row(mr.gref, pi)
			for _, callees := range s.locals[k].callAt {
				for _, c := range callees {
					if orInto(gm, mr.row(mr.gmod, c)) {
						changed = true
					}
					if orInto(gr, mr.row(mr.gref, c)) {
						changed = true
					}
				}
			}
		}
		if !recursive || !changed {
			break
		}
	}

	// MustMod: greatest fixed point, shrinking. Needs a per-function
	// forward must-analysis over the executable CFG; recursive components
	// re-run it until the exit rows stabilize.
	outs := make([][]uint64, len(members))
	for mi, k := range members {
		pi := s.fnProc[k]
		copy(mr.row(mr.mustmod, pi), mr.top) // top; shrinks to greatest fixed point
		outs[mi] = make([]uint64, len(s.locals[k].graph.Nodes)*words)
	}
	for {
		changed := false
		for mi, k := range members {
			pi := s.fnProc[k]
			s.mustDefOuts(k, outs[mi])
			got := outs[mi][s.locals[k].graph.Exit.ID*words : (s.locals[k].graph.Exit.ID+1)*words]
			cur := mr.row(mr.mustmod, pi)
			if !rowEqual(got, cur) {
				copy(cur, got)
				changed = true
			}
		}
		if !recursive || !changed {
			break
		}
	}
	// Recompute the per-node outs once against the converged MustMod rows;
	// the UEREF phase reads them as its kill information.
	if recursive {
		for mi, k := range members {
			s.mustDefOuts(k, outs[mi])
		}
	}

	// UEREF: least fixed point, growing. A global is upward-exposed in fn
	// if some node uses it (directly, or via a callee's UEREF) at a point
	// where it is not yet definitely assigned.
	in := make([]uint64, words)
	uses := make([]uint64, words)
	for {
		changed := false
		for mi, k := range members {
			loc := &s.locals[k]
			pi := s.fnProc[k]
			ue := mr.row(mr.ueref, pi)
			out := outs[mi]
			// A node's uses: its direct global references plus, for call
			// nodes, the callees' upward-exposed sets.
			for ni := range loc.graph.Nodes {
				copy(uses, loc.useBits[ni*words:(ni+1)*words])
				for _, c := range loc.callAt[ni] {
					orInto(uses, mr.row(mr.ueref, c))
				}
				if rowIsEmpty(uses) {
					continue
				}
				s.mustDefIn(loc, out, ni, in)
				for w := 0; w < words; w++ {
					if n := ue[w] | (uses[w] &^ in[w]); n != ue[w] {
						ue[w] = n
						changed = true
					}
				}
			}
		}
		if !recursive || !changed {
			break
		}
	}
}

// mustDefIn computes, into in, the set of globals definitely assigned
// before node ni begins: the meet (AND) over its executable predecessors'
// out rows; ⊥ for the entry, ⊤ for unreachable nodes.
func (s *solver) mustDefIn(loc *procLocal, outs []uint64, ni int, in []uint64) {
	words := s.mr.words
	if loc.graph.Nodes[ni].Kind == cfg.KindEntry {
		for w := range in {
			in[w] = 0
		}
		return
	}
	preds := loc.preds[ni]
	if len(preds) == 0 {
		copy(in, s.mr.top) // unreachable
		return
	}
	copy(in, outs[preds[0]*words:(preds[0]+1)*words])
	for _, p := range preds[1:] {
		andInto(in, outs[p*words:(p+1)*words])
	}
}

// mustDefOuts runs the intraprocedural forward must-assigned analysis for
// fns[k] using the current MustMod rows for callees, filling the per-node
// "definitely assigned at node end" rows (nodes×words) in outs.
func (s *solver) mustDefOuts(k int, outs []uint64) {
	mr := s.mr
	words := mr.words
	loc := &s.locals[k]
	g := loc.graph
	n := len(g.Nodes)
	// out[i] = globals definitely assigned on every path from entry to the
	// end of node i. Initialize to top (all globals) except entry.
	for ni := 0; ni < n; ni++ {
		row := outs[ni*words : (ni+1)*words]
		if g.Nodes[ni].Kind == cfg.KindEntry {
			for w := range row {
				row[w] = 0
			}
		} else {
			copy(row, mr.top)
		}
	}

	in := make([]uint64, words)
	meet := make([]uint64, words)
	for changed := true; changed; {
		changed = false
		for ni := 0; ni < n; ni++ {
			if g.Nodes[ni].Kind == cfg.KindEntry {
				continue
			}
			s.mustDefIn(loc, outs, ni, in)
			// gen: the node's direct definite assignments, plus — for call
			// nodes — the meet of the callees' MustMod rows.
			gen := loc.genBits[ni*words : (ni+1)*words]
			for w := 0; w < words; w++ {
				in[w] |= gen[w]
			}
			if callees := loc.callAt[ni]; len(callees) > 0 {
				copy(meet, mr.row(mr.mustmod, callees[0]))
				for _, c := range callees[1:] {
					andInto(meet, mr.row(mr.mustmod, c))
				}
				for w := 0; w < words; w++ {
					in[w] |= meet[w]
				}
			}
			row := outs[ni*words : (ni+1)*words]
			if !rowEqual(in, row) {
				copy(row, in)
				changed = true
			}
		}
	}
}

func hasIndirectCalls(prog *lang.Program) bool {
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			if c, ok := s.(*lang.CallStmt); ok && c.Indirect {
				return true
			}
		}
	}
	return false
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addressTakenFuncs returns the functions whose address is taken anywhere in
// the program (assigned to a fnptr), sorted for determinism.
func addressTakenFuncs(prog *lang.Program) []string {
	set := StringSet{}
	for _, fn := range prog.Funcs {
		for _, s := range fn.Stmts() {
			for _, e := range lang.StmtExprs(s) {
				lang.WalkExprs(e, func(x lang.Expr) {
					if fr, ok := x.(*lang.FuncRef); ok {
						set[fr.Name] = true
					}
				})
			}
		}
	}
	return set.Sorted()
}

// resolveAddressTaken maps the address-taken function names to procedure
// indexes (dropping names with no declaration, as the map view did).
func resolveAddressTaken(prog *lang.Program, idx map[string]int) []int {
	names := addressTakenFuncs(prog)
	out := make([]int, 0, len(names))
	for _, name := range names {
		if pi, ok := idx[name]; ok {
			out = append(out, pi)
		}
	}
	return out
}
