package experiments

import (
	"strings"
	"testing"

	"specslice/internal/workload"
)

func TestRunSuiteProducesAllMetrics(t *testing.T) {
	cfg := workload.SmallBenchmarks()[0]
	res, err := RunSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) == 0 {
		t.Fatal("no slices taken")
	}
	for i, s := range res.Slices {
		if s.ClosureVertices == 0 || s.PolyVertices == 0 || s.MonoVertices == 0 {
			t.Errorf("slice %d has zero sizes: %+v", i, s)
		}
		if s.PolyVertices < s.ClosureVertices {
			t.Errorf("slice %d: polyvariant size %d below closure %d (violates completeness)",
				i, s.PolyVertices, s.ClosureVertices)
		}
		if s.MonoVertices < s.ClosureVertices {
			t.Errorf("slice %d: monovariant size %d below closure %d", i, s.MonoVertices, s.ClosureVertices)
		}
		if len(s.VariantCounts) == 0 {
			t.Errorf("slice %d: no variants recorded", i)
		}
	}
}

// TestDistributionShape checks the paper's Fig. 18 qualitative claims on
// the small suites: the vast majority of procedures get a single version
// and the version count stays in single digits.
func TestDistributionShape(t *testing.T) {
	results, err := RunAll(workload.SmallBenchmarks())
	if err != nil {
		t.Fatal(err)
	}
	single, multi, maxVersions := 0, 0, 0
	for _, r := range results {
		for _, s := range r.Slices {
			for _, n := range s.VariantCounts {
				if n == 1 {
					single++
				} else {
					multi++
				}
				if n > maxVersions {
					maxVersions = n
				}
			}
		}
	}
	frac := float64(single) / float64(single+multi)
	if frac < 0.80 {
		t.Errorf("single-version share = %.1f%%, want ≥ 80%% (paper: 90.6%%)", 100*frac)
	}
	if maxVersions > 9 {
		t.Errorf("max versions = %d, want single digits (paper max: 6)", maxVersions)
	}
	if multi == 0 {
		t.Error("no multi-version procedures at all; the suite should exercise specialization")
	}
}

// TestGrowthShape checks Fig. 19's qualitative claims: modest growth over
// the closure slice, with polyvariant replication at least matching the
// monovariant extras overall.
func TestGrowthShape(t *testing.T) {
	results, err := RunAll(workload.SmallBenchmarks())
	if err != nil {
		t.Fatal(err)
	}
	var mono, poly []float64
	for _, r := range results {
		for _, s := range r.Slices {
			mono = append(mono, s.MonoPctIncrease)
			poly = append(poly, s.PolyPctIncrease)
			if s.MonoPctIncrease < 0 || s.PolyPctIncrease < 0 {
				t.Errorf("%s: negative growth (mono %.1f, poly %.1f)", r.Config.Name, s.MonoPctIncrease, s.PolyPctIncrease)
			}
		}
	}
	gm, gp := GeoMean(mono), GeoMean(poly)
	if gm > 25 || gp > 30 {
		t.Errorf("growth too large: mono %.1f%%, poly %.1f%% (paper: 7.1%%, 9.4%%)", gm, gp)
	}
	if gp < gm {
		t.Errorf("polyvariant growth %.1f%% below monovariant %.1f%%; paper has poly ≥ mono", gp, gm)
	}
	if gp == 0 {
		t.Error("no replication at all; suites should exercise specialization")
	}
}

func TestFig13TableExponential(t *testing.T) {
	out := Fig13Table(5)
	if !strings.Contains(out, "31") { // 2^5 − 1
		t.Errorf("fig13 table missing 2^5−1 = 31:\n%s", out)
	}
}

func TestWcTableSpeedup(t *testing.T) {
	out := WcTable()
	if strings.Contains(out, "error") {
		t.Fatalf("wc table failed:\n%s", out)
	}
	if !strings.Contains(out, "geomean") {
		t.Errorf("wc table incomplete:\n%s", out)
	}
}

func TestTablesRender(t *testing.T) {
	results, err := RunAll(workload.SmallBenchmarks()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for name, table := range map[string]string{
		"fig17": Fig17(results), "fig18": Fig18(results), "fig19": Fig19(results),
		"fig20": Fig20(results), "fig21": Fig21(results), "fig22": Fig22(results),
		"det": DeterminizeTable(results),
	} {
		if len(strings.Split(table, "\n")) < 3 {
			t.Errorf("table %s too short:\n%s", name, table)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{0, 0, 0}); g != 0 {
		t.Errorf("GeoMean(zeros) = %f", g)
	}
	// 10% and 21% compose to ~15.4% ((1.1*1.21)^(1/2)-1).
	g := GeoMean([]float64{10, 21})
	if g < 15.3 || g > 15.5 {
		t.Errorf("GeoMean(10,21) = %f, want ~15.4", g)
	}
}
