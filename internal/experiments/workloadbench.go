package experiments

import (
	"fmt"
	"runtime"
	"time"

	"specslice/internal/loadgen"
)

// RunWorkloads fills eb.Workloads: every registered loadgen scenario at
// its default rate, each against its own fresh in-process server over the
// real HTTP slice path. Scenarios run sequentially so their latency tails
// do not contaminate each other. The seed fixes the whole run — corpus,
// edit streams, Poisson arrivals, and Zipf draws — so equal (duration,
// seed) arguments replay comparable runs across commits.
func (eb *EngineBench) RunWorkloads(duration time.Duration, seed int64) error {
	for _, sc := range loadgen.Scenarios() {
		// The bench phases before this block leave a large dead heap; on a
		// small box the collector working through it steals enough CPU to
		// inflate the measured serving tail several-fold. Collect up front
		// so each scenario's tail is its own.
		runtime.GC()
		sched, err := loadgen.BuildSchedule(sc, 0, duration, seed)
		if err != nil {
			return fmt.Errorf("experiments: %s schedule: %w", sc.Name, err)
		}
		rep, err := loadgen.RunInProcess(sched, loadgen.Options{})
		if err != nil {
			return fmt.Errorf("experiments: %s run: %w", sc.Name, err)
		}
		eb.Workloads = append(eb.Workloads, *rep)
	}
	// Routed mode: the same read_heavy schedule through the
	// coordinator/router at 1 shard (the router's own overhead) and at
	// RoutedShards shards (the scaling configuration). Identical
	// schedules, so the rows are comparable to the direct read_heavy row
	// above; CI gates errors == 0 and a live forward count on every
	// shard.
	sc, err := loadgen.ScenarioByName("read_heavy")
	if err != nil {
		return err
	}
	for _, shards := range []int{1, RoutedShards} {
		runtime.GC()
		sched, err := loadgen.BuildSchedule(sc, 0, duration, seed)
		if err != nil {
			return fmt.Errorf("experiments: routed %s schedule: %w", sc.Name, err)
		}
		rep, err := loadgen.RunRouted(sched, shards, loadgen.Options{})
		if err != nil {
			return fmt.Errorf("experiments: routed %s run (%d shards): %w", sc.Name, shards, err)
		}
		eb.Workloads = append(eb.Workloads, *rep)
	}
	return nil
}

// RoutedShards is the multi-shard routed configuration's worker count.
// Four shards is enough to make imbalance and remap bugs visible while
// keeping the BENCH run cheap on small CI runners.
const RoutedShards = 4
