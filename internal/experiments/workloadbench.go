package experiments

import (
	"fmt"
	"time"

	"specslice/internal/loadgen"
)

// RunWorkloads fills eb.Workloads: every registered loadgen scenario at
// its default rate, each against its own fresh in-process server over the
// real HTTP slice path. Scenarios run sequentially so their latency tails
// do not contaminate each other. The seed fixes the whole run — corpus,
// edit streams, Poisson arrivals, and Zipf draws — so equal (duration,
// seed) arguments replay comparable runs across commits.
func (eb *EngineBench) RunWorkloads(duration time.Duration, seed int64) error {
	for _, sc := range loadgen.Scenarios() {
		sched, err := loadgen.BuildSchedule(sc, 0, duration, seed)
		if err != nil {
			return fmt.Errorf("experiments: %s schedule: %w", sc.Name, err)
		}
		rep, err := loadgen.RunInProcess(sched, loadgen.Options{})
		if err != nil {
			return fmt.Errorf("experiments: %s run: %w", sc.Name, err)
		}
		eb.Workloads = append(eb.Workloads, *rep)
	}
	return nil
}
