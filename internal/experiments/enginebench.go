package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"specslice/internal/core"
	"specslice/internal/engine"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// PhaseNs is the per-request automaton-pipeline breakdown (paper Fig. 21)
// of the warm loop, in nanoseconds per op. Automaton covers the fused
// reverse/determinize/minimize/reverse chain; Determinize and Minimize are
// its sub-phases as reported by fsa.MRD.
type PhaseNs struct {
	Prestar     float64 `json:"prestar"`
	Automaton   float64 `json:"automaton"`
	Determinize float64 `json:"automaton_determinize"`
	Minimize    float64 `json:"automaton_minimize"`
	Readout     float64 `json:"readout"`
}

// EngineBench is the machine-readable engine-amortization measurement
// written by `experiments -json`: cold (one-shot, rebuild everything) vs.
// warm (engine-cached) polyvariant slices on the Fig. 14 workload, and
// sequential one-shot vs. batch SliceAll over many criteria on a Siemens
// suite. Future PRs track the perf trajectory through these numbers.
type EngineBench struct {
	GeneratedAt     string   `json:"generated_at,omitempty"`
	GoMaxProcs      int      `json:"gomaxprocs"`
	Iterations      int      `json:"iterations"`
	ColdNsPerOp     float64  `json:"cold_ns_per_op"`
	WarmNsPerOp     float64  `json:"warm_ns_per_op"`
	WarmSpeedup     float64  `json:"warm_speedup"`
	WarmAllocsPerOp float64  `json:"warm_allocs_per_op"`
	WarmBytesPerOp  float64  `json:"warm_bytes_per_op"`
	WarmPhases      *PhaseNs `json:"warm_phase_ns,omitempty"`
	BatchSuite      string   `json:"batch_suite"`
	BatchSize       int      `json:"batch_size"`
	SeqNs           int64    `json:"batch_sequential_ns"`
	BatchNs         int64    `json:"batch_parallel_ns"`
	BatchSpeedup    float64  `json:"batch_speedup"`
	// WorkersRequested is the -workers flag value (0 = GOMAXPROCS);
	// Workers is the pool size SliceAll actually used.
	WorkersRequested int `json:"batch_workers_requested"`
	Workers          int `json:"batch_workers"`
	// Incremental measurements: a chain of single-procedure edits on the
	// AdvanceSuite program, each version analyzed both by Engine.Advance
	// from the previous version and by a from-scratch build, warmed either
	// way. AdvanceSpeedup = advance_cold_ns_per_op / incremental_ns_per_op
	// (the PR gate requires >= 3x on tcas).
	AdvanceSuite       string  `json:"advance_suite"`
	AdvanceEdits       int     `json:"advance_edits"`
	IncrementalNsPerOp float64 `json:"incremental_ns_per_op"`
	AdvanceColdNsPerOp float64 `json:"advance_cold_ns_per_op"`
	AdvanceSpeedup     float64 `json:"advance_speedup"`
}

func specOf(vs []sdg.VertexID) core.Configs {
	out := make(core.Configs, 0, len(vs))
	for _, v := range vs {
		out = append(out, core.Config{Vertex: v})
	}
	return out
}

// RunEngineBench measures cold vs. warm slicing and sequential vs. batch
// throughput, with iters iterations per timed loop and the given SliceAll
// worker-pool size (0 = GOMAXPROCS).
func RunEngineBench(iters, workers int) (*EngineBench, error) {
	if iters <= 0 {
		iters = 20
	}
	eb := &EngineBench{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Iterations:       iters,
		WorkersRequested: workers,
	}

	// Cold: the one-shot pipeline rebuilds the SDG and its encoding for
	// every request (the paper's Fig. 14 running example).
	prog := workload.Fig1Program()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		g := sdg.MustBuild(prog)
		crit := specOf(core.PrintfCriterion(g, "main"))
		if _, err := core.Specialize(g, crit); err != nil {
			return nil, err
		}
	}
	eb.ColdNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(iters)

	// Warm: one engine serves every request from its caches. The loop also
	// collects the Fig. 21 per-phase breakdown and the allocation rate.
	g := sdg.MustBuild(prog)
	eng := engine.New(g)
	if err := eng.Warm(); err != nil {
		return nil, err
	}
	crit := specOf(core.PrintfCriterion(g, "main"))
	if _, err := eng.Specialize(crit); err != nil {
		return nil, err
	}
	var phases core.Timings
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		res, err := eng.Specialize(crit)
		if err != nil {
			return nil, err
		}
		phases.Add(res.Timings)
	}
	warm := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	eb.WarmNsPerOp = float64(warm.Nanoseconds()) / float64(iters)
	eb.WarmAllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	eb.WarmBytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
	if eb.WarmNsPerOp > 0 {
		eb.WarmSpeedup = eb.ColdNsPerOp / eb.WarmNsPerOp
	}
	per := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(iters) }
	eb.WarmPhases = &PhaseNs{
		Prestar:     per(phases.Prestar),
		Automaton:   per(phases.AutomatonOps),
		Determinize: per(phases.AutomatonDeterminize),
		Minimize:    per(phases.AutomatonMinimize),
		Readout:     per(phases.Readout),
	}

	// Batch: ≥16 criteria over one Siemens-sized suite, sequential one-shot
	// vs. SliceAll through the shared engine.
	cfg := workload.SmallBenchmarks()[0]
	eb.BatchSuite = cfg.Name
	bprog := workload.Generate(cfg)
	bg := sdg.MustBuild(bprog)
	var seeds [][]sdg.VertexID
	for _, s := range bg.Sites {
		if s.Lib && s.Callee == "printf" && len(s.ActualIns) > 0 &&
			bg.Procs[s.CallerProc].Name == "main" {
			seeds = append(seeds, s.ActualIns)
		}
	}
	const batchSize = 16
	var crits [][]sdg.VertexID
	for i := 0; len(crits) < batchSize; i++ {
		crits = append(crits, seeds[i%len(seeds)])
	}
	eb.BatchSize = len(crits)

	t0 = time.Now()
	for _, c := range crits {
		gg := sdg.MustBuild(bprog)
		if _, err := core.Specialize(gg, specOf(c)); err != nil {
			return nil, err
		}
	}
	eb.SeqNs = time.Since(t0).Nanoseconds()

	beng := engine.New(bg)
	reqs := make([]engine.Request, len(crits))
	for i, c := range crits {
		reqs[i] = engine.Request{Mode: engine.ModePoly, Spec: specOf(c)}
	}
	t0 = time.Now()
	resps, stats := beng.SliceAll(reqs, engine.BatchOptions{Workers: workers})
	eb.BatchNs = time.Since(t0).Nanoseconds()
	eb.Workers = stats.Workers
	for _, r := range resps {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	if eb.BatchNs > 0 {
		eb.BatchSpeedup = float64(eb.SeqNs) / float64(eb.BatchNs)
	}

	// Incremental: a chain of single-procedure edits on the tcas-sized
	// suite. Each version is analyzed twice — advanced from the previous
	// version's warmed engine, and cold-built from scratch — and both
	// paths are warmed (summary edges, encoding, reachable automaton), so
	// the ratio is end-to-end time-to-first-slice.
	tc := workload.Benchmarks()[0] // tcas
	eb.AdvanceSuite = tc.Name
	baseSrc := workload.GenerateSource(tc)
	const anchor = "int acc = a0 + a1 + a2;"
	if !strings.Contains(baseSrc, anchor) {
		return nil, fmt.Errorf("experiments: advance anchor %q not in %s suite", anchor, tc.Name)
	}
	edits := iters
	if edits > 12 {
		edits = 12
	}
	eb.AdvanceEdits = edits
	cur := engine.New(sdg.MustBuild(lang.MustParse(baseSrc)))
	if err := cur.Warm(); err != nil {
		return nil, err
	}
	var incrNs, coldNs int64
	for k := 1; k <= edits; k++ {
		editedSrc := strings.Replace(baseSrc, anchor, fmt.Sprintf("int acc = a0 + a1 + a2 + %d;", k), 1)
		advProg := lang.MustParse(editedSrc)
		coldProg := lang.MustParse(editedSrc)

		t0 = time.Now()
		adv, _, err := cur.Advance(advProg)
		if err != nil {
			return nil, err
		}
		if err := adv.Warm(); err != nil {
			return nil, err
		}
		incrNs += time.Since(t0).Nanoseconds()

		t0 = time.Now()
		cold := engine.New(sdg.MustBuild(coldProg))
		if err := cold.Warm(); err != nil {
			return nil, err
		}
		coldNs += time.Since(t0).Nanoseconds()

		cur = adv
	}
	eb.IncrementalNsPerOp = float64(incrNs) / float64(edits)
	eb.AdvanceColdNsPerOp = float64(coldNs) / float64(edits)
	if eb.IncrementalNsPerOp > 0 {
		eb.AdvanceSpeedup = eb.AdvanceColdNsPerOp / eb.IncrementalNsPerOp
	}
	return eb, nil
}

// WriteJSON writes the measurement to path (e.g. BENCH_engine.json).
func (eb *EngineBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(eb, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
