package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"specslice/internal/core"
	"specslice/internal/engine"
	"specslice/internal/lang"
	"specslice/internal/loadgen"
	"specslice/internal/par"
	"specslice/internal/sdg"
	"specslice/internal/store"
	"specslice/internal/workload"
)

// PhaseNs is the per-request automaton-pipeline breakdown (paper Fig. 21)
// of the warm loop, in nanoseconds per op. Automaton covers the fused
// reverse/determinize/minimize/reverse chain; Determinize and Minimize are
// its sub-phases as reported by fsa.MRD.
type PhaseNs struct {
	Prestar     float64 `json:"prestar"`
	Automaton   float64 `json:"automaton"`
	Determinize float64 `json:"automaton_determinize"`
	Minimize    float64 `json:"automaton_minimize"`
	Readout     float64 `json:"readout"`
}

// EngineBench is the machine-readable engine-amortization measurement
// written by `experiments -json`: cold (one-shot, rebuild everything) vs.
// warm (engine-cached) polyvariant slices on the Fig. 14 workload, and
// sequential one-shot vs. batch SliceAll over many criteria on a Siemens
// suite. Future PRs track the perf trajectory through these numbers.
type EngineBench struct {
	GeneratedAt     string   `json:"generated_at,omitempty"`
	GoMaxProcs      int      `json:"gomaxprocs"`
	Iterations      int      `json:"iterations"`
	ColdNsPerOp     float64  `json:"cold_ns_per_op"`
	WarmNsPerOp     float64  `json:"warm_ns_per_op"`
	WarmSpeedup     float64  `json:"warm_speedup"`
	WarmAllocsPerOp float64  `json:"warm_allocs_per_op"`
	WarmBytesPerOp  float64  `json:"warm_bytes_per_op"`
	WarmPhases      *PhaseNs `json:"warm_phase_ns,omitempty"`
	BatchSuite      string   `json:"batch_suite"`
	BatchSize       int      `json:"batch_size"`
	SeqNs           int64    `json:"batch_sequential_ns"`
	BatchNs         int64    `json:"batch_parallel_ns"`
	BatchSpeedup    float64  `json:"batch_speedup"`
	// WorkersRequested is the -workers flag value with the 0-means-
	// GOMAXPROCS default already resolved (so the JSON never reports a
	// meaningless 0); Workers is the pool size SliceAll actually used.
	WorkersRequested int `json:"batch_workers_requested"`
	Workers          int `json:"batch_workers"`
	// Incremental measurements: a chain of single-procedure edits on the
	// AdvanceSuite program, each version analyzed both by Engine.Advance
	// from the previous version and by a from-scratch sequential build
	// (workers pinned to 1, so the ratio measures algorithmic
	// incrementality, not core count), warmed either way.
	// AdvanceSpeedup = advance_cold_ns_per_op / incremental_ns_per_op;
	// the PR gate requires >= 1.2x on the gzip suite. (The suite moved
	// from tcas when the dense readout work landed: on a 9-procedure
	// program the per-version fixed costs dominate both paths, and the
	// ratio stops measuring incrementality. The gate dropped from 3x
	// when the bitset mod/ref solver cut the cold build ~12x — both
	// paths are now dominated by the shared engine warm-up, so the
	// honest ratio sits around 1.4-1.5x; see README.)
	AdvanceSuite       string  `json:"advance_suite"`
	AdvanceEdits       int     `json:"advance_edits"`
	IncrementalNsPerOp float64 `json:"incremental_ns_per_op"`
	AdvanceColdNsPerOp float64 `json:"advance_cold_ns_per_op"`
	AdvanceSpeedup     float64 `json:"advance_speedup"`

	// Readout isolation: the Alg. 1 lines 9–24 phase re-run alone against
	// a warm engine's A6, with results released back to the pool each
	// iteration — the serving configuration. The alloc rate is the PR gate
	// (<= 8/op) for the arena-backed readout.
	ReadoutNsPerOp     float64 `json:"readout_ns_per_op"`
	ReadoutAllocsPerOp float64 `json:"readout_allocs_per_op"`

	// Fixed-concurrency sweeps, modeled on storage-engine benchmark
	// workloads: the same batch (and the same cold gzip build) at worker
	// counts 1, 2, and 4, so the JSON carries real parallel data points
	// instead of a single GOMAXPROCS-dependent row. Each entry records
	// the effective GOMAXPROCS during its own measurement: a 4-worker
	// row timed on a 1-core runner is not a parallel data point, and the
	// reader can tell.
	BatchNsByWorkers     map[string]WorkerSweepEntry `json:"batch_ns_by_workers"`
	ColdBuildNsByWorkers map[string]WorkerSweepEntry `json:"cold_build_ns_by_workers"`
	// ColdBuildParallelSpeedup = cold build at 1 worker / at 4 workers.
	// null unless the 4-worker row really had >= 4 processors available —
	// a speedup "measured" on fewer cores is scheduler noise, not
	// parallelism, and must not satisfy (or fail) the CI gate.
	ColdBuildParallelSpeedup *float64 `json:"cold_build_parallel_speedup"`
	// ColdBuildPhases breaks the sequential (1-worker) tcas build into
	// its phases, in ns/op.
	ColdBuildPhases *BuildPhaseNs `json:"cold_build_phase_ns"`

	// Persistence: SnapshotEncodeNs is one engine.Snapshot() of the warmed
	// gzip engine (what the write-behind persister pays per build);
	// WarmFromDiskNsPerOp is decode+warm from those snapshot bytes — the
	// restart path — which CI gates below AdvanceColdNsPerOp, the
	// 1-worker build+warm of the same-scale program it replaces;
	// RestartRecoveryNs is a store.Open over segments holding that
	// snapshot, i.e. the CRC scan + WAL replay a restarted server pays
	// before its first request.
	SnapshotEncodeNs    int64   `json:"snapshot_encode_ns"`
	WarmFromDiskNsPerOp float64 `json:"warm_from_disk_ns_per_op"`
	RestartRecoveryNs   int64   `json:"restart_recovery_ns"`

	// Workloads holds one tail-latency report per loadgen scenario
	// (read_heavy, write_heavy, balanced): an open-loop Zipfian schedule
	// driven over the real HTTP slice path against a fresh in-process
	// server. Filled by RunWorkloads; CI gates errors == 0 on every entry
	// and a smoke-level p99 bound on read_heavy.
	Workloads []loadgen.Report `json:"workloads"`
}

// WorkerSweepEntry is one row of a fixed-concurrency sweep: the
// measured time plus the effective GOMAXPROCS while it ran.
type WorkerSweepEntry struct {
	Ns         int64 `json:"ns"`
	GoMaxProcs int   `json:"gomaxprocs"`
}

// BuildPhaseNs is the cold-build phase breakdown (sdg.BuildStats) in
// nanoseconds per build. The modref_* keys split the mod/ref phase into
// the dense solver's sub-phases: variable interning, per-procedure
// local effect extraction, and the bottom-up fixpoint over the
// call-graph condensation (their sum is below modref, which also
// covers build-signature hashing).
type BuildPhaseNs struct {
	ModRef         float64 `json:"modref"`
	ModRefIntern   float64 `json:"modref_intern"`
	ModRefLocal    float64 `json:"modref_local"`
	ModRefFixpoint float64 `json:"modref_fixpoint"`
	PDG            float64 `json:"pdg"`
	Connect        float64 `json:"connect"`
}

// benchConfig returns the named workload configuration.
func benchConfig(name string) workload.BenchConfig {
	for _, c := range workload.Benchmarks() {
		if c.Name == name {
			return c
		}
	}
	panic("experiments: unknown bench suite " + name)
}

func specOf(vs []sdg.VertexID) core.Configs {
	out := make(core.Configs, 0, len(vs))
	for _, v := range vs {
		out = append(out, core.Config{Vertex: v})
	}
	return out
}

// RunEngineBench measures cold vs. warm slicing and sequential vs. batch
// throughput, with iters iterations per timed loop and the given SliceAll
// worker-pool size (0 = GOMAXPROCS).
func RunEngineBench(iters, workers int) (*EngineBench, error) {
	if iters <= 0 {
		iters = 20
	}
	eb := &EngineBench{
		GeneratedAt:      time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Iterations:       iters,
		WorkersRequested: par.Workers(workers),
	}

	// Cold: the one-shot pipeline rebuilds the SDG and its encoding for
	// every request (the paper's Fig. 14 running example).
	prog := workload.Fig1Program()
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		g := sdg.MustBuild(prog)
		crit := specOf(core.PrintfCriterion(g, "main"))
		if _, err := core.Specialize(g, crit); err != nil {
			return nil, err
		}
	}
	eb.ColdNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(iters)

	// Warm: one engine serves every request from its caches, releasing
	// each result's pooled graph storage the way the HTTP service does.
	// The loop also collects the Fig. 21 per-phase breakdown and the
	// allocation rate.
	g := sdg.MustBuild(prog)
	eng := engine.New(g)
	if err := eng.Warm(); err != nil {
		return nil, err
	}
	crit := specOf(core.PrintfCriterion(g, "main"))
	warmup, err := eng.Specialize(crit)
	if err != nil {
		return nil, err
	}
	var phases core.Timings
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 = time.Now()
	for i := 0; i < iters; i++ {
		res, err := eng.Specialize(crit)
		if err != nil {
			return nil, err
		}
		phases.Add(res.Timings)
		res.Release()
	}
	warm := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	eb.WarmNsPerOp = float64(warm.Nanoseconds()) / float64(iters)
	eb.WarmAllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(iters)
	eb.WarmBytesPerOp = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(iters)
	if eb.WarmNsPerOp > 0 {
		eb.WarmSpeedup = eb.ColdNsPerOp / eb.WarmNsPerOp
	}
	per := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / float64(iters) }
	eb.WarmPhases = &PhaseNs{
		Prestar:     per(phases.Prestar),
		Automaton:   per(phases.AutomatonOps),
		Determinize: per(phases.AutomatonDeterminize),
		Minimize:    per(phases.AutomatonMinimize),
		Readout:     per(phases.Readout),
	}

	// Readout isolation: re-run only Alg. 1 lines 9–24 against the warm
	// result's A6, releasing each rebuilt result — the steady state a
	// slicing service reaches once the arenas are pooled.
	roIters := 4 * iters
	for i := 0; i < 8; i++ { // pool warm-up
		r2, err := core.ReadoutOnly(warmup)
		if err != nil {
			return nil, err
		}
		r2.Release()
	}
	runtime.ReadMemStats(&ms0)
	t0 = time.Now()
	for i := 0; i < roIters; i++ {
		r2, err := core.ReadoutOnly(warmup)
		if err != nil {
			return nil, err
		}
		r2.Release()
	}
	eb.ReadoutNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(roIters)
	runtime.ReadMemStats(&ms1)
	eb.ReadoutAllocsPerOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(roIters)
	warmup.Release()

	// Batch: ≥16 criteria over one Siemens-sized suite, sequential one-shot
	// vs. SliceAll through the shared engine.
	cfg := workload.SmallBenchmarks()[0]
	eb.BatchSuite = cfg.Name
	bprog := workload.Generate(cfg)
	bg := sdg.MustBuild(bprog)
	var seeds [][]sdg.VertexID
	for _, s := range bg.Sites {
		if s.Lib && s.Callee == "printf" && len(s.ActualIns) > 0 &&
			bg.Procs[s.CallerProc].Name == "main" {
			seeds = append(seeds, s.ActualIns)
		}
	}
	const batchSize = 16
	var crits [][]sdg.VertexID
	for i := 0; len(crits) < batchSize; i++ {
		crits = append(crits, seeds[i%len(seeds)])
	}
	eb.BatchSize = len(crits)

	t0 = time.Now()
	for _, c := range crits {
		gg := sdg.MustBuild(bprog)
		if _, err := core.Specialize(gg, specOf(c)); err != nil {
			return nil, err
		}
	}
	eb.SeqNs = time.Since(t0).Nanoseconds()

	beng := engine.New(bg)
	reqs := make([]engine.Request, len(crits))
	for i, c := range crits {
		reqs[i] = engine.Request{Mode: engine.ModePoly, Spec: specOf(c)}
	}
	t0 = time.Now()
	resps, stats := beng.SliceAll(reqs, engine.BatchOptions{Workers: workers})
	eb.BatchNs = time.Since(t0).Nanoseconds()
	eb.Workers = stats.Workers
	for _, r := range resps {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	if eb.BatchNs > 0 {
		eb.BatchSpeedup = float64(eb.SeqNs) / float64(eb.BatchNs)
	}

	// Fixed-concurrency sweep of the warm batch through SliceAll at 1, 2,
	// and 4 workers. Worker counts are explicit, not GOMAXPROCS, so the
	// rows stay comparable across machines; whether they *speed anything
	// up* still depends on available cores (gomaxprocs records that).
	sweep := []int{1, 2, 4}
	eb.BatchNsByWorkers = map[string]WorkerSweepEntry{}
	for _, w := range sweep {
		t0 = time.Now()
		resps, _ := beng.SliceAll(reqs, engine.BatchOptions{Workers: w})
		eb.BatchNsByWorkers[fmt.Sprint(w)] = WorkerSweepEntry{
			Ns:         time.Since(t0).Nanoseconds(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
		}
		for _, r := range resps {
			if r.Err != nil {
				return nil, r.Err
			}
		}
	}

	// Cold-build sweep on the gzip suite (97 procedures — wide enough
	// call-graph levels that the procedure-parallel phases have real work
	// to spread): mod/ref + build signatures + PDG bodies + wiring at
	// fixed worker counts.
	gzProg := lang.MustParse(workload.GenerateSource(benchConfig("gzip")))
	const coldIters = 3
	eb.ColdBuildNsByWorkers = map[string]WorkerSweepEntry{}
	for _, w := range sweep {
		t0 = time.Now()
		for i := 0; i < coldIters; i++ {
			sdg.MustBuildWorkers(gzProg, w)
		}
		eb.ColdBuildNsByWorkers[fmt.Sprint(w)] = WorkerSweepEntry{
			Ns:         time.Since(t0).Nanoseconds() / int64(coldIters),
			GoMaxProcs: runtime.GOMAXPROCS(0),
		}
	}
	// The speedup is only a measurement when the 4-worker row really had
	// 4 processors; on narrower machines it stays null rather than
	// reporting scheduler noise as (anti-)scaling.
	if e4 := eb.ColdBuildNsByWorkers["4"]; e4.Ns > 0 && e4.GoMaxProcs >= 4 {
		sp := float64(eb.ColdBuildNsByWorkers["1"].Ns) / float64(e4.Ns)
		eb.ColdBuildParallelSpeedup = &sp
	}
	// Persistence: encode the warmed gzip engine, decode+warm from the
	// snapshot bytes (the restart path), and time a store recovery over
	// segments holding that snapshot.
	snapEng := engine.New(sdg.MustBuildWorkers(gzProg, 1))
	if err := snapEng.Warm(); err != nil {
		return nil, err
	}
	const snapIters = 3
	var snapData []byte
	t0 = time.Now()
	for i := 0; i < snapIters; i++ {
		if snapData, err = snapEng.Snapshot(); err != nil {
			return nil, err
		}
	}
	eb.SnapshotEncodeNs = time.Since(t0).Nanoseconds() / snapIters
	t0 = time.Now()
	for i := 0; i < snapIters; i++ {
		deng, err := engine.FromSnapshot(snapData)
		if err != nil {
			return nil, err
		}
		if err := deng.Warm(); err != nil {
			return nil, err
		}
	}
	eb.WarmFromDiskNsPerOp = float64(time.Since(t0).Nanoseconds()) / float64(snapIters)

	mfs := store.NewMemFS()
	st, err := store.Open("bench", store.Options{FS: mfs})
	if err != nil {
		return nil, err
	}
	if err := st.Put("gzip", "gzip-fam", snapData); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	t0 = time.Now()
	st2, err := store.Open("bench", store.Options{FS: mfs})
	if err != nil {
		return nil, err
	}
	eb.RestartRecoveryNs = time.Since(t0).Nanoseconds()
	st2.Close()

	bs := sdg.MustBuildWorkers(gzProg, 1).BuildStats()
	eb.ColdBuildPhases = &BuildPhaseNs{
		ModRef:         float64(bs.ModRef.Nanoseconds()),
		ModRefIntern:   float64(bs.ModRefIntern.Nanoseconds()),
		ModRefLocal:    float64(bs.ModRefLocal.Nanoseconds()),
		ModRefFixpoint: float64(bs.ModRefFixpoint.Nanoseconds()),
		PDG:            float64(bs.PDG.Nanoseconds()),
		Connect:        float64(bs.Connect.Nanoseconds()),
	}

	// Incremental: a chain of single-procedure edits on the gzip suite
	// (97 procedures — the scale where incrementality matters; on the
	// 9-procedure tcas the per-version fixed costs dominate both paths
	// and the ratio mostly measures noise). Each version is analyzed
	// twice — advanced from the previous version's warmed engine, and
	// cold-built from scratch — and both paths are warmed (summary edges,
	// encoding, reachable automaton), so the ratio is end-to-end
	// time-to-first-slice.
	tc := benchConfig("gzip")
	eb.AdvanceSuite = tc.Name
	baseSrc := workload.GenerateSource(tc)
	const anchor = "int acc = a0 + a1 + a2;"
	if !strings.Contains(baseSrc, anchor) {
		return nil, fmt.Errorf("experiments: advance anchor %q not in %s suite", anchor, tc.Name)
	}
	edits := iters
	if edits > 12 {
		edits = 12
	}
	eb.AdvanceEdits = edits
	cur := engine.New(sdg.MustBuild(lang.MustParse(baseSrc)))
	if err := cur.Warm(); err != nil {
		return nil, err
	}
	var incrNs, coldNs int64
	for k := 1; k <= edits; k++ {
		editedSrc := strings.Replace(baseSrc, anchor, fmt.Sprintf("int acc = a0 + a1 + a2 + %d;", k), 1)
		advProg := lang.MustParse(editedSrc)
		coldProg := lang.MustParse(editedSrc)

		t0 = time.Now()
		adv, _, err := cur.Advance(advProg)
		if err != nil {
			return nil, err
		}
		if err := adv.Warm(); err != nil {
			return nil, err
		}
		incrNs += time.Since(t0).Nanoseconds()

		// The cold baseline is pinned to one worker: the ratio measures
		// what Advance avoids recomputing, not how many cores the machine
		// happens to have (the parallel story is cold_build_ns_by_workers).
		t0 = time.Now()
		cold := engine.New(sdg.MustBuildWorkers(coldProg, 1))
		if err := cold.Warm(); err != nil {
			return nil, err
		}
		coldNs += time.Since(t0).Nanoseconds()

		cur = adv
	}
	eb.IncrementalNsPerOp = float64(incrNs) / float64(edits)
	eb.AdvanceColdNsPerOp = float64(coldNs) / float64(edits)
	if eb.IncrementalNsPerOp > 0 {
		eb.AdvanceSpeedup = eb.AdvanceColdNsPerOp / eb.IncrementalNsPerOp
	}
	return eb, nil
}

// WriteJSON writes the measurement to path (e.g. BENCH_engine.json).
func (eb *EngineBench) WriteJSON(path string) error {
	data, err := json.MarshalIndent(eb, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
