package experiments

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// engineBenchRequiredKeys is the BENCH_engine.json schema contract: CI
// regenerates the file on every push and fails if any of these keys
// disappears, so perf trajectories stay machine-comparable across PRs.
// Adding keys is fine; removing or renaming one must update this list,
// the CI check, and README's schema documentation together.
var engineBenchRequiredKeys = []string{
	"gomaxprocs",
	"iterations",
	"cold_ns_per_op",
	"warm_ns_per_op",
	"warm_speedup",
	"warm_allocs_per_op",
	"warm_bytes_per_op",
	"batch_suite",
	"batch_size",
	"batch_sequential_ns",
	"batch_parallel_ns",
	"batch_speedup",
	"batch_workers_requested",
	"batch_workers",
	"advance_suite",
	"advance_edits",
	"incremental_ns_per_op",
	"advance_cold_ns_per_op",
	"advance_speedup",
	"readout_ns_per_op",
	"readout_allocs_per_op",
	"batch_ns_by_workers",
	"cold_build_ns_by_workers",
	"cold_build_parallel_speedup",
	"cold_build_phase_ns",
	"snapshot_encode_ns",
	"warm_from_disk_ns_per_op",
	"restart_recovery_ns",
	"workloads",
}

func TestEngineBenchSchemaKeys(t *testing.T) {
	// A zero-value EngineBench must already serialize every required key:
	// none of them may be omitempty, or a failed sub-measurement would
	// silently drop fields CI depends on.
	data, err := json.Marshal(&EngineBench{})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range engineBenchRequiredKeys {
		if _, ok := m[k]; !ok {
			t.Errorf("BENCH_engine.json schema regressed: key %q missing", k)
		}
	}
}

// TestRunWorkloadsSmoke runs the BENCH workloads block end to end at a
// short duration: one report per registered scenario, zero request errors
// (every scheduled criterion must resolve), and live monotone quantiles.
func TestRunWorkloadsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("workload smoke is not -short")
	}
	eb := &EngineBench{}
	if err := eb.RunWorkloads(time.Second, 1); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"read_heavy": true, "write_heavy": true, "balanced": true,
		"read_heavy_routed_1":                             true,
		fmt.Sprintf("read_heavy_routed_%d", RoutedShards): true,
	}
	if len(eb.Workloads) != len(want) {
		t.Fatalf("%d workload reports, want %d", len(eb.Workloads), len(want))
	}
	for _, w := range eb.Workloads {
		if !want[w.Name] {
			t.Errorf("unexpected workload %q", w.Name)
		}
		delete(want, w.Name)
		// Routed rows must carry the shard evidence: one forward counter
		// per shard, summing to at least the completed ops. At this smoke
		// duration the Zipf tail may never schedule a cold family, so a
		// multi-shard run only has to spread past a single shard — the
		// all-shards-busy balance check lives in loadgen's 2s acceptance
		// test (TestRunRoutedReadHeavy).
		if w.Shards > 0 {
			if len(w.ShardRouted) != w.Shards {
				t.Errorf("%s: shard_routed has %d entries, want %d", w.Name, len(w.ShardRouted), w.Shards)
			}
			var busy int
			var forwards int64
			for _, n := range w.ShardRouted {
				if n > 0 {
					busy++
				}
				forwards += n
			}
			// Ops counts completed requests including 429s, which never
			// reach a shard — only the non-shed remainder must forward.
			if forwards < w.Ops-w.ServerShed {
				t.Errorf("%s: forwards %d < completed ops %d - sheds %d",
					w.Name, forwards, w.Ops, w.ServerShed)
			}
			if w.Shards > 1 && busy < 2 {
				t.Errorf("%s: only %d of %d shards received forwards", w.Name, busy, w.Shards)
			}
		}
		if w.Errors != 0 {
			t.Errorf("%s: %d request errors, want 0", w.Name, w.Errors)
		}
		if w.Ops == 0 || w.AchievedOpsPerSec <= 0 {
			t.Errorf("%s: no completed ops: %+v", w.Name, w)
		}
		if w.P50NS <= 0 || w.P50NS > w.P99NS || w.P99NS > w.P999NS {
			t.Errorf("%s: quantiles not positive and monotone: p50=%d p99=%d p999=%d",
				w.Name, w.P50NS, w.P99NS, w.P999NS)
		}
		if w.Cache.Hits+w.Cache.Misses != w.Ops-w.ServerShed {
			t.Errorf("%s: cache delta hits %d + misses %d != ops %d - sheds %d",
				w.Name, w.Cache.Hits, w.Cache.Misses, w.Ops, w.ServerShed)
		}
	}
}

// TestRunEngineBenchSmoke runs one tiny iteration end to end, checking the
// incremental measurement produces sane values (a real speedup ratio, not
// NaN/zero placeholders).
func TestRunEngineBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is not -short")
	}
	eb, err := RunEngineBench(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eb.AdvanceSuite != "gzip" || eb.AdvanceEdits < 1 {
		t.Errorf("advance suite/edits = %q/%d", eb.AdvanceSuite, eb.AdvanceEdits)
	}
	if eb.IncrementalNsPerOp <= 0 || eb.AdvanceColdNsPerOp <= 0 {
		t.Errorf("incremental %v / cold %v ns per op not measured", eb.IncrementalNsPerOp, eb.AdvanceColdNsPerOp)
	}
	if eb.AdvanceSpeedup <= 0 {
		t.Errorf("advance speedup = %v, want > 0", eb.AdvanceSpeedup)
	}
	if eb.ReadoutNsPerOp <= 0 {
		t.Errorf("readout ns per op = %v, want > 0", eb.ReadoutNsPerOp)
	}
	if eb.ReadoutAllocsPerOp > 8 {
		t.Errorf("readout allocs per op = %v, want <= 8 (arena-backed readout regressed)", eb.ReadoutAllocsPerOp)
	}
	for _, w := range []string{"1", "2", "4"} {
		if eb.BatchNsByWorkers[w].Ns <= 0 || eb.ColdBuildNsByWorkers[w].Ns <= 0 {
			t.Errorf("worker sweep row %q missing: batch=%v cold=%v", w, eb.BatchNsByWorkers[w], eb.ColdBuildNsByWorkers[w])
		}
		if eb.BatchNsByWorkers[w].GoMaxProcs <= 0 || eb.ColdBuildNsByWorkers[w].GoMaxProcs <= 0 {
			t.Errorf("worker sweep row %q lacks its effective gomaxprocs: batch=%v cold=%v", w, eb.BatchNsByWorkers[w], eb.ColdBuildNsByWorkers[w])
		}
	}
	// Honest parallel reporting: the speedup exists iff the 4-worker row
	// really had >= 4 processors; otherwise it must be null, never a
	// number measured on fewer cores.
	if eb.ColdBuildNsByWorkers["4"].GoMaxProcs >= 4 {
		if eb.ColdBuildParallelSpeedup == nil || *eb.ColdBuildParallelSpeedup <= 0 {
			t.Errorf("cold build parallel speedup = %v, want > 0 at gomaxprocs >= 4", eb.ColdBuildParallelSpeedup)
		}
	} else if eb.ColdBuildParallelSpeedup != nil {
		t.Errorf("cold build parallel speedup = %v at gomaxprocs < 4, want null", *eb.ColdBuildParallelSpeedup)
	}
	if eb.WorkersRequested <= 0 {
		t.Errorf("batch_workers_requested = %d, want the resolved pool size, not the raw flag", eb.WorkersRequested)
	}
	if eb.ColdBuildPhases == nil || eb.ColdBuildPhases.ModRef <= 0 {
		t.Errorf("cold build phases not measured: %+v", eb.ColdBuildPhases)
	}
	if eb.ColdBuildPhases != nil && (eb.ColdBuildPhases.ModRefLocal <= 0 || eb.ColdBuildPhases.ModRefFixpoint <= 0) {
		t.Errorf("mod/ref sub-phases not measured: %+v", eb.ColdBuildPhases)
	}
	if eb.SnapshotEncodeNs <= 0 || eb.WarmFromDiskNsPerOp <= 0 || eb.RestartRecoveryNs <= 0 {
		t.Errorf("persistence metrics not measured: encode=%d disk=%v recovery=%d",
			eb.SnapshotEncodeNs, eb.WarmFromDiskNsPerOp, eb.RestartRecoveryNs)
	}
	// The whole point of the disk tier: loading a snapshot beats rebuilding.
	if eb.WarmFromDiskNsPerOp >= eb.AdvanceColdNsPerOp {
		t.Errorf("disk-warm load %.0fns not faster than sequential cold build %.0fns",
			eb.WarmFromDiskNsPerOp, eb.AdvanceColdNsPerOp)
	}
}
