// Package experiments regenerates every table and figure of the paper's
// evaluation (§8, Figs. 17–22), the §4.2 determinize observation, the §4.3
// exponential family, and the §5 wc speed-up measurement. Each table
// renders as text rows matching the paper's columns; EXPERIMENTS.md records
// paper-vs-measured values.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/interp"
	"specslice/internal/lang"
	"specslice/internal/mono"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// SliceResult holds the measurements of one slice of one suite.
type SliceResult struct {
	Criterion string

	ClosureVertices int
	MonoVertices    int // closure + added-back extras
	PolyVertices    int // slice elements, counting replicas
	MonoPctIncrease float64
	PolyPctIncrease float64

	VariantCounts map[string]int

	MonoTime     time.Duration
	PolyTime     time.Duration
	AutomatonOps time.Duration

	MonoAllocBytes uint64
	PolyAllocBytes uint64
	AutoAllocBytes uint64

	StatesBeforeDeterminize int
	StatesAfterDeterminize  int

	// PerProcPoly maps each specialized variant to its share (%) of the
	// original PDG's vertices; PerProcMono likewise per procedure.
	PerProcPoly []ProcPoint
	PerProcMono map[string]float64
}

// ProcPoint is one Fig.-20 scatter point.
type ProcPoint struct {
	Proc    string
	PolyPct float64
	MonoPct float64
	IsExtra bool // an extra copy beyond the first
}

// SuiteResult holds one benchmark suite's measurements.
type SuiteResult struct {
	Config      workload.BenchConfig
	SourceLines int
	Stats       sdg.Stats
	Slices      []SliceResult
}

// RunSuite generates the suite, builds its SDG, and takes every slice.
func RunSuite(cfg workload.BenchConfig) (*SuiteResult, error) {
	src := workload.GenerateSource(cfg)
	prog := lang.MustParse(src)
	g := sdg.MustBuild(prog)
	res := &SuiteResult{
		Config:      cfg,
		SourceLines: strings.Count(src, "\n"),
		Stats:       g.Statistics(),
	}

	var criteria [][]sdg.VertexID
	for _, s := range g.Sites {
		if s.Lib && s.Callee == "printf" && g.Procs[s.CallerProc].Name == "main" {
			criteria = append(criteria, append([]sdg.VertexID(nil), s.ActualIns...))
		}
	}
	for i, crit := range criteria {
		sr, err := runSlice(prog, crit, fmt.Sprintf("printf#%d", i))
		if err != nil {
			return nil, fmt.Errorf("%s slice %d: %w", cfg.Name, i, err)
		}
		res.Slices = append(res.Slices, *sr)
	}
	return res, nil
}

// runSlice measures one criterion with both algorithms. The graph is
// rebuilt per algorithm so summary edges and timings don't leak between
// measurements.
func runSlice(prog *lang.Program, critTemplate []sdg.VertexID, name string) (*SliceResult, error) {
	sr := &SliceResult{Criterion: name, VariantCounts: map[string]int{}, PerProcMono: map[string]float64{}}

	// Monovariant measurement.
	gm := sdg.MustBuild(prog)
	a0 := allocated()
	t0 := time.Now()
	mres := mono.Binkley(gm, critTemplate)
	if _, err := emit.Program(gm, mres.Variants()); err != nil {
		return nil, fmt.Errorf("mono emit: %w", err)
	}
	sr.MonoTime = time.Since(t0)
	sr.MonoAllocBytes = allocated() - a0
	sr.ClosureVertices = len(mres.Closure)
	sr.MonoVertices = len(mres.Slice)

	origSizes := map[string]int{}
	for _, p := range gm.Procs {
		origSizes[p.Name] = len(p.Vertices)
	}
	monoSizes := mres.PerProcSizes()
	for proc, n := range monoSizes {
		sr.PerProcMono[proc] = 100 * float64(n) / float64(origSizes[proc])
	}

	// Polyvariant measurement (fresh graph: no summary edges).
	gp := sdg.MustBuild(prog)
	var cfgs core.Configs
	for _, v := range critTemplate {
		cfgs = append(cfgs, core.Config{Vertex: v})
	}
	a1 := allocated()
	t1 := time.Now()
	pres, err := core.Specialize(gp, cfgs)
	if err != nil {
		return nil, err
	}
	if _, err := emit.Program(gp, pres.Variants()); err != nil {
		return nil, fmt.Errorf("poly emit: %w", err)
	}
	sr.PolyTime = time.Since(t1)
	sr.PolyAllocBytes = allocated() - a1
	sr.AutomatonOps = pres.Timings.AutomatonOps + pres.Timings.Prestar
	sr.PolyVertices = len(pres.R.Vertices)
	sr.VariantCounts = pres.VariantCounts()
	sr.StatesBeforeDeterminize = pres.StatesBeforeDeterminize
	sr.StatesAfterDeterminize = pres.StatesAfterDeterminize

	seen := map[string]int{}
	for _, rp := range pres.R.Procs {
		orig := rp.Fn.Name
		seen[orig]++
		sr.PerProcPoly = append(sr.PerProcPoly, ProcPoint{
			Proc:    orig,
			PolyPct: 100 * float64(len(rp.Vertices)) / float64(origSizes[orig]),
			MonoPct: sr.PerProcMono[orig],
			IsExtra: seen[orig] > 1,
		})
	}

	if sr.ClosureVertices > 0 {
		sr.MonoPctIncrease = 100 * float64(sr.MonoVertices-sr.ClosureVertices) / float64(sr.ClosureVertices)
		sr.PolyPctIncrease = 100 * float64(sr.PolyVertices-sr.ClosureVertices) / float64(sr.ClosureVertices)
	}
	return sr, nil
}

func allocated() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}

// RunAll runs every configured suite.
func RunAll(cfgs []workload.BenchConfig) ([]*SuiteResult, error) {
	var out []*SuiteResult
	for _, cfg := range cfgs {
		r, err := RunSuite(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// GeoMean computes the geometric mean of (100+x)/100-style ratios the paper
// uses; inputs are percentages, the result is a percentage.
func GeoMean(pcts []float64) float64 {
	if len(pcts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pcts {
		s += math.Log(1 + p/100)
	}
	return 100 * (math.Exp(s/float64(len(pcts))) - 1)
}

// Fig17 renders the test-program table.
func Fig17(results []*SuiteResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 17: test programs\n")
	fmt.Fprintf(&sb, "%-14s %9s %8s %7s %9s %7s %7s\n",
		"Program", "#Versions", "#Lines", "#Procs", "#Vertices", "#Sites", "#Slices")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s %9d %8d %7d %9d %7d %7d\n",
			r.Config.Name, r.Config.Versions, r.SourceLines, r.Stats.Procs,
			r.Stats.Vertices, r.Stats.CallSites, len(r.Slices))
	}
	return sb.String()
}

// Fig18 renders the distribution of specialized-version counts.
func Fig18(results []*SuiteResult) string {
	hist := map[int]int{}
	for _, r := range results {
		for _, s := range r.Slices {
			for _, n := range s.VariantCounts {
				hist[n]++
			}
		}
	}
	var keys []int
	total, multi := 0, 0
	for k, v := range hist {
		keys = append(keys, k)
		total += v
		if k > 1 {
			multi += v
		}
	}
	sort.Ints(keys)
	var sb strings.Builder
	sb.WriteString("Fig. 18: distribution of the number of specialized versions per procedure\n")
	fmt.Fprintf(&sb, "%-10s %s\n", "#Versions", "#Procedures")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%-10d %d\n", k, hist[k])
	}
	if total > 0 {
		fmt.Fprintf(&sb, "single-version procedures: %.1f%% (paper: 90.6%%)\n",
			100*float64(total-multi)/float64(total))
	}
	return sb.String()
}

// Fig19 renders the slice-growth table.
func Fig19(results []*SuiteResult) string {
	var sb strings.Builder
	sb.WriteString("Fig. 19: % increase in #PDG vertices relative to the closure slice\n")
	fmt.Fprintf(&sb, "%-14s %7s %12s %12s\n", "Program", "#Slices", "Mono %incr", "Poly %incr")
	var allMono, allPoly []float64
	for _, r := range results {
		var m, p []float64
		for _, s := range r.Slices {
			m = append(m, s.MonoPctIncrease)
			p = append(p, s.PolyPctIncrease)
		}
		allMono = append(allMono, m...)
		allPoly = append(allPoly, p...)
		fmt.Fprintf(&sb, "%-14s %7d %12.1f %12.1f\n", r.Config.Name, len(r.Slices), mean(m), mean(p))
	}
	fmt.Fprintf(&sb, "%-14s %7s %12.1f %12.1f   (paper geomeans: 7.1 and 9.4)\n",
		"geomean", "", GeoMean(allMono), GeoMean(allPoly))
	return sb.String()
}

// Fig20 renders the per-procedure scatter summary.
func Fig20(results []*SuiteResult) string {
	var ratios []float64
	larger, similar := 0, 0
	var rows []string
	for _, r := range results {
		for _, s := range r.Slices {
			for _, pt := range s.PerProcPoly {
				if pt.MonoPct <= 0 || pt.PolyPct <= 0 {
					continue
				}
				ratios = append(ratios, pt.PolyPct/pt.MonoPct)
				if pt.MonoPct > pt.PolyPct*1.5 {
					larger++
				} else {
					similar++
				}
				if len(rows) < 25 {
					rows = append(rows, fmt.Sprintf("  %-14s %-10s poly=%6.1f%% mono=%6.1f%%",
						r.Config.Name, pt.Proc, pt.PolyPct, pt.MonoPct))
				}
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("Fig. 20: per-procedure sizes, polyvariant vs monovariant (sample of points)\n")
	for _, row := range rows {
		sb.WriteString(row + "\n")
	}
	g := 0.0
	for _, x := range ratios {
		g += math.Log(x)
	}
	if len(ratios) > 0 {
		g = math.Exp(g / float64(len(ratios)))
	}
	fmt.Fprintf(&sb, "points: %d; mono >1.5x poly: %d; geomean(poly%%/mono%%) = %.0f%% (paper: 93%%)\n",
		len(ratios), larger, 100*g)
	return sb.String()
}

// Fig21 renders the timing table.
func Fig21(results []*SuiteResult) string {
	var sb strings.Builder
	sb.WriteString("Fig. 21: slicing times (seconds)\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s %14s\n", "Program", "Mono", "Poly", "PDS+FSA ops")
	var ratios []float64
	for _, r := range results {
		var m, p, a time.Duration
		for _, s := range r.Slices {
			m += s.MonoTime
			p += s.PolyTime
			a += s.AutomatonOps
		}
		n := time.Duration(len(r.Slices))
		if n == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-14s %12.4f %12.4f %14.4f\n",
			r.Config.Name, (m / n).Seconds(), (p / n).Seconds(), (a / n).Seconds())
		if m > 0 {
			ratios = append(ratios, float64(p)/float64(m))
		}
	}
	g := 0.0
	for _, x := range ratios {
		g += math.Log(x)
	}
	if len(ratios) > 0 {
		g = math.Exp(g / float64(len(ratios)))
	}
	fmt.Fprintf(&sb, "poly/mono geomean: %.1fx (paper: 2.7x small suites, 4.7x large)\n", g)
	return sb.String()
}

// Fig22 renders the memory table (allocation during slicing, as the
// platform-neutral analogue of the paper's peak-RSS numbers).
func Fig22(results []*SuiteResult) string {
	var sb strings.Builder
	sb.WriteString("Fig. 22: memory (MB allocated during slicing)\n")
	fmt.Fprintf(&sb, "%-14s %12s %12s\n", "Program", "Mono", "Poly")
	for _, r := range results {
		var m, p uint64
		for _, s := range r.Slices {
			m += s.MonoAllocBytes
			p += s.PolyAllocBytes
		}
		n := uint64(len(r.Slices))
		if n == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-14s %12.2f %12.2f\n",
			r.Config.Name, float64(m/n)/1e6, float64(p/n)/1e6)
	}
	return sb.String()
}

// DeterminizeTable renders the §4.2 observation: determinize shrinks the
// automata arising from Prestar.
func DeterminizeTable(results []*SuiteResult) string {
	var sb strings.Builder
	sb.WriteString("§4.2: determinize input vs output states (paper: output 4.4%–34% smaller)\n")
	fmt.Fprintf(&sb, "%-14s %10s %10s %8s\n", "Program", "Before", "After", "Shrink%")
	for _, r := range results {
		var b, a int
		for _, s := range r.Slices {
			b += s.StatesBeforeDeterminize
			a += s.StatesAfterDeterminize
		}
		if b == 0 {
			continue
		}
		fmt.Fprintf(&sb, "%-14s %10d %10d %8.1f\n", r.Config.Name, b, a, 100*float64(b-a)/float64(b))
	}
	return sb.String()
}

// Fig13Table measures the §4.3 exponential family.
func Fig13Table(maxK int) string {
	var sb strings.Builder
	sb.WriteString("Fig. 13 / §4.3: exponential family Pk (live-global patterns = 2^k − 1)\n")
	fmt.Fprintf(&sb, "%2s %12s %14s %10s\n", "k", "#variants", "2^k−1", "time")
	for k := 1; k <= maxK; k++ {
		g := sdg.MustBuild(workload.PkProgram(k))
		var cfgs core.Configs
		for _, v := range core.PrintfCriterion(g, "main") {
			cfgs = append(cfgs, core.Config{Vertex: v})
		}
		t0 := time.Now()
		res, err := core.Specialize(g, cfgs)
		if err != nil {
			fmt.Fprintf(&sb, "%2d error: %v\n", k, err)
			continue
		}
		fmt.Fprintf(&sb, "%2d %12d %14d %10s\n",
			k, len(res.VariantsOf["Pk"]), (1<<k)-1, time.Since(t0).Round(time.Millisecond))
	}
	return sb.String()
}

// WcTable measures the §5 executable-slice speed-up on the wc-like program:
// steps executed by slices on each printf vs the original.
func WcTable() string {
	var sb strings.Builder
	sb.WriteString("§5: wc executable-slice speed-up (interpreter steps; paper: slices run in 32.5% of original time)\n")
	prog := workload.WcProgram()
	input := workload.WcInput(strings.Repeat("the quick brown fox\njumps over the lazy dog\n", 40))
	orig, err := interp.Run(prog, interp.Options{Input: input})
	if err != nil {
		return err.Error()
	}
	g := sdg.MustBuild(prog)
	var printfs []*sdg.Site
	for _, s := range g.Sites {
		if s.Lib && s.Callee == "printf" {
			printfs = append(printfs, s)
		}
	}
	names := []string{"lines", "words", "chars"}
	var ratios []float64
	for i, site := range printfs {
		var cfgs core.Configs
		for _, v := range site.ActualIns {
			cfgs = append(cfgs, core.Config{Vertex: v})
		}
		res, err := core.Specialize(g, cfgs)
		if err != nil {
			return err.Error()
		}
		out, err := emit.Program(g, res.Variants())
		if err != nil {
			return err.Error()
		}
		run, err := interp.Run(out, interp.Options{Input: input})
		if err != nil {
			return err.Error()
		}
		ratio := 100 * float64(run.Steps) / float64(orig.Steps)
		ratios = append(ratios, ratio)
		fmt.Fprintf(&sb, "slice on printf(%s): %d steps vs %d (%.1f%% of original)\n",
			names[i%len(names)], run.Steps, orig.Steps, ratio)
	}
	g2 := 0.0
	for _, r := range ratios {
		g2 += math.Log(r)
	}
	if len(ratios) > 0 {
		g2 = math.Exp(g2 / float64(len(ratios)))
	}
	fmt.Fprintf(&sb, "geomean: %.1f%% of original steps\n", g2)
	return sb.String()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
