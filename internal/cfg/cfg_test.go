package cfg

import (
	"testing"

	"specslice/internal/lang"
)

func buildFor(t *testing.T, src string) *Graph {
	t.Helper()
	prog := lang.MustParse(src)
	return Build(prog.Func("main"))
}

func nodeOf(t *testing.T, g *Graph, match func(lang.Stmt) bool) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Stmt != nil && match(n.Stmt) {
			return n
		}
	}
	t.Fatal("node not found")
	return nil
}

func isAssignTo(name string) func(lang.Stmt) bool {
	return func(s lang.Stmt) bool {
		a, ok := s.(*lang.AssignStmt)
		return ok && a.LHS == name
	}
}

func TestStraightLine(t *testing.T) {
	g := buildFor(t, `
int a; int b;
int main() {
  a = 1;
  b = 2;
  return 0;
}`)
	// entry -> a=1 -> b=2 -> return -> exit; entry -> exit pseudo.
	na := nodeOf(t, g, isAssignTo("a"))
	nb := nodeOf(t, g, isAssignTo("b"))
	found := false
	for _, e := range g.Succs[na.ID] {
		if e.To == nb.ID && !e.Pseudo {
			found = true
		}
	}
	if !found {
		t.Error("missing edge a=1 -> b=2")
	}
	// Entry has the augmented edge to Exit.
	aug := false
	for _, e := range g.Succs[g.Entry.ID] {
		if e.To == g.Exit.ID && e.Pseudo {
			aug = true
		}
	}
	if !aug {
		t.Error("missing augmented Entry->Exit edge")
	}
}

func TestPostdominatorsDiamond(t *testing.T) {
	g := buildFor(t, `
int a; int b; int c;
int main() {
  if (1) { a = 1; } else { b = 2; }
  c = 3;
  return 0;
}`)
	ipdom := Postdominators(g)
	nc := nodeOf(t, g, isAssignTo("c"))
	na := nodeOf(t, g, isAssignTo("a"))
	nb := nodeOf(t, g, isAssignTo("b"))
	nif := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.IfStmt); return ok })
	if ipdom[na.ID] != nc.ID || ipdom[nb.ID] != nc.ID {
		t.Errorf("ipdom(a)=%d ipdom(b)=%d, want both %d (c)", ipdom[na.ID], ipdom[nb.ID], nc.ID)
	}
	if ipdom[nif.ID] != nc.ID {
		t.Errorf("ipdom(if)=%d, want %d (c joins the branches)", ipdom[nif.ID], nc.ID)
	}
}

func TestControlDepsIfElse(t *testing.T) {
	g := buildFor(t, `
int a; int b; int c;
int main() {
  if (1) { a = 1; } else { b = 2; }
  c = 3;
  return 0;
}`)
	deps := ControlDeps(g)
	nif := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.IfStmt); return ok })
	na := nodeOf(t, g, isAssignTo("a"))
	nc := nodeOf(t, g, isAssignTo("c"))
	if !contains(deps[na.ID], nif.ID) {
		t.Error("a=1 must be control dependent on the if")
	}
	if contains(deps[nc.ID], nif.ID) {
		t.Error("c=3 must not be control dependent on the if (it always executes)")
	}
	if !contains(deps[nc.ID], g.Entry.ID) {
		t.Error("c=3 must be control dependent on Entry")
	}
}

func TestControlDepsLoop(t *testing.T) {
	g := buildFor(t, `
int a;
int main() {
  while (a < 3) {
    a = a + 1;
  }
  return 0;
}`)
	deps := ControlDeps(g)
	nw := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.WhileStmt); return ok })
	na := nodeOf(t, g, isAssignTo("a"))
	if !contains(deps[na.ID], nw.ID) {
		t.Error("loop body must be control dependent on the loop predicate")
	}
}

func TestReturnInBranchControlsSuffix(t *testing.T) {
	// Statements after a conditional return are control dependent on the
	// return (Ball–Horwitz): removing the return would wrongly execute them.
	g := buildFor(t, `
int a; int b;
int main() {
  if (a > 0) { return 1; }
  b = 2;
  return 0;
}`)
	deps := ControlDeps(g)
	nb := nodeOf(t, g, isAssignTo("b"))
	nret := nodeOf(t, g, func(s lang.Stmt) bool {
		r, ok := s.(*lang.ReturnStmt)
		return ok && r.Value != nil && lang.ExprString(r.Value) == "1"
	})
	if !contains(deps[nb.ID], nret.ID) {
		t.Error("b=2 must be control dependent on the early return")
	}
}

func TestBreakAndContinueTargets(t *testing.T) {
	g := buildFor(t, `
int a;
int main() {
  while (1) {
    if (a > 2) { break; }
    if (a > 1) { continue; }
    a = a + 1;
  }
  return 0;
}`)
	nbr := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.BreakStmt); return ok })
	nco := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.ContinueStmt); return ok })
	nw := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.WhileStmt); return ok })
	nret := nodeOf(t, g, func(s lang.Stmt) bool { _, ok := s.(*lang.ReturnStmt); return ok })
	// break's real successor is the return (after the loop).
	real := realSuccs(g, nbr.ID)
	if len(real) != 1 || real[0] != nret.ID {
		t.Errorf("break real succs = %v, want [return %d]", real, nret.ID)
	}
	// continue's real successor is the while predicate.
	real = realSuccs(g, nco.ID)
	if len(real) != 1 || real[0] != nw.ID {
		t.Errorf("continue real succs = %v, want [while %d]", real, nw.ID)
	}
}

func TestEveryNodeReachesExit(t *testing.T) {
	g := buildFor(t, `
int a;
int main() {
  while (1) { a = a + 1; }
  return 0;
}`)
	// On the augmented graph every node postdominates into Exit; the
	// iterative solver must terminate and assign every reachable node.
	ipdom := Postdominators(g)
	for _, n := range g.Nodes {
		if n.ID != g.Exit.ID && ipdom[n.ID] == -1 {
			// Unreachable-from-entry nodes may stay -1; none exist here.
			t.Errorf("node %v has no postdominator", n)
		}
	}
}

func realSuccs(g *Graph, id int) []int {
	var out []int
	for _, e := range g.Succs[id] {
		if !e.Pseudo {
			out = append(out, e.To)
		}
	}
	return out
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
