package cfg

// Postdominators computes the immediate-postdominator array of g (indexed by
// node ID; ipdom[Exit] == Exit). It uses the Cooper–Harvey–Kennedy iterative
// algorithm on the reversed graph, considering both executable and pseudo
// edges (the Ball–Horwitz augmented graph, on which every node reaches Exit).
func Postdominators(g *Graph) []int {
	n := len(g.Nodes)
	// Reverse postorder of the *reversed* graph, rooted at Exit.
	order := make([]int, 0, n) // postorder of reverse graph
	state := make([]int, n)    // 0 unvisited, 1 on stack, 2 done
	type frame struct{ node, next int }
	stack := []frame{{g.Exit.ID, 0}}
	state[g.Exit.ID] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		preds := g.Preds[f.node]
		if f.next < len(preds) {
			p := preds[f.next].To
			f.next++
			if state[p] == 0 {
				state[p] = 1
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		state[f.node] = 2
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	// rpoNum: position in reverse postorder (root first).
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, id := range order {
		rpoNum[id] = len(order) - 1 - i
	}

	ipdom := make([]int, n)
	for i := range ipdom {
		ipdom[i] = -1
	}
	ipdom[g.Exit.ID] = g.Exit.ID

	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = ipdom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = ipdom[b]
			}
		}
		return a
	}

	changed := true
	for changed {
		changed = false
		// Iterate in reverse postorder of the reversed graph (Exit first).
		for i := len(order) - 1; i >= 0; i-- {
			id := order[i]
			if id == g.Exit.ID {
				continue
			}
			newIdom := -1
			for _, e := range g.Succs[id] { // successors are "preds" in reversed graph
				s := e.To
				if rpoNum[s] == -1 || ipdom[s] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != -1 && ipdom[id] != newIdom {
				ipdom[id] = newIdom
				changed = true
			}
		}
	}
	return ipdom
}

// ControlDeps computes control dependences on the augmented CFG via the
// Ferrante–Ottenstein–Warren construction: for each edge u→w where w does
// not postdominate u, every node on the postdominator-tree path from w up to
// (but excluding) ipdom(u) is control dependent on u.
//
// The result maps each node ID to the set of node IDs it is control
// dependent on (its controllers). Every statement node ends up with at least
// one controller (possibly Entry) thanks to the Entry→Exit augmented edge.
func ControlDeps(g *Graph) [][]int {
	ipdom := Postdominators(g)
	deps := make([]map[int]bool, len(g.Nodes))
	for u := range g.Nodes {
		for _, e := range g.Succs[u] {
			w := e.To
			// Walk w up the postdominator tree to ipdom(u), exclusive.
			stop := ipdom[u]
			v := w
			for v != stop && v != -1 {
				if v != u { // a node is not usefully control dependent on itself here
					if deps[v] == nil {
						deps[v] = map[int]bool{}
					}
					deps[v][u] = true
				}
				if v == ipdom[v] {
					break
				}
				v = ipdom[v]
			}
		}
	}
	out := make([][]int, len(g.Nodes))
	for v, m := range deps {
		for u := range m {
			out[v] = append(out[v], u)
		}
	}
	return out
}
