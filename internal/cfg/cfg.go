// Package cfg builds per-procedure control-flow graphs for MicroC and
// computes postdominators and control dependence.
//
// Jump statements (break, continue, return) are handled with the
// Ball–Horwitz augmentation: each jump has its taken edge plus a pseudo
// "fall-through" edge to its lexical successor. Control dependence is
// computed on the augmented graph (so statements guarded by a jump become
// control dependent on it, which executable slicing needs), while dataflow
// clients should traverse only executable (non-pseudo) edges.
package cfg

import (
	"fmt"

	"specslice/internal/lang"
)

// NodeKind classifies CFG nodes.
type NodeKind int

const (
	KindEntry NodeKind = iota
	KindExit
	KindStmt
)

// Node is a CFG node: a statement, or the synthetic Entry/Exit.
type Node struct {
	ID   int
	Kind NodeKind
	Stmt lang.Stmt // nil for Entry/Exit
}

func (n *Node) String() string {
	switch n.Kind {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	default:
		return fmt.Sprintf("n%d", n.ID)
	}
}

// Edge is a directed CFG edge. Pseudo edges exist only for control-dependence
// computation (Ball–Horwitz jump fall-throughs and the Entry→Exit edge).
type Edge struct {
	To     int
	Pseudo bool
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *lang.FuncDecl
	Nodes  []*Node
	Entry  *Node
	Exit   *Node
	Succs  [][]Edge
	Preds  [][]Edge // mirrors Succs
	ByStmt map[lang.NodeID]*Node
}

// Build constructs the CFG of fn.
func Build(fn *lang.FuncDecl) *Graph {
	b := &builder{g: &Graph{Fn: fn, ByStmt: map[lang.NodeID]*Node{}}}
	b.g.Entry = b.newNode(KindEntry, nil)
	b.g.Exit = b.newNode(KindExit, nil)
	first := b.block(fn.Body, b.g.Exit.ID, loopCtx{})
	b.edge(b.g.Entry.ID, first, false)
	// Augmented edge required by Ferrante–Ottenstein–Warren control
	// dependence: Entry acts as a predicate whose false branch skips the
	// whole body.
	b.edge(b.g.Entry.ID, b.g.Exit.ID, true)
	b.g.buildPreds()
	return b.g
}

type loopCtx struct {
	breakTo    int // node after the loop
	continueTo int // loop condition node
	inLoop     bool
}

type builder struct {
	g *Graph
}

func (b *builder) newNode(kind NodeKind, s lang.Stmt) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind, Stmt: s}
	b.g.Nodes = append(b.g.Nodes, n)
	b.g.Succs = append(b.g.Succs, nil)
	if s != nil {
		b.g.ByStmt[s.Base().ID] = n
	}
	return n
}

func (b *builder) edge(from, to int, pseudo bool) {
	for _, e := range b.g.Succs[from] {
		if e.To == to && e.Pseudo == pseudo {
			return
		}
	}
	b.g.Succs[from] = append(b.g.Succs[from], Edge{To: to, Pseudo: pseudo})
}

// block wires stmts so control falls through to next; returns the entry node.
func (b *builder) block(blk *lang.Block, next int, lc loopCtx) int {
	if blk == nil {
		return next
	}
	cur := next
	for i := len(blk.Stmts) - 1; i >= 0; i-- {
		cur = b.stmt(blk.Stmts[i], cur, lc)
	}
	return cur
}

func (b *builder) stmt(s lang.Stmt, next int, lc loopCtx) int {
	switch x := s.(type) {
	case *lang.IfStmt:
		n := b.newNode(KindStmt, s)
		thenEntry := b.block(x.Then, next, lc)
		b.edge(n.ID, thenEntry, false)
		if x.Else != nil {
			elseEntry := b.block(x.Else, next, lc)
			b.edge(n.ID, elseEntry, false)
		} else {
			b.edge(n.ID, next, false)
		}
		return n.ID

	case *lang.WhileStmt:
		n := b.newNode(KindStmt, s)
		inner := loopCtx{breakTo: next, continueTo: n.ID, inLoop: true}
		bodyEntry := b.block(x.Body, n.ID, inner)
		b.edge(n.ID, bodyEntry, false)
		b.edge(n.ID, next, false)
		return n.ID

	case *lang.BreakStmt:
		n := b.newNode(KindStmt, s)
		to := b.g.Exit.ID
		if lc.inLoop {
			to = lc.breakTo
		}
		b.edge(n.ID, to, false)
		if next != to {
			b.edge(n.ID, next, true)
		}
		return n.ID

	case *lang.ContinueStmt:
		n := b.newNode(KindStmt, s)
		to := b.g.Exit.ID
		if lc.inLoop {
			to = lc.continueTo
		}
		b.edge(n.ID, to, false)
		if next != to {
			b.edge(n.ID, next, true)
		}
		return n.ID

	case *lang.ReturnStmt:
		n := b.newNode(KindStmt, s)
		b.edge(n.ID, b.g.Exit.ID, false)
		if next != b.g.Exit.ID {
			b.edge(n.ID, next, true)
		}
		return n.ID

	default:
		n := b.newNode(KindStmt, s)
		b.edge(n.ID, next, false)
		return n.ID
	}
}

func (g *Graph) buildPreds() {
	g.Preds = make([][]Edge, len(g.Nodes))
	for from, es := range g.Succs {
		for _, e := range es {
			g.Preds[e.To] = append(g.Preds[e.To], Edge{To: from, Pseudo: e.Pseudo})
		}
	}
}

// ExecutableSuccs returns the non-pseudo successors of node id.
func (g *Graph) ExecutableSuccs(id int) []int {
	var out []int
	for _, e := range g.Succs[id] {
		if !e.Pseudo {
			out = append(out, e.To)
		}
	}
	return out
}
