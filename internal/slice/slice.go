// Package slice implements closure slicing of SDGs: summary-edge
// computation and the two-phase context-sensitive interprocedural
// backward/forward slicing algorithm of Horwitz, Reps, and Binkley (1990),
// plus a context-insensitive Weiser-style executable slice used as a
// baseline in the paper's §5.
package slice

import (
	"sort"

	"specslice/internal/sdg"
)

// VSet is a set of SDG vertices.
type VSet map[sdg.VertexID]bool

// NewVSet builds a set from vertices.
func NewVSet(vs ...sdg.VertexID) VSet {
	s := VSet{}
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// Sorted returns the members in ascending order.
func (s VSet) Sorted() []sdg.VertexID {
	out := make([]sdg.VertexID, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Equal reports set equality.
func (s VSet) Equal(o VSet) bool {
	if len(s) != len(o) {
		return false
	}
	for v := range s {
		if !o[v] {
			return false
		}
	}
	return true
}

// Clone copies the set.
func (s VSet) Clone() VSet {
	c := make(VSet, len(s))
	for v := range s {
		c[v] = true
	}
	return c
}

// ComputeSummaryEdges adds summary edges (actual-in → actual-out) to g for
// every same-level realizable path from the matching formal-in to the
// matching formal-out, using the HRB worklist algorithm. It is idempotent,
// and a second call on the same graph returns immediately — which also
// makes it safe for concurrent readers once the first call has completed.
func ComputeSummaryEdges(g *sdg.Graph) {
	if g.SummariesComputed() {
		return
	}
	defer g.MarkSummariesComputed()
	summaryFixpoint(g, g.Procs)
}

// ComputeSummaryEdgesPartial completes the summary edges of a graph built
// by sdg.Advance: valid edges inherited from the previous version are
// already present, and only the listed procedures (new-graph indexes,
// sdg.DeltaStats.DirtyProcs) need their formal-out pair propagation
// re-run. Seeding the worklist with just those procedures is sound because
// every call site Advance did not seed has its callee in the dirty set,
// and pair propagation within a clean procedure only ever traverses its
// own PDG plus the (already seeded) summary edges at its sites. Like
// ComputeSummaryEdges, it is idempotent through the graph's
// summaries-computed mark.
func ComputeSummaryEdgesPartial(g *sdg.Graph, procs []int) {
	if g.SummariesComputed() {
		return
	}
	defer g.MarkSummariesComputed()
	seeds := make([]*sdg.Proc, len(procs))
	for i, pi := range procs {
		seeds[i] = g.Procs[pi]
	}
	summaryFixpoint(g, seeds)
}

// summaryFixpoint runs the HRB summary worklist over g, seeding the
// (vertex, formal-out) pairs from the formal-outs of seedProcs.
func summaryFixpoint(g *sdg.Graph, seedProcs []*sdg.Proc) {
	type pair struct {
		v  sdg.VertexID
		fo sdg.VertexID
	}
	seen := map[pair]bool{}
	// pairsFrom[v] lists the formal-outs reachable same-level from v.
	pairsFrom := map[sdg.VertexID][]sdg.VertexID{}
	var work []pair
	add := func(v, fo sdg.VertexID) {
		p := pair{v, fo}
		if seen[p] {
			return
		}
		seen[p] = true
		pairsFrom[v] = append(pairsFrom[v], fo)
		work = append(work, p)
	}

	for _, p := range seedProcs {
		for _, fo := range p.FormalOuts {
			add(fo, fo)
		}
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		vx := g.Vertices[it.v]
		if vx.Kind == sdg.KindFormalIn {
			fi := vx
			fo := g.Vertices[it.fo]
			// The site's matching actuals, by binary search over the
			// shared actual/formal ordering invariant (sdg.Site docs).
			for _, site := range g.SiteCalls(g.Procs[fi.Proc].Name) {
				ai, ok1 := site.ActualInFor(g, fi)
				ao, ok2 := site.ActualOutFor(g, fo)
				if !ok1 || !ok2 {
					continue
				}
				if g.AddEdge(ai, ao, sdg.EdgeSummary) {
					for _, fo2 := range pairsFrom[ao] {
						add(ai, fo2)
					}
				}
			}
		}
		for _, e := range g.In(it.v) {
			switch e.Kind {
			case sdg.EdgeControl, sdg.EdgeFlow, sdg.EdgeSummary:
				add(e.From, it.fo)
			}
		}
	}
}

// Backward computes the context-sensitive backward closure slice of g with
// respect to the criterion vertices, using the HRB two-phase algorithm.
// Summary edges must have been computed (ComputeSummaryEdges).
func Backward(g *sdg.Graph, criterion []sdg.VertexID) VSet {
	// Phase 1: ascend — follow all edges backward except parameter-out.
	phase1 := reach(g, criterion, nil, func(k sdg.EdgeKind) bool {
		return k != sdg.EdgeParamOut
	})
	// Phase 2: descend — follow all edges backward except call and
	// parameter-in.
	phase2 := reach(g, phase1.Sorted(), phase1, func(k sdg.EdgeKind) bool {
		return k != sdg.EdgeCall && k != sdg.EdgeParamIn
	})
	return phase2
}

// Forward computes the context-sensitive forward closure slice: the vertices
// the criterion may affect. Summary edges must have been computed.
func Forward(g *sdg.Graph, criterion []sdg.VertexID) VSet {
	// Phase 1: follow all edges forward except call and parameter-in
	// (do not descend; ascend via parameter-out).
	phase1 := reachFwd(g, criterion, nil, func(k sdg.EdgeKind) bool {
		return k != sdg.EdgeCall && k != sdg.EdgeParamIn
	})
	// Phase 2: follow all edges forward except parameter-out.
	phase2 := reachFwd(g, phase1.Sorted(), phase1, func(k sdg.EdgeKind) bool {
		return k != sdg.EdgeParamOut
	})
	return phase2
}

func reach(g *sdg.Graph, seeds []sdg.VertexID, init VSet, follow func(sdg.EdgeKind) bool) VSet {
	out := VSet{}
	if init != nil {
		out = init.Clone()
	}
	var work []sdg.VertexID
	for _, v := range seeds {
		out[v] = true
		work = append(work, v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.In(v) {
			if !follow(e.Kind) || out[e.From] {
				continue
			}
			out[e.From] = true
			work = append(work, e.From)
		}
	}
	return out
}

func reachFwd(g *sdg.Graph, seeds []sdg.VertexID, init VSet, follow func(sdg.EdgeKind) bool) VSet {
	out := VSet{}
	if init != nil {
		out = init.Clone()
	}
	var work []sdg.VertexID
	for _, v := range seeds {
		out[v] = true
		work = append(work, v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.Out(v) {
			if !follow(e.Kind) || out[e.To] {
				continue
			}
			out[e.To] = true
			work = append(work, e.To)
		}
	}
	return out
}

// Weiser computes a context-insensitive executable backward slice in the
// style of Weiser's algorithm as characterized by Binkley: call-sites are
// atomic (one parameter in the slice pulls in all parameters of the site and
// the callee's full interface), and calling contexts are not distinguished.
func Weiser(g *sdg.Graph, criterion []sdg.VertexID) VSet {
	out := VSet{}
	var work []sdg.VertexID
	push := func(v sdg.VertexID) {
		if !out[v] {
			out[v] = true
			work = append(work, v)
		}
	}
	for _, v := range criterion {
		push(v)
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.In(v) {
			if e.Kind == sdg.EdgeSummary {
				continue // context-insensitive traversal uses real edges only
			}
			push(e.From)
		}
		// Atomicity: any vertex of a call site pulls in the call vertex and
		// every actual parameter of that site.
		vx := g.Vertices[v]
		if vx.Site >= 0 {
			site := g.Sites[vx.Site]
			push(site.CallVertex)
			for _, ai := range site.ActualIns {
				push(ai)
			}
		}
		// A sliced procedure keeps its full declared parameter list.
		if vx.Kind == sdg.KindEntry {
			for _, fi := range g.Procs[vx.Proc].FormalIns {
				push(fi)
			}
		}
	}
	return out
}
