package slice

import (
	"testing"

	"specslice/internal/lang"
	"specslice/internal/sdg"
)

const fig1Src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

// printfCriterion returns the actual-in vertices of the first printf site.
func printfCriterion(g *sdg.Graph) []sdg.VertexID {
	for _, s := range g.Sites {
		if s.Lib && s.Callee == "printf" {
			return append([]sdg.VertexID(nil), s.ActualIns...)
		}
	}
	return nil
}

func labelsIn(g *sdg.Graph, set VSet, proc string) map[string]bool {
	out := map[string]bool{}
	for v := range set {
		vx := g.Vertices[v]
		if g.Procs[vx.Proc].Name == proc {
			out[vx.Kind.String()+":"+vx.Label] = true
		}
	}
	return out
}

// TestBackwardFig1 reproduces the paper's Fig. 1(a)/Fig. 3 closure slice:
// within p, the slice holds {entry, a, b, g1=a, g2=b, g1-out, g2-out} and
// excludes g3=g2 and the g3 formal-out; within main it excludes g2=100.
func TestBackwardFig1(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	ComputeSummaryEdges(g)
	res := Backward(g, printfCriterion(g))

	pl := labelsIn(g, res, "p")
	for _, want := range []string{"entry:p", "formal-in:p: a", "formal-in:p: b", "stmt:g1 = a", "stmt:g2 = b", "formal-out:p: global g1 out", "formal-out:p: global g2 out"} {
		if !pl[want] {
			t.Errorf("slice in p missing %q; have %v", want, pl)
		}
	}
	for _, bad := range []string{"stmt:g3 = g2", "formal-out:p: global g3 out"} {
		if pl[bad] {
			t.Errorf("slice in p wrongly contains %q", bad)
		}
	}

	ml := labelsIn(g, res, "main")
	if ml["stmt:g2 = 100"] {
		t.Error("slice wrongly contains g2 = 100 (killed by MustMod at the first call)")
	}
	if ml["stmt:return 0"] {
		t.Error("slice wrongly contains return 0")
	}
	if !ml["call:call p"] {
		t.Error("slice missing the calls to p")
	}
	if !ml["entry:main"] {
		t.Error("slice missing main's entry")
	}
}

func TestSummaryEdgesFig1(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	ComputeSummaryEdges(g)
	// At each call to p there must be summary edges a→g1-out, b→g2-out,
	// b→g3-out (g3 = g2 = b).
	for _, site := range g.SiteCalls("p") {
		type sk struct{ from, to string }
		have := map[sk]bool{}
		for _, ai := range site.ActualIns {
			for _, e := range g.Out(ai) {
				if e.Kind == sdg.EdgeSummary {
					have[sk{pos(g, ai), g.Vertices[e.To].Var}] = true
				}
			}
		}
		for _, want := range []sk{{"0", "g1"}, {"1", "g2"}, {"1", "g3"}} {
			if !have[want] {
				t.Errorf("site %d missing summary %v; have %v", site.ID, want, have)
			}
		}
		if have[sk{"0", "g2"}] || have[sk{"1", "g1"}] {
			t.Errorf("site %d has spurious summary edges: %v", site.ID, have)
		}
	}
}

func pos(g *sdg.Graph, v sdg.VertexID) string {
	return map[int]string{0: "0", 1: "1"}[g.Vertices[v].Param]
}

func TestSummaryEdgesRecursive(t *testing.T) {
	// add is used transitively by tally through two levels; summary edges
	// must cross the recursion.
	src := `
int g;
int add(int a, int b) { return a + b; }
int wrap(int x) { return add(x, 1); }
int rec(int n) {
  if (n > 0) { return rec(n - 1) + wrap(n); }
  return 0;
}
int main() {
  g = rec(5);
  printf("%d", g);
  return 0;
}
`
	g := sdg.MustBuild(lang.MustParse(src))
	ComputeSummaryEdges(g)
	// rec's call-site on itself must have a summary from actual-in n-1 to
	// the return actual-out.
	for _, site := range g.SiteCalls("rec") {
		found := false
		for _, ai := range site.ActualIns {
			for _, e := range g.Out(ai) {
				if e.Kind == sdg.EdgeSummary && g.Vertices[e.To].IsReturn {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("site %d: no summary to return actual-out", site.ID)
		}
	}
}

func TestBackwardContextSensitivity(t *testing.T) {
	// Classic HRB example: context-insensitive slicing would drag x=1 into
	// the slice of y's printf via the id procedure; the two-phase algorithm
	// must not.
	src := `
int id(int a) { return a; }
int main() {
  int x; int y;
  x = id(1);
  y = id(2);
  printf("%d", y);
  return 0;
}
`
	g := sdg.MustBuild(lang.MustParse(src))
	ComputeSummaryEdges(g)
	res := Backward(g, printfCriterion(g))
	ml := labelsIn(g, res, "main")
	if ml["actual-in:1"] {
		t.Errorf("context-insensitive leakage: literal 1 in slice: %v", ml)
	}
	if !ml["actual-in:2"] {
		t.Errorf("slice missing literal 2: %v", ml)
	}
}

func TestForwardSlice(t *testing.T) {
	src := `
int g; int h;
void both(int a) { g = a; h = a + 1; }
int main() {
  int seed = 7;
  both(seed);
  printf("%d", g);
  printf("%d", h);
  return 0;
}
`
	g := sdg.MustBuild(lang.MustParse(src))
	ComputeSummaryEdges(g)
	var seedV sdg.VertexID = -1
	for _, v := range g.Vertices {
		if v.Label == "seed = 7" {
			seedV = v.ID
		}
	}
	if seedV < 0 {
		t.Fatal("seed vertex not found")
	}
	fwd := Forward(g, []sdg.VertexID{seedV})
	// Forward slice must reach both printf actual-ins.
	hits := 0
	for _, s := range g.Sites {
		if s.Lib {
			for _, ai := range s.ActualIns {
				if fwd[ai] {
					hits++
				}
			}
		}
	}
	if hits != 2 {
		t.Errorf("forward slice reaches %d printf actuals, want 2", hits)
	}
}

func TestWeiserCoarserThanHRB(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	ComputeSummaryEdges(g)
	crit := printfCriterion(g)
	hrb := Backward(g, crit)
	w := Weiser(g, crit)
	for v := range hrb {
		if !w[v] {
			t.Errorf("Weiser slice missing HRB element %s", g.VertexString(v))
		}
	}
	// Weiser must include the mismatched first actuals (atomic call sites).
	count := 0
	for _, site := range g.SiteCalls("p") {
		for _, ai := range site.ActualIns {
			if w[ai] && !hrb[ai] {
				count++
			}
		}
	}
	if count == 0 {
		t.Error("Weiser added no extra actuals; expected atomic call-site expansion")
	}
}

func TestBackwardMonotoneAndClosed(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	ComputeSummaryEdges(g)
	crit := printfCriterion(g)
	s1 := Backward(g, crit)
	// Monotone: a smaller criterion yields a subset.
	small := Backward(g, crit[:1])
	for v := range small {
		if !s1[v] {
			t.Errorf("monotonicity violated at %s", g.VertexString(v))
		}
	}
	// Closed under descend-only traversal: everything reachable backward
	// from the slice via control/flow/summary/param-out is in the slice.
	for v := range s1 {
		for _, e := range g.In(v) {
			switch e.Kind {
			case sdg.EdgeControl, sdg.EdgeFlow, sdg.EdgeSummary, sdg.EdgeParamOut:
				if !s1[e.From] {
					t.Errorf("phase-2 closure violated: %s -> %s", g.VertexString(e.From), g.VertexString(v))
				}
			}
		}
	}
}
