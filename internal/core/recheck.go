package core

import (
	"fmt"

	"specslice/internal/fsa"
	"specslice/internal/sdg"
)

// MCSymbolMap builds the mapping M_C from the output SDG R's symbols (under
// encR, the encoding of R) to the source SDG's symbols (under r.Enc): each
// specialized vertex or call-site maps to the source element it copies.
func (r *Result) MCSymbolMap(encR *Encoding) map[fsa.Symbol]fsa.Symbol {
	m := map[fsa.Symbol]fsa.Symbol{}
	for rv, sv := range r.OriginVertex {
		m[encR.VertexSym(sdg.VertexID(rv))] = r.Enc.VertexSym(sv)
	}
	for rs, ss := range r.OriginSite {
		m[encR.SiteSym(sdg.SiteID(rs))] = r.Enc.SiteSym(ss)
	}
	return m
}

// ReslicingCheck implements the paper's §8.3 self-check: slice the output
// SDG R again, with the criterion carried over through M_C⁻¹ (intersected
// with R's reachable configurations), and verify that the two slices accept
// the same configuration language after mapping R's alphabet back to the
// source's:
//
//	L(A6_S) == L(T_C(A6_R))
//
// A non-nil error means the implementation miscomputed one of the slices.
func (r *Result) ReslicingCheck(spec CriterionSpec) error {
	encR := Encode(r.R)
	mc := r.MCSymbolMap(encR)

	// Criterion automaton C over the source alphabet.
	a0, err := spec.buildQuery(r.Enc)
	if err != nil {
		return err
	}
	c := PAutomatonToFSA(a0)

	// C' = T_C⁻¹(C) ∩ Poststar[P_R](entry_main-of-R).
	cInv := c.InverseRelabel(mc)
	reachR, err := reachableConfigsOf(encR, r.R.Procs[0].Name, r)
	if err != nil {
		return err
	}
	cPrime := fsa.Intersect(cInv, reachR)
	if cPrime.IsEmpty() {
		return fmt.Errorf("core: reslicing criterion is empty after transduction")
	}

	// Slice R.
	a1R := encR.PDS.Prestar(FSAToQuery(cPrime, encR.PDS.NumLocs))
	a6R := PAutomatonToFSA(a1R)

	// Compare L(A6_S) with L(T_C(A6_R)). (A1 and A6 accept the same
	// language, so comparing against A1 is equivalent and cheaper.)
	mapped := a6R.Relabel(mc)
	if !fsa.Equal(r.A1, mapped) {
		return fmt.Errorf("core: reslicing check failed: configuration languages differ")
	}
	return nil
}

// reachableConfigsOf computes Poststar from R's main entry. R's main is the
// variant holding the source main's entry; we locate it via VariantsOf.
func reachableConfigsOf(encR *Encoding, _ string, r *Result) (*fsa.FSA, error) {
	mains := r.VariantsOf["main"]
	if len(mains) == 0 {
		return nil, fmt.Errorf("core: specialized SDG has no main variant")
	}
	// Prefer the variant literally named "main".
	idx := mains[0]
	for _, i := range mains {
		if r.R.Procs[i].Name == "main" {
			idx = i
		}
	}
	entry := r.R.Procs[idx].Entry
	q := fsa.New(encR.PDS.NumLocs)
	f := q.AddState()
	q.SetFinal(f)
	q.Add(0, encR.VertexSym(entry), f)
	post := encR.PDS.Poststar(q)
	return PAutomatonToFSA(post), nil
}
