package core

import (
	"errors"
	"fmt"

	"specslice/internal/fsa"
	"specslice/internal/sdg"
)

// Config is a configuration of the unrolled SDG: a PDG vertex plus the
// stack of pending call-sites, innermost first (the paper writes
// (r23, C3 C1): called from site C3, which was entered from site C1 in
// main).
type Config struct {
	Vertex sdg.VertexID
	Stack  []sdg.SiteID
}

// CriterionSpec describes the slicing criterion as a language of
// configurations; implementations build the query automaton A0.
type CriterionSpec interface {
	buildQuery(e *Encoding) (*fsa.FSA, error)
}

// Configs is an explicit finite criterion: a set of configurations.
type Configs []Config

// Vertices is the common criterion "these PDG vertices, in every calling
// context of the unrolled SDG" (used for the paper's wc and go slices). The
// valid calling contexts are computed with Poststar from main's entry.
type Vertices []sdg.VertexID

// SDGVertices is the SDG-level criterion "these PDG vertices with any stack
// whatsoever" — the direct analogue of classic SDG slicing, where the
// criterion is a vertex, not a configuration. Its stack-configuration slice
// projects onto exactly the HRB closure slice.
type SDGVertices []sdg.VertexID

func (c Configs) buildQuery(e *Encoding) (*fsa.FSA, error) {
	if len(c) == 0 {
		return nil, errors.New("core: empty criterion")
	}
	q := fsa.New(e.PDS.NumLocs)
	final := q.AddState()
	q.SetFinal(final)
	for _, cfg := range c {
		if int(cfg.Vertex) < 0 || int(cfg.Vertex) >= len(e.G.Vertices) {
			return nil, fmt.Errorf("core: criterion vertex %d out of range", cfg.Vertex)
		}
		cur := 0 // control location p
		syms := []fsa.Symbol{e.VertexSym(cfg.Vertex)}
		for _, s := range cfg.Stack {
			if int(s) < 0 || int(s) >= len(e.G.Sites) {
				return nil, fmt.Errorf("core: criterion site %d out of range", s)
			}
			syms = append(syms, e.SiteSym(s))
		}
		for i, sym := range syms {
			var to int
			if i == len(syms)-1 {
				to = final
			} else {
				to = q.AddState()
			}
			q.Add(cur, sym, to)
			cur = to
		}
	}
	return q, nil
}

func (v SDGVertices) buildQuery(e *Encoding) (*fsa.FSA, error) {
	if len(v) == 0 {
		return nil, errors.New("core: empty criterion")
	}
	// Accept v·Σ_sites* for each vertex.
	q := fsa.New(e.PDS.NumLocs)
	q.Reserve(len(v) + len(e.G.Sites))
	final := q.AddState()
	q.SetFinal(final)
	for _, vid := range v {
		q.Add(0, e.VertexSym(vid), final)
	}
	for _, s := range e.G.Sites {
		q.Add(final, e.SiteSym(s.ID), final)
	}
	return q, nil
}

func (v Vertices) buildQuery(e *Encoding) (*fsa.FSA, error) {
	if len(v) == 0 {
		return nil, errors.New("core: empty criterion")
	}
	raw, err := SDGVertices(v).buildQuery(e)
	if err != nil {
		return nil, err
	}
	reach, err := ReachableConfigs(e)
	if err != nil {
		return nil, err
	}
	inter := fsa.Intersect(PAutomatonToFSA(raw), reach)
	if inter.IsEmpty() {
		return nil, errors.New("core: criterion vertices are unreachable from main")
	}
	return FSAToQuery(inter, e.PDS.NumLocs), nil
}

// ReachableConfigs returns a plain FSA accepting the stack words of every
// configuration of the unrolled SDG reachable (along dependence edges) from
// main's entry: Poststar[P]({(p, entry_main)}). The result is cached on the
// encoding; repeated calls are free.
func ReachableConfigs(e *Encoding) (*fsa.FSA, error) {
	return e.Reachable()
}

func computeReachableConfigs(e *Encoding) (*fsa.FSA, error) {
	mainIdx, ok := e.G.ProcByName["main"]
	if !ok {
		return nil, errors.New("core: program has no main")
	}
	entry := e.G.Procs[mainIdx].Entry
	q := fsa.New(e.PDS.NumLocs)
	f := q.AddState()
	q.SetFinal(f)
	q.Add(0, e.VertexSym(entry), f)
	post := e.PDS.Poststar(q)
	return PAutomatonToFSA(post), nil
}

// PrintfCriterion returns the actual-in vertices of every printf call-site
// in proc (or all procs when proc is empty) — the criterion shape used
// throughout the paper's examples.
func PrintfCriterion(g *sdg.Graph, proc string) []sdg.VertexID {
	var out []sdg.VertexID
	for _, s := range g.Sites {
		if !s.Lib || s.Callee != "printf" {
			continue
		}
		if proc != "" && g.Procs[s.CallerProc].Name != proc {
			continue
		}
		out = append(out, s.ActualIns...)
		if len(s.ActualIns) == 0 {
			out = append(out, s.CallVertex)
		}
	}
	return out
}
