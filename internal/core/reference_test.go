package core_test

// Layer 1 reference oracle for the dense readout, mirroring the
// fsa/reference_test.go pattern: the original map-driven Alg. 1 readout
// (stateInfo maps, map[VertexID]bool membership sets, linear formal
// matching) is relocated here as a differential reference and compared
// for structural identity — vertex, site, and procedure numbering, names,
// formal lists, origin maps, and edge sets — against the arena-backed
// dense readout on hundreds of random program/criterion pairs.
//
// One deliberate canonicalization: the historical implementation ordered
// variants by a "%d,%d,…" *string* key, under which vertex list [12] sorts
// before [3]; the reference below uses the numeric lexicographic order the
// dense readout defines. Everything else is the old algorithm verbatim.
//
// The relocated matchFormalIn/matchFormalOut linear scans double as the
// reference for sdg.Proc.MatchFormalIn/MatchFormalOut (the precomputed
// index on built graphs, the ordering-invariant binary search on readout
// graphs), checked across every source graph and specialized result.

import (
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"specslice/internal/core"
	"specslice/internal/emit"
	"specslice/internal/mono"
	"specslice/internal/sdg"
	sliceg "specslice/internal/slice"
	"specslice/internal/workload"
)

// refResult is the reference readout's output: the same shape Result had
// before the dense rewrite (map-typed origin tables, explicit call-target
// maps).
type refResult struct {
	R            *sdg.Graph
	OriginVertex map[sdg.VertexID]sdg.VertexID
	OriginSite   map[sdg.SiteID]sdg.SiteID
	VariantsOf   map[string][]int
	CallTargets  []map[sdg.SiteID]int
}

// refStateInfo captures a non-initial A6 state during the reference
// readout (the former stateInfo).
type refStateInfo struct {
	state    int
	origProc int
	vertices []sdg.VertexID // sorted source vertices (the Elems set)
	isFinal  bool
}

// referenceReadout is the relocated map-based readout, run against the
// dense result's own A6/encoding/source graph.
func referenceReadout(res *core.Result) (*refResult, error) {
	a6 := res.A6
	g := res.Source
	enc := res.Enc
	r := &refResult{}

	starts := a6.Starts()
	if a6.NumStates() == 0 || len(starts) == 0 {
		return nil, fmt.Errorf("core: slice is empty (criterion depends on nothing)")
	}
	if len(starts) != 1 {
		return nil, fmt.Errorf("core: internal error: A6 has %d start states", len(starts))
	}
	q0 := starts[0]

	// Collect the Elems sets from the transitions leaving q0, and the
	// call-site transitions among non-initial states.
	vertsOf := map[int][]sdg.VertexID{}
	type callEdge struct {
		callee, caller int
		site           sdg.SiteID
	}
	var callEdges []callEdge
	for _, t := range a6.Transitions() {
		if t.From == q0 {
			if enc.IsSiteSym(t.Sym) {
				return nil, fmt.Errorf("core: internal error: call-site symbol on an initial transition")
			}
			if t.To == q0 {
				return nil, fmt.Errorf("core: internal error: self-loop on the initial state")
			}
			vertsOf[t.To] = append(vertsOf[t.To], enc.SymVertex(t.Sym))
			continue
		}
		if !enc.IsSiteSym(t.Sym) {
			return nil, fmt.Errorf("core: internal error: vertex symbol %d on a non-initial transition", t.Sym)
		}
		callEdges = append(callEdges, callEdge{callee: t.From, caller: t.To, site: enc.SymSite(t.Sym)})
	}

	// Build per-state info, checking Defn. 2.10's rule 2.
	var infos []*refStateInfo
	infoByState := map[int]*refStateInfo{}
	for state, vs := range vertsOf {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		proc := g.Vertices[vs[0]].Proc
		for _, v := range vs {
			if g.Vertices[v].Proc != proc {
				return nil, fmt.Errorf("core: partition element mixes procedures")
			}
		}
		infos = append(infos, &refStateInfo{
			state: state, origProc: proc, vertices: vs, isFinal: a6.IsFinal(state),
		})
		infoByState[state] = infos[len(infos)-1]
	}
	for _, ce := range callEdges {
		for _, s := range []int{ce.callee, ce.caller} {
			if _, ok := infoByState[s]; !ok {
				return nil, fmt.Errorf("core: internal error: state %d has call transitions but no vertices", s)
			}
		}
	}

	// Deterministic order: by source proc index, then numeric
	// lexicographic vertex list (the canonicalized form of the historical
	// string key).
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].origProc != infos[j].origProc {
			return infos[i].origProc < infos[j].origProc
		}
		return slices.Compare(infos[i].vertices, infos[j].vertices) < 0
	})

	// Assign names: a single variant keeps the original name; multiple
	// variants are numbered. The final-state variant of main keeps "main".
	byProc := map[int][]*refStateInfo{}
	for _, in := range infos {
		byProc[in.origProc] = append(byProc[in.origProc], in)
	}
	names := map[int]string{} // state -> specialized name
	for procIdx, group := range byProc {
		orig := g.Procs[procIdx].Name
		if len(group) == 1 {
			names[group[0].state] = orig
			continue
		}
		if orig == "main" {
			n := 1
			for _, in := range group {
				if in.isFinal {
					names[in.state] = "main"
				} else {
					names[in.state] = fmt.Sprintf("main_%d", n)
					n++
				}
			}
			continue
		}
		for i, in := range group {
			names[in.state] = fmt.Sprintf("%s_%d", orig, i+1)
		}
	}

	// Construct R.
	R := &sdg.Graph{Prog: g.Prog, ProcByName: map[string]int{}}
	r.R = R
	r.OriginVertex = map[sdg.VertexID]sdg.VertexID{}
	r.OriginSite = map[sdg.SiteID]sdg.SiteID{}
	r.VariantsOf = map[string][]int{}
	stateToRProc := map[int]int{}

	for _, in := range infos {
		orig := g.Procs[in.origProc]
		rp := &sdg.Proc{Index: len(R.Procs), Name: names[in.state], Fn: orig.Fn}
		R.Procs = append(R.Procs, rp)
		R.ProcByName[rp.Name] = rp.Index
		stateToRProc[in.state] = rp.Index
		r.VariantsOf[orig.Name] = append(r.VariantsOf[orig.Name], rp.Index)
		r.CallTargets = append(r.CallTargets, map[sdg.SiteID]int{})

		inSet := map[sdg.VertexID]bool{}
		for _, v := range in.vertices {
			inSet[v] = true
		}
		if !inSet[orig.Entry] {
			return nil, fmt.Errorf("core: internal error: variant of %s lacks its entry vertex", orig.Name)
		}

		// Create R vertices (in source-ID order) and site skeletons.
		newID := map[sdg.VertexID]sdg.VertexID{}
		for _, v := range in.vertices {
			src := g.Vertices[v]
			cp := *src
			cp.Proc = rp.Index
			cp.Site = -1 // re-linked below
			id := R.AddVertex(&cp)
			newID[v] = id
			r.OriginVertex[id] = v
		}
		rp.Entry = newID[orig.Entry]
		for _, fi := range orig.FormalIns {
			if inSet[fi] {
				rp.FormalIns = append(rp.FormalIns, newID[fi])
			}
		}
		for _, fo := range orig.FormalOuts {
			if inSet[fo] {
				rp.FormalOuts = append(rp.FormalOuts, newID[fo])
			}
		}
		for _, sid := range orig.Sites {
			src := g.Sites[sid]
			if !inSet[src.CallVertex] {
				continue
			}
			rs := &sdg.Site{
				ID: sdg.SiteID(len(R.Sites)), CallerProc: rp.Index,
				Callee: src.Callee, Lib: src.Lib, Stmt: src.Stmt,
				CallVertex: newID[src.CallVertex],
			}
			for _, ai := range src.ActualIns {
				if inSet[ai] {
					rs.ActualIns = append(rs.ActualIns, newID[ai])
				}
			}
			for _, ao := range src.ActualOuts {
				if inSet[ao] {
					rs.ActualOuts = append(rs.ActualOuts, newID[ao])
				}
			}
			R.Sites = append(R.Sites, rs)
			rp.Sites = append(rp.Sites, rs.ID)
			r.OriginSite[rs.ID] = sid
			for _, vid := range append(append([]sdg.VertexID{rs.CallVertex}, rs.ActualIns...), rs.ActualOuts...) {
				R.Vertices[vid].Site = rs.ID
			}
		}

		// Induced intraprocedural edges (Defn. 3.13).
		for _, v := range in.vertices {
			for _, e := range g.Out(v) {
				if (e.Kind == sdg.EdgeControl || e.Kind == sdg.EdgeFlow) && inSet[e.To] {
					R.AddEdge(newID[v], newID[e.To], e.Kind)
				}
			}
		}
	}

	// Wire the interprocedural edges from A6's call-site transitions.
	for _, ce := range callEdges {
		callerIdx, ok1 := stateToRProc[ce.caller]
		calleeIdx, ok2 := stateToRProc[ce.callee]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: internal error: dangling call edge")
		}
		caller := R.Procs[callerIdx]
		callee := R.Procs[calleeIdx]
		var rs *sdg.Site
		for _, sid := range caller.Sites {
			if r.OriginSite[sid] == ce.site {
				rs = R.Sites[sid]
			}
		}
		if rs == nil {
			return nil, fmt.Errorf("core: internal error: caller variant %s lacks site %d", caller.Name, ce.site)
		}
		rs.Callee = callee.Name
		r.CallTargets[callerIdx][ce.site] = calleeIdx
		R.AddEdge(rs.CallVertex, callee.Entry, sdg.EdgeCall)
		for _, ai := range rs.ActualIns {
			fi, ok := refMatchFormalIn(R, callee, ai)
			if !ok {
				return nil, fmt.Errorf("core: parameter mismatch: %s has no formal for %s", callee.Name, R.VertexString(ai))
			}
			R.AddEdge(ai, fi, sdg.EdgeParamIn)
		}
		for _, ao := range rs.ActualOuts {
			fo, ok := refMatchFormalOut(R, callee, ao)
			if !ok {
				return nil, fmt.Errorf("core: parameter mismatch: %s has no formal-out for %s", callee.Name, R.VertexString(ao))
			}
			R.AddEdge(fo, ao, sdg.EdgeParamOut)
		}
	}
	return r, nil
}

// refMatchFormalIn / refMatchFormalOut are the retired linear scans —
// the differential reference for sdg.Proc.MatchFormalIn/MatchFormalOut.
func refMatchFormalIn(g *sdg.Graph, p *sdg.Proc, aiID sdg.VertexID) (sdg.VertexID, bool) {
	ai := g.Vertices[aiID]
	for _, fiID := range p.FormalIns {
		fi := g.Vertices[fiID]
		if ai.Param != sdg.NoParam {
			if fi.Param == ai.Param {
				return fiID, true
			}
		} else if fi.Param == sdg.NoParam && fi.Var == ai.Var {
			return fiID, true
		}
	}
	return 0, false
}

func refMatchFormalOut(g *sdg.Graph, p *sdg.Proc, aoID sdg.VertexID) (sdg.VertexID, bool) {
	ao := g.Vertices[aoID]
	for _, foID := range p.FormalOuts {
		fo := g.Vertices[foID]
		if ao.IsReturn {
			if fo.IsReturn {
				return foID, true
			}
		} else if !fo.IsReturn && fo.Var == ao.Var {
			return foID, true
		}
	}
	return 0, false
}

// compareReadout requires full structural identity between the dense
// result and the reference construction.
func compareReadout(t *testing.T, tag string, res *core.Result, ref *refResult) {
	t.Helper()
	R, Q := res.R, ref.R
	if len(R.Vertices) != len(Q.Vertices) || len(R.Sites) != len(Q.Sites) || len(R.Procs) != len(Q.Procs) {
		t.Fatalf("%s: size mismatch: vertices %d/%d sites %d/%d procs %d/%d", tag,
			len(R.Vertices), len(Q.Vertices), len(R.Sites), len(Q.Sites), len(R.Procs), len(Q.Procs))
	}
	for i := range R.Vertices {
		a, b := R.Vertices[i], Q.Vertices[i]
		if a.ID != b.ID || a.Kind != b.Kind || a.Proc != b.Proc || a.Site != b.Site ||
			a.Param != b.Param || a.Var != b.Var || a.IsReturn != b.IsReturn ||
			a.Label != b.Label || a.Stmt != b.Stmt {
			t.Fatalf("%s: vertex %d differs: %+v vs %+v", tag, i, a, b)
		}
		if res.OriginVertex[i] != ref.OriginVertex[sdg.VertexID(i)] {
			t.Fatalf("%s: origin of vertex %d: %d vs %d", tag, i, res.OriginVertex[i], ref.OriginVertex[sdg.VertexID(i)])
		}
	}
	for i := range R.Procs {
		a, b := R.Procs[i], Q.Procs[i]
		if a.Name != b.Name || a.Entry != b.Entry || a.Fn != b.Fn ||
			!slices.Equal(a.FormalIns, b.FormalIns) || !slices.Equal(a.FormalOuts, b.FormalOuts) ||
			!slices.Equal(a.Vertices, b.Vertices) || !slices.Equal(a.Sites, b.Sites) {
			t.Fatalf("%s: proc %d differs: %+v vs %+v", tag, i, a, b)
		}
		if R.ProcByName[a.Name] != i || Q.ProcByName[a.Name] != i {
			t.Fatalf("%s: ProcByName[%s] inconsistent", tag, a.Name)
		}
	}
	for i := range R.Sites {
		a, b := R.Sites[i], Q.Sites[i]
		if a.ID != b.ID || a.CallerProc != b.CallerProc || a.Callee != b.Callee ||
			a.Lib != b.Lib || a.CallVertex != b.CallVertex || a.Stmt != b.Stmt ||
			!slices.Equal(a.ActualIns, b.ActualIns) || !slices.Equal(a.ActualOuts, b.ActualOuts) {
			t.Fatalf("%s: site %d differs: %+v vs %+v", tag, i, a, b)
		}
		if res.OriginSite[i] != ref.OriginSite[sdg.SiteID(i)] {
			t.Fatalf("%s: origin of site %d differs", tag, i)
		}
	}
	edgeSet := func(g *sdg.Graph) map[sdg.Edge]bool {
		out := map[sdg.Edge]bool{}
		for _, e := range g.Edges() {
			out[e] = true
		}
		return out
	}
	re, qe := edgeSet(R), edgeSet(Q)
	if len(re) != len(qe) {
		t.Fatalf("%s: edge count %d vs %d", tag, len(re), len(qe))
	}
	for e := range re {
		if !qe[e] {
			t.Fatalf("%s: dense edge %+v missing from reference", tag, e)
		}
	}
	if len(res.VariantsOf) != len(ref.VariantsOf) {
		t.Fatalf("%s: VariantsOf sizes differ", tag)
	}
	for name, vs := range ref.VariantsOf {
		if !slices.Equal(res.VariantsOf[name], vs) {
			t.Fatalf("%s: VariantsOf[%s] = %v vs %v", tag, name, res.VariantsOf[name], vs)
		}
	}
	// Call targets: the dense result records the specialized callee on
	// each R site; it must name exactly the proc the reference wired.
	for pi, targets := range ref.CallTargets {
		for srcSite, calleeIdx := range targets {
			found := false
			for _, sid := range R.Procs[pi].Sites {
				if res.OriginSite[sid] == srcSite {
					found = true
					if R.Sites[sid].Callee != Q.Procs[calleeIdx].Name {
						t.Fatalf("%s: call target of site %d in proc %d: %s vs %s",
							tag, srcSite, pi, R.Sites[sid].Callee, Q.Procs[calleeIdx].Name)
					}
				}
			}
			if !found {
				t.Fatalf("%s: proc %d lost site %d", tag, pi, srcSite)
			}
		}
	}
}

// referenceConfigs is the random corpus: a mix of non-recursive and
// recursive programs (recursion drives multi-variant readouts).
func referenceConfigs(n int) []workload.BenchConfig {
	rng := rand.New(rand.NewSource(0xD15C))
	out := make([]workload.BenchConfig, n)
	for i := range out {
		out[i] = workload.BenchConfig{
			Name:           "refreadout",
			Procs:          5 + rng.Intn(9),
			TargetVertices: 150 + rng.Intn(350),
			CallSites:      12 + rng.Intn(30),
			Slices:         6,
			Seed:           int64(7000 + i),
			Recursive:      i%3 == 0,
		}
	}
	return out
}

// TestReferenceReadoutDifferential checks the dense readout against the
// relocated map-based reference on ≥200 random program/criterion pairs
// (the PR acceptance bar; a reduced budget under -short), and — every
// fourth program — that the monovariant slicer's emission over the shared
// source graph is byte-identical before and after the dense readouts ran
// and released their pooled storage (the source graph must never be
// touched by a readout).
func TestReferenceReadoutDifferential(t *testing.T) {
	programs := 40
	if testing.Short() {
		programs = 10
	}
	pairs := 0
	for pi, cfg := range referenceConfigs(programs) {
		prog := workload.Generate(cfg)
		g := sdg.MustBuild(prog)
		sliceg.ComputeSummaryEdges(g)
		enc := core.Encode(g)
		rng := rand.New(rand.NewSource(cfg.Seed * 31))

		var monoBefore string
		var monoCrit []sdg.VertexID
		checkMono := pi%4 == 0
		if checkMono {
			monoCrit = core.PrintfCriterion(g, "")
			if len(monoCrit) > 0 {
				src, err := emit.Source(g, mono.Binkley(g, monoCrit).Variants())
				if err != nil {
					t.Fatalf("cfg %d: mono emit: %v", pi, err)
				}
				monoBefore = src
			}
		}

		// Criteria: the all-printfs criterion plus random statement and
		// predicate vertices in all calling contexts.
		var specs []core.CriterionSpec
		if vs := core.PrintfCriterion(g, ""); len(vs) > 0 {
			specs = append(specs, core.Vertices(vs))
		}
		var stmtVerts []sdg.VertexID
		for _, v := range g.Vertices {
			if v.Kind == sdg.KindStmt || v.Kind == sdg.KindPredicate {
				stmtVerts = append(stmtVerts, v.ID)
			}
		}
		for k := 0; k < 6 && len(stmtVerts) > 0; k++ {
			specs = append(specs, core.Vertices([]sdg.VertexID{stmtVerts[rng.Intn(len(stmtVerts))]}))
		}

		for si, spec := range specs {
			res, err := core.SpecializeWithEncoding(enc, spec)
			if err != nil {
				continue // empty slices etc. are not readout material
			}
			ref, err := referenceReadout(res)
			if err != nil {
				t.Fatalf("cfg %d spec %d: reference readout failed where dense succeeded: %v", pi, si, err)
			}
			compareReadout(t, fmt.Sprintf("cfg %d spec %d", pi, si), res, ref)
			pairs++
			res.Release()
		}

		if checkMono && monoBefore != "" {
			src, err := emit.Source(g, mono.Binkley(g, monoCrit).Variants())
			if err != nil {
				t.Fatalf("cfg %d: mono emit after readouts: %v", pi, err)
			}
			if src != monoBefore {
				t.Fatalf("cfg %d: monovariant emission changed after dense readouts released their storage", pi)
			}
		}
	}
	min := 200
	if testing.Short() {
		min = 40
	}
	if pairs < min {
		t.Fatalf("only %d program/criterion pairs exercised the readout oracle (want >= %d)", pairs, min)
	}
	t.Logf("readout differential oracle: %d pairs", pairs)
}

// TestFormalMatchDifferential checks the indexed/binary-search formal
// matching against the retired linear scans on every call site of both
// source graphs (precomputed index path) and specialized results
// (ordering-invariant binary-search path).
func TestFormalMatchDifferential(t *testing.T) {
	check := func(tag string, g *sdg.Graph) {
		t.Helper()
		for _, site := range g.Sites {
			if site.Lib {
				continue
			}
			idx, ok := g.ProcByName[site.Callee]
			if !ok {
				continue
			}
			callee := g.Procs[idx]
			for _, ai := range site.ActualIns {
				want, wok := refMatchFormalIn(g, callee, ai)
				got, gok := callee.MatchFormalIn(g, g.Vertices[ai])
				if wok != gok || (wok && want != got) {
					t.Fatalf("%s: MatchFormalIn(%s) = %v,%v want %v,%v", tag, g.VertexString(ai), got, gok, want, wok)
				}
			}
			for _, ao := range site.ActualOuts {
				want, wok := refMatchFormalOut(g, callee, ao)
				got, gok := callee.MatchFormalOut(g, g.Vertices[ao])
				if wok != gok || (wok && want != got) {
					t.Fatalf("%s: MatchFormalOut(%s) = %v,%v want %v,%v", tag, g.VertexString(ao), got, gok, want, wok)
				}
			}
		}
	}
	n := 12
	if testing.Short() {
		n = 4
	}
	for pi, cfg := range referenceConfigs(n) {
		g := sdg.MustBuild(workload.Generate(cfg))
		sliceg.ComputeSummaryEdges(g)
		check(fmt.Sprintf("cfg %d source", pi), g)
		enc := core.Encode(g)
		if vs := core.PrintfCriterion(g, ""); len(vs) > 0 {
			if res, err := core.SpecializeWithEncoding(enc, core.Vertices(vs)); err == nil {
				check(fmt.Sprintf("cfg %d R", pi), res.R)
			}
		}
	}
}
