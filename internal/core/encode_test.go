package core

import (
	"testing"

	"specslice/internal/fsa"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// TestEncodeRuleSchema checks the Fig. 8 encoding: one internal rule per
// control/flow edge, one push rule per call/param-in edge, one pop rule per
// formal-out with outgoing param-out edges plus one internal rule per
// param-out edge (from the p_fo location).
func TestEncodeRuleSchema(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	enc := Encode(g)

	var control, flow, call, paramIn, paramOut int
	fosWithEdges := map[sdg.VertexID]bool{}
	for _, e := range g.Edges() {
		switch e.Kind {
		case sdg.EdgeControl:
			control++
		case sdg.EdgeFlow:
			flow++
		case sdg.EdgeCall:
			call++
		case sdg.EdgeParamIn:
			paramIn++
		case sdg.EdgeParamOut:
			paramOut++
			fosWithEdges[e.From] = true
		}
	}
	var internal, push, pop int
	for _, r := range enc.PDS.Rules {
		switch len(r.W) {
		case 0:
			pop++
		case 1:
			internal++
		case 2:
			push++
		}
	}
	if want := control + flow + paramOut; internal != want {
		t.Errorf("internal rules = %d, want %d", internal, want)
	}
	if want := call + paramIn; push != want {
		t.Errorf("push rules = %d, want %d", push, want)
	}
	if pop != len(fosWithEdges) {
		t.Errorf("pop rules = %d, want %d (one per formal-out with param-out edges)", pop, len(fosWithEdges))
	}
	// Control locations: p plus one per popped formal-out.
	if enc.PDS.NumLocs != 1+len(fosWithEdges) {
		t.Errorf("control locations = %d, want %d", enc.PDS.NumLocs, 1+len(fosWithEdges))
	}
}

func TestSymbolCodec(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	enc := Encode(g)
	for _, v := range g.Vertices {
		sym := enc.VertexSym(v.ID)
		if enc.IsSiteSym(sym) || enc.SymVertex(sym) != v.ID {
			t.Fatalf("vertex symbol roundtrip failed for %d", v.ID)
		}
	}
	for _, s := range g.Sites {
		sym := enc.SiteSym(s.ID)
		if !enc.IsSiteSym(sym) || enc.SymSite(sym) != s.ID {
			t.Fatalf("site symbol roundtrip failed for %d", s.ID)
		}
	}
	if got := len(enc.Alphabet()); got != enc.NumSymbols() {
		t.Errorf("alphabet size %d != %d", got, enc.NumSymbols())
	}
}

// TestPkExponential pins the §4.3 exponential behavior: Pk yields 2^k − 1
// specializations of Pk (every nonempty live-global pattern).
func TestPkExponential(t *testing.T) {
	for k := 1; k <= 5; k++ {
		g := sdg.MustBuild(workload.PkProgram(k))
		res, err := Specialize(g, Configs(configsFor(g, PrintfCriterion(g, "main"))))
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got, want := len(res.VariantsOf["Pk"]), (1<<k)-1; got != want {
			t.Errorf("k=%d: %d specializations of Pk, want 2^%d−1 = %d", k, got, k, want)
		}
		if err := CheckNoMismatches(res.R); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

// TestCriterionValidation exercises the error paths of criterion building.
func TestCriterionValidation(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	enc := Encode(g)
	cases := []CriterionSpec{
		Configs{{Vertex: sdg.VertexID(len(g.Vertices) + 5)}},
		Configs{{Vertex: 0, Stack: []sdg.SiteID{99}}},
		Configs{},
		SDGVertices{},
		Vertices{},
	}
	for i, spec := range cases {
		if _, err := spec.buildQuery(enc); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestReachableConfigs: every criterion config used in Fig. 1's slice is
// reachable; configurations with impossible stacks are not.
func TestReachableConfigs(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	enc := Encode(g)
	reach, err := ReachableConfigs(enc)
	if err != nil {
		t.Fatal(err)
	}
	// Main's printf actual-in with empty stack is reachable.
	crit := PrintfCriterion(g, "main")
	if !reach.Accepts([]fsa.Symbol{enc.VertexSym(crit[0])}) {
		t.Error("printf actual-in with empty stack must be reachable")
	}
	// p's entry with empty stack is NOT a reachable configuration.
	pEntry := g.Procs[g.ProcByName["p"]].Entry
	if reach.Accepts([]fsa.Symbol{enc.VertexSym(pEntry)}) {
		t.Error("(entry_p, ε) must be unreachable (p always has a caller)")
	}
	// p's entry with each call-site stack is reachable.
	for _, s := range g.SiteCalls("p") {
		if !reach.Accepts([]fsa.Symbol{enc.VertexSym(pEntry), enc.SiteSym(s.ID)}) {
			t.Errorf("(entry_p, C%d) must be reachable", s.ID)
		}
	}
}

// TestVariantsViewMatchesR: the emission view agrees with R's structure.
func TestVariantsViewMatchesR(t *testing.T) {
	res := specializeSrc(t, fig1Src)
	vars := res.Variants()
	if len(vars) != len(res.R.Procs) {
		t.Fatalf("variants = %d, procs = %d", len(vars), len(res.R.Procs))
	}
	for i, v := range vars {
		if len(v.Vertices) != len(res.R.Procs[i].Vertices) {
			t.Errorf("variant %d: %d vertices vs %d", i, len(v.Vertices), len(res.R.Procs[i].Vertices))
		}
		if v.Name != res.R.Procs[i].Name {
			t.Errorf("variant %d: name %q vs %q", i, v.Name, res.R.Procs[i].Name)
		}
		for site, callee := range v.CallTarget {
			if site < 0 || int(site) >= len(res.Source.Sites) {
				t.Errorf("variant %d: call target site %d out of source range", i, site)
			}
			if callee == "" {
				t.Errorf("variant %d: empty call target", i)
			}
		}
	}
}

// TestSpecializeIsDeterministic: two runs produce identical specialized
// programs (naming and structure).
func TestSpecializeIsDeterministic(t *testing.T) {
	a := specializeSrc(t, fig2Src)
	b := specializeSrc(t, fig2Src)
	if len(a.R.Procs) != len(b.R.Procs) {
		t.Fatalf("proc counts differ")
	}
	for i := range a.R.Procs {
		if a.R.Procs[i].Name != b.R.Procs[i].Name {
			t.Errorf("proc %d: %q vs %q", i, a.R.Procs[i].Name, b.R.Procs[i].Name)
		}
		if len(a.R.Procs[i].Vertices) != len(b.R.Procs[i].Vertices) {
			t.Errorf("proc %d sizes differ", i)
		}
	}
}
