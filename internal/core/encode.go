// Package core implements the paper's primary contribution: the
// automaton-based specialization-slicing algorithm (Alg. 1). The SDG is
// encoded as a pushdown system (Defn. 3.2 / Fig. 8), the stack-configuration
// slice is computed with Prestar, the result is converted to the minimal
// reverse-deterministic (MRD) automaton A6, and the specialized SDG is read
// out of A6's structure, together with the vertex map M_C used for the
// soundness/completeness statement and the §8.3 reslicing self-check.
package core

import (
	"fmt"
	"sync"

	"specslice/internal/fsa"
	"specslice/internal/pds"
	"specslice/internal/sdg"
)

// Encoding is the PDS encoding of an SDG, with the symbol numbering shared
// by every automaton the algorithm manipulates: SDG vertex v has symbol v,
// call-site s has symbol NumVertices+s.
//
// An Encoding is immutable once built and safe for concurrent use: the
// Prestar rule indexes and the reachable-configuration automaton are cached
// on it, so one Encoding can serve many slice requests without repeating
// the setup work.
type Encoding struct {
	G   *sdg.Graph
	PDS *pds.PDS
	// LocOfFO maps each formal-out vertex to its dedicated control location
	// p_fo; control location 0 is the common location p.
	LocOfFO map[sdg.VertexID]int

	prestar *pds.PrestarEngine

	reachOnce sync.Once
	reach     *fsa.FSA
	reachErr  error

	// nameMu guards names, the cache of numbered variant names ("p_3")
	// the readout assigns when a procedure specializes into several
	// copies. Warm requests against a shared encoding re-derive the same
	// names, so caching them keeps the readout allocation-free.
	nameMu sync.Mutex
	names  map[uint64]string
}

// variantName returns the cached numbered name of procedure proc's
// ordinal-th extra variant ("<name>_<ordinal>").
func (e *Encoding) variantName(proc, ordinal int) string {
	key := uint64(proc)<<32 | uint64(uint32(ordinal))
	e.nameMu.Lock()
	defer e.nameMu.Unlock()
	if s, ok := e.names[key]; ok {
		return s
	}
	if e.names == nil {
		e.names = map[uint64]string{}
	}
	s := fmt.Sprintf("%s_%d", e.G.Procs[proc].Name, ordinal)
	e.names[key] = s
	return s
}

// Prestar answers a pre* query through the encoding's cached rule indexes.
func (e *Encoding) Prestar(a *fsa.FSA) *fsa.FSA { return e.prestar.Prestar(a) }

// ScratchBytes estimates the heap the encoding's Prestar engine retains
// between queries (pooled saturation arenas); ScratchProvision is the
// steady-state floor one arena will reach once queries start. Byte-budget
// accounting (engine.Footprint) charges whichever is larger.
func (e *Encoding) ScratchBytes() int64     { return e.prestar.ScratchBytes() }
func (e *Encoding) ScratchProvision() int64 { return e.prestar.ScratchProvision() }

// Reachable returns the cached reachable-configuration automaton
// Poststar[P]({(p, entry_main)}), computing it on first use. Safe for
// concurrent callers.
func (e *Encoding) Reachable() (*fsa.FSA, error) {
	e.reachOnce.Do(func() {
		e.reach, e.reachErr = computeReachableConfigs(e)
	})
	return e.reach, e.reachErr
}

// VertexSym returns the stack symbol of an SDG vertex.
func (e *Encoding) VertexSym(v sdg.VertexID) fsa.Symbol { return fsa.Symbol(v) }

// SiteSym returns the stack symbol of a call-site label.
func (e *Encoding) SiteSym(s sdg.SiteID) fsa.Symbol {
	return fsa.Symbol(len(e.G.Vertices) + int(s))
}

// IsSiteSym reports whether sym encodes a call-site label.
func (e *Encoding) IsSiteSym(sym fsa.Symbol) bool {
	return int(sym) >= len(e.G.Vertices)
}

// SymVertex decodes a vertex symbol.
func (e *Encoding) SymVertex(sym fsa.Symbol) sdg.VertexID { return sdg.VertexID(sym) }

// SymSite decodes a call-site symbol.
func (e *Encoding) SymSite(sym fsa.Symbol) sdg.SiteID {
	return sdg.SiteID(int(sym) - len(e.G.Vertices))
}

// NumSymbols returns the total symbol count (vertices + call-sites).
func (e *Encoding) NumSymbols() int { return len(e.G.Vertices) + len(e.G.Sites) }

// Alphabet lists every symbol.
func (e *Encoding) Alphabet() []fsa.Symbol {
	out := make([]fsa.Symbol, e.NumSymbols())
	for i := range out {
		out[i] = fsa.Symbol(i)
	}
	return out
}

// Encode builds the PDS for g following the paper's Fig. 8 schema:
//
//	flow/control edge u→v:      <p, u> ↪ <p, v>
//	call edge c→e at site C:    <p, c> ↪ <p, e C>
//	param-in edge a→f at C:     <p, a> ↪ <p, f C>
//	param-out edge f→a at C:    <p, f> ↪ <p_f, ε> and <p_f, C> ↪ <p, a>
//
// Summary edges are not encoded (the algorithm does not need them).
func Encode(g *sdg.Graph) *Encoding {
	e := &Encoding{G: g, LocOfFO: map[sdg.VertexID]int{}}
	p := &pds.PDS{NumLocs: 1} // location 0 is p
	locOf := func(fo sdg.VertexID) int {
		if l, ok := e.LocOfFO[fo]; ok {
			return l
		}
		l := p.NumLocs
		p.NumLocs++
		e.LocOfFO[fo] = l
		// Pop rule <p, fo> ↪ <p_fo, ε>, added once per formal-out.
		p.AddRule(pds.Rule{P: 0, G: e.VertexSym(fo), P2: l, W: nil})
		return l
	}
	for _, edge := range g.Edges() {
		switch edge.Kind {
		case sdg.EdgeControl, sdg.EdgeFlow:
			p.AddRule(pds.Rule{
				P: 0, G: e.VertexSym(edge.From), P2: 0,
				W: []fsa.Symbol{e.VertexSym(edge.To)},
			})
		case sdg.EdgeCall, sdg.EdgeParamIn:
			site := g.Vertices[edge.From].Site
			p.AddRule(pds.Rule{
				P: 0, G: e.VertexSym(edge.From), P2: 0,
				W: []fsa.Symbol{e.VertexSym(edge.To), e.SiteSym(site)},
			})
		case sdg.EdgeParamOut:
			// edge.From is the formal-out, edge.To the actual-out.
			site := g.Vertices[edge.To].Site
			l := locOf(edge.From)
			p.AddRule(pds.Rule{
				P: l, G: e.SiteSym(site), P2: 0,
				W: []fsa.Symbol{e.VertexSym(edge.To)},
			})
		case sdg.EdgeSummary:
			// Not encoded.
		default:
			panic(fmt.Sprintf("core: unknown edge kind %v", edge.Kind))
		}
	}
	e.PDS = p
	e.prestar = pds.NewPrestarEngine(p)
	return e
}

// PAutomatonToFSA converts a P-automaton into a plain FSA accepting the
// stack language of control location p (state 0): the configurations
// (p, w) the automaton accepts. RemoveEpsilon trims, so Prestar results
// (always epsilon-free) cost one structural clone plus one trim here.
func PAutomatonToFSA(a *fsa.FSA) *fsa.FSA {
	c := a.Clone()
	c.SetStart(0)
	return c.RemoveEpsilon()
}

// FSAToQuery converts a plain FSA over encoding symbols into a P-automaton
// query: states 0..numLocs-1 are control locations, the FSA's start states
// are fused onto control location 0 (p), and no transitions enter control
// locations. The language must not contain the empty word (configuration
// words always begin with a vertex symbol).
func FSAToQuery(f *fsa.FSA, numLocs int) *fsa.FSA {
	f = f.RemoveEpsilon()
	q := fsa.New(numLocs + f.NumStates())
	q.Reserve(2 * f.NumTransitions())
	off := numLocs
	for _, t := range f.Transitions() {
		q.Add(t.From+off, t.Sym, t.To+off)
		if f.IsStart(t.From) {
			q.Add(0, t.Sym, t.To+off)
		}
	}
	for _, s := range f.Finals() {
		q.SetFinal(s + off)
	}
	return q
}
