package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"specslice/internal/fsa"
	"specslice/internal/sdg"
)

// Timings records where the algorithm spent its time (paper Fig. 21). The
// JSON tags fix the canonical wire names of the phases (durations marshal
// as integer nanoseconds); the serving layer's public mirror,
// specslice.Timings, must use the same names — a test asserts the two
// stay in sync, so rename fields in both places or neither.
type Timings struct {
	Encode       time.Duration `json:"encode_ns"`
	Prestar      time.Duration `json:"prestar_ns"`
	AutomatonOps time.Duration `json:"automaton_ns"` // fused reverse/determinize/minimize/reverse chain
	Readout      time.Duration `json:"readout_ns"`
	Total        time.Duration `json:"total_ns"`

	// Sub-phases of AutomatonOps, as reported by the fused fsa.MRD chain.
	AutomatonDeterminize time.Duration `json:"determinize_ns"`
	AutomatonMinimize    time.Duration `json:"minimize_ns"`
}

// Add accumulates o into t (batch aggregation of per-request timings).
func (t *Timings) Add(o Timings) {
	t.Encode += o.Encode
	t.Prestar += o.Prestar
	t.AutomatonOps += o.AutomatonOps
	t.Readout += o.Readout
	t.Total += o.Total
	t.AutomatonDeterminize += o.AutomatonDeterminize
	t.AutomatonMinimize += o.AutomatonMinimize
}

// Result is the output of the specialization-slicing algorithm.
type Result struct {
	Source *sdg.Graph
	Enc    *Encoding

	// A1 accepts the configurations of the stack-configuration slice
	// (as a plain FSA over encoding symbols); A6 is its minimal
	// reverse-deterministic form.
	A1, A6 *fsa.FSA

	// R is the specialized SDG (paper Alg. 1's output).
	R *sdg.Graph
	// OriginVertex and OriginSite form the mapping M_C from R back to the
	// source alphabet.
	OriginVertex map[sdg.VertexID]sdg.VertexID
	OriginSite   map[sdg.SiteID]sdg.SiteID
	// VariantsOf maps each source procedure name to the R-proc indices of
	// its specializations.
	VariantsOf map[string][]int
	// CallTargets maps, per R proc, each source call-site to the R proc
	// index of the specialized callee.
	CallTargets []map[sdg.SiteID]int

	// StatesBeforeDeterminize / StatesAfterDeterminize support the paper's
	// §4.2 observation that determinize shrinks in practice.
	StatesBeforeDeterminize int
	StatesAfterDeterminize  int

	Timings Timings
}

// ClosureSlice computes only the stack-configuration slice (Alg. 1 lines
// 1–3): it returns the automaton A1 and the projection of its
// configurations onto PDG vertices, which coincides with the HRB closure
// slice when spec is SDGVertices. Unlike Specialize, it accepts criteria —
// such as arbitrary-stack SDGVertices — whose partition would not satisfy
// Defn. 2.10's one-procedure-per-element property.
func ClosureSlice(g *sdg.Graph, spec CriterionSpec) (*fsa.FSA, map[sdg.VertexID]bool, error) {
	return ClosureSliceWithEncoding(Encode(g), spec)
}

// ClosureSliceWithEncoding is ClosureSlice against a prebuilt (typically
// cached) encoding.
func ClosureSliceWithEncoding(enc *Encoding, spec CriterionSpec) (*fsa.FSA, map[sdg.VertexID]bool, error) {
	a0, err := spec.buildQuery(enc)
	if err != nil {
		return nil, nil, err
	}
	a1 := PAutomatonToFSA(enc.Prestar(a0))
	elems := map[sdg.VertexID]bool{}
	for _, t := range a1.Transitions() {
		if a1.IsStart(t.From) && !enc.IsSiteSym(t.Sym) {
			elems[enc.SymVertex(t.Sym)] = true
		}
	}
	return a1, elems, nil
}

// Specialize runs the specialization-slicing algorithm (paper Alg. 1) on g
// with the given criterion, building a fresh encoding. Callers issuing many
// slice requests against one graph should Encode once and use
// SpecializeWithEncoding (or the engine package, which manages the cache).
func Specialize(g *sdg.Graph, spec CriterionSpec) (*Result, error) {
	t0 := time.Now()
	enc := Encode(g)
	encodeTime := time.Since(t0)
	res, err := SpecializeWithEncoding(enc, spec)
	if err != nil {
		return nil, err
	}
	res.Timings.Encode = encodeTime
	res.Timings.Total += encodeTime
	return res, nil
}

// SpecializeWithEncoding runs Alg. 1 against a prebuilt encoding of the
// SDG, skipping the encode phase. The encoding is read-only here, so many
// goroutines may share one encoding concurrently.
func SpecializeWithEncoding(enc *Encoding, spec CriterionSpec) (*Result, error) {
	res := &Result{Source: enc.G, Enc: enc}
	t0 := time.Now()

	a0, err := spec.buildQuery(enc)
	if err != nil {
		return nil, err
	}

	t1 := time.Now()
	a1 := enc.Prestar(a0)
	res.Timings.Prestar = time.Since(t1)
	res.A1 = PAutomatonToFSA(a1)

	if err := res.finish(); err != nil {
		return nil, err
	}
	res.Timings.Total = time.Since(t0)
	return res, nil
}

// SpecializeFromSliceAutomaton runs Alg. 1 from line 4 on a precomputed
// stack-configuration-slice automaton (a plain FSA over enc's symbols whose
// words are configuration strings vertex·site*). Feature removal (Alg. 2)
// enters the pipeline here with its subtracted configuration language.
func SpecializeFromSliceAutomaton(g *sdg.Graph, enc *Encoding, a1 *fsa.FSA) (*Result, error) {
	res := &Result{Source: g, Enc: enc, A1: a1.Trim()}
	t0 := time.Now()
	if err := res.finish(); err != nil {
		return nil, err
	}
	res.Timings.Total = time.Since(t0)
	return res, nil
}

// finish performs the automaton transformations (lines 4–8) and the SDG
// read-out (lines 9–24). The reverse→determinize→minimize→reverse chain
// runs fused (fsa.MRD): the reversal folds into the subset construction's
// adjacency and the minimal DFA is already epsilon-free, so neither the
// reversed copy nor a separate epsilon-removal pass is materialized.
func (res *Result) finish() error {
	t2 := time.Now()
	res.StatesBeforeDeterminize = res.A1.NumStates()
	a6, st := fsa.MRD(res.A1)
	res.StatesAfterDeterminize = st.DetStates
	res.A6 = a6
	res.Timings.AutomatonDeterminize = st.Determinize
	res.Timings.AutomatonMinimize = st.Minimize
	res.Timings.AutomatonOps = time.Since(t2)

	if !a6.IsReverseDeterministic() {
		return fmt.Errorf("core: internal error: A6 is not reverse-deterministic")
	}

	t3 := time.Now()
	if err := res.readout(); err != nil {
		return err
	}
	res.Timings.Readout = time.Since(t3)
	return nil
}

// stateInfo captures a non-initial A6 state during readout.
type stateInfo struct {
	state    int
	origProc int
	vertices []sdg.VertexID // sorted source vertices (the Elems set)
	key      string         // canonical identity for deterministic ordering
	isFinal  bool
}

// readout implements Alg. 1 lines 9–24: construct the specialized SDG R
// from the MRD automaton A6.
func (r *Result) readout() error {
	a6 := r.A6
	g := r.Source
	enc := r.Enc

	starts := a6.Starts()
	if a6.NumStates() == 0 || len(starts) == 0 {
		return fmt.Errorf("core: slice is empty (criterion depends on nothing)")
	}
	if len(starts) != 1 {
		return fmt.Errorf("core: internal error: A6 has %d start states", len(starts))
	}
	q0 := starts[0]

	// Collect the Elems sets from the transitions leaving q0, and the
	// call-site transitions among non-initial states.
	vertsOf := map[int][]sdg.VertexID{}
	type callEdge struct {
		callee, caller int
		site           sdg.SiteID
	}
	var callEdges []callEdge
	for _, t := range a6.Transitions() {
		if t.From == q0 {
			if enc.IsSiteSym(t.Sym) {
				return fmt.Errorf("core: internal error: call-site symbol on an initial transition")
			}
			if t.To == q0 {
				return fmt.Errorf("core: internal error: self-loop on the initial state")
			}
			vertsOf[t.To] = append(vertsOf[t.To], enc.SymVertex(t.Sym))
			continue
		}
		if !enc.IsSiteSym(t.Sym) {
			return fmt.Errorf("core: internal error: vertex symbol %d on a non-initial transition", t.Sym)
		}
		callEdges = append(callEdges, callEdge{callee: t.From, caller: t.To, site: enc.SymSite(t.Sym)})
	}

	// Build per-state info, checking Defn. 2.10's rule 2 (one procedure per
	// partition element).
	var infos []*stateInfo
	infoByState := map[int]*stateInfo{}
	for state, vs := range vertsOf {
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		proc := g.Vertices[vs[0]].Proc
		for _, v := range vs {
			if g.Vertices[v].Proc != proc {
				return fmt.Errorf("core: partition element mixes procedures %s and %s",
					g.Procs[proc].Name, g.Procs[g.Vertices[v].Proc].Name)
			}
		}
		var sb strings.Builder
		for _, v := range vs {
			fmt.Fprintf(&sb, "%d,", v)
		}
		infos = append(infos, &stateInfo{
			state: state, origProc: proc, vertices: vs,
			key: sb.String(), isFinal: a6.IsFinal(state),
		})
		infoByState[infos[len(infos)-1].state] = infos[len(infos)-1]
	}
	// Every non-initial state must be a PDG state (reachable by one vertex
	// symbol); a state with only call-site transitions would be a bug.
	for _, ce := range callEdges {
		for _, s := range []int{ce.callee, ce.caller} {
			if _, ok := infoByState[s]; !ok {
				return fmt.Errorf("core: internal error: state %d has call transitions but no vertices", s)
			}
		}
	}

	// Deterministic order: by source proc index, then canonical key.
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].origProc != infos[j].origProc {
			return infos[i].origProc < infos[j].origProc
		}
		return infos[i].key < infos[j].key
	})

	// Assign names: a single variant keeps the original name; multiple
	// variants are numbered. The final-state variant of main keeps "main".
	byProc := map[int][]*stateInfo{}
	for _, in := range infos {
		byProc[in.origProc] = append(byProc[in.origProc], in)
	}
	names := map[int]string{} // state -> specialized name
	for procIdx, group := range byProc {
		orig := g.Procs[procIdx].Name
		if len(group) == 1 {
			names[group[0].state] = orig
			continue
		}
		if orig == "main" {
			// Keep "main" on the final-state variant.
			n := 1
			for _, in := range group {
				if in.isFinal {
					names[in.state] = "main"
				} else {
					names[in.state] = fmt.Sprintf("main_%d", n)
					n++
				}
			}
			continue
		}
		for i, in := range group {
			names[in.state] = fmt.Sprintf("%s_%d", orig, i+1)
		}
	}

	// Construct R.
	R := &sdg.Graph{Prog: g.Prog, ProcByName: map[string]int{}}
	r.R = R
	r.OriginVertex = map[sdg.VertexID]sdg.VertexID{}
	r.OriginSite = map[sdg.SiteID]sdg.SiteID{}
	r.VariantsOf = map[string][]int{}
	stateToRProc := map[int]int{}

	for _, in := range infos {
		orig := g.Procs[in.origProc]
		rp := &sdg.Proc{Index: len(R.Procs), Name: names[in.state], Fn: orig.Fn}
		R.Procs = append(R.Procs, rp)
		R.ProcByName[rp.Name] = rp.Index
		stateToRProc[in.state] = rp.Index
		r.VariantsOf[orig.Name] = append(r.VariantsOf[orig.Name], rp.Index)
		r.CallTargets = append(r.CallTargets, map[sdg.SiteID]int{})

		inSet := map[sdg.VertexID]bool{}
		for _, v := range in.vertices {
			inSet[v] = true
		}
		if !inSet[orig.Entry] {
			return fmt.Errorf("core: internal error: variant of %s lacks its entry vertex", orig.Name)
		}

		// Create R vertices (in source-ID order) and site skeletons.
		newID := map[sdg.VertexID]sdg.VertexID{}
		siteMap := map[sdg.SiteID]*sdg.Site{} // source site -> R site
		for _, v := range in.vertices {
			src := g.Vertices[v]
			cp := *src
			cp.Proc = rp.Index
			cp.Site = -1 // re-linked below
			id := R.AddVertex(&cp)
			newID[v] = id
			r.OriginVertex[id] = v
		}
		rp.Entry = newID[orig.Entry]
		for _, fi := range orig.FormalIns {
			if inSet[fi] {
				rp.FormalIns = append(rp.FormalIns, newID[fi])
			}
		}
		for _, fo := range orig.FormalOuts {
			if inSet[fo] {
				rp.FormalOuts = append(rp.FormalOuts, newID[fo])
			}
		}
		for _, sid := range orig.Sites {
			src := g.Sites[sid]
			if !inSet[src.CallVertex] {
				continue
			}
			rs := &sdg.Site{
				ID: sdg.SiteID(len(R.Sites)), CallerProc: rp.Index,
				Callee: src.Callee, Lib: src.Lib, Stmt: src.Stmt,
				CallVertex: newID[src.CallVertex],
			}
			for _, ai := range src.ActualIns {
				if inSet[ai] {
					rs.ActualIns = append(rs.ActualIns, newID[ai])
				}
			}
			for _, ao := range src.ActualOuts {
				if inSet[ao] {
					rs.ActualOuts = append(rs.ActualOuts, newID[ao])
				}
			}
			R.Sites = append(R.Sites, rs)
			rp.Sites = append(rp.Sites, rs.ID)
			r.OriginSite[rs.ID] = sid
			siteMap[sid] = rs
			for _, vid := range append(append([]sdg.VertexID{rs.CallVertex}, rs.ActualIns...), rs.ActualOuts...) {
				R.Vertices[vid].Site = rs.ID
			}
		}

		// Induced intraprocedural edges (Defn. 3.13).
		for _, v := range in.vertices {
			for _, e := range g.Out(v) {
				if (e.Kind == sdg.EdgeControl || e.Kind == sdg.EdgeFlow) && inSet[e.To] {
					R.AddEdge(newID[v], newID[e.To], e.Kind)
				}
			}
		}
	}

	// Wire the interprocedural edges from A6's call-site transitions
	// (Alg. 1 lines 19–24): q1 --C--> q2 means q2's PDG calls q1's PDG at
	// (the copy of) site C.
	for _, ce := range callEdges {
		callerIdx, ok1 := stateToRProc[ce.caller]
		calleeIdx, ok2 := stateToRProc[ce.callee]
		if !ok1 || !ok2 {
			return fmt.Errorf("core: internal error: dangling call edge")
		}
		caller := R.Procs[callerIdx]
		callee := R.Procs[calleeIdx]
		var rs *sdg.Site
		for _, sid := range caller.Sites {
			if r.OriginSite[sid] == ce.site {
				rs = R.Sites[sid]
			}
		}
		if rs == nil {
			return fmt.Errorf("core: internal error: caller variant %s lacks site %d", caller.Name, ce.site)
		}
		rs.Callee = callee.Name
		r.CallTargets[callerIdx][ce.site] = calleeIdx
		R.AddEdge(rs.CallVertex, callee.Entry, sdg.EdgeCall)
		for _, ai := range rs.ActualIns {
			fi, ok := matchFormalIn(R, callee, ai)
			if !ok {
				return fmt.Errorf("core: parameter mismatch: %s has no formal for %s", callee.Name, R.VertexString(ai))
			}
			R.AddEdge(ai, fi, sdg.EdgeParamIn)
		}
		for _, ao := range rs.ActualOuts {
			fo, ok := matchFormalOut(R, callee, ao)
			if !ok {
				return fmt.Errorf("core: parameter mismatch: %s has no formal-out for %s", callee.Name, R.VertexString(ao))
			}
			R.AddEdge(fo, ao, sdg.EdgeParamOut)
		}
	}
	return nil
}

func matchFormalIn(g *sdg.Graph, p *sdg.Proc, aiID sdg.VertexID) (sdg.VertexID, bool) {
	ai := g.Vertices[aiID]
	for _, fiID := range p.FormalIns {
		fi := g.Vertices[fiID]
		if ai.Param != sdg.NoParam {
			if fi.Param == ai.Param {
				return fiID, true
			}
		} else if fi.Param == sdg.NoParam && fi.Var == ai.Var {
			return fiID, true
		}
	}
	return 0, false
}

func matchFormalOut(g *sdg.Graph, p *sdg.Proc, aoID sdg.VertexID) (sdg.VertexID, bool) {
	ao := g.Vertices[aoID]
	for _, foID := range p.FormalOuts {
		fo := g.Vertices[foID]
		if ao.IsReturn {
			if fo.IsReturn {
				return foID, true
			}
		} else if !fo.IsReturn && fo.Var == ao.Var {
			return foID, true
		}
	}
	return 0, false
}

// CheckNoMismatches verifies Cor. 3.19 on an SDG: at every non-library
// call-site, the actuals and the callee's formals agree exactly in both
// directions.
func CheckNoMismatches(g *sdg.Graph) error {
	for _, site := range g.Sites {
		if site.Lib {
			continue
		}
		calleeIdx, ok := g.ProcByName[site.Callee]
		if !ok {
			return fmt.Errorf("site %d calls unknown proc %q", site.ID, site.Callee)
		}
		callee := g.Procs[calleeIdx]
		if len(site.ActualIns) != len(callee.FormalIns) {
			return fmt.Errorf("site %d -> %s: %d actual-ins vs %d formal-ins",
				site.ID, site.Callee, len(site.ActualIns), len(callee.FormalIns))
		}
		if len(site.ActualOuts) != len(callee.FormalOuts) {
			return fmt.Errorf("site %d -> %s: %d actual-outs vs %d formal-outs",
				site.ID, site.Callee, len(site.ActualOuts), len(callee.FormalOuts))
		}
		for _, ai := range site.ActualIns {
			if _, ok := matchFormalIn(g, callee, ai); !ok {
				return fmt.Errorf("site %d -> %s: unmatched actual-in %s", site.ID, site.Callee, g.VertexString(ai))
			}
		}
		for _, ao := range site.ActualOuts {
			if _, ok := matchFormalOut(g, callee, ao); !ok {
				return fmt.Errorf("site %d -> %s: unmatched actual-out %s", site.ID, site.Callee, g.VertexString(ao))
			}
		}
	}
	return nil
}

// SliceElems projects the stack-configuration slice onto PDG vertices:
// Elems(L(A1)).
func (r *Result) SliceElems() map[sdg.VertexID]bool {
	out := map[sdg.VertexID]bool{}
	for _, t := range r.A1.Transitions() {
		if r.A1.IsStart(t.From) && !r.Enc.IsSiteSym(t.Sym) {
			out[r.Enc.SymVertex(t.Sym)] = true
		}
	}
	return out
}

// VariantCounts returns, per source procedure in the slice, how many
// specialized versions were created (paper Fig. 18).
func (r *Result) VariantCounts() map[string]int {
	out := map[string]int{}
	for name, vs := range r.VariantsOf {
		out[name] = len(vs)
	}
	return out
}

// ProcVariant describes one specialized procedure for program emission.
type ProcVariant struct {
	Orig *sdg.Proc
	Name string
	// Vertices holds the source vertex IDs included in this variant.
	Vertices map[sdg.VertexID]bool
	// CallTarget maps each source call-site in the variant to the name of
	// the specialized callee.
	CallTarget map[sdg.SiteID]string
}

// Variants returns the emission view of the result, ordered as R.Procs.
func (r *Result) Variants() []ProcVariant {
	out := make([]ProcVariant, len(r.R.Procs))
	for i, rp := range r.R.Procs {
		v := ProcVariant{
			Orig:       findOrigProc(r.Source, rp.Fn.Name),
			Name:       rp.Name,
			Vertices:   map[sdg.VertexID]bool{},
			CallTarget: map[sdg.SiteID]string{},
		}
		for _, rv := range rp.Vertices {
			v.Vertices[r.OriginVertex[rv]] = true
		}
		for site, callee := range r.CallTargets[i] {
			v.CallTarget[site] = r.R.Procs[callee].Name
		}
		out[i] = v
	}
	return out
}

func findOrigProc(g *sdg.Graph, name string) *sdg.Proc {
	return g.Procs[g.ProcByName[name]]
}
