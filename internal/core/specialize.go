package core

import (
	"fmt"
	"time"

	"specslice/internal/fsa"
	"specslice/internal/sdg"
)

// Timings records where the algorithm spent its time (paper Fig. 21). The
// JSON tags fix the canonical wire names of the phases (durations marshal
// as integer nanoseconds); the serving layer's public mirror,
// specslice.Timings, must use the same names — a test asserts the two
// stay in sync, so rename fields in both places or neither.
type Timings struct {
	Encode       time.Duration `json:"encode_ns"`
	Prestar      time.Duration `json:"prestar_ns"`
	AutomatonOps time.Duration `json:"automaton_ns"` // fused reverse/determinize/minimize/reverse chain
	Readout      time.Duration `json:"readout_ns"`
	Total        time.Duration `json:"total_ns"`

	// Sub-phases of AutomatonOps, as reported by the fused fsa.MRD chain.
	AutomatonDeterminize time.Duration `json:"determinize_ns"`
	AutomatonMinimize    time.Duration `json:"minimize_ns"`
}

// Add accumulates o into t (batch aggregation of per-request timings).
func (t *Timings) Add(o Timings) {
	t.Encode += o.Encode
	t.Prestar += o.Prestar
	t.AutomatonOps += o.AutomatonOps
	t.Readout += o.Readout
	t.Total += o.Total
	t.AutomatonDeterminize += o.AutomatonDeterminize
	t.AutomatonMinimize += o.AutomatonMinimize
}

// Result is the output of the specialization-slicing algorithm.
type Result struct {
	Source *sdg.Graph
	Enc    *Encoding

	// A1 accepts the configurations of the stack-configuration slice
	// (as a plain FSA over encoding symbols); A6 is its minimal
	// reverse-deterministic form.
	A1, A6 *fsa.FSA

	// R is the specialized SDG (paper Alg. 1's output). Its storage is
	// pooled: Release returns it for reuse once the caller has
	// materialized what it needs (see Result.Release).
	R *sdg.Graph
	// OriginVertex and OriginSite form the mapping M_C from R back to the
	// source alphabet, indexed by R's dense vertex and site IDs.
	OriginVertex []sdg.VertexID
	OriginSite   []sdg.SiteID
	// VariantsOf maps each source procedure name to the R-proc indices of
	// its specializations (consecutive in R's canonical variant order).
	VariantsOf map[string][]int

	// StatesBeforeDeterminize / StatesAfterDeterminize support the paper's
	// §4.2 observation that determinize shrinks in practice.
	StatesBeforeDeterminize int
	StatesAfterDeterminize  int

	Timings Timings

	// space is the pooled backing of R and the origin tables.
	space *resultSpace
}

// ClosureSlice computes only the stack-configuration slice (Alg. 1 lines
// 1–3): it returns the automaton A1 and the projection of its
// configurations onto PDG vertices, which coincides with the HRB closure
// slice when spec is SDGVertices. Unlike Specialize, it accepts criteria —
// such as arbitrary-stack SDGVertices — whose partition would not satisfy
// Defn. 2.10's one-procedure-per-element property.
func ClosureSlice(g *sdg.Graph, spec CriterionSpec) (*fsa.FSA, map[sdg.VertexID]bool, error) {
	return ClosureSliceWithEncoding(Encode(g), spec)
}

// ClosureSliceWithEncoding is ClosureSlice against a prebuilt (typically
// cached) encoding.
func ClosureSliceWithEncoding(enc *Encoding, spec CriterionSpec) (*fsa.FSA, map[sdg.VertexID]bool, error) {
	a0, err := spec.buildQuery(enc)
	if err != nil {
		return nil, nil, err
	}
	a1 := PAutomatonToFSA(enc.Prestar(a0))
	elems := map[sdg.VertexID]bool{}
	a1.Each(func(t fsa.Transition) {
		if a1.IsStart(t.From) && !enc.IsSiteSym(t.Sym) {
			elems[enc.SymVertex(t.Sym)] = true
		}
	})
	return a1, elems, nil
}

// Specialize runs the specialization-slicing algorithm (paper Alg. 1) on g
// with the given criterion, building a fresh encoding. Callers issuing many
// slice requests against one graph should Encode once and use
// SpecializeWithEncoding (or the engine package, which manages the cache).
func Specialize(g *sdg.Graph, spec CriterionSpec) (*Result, error) {
	t0 := time.Now()
	enc := Encode(g)
	encodeTime := time.Since(t0)
	res, err := SpecializeWithEncoding(enc, spec)
	if err != nil {
		return nil, err
	}
	res.Timings.Encode = encodeTime
	res.Timings.Total += encodeTime
	return res, nil
}

// SpecializeWithEncoding runs Alg. 1 against a prebuilt encoding of the
// SDG, skipping the encode phase. The encoding is read-only here, so many
// goroutines may share one encoding concurrently.
func SpecializeWithEncoding(enc *Encoding, spec CriterionSpec) (*Result, error) {
	res := &Result{Source: enc.G, Enc: enc}
	t0 := time.Now()

	a0, err := spec.buildQuery(enc)
	if err != nil {
		return nil, err
	}

	t1 := time.Now()
	a1 := enc.Prestar(a0)
	res.Timings.Prestar = time.Since(t1)
	res.A1 = PAutomatonToFSA(a1)

	if err := res.finish(); err != nil {
		return nil, err
	}
	res.Timings.Total = time.Since(t0)
	return res, nil
}

// SpecializeFromSliceAutomaton runs Alg. 1 from line 4 on a precomputed
// stack-configuration-slice automaton (a plain FSA over enc's symbols whose
// words are configuration strings vertex·site*). Feature removal (Alg. 2)
// enters the pipeline here with its subtracted configuration language.
func SpecializeFromSliceAutomaton(g *sdg.Graph, enc *Encoding, a1 *fsa.FSA) (*Result, error) {
	res := &Result{Source: g, Enc: enc, A1: a1.Trim()}
	t0 := time.Now()
	if err := res.finish(); err != nil {
		return nil, err
	}
	res.Timings.Total = time.Since(t0)
	return res, nil
}

// finish performs the automaton transformations (lines 4–8) and the SDG
// read-out (lines 9–24). The reverse→determinize→minimize→reverse chain
// runs fused (fsa.MRD): the reversal folds into the subset construction's
// adjacency and the minimal DFA is already epsilon-free, so neither the
// reversed copy nor a separate epsilon-removal pass is materialized.
func (res *Result) finish() error {
	t2 := time.Now()
	res.StatesBeforeDeterminize = res.A1.NumStates()
	a6, st := fsa.MRD(res.A1)
	res.StatesAfterDeterminize = st.DetStates
	res.A6 = a6
	res.Timings.AutomatonDeterminize = st.Determinize
	res.Timings.AutomatonMinimize = st.Minimize
	res.Timings.AutomatonOps = time.Since(t2)

	if !a6.IsReverseDeterministic() {
		return fmt.Errorf("core: internal error: A6 is not reverse-deterministic")
	}

	t3 := time.Now()
	if err := res.readout(); err != nil {
		return err
	}
	res.Timings.Readout = time.Since(t3)
	return nil
}

// CheckNoMismatches verifies Cor. 3.19 on an SDG: at every non-library
// call-site, the actuals and the callee's formals agree exactly in both
// directions.
func CheckNoMismatches(g *sdg.Graph) error {
	for _, site := range g.Sites {
		if site.Lib {
			continue
		}
		calleeIdx, ok := g.ProcByName[site.Callee]
		if !ok {
			return fmt.Errorf("site %d calls unknown proc %q", site.ID, site.Callee)
		}
		callee := g.Procs[calleeIdx]
		if len(site.ActualIns) != len(callee.FormalIns) {
			return fmt.Errorf("site %d -> %s: %d actual-ins vs %d formal-ins",
				site.ID, site.Callee, len(site.ActualIns), len(callee.FormalIns))
		}
		if len(site.ActualOuts) != len(callee.FormalOuts) {
			return fmt.Errorf("site %d -> %s: %d actual-outs vs %d formal-outs",
				site.ID, site.Callee, len(site.ActualOuts), len(callee.FormalOuts))
		}
		for _, ai := range site.ActualIns {
			if _, ok := callee.MatchFormalIn(g, g.Vertices[ai]); !ok {
				return fmt.Errorf("site %d -> %s: unmatched actual-in %s", site.ID, site.Callee, g.VertexString(ai))
			}
		}
		for _, ao := range site.ActualOuts {
			if _, ok := callee.MatchFormalOut(g, g.Vertices[ao]); !ok {
				return fmt.Errorf("site %d -> %s: unmatched actual-out %s", site.ID, site.Callee, g.VertexString(ao))
			}
		}
	}
	return nil
}

// SliceElems projects the stack-configuration slice onto PDG vertices:
// Elems(L(A1)).
func (r *Result) SliceElems() map[sdg.VertexID]bool {
	out := map[sdg.VertexID]bool{}
	r.A1.Each(func(t fsa.Transition) {
		if r.A1.IsStart(t.From) && !r.Enc.IsSiteSym(t.Sym) {
			out[r.Enc.SymVertex(t.Sym)] = true
		}
	})
	return out
}

// VariantCounts returns, per source procedure in the slice, how many
// specialized versions were created (paper Fig. 18).
func (r *Result) VariantCounts() map[string]int {
	out := map[string]int{}
	for name, vs := range r.VariantsOf {
		out[name] = len(vs)
	}
	return out
}

// ProcVariant describes one specialized procedure for program emission.
type ProcVariant struct {
	Orig *sdg.Proc
	Name string
	// Vertices holds the source vertex IDs included in this variant.
	Vertices map[sdg.VertexID]bool
	// CallTarget maps each source call-site in the variant to the name of
	// the specialized callee.
	CallTarget map[sdg.SiteID]string
}

// Variants returns the emission view of the result, ordered as R.Procs.
func (r *Result) Variants() []ProcVariant {
	out := make([]ProcVariant, len(r.R.Procs))
	for i, rp := range r.R.Procs {
		v := ProcVariant{
			Orig:       findOrigProc(r.Source, rp.Fn.Name),
			Name:       rp.Name,
			Vertices:   map[sdg.VertexID]bool{},
			CallTarget: map[sdg.SiteID]string{},
		}
		for _, rv := range rp.Vertices {
			v.Vertices[r.OriginVertex[rv]] = true
		}
		// Every non-library R site is wired to exactly one specialized
		// callee variant (reverse determinism: one call transition per
		// site symbol into the caller's state), recorded in its Callee.
		for _, sid := range rp.Sites {
			rs := r.R.Sites[sid]
			if !rs.Lib {
				v.CallTarget[r.OriginSite[sid]] = rs.Callee
			}
		}
		out[i] = v
	}
	return out
}

func findOrigProc(g *sdg.Graph, name string) *sdg.Proc {
	return g.Procs[g.ProcByName[name]]
}
