package core

import (
	"sort"
	"testing"

	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/slice"
)

const fig1Src = `
int g1; int g2; int g3;

void p(int a, int b) {
  g1 = a;
  g2 = b;
  g3 = g2;
}

int main() {
  g2 = 100;
  p(g2, 2);
  p(g2, 3);
  p(4, g1 + g2);
  printf("%d", g2);
  return 0;
}
`

const fig2Src = `
int g1; int g2;

void s(int a, int b) {
  g1 = b;
  g2 = a;
}

void r(int k) {
  if (k > 0) {
    s(g1, g2);
    r(k - 1);
    s(g1, g2);
  }
}

int main() {
  g1 = 1;
  g2 = 2;
  r(3);
  printf("%d\n", g1);
  return 0;
}
`

func specializeSrc(t *testing.T, src string) *Result {
	t.Helper()
	g := sdg.MustBuild(lang.MustParse(src))
	res, err := Specialize(g, Configs(configsFor(g, PrintfCriterion(g, "main"))))
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	return res
}

// configsFor wraps main-level vertices as empty-stack configurations.
func configsFor(g *sdg.Graph, vs []sdg.VertexID) []Config {
	var out []Config
	for _, v := range vs {
		out = append(out, Config{Vertex: v})
	}
	return out
}

// TestFig1TwoSpecializations reproduces the paper's headline example: p is
// specialized into p_1 (one parameter, b) and p_2 (two parameters).
func TestFig1TwoSpecializations(t *testing.T) {
	res := specializeSrc(t, fig1Src)
	if got := len(res.VariantsOf["p"]); got != 2 {
		t.Fatalf("variants of p = %d, want 2", got)
	}
	if got := len(res.VariantsOf["main"]); got != 1 {
		t.Fatalf("variants of main = %d, want 1", got)
	}

	// Sizes: p_1 = {entry, b, g2=b, g2-out} (4 vertices);
	// p_2 = {entry, a, b, g1=a, g2=b, g1-out, g2-out} (7 vertices).
	var sizes []int
	for _, idx := range res.VariantsOf["p"] {
		sizes = append(sizes, len(res.R.Procs[idx].Vertices))
	}
	sort.Ints(sizes)
	if sizes[0] != 4 || sizes[1] != 7 {
		t.Errorf("p variant sizes = %v, want [4 7]", sizes)
	}

	// Formal parameter patterns: p_1 keeps only b (param 1), p_2 keeps both.
	var paramPatterns [][]int
	for _, idx := range res.VariantsOf["p"] {
		var ps []int
		for _, fi := range res.R.Procs[idx].FormalIns {
			ps = append(ps, res.R.Vertices[fi].Param)
		}
		sort.Ints(ps)
		paramPatterns = append(paramPatterns, ps)
	}
	sort.Slice(paramPatterns, func(i, j int) bool { return len(paramPatterns[i]) < len(paramPatterns[j]) })
	if len(paramPatterns[0]) != 1 || paramPatterns[0][0] != 1 {
		t.Errorf("small variant params = %v, want [1] (just b)", paramPatterns[0])
	}
	if len(paramPatterns[1]) != 2 {
		t.Errorf("large variant params = %v, want [0 1]", paramPatterns[1])
	}

	// Call pattern in main: two calls to the 1-param variant, one to the
	// 2-param variant (paper Fig. 1(b)).
	mainIdx := res.VariantsOf["main"][0]
	callsTo := map[string]int{}
	for _, sid := range res.R.Procs[mainIdx].Sites {
		s := res.R.Sites[sid]
		if !s.Lib {
			callsTo[s.Callee]++
		}
	}
	var counts []int
	for _, c := range callsTo {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	if len(counts) != 2 || counts[0] != 1 || counts[1] != 2 {
		t.Errorf("call distribution = %v, want one callee called twice and one once", callsTo)
	}

	if err := CheckNoMismatches(res.R); err != nil {
		t.Errorf("parameter mismatch in R (violates Cor. 3.19): %v", err)
	}
}

// TestFig2MutualRecursion reproduces the paper's recursive example: s splits
// into two 1-parameter variants, r splits into two variants that become
// mutually recursive.
func TestFig2MutualRecursion(t *testing.T) {
	res := specializeSrc(t, fig2Src)
	if got := len(res.VariantsOf["s"]); got != 2 {
		t.Fatalf("variants of s = %d, want 2", got)
	}
	if got := len(res.VariantsOf["r"]); got != 2 {
		t.Fatalf("variants of r = %d, want 2", got)
	}
	// Each s variant keeps exactly one parameter.
	for _, idx := range res.VariantsOf["s"] {
		params := 0
		for _, fi := range res.R.Procs[idx].FormalIns {
			if res.R.Vertices[fi].Param != sdg.NoParam {
				params++
			}
		}
		if params != 1 {
			t.Errorf("s variant %s has %d params, want 1", res.R.Procs[idx].Name, params)
		}
	}
	// Mutual recursion: each r variant's recursive site calls the *other* r
	// variant.
	rIdx := res.VariantsOf["r"]
	targets := map[int]int{} // r variant -> callee variant at its r-site
	for _, idx := range rIdx {
		for _, sid := range res.R.Procs[idx].Sites {
			s := res.R.Sites[sid]
			if s.Lib {
				continue
			}
			calleeIdx := res.R.ProcByName[s.Callee]
			if res.R.Procs[calleeIdx].Fn.Name == "r" {
				targets[idx] = calleeIdx
			}
		}
	}
	if len(targets) != 2 {
		t.Fatalf("recursive call targets = %v, want 2", targets)
	}
	for from, to := range targets {
		if from == to {
			t.Errorf("r variant %s calls itself; want mutual recursion", res.R.Procs[from].Name)
		}
		if back, ok := targets[to]; !ok || back != from {
			t.Errorf("recursion is not mutual: %v", targets)
		}
	}
	if err := CheckNoMismatches(res.R); err != nil {
		t.Errorf("parameter mismatch in R: %v", err)
	}
}

// TestElemsMatchesHRBClosure cross-validates the PDS stack-configuration
// slice against the independent HRB two-phase implementation: projecting
// the configurations onto PDG vertices must give exactly the closure slice.
func TestElemsMatchesHRBClosure(t *testing.T) {
	for _, src := range []string{fig1Src, fig2Src} {
		g := sdg.MustBuild(lang.MustParse(src))
		crit := PrintfCriterion(g, "main")

		_, elems, err := ClosureSlice(g, SDGVertices(crit))
		if err != nil {
			t.Fatalf("ClosureSlice: %v", err)
		}

		slice.ComputeSummaryEdges(g)
		hrb := slice.Backward(g, crit)

		for v := range hrb {
			if !elems[v] {
				t.Errorf("HRB has %s but PDS slice does not", g.VertexString(v))
			}
		}
		for v := range elems {
			if !hrb[v] {
				t.Errorf("PDS slice has %s but HRB does not", g.VertexString(v))
			}
		}
	}
}

// TestA6PropertiesFig1 checks the automaton-side claims of §3 on Fig. 1:
// A6 is reverse-deterministic, has one initial and one final state, and
// accepts the same language as A1.
func TestA6PropertiesFig1(t *testing.T) {
	res := specializeSrc(t, fig1Src)
	if !res.A6.IsReverseDeterministic() {
		t.Error("A6 is not reverse-deterministic")
	}
	if len(res.A6.Starts()) != 1 || len(res.A6.Finals()) != 1 {
		t.Errorf("A6 has %d starts and %d finals, want 1 and 1", len(res.A6.Starts()), len(res.A6.Finals()))
	}
	// The five automaton operations must not change the language.
	for _, w := range res.A1.EnumerateWords(6, 500) {
		if !res.A6.Accepts(w) {
			t.Errorf("A6 rejects %v accepted by A1", w)
		}
	}
	for _, w := range res.A6.EnumerateWords(6, 500) {
		if !res.A1.Accepts(w) {
			t.Errorf("A1 rejects %v accepted by A6", w)
		}
	}
}

// TestReslicingCheck runs the paper's §8.3 self-validation on both figures.
func TestReslicingCheck(t *testing.T) {
	for _, src := range []string{fig1Src, fig2Src} {
		g := sdg.MustBuild(lang.MustParse(src))
		spec := Configs(configsFor(g, PrintfCriterion(g, "main")))
		res, err := Specialize(g, spec)
		if err != nil {
			t.Fatalf("Specialize: %v", err)
		}
		if err := res.ReslicingCheck(spec); err != nil {
			t.Errorf("reslicing check: %v", err)
		}
	}
}

// TestCriterionWithStack slices Fig. 2 from a configuration inside the
// recursion (r's s-call in a specific calling context).
func TestCriterionWithStack(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig2Src))
	// Criterion: the g1-out actual-out of the first s call, inside r called
	// from main.
	var rSiteFromMain, sSiteInR sdg.SiteID = -1, -1
	for _, s := range g.Sites {
		if s.Lib {
			continue
		}
		if s.Callee == "r" && g.Procs[s.CallerProc].Name == "main" {
			rSiteFromMain = s.ID
		}
		if s.Callee == "s" && sSiteInR < 0 {
			sSiteInR = s.ID
		}
	}
	if rSiteFromMain < 0 || sSiteInR < 0 {
		t.Fatal("sites not found")
	}
	target := g.Sites[sSiteInR].ActualOuts[0]
	res, err := Specialize(g, Configs([]Config{{Vertex: target, Stack: []sdg.SiteID{rSiteFromMain}}}))
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	if err := CheckNoMismatches(res.R); err != nil {
		t.Errorf("mismatch: %v", err)
	}
	if len(res.VariantsOf["main"]) != 1 {
		t.Errorf("main variants = %d, want 1", len(res.VariantsOf["main"]))
	}
}

// TestAllContextsCriterion uses the Vertices criterion (all calling
// contexts, as in the paper's wc/go experiments).
func TestAllContextsCriterion(t *testing.T) {
	src := `
int g;
void leaf(int x) { printf("%d", x + g); }
void mid(int a) { leaf(a * 2); }
int main() {
  g = 5;
  mid(1);
  leaf(3);
  return 0;
}
`
	g := sdg.MustBuild(lang.MustParse(src))
	res, err := Specialize(g, Vertices(PrintfCriterion(g, "")))
	if err != nil {
		t.Fatalf("Specialize: %v", err)
	}
	if err := CheckNoMismatches(res.R); err != nil {
		t.Errorf("mismatch: %v", err)
	}
	if len(res.VariantsOf["leaf"]) < 1 {
		t.Error("leaf missing from slice")
	}
}

// TestVariantVertexSetsAreDistinct: Defn. 2.10(3) — two variants of the
// same procedure must have different Elems sets (minimality).
func TestVariantVertexSetsAreDistinct(t *testing.T) {
	for _, src := range []string{fig1Src, fig2Src} {
		res := specializeSrc(t, src)
		for name, idxs := range res.VariantsOf {
			seen := map[string]bool{}
			for _, idx := range idxs {
				var key string
				var vs []int
				for _, rv := range res.R.Procs[idx].Vertices {
					vs = append(vs, int(res.OriginVertex[rv]))
				}
				sort.Ints(vs)
				for _, v := range vs {
					key += string(rune(v)) + ","
				}
				if seen[key] {
					t.Errorf("%s has two variants with identical element sets (not minimal)", name)
				}
				seen[key] = true
			}
		}
	}
}

func TestDeterminizeShrinks(t *testing.T) {
	// §4.2: for automata arising from Prestar, determinize's output is
	// smaller than its input.
	res := specializeSrc(t, fig1Src)
	if res.StatesAfterDeterminize > res.StatesBeforeDeterminize {
		t.Logf("determinize grew on fig1: %d -> %d (allowed, but unexpected)",
			res.StatesBeforeDeterminize, res.StatesAfterDeterminize)
	}
}

func TestEmptySliceError(t *testing.T) {
	g := sdg.MustBuild(lang.MustParse(fig1Src))
	if _, err := Specialize(g, Configs(nil)); err == nil {
		t.Error("want error for empty criterion")
	}
}
