package core

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"specslice/internal/sdg"
)

// This file implements Alg. 1 lines 9–24 — constructing the specialized
// SDG R from the MRD automaton A6 — on dense, arena-backed structures.
// The readout is the largest warm phase once Prestar and the automaton
// chain are served from caches, so it follows the same discipline as the
// fsa pipeline and the pds Prestar engine:
//
//   - A6 is consumed through its state-indexed adjacency (Out lists), and
//     the per-state Elems sets live in one CSR over A6 states instead of a
//     map of slices;
//   - variant identity and ordering use integer-indexed tables (stamped
//     membership marks over source vertices, permutation sort over packed
//     (proc, vertex-list) keys) in place of the former stateInfo maps and
//     "%d,%d,…" string keys;
//   - actual-to-formal matching is a merge walk over the shared formal
//     ordering invariant (positional params ascending, then globals sorted;
//     see sdg.Proc.MatchFormalIn) — the linear matchFormalIn/matchFormalOut
//     scans survive only as the differential reference in reference_test.go;
//   - all scratch comes from a pooled arena, and the result graph itself is
//     carved out of a pooled sdg.Arena that Result.Release returns, so a
//     warm slicing service re-runs the whole phase with near-zero
//     allocation.

// roScratch is the pooled per-readout scratch: bump-allocated int32 and
// VertexID buffers, the stamped membership tables, and the growable edge
// and call-edge lists. Nothing in it survives into the Result.
type roScratch struct {
	i32buf []int32
	i32off int
	vidbuf []sdg.VertexID
	vidoff int

	callEdges []roCallEdge
	edges     []sdg.Edge
	names     []string

	mark  []int32 // per source vertex: epoch of the variant containing it
	newID []sdg.VertexID
	epoch int32

	order variantOrder
}

type roCallEdge struct {
	callee, caller int32
	site           sdg.SiteID
}

var roPool = sync.Pool{New: func() any { return &roScratch{} }}

func getROScratch() *roScratch {
	sc := roPool.Get().(*roScratch)
	sc.i32off, sc.vidoff = 0, 0
	return sc
}

func putROScratch(sc *roScratch) { roPool.Put(sc) }

func (sc *roScratch) i32(n int) []int32 {
	if sc.i32off+n > len(sc.i32buf) {
		c := 2 * len(sc.i32buf)
		if c < sc.i32off+n {
			c = sc.i32off + n
		}
		if c < 1024 {
			c = 1024
		}
		sc.i32buf = make([]int32, c)
		sc.i32off = 0
	}
	s := sc.i32buf[sc.i32off : sc.i32off+n : sc.i32off+n]
	sc.i32off += n
	clear(s)
	return s
}

func (sc *roScratch) vids(n int) []sdg.VertexID {
	if sc.vidoff+n > len(sc.vidbuf) {
		c := 2 * len(sc.vidbuf)
		if c < sc.vidoff+n {
			c = sc.vidoff + n
		}
		if c < 1024 {
			c = 1024
		}
		sc.vidbuf = make([]sdg.VertexID, c)
		sc.vidoff = 0
	}
	s := sc.vidbuf[sc.vidoff : sc.vidoff+n : sc.vidoff+n]
	sc.vidoff += n
	clear(s)
	return s
}

// marks ensures the stamped membership tables cover n source vertices.
func (sc *roScratch) marks(n int) {
	if len(sc.mark) < n {
		sc.mark = make([]int32, n)
		sc.newID = make([]sdg.VertexID, n)
	}
}

// variantOrder sorts a permutation of variant indexes by (source proc,
// lexicographic vertex list) — the canonical variant order. It replaces
// the stateInfo string keys; sorting through a pointer receiver keeps the
// sort.Sort call allocation-free.
type variantOrder struct {
	idx    []int32 // the permutation being sorted
	proc   []int32 // per variant: source proc index
	lo, hi []int32 // per variant: vertex range in vdata
	vdata  []sdg.VertexID
}

func (o *variantOrder) Len() int      { return len(o.idx) }
func (o *variantOrder) Swap(i, j int) { o.idx[i], o.idx[j] = o.idx[j], o.idx[i] }
func (o *variantOrder) Less(i, j int) bool {
	a, b := o.idx[i], o.idx[j]
	if o.proc[a] != o.proc[b] {
		return o.proc[a] < o.proc[b]
	}
	va := o.vdata[o.lo[a]:o.hi[a]]
	vb := o.vdata[o.lo[b]:o.hi[b]]
	for k := 0; k < len(va) && k < len(vb); k++ {
		if va[k] != vb[k] {
			return va[k] < vb[k]
		}
	}
	return len(va) < len(vb)
}

// resultSpace owns a Result's pooled storage: the sdg.Arena carrying R and
// the VariantsOf map with its value backing. Result.Release returns it.
type resultSpace struct {
	arena      *sdg.Arena
	variantsOf map[string][]int
	ints       []int
}

var spacePool = sync.Pool{New: func() any {
	return &resultSpace{arena: sdg.NewArena(), variantsOf: map[string][]int{}}
}}

// Release returns the Result's graph storage — R, OriginVertex/OriginSite,
// VariantsOf, and everything reachable from them — to the internal pool,
// after which the Result and those structures must not be used. Callers
// that materialize what they need (Variants, VariantCounts, emitted
// source) and drop the Result, like the HTTP service, release to make warm
// readouts allocation-free; callers that retain the Result simply skip the
// call and let the garbage collector reclaim it.
func (r *Result) Release() {
	sp := r.space
	if sp == nil {
		return
	}
	r.space = nil
	r.R = nil
	r.OriginVertex, r.OriginSite, r.VariantsOf = nil, nil, nil
	clear(sp.variantsOf)
	sp.ints = sp.ints[:0]
	spacePool.Put(sp)
}

// ReadoutOnly re-runs the readout phase (Alg. 1 lines 9–24) of a completed
// result against its existing A6 into a fresh Result — the isolation hook
// the engine benchmark uses to time the phase and count its allocations.
func ReadoutOnly(src *Result) (*Result, error) {
	res := &Result{Source: src.Source, Enc: src.Enc, A1: src.A1, A6: src.A6}
	if err := res.readout(); err != nil {
		return nil, err
	}
	return res, nil
}

// formalInLess orders actual-in/formal-in vertices by the shared matching
// key: positional parameters (ascending Param) before globals (ascending
// Var) — the order Build creates them in and every variant preserves.
func formalInLess(a, b *sdg.Vertex) bool {
	aPos, bPos := a.Param != sdg.NoParam, b.Param != sdg.NoParam
	if aPos != bPos {
		return aPos
	}
	if aPos {
		return a.Param < b.Param
	}
	return a.Var < b.Var
}

func formalInMatches(f, a *sdg.Vertex) bool {
	if a.Param != sdg.NoParam {
		return f.Param == a.Param
	}
	return f.Param == sdg.NoParam && f.Var == a.Var
}

// formalOutLess orders actual-out/formal-out vertices: the return value
// first, then globals ascending by Var.
func formalOutLess(a, b *sdg.Vertex) bool {
	if a.IsReturn != b.IsReturn {
		return a.IsReturn
	}
	if a.IsReturn {
		return false
	}
	return a.Var < b.Var
}

func formalOutMatches(f, a *sdg.Vertex) bool {
	if a.IsReturn {
		return f.IsReturn
	}
	return !f.IsReturn && f.Var == a.Var
}

// readout implements Alg. 1 lines 9–24: construct the specialized SDG R
// from the MRD automaton A6. See the file comment for the representation.
func (r *Result) readout() error {
	a6 := r.A6
	g := r.Source
	enc := r.Enc
	n := a6.NumStates()

	if n == 0 || a6.NumStarts() == 0 {
		return fmt.Errorf("core: slice is empty (criterion depends on nothing)")
	}
	if a6.NumStarts() != 1 {
		return fmt.Errorf("core: internal error: A6 has %d start states", a6.NumStarts())
	}
	q0 := a6.Starts()[0]

	sc := getROScratch()
	defer putROScratch(sc)

	// Pass 1 over A6's adjacency: count the Elems sets (transitions leaving
	// q0, bucketed by target state) and the call-site transitions among
	// non-initial states.
	vstart := sc.i32(n + 1)
	totalV, nCall := 0, 0
	for s := 0; s < n; s++ {
		for _, t := range a6.Out(s) {
			if s == q0 {
				if enc.IsSiteSym(t.Sym) {
					return fmt.Errorf("core: internal error: call-site symbol on an initial transition")
				}
				if t.To == q0 {
					return fmt.Errorf("core: internal error: self-loop on the initial state")
				}
				vstart[t.To+1]++
				totalV++
			} else {
				if !enc.IsSiteSym(t.Sym) {
					return fmt.Errorf("core: internal error: vertex symbol %d on a non-initial transition", t.Sym)
				}
				nCall++
			}
		}
	}
	for s := 0; s < n; s++ {
		vstart[s+1] += vstart[s]
	}

	// Pass 2: fill the per-state vertex CSR and the call-edge list.
	vdata := sc.vids(totalV)[:totalV]
	vcur := sc.i32(n)
	copy(vcur, vstart[:n])
	callEdges := sc.callEdges[:0]
	for s := 0; s < n; s++ {
		for _, t := range a6.Out(s) {
			if s == q0 {
				vdata[vcur[t.To]] = enc.SymVertex(t.Sym)
				vcur[t.To]++
			} else {
				callEdges = append(callEdges, roCallEdge{callee: int32(s), caller: int32(t.To), site: enc.SymSite(t.Sym)})
			}
		}
	}
	sc.callEdges = callEdges[:0]

	// Variants: one per state with a non-empty Elems set. Sort each set,
	// check Defn. 2.10's one-procedure-per-element rule, and order the
	// variants canonically by (source proc, lexicographic vertex list).
	nv := 0
	for s := 0; s < n; s++ {
		if vstart[s+1] > vstart[s] {
			nv++
		}
	}
	infoState := sc.i32(nv)
	infoProc := sc.i32(nv)
	infoLo := sc.i32(nv)
	infoHi := sc.i32(nv)
	order := sc.i32(nv)
	vi := 0
	for s := 0; s < n; s++ {
		lo, hi := vstart[s], vstart[s+1]
		if lo == hi {
			continue
		}
		vs := vdata[lo:hi]
		slices.Sort(vs)
		proc := g.Vertices[vs[0]].Proc
		for _, v := range vs[1:] {
			if g.Vertices[v].Proc != proc {
				return fmt.Errorf("core: partition element mixes procedures %s and %s",
					g.Procs[proc].Name, g.Procs[g.Vertices[v].Proc].Name)
			}
		}
		infoState[vi], infoProc[vi] = int32(s), int32(proc)
		infoLo[vi], infoHi[vi] = lo, hi
		order[vi] = int32(vi)
		vi++
	}
	sc.order = variantOrder{idx: order, proc: infoProc, lo: infoLo, hi: infoHi, vdata: vdata}
	sort.Sort(&sc.order)

	// Assign names along the sorted order: a single variant keeps the
	// original name; multiple variants are numbered, and the final-state
	// variant of main keeps "main". Numbered names come from the
	// encoding's cache, so warm repeats allocate nothing.
	if cap(sc.names) < nv {
		sc.names = make([]string, nv)
	}
	names := sc.names[:nv]
	for gi := 0; gi < nv; {
		ge := gi
		for ge < nv && infoProc[order[ge]] == infoProc[order[gi]] {
			ge++
		}
		procIdx := int(infoProc[order[gi]])
		orig := g.Procs[procIdx].Name
		switch {
		case ge-gi == 1:
			names[order[gi]] = orig
		case orig == "main":
			// Keep "main" on the final-state variant.
			num := 1
			for k := gi; k < ge; k++ {
				if a6.IsFinal(int(infoState[order[k]])) {
					names[order[k]] = "main"
				} else {
					names[order[k]] = enc.variantName(procIdx, num)
					num++
				}
			}
		default:
			for k := gi; k < ge; k++ {
				names[order[k]] = enc.variantName(procIdx, k-gi+1)
			}
		}
		gi = ge
	}

	// Pass A: per-variant membership counts to size the result arena
	// exactly — kept formals, kept sites with their kept actuals.
	sc.marks(g.NumVertices())
	totalSites, totalFormals, totalActuals := 0, 0, 0
	for vi := 0; vi < nv; vi++ {
		sc.epoch++
		vs := vdata[infoLo[vi]:infoHi[vi]]
		for _, v := range vs {
			sc.mark[v] = sc.epoch
		}
		orig := g.Procs[infoProc[vi]]
		if vs[0] != orig.Entry {
			return fmt.Errorf("core: internal error: variant of %s lacks its entry vertex", orig.Name)
		}
		for _, fi := range orig.FormalIns {
			if sc.mark[fi] == sc.epoch {
				totalFormals++
			}
		}
		for _, fo := range orig.FormalOuts {
			if sc.mark[fo] == sc.epoch {
				totalFormals++
			}
		}
		for _, sid := range orig.Sites {
			src := g.Sites[sid]
			if sc.mark[src.CallVertex] != sc.epoch {
				continue
			}
			totalSites++
			for _, ai := range src.ActualIns {
				if sc.mark[ai] == sc.epoch {
					totalActuals++
				}
			}
			for _, ao := range src.ActualOuts {
				if sc.mark[ao] == sc.epoch {
					totalActuals++
				}
			}
		}
	}

	// Acquire the pooled result space and size it: every per-proc and
	// per-site ID list, plus OriginVertex/OriginSite, carves from two
	// typed arenas.
	sp := spacePool.Get().(*resultSpace)
	fail := func(err error) error {
		clear(sp.variantsOf)
		sp.ints = sp.ints[:0]
		spacePool.Put(sp)
		return err
	}
	nVIDs := 2*totalV + totalFormals + totalActuals // proc lists + origins + formals + actuals
	nSIDs := 2 * totalSites                         // proc site lists + origins
	arena := sp.arena
	R := arena.Prepare(g.Prog, totalV, nv, totalSites, nVIDs, nSIDs)

	r.OriginVertex = arena.VIDs(totalV)
	r.OriginSite = arena.SIDs(totalSites)
	stateToR := sc.i32(n)

	// Pass B: build the variants in canonical order — vertices (in source
	// ID order), formal lists, site skeletons, induced intraprocedural
	// edges (Defn. 3.13). Edges accumulate in scratch and are installed as
	// one packed adjacency at the end.
	edges := sc.edges[:0]
	for oi := 0; oi < nv; oi++ {
		vi := int(order[oi])
		orig := g.Procs[infoProc[vi]]
		rp := arena.AddProc(sdg.Proc{Name: names[vi], Fn: orig.Fn})
		stateToR[infoState[vi]] = int32(rp.Index) + 1
		vs := vdata[infoLo[vi]:infoHi[vi]]

		sc.epoch++
		rpVerts := arena.VIDs(len(vs))
		for _, v := range vs {
			id, nvx := arena.AddVertex(*g.Vertices[v])
			nvx.Proc = rp.Index
			nvx.Site = -1 // re-linked below
			sc.mark[v] = sc.epoch
			sc.newID[v] = id
			rpVerts = append(rpVerts, id)
			r.OriginVertex = append(r.OriginVertex, v)
		}
		rp.Vertices = rpVerts
		rp.Entry = sc.newID[orig.Entry]

		kept := 0
		for _, fi := range orig.FormalIns {
			if sc.mark[fi] == sc.epoch {
				kept++
			}
		}
		rp.FormalIns = arena.VIDs(kept)
		for _, fi := range orig.FormalIns {
			if sc.mark[fi] == sc.epoch {
				rp.FormalIns = append(rp.FormalIns, sc.newID[fi])
			}
		}
		kept = 0
		for _, fo := range orig.FormalOuts {
			if sc.mark[fo] == sc.epoch {
				kept++
			}
		}
		rp.FormalOuts = arena.VIDs(kept)
		for _, fo := range orig.FormalOuts {
			if sc.mark[fo] == sc.epoch {
				rp.FormalOuts = append(rp.FormalOuts, sc.newID[fo])
			}
		}

		kept = 0
		for _, sid := range orig.Sites {
			if sc.mark[g.Sites[sid].CallVertex] == sc.epoch {
				kept++
			}
		}
		rp.Sites = arena.SIDs(kept)
		for _, sid := range orig.Sites {
			src := g.Sites[sid]
			if sc.mark[src.CallVertex] != sc.epoch {
				continue
			}
			rs := arena.AddSite(sdg.Site{
				CallerProc: rp.Index,
				Callee:     src.Callee, Lib: src.Lib, Stmt: src.Stmt,
				CallVertex: sc.newID[src.CallVertex],
			})
			nai, nao := 0, 0
			for _, ai := range src.ActualIns {
				if sc.mark[ai] == sc.epoch {
					nai++
				}
			}
			for _, ao := range src.ActualOuts {
				if sc.mark[ao] == sc.epoch {
					nao++
				}
			}
			rs.ActualIns = arena.VIDs(nai)
			for _, ai := range src.ActualIns {
				if sc.mark[ai] == sc.epoch {
					rs.ActualIns = append(rs.ActualIns, sc.newID[ai])
				}
			}
			rs.ActualOuts = arena.VIDs(nao)
			for _, ao := range src.ActualOuts {
				if sc.mark[ao] == sc.epoch {
					rs.ActualOuts = append(rs.ActualOuts, sc.newID[ao])
				}
			}
			rp.Sites = append(rp.Sites, rs.ID)
			r.OriginSite = append(r.OriginSite, sid)
			R.Vertices[rs.CallVertex].Site = rs.ID
			for _, vid := range rs.ActualIns {
				R.Vertices[vid].Site = rs.ID
			}
			for _, vid := range rs.ActualOuts {
				R.Vertices[vid].Site = rs.ID
			}
		}

		// Induced intraprocedural edges (Defn. 3.13).
		for _, v := range vs {
			from := sc.newID[v]
			for _, e := range g.Out(v) {
				if (e.Kind == sdg.EdgeControl || e.Kind == sdg.EdgeFlow) && sc.mark[e.To] == sc.epoch {
					edges = append(edges, sdg.Edge{From: from, To: sc.newID[e.To], Kind: e.Kind})
				}
			}
		}
	}

	// Wire the interprocedural edges from A6's call-site transitions
	// (Alg. 1 lines 19–24): q1 --C--> q2 means q2's PDG calls q1's PDG at
	// (the copy of) site C. Actuals pair with formals by a single merge
	// walk over the shared ordering invariant.
	for _, ce := range callEdges {
		if stateToR[ce.callee] == 0 || stateToR[ce.caller] == 0 {
			sc.edges = edges[:0]
			return fail(fmt.Errorf("core: internal error: state %d has call transitions but no vertices", ce.callee))
		}
		callerIdx := int(stateToR[ce.caller]) - 1
		calleeIdx := int(stateToR[ce.callee]) - 1
		caller := R.Procs[callerIdx]
		callee := R.Procs[calleeIdx]
		var rs *sdg.Site
		for _, sid := range caller.Sites {
			if r.OriginSite[sid] == ce.site {
				rs = R.Sites[sid]
			}
		}
		if rs == nil {
			sc.edges = edges[:0]
			return fail(fmt.Errorf("core: internal error: caller variant %s lacks site %d", caller.Name, ce.site))
		}
		rs.Callee = callee.Name
		edges = append(edges, sdg.Edge{From: rs.CallVertex, To: callee.Entry, Kind: sdg.EdgeCall})
		j := 0
		for _, aiID := range rs.ActualIns {
			ai := R.Vertices[aiID]
			for j < len(callee.FormalIns) && formalInLess(R.Vertices[callee.FormalIns[j]], ai) {
				j++
			}
			if j == len(callee.FormalIns) || !formalInMatches(R.Vertices[callee.FormalIns[j]], ai) {
				sc.edges = edges[:0]
				return fail(fmt.Errorf("core: parameter mismatch: %s has no formal for %s", callee.Name, R.VertexString(aiID)))
			}
			edges = append(edges, sdg.Edge{From: aiID, To: callee.FormalIns[j], Kind: sdg.EdgeParamIn})
			j++
		}
		j = 0
		for _, aoID := range rs.ActualOuts {
			ao := R.Vertices[aoID]
			for j < len(callee.FormalOuts) && formalOutLess(R.Vertices[callee.FormalOuts[j]], ao) {
				j++
			}
			if j == len(callee.FormalOuts) || !formalOutMatches(R.Vertices[callee.FormalOuts[j]], ao) {
				sc.edges = edges[:0]
				return fail(fmt.Errorf("core: parameter mismatch: %s has no formal-out for %s", callee.Name, R.VertexString(aoID)))
			}
			edges = append(edges, sdg.Edge{From: callee.FormalOuts[j], To: aoID, Kind: sdg.EdgeParamOut})
			j++
		}
	}

	arena.InstallEdges(edges)
	sc.edges = edges[:0]

	// VariantsOf: R proc indexes per source name — consecutive runs of the
	// canonical order, with value backing carved from the space.
	if cap(sp.ints) < nv {
		sp.ints = make([]int, 0, nv)
	}
	for gi := 0; gi < nv; {
		ge := gi
		for ge < nv && infoProc[order[ge]] == infoProc[order[gi]] {
			ge++
		}
		lo := len(sp.ints)
		for k := gi; k < ge; k++ {
			sp.ints = append(sp.ints, k)
		}
		sp.variantsOf[g.Procs[infoProc[order[gi]]].Name] = sp.ints[lo:len(sp.ints):len(sp.ints)]
		gi = ge
	}

	r.R = R
	r.VariantsOf = sp.variantsOf
	r.space = sp
	return nil
}
