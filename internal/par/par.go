// Package par provides the tiny deterministic fork-join helper the
// analysis packages use to shard per-procedure work (PDG construction,
// mod/ref summary batches) across a bounded worker pool. Work items are
// identified by index, so callers write results into per-index slots and
// merge deterministically afterwards; the helper never reorders or drops
// items, and a worker count of one runs everything inline on the calling
// goroutine (no scheduling, byte-identical to a plain loop).
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested worker-pool size: values <= 0 mean
// GOMAXPROCS, mirroring engine.BatchOptions.Workers.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// For runs f(i) for every i in [0, n), fanning the indexes out across at
// most workers goroutines (after Workers normalization, and never more
// than n). It returns when every call has completed. f must not panic;
// workers == 1 (or n <= 1) runs inline on the caller's goroutine.
func For(workers, n int, f func(i int)) {
	if n == 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
