// Package par provides the tiny deterministic fork-join helper the
// analysis packages use to shard per-procedure work (PDG construction,
// mod/ref summary batches) across a bounded worker pool. Work items are
// identified by index, so callers write results into per-index slots and
// merge deterministically afterwards; the helper never reorders or drops
// items, and a worker count of one runs everything inline on the calling
// goroutine (no scheduling, byte-identical to a plain loop).
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a requested worker-pool size: values <= 0 mean
// GOMAXPROCS, mirroring engine.BatchOptions.Workers.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForWeighted runs f(i) for every i in [0, n) like For, but instead of
// handing indexes to workers one at a time it statically partitions them
// into at most `workers` contiguous chunks of near-equal total weight
// (weight(i) is the caller's cost estimate for item i, e.g. a procedure's
// statement count) and runs each chunk on one goroutine. This keeps the
// parallel split coarse: a level of many tiny work items costs a handful
// of goroutine handoffs instead of one mutex round-trip per item, which
// is what lets fine-grained fixpoint schedules actually win on real
// cores. The partition depends only on (workers, n, weights), never on
// scheduling, so callers with order-independent work items (unique
// fixpoints, per-index output slots) stay deterministic at every worker
// count. workers <= 1 (or n <= 1) runs everything inline on the caller's
// goroutine.
func ForWeighted(workers, n int, weight func(i int) int, f func(i int)) {
	if n == 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	totalW := 0
	for i := 0; i < n; i++ {
		totalW += weight(i)
	}
	// Greedy cut: each chunk closes once it reaches its fair share of the
	// remaining weight, so trailing chunks stay balanced even when early
	// items are heavy.
	type span struct{ start, end int }
	chunks := make([]span, 0, workers)
	start, acc, remaining := 0, 0, totalW
	for i := 0; i < n; i++ {
		acc += weight(i)
		chunksLeft := workers - len(chunks)
		if chunksLeft > 1 && acc*chunksLeft >= remaining && n-(i+1) >= chunksLeft-1 {
			chunks = append(chunks, span{start, i + 1})
			start = i + 1
			remaining -= acc
			acc = 0
		}
	}
	chunks = append(chunks, span{start, n})
	if len(chunks) <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	for _, c := range chunks {
		wg.Add(1)
		go func(c span) {
			defer wg.Done()
			for i := c.start; i < c.end; i++ {
				f(i)
			}
		}(c)
	}
	wg.Wait()
}

// For runs f(i) for every i in [0, n), fanning the indexes out across at
// most workers goroutines (after Workers normalization, and never more
// than n). It returns when every call has completed. f must not panic;
// workers == 1 (or n <= 1) runs inline on the caller's goroutine.
func For(workers, n int, f func(i int)) {
	if n == 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next sync.Mutex
	cursor := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := cursor
				cursor++
				next.Unlock()
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
