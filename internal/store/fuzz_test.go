package store

import (
	"testing"

	"specslice/internal/engine"
	"specslice/internal/lang"
	"specslice/internal/sdg"
	"specslice/internal/workload"
)

// FuzzSnapshotDecode throws arbitrary bytes at the engine snapshot
// decoder — the exact bytes the store hands the server after a disk read,
// which CRCs make unlikely but not impossible to be garbage (and which an
// attacker-controlled store directory makes trivially so). The decoder
// must never panic and never allocate beyond a small multiple of the
// input (its count validation bounds every allocation by the remaining
// input length). Seeds are real snapshots of the paper's figure programs
// and a generated suite, so mutation explores the format's interior, not
// just the magic check.
func FuzzSnapshotDecode(f *testing.F) {
	for _, src := range []string{workload.Fig1Source, workload.Fig16Source} {
		g, err := sdg.Build(lang.MustParse(src))
		if err != nil {
			f.Fatal(err)
		}
		data, err := engine.New(g).Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// A truncated and a corrupted variant steer the mutator toward the
		// torn-tail and bit-rot shapes recovery actually produces.
		f.Add(data[:len(data)/2])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/3] ^= 0x20
		f.Add(flipped)
	}
	g, err := sdg.Build(workload.Generate(workload.Benchmarks()[0]))
	if err != nil {
		f.Fatal(err)
	}
	if data, err := engine.New(g).Snapshot(); err == nil {
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte("SSNAP\x00\x00\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		eng, err := engine.FromSnapshot(data)
		if err != nil {
			return
		}
		// A decode that passes validation must yield a usable engine: the
		// summary fixpoint and encoding must not crash either.
		if eng.Graph().NumVertices() > 0 {
			eng.EnsureSummaryEdges()
		}
	})
}
