package store

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

const dir = "/store"

func openMem(t *testing.T, fs FS, opts Options) *Store {
	t.Helper()
	opts.FS = fs
	opts.Logf = t.Logf
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return s
}

func payload(i int) []byte {
	return bytes.Repeat([]byte{byte(i), byte(i >> 8), 0xA5}, 40+i%17)
}

func key(i int) string { return fmt.Sprintf("key-%04d", i) }

func TestPutGetRoundTrip(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	for i := 0; i < 50; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < 50; i++ {
		got, ok, err := s.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d: payload differs", i)
		}
	}
	if _, ok, err := s.Get("absent"); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	if head, ok := s.FamilyHead("fam"); !ok || head != key(49) {
		t.Fatalf("family head: %q %v", head, ok)
	}
	st := s.Stats()
	if st.Entries != 50 || st.CorruptRecords != 0 || st.BytesOnDisk <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Put("late", "", nil); err != ErrClosed {
		t.Fatalf("put after close: %v", err)
	}
}

func TestReopenAfterCleanClose(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Advance("fam", key(19), key(7)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openMem(t, fs, Options{})
	defer s2.Close()
	st := s2.Stats()
	if !st.RecoveredClean {
		t.Fatal("clean close not detected")
	}
	if st.RecoveredEntries != 20 {
		t.Fatalf("recovered %d entries, want 20", st.RecoveredEntries)
	}
	for i := 0; i < 20; i++ {
		got, ok, err := s2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, payload(i)) {
			t.Fatalf("get %d after reopen: ok=%v err=%v", i, ok, err)
		}
	}
	if head, ok := s2.FamilyHead("fam"); !ok || head != key(7) {
		t.Fatalf("advance lineage lost: head=%q ok=%v", head, ok)
	}
}

func TestReopenAfterCrashNoCleanMarker(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), "", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: simulate SIGKILL by reopening the surviving bytes.
	s2 := openMem(t, fs.Snapshot(), Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.RecoveredClean {
		t.Fatal("crash misreported as clean close")
	}
	if st.RecoveredEntries != 5 {
		t.Fatalf("recovered %d entries, want 5", st.RecoveredEntries)
	}
}

func TestSegmentRotationAndBudgetCompaction(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{SegmentMaxBytes: 512, BudgetBytes: 2048})
	for i := 0; i < 40; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.EvictedEntries == 0 {
		t.Fatal("budget compaction never ran")
	}
	if st.BytesOnDisk > 2048+512+int64(len(payload(39)))+recHeader {
		t.Fatalf("bytes on disk %d way over budget", st.BytesOnDisk)
	}
	// Newest entries must survive; evicted ones must be clean misses.
	if _, ok, err := s.Get(key(39)); !ok || err != nil {
		t.Fatalf("newest entry lost: ok=%v err=%v", ok, err)
	}
	hits := 0
	for i := 0; i < 40; i++ {
		if _, ok, err := s.Get(key(i)); err != nil {
			t.Fatalf("get %d errored: %v", i, err)
		} else if ok {
			hits++
		}
	}
	if hits == 40 || hits == 0 {
		t.Fatalf("hits=%d, want partial survival", hits)
	}
	s.Close()

	// Compaction state must survive reopen: no resurrection of evicted keys.
	s2 := openMem(t, fs, Options{SegmentMaxBytes: 512, BudgetBytes: 2048})
	defer s2.Close()
	hits2 := 0
	for i := 0; i < 40; i++ {
		if _, ok, _ := s2.Get(key(i)); ok {
			hits2++
		}
	}
	if hits2 != hits {
		t.Fatalf("reopen changed survivors: %d vs %d", hits2, hits)
	}
}

func TestRePutRefreshesFamilyOnly(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	defer s.Close()
	if err := s.Put("k", "famA", []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().BytesOnDisk
	if err := s.Put("k", "famB", []byte("ignored — key exists")); err != nil {
		t.Fatal(err)
	}
	after := s.Stats().BytesOnDisk
	if grew := after - before; grew > 64 {
		t.Fatalf("re-put rewrote payload (+%d bytes)", grew)
	}
	got, ok, err := s.Get("k")
	if !ok || err != nil || string(got) != "v" {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	if head, ok := s.FamilyHead("famB"); !ok || head != "k" {
		t.Fatalf("famB head: %q %v", head, ok)
	}
}

func TestStaleWALAgainstSegments(t *testing.T) {
	// Build a store, then replace its WAL with one from an older state:
	// recovery must trust the segment scan and still serve everything.
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	if err := s.Put(key(0), "fam", payload(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	staleWAL := fs.Snapshot() // WAL knows only key 0

	s = openMem(t, fs, Options{})
	for i := 1; i < 10; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Graft the stale WAL bytes over the fresh segments.
	walPath := filepath.Join(dir, walName)
	cur := fs.FileSize(walPath)
	if cur < 0 {
		t.Fatal("wal missing")
	}
	if err := fs.Truncate(walPath, 0); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	staleBytes := make([]byte, staleWAL.FileSize(walPath))
	if _, err := staleWAL.mustOpen(t, walPath).ReadAt(staleBytes, 0); err != nil && len(staleBytes) > 0 {
		t.Fatal(err)
	}
	if _, err := f.Write(staleBytes); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openMem(t, fs, Options{})
	defer s2.Close()
	for i := 0; i < 10; i++ {
		got, ok, err := s2.Get(key(i))
		if !ok || err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("stale WAL lost entry %d: ok=%v err=%v", i, ok, err)
		}
	}
	// The stale WAL's clean marker belongs to the old state; either
	// verdict on cleanliness is acceptable, but the head must resolve to
	// a servable key.
	if head, ok := s2.FamilyHead("fam"); ok {
		if _, have, _ := s2.Get(head); !have {
			t.Fatalf("family head %q is not servable", head)
		}
	}
}

func (m *MemFS) mustOpen(t *testing.T, name string) File {
	t.Helper()
	f, err := m.OpenFile(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMissingWALRebuiltFromSegments(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	for i := 0; i < 8; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := fs.Remove(filepath.Join(dir, walName)); err != nil {
		t.Fatal(err)
	}
	s2 := openMem(t, fs, Options{})
	defer s2.Close()
	if st := s2.Stats(); st.RecoveredEntries != 8 || st.RecoveredClean {
		t.Fatalf("stats after WAL loss: %+v", st)
	}
	for i := 0; i < 8; i++ {
		if _, ok, err := s2.Get(key(i)); !ok || err != nil {
			t.Fatalf("entry %d lost with WAL: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestKeyTooLong(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	defer s.Close()
	long := strings.Repeat("x", 0x10000)
	if err := s.Put(long, "", nil); err == nil {
		t.Fatal("oversized key accepted")
	}
	if err := s.Advance(long, "", ""); err == nil {
		t.Fatal("oversized family accepted")
	}
}
