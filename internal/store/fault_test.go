package store

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// workloadStep drives one scripted operation; the script is replayed
// identically under every injected crash point.
type workloadStep struct {
	op          string // "put" | "advance" | "close"
	key, family string
	from        string
}

func faultWorkload() []workloadStep {
	steps := []workloadStep{}
	for i := 0; i < 8; i++ {
		steps = append(steps, workloadStep{op: "put", key: key(i), family: "fam"})
	}
	steps = append(steps,
		workloadStep{op: "advance", key: key(3), from: key(7), family: "fam"},
		workloadStep{op: "put", key: key(8), family: "fam2"},
		workloadStep{op: "close"},
	)
	return steps
}

// replay runs the workload on fs until a step fails (the crash), returning
// the keys whose Put reported success — the durability contract's floor.
func replay(t *testing.T, fs FS, steps []workloadStep) map[string]bool {
	t.Helper()
	completed := map[string]bool{}
	s, err := Open(dir, Options{FS: fs, SegmentMaxBytes: 700})
	if err != nil {
		return completed // crashed during recovery/initial checkpoint
	}
	for _, st := range steps {
		var err error
		switch st.op {
		case "put":
			if err = s.Put(st.key, st.family, payload(keyIndex(st.key))); err == nil {
				completed[st.key] = true
			}
		case "advance":
			err = s.Advance(st.family, st.from, st.key)
		case "close":
			err = s.Close()
		}
		if err != nil {
			return completed
		}
	}
	return completed
}

func keyIndex(k string) int {
	var i int
	if _, err := fmt.Sscanf(k, "key-%04d", &i); err != nil {
		return 0
	}
	return i
}

// TestCrashAtEveryWriteOffset is the recovery property test: for a crash
// injected after every possible count of written bytes — which includes
// every WAL and segment record boundary and every offset inside a record —
// reopening the surviving bytes must succeed without panic, serve every
// recoverable entry byte-identically or report a clean miss, honor the
// durability floor (a Put that returned success is recoverable), and
// accept new writes afterwards.
func TestCrashAtEveryWriteOffset(t *testing.T) {
	steps := faultWorkload()

	// Clean run to learn the total write volume.
	probe := NewFaultFS(NewMemFS())
	replay(t, probe, steps)
	total := probe.written
	if total < 1000 {
		t.Fatalf("workload wrote only %d bytes; widen it", total)
	}

	stride := int64(1)
	if testing.Short() {
		stride = 97
	}
	for limit := int64(0); limit <= total; limit += stride {
		mem := NewMemFS()
		ffs := NewFaultFS(mem)
		ffs.SetWriteLimit(limit)
		completed := replay(t, ffs, steps)

		// The process is dead; the page cache (MemFS) is what survives.
		s, err := Open(dir, Options{FS: mem})
		if err != nil {
			t.Fatalf("limit %d: recovery failed: %v", limit, err)
		}
		for i := 0; i <= 8; i++ {
			got, ok, err := s.Get(key(i))
			if err != nil {
				t.Fatalf("limit %d: get %d errored after recovery: %v", limit, i, err)
			}
			if ok && !bytes.Equal(got, payload(i)) {
				t.Fatalf("limit %d: entry %d recovered with wrong bytes", limit, i)
			}
			if completed[key(i)] && !ok {
				t.Fatalf("limit %d: durable entry %d lost", limit, i)
			}
		}
		for _, fam := range []string{"fam", "fam2"} {
			if head, ok := s.FamilyHead(fam); ok {
				if _, have, err := s.Get(head); !have || err != nil {
					t.Fatalf("limit %d: family %s head %q unservable", limit, fam, head)
				}
			}
		}
		if err := s.Put("post-crash", "", []byte("alive")); err != nil {
			t.Fatalf("limit %d: store dead after recovery: %v", limit, err)
		}
		if got, ok, err := s.Get("post-crash"); !ok || err != nil || string(got) != "alive" {
			t.Fatalf("limit %d: post-crash write unreadable", limit)
		}
		s.Close()
	}
}

func TestTornTailTruncatedOnRecovery(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	for i := 0; i < 4; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Append half a record to the segment: a write torn by the crash.
	seg := filepath.Join(dir, segName(1))
	f := fs.mustOpen(t, seg)
	if _, err := f.Write([]byte{0xEE, 0x01, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before := fs.FileSize(seg)

	s2 := openMem(t, fs, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.TornTailBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if st.CorruptRecords != 0 {
		t.Fatalf("torn tail misclassified as corruption: %+v", st)
	}
	if fs.FileSize(seg) >= before {
		t.Fatal("torn tail not truncated")
	}
	for i := 0; i < 4; i++ {
		got, ok, err := s2.Get(key(i))
		if !ok || err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("entry %d lost to torn-tail repair: ok=%v err=%v", i, ok, err)
		}
	}
	// The repaired segment must accept appends again.
	if err := s2.Put("fresh", "", []byte("x")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

func TestBitFlipQuarantinesRecord(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{SegmentMaxBytes: 1 << 20})
	for i := 0; i < 6; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Record where entry 3 lives before closing.
	s.mu.Lock()
	loc3 := s.index[key(3)]
	s.mu.Unlock()
	s.Close()

	// Flip one payload bit of entry 3.
	seg := filepath.Join(dir, segName(1))
	if err := fs.Corrupt(seg, loc3.off+recHeader+30, 0x40); err != nil {
		t.Fatal(err)
	}

	s2 := openMem(t, fs, Options{})
	defer s2.Close()
	st := s2.Stats()
	if st.CorruptRecords == 0 {
		t.Fatal("bit flip not detected at recovery")
	}
	// Entries before the flip survive; the flipped record and everything
	// behind the quarantine line in that segment are clean misses.
	for i := 0; i < 3; i++ {
		got, ok, err := s2.Get(key(i))
		if !ok || err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("entry %d before quarantine line lost: ok=%v err=%v", i, ok, err)
		}
	}
	for i := 3; i < 6; i++ {
		if _, ok, err := s2.Get(key(i)); ok || err != nil {
			t.Fatalf("entry %d behind quarantine line: ok=%v err=%v (want clean miss)", i, ok, err)
		}
	}
	// New writes go to a fresh segment, never behind the quarantined bytes.
	if err := s2.Put("fresh", "", []byte("y")); err != nil {
		t.Fatalf("put after quarantine: %v", err)
	}
	if got, ok, err := s2.Get("fresh"); !ok || err != nil || string(got) != "y" {
		t.Fatal("fresh entry unreadable after quarantine")
	} else {
		_ = got
	}
}

func TestBitFlipAtReadTime(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	defer s.Close()
	if err := s.Put("k", "", []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	// Rot a payload byte after recovery already indexed the entry.
	s.mu.Lock()
	loc := s.index["k"]
	s.mu.Unlock()
	if err := fs.Corrupt(filepath.Join(dir, segName(1)), loc.off+recHeader+5, 0x10); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("k"); ok || err == nil {
		t.Fatalf("rotted read not rejected: ok=%v err=%v", ok, err)
	}
	if st := s.Stats(); st.CorruptRecords == 0 {
		t.Fatal("read-time corruption not counted")
	}
	// Quarantined: now a clean miss, not a repeated error.
	if _, ok, err := s.Get("k"); ok || err != nil {
		t.Fatalf("quarantined entry not a clean miss: ok=%v err=%v", ok, err)
	}
}

func TestWALBitFlipDoesNotLoseEntries(t *testing.T) {
	fs := NewMemFS()
	s := openMem(t, fs, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(key(i), "fam", payload(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := fs.Corrupt(filepath.Join(dir, walName), 10, 0x80); err != nil {
		t.Fatal(err)
	}
	s2 := openMem(t, fs, Options{})
	defer s2.Close()
	for i := 0; i < 5; i++ {
		got, ok, err := s2.Get(key(i))
		if !ok || err != nil || !bytes.Equal(got, payload(i)) {
			t.Fatalf("WAL flip lost entry %d: ok=%v err=%v", i, ok, err)
		}
	}
	if s2.Stats().RecoveredClean {
		t.Fatal("corrupt WAL reported clean")
	}
}

func TestShortReadsAreRetried(t *testing.T) {
	mem := NewMemFS()
	s := openMem(t, mem, Options{})
	if err := s.Put("k", "", bytes.Repeat([]byte("abc"), 100)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	ffs := NewFaultFS(mem)
	s2, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s2.Close()
	ffs.SetShortReads(true)
	got, ok, err := s2.Get("k")
	if !ok || err != nil || !bytes.Equal(got, bytes.Repeat([]byte("abc"), 100)) {
		t.Fatalf("short reads broke Get: ok=%v err=%v", ok, err)
	}
}

func TestFsyncBoundaryCrash(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	s, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key(0), "fam", payload(0)); err != nil {
		t.Fatal(err)
	}
	// The next segment fsync fails and the fault latches — the process
	// dies at the fsync boundary.
	ffs.SetFailSyncAfter(1)
	errPut := s.Put(key(1), "fam", payload(1))
	if errPut == nil {
		t.Fatal("put succeeded across failed fsync")
	}
	if !errors.Is(errPut, ErrInjected) {
		t.Fatalf("unexpected error: %v", errPut)
	}

	s2, err := Open(dir, Options{FS: mem})
	if err != nil {
		t.Fatalf("recovery after fsync crash: %v", err)
	}
	defer s2.Close()
	got, ok, err := s2.Get(key(0))
	if !ok || err != nil || !bytes.Equal(got, payload(0)) {
		t.Fatalf("pre-crash entry lost: ok=%v err=%v", ok, err)
	}
	// key(1) may or may not have survived (its write completed, its sync
	// did not); if present it must be byte-identical.
	if got, ok, err := s2.Get(key(1)); err != nil {
		t.Fatalf("get in-flight entry: %v", err)
	} else if ok && !bytes.Equal(got, payload(1)) {
		t.Fatal("in-flight entry recovered with wrong bytes")
	}
}
