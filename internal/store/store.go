// Package store is the crash-safe persistent tier under the server's
// content-addressed engine cache: an append-only, checksummed segment-file
// store keyed by ContentKey, with a write-ahead log that journals entry
// installs and version-chain Advance lineage.
//
// On-disk layout (all multi-byte integers little-endian):
//
//	dir/seg-%08d.dat   payload segments, appended in sequence order
//	dir/wal.log        metadata journal, checkpoint-rewritten on open
//
// Every record in every file is framed identically:
//
//	[u32 bodyLen][u32 crc32(IEEE, body)][body]
//
// Segment record bodies hold the payloads:
//
//	'E'  u16 keyLen, key, u16 famLen, family, payload
//
// WAL record bodies journal metadata:
//
//	'I'  u16 keyLen, key, u16 famLen, family      — entry installed
//	'A'  u16 famLen, family, u16 fromLen, from,
//	     u16 toLen, to                            — version chain advanced
//	'C'  (empty)                                  — clean shutdown marker
//
// Crash model: process kill. Completed writes are durable, the in-flight
// write may land as an arbitrary prefix (torn). Recovery scans every
// segment verifying per-record CRCs: a record cut off by end-of-file is a
// torn tail and is truncated away; a full record whose CRC fails is
// corruption, and the scanner quarantines the rest of that file (lengths
// after a corrupt record cannot be trusted) rather than crash — entries
// behind the quarantine line are reported lost, never served wrong. The
// WAL is replayed for family lineage and the clean marker, then rewritten
// as a fresh checkpoint via write → sync → rename. A missing WAL, a stale
// WAL, or a WAL referencing vanished entries degrade to the same safe
// outcome: the segment scan is the source of truth for what is servable,
// and Get re-verifies the record CRC on every read.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"sync"
)

const (
	recEntry   = 'E'
	recInstall = 'I'
	recAdvance = 'A'
	recClean   = 'C'

	recHeader = 8 // u32 bodyLen + u32 crc
	// maxRecordBytes rejects insane lengths during scans before any
	// allocation — a corrupt header cannot make recovery allocate gigabytes.
	maxRecordBytes = 1 << 28

	walName = "wal.log"
	walTmp  = "wal.tmp"
)

// ErrClosed is returned by every operation after Close.
var ErrClosed = errors.New("store: closed")

// Options configures Open.
type Options struct {
	// FS is the file layer; nil means the operating system.
	FS FS
	// BudgetBytes caps total on-disk bytes; once exceeded, whole oldest
	// segments are dropped (the active segment is never dropped). <= 0
	// means unlimited.
	BudgetBytes int64
	// SegmentMaxBytes rotates the active segment once it grows past this
	// size; <= 0 means 4 MiB. Smaller values give compaction finer
	// granularity at the cost of more files.
	SegmentMaxBytes int64
	// Logf, when non-nil, receives recovery and degradation diagnostics.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of store counters.
type Stats struct {
	// Entries currently servable from disk.
	Entries int
	// BytesOnDisk across segments and WAL.
	BytesOnDisk int64
	// RecoveredEntries restored by Open's segment scan.
	RecoveredEntries int
	// RecoveredClean reports whether the WAL ended with a clean-shutdown
	// marker — false means the previous process crashed.
	RecoveredClean bool
	// CorruptRecords counts CRC failures and quarantines, at recovery and
	// at read time, since Open.
	CorruptRecords int
	// TornTailBytes truncated away at recovery.
	TornTailBytes int64
	// EvictedEntries dropped by budget compaction since Open.
	EvictedEntries int
}

type entryLoc struct {
	seq    int
	off    int64 // record start (header included)
	recLen int64 // header + body
	family string
}

type segment struct {
	seq  int
	name string // full path
	f    File
	size int64
	// sealed forbids further appends: the file holds quarantined or torn
	// bytes past size, so a new record behind them would be unscannable.
	sealed bool
}

// Store is the persistent engine tier. All methods are safe for
// concurrent use.
type Store struct {
	mu       sync.Mutex
	fs       FS
	dir      string
	opts     Options
	index    map[string]entryLoc
	families map[string]string
	segs     []*segment
	wal      File
	walSize  int64
	stats    Stats
	closed   bool
}

func segName(seq int) string { return fmt.Sprintf("seg-%08d.dat", seq) }

// Open recovers the store in dir, creating it if empty. Recovery never
// fails on corrupt data — only on environmental errors (unreadable
// directory, failed truncate/rename).
func Open(dir string, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SegmentMaxBytes <= 0 {
		opts.SegmentMaxBytes = 4 << 20
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	s := &Store{
		fs:       opts.FS,
		dir:      dir,
		opts:     opts,
		index:    map[string]entryLoc{},
		families: map[string]string{},
	}
	names, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: list %s: %w", dir, err)
	}
	var seqs []int
	for _, name := range names {
		var seq int
		if _, err := fmt.Sscanf(name, "seg-%08d.dat", &seq); err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	for _, seq := range seqs {
		if err := s.recoverSegment(seq); err != nil {
			return nil, err
		}
	}
	s.recoverWAL()
	s.stats.RecoveredEntries = len(s.index)
	if err := s.checkpointWAL(); err != nil {
		return nil, fmt.Errorf("store: checkpoint wal: %w", err)
	}
	if err := s.ensureActive(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Store) recoverSegment(seq int) error {
	name := filepath.Join(s.dir, segName(seq))
	f, err := s.fs.OpenFile(name)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", name, err)
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: size %s: %w", name, err)
	}
	clean, quarantined := s.scanFile(f, size, func(off int64, body []byte) {
		key, family, _, ok := parseEntryBody(body)
		if !ok {
			s.stats.CorruptRecords++
			s.opts.Logf("store: %s: malformed entry record at %d, skipped", name, off)
			return
		}
		s.index[key] = entryLoc{seq: seq, off: off, recLen: recHeader + int64(len(body)), family: family}
		if family != "" {
			s.families[family] = key
		}
	})
	if quarantined {
		s.stats.CorruptRecords++
		s.opts.Logf("store: %s: corrupt record at %d, quarantined %d trailing bytes", name, clean, size-clean)
		// The quarantined tail stays on disk (never rewritten, never
		// served); the segment is sealed so ensureActive never appends
		// behind untrusted bytes.
		s.segs = append(s.segs, &segment{seq: seq, name: name, f: f, size: size, sealed: true})
		return nil
	}
	if clean < size {
		s.stats.TornTailBytes += size - clean
		s.opts.Logf("store: %s: truncating torn tail (%d of %d bytes)", name, size-clean, size)
		if err := s.fs.Truncate(name, clean); err != nil {
			f.Close()
			return fmt.Errorf("store: truncate %s: %w", name, err)
		}
		size = clean
	}
	s.segs = append(s.segs, &segment{seq: seq, name: name, f: f, size: size})
	return nil
}

// scanFile walks the record framing from offset 0, calling visit for each
// CRC-clean record. It returns the clean prefix length and whether the
// remainder was quarantined (full record present but CRC bad) as opposed
// to torn (file ends inside a record).
func (s *Store) scanFile(f File, size int64, visit func(off int64, body []byte)) (clean int64, quarantined bool) {
	var off int64
	hdr := make([]byte, recHeader)
	for off+recHeader <= size {
		if _, err := f.ReadAt(hdr, off); err != nil {
			return off, true // unreadable header: treat as quarantine
		}
		bodyLen := int64(binary.LittleEndian.Uint32(hdr))
		wantCRC := binary.LittleEndian.Uint32(hdr[4:])
		if bodyLen > maxRecordBytes {
			return off, true
		}
		if off+recHeader+bodyLen > size {
			return off, false // torn tail
		}
		body := make([]byte, bodyLen)
		if _, err := f.ReadAt(body, off+recHeader); err != nil {
			return off, true
		}
		if crc32.ChecksumIEEE(body) != wantCRC {
			return off, true
		}
		visit(off, body)
		off += recHeader + bodyLen
	}
	return off, false
}

func (s *Store) recoverWAL() {
	name := filepath.Join(s.dir, walName)
	f, err := s.fs.OpenFile(name)
	if err != nil {
		s.opts.Logf("store: wal unreadable, rebuilding from segments: %v", err)
		return
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return
	}
	lastType := byte(0)
	clean, quarantined := s.scanFile(f, size, func(off int64, body []byte) {
		if len(body) == 0 {
			return
		}
		lastType = body[0]
		switch body[0] {
		case recInstall:
			key, family, _, ok := parseEntryBody(body)
			if !ok {
				return
			}
			if _, have := s.index[key]; !have {
				// WAL references a payload the segments no longer hold
				// (compacted away, or its segment tail was lost). Lineage
				// pointing at it is void.
				return
			}
			if family != "" {
				s.families[family] = key
			}
		case recAdvance:
			family, _, to, ok := parseAdvanceBody(body)
			if !ok {
				return
			}
			if _, have := s.index[to]; have && family != "" {
				s.families[family] = to
			}
		}
	})
	if quarantined {
		s.stats.CorruptRecords++
		s.opts.Logf("store: wal: corrupt record at %d, rest ignored", clean)
	} else if clean < size {
		s.stats.TornTailBytes += size - clean
		s.opts.Logf("store: wal: torn tail (%d of %d bytes)", size-clean, size)
	}
	s.stats.RecoveredClean = !quarantined && clean == size && lastType == recClean
}

// checkpointWAL rewrites the journal to the current state — one install
// record per live entry in segment order, family heads last — via write,
// sync, rename, then reopens it for appending.
func (s *Store) checkpointWAL() error {
	tmp := filepath.Join(s.dir, walTmp)
	_ = s.fs.Remove(tmp)
	f, err := s.fs.OpenFile(tmp)
	if err != nil {
		return err
	}
	var size int64
	keys := make([]string, 0, len(s.index))
	for key := range s.index {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := s.index[keys[i]], s.index[keys[j]]
		if a.seq != b.seq {
			return a.seq < b.seq
		}
		return a.off < b.off
	})
	for _, key := range keys {
		n, err := writeRecord(f, entryBody(recInstall, key, s.index[key].family, nil))
		if err != nil {
			f.Close()
			return err
		}
		size += n
	}
	fams := make([]string, 0, len(s.families))
	for family := range s.families {
		fams = append(fams, family)
	}
	sort.Strings(fams)
	for _, family := range fams {
		n, err := writeRecord(f, advanceBody(family, "", s.families[family]))
		if err != nil {
			f.Close()
			return err
		}
		size += n
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, walName)); err != nil {
		return err
	}
	wal, err := s.fs.OpenFile(filepath.Join(s.dir, walName))
	if err != nil {
		return err
	}
	s.wal = wal
	s.walSize = size
	return nil
}

func (s *Store) ensureActive() error {
	if n := len(s.segs); n > 0 {
		if last := s.segs[n-1]; !last.sealed && last.size < s.opts.SegmentMaxBytes && last.f != nil {
			return nil
		}
	}
	seq := 1
	if n := len(s.segs); n > 0 {
		seq = s.segs[n-1].seq + 1
	}
	name := filepath.Join(s.dir, segName(seq))
	f, err := s.fs.OpenFile(name)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", name, err)
	}
	s.segs = append(s.segs, &segment{seq: seq, name: name, f: f})
	return nil
}

// Put stores payload under key, binding it to the version-chain family
// (empty for none), and journals the install. The payload is durable when
// Put returns nil. Re-putting an existing key only refreshes its family
// binding.
func (s *Store) Put(key, family string, payload []byte) error {
	if len(key) > 0xffff || len(family) > 0xffff {
		return fmt.Errorf("store: key/family too long")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, have := s.index[key]; have {
		if family != "" {
			s.families[family] = key
		}
		return s.journal(entryBody(recInstall, key, family, nil))
	}
	if err := s.ensureActive(); err != nil {
		return err
	}
	seg := s.segs[len(s.segs)-1]
	body := entryBody(recEntry, key, family, payload)
	n, err := writeRecord(seg.f, body)
	if err != nil {
		// The segment tail may now hold a torn record; seal the segment so
		// no further append lands behind it (recovery truncates the tear).
		seg.size += n
		s.sealActive()
		return fmt.Errorf("store: append %s: %w", seg.name, err)
	}
	if err := seg.f.Sync(); err != nil {
		seg.size += n
		s.sealActive()
		return fmt.Errorf("store: sync %s: %w", seg.name, err)
	}
	loc := entryLoc{seq: seg.seq, off: seg.size, recLen: n, family: family}
	seg.size += n
	s.index[key] = loc
	if family != "" {
		s.families[family] = key
	}
	if err := s.journal(entryBody(recInstall, key, family, nil)); err != nil {
		// Payload is durable and indexed; a lost journal record only costs
		// lineage freshness after a crash. Degrade, don't fail the put.
		s.opts.Logf("store: wal append failed (entry %s still durable): %v", key, err)
	}
	if seg.size >= s.opts.SegmentMaxBytes {
		if err := s.ensureActive(); err != nil {
			s.opts.Logf("store: segment rotation failed: %v", err)
		}
	}
	s.compact()
	return nil
}

// sealActive forces the next Put onto a fresh segment; the file stays
// open for reads of the records before the tear.
func (s *Store) sealActive() {
	if n := len(s.segs); n > 0 {
		s.segs[n-1].sealed = true
	}
}

// Advance journals version-chain lineage: family's head moved from one
// key to another. The destination should already be stored (Put first);
// lineage to an absent key is journaled but not applied.
func (s *Store) Advance(family, from, to string) error {
	if len(family) > 0xffff || len(from) > 0xffff || len(to) > 0xffff {
		return fmt.Errorf("store: key/family too long")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, have := s.index[to]; have && family != "" {
		s.families[family] = to
	}
	return s.journal(advanceBody(family, from, to))
}

func (s *Store) journal(body []byte) error {
	if s.wal == nil {
		return fmt.Errorf("store: wal closed")
	}
	n, err := writeRecord(s.wal, body)
	s.walSize += n
	if err != nil {
		return err
	}
	return s.wal.Sync()
}

// Get returns the payload stored under key, re-verifying the record
// checksum. A miss is (nil, false, nil); a record that fails verification
// is quarantined (dropped from the index, counted) and reported as
// (nil, false, err) so callers can log and fall back to a cold build.
func (s *Store) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, false, nil
	}
	var seg *segment
	for _, sg := range s.segs {
		if sg.seq == loc.seq {
			seg = sg
			break
		}
	}
	if seg == nil || seg.f == nil {
		delete(s.index, key)
		return nil, false, nil
	}
	rec := make([]byte, loc.recLen)
	if _, err := readFullAt(seg.f, rec, loc.off); err != nil {
		s.quarantine(key, loc)
		return nil, false, fmt.Errorf("store: read %s: %w", key, err)
	}
	bodyLen := int64(binary.LittleEndian.Uint32(rec))
	if bodyLen != loc.recLen-recHeader {
		s.quarantine(key, loc)
		return nil, false, fmt.Errorf("store: read %s: record length changed on disk", key)
	}
	body := rec[recHeader:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(rec[4:]) {
		s.quarantine(key, loc)
		return nil, false, fmt.Errorf("store: read %s: checksum mismatch", key)
	}
	k, _, payload, ok := parseEntryBody(body)
	if !ok || k != key {
		s.quarantine(key, loc)
		return nil, false, fmt.Errorf("store: read %s: record key mismatch", key)
	}
	return payload, true, nil
}

func (s *Store) quarantine(key string, loc entryLoc) {
	delete(s.index, key)
	if loc.family != "" && s.families[loc.family] == key {
		delete(s.families, loc.family)
	}
	s.stats.CorruptRecords++
	s.opts.Logf("store: quarantined entry %s (segment %d)", key, loc.seq)
}

// readFullAt reads exactly len(p) bytes, looping over partial reads the
// way short-read fault injection produces them.
func readFullAt(f File, p []byte, off int64) (int, error) {
	n := 0
	for n < len(p) {
		m, err := f.ReadAt(p[n:], off+int64(n))
		n += m
		if n >= len(p) {
			return n, nil
		}
		if err != nil && err != io.ErrUnexpectedEOF {
			return n, err
		}
		if m == 0 {
			if err == nil {
				err = io.ErrUnexpectedEOF
			}
			return n, err
		}
	}
	return n, nil
}

// Has reports whether key is servable from disk.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[key]
	return ok
}

// FamilyHead returns the newest stored key in a version-chain family, so
// a cache miss can advance from a disk-resident ancestor.
func (s *Store) FamilyHead(family string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key, ok := s.families[family]
	return key, ok
}

// Stats returns current counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.BytesOnDisk = s.walSize
	for _, seg := range s.segs {
		st.BytesOnDisk += seg.size
	}
	return st
}

// compact drops whole oldest segments while over budget. The active
// segment survives even when a single entry exceeds the budget.
func (s *Store) compact() {
	if s.opts.BudgetBytes <= 0 {
		return
	}
	total := s.walSize
	for _, seg := range s.segs {
		total += seg.size
	}
	dropped := false
	for total > s.opts.BudgetBytes && len(s.segs) > 1 {
		victim := s.segs[0]
		s.segs = s.segs[1:]
		total -= victim.size
		for key, loc := range s.index {
			if loc.seq == victim.seq {
				delete(s.index, key)
				if loc.family != "" && s.families[loc.family] == key {
					delete(s.families, loc.family)
				}
				s.stats.EvictedEntries++
			}
		}
		if victim.f != nil {
			victim.f.Close()
		}
		if err := s.fs.Remove(victim.name); err != nil {
			s.opts.Logf("store: compaction remove %s: %v", victim.name, err)
		}
		dropped = true
	}
	if dropped {
		if err := s.checkpointWAL(); err != nil {
			s.opts.Logf("store: post-compaction checkpoint failed: %v", err)
		}
	}
}

// Close flushes the journal, writes the clean-shutdown marker, and closes
// every file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	if s.wal != nil {
		if err := s.journal([]byte{recClean}); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := s.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.wal = nil
	}
	for _, seg := range s.segs {
		if seg.f != nil {
			if err := seg.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			seg.f = nil
		}
	}
	return firstErr
}

// --- record serialization ---

func writeRecord(f File, body []byte) (int64, error) {
	rec := make([]byte, recHeader+len(body))
	binary.LittleEndian.PutUint32(rec, uint32(len(body)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(body))
	copy(rec[recHeader:], body)
	n, err := f.Write(rec)
	return int64(n), err
}

// entryBody builds an 'E' (segment) or 'I' (WAL) body; payload is nil for
// installs.
func entryBody(typ byte, key, family string, payload []byte) []byte {
	b := make([]byte, 0, 1+2+len(key)+2+len(family)+len(payload))
	b = append(b, typ)
	b = appendStr16(b, key)
	b = appendStr16(b, family)
	return append(b, payload...)
}

func parseEntryBody(body []byte) (key, family string, payload []byte, ok bool) {
	if len(body) < 1 || (body[0] != recEntry && body[0] != recInstall) {
		return "", "", nil, false
	}
	rest := body[1:]
	key, rest, ok = takeStr16(rest)
	if !ok {
		return "", "", nil, false
	}
	family, rest, ok = takeStr16(rest)
	if !ok {
		return "", "", nil, false
	}
	return key, family, rest, true
}

func advanceBody(family, from, to string) []byte {
	b := make([]byte, 0, 1+6+len(family)+len(from)+len(to))
	b = append(b, recAdvance)
	b = appendStr16(b, family)
	b = appendStr16(b, from)
	return appendStr16(b, to)
}

func parseAdvanceBody(body []byte) (family, from, to string, ok bool) {
	if len(body) < 1 || body[0] != recAdvance {
		return "", "", "", false
	}
	rest := body[1:]
	family, rest, ok = takeStr16(rest)
	if !ok {
		return "", "", "", false
	}
	from, rest, ok = takeStr16(rest)
	if !ok {
		return "", "", "", false
	}
	to, rest, ok = takeStr16(rest)
	if !ok || len(rest) != 0 {
		return "", "", "", false
	}
	return family, from, to, true
}

func appendStr16(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func takeStr16(b []byte) (string, []byte, bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b)-2 < n {
		return "", nil, false
	}
	return string(b[2 : 2+n]), b[2+n:], true
}
