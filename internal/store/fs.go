package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the file layer the store runs on. Production uses the operating
// system (OSFS); tests use MemFS for determinism and FaultFS to inject
// torn writes, short reads, bit flips, and fsync-boundary crashes without
// touching real disks. The store only ever appends to open files and
// reads back with ReadAt, so the interface is deliberately narrow.
type FS interface {
	// OpenFile opens name for appending (creating it if absent) and
	// random-access reads.
	OpenFile(name string) (File, error)
	Remove(name string) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	MkdirAll(dir string) error
	// Truncate cuts name down to size bytes (torn-tail repair).
	Truncate(name string, size int64) error
}

// File is one open store file: appended at the end, read anywhere.
type File interface {
	io.ReaderAt
	// Write appends p at the end of the file.
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Size() (int64, error)
}

// OSFS is the real filesystem.
type OSFS struct{}

type osFile struct{ f *os.File }

func (OSFS) OpenFile(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &osFile{f: f}, nil
}

func (OSFS) Remove(name string) error               { return os.Remove(name) }
func (OSFS) Rename(oldname, newname string) error   { return os.Rename(oldname, newname) }
func (OSFS) MkdirAll(dir string) error              { return os.MkdirAll(dir, 0o755) }
func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (f *osFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *osFile) Write(p []byte) (int, error)             { return f.f.Write(p) }
func (f *osFile) Sync() error                             { return f.f.Sync() }
func (f *osFile) Close() error                            { return f.f.Close() }

func (f *osFile) Size() (int64, error) {
	st, err := f.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// MemFS is a deterministic in-memory filesystem for tests. It models the
// store's crash semantics exactly: bytes from completed Write calls are
// durable (process-kill model — the page cache survives SIGKILL), and a
// Snapshot of the byte state can be reopened as "the disk after the
// crash". Safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: map[string][]byte{}} }

type memFile struct {
	fs   *MemFS
	name string
}

func (m *MemFS) OpenFile(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = nil
	}
	return &memFile{fs: m, name: name}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldname, os.ErrNotExist)
	}
	m.files[newname] = b
	delete(m.files, oldname)
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := filepath.Clean(dir) + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if rest, ok := cutPrefix(name, prefix); ok && rest != "" {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func cutPrefix(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
		return s[len(prefix):], true
	}
	return "", false
}

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return fmt.Errorf("truncate %s: %w", name, os.ErrNotExist)
	}
	if size < 0 || size > int64(len(b)) {
		return fmt.Errorf("truncate %s to %d of %d", name, size, len(b))
	}
	m.files[name] = b[:size]
	return nil
}

// Snapshot deep-copies the current byte state — "the disk at this
// instant". Reopening a store on the snapshot simulates a crash here.
func (m *MemFS) Snapshot() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	cp := NewMemFS()
	for name, b := range m.files {
		cp.files[name] = append([]byte(nil), b...)
	}
	return cp
}

// Corrupt XORs the byte at off in name with x — persistent bit-flip
// injection for recovery tests.
func (m *MemFS) Corrupt(name string, off int64, x byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return fmt.Errorf("corrupt %s: %w", name, os.ErrNotExist)
	}
	if off < 0 || off >= int64(len(b)) {
		return fmt.Errorf("corrupt %s at %d of %d", name, off, len(b))
	}
	b[off] ^= x
	return nil
}

// FileSize reports the size of name, or -1 if absent.
func (m *MemFS) FileSize(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	if !ok {
		return -1
	}
	return int64(len(b))
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("read %s: %w", f.name, os.ErrNotExist)
	}
	if off < 0 || off >= int64(len(b)) {
		return 0, io.EOF
	}
	n := copy(p, b[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("write %s: %w", f.name, os.ErrNotExist)
	}
	f.fs.files[f.name] = append(b, p...)
	return len(p), nil
}

func (f *memFile) Sync() error  { return nil }
func (f *memFile) Close() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("size %s: %w", f.name, os.ErrNotExist)
	}
	return int64(len(b)), nil
}

// ErrInjected is the error every FaultFS operation returns once its
// configured fault has fired — the store sees it exactly where a dying
// process would stop.
var ErrInjected = errors.New("store: injected fault")

// FaultFS wraps an FS and deterministically injects failures:
//
//   - WriteLimit n: the first n bytes of Write traffic succeed; the write
//     that crosses the limit is torn (its prefix lands, the rest does
//     not) and every subsequent operation fails — a crash at an arbitrary
//     write boundary.
//   - FailSyncAfter n: the n-th Sync call (1-based) fails and the fault
//     latches — an fsync-boundary crash.
//   - ShortReads: every ReadAt is cut one byte short of the requested
//     length, exercising partial-read handling.
//
// The zero value injects nothing. Not safe for concurrent use with
// reconfiguration; configure first, then run.
type FaultFS struct {
	Inner FS

	mu           sync.Mutex
	writeLimit   int64 // -1 = unlimited
	written      int64
	failSyncLeft int // counts down; fires at 0
	shortReads   bool
	crashed      bool
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{Inner: inner, writeLimit: -1, failSyncLeft: -1}
}

// SetWriteLimit arms the torn-write crash after n total bytes.
func (f *FaultFS) SetWriteLimit(n int64) { f.mu.Lock(); f.writeLimit = n; f.mu.Unlock() }

// SetFailSyncAfter makes the n-th subsequent Sync call fail (1-based).
func (f *FaultFS) SetFailSyncAfter(n int) { f.mu.Lock(); f.failSyncLeft = n; f.mu.Unlock() }

// SetShortReads toggles one-byte-short ReadAt results.
func (f *FaultFS) SetShortReads(v bool) { f.mu.Lock(); f.shortReads = v; f.mu.Unlock() }

// Crashed reports whether a fault has fired and latched.
func (f *FaultFS) Crashed() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

func (f *FaultFS) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) OpenFile(name string) (File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	inner, err := f.Inner.OpenFile(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Remove(name string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.Inner.Rename(oldname, newname)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.Inner.ReadDir(dir)
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.Inner.MkdirAll(dir)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.Inner.Truncate(name, size)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return 0, ErrInjected
	}
	allow := len(p)
	if f.fs.writeLimit >= 0 {
		if left := f.fs.writeLimit - f.fs.written; int64(allow) > left {
			allow = int(max(left, 0))
			f.fs.crashed = true
		}
	}
	f.fs.written += int64(allow)
	f.fs.mu.Unlock()
	if allow > 0 {
		if n, err := f.inner.Write(p[:allow]); err != nil {
			return n, err
		}
	}
	if allow < len(p) {
		return allow, ErrInjected
	}
	return allow, nil
}

func (f *faultFile) Sync() error {
	f.fs.mu.Lock()
	if f.fs.crashed {
		f.fs.mu.Unlock()
		return ErrInjected
	}
	if f.fs.failSyncLeft > 0 {
		f.fs.failSyncLeft--
		if f.fs.failSyncLeft == 0 {
			f.fs.crashed = true
			f.fs.mu.Unlock()
			return ErrInjected
		}
	}
	f.fs.mu.Unlock()
	return f.inner.Sync()
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.fs.gate(); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	short := f.fs.shortReads
	f.fs.mu.Unlock()
	// A 1-byte read cannot be cut short without never making progress;
	// deliver it so retry loops terminate, as a real kernel would.
	if short && len(p) > 1 {
		n, err := f.inner.ReadAt(p[:len(p)-1], off)
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return n, err
	}
	return f.inner.ReadAt(p, off)
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Size() (int64, error) {
	if err := f.fs.gate(); err != nil {
		return 0, err
	}
	return f.inner.Size()
}
